// private_tally: a privacy-preserving vote tally on the ASMPC secure-sum
// extension (paper Section 6).
//
// n committee members each hold a private vote weight.  The committee
// computes the total without any member (or any t-coalition) learning
// another member's individual contribution: inputs are SVSS-shared, a
// common core of contributors is agreed through n parallel binary
// agreements, and only *summed* share points are ever opened — with
// Reed-Solomon online error correction fixing up to t lying points.
//
//   $ ./private_tally [seed] [--corrupt]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/service_builder.hpp"

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  bool corrupt = argc > 2 && std::strcmp(argv[2], "--corrupt") == 0;

  svss::ServiceBuilder builder;
  builder.n(4).t(1).seed(seed);
  if (corrupt) {
    // Member 3 lies wherever it can, including in the reveal phase.
    builder.fault(3, svss::ByzConfig{svss::ByzKind::kBitFlip, 0, 0.9});
    std::printf("(member 3 is corrupted)\n");
  }
  svss::Runner committee = builder.build_runner();

  std::vector<svss::Fp> votes{svss::Fp(120), svss::Fp(340), svss::Fp(55),
                              svss::Fp(85)};
  std::printf("private votes:");
  for (const auto& v : votes) {
    std::printf(" %llu", static_cast<unsigned long long>(v.value()));
  }
  std::printf("  (never broadcast individually)\n");

  auto res = committee.run_secure_sum(votes);
  if (!res.all_output) {
    std::printf("tally did not complete (status %d)\n",
                static_cast<int>(res.status));
    return 1;
  }
  const auto& core = res.cores.begin()->second;
  std::printf("included contributors:");
  for (int j : core) std::printf(" %d", j);
  std::printf("\nagreed tally: %llu %s\n",
              static_cast<unsigned long long>(res.outputs.begin()->second),
              res.agreed ? "(all members agree)" : "(DISAGREEMENT!)");

  svss::Fp expected(0);
  for (int j : core) expected += votes[static_cast<std::size_t>(j)];
  std::printf("expected over the core: %llu  -> %s\n",
              static_cast<unsigned long long>(expected.value()),
              expected.value() == res.outputs.begin()->second ? "correct"
                                                              : "WRONG");
  std::printf("network cost: %llu messages\n",
              static_cast<unsigned long long>(res.metrics.packets_sent));
  return 0;
}
