// agreement_cluster: a replicated cluster deciding commit/abort.
//
// Scenario: n replicas received (possibly conflicting) votes on whether to
// commit a cross-shard transaction.  The network is asynchronous and
// hostile (targeted delays), and up to t replicas are Byzantine.  The
// cluster runs the paper's agreement protocol; for contrast, the same
// workload runs on the Bracha-style local-coin baseline, which needs far
// more rounds at scale.
//
//   $ ./agreement_cluster [n] [seed]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/runner.hpp"

namespace {

std::vector<int> make_votes(int n, std::uint64_t seed) {
  // A contentious split vote, deterministic per seed.
  svss::Rng rng(seed);
  std::vector<int> votes;
  for (int i = 0; i < n; ++i) votes.push_back(rng.next_bool() ? 1 : 0);
  return votes;
}

void print_result(const char* label, const svss::Runner::AbaResult& res) {
  std::printf("%-22s decided=%-3s value=%-2d rounds=%-3u msgs=%llu\n", label,
              res.all_decided && res.agreed ? "yes" : "NO", res.value,
              res.max_round,
              static_cast<unsigned long long>(res.metrics.packets_sent));
}

}  // namespace

int main(int argc, char** argv) {
  int n = argc > 1 ? std::atoi(argv[1]) : 4;
  std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  int t = (n - 1) / 3;

  auto votes = make_votes(n, seed);
  std::printf("cluster of %d replicas (tolerating %d), votes:", n, t);
  for (int v : votes) std::printf(" %d", v);
  std::printf("\n\n");

  auto base_cfg = [&] {
    svss::RunnerConfig cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.seed = seed;
    cfg.scheduler = svss::SchedulerKind::kDelayLastHonest;  // hostile net
    for (int i = n - t; i < n; ++i) {
      cfg.faults[i] = svss::ByzConfig{svss::ByzKind::kBitFlip, 0, 0.15};
    }
    return cfg;
  };

  // The paper's protocol: SVSS-based shunning common coin.
  {
    svss::Runner cluster(base_cfg());
    auto res = cluster.run_aba(votes, svss::CoinMode::kSvss);
    print_result("SVSS coin (paper):", res);
    auto shuns = cluster.honest_shun_pairs();
    if (!shuns.empty()) {
      std::printf("  shun pairs during run: %zu (budget %d)\n", shuns.size(),
                  t * (n - t));
    }
  }

  // Baseline: same voting structure, private local coins (Bracha-style).
  {
    svss::Runner cluster(base_cfg());
    auto res = cluster.run_aba(votes, svss::CoinMode::kLocal);
    print_result("local coin baseline:", res);
  }

  // Abstraction: ideal common coin (what SCC provides with prob >= 1/4
  // per round) — the round count the paper's analysis predicts.
  {
    svss::Runner cluster(base_cfg());
    auto res = cluster.run_aba(votes, svss::CoinMode::kIdealCommon);
    print_result("ideal common coin:", res);
  }
  return 0;
}
