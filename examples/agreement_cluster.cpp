// agreement_cluster: a replicated cluster deciding commit/abort.
//
// Scenario: n replicas received (possibly conflicting) votes on whether to
// commit a cross-shard transaction.  The network is asynchronous and
// hostile, and up to t replicas are Byzantine.  The cluster runs the
// paper's agreement protocol; for contrast, the same workload runs on the
// Bracha-style local-coin baseline, which needs far more rounds at scale.
//
// Two deployment shapes:
//
//   $ ./agreement_cluster [n] [seed]
//       In-process comparison run (deterministic simulator): the paper's
//       SVSS coin vs. the local-coin and ideal-coin baselines, with t
//       replicas wire-corrupted and a hostile scheduler.
//
//   $ ./agreement_cluster --id I --peers H:P,H:P,... [--seed S] [--vote V]
//       One replica of a REAL multi-process deployment: this process is
//       slot I of the fleet, binds peers[I], speaks TCP to the others, and
//       decides over actual sockets.  Launch n of these (one per slot) and
//       each prints "decided value=..." — scripts/socket_smoke.sh does
//       exactly that and asserts they agree.
//
//   $ ./agreement_cluster --id I --peers ... --instances K
//         [--checkpoint PATH] [--linger-ms L]
//       Same replica shape, but K concurrent agreement instances and
//       durable state: every decision is journaled to PATH.journal and
//       checkpointed to PATH.  A process restarted after a crash recovers
//       its decisions from disk and runs the catch-up handshake for the
//       rest instead of re-submitting — scripts/recovery_smoke.sh kills
//       one replica mid-run and asserts the restart converges.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/service_builder.hpp"

namespace {

std::vector<int> make_votes(int n, std::uint64_t seed) {
  // A contentious split vote, deterministic per seed.
  svss::Rng rng(seed);
  std::vector<int> votes;
  for (int i = 0; i < n; ++i) votes.push_back(rng.next_bool() ? 1 : 0);
  return votes;
}

void print_result(const char* label, const svss::Runner::AbaResult& res) {
  std::printf("%-22s decided=%-3s value=%-2d rounds=%-3u msgs=%llu\n", label,
              res.all_decided && res.agreed ? "yes" : "NO", res.value,
              res.max_round,
              static_cast<unsigned long long>(res.metrics.packets_sent));
}

int run_daemon(int id, const std::string& peers_spec, std::uint64_t seed,
               int vote) {
  auto cluster = svss::net::parse_cluster(peers_spec);
  if (!cluster) {
    std::fprintf(stderr, "agreement_cluster: bad --peers spec\n");
    return 2;
  }
  int n = cluster->n();
  if (id < 0 || id >= n) {
    std::fprintf(stderr, "agreement_cluster: --id outside the fleet\n");
    return 2;
  }
  if (vote < 0) vote = make_votes(n, seed)[static_cast<std::size_t>(id)];

  svss::DaemonService replica =
      svss::ServiceBuilder{}.seed(seed).build_daemon(id, *cluster);
  std::printf("agreement_cluster[%d]: joining fleet of %d, vote=%d\n", id, n,
              vote);
  replica.node().set_start_action(
      [vote](svss::Context& c, svss::Node& nd) {
        nd.start_aba(c, vote, svss::CoinMode::kSvss);
      });
  if (!replica.start()) {
    std::fprintf(stderr, "agreement_cluster[%d]: failed to bind endpoint\n",
                 id);
    return 2;
  }
  bool decided = replica.run_until(
      [&] {
        const svss::AbaSession* a = replica.node().aba();
        return a != nullptr && a->decided();
      },
      60'000);
  if (!decided) {
    if (svss::DaemonService::stop_requested()) {
      // Supervisor asked us to stop (SIGTERM/SIGINT): report, close the
      // listener, and exit 0 instead of dying mid-write.
      std::printf("agreement_cluster[%d]: stopped by signal, msgs=%llu\n", id,
                  static_cast<unsigned long long>(
                      replica.transport().metrics().packets_sent));
      replica.shutdown();
      return 0;
    }
    std::printf("agreement_cluster[%d]: TIMEOUT without decision\n", id);
    return 1;
  }
  std::printf("agreement_cluster[%d]: decided value=%d round=%u\n", id,
              replica.node().aba()->decision(),
              replica.node().aba()->decision_round());
  std::fflush(stdout);
  // Stay up so laggard peers can still complete their broadcasts (a stop
  // signal cuts the linger short).
  replica.linger(2'000);
  replica.shutdown();
  std::printf("agreement_cluster[%d]: shutdown msgs=%llu bytes=%llu\n", id,
              static_cast<unsigned long long>(
                  replica.transport().metrics().packets_sent),
              static_cast<unsigned long long>(
                  replica.transport().metrics().bytes_sent));
  return 0;
}

// The latest-epoch decision record for `inst`, if the service knows one.
const svss::DecisionRecord* find_record(const svss::DaemonService& replica,
                                        std::uint32_t inst) {
  const svss::DecisionRecord* found = nullptr;
  for (const auto& [key, rec] : replica.decisions()) {
    if (key.second == inst) found = &rec;
  }
  return found;
}

// Multi-instance daemon with durable decisions: submit K instances on a
// fresh start, or recover + catch up after a crash restart.
int run_daemon_multi(int id, const std::string& peers_spec, std::uint64_t seed,
                     int instances, const std::string& checkpoint,
                     int linger_ms, bool force_rejoin) {
  auto cluster = svss::net::parse_cluster(peers_spec);
  if (!cluster) {
    std::fprintf(stderr, "agreement_cluster: bad --peers spec\n");
    return 2;
  }
  int n = cluster->n();
  if (id < 0 || id >= n) {
    std::fprintf(stderr, "agreement_cluster: --id outside the fleet\n");
    return 2;
  }

  svss::DaemonService replica =
      svss::ServiceBuilder{}.seed(seed).build_daemon(id, *cluster);
  bool rejoin = force_rejoin;
  if (!checkpoint.empty()) {
    // Cadence 2: a crash between checkpoints leaves a journal tail, so a
    // restart exercises both the checkpoint load and the journal replay.
    replica.enable_recovery(checkpoint, 2);
    rejoin = replica.recover() || rejoin;
  }
  if (!replica.start()) {
    std::fprintf(stderr, "agreement_cluster[%d]: failed to bind endpoint\n",
                 id);
    return 2;
  }

  std::vector<std::uint32_t> insts;
  for (int k = 1; k <= instances; ++k) {
    insts.push_back(static_cast<std::uint32_t>(k));
  }
  const std::uint64_t coin_seed = seed ^ 0xC01F;
  auto all_known = [&] {
    for (std::uint32_t k : insts) {
      if (!replica.decision(k)) return false;
    }
    return true;
  };

  bool complete = false;
  if (rejoin) {
    std::printf(
        "agreement_cluster[%d]: rejoining with %zu persisted decisions\n", id,
        replica.decisions().size());
    auto t0 = std::chrono::steady_clock::now();
    complete = replica.catch_up(insts, 45'000);
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    if (complete) {
      std::printf(
          "agreement_cluster[%d]: caught up in %lld ms, frames=%llu "
          "bytes=%llu\n",
          id, static_cast<long long>(ms),
          static_cast<unsigned long long>(replica.catchup_frames()),
          static_cast<unsigned long long>(replica.catchup_bytes()));
    }
  } else {
    std::printf("agreement_cluster[%d]: joining fleet of %d, %d instances\n",
                id, n, instances);
    for (std::uint32_t k : insts) {
      int vote = make_votes(n, seed ^ (0x9E3779B9ULL * k))
          [static_cast<std::size_t>(id)];
      replica.submit(k, vote, svss::CoinMode::kIdealCommon, coin_seed);
    }
    complete = replica.run_until(all_known, 45'000);
    if (!complete && !svss::DaemonService::stop_requested() &&
        !checkpoint.empty()) {
      // A restarted process with nothing on disk (killed before its first
      // journal write) cannot finish sessions its peers already spent;
      // adopt the fleet's decisions instead.
      complete = replica.catch_up(insts, 15'000);
    }
  }

  if (!complete) {
    if (svss::DaemonService::stop_requested()) {
      std::printf("agreement_cluster[%d]: stopped by signal, msgs=%llu\n", id,
                  static_cast<unsigned long long>(
                      replica.transport().metrics().packets_sent));
      replica.shutdown();
      return 0;
    }
    std::printf("agreement_cluster[%d]: TIMEOUT without decision\n", id);
    return 1;
  }

  for (std::uint32_t k : insts) {
    const svss::DecisionRecord* rec = find_record(replica, k);
    std::printf("agreement_cluster[%d]: decided instance=%u value=%d round=%u\n",
                id, k, rec ? rec->value : -1, rec ? rec->round : 0u);
  }
  std::fflush(stdout);
  // Stay up so laggards — including a replica restarting from a crash —
  // can still catch up against us (a stop signal cuts the linger short).
  replica.linger(linger_ms);
  if (!checkpoint.empty()) replica.checkpoint_now();
  replica.shutdown();
  std::printf("agreement_cluster[%d]: shutdown msgs=%llu bytes=%llu\n", id,
              static_cast<unsigned long long>(
                  replica.transport().metrics().packets_sent),
              static_cast<unsigned long long>(
                  replica.transport().metrics().bytes_sent));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int id = -1;
  std::string peers;
  std::uint64_t seed = 3;
  int vote = -1;
  int n = 4;
  int instances = 0;
  std::string checkpoint;
  int linger_ms = 2'000;
  // --rejoin: this process is a restart — adopt the fleet's decisions via
  // the catch-up handshake instead of submitting, even with no state on
  // disk (a crash can land before the first journal write).
  bool force_rejoin = false;
  bool daemon = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--id") == 0 && a + 1 < argc) {
      id = std::atoi(argv[++a]);
      daemon = true;
    } else if (std::strcmp(argv[a], "--peers") == 0 && a + 1 < argc) {
      peers = argv[++a];
    } else if (std::strcmp(argv[a], "--seed") == 0 && a + 1 < argc) {
      seed = std::strtoull(argv[++a], nullptr, 10);
    } else if (std::strcmp(argv[a], "--vote") == 0 && a + 1 < argc) {
      vote = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--instances") == 0 && a + 1 < argc) {
      instances = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--checkpoint") == 0 && a + 1 < argc) {
      checkpoint = argv[++a];
    } else if (std::strcmp(argv[a], "--linger-ms") == 0 && a + 1 < argc) {
      linger_ms = std::atoi(argv[++a]);
    } else if (std::strcmp(argv[a], "--rejoin") == 0) {
      force_rejoin = true;
    } else if (a == 1) {
      n = std::atoi(argv[a]);
    } else if (a == 2) {
      seed = std::strtoull(argv[a], nullptr, 10);
    }
  }
  if (daemon) {
    if (instances > 0) {
      return run_daemon_multi(id, peers, seed, instances, checkpoint,
                              linger_ms, force_rejoin);
    }
    return run_daemon(id, peers, seed, vote);
  }

  int t = (n - 1) / 3;
  auto votes = make_votes(n, seed);
  std::printf("cluster of %d replicas (tolerating %d), votes:", n, t);
  for (int v : votes) std::printf(" %d", v);
  std::printf("\n\n");

  svss::ServiceBuilder builder;
  builder.n(n).t(t).seed(seed).scheduler(
      svss::SchedulerKind::kDelayLastHonest);  // hostile net
  for (int i = n - t; i < n; ++i) {
    builder.fault(i, svss::ByzConfig{svss::ByzKind::kBitFlip, 0, 0.15});
  }

  // The paper's protocol: SVSS-based shunning common coin.
  {
    svss::Runner cluster = builder.build_runner();
    auto res = cluster.run_aba(votes, svss::CoinMode::kSvss);
    print_result("SVSS coin (paper):", res);
    auto shuns = cluster.honest_shun_pairs();
    if (!shuns.empty()) {
      std::printf("  shun pairs during run: %zu (budget %d)\n", shuns.size(),
                  t * (n - t));
    }
  }

  // Baseline: same voting structure, private local coins (Bracha-style).
  {
    svss::Runner cluster = builder.build_runner();
    auto res = cluster.run_aba(votes, svss::CoinMode::kLocal);
    print_result("local coin baseline:", res);
  }

  // Abstraction: ideal common coin (what SCC provides with prob >= 1/4
  // per round) — the round count the paper's analysis predicts.
  {
    svss::Runner cluster = builder.build_runner();
    auto res = cluster.run_aba(votes, svss::CoinMode::kIdealCommon);
    print_result("ideal common coin:", res);
  }
  return 0;
}
