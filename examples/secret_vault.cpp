// secret_vault: a distributed escrow built on SVSS.
//
// Scenario: a vault of n custodians holds client secrets.  A client
// (acting as dealer) deposits each secret with verifiable sharing; later,
// the custodians jointly open it.  Up to t custodians may be corrupted —
// they can tamper with reconstruction values or go silent — yet every
// deposit either opens to the exact deposited value or the tampering
// custodian lands on an honest custodian's permanent blacklist (the
// paper's shunning guarantee), so it can damage at most a bounded number
// of deposits, ever.
//
//   $ ./secret_vault [seed]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "core/service_builder.hpp"

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  constexpr int kCustodians = 4;
  constexpr int kFaulty = 1;
  constexpr std::uint32_t kDeposits = 6;

  // Custodian 3 is corrupted: it lies in reconstruction.
  svss::Runner vault = svss::ServiceBuilder{}
                           .n(kCustodians)
                           .t(kFaulty)
                           .seed(seed)
                           .fault(3, svss::ByzConfig{svss::ByzKind::kWrongRecon})
                           .build_runner();

  std::printf("vault: %d custodians, tolerating %d corruptions\n",
              kCustodians, kFaulty);

  std::set<std::pair<int, int>> blacklist;
  int opened_ok = 0;
  int damaged = 0;

  for (std::uint32_t c = 1; c <= kDeposits; ++c) {
    svss::Fp secret(static_cast<std::int64_t>(1000000 + c * 1111));
    svss::SessionId sid = svss::svss_top_id(c, /*dealer=*/0);

    // Deposit: custodian 0 relays the client's secret as dealer.
    {
      svss::Context ctx = vault.ctx(0);
      vault.node(0).svss(ctx, sid).deal(ctx, secret);
    }
    (void)vault.engine().run_until([&] {
      for (int i : vault.honest_ids()) {
        const svss::SvssSession* s = vault.node(i).find_svss(sid);
        if (s == nullptr || !s->share_complete()) return false;
      }
      return true;
    });

    // Open: every custodian that completed the share phase reconstructs.
    for (int i = 0; i < kCustodians; ++i) {
      const svss::SvssSession* s = vault.node(i).find_svss(sid);
      if (s == nullptr || !s->share_complete()) continue;
      svss::Context ctx = vault.ctx(i);
      vault.node(i).svss(ctx, sid).start_reconstruct(ctx);
    }
    (void)vault.engine().run_until([&] {
      for (int i : vault.honest_ids()) {
        const svss::SvssSession* s = vault.node(i).find_svss(sid);
        if (s == nullptr || !s->has_output()) return false;
      }
      return true;
    });

    bool all_correct = true;
    for (int i : vault.honest_ids()) {
      const svss::SvssSession* s = vault.node(i).find_svss(sid);
      auto out = s != nullptr && s->has_output()
                     ? s->output()
                     : std::optional<svss::Fp>();
      if (!out || !(*out == secret)) all_correct = false;
    }
    std::size_t blacklist_before = blacklist.size();
    for (const auto& p : vault.honest_shun_pairs()) blacklist.insert(p);

    std::printf("deposit %u: %s", c,
                all_correct ? "opened correctly" : "DAMAGED");
    if (blacklist.size() > blacklist_before) {
      std::printf("  -> new blacklist entries:");
      // Print the whole (small) blacklist; new entries are a subset.
      for (const auto& [watcher, suspect] : blacklist) {
        std::printf(" (custodian %d blacklists %d)", watcher, suspect);
      }
    }
    std::printf("\n");
    all_correct ? ++opened_ok : ++damaged;
  }

  std::printf(
      "summary: %d/%u deposits opened correctly, %d damaged, "
      "%zu blacklist pairs (budget: %d)\n",
      opened_ok, kDeposits, damaged, blacklist.size(),
      kFaulty * (kCustodians - kFaulty));
  // The shunning bound: damage is possible only while blacklist entries
  // are still being acquired; with the budget exhausted, every further
  // deposit is safe.
  return damaged <= kFaulty * (kCustodians - kFaulty) ? 0 : 1;
}
