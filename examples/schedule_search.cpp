// Coverage-guided schedule search, as a command-line tool.
//
// Runs the src/search/ mutation loop over one strategy x n cell and prints
// the result; with --out it writes the best-found schedule as a corpus
// entry JSON, ready to triage and commit under tests/corpus/ (where the
// tier-1 corpus gate will replay it on every build).
//
//   example_schedule_search --n 4 --strategy colluding-cabal --coin svss
//       --seeds 11,22 --iters 200 --search-seed 1
//       --out tests/corpus/cabal-n4-svss.json
//
// With --replay <entry.json> it instead re-runs a corpus entry and reports
// whether rounds and trace hash match the stored values (the same check
// corpus_replay_test performs, usable on uncommitted candidates).
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "search/corpus.hpp"

namespace {

using namespace svss;

std::vector<std::uint64_t> parse_seeds(const std::string& csv) {
  std::vector<std::uint64_t> seeds;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) seeds.push_back(std::strtoull(item.c_str(), nullptr, 10));
  }
  return seeds;
}

int usage() {
  std::cerr
      << "usage: example_schedule_search [--n N] [--strategy NAME]\n"
         "         [--coin svss|ideal] [--seeds A,B,...] [--iters K]\n"
         "         [--population P] [--search-seed S] [--budget DELIVERIES]\n"
         "         [--name LABEL] [--out FILE]\n"
         "       example_schedule_search --replay ENTRY.json\n"
         "strategies: equivocating-dealer, adaptive-shun-aware,\n"
         "            withholding-moderator, colluding-cabal\n";
  return 2;
}

int replay_entry(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto entry = search::parse_corpus_entry(buf.str(), &error);
  if (!entry) {
    std::cerr << path << ": " << error << "\n";
    return 1;
  }
  auto rep = search::replay_corpus_entry(*entry);
  bool hash_ok = rep.trace_hash == entry->trace_hash;
  bool rounds_ok = rep.worst_rounds == entry->worst_rounds &&
                   rep.total_rounds == entry->total_rounds;
  std::cout << "entry " << entry->name << ": decided="
            << (rep.decided ? "yes" : "NO") << " capped="
            << (rep.capped ? "YES" : "no") << " safe="
            << (rep.safe ? "yes" : "NO") << "\n"
            << "  rounds: worst " << rep.worst_rounds << " total "
            << rep.total_rounds << (rounds_ok ? " (match)" : " (MISMATCH)")
            << "\n  trace hash: " << rep.trace_hash
            << (hash_ok ? " (match)" : " (MISMATCH)") << "\n";
  return rep.decided && !rep.capped && rep.safe && hash_ok && rounds_ok ? 0
                                                                        : 1;
}

}  // namespace

int main(int argc, char** argv) {
  search::SearchSpec spec;
  spec.seeds = {11, 22};
  spec.iterations = 200;
  std::string out_path;
  std::string name = "search-found";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--replay") {
      const char* v = next();
      return v != nullptr ? replay_entry(v) : usage();
    }
    const char* v = next();
    if (v == nullptr) return usage();
    if (arg == "--n") {
      spec.n = std::atoi(v);
    } else if (arg == "--strategy") {
      bool found = false;
      for (auto kind : adversary::kAllStrategies) {
        if (std::strcmp(v, adversary::strategy_name(kind)) == 0) {
          spec.strategy = kind;
          found = true;
        }
      }
      if (!found) return usage();
    } else if (arg == "--coin") {
      if (std::strcmp(v, "svss") == 0) {
        spec.mode = CoinMode::kSvss;
      } else if (std::strcmp(v, "ideal") == 0) {
        spec.mode = CoinMode::kIdealCommon;
      } else {
        return usage();
      }
    } else if (arg == "--seeds") {
      spec.seeds = parse_seeds(v);
    } else if (arg == "--iters") {
      spec.iterations = std::atoi(v);
    } else if (arg == "--population") {
      spec.population = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--search-seed") {
      spec.search_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--budget") {
      spec.max_deliveries = std::strtoull(v, nullptr, 10);
    } else if (arg == "--name") {
      name = v;
    } else if (arg == "--out") {
      out_path = v;
    } else {
      return usage();
    }
  }
  if (spec.seeds.empty() || spec.n < 4 || spec.iterations < 1) return usage();

  search::ScheduleSearch s(spec);
  auto result = s.run();
  std::cout << "evaluations: " << result.evaluations << "\n"
            << "coverage bits: " << result.coverage_bits << "\n"
            << "baseline: kind " << static_cast<int>(result.baseline_kind)
            << " worst " << result.baseline_worst_rounds << " total "
            << result.baseline_total_rounds << "\n";
  if (result.safety_violation) {
    std::cout << "SAFETY VIOLATION observed during search — triage the "
                 "spec/seed before anything else\n";
    return 1;
  }
  if (result.cap_witness) {
    std::cout << "CAP WITNESS: some schedule exhausted the delivery budget "
                 "— potential non-termination, triage before committing\n";
  }
  if (!result.have_best) {
    std::cout << "no terminating safe genome found\n";
    return 1;
  }
  std::cout << "best found: worst " << result.best.worst_rounds << " total "
            << result.best.total_rounds << " rounds ("
            << result.improvements << " improvements)\n"
            << "beats fixed baseline: "
            << (result.beats_baseline() ? "YES" : "no") << "\n";

  auto entry = search::make_corpus_entry(spec, result, name);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << entry.to_json();
    std::cout << "wrote " << out_path << "\n";
  } else {
    std::cout << entry.to_json();
  }
  return 0;
}
