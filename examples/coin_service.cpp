// coin_service: a distributed randomness beacon from the shunning common
// coin (paper Section 5).
//
// n processes jointly flip a sequence of coins no t-subset can predict or
// fix.  Each round runs the full SCC: every process deals n SVSS secrets,
// support sets form, and the reconstructed sums decide the bit.  The
// service reports, per round, each process's view of the coin — usually
// unanimous, occasionally split (Definition 2 allows mixed outcomes in up
// to half the rounds; consumers needing perfect agreement run ABA on top).
//
//   $ ./coin_service [rounds] [seed] [--fault]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/runner.hpp"

int main(int argc, char** argv) {
  std::uint32_t rounds = argc > 1 ? static_cast<std::uint32_t>(
                                        std::strtoul(argv[1], nullptr, 10))
                                  : 8;
  std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  bool with_fault = argc > 3 && std::strcmp(argv[3], "--fault") == 0;

  svss::RunnerConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.seed = seed;
  if (with_fault) {
    cfg.faults[3] = svss::ByzConfig{svss::ByzKind::kWrongRecon};
    std::printf("(process 3 is corrupted and lies in reconstruction)\n");
  }
  svss::Runner service(cfg);

  int unanimous[2] = {0, 0};
  int mixed = 0;
  for (std::uint32_t round = 1; round <= rounds; ++round) {
    for (int i = 0; i < cfg.n; ++i) {
      svss::Context ctx = service.ctx(i);
      service.node(i).coin(ctx, round).start(ctx);
    }
    (void)service.engine().run_until([&] {
      for (int i : service.honest_ids()) {
        const svss::CoinSession* cs = service.node(i).find_coin(round);
        if (cs == nullptr || !cs->has_output()) return false;
      }
      return true;
    });

    std::printf("round %2u: bits =", round);
    int first = -1;
    bool agree = true;
    for (int i : service.honest_ids()) {
      const svss::CoinSession* cs = service.node(i).find_coin(round);
      int bit = cs != nullptr && cs->has_output() ? cs->output() : -1;
      std::printf(" %d", bit);
      if (first < 0) first = bit;
      if (bit != first) agree = false;
    }
    std::printf("  %s\n", agree ? "(unanimous)" : "(split)");
    if (agree && (first == 0 || first == 1)) {
      unanimous[first]++;
    } else {
      ++mixed;
    }
  }

  std::printf(
      "\nsummary over %u rounds: unanimous-0 %d, unanimous-1 %d, split %d\n",
      rounds, unanimous[0], unanimous[1], mixed);
  std::printf("messages total: %llu\n",
              static_cast<unsigned long long>(
                  service.engine().metrics().packets_sent));
  auto blacklist = service.honest_shun_pairs();
  if (!blacklist.empty()) {
    std::printf("shun pairs accumulated: %zu\n", blacklist.size());
  }
  return 0;
}
