// coin_service: a distributed randomness beacon from the shunning common
// coin (paper Section 5).
//
// n processes jointly flip a sequence of coins no t-subset can predict or
// fix.  Each round runs the full SCC: every process deals n SVSS secrets,
// support sets form, and the reconstructed sums decide the bit.  The
// service reports, per round, each process's view of the coin — usually
// unanimous, occasionally split (Definition 2 allows mixed outcomes in up
// to half the rounds; consumers needing perfect agreement run ABA on top).
//
// Two deployment shapes:
//
//   $ ./coin_service [rounds] [seed] [--fault]
//       In-process beacon over the deterministic simulator.
//
//   $ ./coin_service --id I --peers H:P,H:P,... [--rounds R] [--seed S]
//       One beacon node of a REAL multi-process deployment: slot I binds
//       peers[I] and flips R coins with the fleet over TCP, printing its
//       view of each bit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/service_builder.hpp"

namespace {

int run_daemon(int id, const std::string& peers_spec, std::uint32_t rounds,
               std::uint64_t seed) {
  auto cluster = svss::net::parse_cluster(peers_spec);
  if (!cluster) {
    std::fprintf(stderr, "coin_service: bad --peers spec\n");
    return 2;
  }
  if (id < 0 || id >= cluster->n()) {
    std::fprintf(stderr, "coin_service: --id outside the fleet\n");
    return 2;
  }
  svss::DaemonService beacon =
      svss::ServiceBuilder{}.seed(seed).build_daemon(id, *cluster);
  if (!beacon.start()) {
    std::fprintf(stderr, "coin_service[%d]: failed to bind endpoint\n", id);
    return 2;
  }
  std::printf("coin_service[%d]: fleet of %d, %u rounds\n", id, cluster->n(),
              rounds);
  for (std::uint32_t round = 1; round <= rounds; ++round) {
    {
      // Coin rounds are independent sessions: starting round r as soon as
      // our round r-1 completed is fine even if peers lag — their messages
      // route to lazily created sessions.
      svss::Context ctx = beacon.ctx();
      beacon.node().coin(ctx, round).start(ctx);
    }
    bool done = beacon.run_until(
        [&] {
          const svss::CoinSession* cs = beacon.node().find_coin(round);
          return cs != nullptr && cs->has_output();
        },
        30'000);
    if (!done) {
      if (svss::DaemonService::stop_requested()) {
        std::printf("coin_service[%d]: stopped by signal at round %u, "
                    "msgs=%llu\n",
                    id, round,
                    static_cast<unsigned long long>(
                        beacon.transport().metrics().packets_sent));
        beacon.shutdown();
        return 0;
      }
      std::printf("coin_service[%d]: round %u TIMEOUT\n", id, round);
      return 1;
    }
    std::printf("coin_service[%d]: round %u bit=%d\n", id, round,
                beacon.node().find_coin(round)->output());
    std::fflush(stdout);
  }
  beacon.linger(2'000);
  beacon.shutdown();
  std::printf("coin_service[%d]: shutdown msgs=%llu bytes=%llu\n", id,
              static_cast<unsigned long long>(
                  beacon.transport().metrics().packets_sent),
              static_cast<unsigned long long>(
                  beacon.transport().metrics().bytes_sent));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int id = -1;
  std::string peers;
  std::uint32_t rounds = 8;
  std::uint64_t seed = 11;
  bool with_fault = false;
  bool daemon = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--id") == 0 && a + 1 < argc) {
      id = std::atoi(argv[++a]);
      daemon = true;
    } else if (std::strcmp(argv[a], "--peers") == 0 && a + 1 < argc) {
      peers = argv[++a];
    } else if (std::strcmp(argv[a], "--rounds") == 0 && a + 1 < argc) {
      rounds = static_cast<std::uint32_t>(std::strtoul(argv[++a], nullptr, 10));
    } else if (std::strcmp(argv[a], "--seed") == 0 && a + 1 < argc) {
      seed = std::strtoull(argv[++a], nullptr, 10);
    } else if (std::strcmp(argv[a], "--fault") == 0) {
      with_fault = true;
    } else if (a == 1) {
      rounds = static_cast<std::uint32_t>(std::strtoul(argv[a], nullptr, 10));
    } else if (a == 2) {
      seed = std::strtoull(argv[a], nullptr, 10);
    }
  }
  if (daemon) return run_daemon(id, peers, rounds, seed);

  svss::ServiceBuilder builder;
  builder.n(4).t(1).seed(seed);
  if (with_fault) {
    builder.fault(3, svss::ByzConfig{svss::ByzKind::kWrongRecon});
    std::printf("(process 3 is corrupted and lies in reconstruction)\n");
  }
  svss::Runner service = builder.build_runner();
  int n = service.config().n;

  int unanimous[2] = {0, 0};
  int mixed = 0;
  for (std::uint32_t round = 1; round <= rounds; ++round) {
    for (int i = 0; i < n; ++i) {
      svss::Context ctx = service.ctx(i);
      service.node(i).coin(ctx, round).start(ctx);
    }
    (void)service.engine().run_until([&] {
      for (int i : service.honest_ids()) {
        const svss::CoinSession* cs = service.node(i).find_coin(round);
        if (cs == nullptr || !cs->has_output()) return false;
      }
      return true;
    });

    std::printf("round %2u: bits =", round);
    int first = -1;
    bool agree = true;
    for (int i : service.honest_ids()) {
      const svss::CoinSession* cs = service.node(i).find_coin(round);
      int bit = cs != nullptr && cs->has_output() ? cs->output() : -1;
      std::printf(" %d", bit);
      if (first < 0) first = bit;
      if (bit != first) agree = false;
    }
    std::printf("  %s\n", agree ? "(unanimous)" : "(split)");
    if (agree && (first == 0 || first == 1)) {
      unanimous[first]++;
    } else {
      ++mixed;
    }
  }

  std::printf(
      "\nsummary over %u rounds: unanimous-0 %d, unanimous-1 %d, split %d\n",
      rounds, unanimous[0], unanimous[1], mixed);
  std::printf("messages total: %llu\n",
              static_cast<unsigned long long>(
                  service.engine().metrics().packets_sent));
  auto blacklist = service.honest_shun_pairs();
  if (!blacklist.empty()) {
    std::printf("shun pairs accumulated: %zu\n", blacklist.size());
  }
  return 0;
}
