// Quickstart: share a secret among n processes with SVSS, reconstruct it,
// and run one Byzantine agreement — the two primitives of the library in
// ~40 lines of application code.
//
//   $ ./quickstart [seed]
//
// Everything runs inside the deterministic network simulator: same seed,
// same run.
#include <cstdio>
#include <cstdlib>

#include "core/service_builder.hpp"

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // A 4-process system tolerating t = 1 Byzantine fault (n > 3t).
  // ServiceBuilder is the front door: the same builder also produces
  // socket-loopback runners (.transport(svss::TransportKind::kSocketLoopback))
  // and real multi-process daemons (.build_daemon(id, cluster)) — see
  // examples/agreement_cluster.cpp for the daemon shape.
  svss::ServiceBuilder builder;
  builder.n(4).t(1).seed(seed).scheduler(svss::SchedulerKind::kRandom);

  // --- 1. Verifiable secret sharing ---------------------------------
  {
    svss::Runner runner = builder.build_runner();
    svss::Fp secret(123456789);
    auto res = runner.run_svss(secret, /*dealer=*/0);
    std::printf("SVSS: share complete at every honest process: %s\n",
                res.all_honest_shared ? "yes" : "no");
    for (const auto& [process, output] : res.outputs) {
      std::printf("  process %d reconstructed: %llu\n", process,
                  output ? static_cast<unsigned long long>(output->value())
                         : 0ull);
    }
    std::printf("  network cost: %llu messages, %llu bytes\n",
                static_cast<unsigned long long>(res.metrics.packets_sent),
                static_cast<unsigned long long>(res.metrics.bytes_sent));
  }

  // --- 2. Byzantine agreement ----------------------------------------
  {
    svss::Runner runner = builder.build_runner();
    // Divided inputs: the common coin breaks the symmetry.
    auto res = runner.run_aba({0, 1, 0, 1}, svss::CoinMode::kSvss);
    std::printf("ABA:  decided=%s value=%d rounds=%u\n",
                res.all_decided && res.agreed ? "yes" : "NO",
                res.value, res.max_round);
    std::printf("  network cost: %llu messages\n",
                static_cast<unsigned long long>(res.metrics.packets_sent));
  }
  return 0;
}
