// E8 — the resilience boundary (optimality: n > 3t is tight, [PSL 80]).
//
// At n = 3t + 1 the protocol works with t Byzantine processes (measured
// here as: agreement+termination across seed sweeps).  At n = 3t the
// impossibility bites: with t silent processes the quorums n - t = 2t
// cannot exclude t faulty echoes while still being reachable, and runs
// stall (no liveness) — the simulator demonstrates the boundary rather
// than disagreement, since our honest-code faulty processes do not execute
// the split-brain strategy of the lower-bound proof.
#include "bench_common.hpp"

namespace svss::bench {
namespace {

void BM_AtOptimalResilience(benchmark::State& state) {
  int t = static_cast<int>(state.range(0));
  int n = 3 * t + 1;
  std::uint64_t runs = 0;
  double decided_runs = 0;
  double violations = 0;
  Metrics total;
  for (auto _ : state) {
    auto cfg = config(n, 8000 + runs * 7);
    cfg.t = t;
    for (int i = n - t; i < n; ++i) {
      cfg.faults[i] = ByzConfig{ByzKind::kBitFlip, 0, 0.2};
    }
    Runner r(cfg);
    auto res = r.run_aba(alternating_inputs(n), CoinMode::kIdealCommon);
    if (res.all_decided) decided_runs += 1;
    if (res.all_decided && !res.agreed) violations += 1;
    total.merge(res.metrics);
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["n"] = benchmark::Counter(static_cast<double>(n));
  state.counters["p_terminated"] = benchmark::Counter(decided_runs / d);
  state.counters["violations"] = benchmark::Counter(violations);
}
BENCHMARK(BM_AtOptimalResilience)->Arg(1)->Arg(2)->Arg(3)->Iterations(10);

// n = 3t: with t crashed processes, honest quorums are unreachable and the
// run stalls (p_terminated ~ 0).  Delivery-capped short runs keep the
// bench finite.
void BM_BeyondResilienceBound(benchmark::State& state) {
  int t = static_cast<int>(state.range(0));
  int n = 3 * t;
  std::uint64_t runs = 0;
  double decided_runs = 0;
  Metrics total;
  for (auto _ : state) {
    auto cfg = config(n, 8100 + runs * 7);
    cfg.t = t;
    cfg.allow_sub_resilience = true;  // n = 3t is the point of this bench
    cfg.max_deliveries = 2'000'000;
    cfg.warn_on_cap = false;  // stalling is the expected outcome here
    for (int i = n - t; i < n; ++i) cfg.faults[i] = ByzConfig{ByzKind::kSilent};
    Runner r(cfg);
    auto res = r.run_aba(alternating_inputs(n), CoinMode::kIdealCommon);
    if (res.all_decided) decided_runs += 1;
    total.merge(res.metrics);
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["n"] = benchmark::Counter(static_cast<double>(n));
  state.counters["p_terminated"] = benchmark::Counter(decided_runs / d);
}
BENCHMARK(BM_BeyondResilienceBound)->Arg(1)->Arg(2)->Arg(3)->Iterations(6);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
