// E4 — the shunning budget (Section 5's counting argument).
//
// Claim: a faulty process can break validity/binding against a given
// honest process at most once; across the whole system the adversary's
// budget is t * (n - t) = O(n^2) broken sessions, after which every coin
// round is clean.  We run many sequential SVSS sessions with persistent
// corrupting processes and report (a) cumulative distinct shun pairs and
// (b) in which session the last new pair appeared — both must stay at or
// under the budget, and new pairs must dry up.
#include "bench_common.hpp"

#include <set>

namespace svss::bench {
namespace {

void BM_ShunBudgetSequentialSessions(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int t = (n - 1) / 3;
  double total_pairs = 0;
  double last_new_session = 0;
  double broken_sessions = 0;
  std::uint64_t runs = 0;
  constexpr std::uint32_t kSessions = 12;
  for (auto _ : state) {
    auto cfg = config(n, 500 + runs);
    for (int i = n - t; i < n; ++i) {
      cfg.faults[i] = ByzConfig{ByzKind::kWrongRecon};
    }
    Runner r(cfg);
    std::set<std::pair<int, int>> pairs;
    std::uint32_t last_new = 0;
    std::uint32_t broken = 0;
    // Sequential sessions inside ONE engine so DMM state persists: dealer
    // rotates among honest processes.
    for (std::uint32_t c = 1; c <= kSessions; ++c) {
      SessionId sid = svss_top_id(c, static_cast<int>(c) % (n - t));
      for (int i = 0; i < n; ++i) {
        Context cx = r.ctx(i);
        if (i == sid.owner) r.node(i).svss(cx, sid).deal(cx, Fp(1000 + c));
      }
      (void)r.engine().run_until([&] {
        for (int i : r.honest_ids()) {
          const SvssSession* s = r.node(i).find_svss(sid);
          if (s == nullptr || !s->share_complete()) return false;
        }
        return true;
      });
      for (int i = 0; i < n; ++i) {
        const SvssSession* s = r.node(i).find_svss(sid);
        if (s != nullptr && s->share_complete()) {
          Context cx = r.ctx(i);
          r.node(i).svss(cx, sid).start_reconstruct(cx);
        }
      }
      (void)r.engine().run_until([&] {
        for (int i : r.honest_ids()) {
          const SvssSession* s = r.node(i).find_svss(sid);
          if (s == nullptr || !s->has_output()) return false;
        }
        return true;
      });
      // Outcome bookkeeping.
      std::set<std::optional<std::uint64_t>> distinct;
      for (int i : r.honest_ids()) {
        const SvssSession* s = r.node(i).find_svss(sid);
        if (s != nullptr && s->has_output()) {
          auto out = s->output();
          distinct.insert(out ? std::optional<std::uint64_t>(out->value())
                              : std::nullopt);
        }
      }
      bool correct = distinct.size() == 1 && *distinct.begin() &&
                     **distinct.begin() == 1000 + c;
      if (!correct) ++broken;
      std::size_t before = pairs.size();
      for (const auto& p : r.honest_shun_pairs()) pairs.insert(p);
      if (pairs.size() > before) last_new = c;
    }
    total_pairs += static_cast<double>(pairs.size());
    last_new_session += last_new;
    broken_sessions += broken;
    ++runs;
  }
  double d = static_cast<double>(runs);
  state.counters["shun_pairs"] = benchmark::Counter(total_pairs / d);
  state.counters["budget"] =
      benchmark::Counter(static_cast<double>(t * (n - t)));
  state.counters["last_new_pair_session"] =
      benchmark::Counter(last_new_session / d);
  state.counters["broken_sessions"] = benchmark::Counter(broken_sessions / d);
}
BENCHMARK(BM_ShunBudgetSequentialSessions)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
