// E3 — SVSS share + reconstruct cost and adversarial behaviour (Section 4).
//
// Claim: one SVSS invocation runs 4 * C(n,2) MW-SVSS children plus one
// bivariate distribution — polynomial overall (Theta(n^5) packets in our
// substrate) — and under adversarial dealers either binds or produces a
// new shun pair (Lemma 3).
#include "bench_common.hpp"

namespace svss::bench {
namespace {

void BM_SvssFull(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Runner r(config(n, 100 + runs));
    auto res = r.run_svss(Fp(987));
    if (!res.all_honest_output) state.SkipWithError("did not terminate");
    total.merge(res.metrics);
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
}
BENCHMARK(BM_SvssFull)->Arg(4)->Arg(7)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_SvssShareOnly(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Runner r(config(n, 200 + runs));
    auto res = r.run_svss(Fp(1), 0, /*reconstruct=*/false);
    if (!res.all_honest_shared) state.SkipWithError("share did not complete");
    total.merge(res.metrics);
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
}
BENCHMARK(BM_SvssShareOnly)->Arg(4)->Arg(7)->Arg(10)
    ->Unit(benchmark::kMillisecond);

// Adversarial dealer: equivocating shares.  Reports how often the session
// still bound vs. how many shun pairs were created (binding-or-shun).
void BM_SvssEquivocatingDealer(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double shuns = 0;
  double bound_runs = 0;
  for (auto _ : state) {
    auto cfg = config(n, 300 + runs);
    cfg.faults[0] = ByzConfig{ByzKind::kEquivocate};
    Runner r(cfg);
    auto res = r.run_svss(Fp(31337), /*dealer=*/0);
    total.merge(res.metrics);
    shuns += static_cast<double>(res.shun_pairs.size());
    std::set<std::optional<std::uint64_t>> distinct;
    for (const auto& [i, out] : res.outputs) {
      distinct.insert(out ? std::optional<std::uint64_t>(out->value())
                          : std::nullopt);
    }
    if (distinct.size() <= 1) bound_runs += 1;
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
  state.counters["shun_pairs"] =
      benchmark::Counter(shuns / static_cast<double>(runs));
  state.counters["bound_frac"] =
      benchmark::Counter(bound_runs / static_cast<double>(runs));
}
BENCHMARK(BM_SvssEquivocatingDealer)->Arg(4)->Arg(7)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
