#!/usr/bin/env python3
"""Bench regression gate.

Compares a fresh `--benchmark_format=json` run against the committed
baseline and fails on a >20% regression in any gated counter.

The gated counters are the *deterministic* protocol-cost series (msgs,
bytes, rounds): per bench/baselines/README.md they are a pure function of
the seed, so any increase is a real cost regression, not machine noise.
Wall-clock (`real_time`) is machine-specific and reported informationally
only — regenerate baselines on CI-comparable hardware when a perf PR lands.

Usage:
  check_regression.py NEW.json BASELINE.json [--threshold 0.20]
"""

import argparse
import json
import sys

GATED_COUNTERS = ("msgs", "bytes", "rounds")


def load(path):
    # A gate that cannot find its baseline must fail loudly: a typo'd
    # filename silently "passing" is indistinguishable from a green gate.
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        sys.exit(f"check_regression: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"check_regression: {path} is not valid JSON: {e}")
    benches = {b["name"]: b for b in data.get("benchmarks", [])}
    if not benches:
        sys.exit(f"check_regression: {path} contains no benchmarks "
                 "(wrong file, or a bench run that produced nothing)")
    return benches


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("new_json")
    parser.add_argument("baseline_json")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="allowed fractional increase (default 0.20)")
    args = parser.parse_args()

    new = load(args.new_json)
    base = load(args.baseline_json)

    failures = []
    for name, base_bench in sorted(base.items()):
        new_bench = new.get(name)
        if new_bench is None:
            failures.append(f"{name}: missing from new run")
            continue
        for key in GATED_COUNTERS:
            if key not in base_bench:
                continue
            b, n = base_bench[key], new_bench.get(key)
            if n is None:
                failures.append(f"{name}/{key}: counter disappeared")
                continue
            limit = b * (1.0 + args.threshold)
            verdict = "FAIL" if (b > 0 and n > limit) else "ok"
            delta = (n - b) / b * 100.0 if b else 0.0
            print(f"{verdict:4} {name:55} {key:6} "
                  f"base={b:14.0f} new={n:14.0f} ({delta:+6.1f}%)")
            if verdict == "FAIL":
                failures.append(f"{name}/{key}: {b:.0f} -> {n:.0f} "
                                f"({delta:+.1f}% > +{args.threshold:.0%})")
        # Informational: wall-clock delta (not gated; machine-specific).
        bt, nt = base_bench.get("real_time"), new_bench.get("real_time")
        if bt and nt:
            print(f"info {name:55} time   "
                  f"base={bt:14.2f} new={nt:14.2f} "
                  f"({(nt - bt) / bt * 100.0:+6.1f}%) [not gated]")

    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench gate: all counters within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
