// E5 — the shunning common coin (Section 5, Definition 2).
//
// Claims: (a) the coin terminates for all honest processes; (b) for each
// sigma in {0,1}, P[all honest output sigma] >= 1/4 in clean (non-shunned)
// invocations; (c) cost per invocation is polynomial (n^2 SVSS sessions).
// Reports unanimity frequencies over seed sweeps plus the standard cost
// counters, honest and with faults.
#include "bench_common.hpp"

namespace svss::bench {
namespace {

void coin_sweep(benchmark::State& state, int n,
                std::optional<ByzKind> fault) {
  Metrics total;
  std::uint64_t runs = 0;
  double unanimous[2] = {0, 0};
  double mixed = 0;
  double shun_runs = 0;
  for (auto _ : state) {
    auto cfg = config(n, 900 + runs * 13);
    if (fault) cfg.faults[n - 1] = ByzConfig{*fault};
    Runner r(cfg);
    auto res = r.run_coin();
    total.merge(res.metrics);
    if (!res.shun_pairs.empty()) shun_runs += 1;
    if (res.all_output && res.agreed) {
      unanimous[res.bits.begin()->second] += 1;
    } else {
      mixed += 1;
    }
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["p_unanimous0"] = benchmark::Counter(unanimous[0] / d);
  state.counters["p_unanimous1"] = benchmark::Counter(unanimous[1] / d);
  state.counters["p_mixed"] = benchmark::Counter(mixed / d);
  state.counters["p_shun_run"] = benchmark::Counter(shun_runs / d);
}

void BM_CoinHonest(benchmark::State& state) {
  coin_sweep(state, static_cast<int>(state.range(0)), std::nullopt);
}
BENCHMARK(BM_CoinHonest)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(24);

void BM_CoinHonestLarge(benchmark::State& state) {
  coin_sweep(state, static_cast<int>(state.range(0)), std::nullopt);
}
BENCHMARK(BM_CoinHonestLarge)->Arg(7)->Unit(benchmark::kSecond)
    ->Iterations(2);

void BM_CoinSilentFault(benchmark::State& state) {
  coin_sweep(state, static_cast<int>(state.range(0)), ByzKind::kSilent);
}
BENCHMARK(BM_CoinSilentFault)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(16);

void BM_CoinWrongReconFault(benchmark::State& state) {
  coin_sweep(state, static_cast<int>(state.range(0)), ByzKind::kWrongRecon);
}
BENCHMARK(BM_CoinWrongReconFault)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(16);

void BM_CoinBitFlipFault(benchmark::State& state) {
  coin_sweep(state, static_cast<int>(state.range(0)), ByzKind::kBitFlip);
}
BENCHMARK(BM_CoinBitFlipFault)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(16);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
