// E7 — baseline contrast (paper Section 1's comparison table).
//
//   Ben-Or 83:      n > 5t, local coins  -> exponential expected rounds
//   Bracha-84-style: n > 3t, local coins -> exponential expected rounds
//   This paper:      n > 3t, SVSS coin   -> polynomial expected rounds
//
// We sweep n and report average decision rounds for each protocol under
// identical mixed-input workloads.  The expected shape: local-coin rounds
// grow quickly with n (coins of ~n-t independent processes must align),
// common-coin rounds stay flat.
#include "bench_common.hpp"

namespace svss::bench {
namespace {

void BM_BenOrRounds(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double rounds_total = 0;
  for (auto _ : state) {
    auto cfg = config(n, 7000 + runs * 3);
    cfg.t = (n - 1) / 5;  // Ben-Or's resilience bound
    Runner r(cfg);
    auto res = r.run_benor(alternating_inputs(n));
    total.merge(res.metrics);
    rounds_total += res.max_round;
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["decide_rounds_avg"] = benchmark::Counter(rounds_total / d);
}
BENCHMARK(BM_BenOrRounds)->Arg(6)->Arg(8)->Arg(12)->Arg(16)->Arg(21)
    ->Iterations(20);

void BM_BrachaLocalCoinRounds(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double rounds_total = 0;
  for (auto _ : state) {
    Runner r(config(n, 7100 + runs * 3));
    auto res = r.run_aba(alternating_inputs(n), CoinMode::kLocal);
    total.merge(res.metrics);
    rounds_total += res.max_round;
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["decide_rounds_avg"] = benchmark::Counter(rounds_total / d);
}
BENCHMARK(BM_BrachaLocalCoinRounds)->Arg(4)->Arg(7)->Arg(10)->Arg(13)->Arg(16)
    ->Iterations(12);

void BM_SvssCoinRounds(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double rounds_total = 0;
  for (auto _ : state) {
    Runner r(config(n, 7200 + runs * 3));
    auto res = r.run_aba(alternating_inputs(n), CoinMode::kSvss);
    total.merge(res.metrics);
    rounds_total += res.max_round;
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["decide_rounds_avg"] = benchmark::Counter(rounds_total / d);
}
BENCHMARK(BM_SvssCoinRounds)->Arg(4)->Unit(benchmark::kMillisecond)
    ->Iterations(8);

void BM_SvssCoinRoundsLarge(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double rounds_total = 0;
  for (auto _ : state) {
    Runner r(config(n, 7400 + runs * 3));
    auto res = r.run_aba(alternating_inputs(n), CoinMode::kSvss);
    total.merge(res.metrics);
    rounds_total += res.max_round;
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["decide_rounds_avg"] = benchmark::Counter(rounds_total / d);
}
BENCHMARK(BM_SvssCoinRoundsLarge)->Arg(7)->Unit(benchmark::kSecond)
    ->Iterations(1);

// Same series with the coin abstracted: isolates the round-count shape
// from the per-round coin cost so the contrast extends to larger n.
void BM_CommonCoinRounds(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double rounds_total = 0;
  for (auto _ : state) {
    Runner r(config(n, 7300 + runs * 3));
    auto res = r.run_aba(alternating_inputs(n), CoinMode::kIdealCommon);
    total.merge(res.metrics);
    rounds_total += res.max_round;
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["decide_rounds_avg"] = benchmark::Counter(rounds_total / d);
}
BENCHMARK(BM_CommonCoinRounds)->Arg(4)->Arg(7)->Arg(10)->Arg(13)->Arg(16)
    ->Iterations(20);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
