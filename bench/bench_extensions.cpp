// E10 — the extension stack: ACS and ASMPC secure sum.
//
// Claims under test: the common-subset protocol agrees on >= n - t members
// at polynomial cost; the secure-sum functionality produces the correct
// core sum even when a reveal-phase liar must be error-corrected; costs
// scale polynomially with n.
#include "bench_common.hpp"

namespace svss::bench {
namespace {

void BM_AcsHonest(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double subset_size = 0;
  double agreements = 0;
  for (auto _ : state) {
    Runner r(config(n, 11000 + runs * 7));
    std::vector<Bytes> proposals;
    for (int i = 0; i < n; ++i) {
      proposals.push_back(Bytes{static_cast<std::uint8_t>(i)});
    }
    auto res = r.run_acs(proposals);
    total.merge(res.metrics);
    if (res.agreed) {
      agreements += 1;
      subset_size += static_cast<double>(res.outputs.begin()->second.size());
    }
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["p_agreed"] = benchmark::Counter(agreements / d);
  state.counters["subset_avg"] = benchmark::Counter(subset_size / d);
}
BENCHMARK(BM_AcsHonest)->Arg(4)->Arg(7)->Arg(10)->Iterations(8);

void BM_AcsWithSilentFaults(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int t = (n - 1) / 3;
  Metrics total;
  std::uint64_t runs = 0;
  double agreements = 0;
  for (auto _ : state) {
    auto cfg = config(n, 12000 + runs * 7);
    for (int i = n - t; i < n; ++i) cfg.faults[i] = ByzConfig{ByzKind::kSilent};
    Runner r(cfg);
    std::vector<Bytes> proposals;
    for (int i = 0; i < n; ++i) {
      proposals.push_back(Bytes{static_cast<std::uint8_t>(i)});
    }
    auto res = r.run_acs(proposals);
    total.merge(res.metrics);
    if (res.agreed) agreements += 1;
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["p_agreed"] = benchmark::Counter(agreements / d);
}
BENCHMARK(BM_AcsWithSilentFaults)->Arg(4)->Arg(7)->Iterations(8);

void BM_SecureSumHonest(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double correct = 0;
  for (auto _ : state) {
    Runner r(config(n, 13000 + runs * 7));
    std::vector<Fp> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(Fp(100 + i));
    auto res = r.run_secure_sum(inputs);
    total.merge(res.metrics);
    if (res.agreed && res.all_output) {
      Fp expected(0);
      for (int d : res.cores.begin()->second) {
        expected += inputs[static_cast<std::size_t>(d)];
      }
      if (expected.value() == res.outputs.begin()->second) correct += 1;
    }
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["p_correct"] = benchmark::Counter(correct / d);
}
BENCHMARK(BM_SecureSumHonest)->Arg(4)->Arg(7)->Iterations(6)
    ->Unit(benchmark::kMillisecond);

void BM_SecureSumWithRevealLiar(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double correct = 0;
  double completed = 0;
  for (auto _ : state) {
    auto cfg = config(n, 14000 + runs * 7);
    cfg.faults[n - 1] = ByzConfig{ByzKind::kBitFlip, 0, 0.9};
    Runner r(cfg);
    std::vector<Fp> inputs;
    for (int i = 0; i < n; ++i) inputs.push_back(Fp(5 * i + 1));
    auto res = r.run_secure_sum(inputs);
    total.merge(res.metrics);
    if (res.all_output) {
      completed += 1;
      Fp expected(0);
      for (int d : res.cores.begin()->second) {
        expected += inputs[static_cast<std::size_t>(d)];
      }
      if (res.agreed && expected.value() == res.outputs.begin()->second) {
        correct += 1;
      }
    }
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["p_completed"] = benchmark::Counter(completed / d);
  state.counters["p_correct_of_completed"] =
      benchmark::Counter(completed > 0 ? correct / completed : 0);
}
BENCHMARK(BM_SecureSumWithRevealLiar)->Arg(4)->Iterations(6)
    ->Unit(benchmark::kMillisecond);

void BM_MvbaRounds(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double agreements = 0;
  for (auto _ : state) {
    Runner r(config(n, 15000 + runs * 7));
    std::vector<Fp> proposals;
    for (int i = 0; i < n; ++i) proposals.push_back(Fp(1 + (i % 2)));
    auto res = r.run_mvba(proposals, Fp(0));
    total.merge(res.metrics);
    if (res.agreed) agreements += 1;
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["p_agreed"] = benchmark::Counter(agreements / d);
}
BENCHMARK(BM_MvbaRounds)->Arg(4)->Arg(7)->Arg(10)->Iterations(10);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
