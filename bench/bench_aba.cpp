// E6 — the headline result (Theorem 1): almost-surely terminating,
// optimally resilient, polynomially efficient agreement.
//
// Reports, per system size and fault mix: decision rounds (expected O(1)
// good-coin rounds + at most t(n-t) shunning rounds => polynomial),
// message/byte cost per run, and agreement/validity violations (must be
// zero).  The full SVSS-coin stack runs at n in {4, 7}; the ideal-coin
// abstraction extends the round-count series to larger n (the SCC is
// measured separately in bench_coin).
#include "bench_common.hpp"

namespace svss::bench {
namespace {

void aba_sweep(benchmark::State& state, int n, CoinMode mode,
               std::optional<ByzKind> fault) {
  int t = (n - 1) / 3;
  Metrics total;
  std::uint64_t runs = 0;
  double rounds_total = 0;
  double worst_round = 0;
  double violations = 0;
  for (auto _ : state) {
    auto cfg = config(n, 4200 + runs * 17);
    if (fault) {
      for (int i = n - t; i < n; ++i) cfg.faults[i] = ByzConfig{*fault};
    }
    Runner r(cfg);
    auto res = r.run_aba(alternating_inputs(n), mode);
    total.merge(res.metrics);
    if (!res.all_decided || !res.agreed) violations += 1;
    rounds_total += res.max_round;
    worst_round = std::max(worst_round, static_cast<double>(res.max_round));
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  state.counters["decide_rounds_avg"] = benchmark::Counter(rounds_total / d);
  state.counters["decide_rounds_max"] = benchmark::Counter(worst_round);
  state.counters["violations"] = benchmark::Counter(violations);
}

void BM_AbaSvssCoinHonest(benchmark::State& state) {
  aba_sweep(state, static_cast<int>(state.range(0)), CoinMode::kSvss,
            std::nullopt);
}
BENCHMARK(BM_AbaSvssCoinHonest)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(10);

// n = 7 runs tens of millions of packets per coin round; keep iterations
// low (the shape, not the variance, is what E6 needs here).
void BM_AbaSvssCoinHonestLarge(benchmark::State& state) {
  aba_sweep(state, static_cast<int>(state.range(0)), CoinMode::kSvss,
            std::nullopt);
}
BENCHMARK(BM_AbaSvssCoinHonestLarge)->Arg(7)
    ->Unit(benchmark::kSecond)->Iterations(1);

void BM_AbaSvssCoinSilentFaults(benchmark::State& state) {
  aba_sweep(state, static_cast<int>(state.range(0)), CoinMode::kSvss,
            ByzKind::kSilent);
}
BENCHMARK(BM_AbaSvssCoinSilentFaults)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(8);

void BM_AbaSvssCoinActiveFaults(benchmark::State& state) {
  aba_sweep(state, static_cast<int>(state.range(0)), CoinMode::kSvss,
            ByzKind::kWrongRecon);
}
BENCHMARK(BM_AbaSvssCoinActiveFaults)->Arg(4)
    ->Unit(benchmark::kMillisecond)->Iterations(8);

// Round-count scaling with the SCC abstracted as an ideal common coin:
// expected rounds stay O(1) in n (the polynomial total cost comes from the
// per-round coin, measured in bench_coin).
void BM_AbaIdealCoinScaling(benchmark::State& state) {
  aba_sweep(state, static_cast<int>(state.range(0)), CoinMode::kIdealCommon,
            ByzKind::kBitFlip);
}
BENCHMARK(BM_AbaIdealCoinScaling)->Arg(4)->Arg(7)->Arg(10)->Arg(13)->Arg(16)
    ->Arg(25)->Iterations(12);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
