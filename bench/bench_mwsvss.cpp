// E2 — MW-SVSS share + reconstruct cost (paper Section 3).
//
// Claim: one MW-SVSS invocation is polynomial — Theta(n^2) RB instances of
// Theta(n^2) packets each plus Theta(n^2) direct messages, and O(1) causal
// rounds.  Sweep n; also measure the share phase alone, and the protocol
// under faulty dealer/moderator mixes (cost must stay polynomial when the
// adversary participates).
#include "bench_common.hpp"

namespace svss::bench {
namespace {

void BM_MwSvssFull(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Runner r(config(n, 100 + runs));
    auto res = r.run_mwsvss(Fp(424242), Fp(424242));
    if (!res.all_honest_output) state.SkipWithError("did not terminate");
    total.merge(res.metrics);
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
}
BENCHMARK(BM_MwSvssFull)->Arg(4)->Arg(7)->Arg(10)->Arg(13)->Arg(16);

void BM_MwSvssShareOnly(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Runner r(config(n, 200 + runs));
    auto res = r.run_mwsvss(Fp(1), Fp(1), 0, 1, /*reconstruct=*/false);
    if (!res.all_honest_shared) state.SkipWithError("share did not complete");
    total.merge(res.metrics);
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
}
BENCHMARK(BM_MwSvssShareOnly)->Arg(4)->Arg(7)->Arg(10)->Arg(13)->Arg(16);

// Faulty confirmer corrupting its reconstruct broadcasts: the protocol
// still terminates with polynomial cost; detections happen.
void BM_MwSvssWrongRecon(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  double shuns = 0;
  for (auto _ : state) {
    auto cfg = config(n, 300 + runs);
    cfg.faults[n - 1] = ByzConfig{ByzKind::kWrongRecon};
    Runner r(cfg);
    auto res = r.run_mwsvss(Fp(77), Fp(77));
    total.merge(res.metrics);
    shuns += static_cast<double>(res.shun_pairs.size());
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
  state.counters["shun_pairs"] = benchmark::Counter(
      shuns / static_cast<double>(runs));
}
BENCHMARK(BM_MwSvssWrongRecon)->Arg(4)->Arg(7)->Arg(10)->Arg(13);

// Hostile scheduling: the last-honest-delayed schedule must not change the
// asymptotics, only constants.
void BM_MwSvssHostileSchedule(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Runner r(config(n, 400 + runs, SchedulerKind::kDelayLastHonest));
    auto res = r.run_mwsvss(Fp(5), Fp(5));
    if (!res.all_honest_output) state.SkipWithError("did not terminate");
    total.merge(res.metrics);
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
}
BENCHMARK(BM_MwSvssHostileSchedule)->Arg(4)->Arg(7)->Arg(10);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
