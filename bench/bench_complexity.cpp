// E9 — polynomial efficiency of the full stack (the "polynomial" leg of
// Theorem 1).
//
// Sweeps n for each layer and fits the growth exponent of messages and
// bytes on the log-log series: log(cost_n2 / cost_n1) / log(n2 / n1).
// Expected exponents: RB ~ 2, MW-SVSS ~ 3-4, SVSS ~ 5, coin ~ 6-7 — all
// constants, i.e. polynomial; the contrast series (local-coin agreement
// rounds) grows super-polynomially with n instead.
#include "bench_common.hpp"

#include <cmath>

namespace svss::bench {
namespace {

double fit_exponent(const std::vector<std::pair<int, double>>& series) {
  // Least-squares slope of log(cost) vs log(n).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  double k = static_cast<double>(series.size());
  for (const auto& [n, cost] : series) {
    double x = std::log(static_cast<double>(n));
    double y = std::log(cost);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  return (k * sxy - sx * sy) / (k * sxx - sx * sx);
}

void BM_ExponentMwSvss(benchmark::State& state) {
  std::vector<std::pair<int, double>> msgs;
  for (auto _ : state) {
    msgs.clear();
    for (int n : {4, 7, 10, 13, 16}) {
      Runner r(config(n, 9000 + static_cast<std::uint64_t>(n)));
      auto res = r.run_mwsvss(Fp(1), Fp(1));
      msgs.emplace_back(n, static_cast<double>(res.metrics.packets_sent));
    }
  }
  state.counters["exponent_msgs"] = benchmark::Counter(fit_exponent(msgs));
  state.counters["msgs_n16"] = benchmark::Counter(msgs.back().second);
}
BENCHMARK(BM_ExponentMwSvss)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_ExponentSvss(benchmark::State& state) {
  std::vector<std::pair<int, double>> msgs;
  for (auto _ : state) {
    msgs.clear();
    for (int n : {4, 7, 10}) {
      Runner r(config(n, 9100 + static_cast<std::uint64_t>(n)));
      auto res = r.run_svss(Fp(1));
      msgs.emplace_back(n, static_cast<double>(res.metrics.packets_sent));
    }
  }
  state.counters["exponent_msgs"] = benchmark::Counter(fit_exponent(msgs));
  state.counters["msgs_n10"] = benchmark::Counter(msgs.back().second);
}
BENCHMARK(BM_ExponentSvss)->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_ExponentCoin(benchmark::State& state) {
  std::vector<std::pair<int, double>> msgs;
  for (auto _ : state) {
    msgs.clear();
    for (int n : {4, 7}) {
      Runner r(config(n, 9200 + static_cast<std::uint64_t>(n)));
      auto res = r.run_coin();
      msgs.emplace_back(n, static_cast<double>(res.metrics.packets_sent));
    }
  }
  state.counters["exponent_msgs"] = benchmark::Counter(fit_exponent(msgs));
  state.counters["msgs_n7"] = benchmark::Counter(msgs.back().second);
}
BENCHMARK(BM_ExponentCoin)->Iterations(1)->Unit(benchmark::kMillisecond);

// Full agreement: message exponent of the end-to-end protocol (dominated
// by the per-round coin), averaged over a few seeds per point.
void BM_ExponentAba(benchmark::State& state) {
  std::vector<std::pair<int, double>> msgs;
  for (auto _ : state) {
    msgs.clear();
    for (int n : {4, 7}) {
      double sum = 0;
      // One seed per point: an n=7 full-stack run alone is minutes-scale.
      constexpr int kSeeds = 1;
      for (int s = 0; s < kSeeds; ++s) {
        Runner r(config(n, 9300 + static_cast<std::uint64_t>(n * 10 + s)));
        auto res = r.run_aba(alternating_inputs(n), CoinMode::kSvss);
        sum += static_cast<double>(res.metrics.packets_sent);
      }
      msgs.emplace_back(n, sum / kSeeds);
    }
  }
  state.counters["exponent_msgs"] = benchmark::Counter(fit_exponent(msgs));
  state.counters["msgs_n7"] = benchmark::Counter(msgs.back().second);
}
BENCHMARK(BM_ExponentAba)->Iterations(1)->Unit(benchmark::kMillisecond);

// Message-size claim: the largest single message stays polynomial (in
// fact O(n) field elements); report bytes per packet on the SVSS layer.
void BM_BytesPerPacket(benchmark::State& state) {
  std::vector<std::pair<int, double>> avg;
  for (auto _ : state) {
    avg.clear();
    for (int n : {4, 7, 10}) {
      Runner r(config(n, 9400 + static_cast<std::uint64_t>(n)));
      auto res = r.run_svss(Fp(1));
      avg.emplace_back(n, static_cast<double>(res.metrics.bytes_sent) /
                              static_cast<double>(res.metrics.packets_sent));
    }
  }
  state.counters["exponent_avg_bytes"] = benchmark::Counter(fit_exponent(avg));
  state.counters["avg_packet_bytes_n10"] = benchmark::Counter(avg.back().second);
}
BENCHMARK(BM_BytesPerPacket)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
