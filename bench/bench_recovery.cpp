// E10 — Crash-recovery cost: rejoin catch-up vs fresh join.
//
// A daemon restarted from its checkpoint re-enters the fleet with the
// catch-up handshake (core/recovery.hpp): one kEpochCatchupReq broadcast
// declaring what it already knows, answered by one kEpochCatchupState
// frame per responder carrying the missing decision records.  That is
// O(n + n*D) bytes for D missing decisions — flat in protocol rounds —
// versus re-running agreement from scratch, which costs a full epoch of
// RB + votes per instance.  All three series are pure functions of the
// configuration, so the regression gate holds them to the usual +-20%.
#include <cstdio>

#include "bench_common.hpp"
#include "core/epoch.hpp"
#include "core/recovery.hpp"

namespace svss::bench {
namespace {

EpochConfig identity_config(int n, int t) {
  EpochConfig cfg;
  cfg.epoch = 0;
  for (int i = 0; i < n; ++i) cfg.members.push_back(i);
  cfg.t = t;
  return cfg;
}

std::vector<DecisionRecord> make_records(int count) {
  std::vector<DecisionRecord> recs;
  for (int i = 0; i < count; ++i) {
    DecisionRecord rec;
    rec.epoch = 0;
    rec.instance = static_cast<std::uint32_t>(i + 1);
    rec.value = i % 2;
    rec.round = 1;
    recs.push_back(rec);
  }
  return recs;
}

// Wire cost of one rejoin against an n = 4 fleet: the request broadcast
// (the restarted daemon knows nothing) plus n-1 state replies each
// carrying all D missing records, framed exactly as DaemonService frames
// them.
void BM_RejoinCatchup(benchmark::State& state) {
  const int n = 4;
  const int decisions = static_cast<int>(state.range(0));
  const EpochConfig cfg = identity_config(n, 1);
  const std::vector<DecisionRecord> recs = make_records(decisions);
  Metrics total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Metrics m;
    Message req;
    req.type = MsgType::kEpochCatchupReq;
    req.sid.owner = 3;
    for (int g = 0; g < n - 1; ++g) {
      ++m.packets_sent;
      m.bytes_sent += req.serialized_size();
    }
    for (int g = 0; g < n - 1; ++g) {
      Message reply;
      reply.type = MsgType::kEpochCatchupState;
      reply.sid.owner = static_cast<std::int16_t>(g);
      reply.blob = encode_catchup_state(0, cfg, recs);
      ++m.packets_sent;
      m.bytes_sent += reply.serialized_size();
      benchmark::DoNotOptimize(reply.blob.data());
    }
    m.max_depth = 1;  // one round trip, independent of D
    total.merge(m);
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
}
BENCHMARK(BM_RejoinCatchup)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// The alternative a rejoining process avoids: deciding the same K
// instances from scratch as a fresh epoch run (n = 4, unanimous inputs,
// ideal common coin — the floor of the agreement cost).
void BM_FreshJoin(benchmark::State& state) {
  const int instances = static_cast<int>(state.range(0));
  Metrics total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    RunnerConfig cfg = config(4, 42 + runs);
    Runner r(cfg);
    EpochPlan plan;
    plan.config = identity_config(4, 1);
    for (int k = 1; k <= instances; ++k) {
      plan.instances.emplace(static_cast<std::uint32_t>(k),
                             std::vector<int>(4, k % 2));
    }
    EpochsResult res = r.run_epochs({plan});
    if (!res.all_decided) state.SkipWithError("epoch run did not decide");
    total.merge(res.metrics);
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
}
BENCHMARK(BM_FreshJoin)->Arg(1)->Arg(4)->Arg(16);

// Local restart cost: checkpoint write + load and journal replay for D
// records.  Bytes gated (file size is deterministic); wall-clock is the
// informational figure.
void BM_CheckpointReplay(benchmark::State& state) {
  const int decisions = static_cast<int>(state.range(0));
  const std::string path = "bench_recovery_ckpt.bin";
  CheckpointData data;
  data.epoch = 0;
  data.config = identity_config(4, 1);
  data.seed = 42;
  data.decisions = make_records(decisions);
  Metrics total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Metrics m;
    if (!save_checkpoint(path, data)) {
      state.SkipWithError("checkpoint write failed");
      break;
    }
    auto loaded = load_checkpoint(path);
    if (!loaded || loaded->decisions.size() != data.decisions.size()) {
      state.SkipWithError("checkpoint load failed");
      break;
    }
    for (const DecisionRecord& rec : loaded->decisions) {
      m.bytes_sent += sizeof(rec);
      benchmark::DoNotOptimize(rec.value);
    }
    total.merge(m);
    ++runs;
  }
  std::remove(path.c_str());
  report_metrics(state, total, static_cast<double>(runs));
}
BENCHMARK(BM_CheckpointReplay)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
