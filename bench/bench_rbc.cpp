// E1 — Reliable Broadcast cost (paper Appendix A).
//
// Claim: one RB instance costs Theta(n^2) transport packets and O(1)
// causal rounds, independent of scheduling.  Sweep n with t = (n-1)/3 and
// report packets/bytes/rounds per broadcast.
#include "bench_common.hpp"
#include "rbc/rbc.hpp"
#include "sim/scheduler.hpp"

namespace svss::bench {
namespace {

class RbBroadcaster : public IProcess {
 public:
  explicit RbBroadcaster(bool initiator)
      : initiator_(initiator),
        rbc_([](Context&, int, const Message&) {}) {}
  void start(Context& ctx) override {
    if (!initiator_) return;
    Message m;
    m.sid.path = SessionPath::kTest;
    m.type = MsgType::kTestPayload;
    rbc_.broadcast(ctx, m);
  }
  void on_packet(Context& ctx, int from, const Packet& p) override {
    if (p.is_rb) rbc_.on_transport(ctx, from, p);
  }

 private:
  bool initiator_;
  Rbc rbc_;
};

void BM_RbBroadcast(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int t = (n - 1) / 3;
  Metrics total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Engine e(n, t, 42 + runs, std::make_unique<RandomScheduler>(7 + runs));
    for (int i = 0; i < n; ++i) {
      e.set_process(i, std::make_unique<RbBroadcaster>(i == 0));
    }
    e.run();
    total.merge(e.metrics());
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
}
BENCHMARK(BM_RbBroadcast)->Arg(4)->Arg(7)->Arg(10)->Arg(13)->Arg(16)->Arg(25);

// All-to-all concurrent broadcasts: n instances => Theta(n^3) packets.
void BM_RbAllToAll(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int t = (n - 1) / 3;
  Metrics total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    Engine e(n, t, 42 + runs, std::make_unique<RandomScheduler>(7 + runs));
    for (int i = 0; i < n; ++i) {
      e.set_process(i, std::make_unique<RbBroadcaster>(true));
    }
    e.run();
    total.merge(e.metrics());
    ++runs;
  }
  report_metrics(state, total, static_cast<double>(runs));
}
BENCHMARK(BM_RbAllToAll)->Arg(4)->Arg(7)->Arg(10)->Arg(13)->Arg(16);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
