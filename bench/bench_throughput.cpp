// E10 — agreement throughput under instance multiplexing.
//
// PR 8's tentpole claim: k concurrent agreement instances multiplexed
// over one node/transport stack (SessionId::instance + cross-instance
// vote batching) decide strictly faster than k sequential single-instance
// runs, because (a) the per-run stack setup amortizes and (b) votes of
// different instances and rounds share kAbaBatchVote/kAbaBatchConf
// envelopes, collapsing the dominant packet class.  Under the ideal coin
// essentially every byte is an aba-vote, so the coalescing shows directly
// in the packet attribution counters:
//
//   decisions_per_s  — decided instances per wall-clock second (rate)
//   aba_vote_pkts    — per-run unbatched kAbaVote packets
//   aba_batch_pkts   — per-run envelope packets (batch vote + batch conf)
//
// Three shapes: concurrent batched (the shipped default), concurrent with
// per-session vote framing (isolates the envelope win from the
// multiplexing win), and sequential (the pre-PR baseline: one Runner per
// instance).
#include "bench_common.hpp"

namespace svss::bench {
namespace {

void report_aba_attribution(benchmark::State& state, const Metrics& m,
                            double runs) {
  auto pkts = [&m](MsgType t) {
    return static_cast<double>(m.packets_by_type[static_cast<std::size_t>(t)]);
  };
  state.counters["aba_vote_pkts"] =
      benchmark::Counter(pkts(MsgType::kAbaVote) / runs);
  state.counters["aba_batch_pkts"] = benchmark::Counter(
      (pkts(MsgType::kAbaBatchVote) + pkts(MsgType::kAbaBatchConf)) / runs);
}

// k instances in one Runner, decided concurrently over one stack.
void throughput_concurrent(benchmark::State& state, Framing votes) {
  int n = static_cast<int>(state.range(0));
  auto k = static_cast<std::uint32_t>(state.range(1));
  Metrics total;
  std::uint64_t decisions = 0;
  std::uint64_t runs = 0;
  double violations = 0;
  for (auto _ : state) {
    auto cfg = config(n, 8400 + runs * 23);
    cfg.transport.aba_votes = votes;
    Runner r(cfg);
    for (std::uint32_t i = 0; i < k; ++i) r.submit(i, alternating_inputs(n));
    auto res = r.run_submitted(CoinMode::kIdealCommon);
    total.merge(res.metrics);
    if (!res.all_decided || !res.agreed) violations += 1;
    decisions += res.values.size();
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  report_aba_attribution(state, total, d);
  state.counters["decisions_per_s"] = benchmark::Counter(
      static_cast<double>(decisions), benchmark::Counter::kIsRate);
  state.counters["violations"] = benchmark::Counter(violations);
}

void BM_ThroughputConcurrent(benchmark::State& state) {
  throughput_concurrent(state, Framing::kBatched);
}
BENCHMARK(BM_ThroughputConcurrent)
    ->Args({7, 16})->Args({7, 64})->Args({16, 16})
    ->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_ThroughputConcurrentPerSessionVotes(benchmark::State& state) {
  throughput_concurrent(state, Framing::kPerSession);
}
BENCHMARK(BM_ThroughputConcurrentPerSessionVotes)
    ->Args({7, 16})
    ->Unit(benchmark::kMillisecond)->Iterations(10);

// The pre-PR baseline: the same k decisions, one Runner per instance.
void BM_ThroughputSequential(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto k = static_cast<std::uint32_t>(state.range(1));
  Metrics total;
  std::uint64_t decisions = 0;
  std::uint64_t runs = 0;
  double violations = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < k; ++i) {
      Runner r(config(n, 8400 + runs * 23 + i));
      auto res = r.run_aba(alternating_inputs(n), CoinMode::kIdealCommon);
      total.merge(res.metrics);
      if (!res.all_decided || !res.agreed) violations += 1;
      if (res.agreed) ++decisions;
    }
    ++runs;
  }
  double d = static_cast<double>(runs);
  report_metrics(state, total, d);
  report_aba_attribution(state, total, d);
  state.counters["decisions_per_s"] = benchmark::Counter(
      static_cast<double>(decisions), benchmark::Counter::kIsRate);
  state.counters["violations"] = benchmark::Counter(violations);
}
BENCHMARK(BM_ThroughputSequential)
    ->Args({7, 16})
    ->Unit(benchmark::kMillisecond)->Iterations(10);

}  // namespace
}  // namespace svss::bench

BENCHMARK_MAIN();
