// Shared helpers for the experiment benchmarks (E1-E9, see DESIGN.md).
//
// Each bench binary regenerates one experiment: it sweeps the workload the
// experiment defines, runs the protocol stack through core::Runner, and
// reports the series the paper's claims predict (messages, bytes, causal
// rounds, decision rounds, shun counts) as benchmark counters.  Absolute
// numbers are simulator-specific; the *shape* (who wins, growth exponents,
// where crossovers fall) is what EXPERIMENTS.md records against the paper.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/runner.hpp"

namespace svss::bench {

inline RunnerConfig config(int n, std::uint64_t seed,
                           SchedulerKind sched = SchedulerKind::kRandom) {
  RunnerConfig cfg;
  cfg.n = n;
  cfg.t = (n - 1) / 3;
  cfg.seed = seed;
  cfg.scheduler = sched;
  return cfg;
}

// Attaches the standard metric counters to a benchmark state.
inline void report_metrics(benchmark::State& state, const Metrics& m,
                           double runs) {
  state.counters["msgs"] =
      benchmark::Counter(static_cast<double>(m.packets_sent) / runs);
  state.counters["bytes"] =
      benchmark::Counter(static_cast<double>(m.bytes_sent) / runs);
  // max_depth merges via max across runs, so it is already a per-run figure.
  state.counters["rounds"] =
      benchmark::Counter(static_cast<double>(m.max_depth));
}

// Mixed 0/1 input vector for agreement runs.
inline std::vector<int> alternating_inputs(int n) {
  std::vector<int> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inputs.push_back(i % 2);
  return inputs;
}

}  // namespace svss::bench
