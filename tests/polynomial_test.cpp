// Unit tests: univariate polynomial sampling, evaluation, interpolation,
// and the checked interpolation used by the reconstruct phases.
#include "common/polynomial.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace svss {
namespace {

TEST(Polynomial, DefaultIsZero) {
  Polynomial p;
  EXPECT_EQ(p.constant(), Fp(0));
  EXPECT_EQ(p.eval(Fp(17)), Fp(0));
}

TEST(Polynomial, EvalMatchesHornerReference) {
  // p(x) = 3 + 2x + x^2
  Polynomial p(FieldVec{Fp(3), Fp(2), Fp(1)});
  EXPECT_EQ(p.eval(Fp(0)), Fp(3));
  EXPECT_EQ(p.eval(Fp(1)), Fp(6));
  EXPECT_EQ(p.eval(Fp(2)), Fp(11));
  EXPECT_EQ(p.eval(Fp(10)), Fp(123));
}

TEST(Polynomial, RandomWithConstantFixesSecret) {
  Rng rng(1);
  for (int deg = 0; deg <= 6; ++deg) {
    Polynomial p = Polynomial::random_with_constant(Fp(777), deg, rng);
    EXPECT_EQ(p.constant(), Fp(777));
    EXPECT_EQ(p.degree_bound(), deg);
  }
}

TEST(Polynomial, InterpolateRecoversPolynomial) {
  Rng rng(2);
  for (int deg = 0; deg <= 8; ++deg) {
    Polynomial p = Polynomial::random_with_constant(rng.next_field(), deg, rng);
    std::vector<std::pair<Fp, Fp>> pts;
    for (int x = 1; x <= deg + 1; ++x) pts.emplace_back(Fp(x), p.eval(Fp(x)));
    Polynomial q = Polynomial::interpolate(pts);
    EXPECT_EQ(p, q) << "deg=" << deg;
  }
}

TEST(Polynomial, InterpolateArbitraryPoints) {
  std::vector<std::pair<Fp, Fp>> pts{{Fp(5), Fp(9)}, {Fp(11), Fp(2)},
                                     {Fp(40), Fp(33)}};
  Polynomial p = Polynomial::interpolate(pts);
  for (const auto& [x, y] : pts) EXPECT_EQ(p.eval(x), y);
}

TEST(Polynomial, InterpolateRejectsDuplicateX) {
  std::vector<std::pair<Fp, Fp>> pts{{Fp(1), Fp(1)}, {Fp(1), Fp(2)}};
  EXPECT_THROW(Polynomial::interpolate(pts), std::invalid_argument);
}

TEST(Polynomial, InterpolateRejectsEmpty) {
  EXPECT_THROW(Polynomial::interpolate({}), std::invalid_argument);
}

TEST(Polynomial, CheckedAcceptsConsistentOversampledPoints) {
  Rng rng(3);
  Polynomial p = Polynomial::random_with_constant(Fp(5), 3, rng);
  std::vector<std::pair<Fp, Fp>> pts;
  for (int x = 1; x <= 10; ++x) pts.emplace_back(Fp(x), p.eval(Fp(x)));
  auto q = Polynomial::interpolate_checked(pts, 3);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
}

TEST(Polynomial, CheckedRejectsOneCorruptPoint) {
  Rng rng(4);
  Polynomial p = Polynomial::random_with_constant(Fp(5), 2, rng);
  std::vector<std::pair<Fp, Fp>> pts;
  for (int x = 1; x <= 8; ++x) pts.emplace_back(Fp(x), p.eval(Fp(x)));
  pts[6].second += Fp(1);  // corrupt a point beyond the interpolation head
  EXPECT_FALSE(Polynomial::interpolate_checked(pts, 2).has_value());
}

TEST(Polynomial, CheckedRejectsTooFewPoints) {
  std::vector<std::pair<Fp, Fp>> pts{{Fp(1), Fp(1)}, {Fp(2), Fp(2)}};
  EXPECT_FALSE(Polynomial::interpolate_checked(pts, 2).has_value());
}

TEST(Polynomial, CheckedDetectsHigherDegree) {
  // x^3 sampled at 5 points is not a degree-2 polynomial.
  Polynomial cubic(FieldVec{Fp(0), Fp(0), Fp(0), Fp(1)});
  std::vector<std::pair<Fp, Fp>> pts;
  for (int x = 1; x <= 5; ++x) pts.emplace_back(Fp(x), cubic.eval(Fp(x)));
  EXPECT_FALSE(Polynomial::interpolate_checked(pts, 2).has_value());
}

TEST(Polynomial, EvaluateRangeMatchesEval) {
  Rng rng(6);
  Polynomial p = Polynomial::random_with_constant(Fp(1), 4, rng);
  FieldVec range = p.evaluate_range(7);
  ASSERT_EQ(range.size(), 7u);
  for (int x = 1; x <= 7; ++x) {
    EXPECT_EQ(range[static_cast<std::size_t>(x - 1)], p.eval(Fp(x)));
  }
}

// Secrecy property backing the Hiding proofs: t points of a random
// degree-t polynomial are (jointly) uniform, i.e. they do not determine
// the constant term.  We spot-check that for every value of t points there
// exists a consistent polynomial with any prescribed secret.
TEST(Polynomial, AnySecretConsistentWithTPoints) {
  Rng rng(8);
  int t = 3;
  Polynomial p = Polynomial::random_with_constant(Fp(1234), t, rng);
  std::vector<std::pair<Fp, Fp>> leaked;
  for (int x = 1; x <= t; ++x) leaked.emplace_back(Fp(x), p.eval(Fp(x)));
  for (std::int64_t fake = 0; fake < 20; ++fake) {
    auto pts = leaked;
    pts.emplace_back(Fp(0), Fp(fake));
    Polynomial q = Polynomial::interpolate(pts);
    EXPECT_EQ(q.constant(), Fp(fake));
    for (const auto& [x, y] : leaked) EXPECT_EQ(q.eval(x), y);
  }
}

class PolynomialDegreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(PolynomialDegreeSweep, RoundTripInterpolationAtEveryDegree) {
  int deg = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(deg));
  Polynomial p = Polynomial::random_with_constant(rng.next_field(), deg, rng);
  std::vector<std::pair<Fp, Fp>> pts;
  for (int x = 1; x <= deg + 1; ++x) pts.emplace_back(Fp(x), p.eval(Fp(x)));
  auto q = Polynomial::interpolate_checked(pts, deg);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->constant(), p.constant());
  EXPECT_EQ(q->eval(Fp(12345)), p.eval(Fp(12345)));
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolynomialDegreeSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace svss
