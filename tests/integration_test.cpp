// Integration tests: the full stack, layer by layer and end to end, under
// benign and adversarial schedules with mixed fault types.
#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace svss {
namespace {

RunnerConfig base_config(int n, int t, std::uint64_t seed,
                         SchedulerKind sched = SchedulerKind::kRandom) {
  RunnerConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.seed = seed;
  cfg.scheduler = sched;
  return cfg;
}

// --- MW-SVSS, all honest ---
TEST(Integration, MwSvssHappyPathReconstructsSecret) {
  Runner r(base_config(4, 1, 42));
  auto res = r.run_mwsvss(Fp(123456), Fp(123456));
  EXPECT_TRUE(res.all_honest_shared);
  EXPECT_TRUE(res.all_honest_output);
  EXPECT_EQ(res.status, RunStatus::kQuiescent);
  for (const auto& [i, out] : res.outputs) {
    ASSERT_TRUE(out.has_value()) << "process " << i;
    EXPECT_EQ(*out, Fp(123456)) << "process " << i;
  }
  EXPECT_TRUE(res.shun_pairs.empty());
}

// --- SVSS, all honest ---
TEST(Integration, SvssHappyPathReconstructsSecret) {
  Runner r(base_config(4, 1, 43));
  auto res = r.run_svss(Fp(987654));
  EXPECT_TRUE(res.all_honest_shared);
  EXPECT_TRUE(res.all_honest_output);
  for (const auto& [i, out] : res.outputs) {
    ASSERT_TRUE(out.has_value()) << "process " << i;
    EXPECT_EQ(*out, Fp(987654)) << "process " << i;
  }
  EXPECT_TRUE(res.shun_pairs.empty());
}

// --- SVSS with one silent process (crash fault) ---
TEST(Integration, SvssToleratesSilentProcess) {
  auto cfg = base_config(4, 1, 44);
  cfg.faults[3] = ByzConfig{ByzKind::kSilent};
  Runner r(cfg);
  auto res = r.run_svss(Fp(55555));
  EXPECT_TRUE(res.all_honest_shared);
  EXPECT_TRUE(res.all_honest_output);
  for (const auto& [i, out] : res.outputs) {
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, Fp(55555));
  }
}

// --- common coin, all honest ---
TEST(Integration, CoinAllHonestAgrees) {
  Runner r(base_config(4, 1, 45));
  auto res = r.run_coin();
  EXPECT_TRUE(res.all_output);
  EXPECT_TRUE(res.agreed);
}

// --- agreement with the ideal-common-coin abstraction ---
TEST(Integration, AbaIdealCoinMixedInputs) {
  Runner r(base_config(4, 1, 46));
  auto res = r.run_aba({0, 1, 0, 1}, CoinMode::kIdealCommon);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
}

// --- the paper's full protocol: SVSS coin, all honest ---
TEST(Integration, AbaSvssCoinUnanimousInput) {
  Runner r(base_config(4, 1, 47));
  auto res = r.run_aba({1, 1, 1, 1}, CoinMode::kSvss);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.value, 1);  // validity: unanimous input decides that input
}

TEST(Integration, AbaSvssCoinMixedInputsWithSilentFault) {
  auto cfg = base_config(4, 1, 48);
  cfg.faults[3] = ByzConfig{ByzKind::kSilent};
  Runner r(cfg);
  auto res = r.run_aba({0, 1, 1, 0}, CoinMode::kSvss);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
}

}  // namespace
}  // namespace svss
