// Engine-level ordering guarantees for the FIFO and LIFO schedulers, and
// the age-cap (max_lag) eventual-delivery invariant that makes every
// scheduler a valid asynchronous adversary.  scheduler_test.cpp checks the
// priority functions in isolation; these tests check what the engine
// actually delivers.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace svss {
namespace {

// Appends every payload it receives to a shared delivery record.
class Recorder : public IProcess {
 public:
  explicit Recorder(std::vector<int>* sink) : sink_(sink) {}
  void start(Context&) override {}
  void on_packet(Context&, int, const Packet& p) override {
    sink_->push_back(p.app.a);
  }

 private:
  std::vector<int>* sink_;
};

// Sends `count` numbered packets to process `to` at start.
class Burst : public IProcess {
 public:
  Burst(int to, int count, int base = 0)
      : to_(to), count_(count), base_(base) {}
  void start(Context& ctx) override {
    for (int k = 0; k < count_; ++k) {
      Message m;
      m.a = static_cast<std::int16_t>(base_ + k);
      ctx.send(to_, make_direct(m));
    }
  }
  void on_packet(Context&, int, const Packet&) override {}

 private:
  int to_;
  int count_;
  int base_;
};

// Replies to every packet forever: an endless source of fresh traffic.
class Chatter : public IProcess {
 public:
  void start(Context&) override {}
  void on_packet(Context& ctx, int from, const Packet& p) override {
    ctx.send(from, p);
  }
};

TEST(SchedulerOrder, FifoDeliversInExactSendOrder) {
  std::vector<int> got;
  Engine e(2, 0, 1, std::make_unique<FifoScheduler>());
  e.set_process(0, std::make_unique<Burst>(1, 64));
  e.set_process(1, std::make_unique<Recorder>(&got));
  EXPECT_EQ(e.run(), RunStatus::kQuiescent);
  std::vector<int> want(64);
  for (int k = 0; k < 64; ++k) want[static_cast<std::size_t>(k)] = k;
  EXPECT_EQ(got, want);
}

TEST(SchedulerOrder, FifoInterleavesSendersBySendSequence) {
  // Two senders burst in start(); start() runs in id order, so the global
  // send sequence is all of sender 0's packets, then all of sender 1's.
  std::vector<int> got;
  Engine e(3, 0, 1, std::make_unique<FifoScheduler>());
  e.set_process(0, std::make_unique<Burst>(2, 8, 0));
  e.set_process(1, std::make_unique<Burst>(2, 8, 100));
  e.set_process(2, std::make_unique<Recorder>(&got));
  EXPECT_EQ(e.run(), RunStatus::kQuiescent);
  std::vector<int> want;
  for (int k = 0; k < 8; ++k) want.push_back(k);
  for (int k = 0; k < 8; ++k) want.push_back(100 + k);
  EXPECT_EQ(got, want);
}

TEST(SchedulerOrder, LifoDeliversNewestFirst) {
  // All packets are in flight before the first delivery; with no new sends
  // afterwards and the default (huge) age cap, LIFO is exact reverse order.
  std::vector<int> got;
  Engine e(2, 0, 1, std::make_unique<LifoScheduler>());
  e.set_process(0, std::make_unique<Burst>(1, 64));
  e.set_process(1, std::make_unique<Recorder>(&got));
  EXPECT_EQ(e.run(), RunStatus::kQuiescent);
  std::vector<int> want(64);
  for (int k = 0; k < 64; ++k) want[static_cast<std::size_t>(k)] = 63 - k;
  EXPECT_EQ(got, want);
}

// The eventual-delivery invariant: no packet waits more than max_lag
// deliveries, whatever the scheduler wants.  A marker packet competes with
// an endless stream of fresh chatter; for every scheduler kind it must
// arrive within the age cap (plus the marker itself).
TEST(SchedulerOrder, MaxLagBoundsStarvationForEveryKind) {
  constexpr std::uint64_t kLag = 50;
  for (auto kind : {SchedulerKind::kFifo, SchedulerKind::kRandom,
                    SchedulerKind::kLifo, SchedulerKind::kDelayLastHonest}) {
    std::vector<int> got;
    Engine e(4, 1, 7, make_scheduler(kind, 7, 4, 1));
    e.set_max_lag(kLag);
    e.set_process(0, std::make_unique<Chatter>());
    e.set_process(1, std::make_unique<Chatter>());
    e.set_process(2, std::make_unique<Chatter>());
    e.set_process(3, std::make_unique<Recorder>(&got));
    // The marker is the globally oldest packet; afterwards 1 <-> 2 bounce
    // a packet forever, so the run never quiesces on its own and every
    // chatter reply is newer than the marker — LIFO and targeted-delay
    // schedulers would starve it forever without the age cap.
    Message marker;
    marker.a = 42;
    Context ctx0(e, 0);
    ctx0.send(3, make_direct(marker));
    Context ctx1(e, 1);
    Message m;
    ctx1.send(2, make_direct(m));
    auto status = e.run_until([&] { return !got.empty(); }, 10'000);
    EXPECT_EQ(status, RunStatus::kQuiescent)
        << "marker starved under kind " << static_cast<int>(kind);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 42);
    // The marker was in flight from delivery 0, so the age cap bounds its
    // wait: forced through once skipped for more than kLag deliveries.
    EXPECT_LE(e.metrics().packets_delivered, kLag + 2)
        << "age cap failed to bound waiting under kind "
        << static_cast<int>(kind);
  }
}

// A deliberately adversarial Scheduler implementation: the seam promises
// eventual delivery for ANY priority function, so the property test below
// feeds the engine pathological ones — constant 0 (total tie), ~seq
// (monotone newest-first, the mirror of FIFO), seeded random extremes
// (each packet either front-band or back-band), and targeted starvation
// of one receiver's traffic.
class HostileScheduler final : public Scheduler {
 public:
  enum class Mode { kConstantZero, kNotSeq, kRandomExtreme, kStarveReceiver };

  HostileScheduler(Mode mode, std::uint64_t seed, int victim = -1)
      : mode_(mode), rng_(seed), victim_(victim) {}

  std::uint64_t priority(const PendingInfo& p) override {
    switch (mode_) {
      case Mode::kConstantZero: return 0;
      case Mode::kNotSeq: return ~p.seq;
      case Mode::kRandomExtreme: return rng_.next_bool() ? 0 : ~0ULL;
      case Mode::kStarveReceiver: return p.to == victim_ ? ~0ULL : p.seq;
    }
    return 0;
  }

 private:
  Mode mode_;
  Rng rng_;
  int victim_;
};

// Property: whatever priorities a hostile scheduler returns — including
// the all-ones "never deliver" answer for a targeted victim — the age cap
// still forces the oldest packet through within max_lag deliveries.  This
// is the invariant that makes the schedule-search genomes (src/search/)
// safe by construction: no genome can starve a packet past the cap.
TEST(SchedulerOrder, HostilePrioritiesCannotBeatAgeCap) {
  constexpr std::uint64_t kLag = 50;
  using Mode = HostileScheduler::Mode;
  struct Case {
    Mode mode;
    std::uint64_t seed;
  };
  std::vector<Case> cases = {{Mode::kConstantZero, 1},
                             {Mode::kNotSeq, 1},
                             {Mode::kStarveReceiver, 1}};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cases.push_back({Mode::kRandomExtreme, seed});
  }
  for (const Case& c : cases) {
    std::vector<int> got;
    Engine e(4, 1, 7,
             std::make_unique<HostileScheduler>(c.mode, c.seed, /*victim=*/3));
    e.set_max_lag(kLag);
    e.set_process(0, std::make_unique<Chatter>());
    e.set_process(1, std::make_unique<Chatter>());
    e.set_process(2, std::make_unique<Chatter>());
    e.set_process(3, std::make_unique<Recorder>(&got));
    Message marker;
    marker.a = 42;
    Context ctx0(e, 0);
    ctx0.send(3, make_direct(marker));
    Context ctx1(e, 1);
    Message m;
    ctx1.send(2, make_direct(m));
    auto status = e.run_until([&] { return !got.empty(); }, 10'000);
    EXPECT_EQ(status, RunStatus::kQuiescent)
        << "marker starved under hostile mode " << static_cast<int>(c.mode)
        << " seed " << c.seed;
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 42);
    EXPECT_LE(e.metrics().packets_delivered, kLag + 2)
        << "age cap failed under hostile mode " << static_cast<int>(c.mode)
        << " seed " << c.seed;
  }
}

// TargetedDelayScheduler's documented invariant (sim/scheduler.hpp): the
// penalty displaces a slow-predicate packet once, at send time, and the
// packet is re-penalized only by the age cap — so it is delivered within
// penalty + max_lag deliveries of entering the system.  Two regimes:
//
// Cap regime: the penalty (1 << 18) dwarfs a small max_lag (64), so the
// age cap is what forces the marker through, within ~max_lag deliveries.
TEST(SchedulerOrder, TargetedDelayCapRegimeBound) {
  constexpr std::uint64_t kLag = 64;
  constexpr std::uint64_t kPenalty = 1 << 18;
  std::vector<int> got;
  auto slow = [](const PendingInfo& p) { return p.to == 3; };
  Engine e(4, 1, 7,
           std::make_unique<TargetedDelayScheduler>(7, slow, kPenalty));
  e.set_max_lag(kLag);
  e.set_process(0, std::make_unique<Chatter>());
  e.set_process(1, std::make_unique<Chatter>());
  e.set_process(2, std::make_unique<Chatter>());
  e.set_process(3, std::make_unique<Recorder>(&got));
  Message marker;
  marker.a = 7;
  Context ctx0(e, 0);
  ctx0.send(3, make_direct(marker));
  Context ctx1(e, 1);
  Message m;
  ctx1.send(2, make_direct(m));
  auto status = e.run_until([&] { return !got.empty(); }, 10'000);
  EXPECT_EQ(status, RunStatus::kQuiescent);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_LE(e.metrics().packets_delivered, kLag + 2);
  EXPECT_LE(e.metrics().packets_delivered, kPenalty + kLag);
}

// Priority regime: a modest penalty under the default (huge) age cap.  The
// marker's one-shot displacement is penalty + jitter (< 1 << 10), so fresh
// traffic overtakes it for at most that many sends before its priority is
// again the smallest — well within the documented penalty + max_lag bound.
TEST(SchedulerOrder, TargetedDelayPriorityRegimeBound) {
  constexpr std::uint64_t kPenalty = 4096;
  std::vector<int> got;
  auto slow = [](const PendingInfo& p) { return p.to == 3; };
  Engine e(4, 1, 7,
           std::make_unique<TargetedDelayScheduler>(7, slow, kPenalty));
  e.set_process(0, std::make_unique<Chatter>());
  e.set_process(1, std::make_unique<Chatter>());
  e.set_process(2, std::make_unique<Chatter>());
  e.set_process(3, std::make_unique<Recorder>(&got));
  Message marker;
  marker.a = 7;
  Context ctx0(e, 0);
  ctx0.send(3, make_direct(marker));
  Context ctx1(e, 1);
  Message m;
  ctx1.send(2, make_direct(m));
  auto status = e.run_until([&] { return !got.empty(); }, 100'000);
  EXPECT_EQ(status, RunStatus::kQuiescent);
  ASSERT_EQ(got.size(), 1u);
  // One-shot displacement: delivered as soon as the send clock passes the
  // marker's penalized priority (seq 0 + jitter + penalty), long before
  // the age cap would have to intervene.
  EXPECT_LE(e.metrics().packets_delivered, kPenalty + (1 << 10) + 4);
  EXPECT_LE(e.metrics().packets_delivered, kPenalty + e.max_lag());
}

// LIFO with the age cap still delivers *everything* (no packet is lost to
// lazy heap/fifo bookkeeping) even when chatter keeps arriving.
TEST(SchedulerOrder, LifoWithAgeCapLosesNothing) {
  std::vector<int> got;
  Engine e(2, 0, 3, std::make_unique<LifoScheduler>());
  e.set_max_lag(8);
  e.set_process(0, std::make_unique<Burst>(1, 100));
  e.set_process(1, std::make_unique<Recorder>(&got));
  EXPECT_EQ(e.run(), RunStatus::kQuiescent);
  EXPECT_EQ(got.size(), 100u);
  EXPECT_EQ(e.metrics().packets_delivered, e.metrics().packets_sent);
}

}  // namespace
}  // namespace svss
