// Step-level unit tests for the agreement round machinery: BV-broadcast
// thresholds, AUX justification, CONF tier rules, coin fallback, and
// DECIDE aggregation — driven through a mock host.
#include <gtest/gtest.h>

#include "aba/aba.hpp"
#include "sim/scheduler.hpp"

namespace svss {
namespace {

class Noop : public IProcess {
 public:
  void start(Context&) override {}
  void on_packet(Context&, int, const Packet&) override {}
};

class MockAbaHost : public AbaHost {
 public:
  void rb_broadcast(Context&, const Message& m) override {
    broadcasts.push_back(m);
  }
  void send_direct(Context&, int to, Message m) override {
    directs.emplace_back(to, std::move(m));
  }
  void start_coin(Context&, std::uint32_t instance,
                  std::uint32_t round) override {
    coin_requests.emplace_back(instance, round);
  }
  void aba_decided(Context&, int value, std::uint32_t round,
                   std::uint32_t instance) override {
    decided_value = value;
    decided_round = round;
    decided_instance = instance;
  }

  // Messages of a given (subtype, round) sent to process 0 (one per
  // send_all fan-out).
  [[nodiscard]] std::vector<int> sent_values(int subtype,
                                             std::uint32_t round) const {
    std::vector<int> out;
    for (const auto& [to, m] : directs) {
      if (to == 0 && m.b == subtype &&
          static_cast<std::uint32_t>(m.a) == round) {
        out.push_back(m.ints[0]);
      }
    }
    return out;
  }

  std::vector<Message> broadcasts;
  std::vector<std::pair<int, Message>> directs;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> coin_requests;
  std::optional<int> decided_value;
  std::uint32_t decided_round = 0;
  std::uint32_t decided_instance = 0;
};

struct AbaUnit : public ::testing::Test {
  static constexpr int kN = 4;
  static constexpr int kT = 1;

  AbaUnit() : engine(kN, kT, 3, std::make_unique<FifoScheduler>()) {
    for (int i = 0; i < kN; ++i) engine.set_process(i, std::make_unique<Noop>());
  }

  Message vote(std::uint32_t round, int subtype, int payload) const {
    Message m;
    m.sid = SessionId{SessionPath::kAba, 0, -1, -1, -1, 0, 0};
    m.type = MsgType::kAbaVote;
    m.a = static_cast<std::int16_t>(round);
    m.b = static_cast<std::int16_t>(subtype);
    m.ints.push_back(payload);
    return m;
  }

  Engine engine;
  MockAbaHost host;
};

TEST_F(AbaUnit, StartSendsEstAndRequestsCoin) {
  Context ctx(engine, 0);
  AbaSession s(host, 0, kN, kT, CoinMode::kSvss, 0);
  s.start(ctx, 1);
  EXPECT_EQ(host.sent_values(0, 1), (std::vector<int>{1}));
  ASSERT_EQ(host.coin_requests.size(), 1u);
  EXPECT_EQ(host.coin_requests[0], (std::pair<std::uint32_t, std::uint32_t>{
                                       0u, 1u}));  // instance 0, round 1
}

TEST_F(AbaUnit, InstanceNamespacesCoinRounds) {
  Context ctx(engine, 0);
  AbaSession s(host, 0, kN, kT, CoinMode::kSvss, 0, /*instance=*/3);
  s.start(ctx, 0);
  ASSERT_EQ(host.coin_requests.size(), 1u);
  EXPECT_EQ(host.coin_requests[0],
            (std::pair<std::uint32_t, std::uint32_t>{3u, 1u}));
  // The instance id travels in the session id of every vote.
  for (const auto& [to, m] : host.directs) {
    EXPECT_EQ(m.sid.instance, 3u);
    EXPECT_EQ(m.sid.counter, 0u);
  }
  // Coin results arrive as instance-local rounds (the host dispatches by
  // instance); out-of-range rounds are ignored.
  s.on_coin(ctx, 0, 1);
  s.on_coin(ctx, kCoinRoundsPerInstance, 1);
  EXPECT_FALSE(s.snapshot(1).has_coin);
  s.on_coin(ctx, 1, 1);
  EXPECT_TRUE(s.snapshot(1).has_coin);
}

TEST_F(AbaUnit, BvRelaysAtTPlusOneAndAcceptsAtTwoTPlusOne) {
  Context ctx(engine, 0);
  AbaSession s(host, 0, kN, kT, CoinMode::kIdealCommon, 7);
  s.start(ctx, 0);  // own EST(0) sent
  // One EST(1) is below the relay threshold.
  s.on_direct(ctx, 1, vote(1, 0, 1));
  EXPECT_TRUE(host.sent_values(0, 1) == (std::vector<int>{0}));
  // Second EST(1): t+1 = 2 -> relay.
  s.on_direct(ctx, 2, vote(1, 0, 1));
  EXPECT_EQ(host.sent_values(0, 1), (std::vector<int>{0, 1}));
  EXPECT_FALSE(s.snapshot(1).bin[1]);
  // Third distinct sender: 2t+1 = 3 -> bin accepts, AUX goes out.
  s.on_direct(ctx, 3, vote(1, 0, 1));
  EXPECT_TRUE(s.snapshot(1).bin[1]);
  EXPECT_TRUE(s.snapshot(1).aux_sent);
}

TEST_F(AbaUnit, AuxRequiresJustifiedValues) {
  Context ctx(engine, 0);
  AbaSession s(host, 0, kN, kT, CoinMode::kIdealCommon, 7);
  s.start(ctx, 1);
  // bin = {1} via ESTs (the mock host does not self-deliver, so three
  // peers supply the 2t+1 quorum).
  for (int from : {1, 2, 3}) s.on_direct(ctx, from, vote(1, 0, 1));
  EXPECT_TRUE(s.snapshot(1).bin[1]);
  // AUX(0) from 3 senders, but 0 is not in bin: V must not freeze even
  // though n - t AUX messages are present.
  for (int from : {1, 2, 3}) s.on_direct(ctx, from, vote(1, 1, 0));
  EXPECT_FALSE(s.snapshot(1).v_frozen);
  // Once 0 joins bin, the buffered AUX(0) become justified: V freezes.
  for (int from : {1, 2, 3}) s.on_direct(ctx, from, vote(1, 0, 0));
  EXPECT_TRUE(s.snapshot(1).v_frozen);
  EXPECT_TRUE(s.snapshot(1).conf_sent);
  ASSERT_EQ(host.broadcasts.size(), 1u);
  EXPECT_EQ(host.broadcasts[0].ints[0], 1);  // encode({0}) == 1
}

// Drives a session to the CONF stage with bin = {0, 1}, V = {1}.
void drive_to_conf(Context& ctx, AbaSession& s, AbaUnit& f) {
  s.start(ctx, 1);
  for (int from : {1, 2, 3}) s.on_direct(ctx, from, f.vote(1, 0, 1));
  for (int from : {1, 2, 3}) s.on_direct(ctx, from, f.vote(1, 0, 0));
  for (int from : {1, 2, 3}) s.on_direct(ctx, from, f.vote(1, 1, 1));
}

TEST_F(AbaUnit, ConfSupermajorityDecides) {
  Context ctx(engine, 0);
  AbaSession s(host, 0, kN, kT, CoinMode::kIdealCommon, 7);
  drive_to_conf(ctx, s, *this);
  // 2t+1 = 3 CONF {1} singletons: decide 1 in round 1.
  for (int from : {1, 2, 3}) s.on_broadcast(ctx, from, vote(1, 2, 2));
  ASSERT_TRUE(s.decided());
  EXPECT_EQ(s.decision(), 1);
  EXPECT_EQ(s.decision_round(), 1u);
  EXPECT_EQ(host.decided_value, 1);
  // DECIDE(1) fan-out happened.
  EXPECT_FALSE(host.sent_values(3, 1).empty());
  // The session keeps participating: round 2 EST was sent.
  EXPECT_EQ(s.current_round(), 2u);
}

TEST_F(AbaUnit, ConfMinorityAdoptsWithoutDeciding) {
  Context ctx(engine, 0);
  AbaSession s(host, 0, kN, kT, CoinMode::kIdealCommon, 7);
  drive_to_conf(ctx, s, *this);
  // t+1 = 2 singletons {1}, one {0,1}: adopt est = 1, no decision.
  s.on_broadcast(ctx, 1, vote(1, 2, 2));
  s.on_broadcast(ctx, 2, vote(1, 2, 2));
  s.on_broadcast(ctx, 3, vote(1, 2, 3));
  EXPECT_FALSE(s.decided());
  EXPECT_EQ(s.current_round(), 2u);
  EXPECT_EQ(host.sent_values(0, 2), (std::vector<int>{1}));  // est carried
}

TEST_F(AbaUnit, NoTierFallsBackToCoin) {
  Context ctx(engine, 0);
  // Ideal coin mode: the coin is available synchronously.
  AbaSession s(host, 0, kN, kT, CoinMode::kIdealCommon, 7);
  drive_to_conf(ctx, s, *this);
  // All CONFs are {0,1}: no singleton tier; est := coin, round advances.
  for (int from : {1, 2, 3}) s.on_broadcast(ctx, from, vote(1, 2, 3));
  EXPECT_FALSE(s.decided());
  EXPECT_EQ(s.current_round(), 2u);
}

TEST_F(AbaUnit, SvssCoinArrivingLateStillAdvances) {
  Context ctx(engine, 0);
  AbaSession s(host, 0, kN, kT, CoinMode::kSvss, 0);
  drive_to_conf(ctx, s, *this);
  for (int from : {1, 2, 3}) s.on_broadcast(ctx, from, vote(1, 2, 3));
  // Frozen without a coin: stuck in round 1 until the coin lands.
  EXPECT_EQ(s.current_round(), 1u);
  EXPECT_TRUE(s.snapshot(1).conf_frozen);
  s.on_coin(ctx, 1, 0);
  EXPECT_EQ(s.current_round(), 2u);
}

TEST_F(AbaUnit, DecideAggregationFromTPlusOneAnnouncements) {
  Context ctx(engine, 0);
  AbaSession s(host, 0, kN, kT, CoinMode::kIdealCommon, 7);
  s.start(ctx, 0);
  s.on_direct(ctx, 2, vote(1, 3, 1));
  EXPECT_FALSE(s.decided());
  s.on_direct(ctx, 3, vote(1, 3, 1));  // t+1 = 2 announcements
  ASSERT_TRUE(s.decided());
  EXPECT_EQ(s.decision(), 1);
}

TEST_F(AbaUnit, MalformedVotesIgnored) {
  Context ctx(engine, 0);
  AbaSession s(host, 0, kN, kT, CoinMode::kIdealCommon, 7);
  s.start(ctx, 1);
  s.on_direct(ctx, 1, vote(1, 0, 7));       // non-binary value
  s.on_direct(ctx, 1, vote(0, 0, 1));       // round 0
  s.on_broadcast(ctx, 1, vote(1, 2, 0));    // CONF code 0 invalid
  s.on_broadcast(ctx, 1, vote(1, 2, 9));    // CONF code out of range
  auto snap = s.snapshot(1);
  // No valid vote was recorded (the mock host does not self-deliver).
  EXPECT_EQ(snap.est_senders[0] + snap.est_senders[1], 0u);
  EXPECT_EQ(snap.conf_senders, 0u);
}

TEST_F(AbaUnit, LocalCoinModeSuppliesCoinImmediately) {
  Context ctx(engine, 0);
  AbaSession s(host, 0, kN, kT, CoinMode::kLocal, 0);
  s.start(ctx, 0);
  EXPECT_TRUE(s.snapshot(1).has_coin);
  EXPECT_TRUE(host.coin_requests.empty());
}

}  // namespace
}  // namespace svss
