// Unit tests: Weak Reliable Broadcast / Reliable Broadcast (Appendix A).
//
// Properties under test (n > 3t):
//  - weak termination: honest dealer => all honest deliver its value;
//  - correctness (a): no two honest processes deliver different values for
//    the same broadcast, even under transport-level equivocation;
//  - correctness (b): honest dealer => delivered value is the dealt value;
//  - termination: one honest delivery => all honest deliver.
#include "rbc/rbc.hpp"

#include <gtest/gtest.h>

#include <map>

#include "sim/scheduler.hpp"

namespace svss {
namespace {

Message test_msg(int payload) {
  Message m;
  m.sid.path = SessionPath::kTest;
  m.type = MsgType::kTestPayload;
  m.a = static_cast<std::int16_t>(payload);
  return m;
}

// Honest participant: runs the RB state machine, records deliveries, and
// optionally initiates one broadcast at start.
class RbNode : public IProcess {
 public:
  explicit RbNode(std::optional<int> broadcast_payload = std::nullopt)
      : payload_(broadcast_payload),
        rbc_([this](Context&, int origin, const Message& m) {
          delivered[origin].push_back(m.a);
        }) {}

  void start(Context& ctx) override {
    if (payload_) rbc_.broadcast(ctx, test_msg(*payload_));
  }
  void on_packet(Context& ctx, int from, const Packet& p) override {
    if (p.is_rb) rbc_.on_transport(ctx, from, p);
  }

  std::map<int, std::vector<int>> delivered;  // origin -> payloads

 private:
  std::optional<int> payload_;
  Rbc rbc_;
};

// Byzantine dealer: sends phase-1 value A to the lower half and value B to
// the upper half of the system, then participates in nothing else.
class EquivocatingDealer : public IProcess {
 public:
  void start(Context& ctx) override {
    BcastId bid;
    bid.origin = static_cast<std::int16_t>(ctx.self());
    bid.sid = test_msg(0).sid;
    bid.slot = MsgType::kTestPayload;
    for (int to = 0; to < ctx.n(); ++to) {
      Message m = test_msg(to < ctx.n() / 2 ? 7 : 8);
      bid.a = m.a;  // note: differing slot ids => two separate instances
      ctx.send(to, make_rb(bid, RbPhase::kSend, m.serialize()));
    }
  }
  void on_packet(Context&, int, const Packet&) override {}
};

// Like EquivocatingDealer but keeps the slot id fixed, the harder attack:
// one instance, two values.
class SameSlotEquivocator : public IProcess {
 public:
  void start(Context& ctx) override {
    BcastId bid;
    bid.origin = static_cast<std::int16_t>(ctx.self());
    bid.sid = test_msg(0).sid;
    bid.slot = MsgType::kTestPayload;
    bid.a = 7;
    for (int to = 0; to < ctx.n(); ++to) {
      Message m = test_msg(7);
      m.b = static_cast<std::int16_t>(to < ctx.n() / 2 ? 0 : 1);  // diverge
      ctx.send(to, make_rb(bid, RbPhase::kSend, m.serialize()));
    }
  }
  void on_packet(Context&, int, const Packet&) override {}
};

struct RbWorld {
  explicit RbWorld(int n, int t, std::uint64_t seed,
                   SchedulerKind kind = SchedulerKind::kRandom)
      : engine(n, t, seed, make_scheduler(kind, seed, n, t)) {}
  Engine engine;
  std::vector<RbNode*> nodes;

  void add_honest(int id, std::optional<int> payload = std::nullopt) {
    auto node = std::make_unique<RbNode>(payload);
    nodes.push_back(node.get());
    engine.set_process(id, std::move(node));
  }
};

TEST(Rbc, HonestDealerAllDeliver) {
  RbWorld w(4, 1, 11);
  w.add_honest(0, 42);
  for (int i = 1; i < 4; ++i) w.add_honest(i);
  EXPECT_EQ(w.engine.run(), RunStatus::kQuiescent);
  for (auto* node : w.nodes) {
    ASSERT_EQ(node->delivered[0].size(), 1u);
    EXPECT_EQ(node->delivered[0][0], 42);
  }
}

TEST(Rbc, ManyConcurrentBroadcasts) {
  RbWorld w(7, 2, 12);
  for (int i = 0; i < 7; ++i) w.add_honest(i, 100 + i);
  EXPECT_EQ(w.engine.run(), RunStatus::kQuiescent);
  for (auto* node : w.nodes) {
    for (int origin = 0; origin < 7; ++origin) {
      ASSERT_EQ(node->delivered[origin].size(), 1u) << origin;
      EXPECT_EQ(node->delivered[origin][0], 100 + origin);
    }
  }
}

TEST(Rbc, DeliversUnderLifoSchedule) {
  RbWorld w(4, 1, 13, SchedulerKind::kLifo);
  w.add_honest(0, 5);
  for (int i = 1; i < 4; ++i) w.add_honest(i);
  w.engine.run();
  for (auto* node : w.nodes) {
    ASSERT_EQ(node->delivered[0].size(), 1u);
    EXPECT_EQ(node->delivered[0][0], 5);
  }
}

TEST(Rbc, SilentDealerDeliversNothing) {
  RbWorld w(4, 1, 14);
  for (int i = 0; i < 4; ++i) w.add_honest(i);
  w.engine.run();
  for (auto* node : w.nodes) EXPECT_TRUE(node->delivered.empty());
}

// Same-slot transport equivocation: agreement must hold — every honest
// process that delivers, delivers the same bytes.  (With n=4, t=1 and the
// dealer faulty, delivery itself is not guaranteed.)
TEST(Rbc, SameSlotEquivocationNeverSplitsDelivery) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RbWorld w(4, 1, seed);
    w.engine.set_process(3, std::make_unique<SameSlotEquivocator>());
    for (int i = 0; i < 3; ++i) w.add_honest(i);
    w.engine.run();
    std::optional<int> seen;
    for (auto* node : w.nodes) {
      for (const auto& [origin, payloads] : node->delivered) {
        for (int p : payloads) {
          if (!seen) seen = p;
          EXPECT_EQ(*seen, p) << "seed " << seed;
        }
      }
    }
  }
}

TEST(Rbc, DistinctSlotsAreIndependentInstances) {
  RbWorld w(4, 1, 15);
  w.engine.set_process(3, std::make_unique<EquivocatingDealer>());
  for (int i = 0; i < 3; ++i) w.add_honest(i);
  w.engine.run();
  // Two slots => the halves echo different instances; with only 3 honest
  // echoers split 2/1, neither instance necessarily completes, but if a
  // delivery happens it is internally consistent per slot.
  for (auto* node : w.nodes) {
    for (const auto& [origin, payloads] : node->delivered) {
      EXPECT_LE(payloads.size(), 2u);
    }
  }
}

// Termination amplification: if one honest process delivered, all must
// (run to quiescence and compare).
TEST(Rbc, AllOrNothingDelivery) {
  for (std::uint64_t seed = 30; seed < 50; ++seed) {
    RbWorld w(7, 2, seed);
    w.engine.set_process(5, std::make_unique<SameSlotEquivocator>());
    w.engine.set_process(6, std::make_unique<SameSlotEquivocator>());
    for (int i = 0; i < 5; ++i) w.add_honest(i);
    w.engine.run();
    int deliver_count = 0;
    for (auto* node : w.nodes) {
      if (!node->delivered.empty()) ++deliver_count;
    }
    EXPECT_TRUE(deliver_count == 0 ||
                deliver_count == static_cast<int>(w.nodes.size()))
        << "seed " << seed << ": " << deliver_count;
  }
}

// A broadcast whose payload header does not match its slot is dropped
// consistently by everyone.
TEST(Rbc, SlotHeaderMismatchDropped) {
  RbWorld w(4, 1, 16);
  class MismatchDealer : public IProcess {
   public:
    void start(Context& ctx) override {
      BcastId bid;
      bid.origin = static_cast<std::int16_t>(ctx.self());
      bid.sid = test_msg(0).sid;
      bid.slot = MsgType::kMwAck;  // slot says ack...
      bid.a = -1;
      Message m = test_msg(1);     // ...payload says test
      m.a = -1;
      ctx.send_all(make_rb(bid, RbPhase::kSend, m.serialize()));
    }
    void on_packet(Context&, int, const Packet&) override {}
  };
  w.engine.set_process(0, std::make_unique<MismatchDealer>());
  for (int i = 1; i < 4; ++i) w.add_honest(i);
  w.engine.run();
  for (auto* node : w.nodes) EXPECT_TRUE(node->delivered.empty());
}

TEST(Rbc, GarbageValueBytesDroppedConsistently) {
  RbWorld w(4, 1, 17);
  class GarbageDealer : public IProcess {
   public:
    void start(Context& ctx) override {
      BcastId bid;
      bid.origin = static_cast<std::int16_t>(ctx.self());
      bid.sid = test_msg(0).sid;
      bid.slot = MsgType::kTestPayload;
      bid.a = -1;
      ctx.send_all(make_rb(bid, RbPhase::kSend, Bytes{1, 2, 3}));
    }
    void on_packet(Context&, int, const Packet&) override {}
  };
  w.engine.set_process(0, std::make_unique<GarbageDealer>());
  for (int i = 1; i < 4; ++i) w.add_honest(i);
  w.engine.run();
  for (auto* node : w.nodes) EXPECT_TRUE(node->delivered.empty());
}

// Message complexity: one broadcast costs Theta(n^2) transport packets —
// exactly n + 2n^2 under a FIFO schedule (n sends, n echo broadcasts, n
// ready broadcasts), and never more under any schedule (a process that
// accepts early may skip its echo).
TEST(Rbc, QuadraticMessageComplexity) {
  for (int n : {4, 8, 16}) {
    RbWorld w(n, (n - 1) / 3, 18, SchedulerKind::kFifo);
    w.add_honest(0, 1);
    for (int i = 1; i < n; ++i) w.add_honest(i);
    w.engine.run();
    EXPECT_EQ(w.engine.metrics().packets_sent,
              static_cast<std::uint64_t>(n + 2 * n * n));
  }
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RbWorld w(7, 2, seed);
    w.add_honest(0, 1);
    for (int i = 1; i < 7; ++i) w.add_honest(i);
    w.engine.run();
    EXPECT_LE(w.engine.metrics().packets_sent, 7u + 2 * 49u);
    EXPECT_GE(w.engine.metrics().packets_sent, 7u + 49u);
  }
}

}  // namespace
}  // namespace svss
