// Unit tests: scheduler priority policies.
#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

namespace svss {
namespace {

PendingInfo info(std::uint64_t seq, int from = 0, int to = 1,
                 bool is_rb = false) {
  return PendingInfo{seq, from, to, is_rb};
}

TEST(Scheduler, FifoPreservesSendOrder) {
  FifoScheduler s;
  EXPECT_LT(s.priority(info(1)), s.priority(info(2)));
  EXPECT_LT(s.priority(info(2)), s.priority(info(100)));
}

TEST(Scheduler, LifoInvertsSendOrder) {
  LifoScheduler s;
  EXPECT_GT(s.priority(info(1)), s.priority(info(2)));
}

TEST(Scheduler, RandomIsDeterministicPerSeed) {
  RandomScheduler a(7);
  RandomScheduler b(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.priority(info(static_cast<std::uint64_t>(i))),
              b.priority(info(static_cast<std::uint64_t>(i))));
  }
}

TEST(Scheduler, TargetedDelayPenalizesMatches) {
  auto slow = [](const PendingInfo& p) { return p.to == 3; };
  TargetedDelayScheduler s(1, slow, 1 << 20);
  std::uint64_t fast = s.priority(info(10, 0, 1));
  std::uint64_t delayed = s.priority(info(10, 0, 3));
  EXPECT_GT(delayed, fast + (1 << 19));
}

TEST(Scheduler, FactoryBuildsEveryKind) {
  for (auto kind : {SchedulerKind::kFifo, SchedulerKind::kRandom,
                    SchedulerKind::kLifo, SchedulerKind::kDelayLastHonest}) {
    auto s = make_scheduler(kind, 42, 7, 2);
    ASSERT_NE(s, nullptr);
    (void)s->priority(info(1));
  }
}

TEST(Scheduler, DelayLastHonestTargetsTailProcesses) {
  auto s = make_scheduler(SchedulerKind::kDelayLastHonest, 42, 7, 2);
  // Traffic among the first n-t processes is fast; traffic touching the
  // tail is penalized.  Compare averages over jitter.
  std::uint64_t fast_total = 0;
  std::uint64_t slow_total = 0;
  for (int i = 0; i < 32; ++i) {
    fast_total += s->priority(info(100, 0, 1));
    slow_total += s->priority(info(100, 0, 6));
  }
  EXPECT_GT(slow_total, fast_total + 32ull * (1 << 17));
}

}  // namespace
}  // namespace svss
