// Protocol tests: multivalued agreement via the Turpin-Coan reduction.
//
// Properties (n > 3t): agreement — all honest decide the same value;
// validity — unanimous honest proposals are the only possible decision;
// fallback — under hopeless disagreement the decision may be the default
// value but never a fabricated one (decision is always some process's
// proposal or the default).
#include <gtest/gtest.h>

#include <set>

#include "core/runner.hpp"

namespace svss {
namespace {

RunnerConfig cfg(int n, int t, std::uint64_t seed) {
  RunnerConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  return c;
}

constexpr std::int64_t kDefault = 0xDEF;

TEST(Mvba, UnanimousProposalDecidesIt) {
  std::vector<Fp> props(4, Fp(31415));
  Runner r(cfg(4, 1, 91));
  auto res = r.run_mvba(props, Fp(kDefault));
  ASSERT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.value, 31415u);
}

TEST(Mvba, UnanimousHonestWithByzantineMinority) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto c = cfg(4, 1, 9100 + seed);
    c.faults[3] = ByzConfig{ByzKind::kBitFlip, 0, 0.3};
    Runner r(c);
    std::vector<Fp> props{Fp(777), Fp(777), Fp(777), Fp(123)};
    auto res = r.run_mvba(props, Fp(kDefault));
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
    EXPECT_EQ(res.value, 777u) << seed;
  }
}

TEST(Mvba, SplitProposalsAgreeOnSomething) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Runner r(cfg(4, 1, 9200 + seed));
    std::vector<Fp> props{Fp(1), Fp(2), Fp(3), Fp(4)};
    auto res = r.run_mvba(props, Fp(kDefault));
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
    // Decision is a proposal or the default — never fabricated.
    std::set<std::uint64_t> legal{1, 2, 3, 4,
                                  static_cast<std::uint64_t>(kDefault)};
    EXPECT_TRUE(legal.count(res.value) == 1) << res.value;
  }
}

TEST(Mvba, SilentFaultStillDecides) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto c = cfg(4, 1, 9300 + seed);
    c.faults[2] = ByzConfig{ByzKind::kSilent};
    Runner r(c);
    std::vector<Fp> props{Fp(5), Fp(5), Fp(5), Fp(5)};
    auto res = r.run_mvba(props, Fp(kDefault));
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
    EXPECT_EQ(res.value, 5u) << seed;
  }
}

TEST(Mvba, SevenProcessesMixedProposals) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto c = cfg(7, 2, 9400 + seed);
    c.faults[6] = ByzConfig{ByzKind::kSilent};
    Runner r(c);
    std::vector<Fp> props{Fp(9), Fp(9), Fp(9), Fp(9), Fp(9), Fp(2), Fp(2)};
    auto res = r.run_mvba(props, Fp(kDefault));
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
    // 5 honest of 6 active propose 9: validity forces 9.
    EXPECT_EQ(res.value, 9u) << seed;
  }
}

TEST(Mvba, WorksOverSvssCoin) {
  Runner r(cfg(4, 1, 95));
  std::vector<Fp> props{Fp(42), Fp(42), Fp(42), Fp(42)};
  auto res = r.run_mvba(props, Fp(kDefault), CoinMode::kSvss);
  ASSERT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.value, 42u);
}

}  // namespace
}  // namespace svss
