// Unit tests: bivariate polynomials — slicing, cross-consistency, grid
// interpolation (the algebra behind SVSS).
#include "common/bivariate.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace svss {
namespace {

TEST(Bivariate, SecretIsConstantTerm) {
  Rng rng(1);
  auto f = BivariatePolynomial::random_with_secret(Fp(4242), 3, rng);
  EXPECT_EQ(f.secret(), Fp(4242));
  EXPECT_EQ(f.eval(Fp(0), Fp(0)), Fp(4242));
}

TEST(Bivariate, RowAndColumnMatchEval) {
  Rng rng(2);
  auto f = BivariatePolynomial::random_with_secret(Fp(7), 2, rng);
  for (int j = 1; j <= 5; ++j) {
    Polynomial g = f.row(j);
    Polynomial h = f.column(j);
    for (int x = 0; x <= 6; ++x) {
      EXPECT_EQ(g.eval(Fp(x)), f.eval(Fp(j), Fp(x)));
      EXPECT_EQ(h.eval(Fp(x)), f.eval(Fp(x), Fp(j)));
    }
  }
}

// The pairwise consistency SVSS relies on: h_k(l) == g_l(k) for all k, l.
TEST(Bivariate, CrossConsistencyOfSlices) {
  Rng rng(3);
  auto f = BivariatePolynomial::random_with_secret(Fp(99), 4, rng);
  for (int k = 1; k <= 6; ++k) {
    for (int l = 1; l <= 6; ++l) {
      EXPECT_EQ(f.column(k).eval(Fp(l)), f.row(l).eval(Fp(k)));
    }
  }
}

// The monitored points g_j(0) = f(j, 0) interpolate to the secret — this
// is what makes t+1 surviving rows enough for reconstruction.
TEST(Bivariate, MonitoredPointsInterpolateToSecret) {
  Rng rng(4);
  int t = 2;
  auto f = BivariatePolynomial::random_with_secret(Fp(31337), t, rng);
  std::vector<std::pair<Fp, Fp>> pts;
  for (int j = 1; j <= t + 1; ++j) pts.emplace_back(Fp(j), f.row(j).eval(Fp(0)));
  Polynomial p = Polynomial::interpolate(pts);
  EXPECT_EQ(p.constant(), Fp(31337));
}

TEST(Bivariate, InterpolateCheckedRecoversPolynomial) {
  Rng rng(5);
  int deg = 3;
  auto f = BivariatePolynomial::random_with_secret(Fp(606), deg, rng);
  std::vector<Fp> xs;
  std::vector<std::vector<std::pair<Fp, Fp>>> rows;
  for (int k = 1; k <= deg + 2; ++k) {  // oversampled grid
    xs.push_back(Fp(k));
    std::vector<std::pair<Fp, Fp>> row;
    for (int l = 1; l <= deg + 3; ++l) {
      row.emplace_back(Fp(l), f.eval(Fp(k), Fp(l)));
    }
    rows.push_back(std::move(row));
  }
  auto g = BivariatePolynomial::interpolate_checked(xs, rows, deg);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(*g, f);
}

TEST(Bivariate, InterpolateCheckedRejectsCorruptEntry) {
  Rng rng(6);
  int deg = 2;
  auto f = BivariatePolynomial::random_with_secret(Fp(1), deg, rng);
  std::vector<Fp> xs;
  std::vector<std::vector<std::pair<Fp, Fp>>> rows;
  for (int k = 1; k <= deg + 2; ++k) {
    xs.push_back(Fp(k));
    std::vector<std::pair<Fp, Fp>> row;
    for (int l = 1; l <= deg + 2; ++l) {
      row.emplace_back(Fp(l), f.eval(Fp(k), Fp(l)));
    }
    rows.push_back(std::move(row));
  }
  rows[3][3].second += Fp(1);
  EXPECT_FALSE(
      BivariatePolynomial::interpolate_checked(xs, rows, deg).has_value());
}

TEST(Bivariate, InterpolateCheckedRejectsTooFewRows) {
  std::vector<Fp> xs{Fp(1), Fp(2)};
  std::vector<std::vector<std::pair<Fp, Fp>>> rows(2);
  EXPECT_FALSE(BivariatePolynomial::interpolate_checked(xs, rows, 2));
}

// Hiding basis: t points of the secret column f(0, 1..t) cannot pin down
// f(0, 0) — any candidate secret remains consistent.
TEST(Bivariate, LeakedPointsConsistentWithAnySecret) {
  Rng rng(7);
  int t = 2;
  auto f = BivariatePolynomial::random_with_secret(Fp(1000), t, rng);
  std::vector<std::pair<Fp, Fp>> leaked;
  for (int j = 1; j <= t; ++j) leaked.emplace_back(Fp(j), f.eval(Fp(0), Fp(j)));
  for (std::int64_t fake = 0; fake < 20; ++fake) {
    auto pts = leaked;
    pts.emplace_back(Fp(0), Fp(fake));
    Polynomial q = Polynomial::interpolate(pts);
    EXPECT_EQ(q.constant(), Fp(fake));
    for (const auto& [x, y] : leaked) EXPECT_EQ(q.eval(x), y);
  }
}

class BivariateDegreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(BivariateDegreeSweep, GridRoundTrip) {
  int deg = GetParam();
  Rng rng(50 + static_cast<std::uint64_t>(deg));
  auto f = BivariatePolynomial::random_with_secret(rng.next_field(), deg, rng);
  std::vector<Fp> xs;
  std::vector<std::vector<std::pair<Fp, Fp>>> rows;
  for (int k = 1; k <= deg + 1; ++k) {
    xs.push_back(Fp(k));
    std::vector<std::pair<Fp, Fp>> row;
    for (int l = 1; l <= deg + 1; ++l) {
      row.emplace_back(Fp(l), f.eval(Fp(k), Fp(l)));
    }
    rows.push_back(std::move(row));
  }
  auto g = BivariatePolynomial::interpolate_checked(xs, rows, deg);
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->secret(), f.secret());
}

INSTANTIATE_TEST_SUITE_P(Degrees, BivariateDegreeSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 6));

// The one-pass share-vector evaluation used by the (batched) dealer must
// agree value-for-value with the slice polynomials it replaces.
TEST(Bivariate, AppendSharePointsMatchesSlices) {
  for (int deg : {0, 1, 2, 5}) {
    Rng rng(90 + static_cast<std::uint64_t>(deg));
    auto f =
        BivariatePolynomial::random_with_secret(rng.next_field(), deg, rng);
    FieldVec scratch;
    for (int j = 1; j <= 7; ++j) {
      FieldVec out;
      f.append_share_points(j, deg + 1, out, scratch);
      FieldVec gp = f.row(j).evaluate_range(deg + 1);
      FieldVec hp = f.column(j).evaluate_range(deg + 1);
      ASSERT_EQ(out.size(), gp.size() + hp.size());
      for (std::size_t k = 0; k < gp.size(); ++k) EXPECT_EQ(out[k], gp[k]);
      for (std::size_t k = 0; k < hp.size(); ++k) {
        EXPECT_EQ(out[gp.size() + k], hp[k]);
      }
    }
  }
}

}  // namespace
}  // namespace svss
