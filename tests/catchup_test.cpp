// Byzantine-resistance regression tests for the rejoin catch-up handshake
// (core/service_builder.hpp).
//
// The harness plays catch-up peers with raw TCP sockets: each "peer" dials
// the daemon's listener, identifies itself with a HELLO frame, and injects
// hand-crafted kEpochCatchupState frames.  That exercises the exact attack
// surface a Byzantine fleet member has — the daemon cannot tell these
// sockets from real peers.  Pinned behaviours (each failed pre-hardening):
//
//  * an epoch is re-entered only on t+1 *byte-identical* configs — t+1
//    reports of the same epoch id with divergent configs (one forged)
//    must not install anything;
//  * a reply whose config does not describe the epoch it claims to be
//    current is dropped whole;
//  * state frames outside an in-flight catch_up() are ignored entirely
//    (no tallies, no metering), so unsolicited frames can neither grow
//    the vote maps nor pre-stuff a quorum;
//  * a decision adopted while the journal cannot append is folded into a
//    checkpoint instead of landing behind a torn journal entry.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/service_builder.hpp"
#include "net/frame.hpp"

namespace svss {
namespace {

std::uint16_t reserve_dead_port() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return 0;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  ::close(fd);
  return ntohs(bound.sin_port);
}

// A raw socket speaking just enough of the wire protocol to impersonate a
// fleet member on the daemon's inbound leg.
struct FakePeer {
  int fd = -1;

  bool dial(std::uint16_t port, int id) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      return false;
    }
    Bytes out;
    net::append_hello_frame(out, id);
    return send_all(out);
  }

  bool send_state(int owner, std::uint32_t current_epoch,
                  const EpochConfig& cfg,
                  const std::vector<DecisionRecord>& recs) {
    Message m;
    m.type = MsgType::kEpochCatchupState;
    m.sid.owner = static_cast<std::int16_t>(owner);
    m.blob = encode_catchup_state(current_epoch, cfg, recs);
    Bytes out;
    net::append_packet_frame(out, make_direct(std::move(m)));
    return send_all(out);
  }

  bool send_all(const Bytes& b) {
    std::size_t off = 0;
    while (off < b.size()) {
      ssize_t w = ::write(fd, b.data() + off, b.size() - off);
      if (w <= 0) return false;
      off += static_cast<std::size_t>(w);
    }
    return true;
  }

  ~FakePeer() {
    if (fd >= 0) ::close(fd);
  }
};

EpochConfig full_config(std::uint32_t epoch) {
  EpochConfig cfg;
  cfg.epoch = epoch;
  cfg.members = {0, 1, 2, 3};
  cfg.t = 1;
  return cfg;
}

// A 4-node daemon (t = 1) whose three peers are reserved-but-dead ports,
// so every inbound frame comes from the FakePeers.
DaemonService make_daemon() {
  net::ClusterConfig cluster;
  cluster.peers.push_back(net::Endpoint{"127.0.0.1", 0});
  for (int i = 0; i < 3; ++i) {
    std::uint16_t port = reserve_dead_port();
    EXPECT_NE(port, 0);
    cluster.peers.push_back(net::Endpoint{"127.0.0.1", port});
  }
  return ServiceBuilder().seed(11).build_daemon(0, std::move(cluster));
}

// Never-decided instance id used to keep catch_up polling its full
// timeout (so pre-queued frames are definitely ingested).
constexpr std::uint32_t kUndecidable = 99;

TEST(CatchUp, EpochIdQuorumWithDivergentConfigsInstallsNothing) {
  DaemonService svc = make_daemon();
  ASSERT_TRUE(svc.start());

  // t+1 = 2 reporters agree on *epoch id* 1, but one of them forges the
  // membership.  Pre-hardening the tally was keyed by epoch id and kept
  // the last reporter's config, so this installed an attacker config.
  EpochConfig forged;
  forged.epoch = 1;
  forged.members = {0, 2};
  forged.t = 0;

  FakePeer honest, attacker;
  ASSERT_TRUE(honest.dial(svc.transport().bound_port(), 1));
  ASSERT_TRUE(attacker.dial(svc.transport().bound_port(), 2));
  ASSERT_TRUE(honest.send_state(1, 1, full_config(1), {}));
  ASSERT_TRUE(attacker.send_state(2, 1, forged, {}));

  EXPECT_FALSE(svc.catch_up({kUndecidable}, 1200));
  EXPECT_EQ(svc.current_epoch(), 0u)
      << "epoch advanced without t+1 identical configs";
  svc.shutdown();
}

TEST(CatchUp, IdenticalConfigQuorumAdvancesPastLoneForgery) {
  DaemonService svc = make_daemon();
  ASSERT_TRUE(svc.start());

  EpochConfig truth = full_config(1);
  EpochConfig forged;  // a lone claim of an even newer epoch
  forged.epoch = 2;
  forged.members = {0, 3};
  forged.t = 0;

  FakePeer p1, p2, p3;
  ASSERT_TRUE(p1.dial(svc.transport().bound_port(), 1));
  ASSERT_TRUE(p2.dial(svc.transport().bound_port(), 2));
  ASSERT_TRUE(p3.dial(svc.transport().bound_port(), 3));
  ASSERT_TRUE(p1.send_state(1, 1, truth, {}));
  ASSERT_TRUE(p2.send_state(2, 1, truth, {}));
  ASSERT_TRUE(p3.send_state(3, 2, forged, {}));

  svc.catch_up({kUndecidable}, 1200);
  EXPECT_EQ(svc.current_epoch(), 1u);
  EXPECT_EQ(svc.epoch_transport().config(), truth);
  svc.shutdown();
}

TEST(CatchUp, ConfigClaimingWrongEpochIsDropped) {
  DaemonService svc = make_daemon();
  ASSERT_TRUE(svc.start());

  // Both reports are identical — but the config describes epoch 2 while
  // the reply claims epoch 1 is current.  The whole reply is dropped
  // before any tally or metering.
  EpochConfig mismatched = full_config(2);

  FakePeer p1, p2;
  ASSERT_TRUE(p1.dial(svc.transport().bound_port(), 1));
  ASSERT_TRUE(p2.dial(svc.transport().bound_port(), 2));
  ASSERT_TRUE(p1.send_state(1, 1, mismatched, {}));
  ASSERT_TRUE(p2.send_state(2, 1, mismatched, {}));

  EXPECT_FALSE(svc.catch_up({kUndecidable}, 1200));
  EXPECT_EQ(svc.current_epoch(), 0u);
  EXPECT_EQ(svc.catchup_frames(), 0u);
  svc.shutdown();
}

TEST(CatchUp, UnsolicitedStateFramesAreIgnored) {
  DaemonService svc = make_daemon();
  ASSERT_TRUE(svc.start());

  DecisionRecord rec{0, 5, 1, 2};
  FakePeer p1, p2;
  ASSERT_TRUE(p1.dial(svc.transport().bound_port(), 1));
  ASSERT_TRUE(p2.dial(svc.transport().bound_port(), 2));
  ASSERT_TRUE(p1.send_state(1, 0, full_config(0), {rec}));
  ASSERT_TRUE(p2.send_state(2, 0, full_config(0), {rec}));

  // No catch_up in flight: the daemon polls, ingests, and must drop both
  // frames on the floor — no adoption, no tallies, no metering.
  svc.run_until([] { return false; }, 400);
  EXPECT_FALSE(svc.decision(5).has_value())
      << "unsolicited state reports were tallied";
  EXPECT_EQ(svc.catchup_frames(), 0u);
  svc.shutdown();
}

TEST(CatchUp, ValueQuorumAdoptsAndJournalFailureFoldsIntoCheckpoint) {
  std::string ckpt = ::testing::TempDir() + "svss_catchup_ckpt";
  std::string journal = ckpt + ".journal";
  std::remove(ckpt.c_str());
  std::remove(journal.c_str());
  // Point the journal at /dev/full: open succeeds, every append's flush
  // fails — the decision must become durable via the checkpoint instead
  // of vanishing behind a torn journal tail.
  bool dev_full = ::symlink("/dev/full", journal.c_str()) == 0;

  DaemonService svc = make_daemon();
  svc.enable_recovery(ckpt);
  ASSERT_TRUE(svc.start());

  DecisionRecord rec{0, 5, 1, 2};
  DecisionRecord lie{0, 5, 0, 2};  // minority report of the other value
  FakePeer p1, p2, p3;
  ASSERT_TRUE(p1.dial(svc.transport().bound_port(), 1));
  ASSERT_TRUE(p2.dial(svc.transport().bound_port(), 2));
  ASSERT_TRUE(p3.dial(svc.transport().bound_port(), 3));
  ASSERT_TRUE(p1.send_state(1, 0, full_config(0), {rec}));
  ASSERT_TRUE(p3.send_state(3, 0, full_config(0), {lie}));
  ASSERT_TRUE(p2.send_state(2, 0, full_config(0), {rec}));

  EXPECT_TRUE(svc.catch_up({5}, 5000));
  ASSERT_TRUE(svc.decision(5).has_value());
  EXPECT_EQ(*svc.decision(5), 1) << "minority value adopted";
  svc.shutdown();

  if (dev_full) {
    auto cp = load_checkpoint(ckpt);
    ASSERT_TRUE(cp.has_value())
        << "journal append failed silently; decision not durable";
    ASSERT_EQ(cp->decisions.size(), 1u);
    EXPECT_EQ(cp->decisions[0], rec);
    std::remove(journal.c_str());
  }
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace svss
