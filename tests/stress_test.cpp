// Stress lane (ctest label "stress", SVSS_STRESS_TESTS=ON): scale runs
// past the tier-1 envelope.  ROADMAP's scale axis: nothing in tier-1 runs
// past n = 13; this lane pushes the agreement skeleton to n = 31 (t = 10,
// optimal resilience) and runs the full SVSS-coin termination sweep at
// n = 7, which is too slow for the default suite.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string_view>

#include "search/corpus.hpp"
#include "sweep_common.hpp"

namespace svss {
namespace {

std::vector<int> mixed_inputs(int n) {
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i % 2);
  return inputs;
}

// n = 31, t = 10: one full agreement run at the resilience bound.  The
// ideal-coin abstraction keeps the SCC out of the packet count (the full
// stack is O(n^7) messages — measured separately); what scales here is the
// voting skeleton: ~n RB broadcasts per round, each O(n^2) transport
// packets, through the scheduler heap and serialization paths.
TEST(Stress, Aba31AtResilienceBound) {
  RunnerConfig cfg;
  cfg.n = 31;
  cfg.t = 10;
  cfg.seed = 3101;
  cfg.max_deliveries = 500'000'000;
  Runner r(cfg);
  auto res = r.run_aba(mixed_inputs(31), CoinMode::kIdealCommon);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_FALSE(res.metrics.capped);
}

// Same lane with the full t = 10 fault budget spent on a colluding cabal
// that crashes simultaneously mid-run: a third of the system vanishing in
// one instant must not stall the remaining 21 processes.
TEST(Stress, Aba31WithCoordinatedCabalCrash) {
  RunnerConfig cfg;
  cfg.n = 31;
  cfg.t = 10;
  cfg.seed = 3102;
  cfg.max_deliveries = 500'000'000;
  std::vector<int> members;
  for (int i = 21; i < 31; ++i) members.push_back(i);
  adversary::install_cabal(
      cfg, members,
      adversary::AdversaryConfig{adversary::StrategyKind::kColludingCabal,
                                 /*silence_after=*/20'000});
  Runner r(cfg);
  auto res = r.run_aba(mixed_inputs(31), CoinMode::kIdealCommon);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_FALSE(res.metrics.capped);
  EXPECT_GT(r.adversary(21)->stats().withheld, 0u);
  EXPECT_GT(r.adversary(30)->stats().withheld, 0u);
}

// n = 64, t = 21: the scale target ROADMAP's serialization question needs.
// Ideal-coin skeleton (the full stack at this size is out of reach by
// design); the metrics summary records where Message::serialize bytes go
// per message type, which is the profile the batching of larger payloads
// would have to beat.
TEST(Stress, Aba64HonestAgreement) {
  RunnerConfig cfg;
  cfg.n = 64;
  cfg.t = 21;
  cfg.seed = 6401;
  cfg.max_deliveries = 2'000'000'000;
  Runner r(cfg);
  auto res = r.run_aba(mixed_inputs(64), CoinMode::kIdealCommon);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_FALSE(res.metrics.capped);
  // Attribution must be complete: every metered byte is binned by type
  // (note_type records full wire bytes, envelope included).
  std::uint64_t by_type = 0;
  for (std::uint64_t b : res.metrics.bytes_by_type) by_type += b;
  EXPECT_EQ(by_type, res.metrics.bytes_sent);
  // The per-type breakdown is the artifact this lane exists to record.
  std::cout << "n=64 honest agreement: " << res.metrics.summary() << "\n";
}

// Instance multiplexing at stress scale: 32 concurrent agreement
// instances at n = 31 (t = 10, resilience bound) over one stack, mixed
// inputs per instance.  Every instance must decide and agree
// independently, and the vote stream must actually ride the
// cross-instance envelopes — at this scale an uncoalesced kAbaVote
// majority would mean the batcher silently stopped capturing.
TEST(Stress, MultiInstance31x32Concurrent) {
  RunnerConfig cfg;
  cfg.n = 31;
  cfg.t = 10;
  cfg.seed = 3103;
  cfg.max_deliveries = 2'000'000'000;
  Runner r(cfg);
  constexpr std::uint32_t kInstances = 32;
  for (std::uint32_t i = 0; i < kInstances; ++i) {
    std::vector<int> inputs;
    for (int p = 0; p < 31; ++p) {
      inputs.push_back((p + static_cast<int>(i)) % 2);
    }
    r.submit(i, std::move(inputs));
  }
  auto res = r.run_submitted(CoinMode::kIdealCommon);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_FALSE(res.metrics.capped);
  EXPECT_EQ(res.decisions.size(), kInstances);
  auto pkts = [&res](MsgType t) {
    return res.metrics.packets_by_type[static_cast<std::size_t>(t)];
  };
  std::uint64_t envelopes =
      pkts(MsgType::kAbaBatchVote) + pkts(MsgType::kAbaBatchConf);
  EXPECT_GT(envelopes, pkts(MsgType::kAbaVote));
  std::cout << "n=31 x32 instances: " << res.metrics.summary() << "\n";
}

// The headline claim of the MW group-coalesced transport (plus the PR-4
// coin-dealing batcher): >=5x fewer full-stack packets at n = 10.  The
// workload is one full SVSS-coin round per framing — the *same* protocol
// work on both sides (every process deals and reconstructs its n attached
// sessions exactly once), unlike an agreement run, whose round count
// legitimately differs across framings (the packet schedule decides which
// G-sets freeze first and hence each round's coin bit, so one framing can
// need more rounds than the other on the same seed).  The per-group
// Metrics attribution makes the reduction directly readable — MW child
// traffic (mw-rb + mw-direct) is ~97% of per-session packets and is
// exactly what the envelopes coalesce.
TEST(Stress, FullStackN10) {
  std::uint64_t total[2] = {0, 0};
  std::uint64_t mw_total[2] = {0, 0};
  for (int batched = 0; batched <= 1; ++batched) {
    RunnerConfig cfg;
    cfg.n = 10;
    cfg.t = 3;
    cfg.seed = 1001;
    cfg.batched_coin_dealing = batched != 0;
    cfg.batched_mw_children = batched != 0;
    cfg.max_deliveries = 500'000'000;
    Runner r(cfg);
    auto res = r.run_coin();
    EXPECT_TRUE(res.all_output);
    EXPECT_TRUE(res.shun_pairs.empty());
    EXPECT_FALSE(res.metrics.capped);
    total[batched] = res.metrics.packets_sent;
    // The group attribution must bin every metered packet, and the MW
    // share of the traffic is read straight out of it.
    std::uint64_t by_group = 0;
    for (std::size_t i = 0; i < Metrics::kTypeSlots; ++i) {
      bool is_batch_envelope = false;
      std::string_view group = Metrics::type_group(
          static_cast<MsgType>(i), &is_batch_envelope);
      std::uint64_t packets = res.metrics.packets_by_type[i];
      by_group += packets;
      if (group == "mw-rb" || group == "mw-direct") {
        mw_total[batched] += packets;
      }
    }
    EXPECT_EQ(by_group, res.metrics.packets_sent);
    std::cout << "n=10 full stack ("
              << (batched ? "coalesced" : "per-session")
              << "): " << res.metrics.summary() << "\n";
  }
  // The acceptance gate: the coalesced mode ships at least 5x fewer
  // packets overall, and the win comes from the MW traffic class.
  EXPECT_GE(total[0], 5 * total[1])
      << "per-session " << total[0] << " vs coalesced " << total[1];
  EXPECT_GE(mw_total[0], 5 * mw_total[1])
      << "per-session MW " << mw_total[0] << " vs coalesced "
      << mw_total[1];
}

// Full SVSS-coin termination sweep at n = 10 (t = 3 strategy-driven
// faults): the coverage ROADMAP said only batching would make affordable.
// Two representative strategies (one VSS-targeted, one coordinated) under
// the benign and the fair-random schedule.
TEST(Stress, FullStackSweepN10) {
  sweep::SweepSpec spec;
  spec.ns = {10};
  spec.full_stack_max_n = 10;  // force CoinMode::kSvss
  spec.strategies = {adversary::StrategyKind::kWithholdingModerator,
                     adversary::StrategyKind::kColludingCabal};
  spec.schedulers = {SchedulerKind::kFifo, SchedulerKind::kRandom};
  spec.seeds = {64};
  spec.max_deliveries = 500'000'000;
  auto report = sweep::run_aba_termination_sweep(spec);
  EXPECT_EQ(report.safety_violations, 0) << report.to_json();
  EXPECT_EQ(report.capped_runs, 0) << report.to_json();
  EXPECT_EQ(report.undecided_runs, 0) << report.to_json();
  sweep::maybe_write_report(report, "stress-full-stack-n10");
}

// Full SVSS-coin termination sweep at n = 7 (t = 2 strategy-driven
// faults): the tier-1 sweep runs this size only under the ideal coin; the
// stress lane pays for the real thing.
TEST(Stress, FullStackSweepN7) {
  sweep::SweepSpec spec;
  spec.ns = {7};
  spec.full_stack_max_n = 7;  // force CoinMode::kSvss
  spec.strategies = {std::begin(adversary::kAllStrategies),
                     std::end(adversary::kAllStrategies)};
  spec.schedulers = {SchedulerKind::kFifo, SchedulerKind::kRandom};
  // Seed list spans the input patterns (seed mod 4): two mixed-input
  // seeds for adversarial coin pressure, one all-0 and one all-1 seed so
  // the validity counter is falsifiable.
  spec.seeds = {60, 61, 62, 63};
  spec.max_deliveries = 200'000'000;
  auto report = sweep::run_aba_termination_sweep(spec);
  EXPECT_EQ(report.safety_violations, 0) << report.to_json();
  EXPECT_EQ(report.capped_runs, 0) << report.to_json();
  EXPECT_EQ(report.undecided_runs, 0) << report.to_json();
  for (auto strategy : spec.strategies) {
    EXPECT_GT(report.attacked_count(strategy), 0)
        << adversary::strategy_name(strategy) << " never attacked:\n"
        << report.to_json();
  }
  sweep::maybe_write_report(report, "stress-full-stack-n7");
}

// Coverage-guided schedule search under a bounded budget (override with
// SVSS_SEARCH_BUDGET): mutate genome schedules against the colluding cabal
// on full-stack n = 4 cells, then re-run the best-found schedule through
// the sweep harness (custom-factory lane) so it lands in the
// SVSS_SWEEP_REPORT artifact next to the fixed-kind rows.  Candidate
// corpus entries are written to SVSS_SEARCH_CORPUS (if set) for triage —
// the commit-to-tests/corpus step stays a human decision (see README).
TEST(Stress, ScheduleSearchEmitsCorpusCandidates) {
  search::SearchSpec spec;
  spec.n = 4;
  spec.strategy = adversary::StrategyKind::kColludingCabal;
  spec.mode = CoinMode::kSvss;
  spec.seeds = {11, 22};
  spec.max_deliveries = 20'000'000;
  spec.iterations = 48;
  spec.search_seed = 20260808;
  if (const char* budget = std::getenv("SVSS_SEARCH_BUDGET")) {
    spec.iterations = std::max(1, std::atoi(budget));
  }

  search::ScheduleSearch s(spec);
  auto result = s.run();
  std::cout << "schedule search: " << result.evaluations << " evals, "
            << result.coverage_bits << " coverage bits, baseline "
            << sweep::scheduler_name(result.baseline_kind) << " worst "
            << result.baseline_worst_rounds << ", best found worst "
            << (result.have_best ? result.best.worst_rounds : 0) << "\n";
  // Either of these is a falsification witness, not a schedule: fail the
  // lane loudly so the seed/genome in the log gets triaged.
  EXPECT_FALSE(result.safety_violation);
  EXPECT_FALSE(result.cap_witness);
  ASSERT_TRUE(result.have_best);

  if (const char* dir = std::getenv("SVSS_SEARCH_CORPUS")) {
    std::filesystem::create_directories(dir);
    auto entry = search::make_corpus_entry(spec, result,
                                           "candidate-cabal-n4-svss");
    std::ofstream out(std::filesystem::path(dir) /
                      "candidate-cabal-n4-svss.json");
    out << entry.to_json();
  }

  // The found schedule rides the sweep grid: same cells, custom factory,
  // labeled rows in the JSON artifact.
  sweep::SweepSpec sw;
  sw.ns = {4};
  sw.full_stack_max_n = 4;
  sw.strategies = {spec.strategy};
  sw.schedulers = {SchedulerKind::kFifo};  // placeholder axis
  sw.seeds = spec.seeds;
  sw.max_deliveries = spec.max_deliveries;
  sw.scheduler_factory = search::make_genome_factory(result.best.genome);
  sw.scheduler_label = "genome-best";
  auto report = sweep::run_aba_termination_sweep(sw);
  EXPECT_EQ(report.safety_violations, 0) << report.to_json();
  EXPECT_EQ(report.capped_runs, 0) << report.to_json();
  EXPECT_EQ(report.undecided_runs, 0) << report.to_json();
  sweep::maybe_write_report(report, "stress-schedule-search");
}

}  // namespace
}  // namespace svss
