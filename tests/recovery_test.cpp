// Unit tests for the crash-recovery layer (core/recovery.hpp) and the
// epoch fence (core/epoch.hpp): checkpoint atomicity + round-trip, journal
// torn-tail tolerance, the catch-up codec, EpochConfig rank math, and
// EpochTransport's stamp/fence/buffer behaviour over a fake inner
// transport.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/epoch.hpp"
#include "core/recovery.hpp"

namespace svss {
namespace {

std::string tmp_path(const std::string& name) {
  std::string p = ::testing::TempDir() + name;
  std::remove(p.c_str());
  return p;
}

std::vector<DecisionRecord> sample_records() {
  return {{0, 0, 1, 2}, {0, 1, 0, 3}, {1, 7, 1, 1}};
}

EpochConfig sample_config(std::uint32_t epoch) {
  EpochConfig cfg;
  cfg.epoch = epoch;
  cfg.members = {0, 1, 2, 4};
  cfg.t = 1;
  return cfg;
}

TEST(EpochConfig, RankMathAndCodec) {
  EpochConfig cfg = sample_config(3);
  EXPECT_EQ(cfg.n(), 4);
  EXPECT_TRUE(cfg.contains(4));
  EXPECT_FALSE(cfg.contains(3));
  EXPECT_EQ(cfg.rank_of(0), 0);
  EXPECT_EQ(cfg.rank_of(4), 3);
  EXPECT_EQ(cfg.rank_of(3), -1);
  EXPECT_EQ(cfg.global_of(3), 4);

  Writer w;
  cfg.serialize(w);
  Bytes raw = std::move(w).take();
  Reader r(raw);
  auto back = EpochConfig::deserialize(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, cfg);
  EXPECT_TRUE(r.exhausted());

  // Unsorted member lists do not deserialize (rank math relies on order).
  Writer bad;
  bad.u32(1);
  bad.i32(1);
  bad.int_vec({2, 1});
  Bytes bad_raw = std::move(bad).take();
  Reader br(bad_raw);
  EXPECT_FALSE(EpochConfig::deserialize(br).has_value());
}

TEST(EpochSeed, DeterministicAndEpochSeparated) {
  EXPECT_EQ(epoch_seed(42, 0), epoch_seed(42, 0));
  EXPECT_NE(epoch_seed(42, 0), epoch_seed(42, 1));
  EXPECT_NE(epoch_seed(42, 0), epoch_seed(43, 0));
}

TEST(Checkpoint, RoundTripAndAtomicity) {
  std::string path = tmp_path("svss_ckpt");
  EXPECT_FALSE(load_checkpoint(path).has_value());

  CheckpointData data;
  data.epoch = 1;
  data.config = sample_config(1);
  data.seed = 99;
  data.decisions = sample_records();
  ASSERT_TRUE(save_checkpoint(path, data));

  auto back = load_checkpoint(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->epoch, 1u);
  EXPECT_EQ(back->config, data.config);
  EXPECT_EQ(back->seed, 99u);
  EXPECT_EQ(back->decisions, data.decisions);

  // tmp+rename: no temporary survives a successful save.
  std::FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);

  // A truncated checkpoint is rejected, never half-loaded.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  std::FILE* out = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(out, nullptr);
  ASSERT_EQ(::ftruncate(fileno(out), size - 3), 0);
  std::fclose(out);
  EXPECT_FALSE(load_checkpoint(path).has_value());
}

TEST(Journal, AppendReplayAndTornTail) {
  std::string path = tmp_path("svss_journal");
  {
    DecisionJournal j;
    ASSERT_TRUE(j.open(path));
    for (const DecisionRecord& r : sample_records()) {
      ASSERT_TRUE(j.append(r));
    }
  }
  EXPECT_EQ(DecisionJournal::replay(path), sample_records());

  // Crash mid-append: a torn final entry is ignored, the prefix survives.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::uint8_t torn[7] = {16, 0, 0, 0, 0xAB, 0xCD, 0xEF};  // len 16, 3 bytes
  ASSERT_EQ(std::fwrite(torn, 1, sizeof torn, f), sizeof torn);
  std::fclose(f);
  EXPECT_EQ(DecisionJournal::replay(path), sample_records());

  // reset() truncates (post-checkpoint the journal restarts empty).
  DecisionJournal j;
  ASSERT_TRUE(j.open(path));
  ASSERT_TRUE(j.reset());
  EXPECT_TRUE(DecisionJournal::replay(path).empty());
  DecisionRecord one{2, 5, 1, 4};
  ASSERT_TRUE(j.append(one));
  EXPECT_EQ(DecisionJournal::replay(path), std::vector<DecisionRecord>{one});
}

TEST(CatchupCodec, RoundTripAndRejects) {
  Bytes blob = encode_catchup_state(2, sample_config(2), sample_records());
  auto st = decode_catchup_state(blob);
  ASSERT_TRUE(st.has_value());
  EXPECT_EQ(st->current_epoch, 2u);
  EXPECT_EQ(st->config, sample_config(2));
  EXPECT_EQ(st->decisions, sample_records());

  Bytes cut(blob.begin(), blob.end() - 2);
  EXPECT_FALSE(decode_catchup_state(cut).has_value());
  Bytes padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(decode_catchup_state(padded).has_value());
}

// ----------------------------------------------------------------------
// EpochTransport over a fake inner transport
// ----------------------------------------------------------------------

// Records sends; delivers on demand.  Lives in global slot space.
class FakeTransport final : public ITransport {
 public:
  FakeTransport(int self, int n) : self_(self), n_(n) {}

  void send(int to, Packet p) override { sent.emplace_back(to, std::move(p)); }
  void broadcast(const Packet& p) override {
    for (int i = 0; i < n_; ++i) sent.emplace_back(i, p);
  }
  void set_delivery(Delivery sink) override { sink_ = std::move(sink); }
  void set_send_hook(SendHook hook) override { hook_ = std::move(hook); }
  [[nodiscard]] int self() const override { return self_; }
  [[nodiscard]] int n() const override { return n_; }

  void deliver(int from, Packet p) { sink_(from, std::move(p)); }

  std::vector<std::pair<int, Packet>> sent;

 private:
  int self_;
  int n_;
  Delivery sink_;
  SendHook hook_;
};

Packet app_packet(std::uint32_t epoch, std::uint32_t counter) {
  Message m;
  m.sid = SessionId{SessionPath::kTest, 0, -1, -1, -1, counter};
  m.sid.epoch = epoch;
  m.type = MsgType::kTestPayload;
  return make_direct(std::move(m));
}

TEST(EpochTransport, StampsOutboundAndTranslatesRanks) {
  FakeTransport inner(4, 5);  // global slot 4 of a 5-slot universe
  EpochConfig cfg = sample_config(3);  // members {0,1,2,4}; slot 4 = rank 3
  EpochTransport port(inner, cfg);
  ASSERT_TRUE(port.is_member());
  EXPECT_EQ(port.self(), 3);
  EXPECT_EQ(port.n(), 4);

  port.send(1, app_packet(0, 7));  // rank 1 == global 1
  ASSERT_EQ(inner.sent.size(), 1u);
  EXPECT_EQ(inner.sent[0].first, 1);
  EXPECT_EQ(inner.sent[0].second.app.sid.epoch, 3u);

  inner.sent.clear();
  port.broadcast(app_packet(0, 8));
  ASSERT_EQ(inner.sent.size(), 4u);  // members only, global ids
  EXPECT_EQ(inner.sent[3].first, 4);
  for (const auto& [to, p] : inner.sent) EXPECT_EQ(p.app.sid.epoch, 3u);
}

TEST(EpochTransport, FencesStaleAndForeignDeliversCurrent) {
  FakeTransport inner(0, 5);
  EpochTransport port(inner, sample_config(3));
  std::vector<std::pair<int, Packet>> got;
  port.set_delivery([&](int from, Packet p) {
    got.emplace_back(from, std::move(p));
  });

  inner.deliver(1, app_packet(3, 1));  // current epoch, member sender
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].first, 1);  // rank of global 1
  EXPECT_EQ(got[0].second.app.sid.epoch, 0u) << "stamp must be zeroed";
  EXPECT_EQ(got[0].second.app.sid.counter, 1u);

  inner.deliver(1, app_packet(2, 2));  // stale epoch
  inner.deliver(3, app_packet(3, 3));  // non-member sender
  EXPECT_EQ(got.size(), 1u);
  EXPECT_EQ(port.fenced_stale(), 1u);
  EXPECT_EQ(port.fenced_foreign(), 1u);
}

TEST(EpochTransport, BuffersFutureEpochAndReplaysOnInstall) {
  FakeTransport inner(0, 5);
  EpochTransport port(inner, sample_config(3));
  std::vector<Packet> got;
  port.set_delivery([&](int, Packet p) { got.push_back(std::move(p)); });

  inner.deliver(1, app_packet(4, 11));  // a peer already past the boundary
  inner.deliver(2, app_packet(4, 12));
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(port.buffered_future(), 2u);

  EpochConfig next = sample_config(4);
  port.install(next);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].app.sid.counter, 11u);
  EXPECT_EQ(got[1].app.sid.counter, 12u);
  EXPECT_EQ(port.buffered_future(), 0u);
}

TEST(EpochTransport, ParksCurrentEpochTrafficWhileNoSinkAttached) {
  FakeTransport inner(0, 5);
  EpochTransport port(inner, sample_config(3));

  inner.deliver(1, app_packet(3, 21));  // boundary window: no Node yet
  EXPECT_EQ(port.buffered_future(), 1u);

  std::vector<Packet> got;
  port.set_delivery([&](int, Packet p) { got.push_back(std::move(p)); });
  port.flush_buffered();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].app.sid.counter, 21u);
}

TEST(EpochTransport, RoutesCatchupToControlAcrossEpochs) {
  FakeTransport inner(0, 5);
  EpochTransport port(inner, sample_config(3));
  std::vector<Packet> app_got;
  port.set_delivery([&](int, Packet p) { app_got.push_back(std::move(p)); });
  std::vector<std::pair<int, Message>> ctl;
  port.set_control([&](int from, const Message& m) {
    ctl.emplace_back(from, m);
  });

  Packet req = app_packet(0, 1);  // epoch 0 sid: would be fenced as stale
  req.app.type = MsgType::kEpochCatchupReq;
  inner.deliver(3, req);  // even from a non-member (the rejoiner)
  EXPECT_TRUE(app_got.empty());
  ASSERT_EQ(ctl.size(), 1u);
  EXPECT_EQ(ctl[0].first, 3) << "control plane keeps global sender ids";
  EXPECT_EQ(ctl[0].second.type, MsgType::kEpochCatchupReq);
  EXPECT_EQ(port.fenced_stale(), 0u);
}

TEST(EpochTransport, SpectatorDeliversNothingButBuffersFuture) {
  FakeTransport inner(3, 5);  // slot 3 is not a member of sample_config
  EpochTransport port(inner, sample_config(3));
  EXPECT_FALSE(port.is_member());
  EXPECT_EQ(port.self(), -1);

  std::vector<Packet> got;
  port.set_delivery([&](int, Packet p) { got.push_back(std::move(p)); });
  inner.deliver(1, app_packet(3, 1));
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(port.fenced_foreign(), 1u);

  inner.deliver(1, app_packet(4, 2));  // future epoch buffers even here
  EXPECT_EQ(port.buffered_future(), 1u);

  // Joining at the boundary: install a config that includes slot 3.
  EpochConfig next;
  next.epoch = 4;
  next.members = {1, 2, 3, 4};
  next.t = 1;
  port.install(next);
  EXPECT_TRUE(port.is_member());
  EXPECT_EQ(port.self(), 2);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].app.sid.counter, 2u);
}

}  // namespace
}  // namespace svss
