// Almost-sure-termination sweep harness.
//
// The paper's headline property is that every honest process terminates
// with probability 1 against a full-information adversary.  A single run
// cannot witness that; a sweep over seeds x adversary strategies x
// schedulers can at least falsify it: any run that exhausts its delivery
// budget (Metrics::capped) is a potential non-termination witness, and any
// run where honest decisions disagree or violate validity is a safety
// counterexample.  The harness quantifies over the strategy catalogue in
// src/adversary/ and every SchedulerKind, and reports capped-run and
// violation rates as first-class counters.
//
// Used by tests/termination_sweep_test.cpp (tier-1 scale) and by the CI
// stress job, which exports the report as a build artifact (set
// SVSS_SWEEP_REPORT=<path> to write the JSON report).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "adversary/adversary.hpp"
#include "core/runner.hpp"

namespace svss::sweep {

inline constexpr SchedulerKind kAllSchedulers[] = {
    SchedulerKind::kFifo,
    SchedulerKind::kRandom,
    SchedulerKind::kLifo,
    SchedulerKind::kDelayLastHonest,
};

inline const char* scheduler_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kRandom: return "random";
    case SchedulerKind::kLifo: return "lifo";
    case SchedulerKind::kDelayLastHonest: return "delay-last-honest";
  }
  return "unknown";
}

struct SweepSpec {
  std::vector<int> ns;  // t = (n-1)/3, and t slots host the strategy
  std::vector<adversary::StrategyKind> strategies;
  std::vector<SchedulerKind> schedulers;
  std::vector<std::uint64_t> seeds;
  // The full SVSS-coin stack runs where it is affordable; larger n fall
  // back to the ideal-coin abstraction (same convention as bench_aba's E6:
  // the SCC itself is exercised at small n, the agreement skeleton at
  // scale).
  int full_stack_max_n = 4;
  std::uint64_t max_deliveries = 20'000'000;
  // Optional per-cell config mutation (mixed-fleet framing overrides and
  // the like), applied after the base fields and before the strategy is
  // installed.
  std::function<void(RunnerConfig&)> configure;
  // Optional custom schedule: when set, every cell runs under this factory
  // instead of the SchedulerKind axis (set `schedulers` to a single
  // placeholder kind), and report rows carry `scheduler_label` so
  // search-found genome schedules (src/search/) are distinguishable from
  // the fixed catalogue in sweep artifacts.
  SchedulerFactory scheduler_factory;
  std::string scheduler_label;
};

// Honest-input pattern of one cell.  Mixed inputs exercise the coin path
// (any decision is valid, so only agreement/termination can fail there);
// unanimous inputs make the *validity* counter falsifiable: the decision
// must equal the one honest input value, so a protocol that decided a
// constant would be caught.
enum class InputPattern { kMixed, kAllZero, kAllOne };

inline const char* pattern_name(InputPattern p) {
  switch (p) {
    case InputPattern::kMixed: return "mixed";
    case InputPattern::kAllZero: return "all-0";
    case InputPattern::kAllOne: return "all-1";
  }
  return "unknown";
}

// Derived from the seed so every seed list covers several patterns
// without growing the grid: seeds ≡ 0,1 (mod 4) run mixed inputs (the
// adversarially interesting case, weighted double), ≡ 2 all-zero, ≡ 3
// all-one.
inline InputPattern pattern_for_seed(std::uint64_t seed) {
  switch (seed % 4) {
    case 2: return InputPattern::kAllZero;
    case 3: return InputPattern::kAllOne;
    default: return InputPattern::kMixed;
  }
}

struct CellResult {
  int n = 0;
  int t = 0;
  adversary::StrategyKind strategy{};
  SchedulerKind scheduler{};
  std::string scheduler_label;  // non-empty for custom-factory schedules
  std::uint64_t seed = 0;
  InputPattern pattern{};
  CoinMode mode{};
  bool capped = false;
  bool all_decided = false;
  bool agreed = false;
  bool valid = false;      // decision justified by some honest input
  bool attacked = false;   // the strategy observably deviated (non-vacuity)
  std::uint32_t rounds = 0;
  std::uint64_t deliveries = 0;
};

struct SweepReport {
  std::vector<CellResult> cells;
  int capped_runs = 0;
  int safety_violations = 0;  // agreement or validity broken
  int undecided_runs = 0;     // quiescent but some honest process undecided
  int vacuous_runs = 0;       // adversary never emitted a deviation

  [[nodiscard]] int total() const { return static_cast<int>(cells.size()); }

  // Cells in which `kind` observably deviated.  A *sweep-level* coverage
  // check: each strategy must attack somewhere in the grid.  (Individual
  // cells may legitimately be vacuous — e.g. a FIFO schedule can decide in
  // round 1 before the coin's reconstruct phase ever gives a recon
  // corrupter or M-set withholder its attack surface.)
  [[nodiscard]] int attacked_count(adversary::StrategyKind kind) const {
    int count = 0;
    for (const CellResult& c : cells) {
      if (c.strategy == kind && c.attacked) ++count;
    }
    return count;
  }

  void add(const CellResult& c) {
    cells.push_back(c);
    if (c.capped) ++capped_runs;
    if (c.all_decided && !(c.agreed && c.valid)) ++safety_violations;
    if (!c.capped && !c.all_decided) ++undecided_runs;
    if (!c.attacked) ++vacuous_runs;
  }

  [[nodiscard]] std::string to_json() const {
    std::string out = "{\n  \"total\": " + std::to_string(total()) +
                      ",\n  \"capped_runs\": " + std::to_string(capped_runs) +
                      ",\n  \"safety_violations\": " +
                      std::to_string(safety_violations) +
                      ",\n  \"undecided_runs\": " +
                      std::to_string(undecided_runs) +
                      ",\n  \"vacuous_runs\": " +
                      std::to_string(vacuous_runs) + ",\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const CellResult& c = cells[i];
      out += std::string("    {\"n\": ") + std::to_string(c.n) +
             ", \"strategy\": \"" + adversary::strategy_name(c.strategy) +
             "\", \"scheduler\": \"" +
             (c.scheduler_label.empty() ? scheduler_name(c.scheduler)
                                        : c.scheduler_label.c_str()) +
             "\", \"seed\": " + std::to_string(c.seed) +
             ", \"inputs\": \"" + pattern_name(c.pattern) +
             "\", \"coin\": \"" +
             (c.mode == CoinMode::kSvss ? "svss" : "ideal") +
             "\", \"capped\": " + (c.capped ? "true" : "false") +
             ", \"decided\": " + (c.all_decided ? "true" : "false") +
             ", \"agreed\": " + (c.agreed ? "true" : "false") +
             ", \"valid\": " + (c.valid ? "true" : "false") +
             ", \"attacked\": " + (c.attacked ? "true" : "false") +
             ", \"rounds\": " + std::to_string(c.rounds) +
             ", \"deliveries\": " + std::to_string(c.deliveries) + "}";
      out += i + 1 < cells.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
  }
};

// One ABA termination cell: t strategy-driven faulty slots (the top ids),
// mixed honest inputs, run to honest decision or the delivery cap.
inline CellResult run_aba_cell(int n, adversary::StrategyKind strategy,
                               SchedulerKind scheduler, std::uint64_t seed,
                               const SweepSpec& spec) {
  CellResult cell;
  cell.n = n;
  cell.t = (n - 1) / 3;
  if (cell.t < 1) {
    // A strategy-driven fault at t = 0 would exceed the fault budget and
    // report protocol "violations" that are really over-budget adversary
    // artifacts; the sweep is only meaningful from n >= 4.
    throw std::invalid_argument("run_aba_cell: need n >= 4 (t >= 1)");
  }
  cell.strategy = strategy;
  cell.scheduler = scheduler;
  cell.seed = seed;
  cell.pattern = pattern_for_seed(seed);
  cell.mode = n <= spec.full_stack_max_n ? CoinMode::kSvss
                                         : CoinMode::kIdealCommon;

  RunnerConfig cfg;
  cfg.n = n;
  cfg.t = cell.t;
  cfg.seed = seed;
  cfg.scheduler = scheduler;
  cfg.max_deliveries = spec.max_deliveries;
  // Per-session vote framing: the sweep's non-vacuity check needs every
  // strategy to reach its attack surface (the coin's MW recon phase), but
  // batched votes let agreement outpace the coin machinery, so a run can
  // stop — all honest decided — before any recon broadcast leaves the
  // adversary slot.  Vote-batching correctness has its own equivalence
  // coverage; this sweep is about adversary/DMM behavior.
  cfg.transport.aba_votes = Framing::kPerSession;
  if (spec.scheduler_factory) {
    cfg.scheduler_factory = spec.scheduler_factory;
    cell.scheduler_label = spec.scheduler_label;
  }
  if (spec.configure) spec.configure(cfg);
  int faulty = cell.t;
  adversary::AdversaryConfig base;
  if (strategy == adversary::StrategyKind::kColludingCabal &&
      cell.mode == CoinMode::kIdealCommon) {
    // Without the VSS stack there are no field values to corrupt, so give
    // the cabal its other coordinated weapon: a shared silence clock (all
    // members crash in the same observed instant mid-agreement).
    base.silence_after = 300;
  }
  adversary::install_adversaries(cfg, strategy, faulty, base);

  Runner r(cfg);
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) {
    switch (cell.pattern) {
      case InputPattern::kMixed: inputs.push_back(i % 2); break;
      case InputPattern::kAllZero: inputs.push_back(0); break;
      case InputPattern::kAllOne: inputs.push_back(1); break;
    }
  }
  auto res = r.run_aba(inputs, cell.mode);

  cell.capped = res.metrics.capped;
  cell.all_decided = res.all_decided;
  cell.agreed = res.agreed;
  cell.rounds = res.max_round;
  cell.deliveries = res.metrics.packets_delivered;
  // Validity: the decision must be the input of some honest process.
  cell.valid = true;
  if (res.all_decided) {
    bool justified = false;
    for (int i : r.honest_ids()) {
      if (inputs[static_cast<std::size_t>(i)] == res.value) justified = true;
    }
    cell.valid = justified;
  }
  // Non-vacuity: the strategy must have done *something* beyond honest
  // behaviour (forked, mutated or withheld traffic, or run to the point of
  // adapting).  A sweep full of passive adversaries proves nothing.
  for (int i = n - faulty; i < n; ++i) {
    const StrategyStats& st = r.adversary(i)->stats();
    if (st.forked + st.mutated + st.withheld > 0 || st.adapted) {
      cell.attacked = true;
    }
  }
  return cell;
}

inline SweepReport run_aba_termination_sweep(const SweepSpec& spec) {
  SweepReport report;
  for (int n : spec.ns) {
    for (auto strategy : spec.strategies) {
      for (auto scheduler : spec.schedulers) {
        for (std::uint64_t seed : spec.seeds) {
          report.add(run_aba_cell(n, strategy, scheduler, seed, spec));
        }
      }
    }
  }
  return report;
}

// Appends `report` (labeled) to the path in SVSS_SWEEP_REPORT, if set.
// The CI stress job uploads that file as the capped-run-rate artifact.
inline void maybe_write_report(const SweepReport& report,
                               const char* label) {
  const char* path = std::getenv("SVSS_SWEEP_REPORT");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  out << "{\"sweep\": \"" << label << "\", \"report\": " << report.to_json()
      << "}\n";
}

}  // namespace svss::sweep
