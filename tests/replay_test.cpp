// Regression: deterministic replay.  A run is a pure function of its
// RunnerConfig, so two Runners built from identical configs must produce
// byte-identical EventLog traces — for every scheduler kind, with faults
// in play.  This is the invariant every "replay the failing seed" workflow
// depends on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/runner.hpp"
#include "search/corpus.hpp"

#ifndef SVSS_CORPUS_DIR
#define SVSS_CORPUS_DIR "tests/corpus"
#endif

namespace svss {
namespace {

// Flattens an event log into a canonical little-endian byte string covering
// every field of every event, so EXPECT_EQ compares traces byte-for-byte.
std::vector<std::uint8_t> trace_bytes(const EventLog& log) {
  std::vector<std::uint8_t> out;
  auto put = [&out](std::uint64_t v, int bytes) {
    for (int b = 0; b < bytes; ++b) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
    }
  };
  for (const Event& e : log.events()) {
    put(static_cast<std::uint64_t>(e.kind), 1);
    put(static_cast<std::uint32_t>(e.who), 4);
    put(static_cast<std::uint32_t>(e.other), 4);
    put(static_cast<std::uint64_t>(e.sid.path), 1);
    put(e.sid.variant, 1);
    put(static_cast<std::uint16_t>(e.sid.owner), 2);
    put(static_cast<std::uint16_t>(e.sid.moderator), 2);
    put(static_cast<std::uint16_t>(e.sid.svss_dealer), 2);
    put(e.sid.counter, 4);
    put(static_cast<std::uint64_t>(e.value), 8);
    put(e.has_value ? 1 : 0, 1);
  }
  return out;
}

RunnerConfig cfg(SchedulerKind sched) {
  RunnerConfig c;
  c.n = 4;
  c.t = 1;
  c.seed = 20260729;
  c.scheduler = sched;
  c.faults[3] = ByzConfig{ByzKind::kBitFlip, 0, 0.15};
  return c;
}

class ReplaySweep : public ::testing::TestWithParam<SchedulerKind> {};

// Full-stack agreement (SVSS-backed coin) replayed from the same config:
// identical trace bytes, identical results, identical wire metrics.
TEST_P(ReplaySweep, AbaTraceIsByteIdentical) {
  auto run = [&] {
    Runner r(cfg(GetParam()));
    auto res = r.run_aba({0, 1, 1, 0}, CoinMode::kSvss);
    return std::make_tuple(trace_bytes(r.engine().log()), res.all_decided,
                           res.value, r.engine().metrics().packets_delivered,
                           r.engine().metrics().bytes_sent);
  };
  auto a = run();
  auto b = run();
  EXPECT_FALSE(std::get<0>(a).empty());
  EXPECT_EQ(a, b);
}

// Same invariant for a single SVSS session (share + reconstruct).
TEST_P(ReplaySweep, SvssTraceIsByteIdentical) {
  auto run = [&] {
    Runner r(cfg(GetParam()));
    auto res = r.run_svss(Fp(321));
    return std::make_tuple(trace_bytes(r.engine().log()),
                           res.all_honest_shared, res.all_honest_output,
                           r.engine().metrics().packets_delivered);
  };
  auto a = run();
  auto b = run();
  EXPECT_FALSE(std::get<0>(a).empty());
  EXPECT_EQ(a, b);
}

// Different seeds must not produce the same schedule (guards against the
// seed being silently ignored somewhere in the scheduler plumbing).
TEST(Replay, DifferentSeedsDiverge) {
  auto run = [](std::uint64_t seed) {
    auto c = cfg(SchedulerKind::kRandom);
    c.seed = seed;
    Runner r(c);
    (void)r.run_aba({0, 1, 1, 0}, CoinMode::kSvss);
    return trace_bytes(r.engine().log());
  };
  EXPECT_NE(run(1), run(2));
}

// Custom genome schedules (src/search/) must replay like the fixed kinds:
// the same config + genome produces byte-identical traces.  The genome
// exercises every interpreter feature — jitter stream, id match, class
// match (resolved through the Runner-attached ScheduleView), a delivery
// window, and a front pin.
TEST(Replay, GenomeScheduleTraceIsByteIdentical) {
  search::ScheduleGenome genome;
  genome.seed = 0xFEED5EED;
  genome.jitter = 512;
  search::Gene delay_deceived;
  delay_deceived.to_class = search::SlotClass::kDeceived;
  delay_deceived.delay = 1 << 14;
  genome.genes.push_back(delay_deceived);
  search::Gene windowed_front;
  windowed_front.from = 3;
  windowed_front.after = 100;
  windowed_front.until = 5'000;
  windowed_front.front = true;
  genome.genes.push_back(windowed_front);

  auto run = [&] {
    RunnerConfig c;
    c.n = 4;
    c.t = 1;
    c.seed = 20260808;
    c.scheduler_factory = search::make_genome_factory(genome);
    adversary::install_adversaries(
        c, adversary::StrategyKind::kColludingCabal, 1);
    Runner r(c);
    auto res = r.run_aba({0, 1, 1, 0}, CoinMode::kSvss);
    return std::make_tuple(trace_bytes(r.engine().log()), res.all_decided,
                           res.value,
                           r.engine().metrics().packets_delivered);
  };
  auto a = run();
  auto b = run();
  EXPECT_FALSE(std::get<0>(a).empty());
  EXPECT_EQ(a, b);
}

// Every committed corpus entry re-runs byte-identically within one build:
// two fresh replays of the stored recipe agree on rounds and on the
// chained trace fingerprint.  (corpus_replay_test.cpp separately pins the
// replay against the *stored* hash — the across-rebuild gate.)
TEST(Replay, CorpusEntriesReplayByteIdentically) {
  auto entries = search::load_corpus_dir(SVSS_CORPUS_DIR);
  ASSERT_FALSE(entries.empty())
      << "committed corpus at " << SVSS_CORPUS_DIR << " is empty";
  for (const auto& entry : entries) {
    auto a = search::replay_corpus_entry(entry);
    auto b = search::replay_corpus_entry(entry);
    EXPECT_EQ(a.trace_hash, b.trace_hash) << entry.name;
    EXPECT_EQ(a.worst_rounds, b.worst_rounds) << entry.name;
    EXPECT_EQ(a.total_rounds, b.total_rounds) << entry.name;
    EXPECT_TRUE(a.decided) << entry.name;
    EXPECT_FALSE(a.capped) << entry.name;
    EXPECT_TRUE(a.safe) << entry.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, ReplaySweep,
    ::testing::Values(SchedulerKind::kFifo, SchedulerKind::kRandom,
                      SchedulerKind::kLifo, SchedulerKind::kDelayLastHonest),
    [](const ::testing::TestParamInfo<SchedulerKind>& info) {
      switch (info.param) {
        case SchedulerKind::kFifo: return std::string("Fifo");
        case SchedulerKind::kRandom: return std::string("Random");
        case SchedulerKind::kLifo: return std::string("Lifo");
        case SchedulerKind::kDelayLastHonest:
          return std::string("DelayLastHonest");
      }
      return std::string("Unknown");
    });

}  // namespace
}  // namespace svss
