// Protocol tests: the shunning common coin (Section 5, Definition 2).
//
// SCC properties: termination (all honest output a bit) and correctness —
// per invocation, either each sigma in {0,1} comes up unanimously with
// probability >= 1/4, or some honest process starts shunning some faulty
// process.  Probability bounds are checked empirically over seed sweeps.
#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace svss {
namespace {

RunnerConfig cfg(int n, int t, std::uint64_t seed,
                 SchedulerKind sched = SchedulerKind::kRandom) {
  RunnerConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  c.scheduler = sched;
  return c;
}

TEST(Coin, TerminatesAllHonest) {
  Runner r(cfg(4, 1, 31));
  auto res = r.run_coin();
  EXPECT_TRUE(res.all_output);
  EXPECT_EQ(res.status, RunStatus::kQuiescent);
  EXPECT_TRUE(res.shun_pairs.empty());
}

TEST(Coin, TerminatesUnderHostileSchedulers) {
  for (auto sched : {SchedulerKind::kFifo, SchedulerKind::kLifo,
                     SchedulerKind::kDelayLastHonest}) {
    Runner r(cfg(4, 1, 32, sched));
    auto res = r.run_coin();
    EXPECT_TRUE(res.all_output);
  }
}

TEST(Coin, TerminatesWithSilentFault) {
  auto c = cfg(4, 1, 33);
  c.faults[3] = ByzConfig{ByzKind::kSilent};
  Runner r(c);
  auto res = r.run_coin();
  EXPECT_TRUE(res.all_output);
}

// Empirical Definition 2: for each sigma, the probability that *all*
// honest processes output sigma is at least 1/4.  (Mixed runs are allowed
// by the definition — this is a weak common coin.)  Over 40 honest runs,
// fewer than 4 unanimous-0 or unanimous-1 outcomes would be a < 1e-4
// probability event under the guaranteed floor.
TEST(Coin, UnanimousOutcomesFrequentWhenHonest) {
  int unanimous[2] = {0, 0};
  int mixed = 0;
  constexpr int kRuns = 40;
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    Runner r(cfg(4, 1, 1000 + seed));
    auto res = r.run_coin();
    ASSERT_TRUE(res.all_output) << seed;
    EXPECT_TRUE(res.shun_pairs.empty()) << seed;
    if (res.agreed) {
      unanimous[res.bits.begin()->second]++;
    } else {
      ++mixed;
    }
  }
  EXPECT_GE(unanimous[0], 4) << "unanimous-0 runs: " << unanimous[0];
  EXPECT_GE(unanimous[1], 4) << "unanimous-1 runs: " << unanimous[1];
  (void)mixed;
}

// With adversarial dealers the coin must still terminate, any shunning
// must be sound (honest shunner, faulty suspect), and unanimity must not
// vanish across a seed sweep.
TEST(Coin, AdversarialDealerTerminatesAndShunsSoundly) {
  int unanimous = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[2] = ByzConfig{ByzKind::kWrongRecon};
    Runner r(c);
    auto res = r.run_coin();
    ASSERT_TRUE(res.all_output) << seed;
    if (res.agreed) ++unanimous;
    for (const auto& [i, j] : res.shun_pairs) {
      EXPECT_NE(i, 2);
      EXPECT_EQ(j, 2);
    }
  }
  EXPECT_GT(unanimous, 0);
}

TEST(Coin, EquivocatingDealerTerminatesOrStallsCleanly) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[1] = ByzConfig{ByzKind::kEquivocate};
    Runner r(c);
    auto res = r.run_coin();
    EXPECT_EQ(res.status, RunStatus::kQuiescent) << seed;  // never livelocks
    for (const auto& [i, j] : res.shun_pairs) {
      EXPECT_NE(i, 1);
      EXPECT_EQ(j, 1);
    }
  }
}

// Distinct rounds are independent sessions: both can run to completion in
// one engine without interference.
TEST(Coin, TwoRoundsBackToBack) {
  Runner r(cfg(4, 1, 35));
  auto res1 = r.run_coin(1);
  EXPECT_TRUE(res1.all_output);
  // Start round 2 manually on the same engine.
  for (int i = 0; i < 4; ++i) {
    Context c = r.ctx(i);
    r.node(i).coin(c, 2).start(c);
  }
  r.engine().run_until([&] {
    for (int i : r.honest_ids()) {
      const CoinSession* cs = r.node(i).find_coin(2);
      if (cs == nullptr || !cs->has_output()) return false;
    }
    return true;
  });
  for (int i : r.honest_ids()) {
    const CoinSession* cs = r.node(i).find_coin(2);
    ASSERT_NE(cs, nullptr);
    EXPECT_TRUE(cs->has_output());
  }
}

// The coin's message cost is polynomial: n^2 SVSS sessions dominate.
TEST(Coin, MessageComplexityPolynomial) {
  Runner r(cfg(4, 1, 36));
  auto res = r.run_coin();
  ASSERT_TRUE(res.all_output);
  // 16 SVSS sessions at ~25k packets each for n=4 lands near 4e5; assert
  // a generous upper bound that still rules out super-polynomial blowup.
  EXPECT_LT(res.metrics.packets_sent, 3'000'000u);
}

}  // namespace
}  // namespace svss
