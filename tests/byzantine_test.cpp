// Unit tests: the Byzantine wire-interceptor library ("honest code,
// corrupted wire") — each strategy's observable effect on packets.
#include "core/byzantine.hpp"

#include <gtest/gtest.h>

#include "sim/message.hpp"

namespace svss {
namespace {

Packet direct_packet(MsgType type, FieldVec vals) {
  Message m;
  m.sid.path = SessionPath::kMwTop;
  m.sid.owner = 0;
  m.sid.moderator = 1;
  m.type = type;
  m.vals = std::move(vals);
  return make_direct(m);
}

Packet own_rb_send(int self, MsgType type, FieldVec vals) {
  Message m;
  m.sid.path = SessionPath::kMwTop;
  m.sid.owner = 0;
  m.sid.moderator = 1;
  m.type = type;
  m.vals = std::move(vals);
  BcastId bid;
  bid.origin = static_cast<std::int16_t>(self);
  bid.sid = m.sid;
  bid.slot = m.type;
  return make_rb(bid, RbPhase::kSend, m.serialize());
}

TEST(Byzantine, HonestKindHasNoInterceptor) {
  EXPECT_EQ(make_byzantine_interceptor(ByzConfig{ByzKind::kHonest}, 4, 1, 1),
            nullptr);
}

TEST(Byzantine, SilentDropsEverything) {
  auto f = make_byzantine_interceptor(ByzConfig{ByzKind::kSilent}, 4, 1, 1);
  Packet p = direct_packet(MsgType::kMwAck, {});
  EXPECT_FALSE(f(3, 0, p));
  EXPECT_FALSE(f(3, 3, p));
}

TEST(Byzantine, CrashMidwayDropsAfterBudget) {
  ByzConfig cfg{ByzKind::kCrashMidway};
  cfg.crash_after = 3;
  auto f = make_byzantine_interceptor(cfg, 4, 1, 1);
  Packet p = direct_packet(MsgType::kMwAck, {});
  EXPECT_TRUE(f(3, 0, p));
  EXPECT_TRUE(f(3, 1, p));
  EXPECT_TRUE(f(3, 2, p));
  EXPECT_FALSE(f(3, 0, p));
  EXPECT_FALSE(f(3, 1, p));
}

TEST(Byzantine, EquivocateSplitsByRecipient) {
  auto f =
      make_byzantine_interceptor(ByzConfig{ByzKind::kEquivocate}, 4, 1, 1);
  Packet low = direct_packet(MsgType::kMwEchoVal, {Fp(100)});
  Packet high = direct_packet(MsgType::kMwEchoVal, {Fp(100)});
  EXPECT_TRUE(f(0, 1, low));   // lower half: untouched
  EXPECT_TRUE(f(0, 2, high));  // upper half: perturbed
  EXPECT_EQ(low.app.vals[0], Fp(100));
  EXPECT_EQ(high.app.vals[0], Fp(101));
}

TEST(Byzantine, EquivocateRewritesOwnRbSends) {
  auto f =
      make_byzantine_interceptor(ByzConfig{ByzKind::kEquivocate}, 4, 1, 1);
  Packet p = own_rb_send(0, MsgType::kMwAck, {Fp(5)});
  ASSERT_TRUE(f(0, 3, p));
  auto m = Message::deserialize(p.rb_payload());
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->vals[0], Fp(6));
}

TEST(Byzantine, EquivocateLeavesRelayedRbAlone) {
  auto f =
      make_byzantine_interceptor(ByzConfig{ByzKind::kEquivocate}, 4, 1, 1);
  // Echo for someone else's broadcast: not this process's own send.
  Message m;
  m.type = MsgType::kMwEchoVal;
  m.vals = {Fp(9)};
  BcastId bid;
  bid.origin = 2;  // origin != sender 0
  Packet p = make_rb(bid, RbPhase::kEcho, m.serialize());
  Bytes before = p.rb_payload();
  ASSERT_TRUE(f(0, 3, p));
  EXPECT_EQ(p.rb_payload(), before);
}

TEST(Byzantine, WrongReconOnlyTouchesReconVals) {
  auto f =
      make_byzantine_interceptor(ByzConfig{ByzKind::kWrongRecon}, 4, 1, 1);
  Packet recon = own_rb_send(2, MsgType::kMwReconVal, {Fp(50)});
  Packet ack = own_rb_send(2, MsgType::kMwAck, {Fp(50)});
  ASSERT_TRUE(f(2, 0, recon));
  ASSERT_TRUE(f(2, 0, ack));
  EXPECT_EQ(Message::deserialize(recon.rb_payload())->vals[0], Fp(51));
  EXPECT_EQ(Message::deserialize(ack.rb_payload())->vals[0], Fp(50));
}

TEST(Byzantine, LyingModeratorCorruptsMonitorValsAndMset) {
  auto f = make_byzantine_interceptor(ByzConfig{ByzKind::kLyingModerator}, 4,
                                      1, 1);
  Packet mv = direct_packet(MsgType::kMwMonitorVal, {Fp(7)});
  ASSERT_TRUE(f(1, 0, mv));
  EXPECT_EQ(mv.app.vals[0], Fp(8));

  Message mset;
  mset.sid.path = SessionPath::kMwTop;
  mset.type = MsgType::kMwMset;
  mset.ints = {0, 2, 3};
  BcastId bid;
  bid.origin = 1;
  bid.sid = mset.sid;
  bid.slot = mset.type;
  Packet p = make_rb(bid, RbPhase::kSend, mset.serialize());
  ASSERT_TRUE(f(1, 0, p));
  auto out = Message::deserialize(p.rb_payload());
  ASSERT_TRUE(out.has_value());
  EXPECT_NE(out->ints, (std::vector<int>{0, 2, 3}));
}

TEST(Byzantine, BitFlipIsSeededAndProbabilistic) {
  ByzConfig cfg{ByzKind::kBitFlip};
  cfg.flip_prob = 1.0;  // always flips
  auto f = make_byzantine_interceptor(cfg, 4, 1, 99);
  Packet p = direct_packet(MsgType::kMwEchoVal, {Fp(10)});
  ASSERT_TRUE(f(3, 0, p));
  EXPECT_NE(p.app.vals[0], Fp(10));

  // Same seed => same mutations (determinism).
  auto f1 = make_byzantine_interceptor(cfg, 4, 1, 123);
  auto f2 = make_byzantine_interceptor(cfg, 4, 1, 123);
  Packet a = direct_packet(MsgType::kMwEchoVal, {Fp(10), Fp(20)});
  Packet b = direct_packet(MsgType::kMwEchoVal, {Fp(10), Fp(20)});
  ASSERT_TRUE(f1(3, 0, a));
  ASSERT_TRUE(f2(3, 0, b));
  EXPECT_EQ(a.app.vals, b.app.vals);
}

TEST(Byzantine, ZeroFlipProbabilityLeavesPacketsAlone) {
  ByzConfig cfg{ByzKind::kBitFlip};
  cfg.flip_prob = 0.0;
  auto f = make_byzantine_interceptor(cfg, 4, 1, 5);
  Packet p = direct_packet(MsgType::kMwEchoVal, {Fp(10)});
  ASSERT_TRUE(f(3, 0, p));
  EXPECT_EQ(p.app.vals[0], Fp(10));
}

}  // namespace
}  // namespace svss
