// Tier-1 corpus gate: every committed worst-case schedule entry under
// tests/corpus/ must (a) replay byte-identically against its *stored*
// trace fingerprint — the across-rebuild determinism check; (b) terminate
// within its recorded delivery budget with agreement and validity intact —
// the paper's almost-sure-termination claim holding even on the nastiest
// schedules the search has found; and (c) remain strictly worse (more
// rounds-to-decide) than the strongest of the four fixed SchedulerKinds on
// the same seed set, recomputed here — so each entry permanently witnesses
// that the coverage-guided search beat the fixed catalogue.
//
// If (a) fails after an intentional engine/protocol change, the schedule
// semantics changed: re-run the search (example_schedule_search), re-triage,
// and refresh the affected entries — do not blind-update hashes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "search/corpus.hpp"

#ifndef SVSS_CORPUS_DIR
#define SVSS_CORPUS_DIR "tests/corpus"
#endif

namespace svss {
namespace {

using search::CorpusEntry;

std::vector<CorpusEntry> corpus() {
  return search::load_corpus_dir(SVSS_CORPUS_DIR);
}

TEST(CorpusReplay, CommittedCorpusIsNonEmpty) {
  EXPECT_FALSE(corpus().empty())
      << "no committed entries under " << SVSS_CORPUS_DIR;
}

TEST(CorpusReplay, EntriesReplayExactlyAndTerminateWithinBudget) {
  for (const CorpusEntry& entry : corpus()) {
    auto rep = search::replay_corpus_entry(entry);
    // (b) Termination within budget, safely: the corpus only ever holds
    // terminating schedules — a capped or unsafe replay is a regression in
    // the protocol (or an illegal corpus edit), never acceptable drift.
    EXPECT_TRUE(rep.decided) << entry.name;
    EXPECT_FALSE(rep.capped) << entry.name;
    EXPECT_TRUE(rep.safe) << entry.name;
    // (a) Byte-identity against the stored fingerprint and round counts.
    EXPECT_EQ(rep.trace_hash, entry.trace_hash)
        << entry.name << ": schedule semantics drifted from the committed "
        << "trace; see the refresh workflow in this file's header";
    EXPECT_EQ(rep.worst_rounds, entry.worst_rounds) << entry.name;
    EXPECT_EQ(rep.total_rounds, entry.total_rounds) << entry.name;
  }
}

TEST(CorpusReplay, EntriesStayStrictlyWorseThanFixedSchedulerBaseline) {
  for (const CorpusEntry& entry : corpus()) {
    // Recompute the fixed-catalogue baseline on the entry's own seed set
    // rather than trusting the stored claim.
    std::uint32_t baseline_worst = 0;
    for (SchedulerKind kind :
         {SchedulerKind::kFifo, SchedulerKind::kRandom, SchedulerKind::kLifo,
          SchedulerKind::kDelayLastHonest}) {
      SchedulerFactory factory = [kind](std::uint64_t seed, int n, int t) {
        return make_scheduler(kind, seed, n, t);
      };
      std::uint32_t worst = 0;
      bool clean = true;
      for (std::uint64_t seed : entry.seeds) {
        auto cell = search::run_search_cell(entry.n, entry.strategy,
                                            entry.mode, seed,
                                            entry.max_deliveries, factory,
                                            nullptr);
        clean = clean && cell.all_decided && !cell.capped;
        worst = std::max(worst, cell.rounds);
      }
      if (!clean) continue;  // a capped baseline cannot set the bar
      baseline_worst = std::max(baseline_worst, worst);
    }
    EXPECT_EQ(baseline_worst, entry.baseline_worst_rounds)
        << entry.name << ": stored baseline is stale";
    // (c) The acceptance criterion, as a permanent regression gate: the
    // search-found schedule forces strictly more rounds than any fixed
    // SchedulerKind does on the same seeds.
    EXPECT_GT(entry.worst_rounds, baseline_worst) << entry.name;
  }
}

}  // namespace
}  // namespace svss
