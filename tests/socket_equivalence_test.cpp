// Backend equivalence: sim vs in-process socket loopback.
//
// The transport seam (src/net/transport.hpp) promises that a Node neither
// knows nor cares whether its packets ride the deterministic simulator or
// real TCP.  This instantiates the differential harness's content checks
// across *backends* instead of framings, on honest coin rounds:
//
//  1. verdicts agree — both backends reach quiescence with every honest
//     process holding a coin output and zero shun accusations;
//  2. values agree — a coin-owned SVSS session reconstructed in both runs
//     reconstructed to the *same* value at every process.  RNG streams are
//     seeded identically per slot (the self-th of the sequential root
//     splits) on both backends, so every dealt polynomial is the same;
//     only the delivery schedule may differ;
//  3. metering agrees where the schedule cannot interfere — the dealing
//     burst each process emits synchronously at round start is identical
//     packet-for-packet and byte-for-byte, which pins the socket backend's
//     wire_size() metering to the engine's.
//
// What is deliberately NOT compared: the coin bit (Definition 2 allows
// schedule-dependent outcomes), RB relay counts (the loopback run stops
// once every process holds an output, truncating relay tails at a
// schedule-dependent point), and event order (the loopback schedule is
// wall-clock real).
#include <gtest/gtest.h>

#include "equivalence_common.hpp"

namespace svss {
namespace {

struct BackendRun {
  Runner::CoinResult res;
  equivalence::ReconMap recon;
};

BackendRun run_backend(std::uint64_t seed, TransportKind kind,
                       Framing framing) {
  RunnerConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.seed = seed;
  cfg.transport.kind = kind;
  cfg.transport.coin_dealing = framing;
  cfg.transport.mw_children = framing;
  Runner r(cfg);
  BackendRun out;
  out.res = r.run_coin();
  out.recon = equivalence::coin_recon_outputs(r.engine().log());
  return out;
}

const char* backend_name(TransportKind kind) {
  return kind == TransportKind::kSim ? "sim" : "socket-loopback";
}

void expect_backend_equivalence(std::uint64_t seed, Framing framing) {
  const TransportKind kinds[2] = {TransportKind::kSim,
                                  TransportKind::kSocketLoopback};
  BackendRun run[2];
  for (int v = 0; v < 2; ++v) {
    run[v] = run_backend(seed, kinds[v], framing);
    const auto& res = run[v].res;
    EXPECT_TRUE(res.all_output)
        << backend_name(kinds[v]) << " seed " << seed;
    EXPECT_EQ(res.status, RunStatus::kQuiescent)
        << backend_name(kinds[v]) << " seed " << seed;
    EXPECT_TRUE(res.shun_pairs.empty())
        << backend_name(kinds[v]) << " seed " << seed;
    for (const auto& [i, bit] : res.bits) {
      EXPECT_TRUE(bit == 0 || bit == 1) << "process " << i;
    }
  }

  // Content equivalence: same session, same value, on every process that
  // reconstructed it in both runs.
  int compared = 0;
  for (const auto& [key, value] : run[0].recon) {
    auto it = run[1].recon.find(key);
    if (it == run[1].recon.end()) continue;
    if (!value || !it->second) continue;
    EXPECT_EQ(*value, *it->second)
        << "process " << key.first << " session " << key.second.str()
        << " seed " << seed;
    ++compared;
  }
  EXPECT_GT(compared, 0) << "no session completed on both backends (seed "
                         << seed << ")";

  // Metering parity on the round-start dealing burst.  Every dealer emits
  // its share messages synchronously inside the coin start action, before
  // a single inbound packet exists, so their count and size are structural
  // — if the socket backend metered frame overhead, or framed a batched
  // envelope differently, this is where it would show.
  MsgType dealing = framing == Framing::kBatched ? MsgType::kSvssBatchShares
                                                 : MsgType::kSvssDealerShares;
  auto slot = static_cast<std::size_t>(dealing);
  EXPECT_GT(run[0].res.metrics.packets_by_type[slot], 0u) << "seed " << seed;
  EXPECT_EQ(run[0].res.metrics.packets_by_type[slot],
            run[1].res.metrics.packets_by_type[slot])
      << "seed " << seed;
  EXPECT_EQ(run[0].res.metrics.bytes_by_type[slot],
            run[1].res.metrics.bytes_by_type[slot])
      << "seed " << seed;
}

TEST(BackendEquivalence, HonestCoinRoundBatchedFraming) {
  for (std::uint64_t seed : {9101ull, 9102ull}) {
    expect_backend_equivalence(seed, Framing::kBatched);
  }
}

TEST(BackendEquivalence, HonestCoinRoundPerSessionFraming) {
  expect_backend_equivalence(9201, Framing::kPerSession);
}

// The loopback backend must also keep the Runner's wire-fault injection
// working through the seam's send hook: a corrupted slot draws accusations
// from honest processes, and only sound ones (honest never shuns honest).
TEST(BackendEquivalence, LoopbackWireFaultsDrawSoundShuns) {
  RunnerConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.seed = 9301;
  cfg.transport.kind = TransportKind::kSocketLoopback;
  cfg.faults[3] = ByzConfig{ByzKind::kWrongRecon};
  Runner r(cfg);
  auto res = r.run_coin();
  EXPECT_TRUE(res.all_output);
  for (const auto& [who, whom] : res.shun_pairs) {
    EXPECT_TRUE(r.is_honest(who));
    EXPECT_EQ(whom, 3);
  }
}

}  // namespace
}  // namespace svss
