// Step-level unit tests for the SVSS state machine (paper Section 4),
// driven through a mock host: child-session bookkeeping, G-set validation,
// completion conditions, and the reconstruct-phase ignore set I_j with its
// bottom/shun outcomes.
#include <gtest/gtest.h>

#include "common/bivariate.hpp"
#include "sim/scheduler.hpp"
#include "svss/svss.hpp"

namespace svss {
namespace {

class Noop : public IProcess {
 public:
  void start(Context&) override {}
  void on_packet(Context&, int, const Packet&) override {}
};

class MockSvssHost : public SvssHost {
 public:
  MockSvssHost(int n, int t) : n_(n), t_(t) {}

  void rb_broadcast(Context&, const Message& m) override {
    broadcasts.push_back(m);
  }
  void send_direct(Context&, int to, Message m) override {
    directs.emplace_back(to, std::move(m));
  }
  Dmm& dmm() override { return dmm_; }
  MwSvssSession& mw_child(Context&, const SessionId& child) override {
    auto it = children.find(child);
    if (it == children.end()) {
      it = children
               .emplace(child, std::make_unique<MwSvssSession>(
                                   mw_host_, child, /*self=*/self, n_, t_))
               .first;
    }
    return *it->second;
  }
  void svss_share_completed(Context&, const SessionId&) override {
    share_completed = true;
  }
  void svss_recon_output(Context&, const SessionId&,
                         std::optional<Fp> value) override {
    output = value;
    output_seen = true;
  }

  int self = 0;
  int n_;
  int t_;
  std::vector<Message> broadcasts;
  std::vector<std::pair<int, Message>> directs;
  std::map<SessionId, std::unique_ptr<MwSvssSession>> children;
  bool share_completed = false;
  bool output_seen = false;
  std::optional<Fp> output;

 private:
  // Children run against a throwaway MW host (their traffic is not under
  // test here).
  class NullMwHost : public MwHost {
   public:
    void rb_broadcast(Context&, const Message&) override {}
    void send_direct(Context&, int, Message) override {}
    Dmm& dmm() override { return dmm_; }
    void mw_share_completed(Context&, const SessionId&) override {}
    void mw_recon_output(Context&, const SessionId&,
                         std::optional<Fp>) override {}

   private:
    Dmm dmm_{Dmm::Hooks{nullptr, [](Context&, int, const Message&, bool) {}}};
  };

  NullMwHost mw_host_;
  Dmm dmm_{Dmm::Hooks{nullptr, [](Context&, int, const Message&, bool) {}}};
};

struct SvssUnit : public ::testing::Test {
  static constexpr int kN = 4;
  static constexpr int kT = 1;

  SvssUnit()
      : engine(kN, kT, 5, std::make_unique<FifoScheduler>()),
        host(kN, kT) {
    for (int i = 0; i < kN; ++i) engine.set_process(i, std::make_unique<Noop>());
  }

  SessionId sid() const { return svss_top_id_(); }
  static SessionId svss_top_id_() {
    SessionId s;
    s.path = SessionPath::kSvssTop;
    s.owner = 0;
    s.counter = 1;
    return s;
  }

  // Crafts the dealer's slice message for process `self` from `f`.
  Message slices_msg(const BivariatePolynomial& f, int self) const {
    Message m;
    m.sid = sid();
    m.type = MsgType::kSvssDealerShares;
    FieldVec gp = f.row(self + 1).evaluate_range(kT + 1);
    FieldVec hp = f.column(self + 1).evaluate_range(kT + 1);
    m.vals.insert(m.vals.end(), gp.begin(), gp.end());
    m.vals.insert(m.vals.end(), hp.begin(), hp.end());
    return m;
  }

  // The dealer's G broadcast for the all-inclusive case.
  Message gset_msg(const std::vector<int>& g) const {
    Message m;
    m.sid = sid();
    m.type = MsgType::kSvssGset;
    m.ints = g;
    Writer w;
    for (int j : g) {
      w.i32(j);
      w.int_vec(g);  // every G_j = G (j in its own set)
    }
    m.blob = std::move(w).take();
    return m;
  }

  // Marks all 4 MW children of every pair in g x g as complete.
  void complete_all_children(Context& ctx, SvssSession& s,
                             const std::vector<int>& g) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      for (std::size_t j = i + 1; j < g.size(); ++j) {
        for (int v : {0, 1}) {
          s.on_child_share_complete(ctx, mw_child_id(sid(), g[i], g[j], v));
          s.on_child_share_complete(ctx, mw_child_id(sid(), g[j], g[i], v));
        }
      }
    }
  }

  // Feeds consistent child outputs derived from `f` for pairs in g x g.
  void feed_outputs(Context& ctx, SvssSession& s, const BivariatePolynomial& f,
                    const std::vector<int>& g) {
    for (int a : g) {
      for (int b : g) {
        if (a == b) continue;
        // Child (dealer a, moderator b, v0) commits f(b, a); v1 f(a, b).
        s.on_child_output(ctx, mw_child_id(sid(), a, b, 0),
                          f.eval(point(b), point(a)));
        s.on_child_output(ctx, mw_child_id(sid(), a, b, 1),
                          f.eval(point(a), point(b)));
      }
    }
  }

  Engine engine;
  MockSvssHost host;
};

TEST_F(SvssUnit, DealerSendsSlicesToEveryone) {
  Context ctx(engine, 0);
  SvssSession dealer(host, sid(), /*self=*/0, kN, kT);
  dealer.deal(ctx, Fp(777));
  auto slices = host.directs;
  ASSERT_EQ(slices.size(), static_cast<std::size_t>(kN));
  for (int j = 0; j < kN; ++j) {
    EXPECT_EQ(slices[static_cast<std::size_t>(j)].first, j);
    EXPECT_EQ(slices[static_cast<std::size_t>(j)].second.vals.size(),
              static_cast<std::size_t>(2 * (kT + 1)));
  }
}

TEST_F(SvssUnit, SlicesSpawnFourChildRolesPerCounterpart) {
  Context ctx(engine, 2);
  host.self = 2;
  SvssSession s(host, sid(), /*self=*/2, kN, kT);
  Rng rng(1);
  auto f = BivariatePolynomial::random_with_secret(Fp(9), kT, rng);
  s.on_direct(ctx, 0, slices_msg(f, 2));
  // For each of the 3 counterparts: 2 dealings by self were started (the
  // mock records their child sessions), 2 moderator roles got inputs.
  int dealt = 0;
  for (const auto& [child_sid, child] : host.children) {
    if (child_sid.owner == 2) ++dealt;
  }
  EXPECT_EQ(dealt, 6);  // 2 dealings x 3 counterparts
  EXPECT_EQ(host.children.size(), 12u);  // + 2 moderated x 3
}

TEST_F(SvssUnit, MalformedGsetsRejected) {
  Context ctx(engine, 2);
  SvssSession s(host, sid(), /*self=*/2, kN, kT);
  // Not from the dealer.
  {
    Message m = gset_msg({0, 1, 2});
    s.on_broadcast(ctx, 1, m);
  }
  // Undersized G.
  {
    Message m = gset_msg({0, 1});
    s.on_broadcast(ctx, 0, m);
  }
  // G_j missing j itself.
  {
    Message m;
    m.sid = sid();
    m.type = MsgType::kSvssGset;
    m.ints = {0, 1, 2};
    Writer w;
    for (int j : {0, 1, 2}) {
      w.i32(j);
      w.int_vec({1, 2, 3});  // 0's set lacks 0
    }
    m.blob = std::move(w).take();
    s.on_broadcast(ctx, 0, m);
  }
  // Trailing bytes in the blob.
  {
    Message m = gset_msg({0, 1, 2});
    m.blob.push_back(0);
    s.on_broadcast(ctx, 0, m);
  }
  complete_all_children(ctx, s, {0, 1, 2});
  EXPECT_FALSE(s.share_complete());
}

TEST_F(SvssUnit, ShareCompletesWithGsetAndChildren) {
  Context ctx(engine, 2);
  SvssSession s(host, sid(), /*self=*/2, kN, kT);
  std::vector<int> g{0, 1, 2};
  s.on_broadcast(ctx, 0, gset_msg(g));
  EXPECT_FALSE(s.share_complete());
  complete_all_children(ctx, s, g);
  EXPECT_TRUE(s.share_complete());
  EXPECT_TRUE(host.share_completed);
}

TEST_F(SvssUnit, ReconstructRecoversSecretFromChildOutputs) {
  Context ctx(engine, 2);
  SvssSession s(host, sid(), /*self=*/2, kN, kT);
  Rng rng(2);
  auto f = BivariatePolynomial::random_with_secret(Fp(424242), kT, rng);
  std::vector<int> g{0, 1, 2};
  s.on_broadcast(ctx, 0, gset_msg(g));
  complete_all_children(ctx, s, g);
  s.start_reconstruct(ctx);
  feed_outputs(ctx, s, f, g);
  ASSERT_TRUE(s.has_output());
  ASSERT_TRUE(s.output().has_value());
  EXPECT_EQ(*s.output(), Fp(424242));
}

// A process whose dealings reconstruct to bottom lands in I_j; with t+1
// surviving processes the secret still comes out.
TEST_F(SvssUnit, BottomDealingsAreIgnoredNotFatal) {
  Context ctx(engine, 2);
  SvssSession s(host, sid(), /*self=*/2, kN, kT);
  Rng rng(3);
  auto f = BivariatePolynomial::random_with_secret(Fp(31337), kT, rng);
  std::vector<int> g{0, 1, 2};
  s.on_broadcast(ctx, 0, gset_msg(g));
  complete_all_children(ctx, s, g);
  s.start_reconstruct(ctx);
  for (int a : g) {
    for (int b : g) {
      if (a == b) continue;
      // All of process 1's dealings reconstruct bottom.
      if (a == 1) {
        s.on_child_output(ctx, mw_child_id(sid(), a, b, 0), std::nullopt);
        s.on_child_output(ctx, mw_child_id(sid(), a, b, 1), std::nullopt);
      } else {
        s.on_child_output(ctx, mw_child_id(sid(), a, b, 0),
                          f.eval(point(b), point(a)));
        s.on_child_output(ctx, mw_child_id(sid(), a, b, 1),
                          f.eval(point(a), point(b)));
      }
    }
  }
  ASSERT_TRUE(s.has_output());
  ASSERT_TRUE(s.output().has_value());
  EXPECT_EQ(*s.output(), Fp(31337));
}

// Cross-inconsistent (non-bottom) dealings that evade the per-process
// degree check force the bottom output (paper R step 3).
TEST_F(SvssUnit, CrossInconsistencyForcesBottom) {
  Context ctx(engine, 2);
  SvssSession s(host, sid(), /*self=*/2, kN, kT);
  Rng rng(4);
  auto f = BivariatePolynomial::random_with_secret(Fp(5), kT, rng);
  // Process 1 dealt a *different* consistent polynomial f2: its rows pass
  // the degree check but clash with everyone else's columns.
  auto f2 = BivariatePolynomial::random_with_secret(Fp(6), kT, rng);
  std::vector<int> g{0, 1, 2};
  s.on_broadcast(ctx, 0, gset_msg(g));
  complete_all_children(ctx, s, g);
  s.start_reconstruct(ctx);
  for (int a : g) {
    for (int b : g) {
      if (a == b) continue;
      const auto& fa = a == 1 ? f2 : f;
      s.on_child_output(ctx, mw_child_id(sid(), a, b, 0),
                        fa.eval(point(b), point(a)));
      s.on_child_output(ctx, mw_child_id(sid(), a, b, 1),
                        fa.eval(point(a), point(b)));
    }
  }
  ASSERT_TRUE(s.has_output());
  EXPECT_FALSE(s.output().has_value());
}

TEST_F(SvssUnit, OutputWaitsForAllChildren) {
  Context ctx(engine, 2);
  SvssSession s(host, sid(), /*self=*/2, kN, kT);
  Rng rng(5);
  auto f = BivariatePolynomial::random_with_secret(Fp(1), kT, rng);
  std::vector<int> g{0, 1, 2};
  s.on_broadcast(ctx, 0, gset_msg(g));
  complete_all_children(ctx, s, g);
  s.start_reconstruct(ctx);
  // Feed all but one output.
  s.on_child_output(ctx, mw_child_id(sid(), 0, 1, 0),
                    f.eval(point(1), point(0)));
  EXPECT_FALSE(s.has_output());
}

TEST_F(SvssUnit, ChildIdRoundTripsThroughParent) {
  SessionId child = mw_child_id(sid(), 3, 1, 1);
  EXPECT_EQ(child.path, SessionPath::kMwInSvssTop);
  EXPECT_EQ(child.owner, 3);
  EXPECT_EQ(child.moderator, 1);
  auto parent = parent_session(child);
  ASSERT_TRUE(parent.has_value());
  EXPECT_EQ(*parent, sid());
  // Coin-nested SVSS produces coin-nested children.
  SessionId coin_svss;
  coin_svss.path = SessionPath::kSvssCoin;
  coin_svss.owner = 2;
  coin_svss.counter = 3 * kMaxN + 1;
  SessionId coin_child = mw_child_id(coin_svss, 0, 1, 0);
  EXPECT_EQ(coin_child.path, SessionPath::kMwInSvssCoin);
  EXPECT_EQ(*parent_session(coin_child), coin_svss);
}

}  // namespace
}  // namespace svss
