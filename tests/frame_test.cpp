// Frame codec tests for the socket backend (src/net/frame.*).
//
// The codec's error discipline is the load-bearing property: a Byzantine
// peer shares a TCP stream with honest traffic, so a frame whose *payload*
// is garbage must be droppable alone (the length prefix still delimits
// it), while a length prefix that cannot be trusted (zero, or beyond
// kMaxFrameBytes) must latch a stream error that only a connection reset
// clears — otherwise the peer desyncs the reader and every subsequent
// honest frame is misparsed.
#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hpp"
#include "sim/message.hpp"

namespace svss::net {
namespace {

Message sample_message(std::uint32_t counter) {
  Message m;
  m.sid.path = SessionPath::kSvssCoin;
  m.sid.owner = 2;
  m.sid.counter = counter;
  m.type = MsgType::kSvssBatchShares;
  m.a = 1;
  m.vals.push_back(Fp(12345));
  m.vals.push_back(Fp(67890));
  m.ints = {0, 2, 3};
  m.blob = {0xDE, 0xAD};
  return m;
}

Packet sample_rb_packet(std::uint32_t counter) {
  BcastId bid;
  bid.origin = 1;
  bid.sid.path = SessionPath::kMwInSvssCoin;
  bid.sid.owner = 0;
  bid.sid.moderator = 2;
  bid.sid.svss_dealer = 3;
  bid.sid.counter = counter;
  bid.slot = MsgType::kMwBatchLset;
  bid.a = 4;
  Message payload = sample_message(counter);
  return make_rb(bid, RbPhase::kEcho, payload.serialize());
}

// Feeds `bytes` into a fresh decoder and pops all frames.
std::vector<Frame> decode_all(const Bytes& bytes, FrameDecoder& dec) {
  EXPECT_TRUE(dec.feed(bytes.data(), bytes.size()));
  std::vector<Frame> frames;
  while (auto f = dec.next()) frames.push_back(std::move(*f));
  return frames;
}

TEST(FrameCodec, DirectPacketRoundTrip) {
  Packet p = make_direct(sample_message(7));
  Bytes wire;
  append_packet_frame(wire, p);

  FrameDecoder dec;
  auto frames = decode_all(wire, dec);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, FrameKind::kDirect);
  auto out = decode_packet(frames[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_FALSE(out->is_rb);
  EXPECT_EQ(out->app, p.app);
  EXPECT_EQ(dec.pending_bytes(), 0u);
  EXPECT_FALSE(dec.broken());
}

TEST(FrameCodec, RbPacketRoundTrip) {
  Packet p = sample_rb_packet(9);
  Bytes wire;
  append_packet_frame(wire, p);

  FrameDecoder dec;
  auto frames = decode_all(wire, dec);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, FrameKind::kRb);
  auto out = decode_packet(frames[0]);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->is_rb);
  EXPECT_EQ(out->bid, p.bid);
  EXPECT_EQ(out->phase, p.phase);
  EXPECT_EQ(out->rb_payload(), p.rb_payload());
}

TEST(FrameCodec, HelloRoundTrip) {
  Bytes wire;
  append_hello_frame(wire, 3);
  FrameDecoder dec;
  auto frames = decode_all(wire, dec);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, FrameKind::kHello);
  EXPECT_EQ(decode_hello(frames[0], 4), std::optional<int>(3));
  // Out-of-range ids are rejected by the fleet-size bound.
  EXPECT_EQ(decode_hello(frames[0], 3), std::nullopt);
}

TEST(FrameCodec, ByteAtATimeFeedingWaitsThenDelivers) {
  Packet p = sample_rb_packet(11);
  Bytes wire;
  append_hello_frame(wire, 1);
  append_packet_frame(wire, p);

  FrameDecoder dec;
  std::vector<Frame> frames;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    // A truncated prefix is a wait, never an error.
    EXPECT_FALSE(dec.broken());
    EXPECT_TRUE(dec.feed(&wire[i], 1));
    while (auto f = dec.next()) frames.push_back(std::move(*f));
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].kind, FrameKind::kHello);
  EXPECT_EQ(frames[1].kind, FrameKind::kRb);
  EXPECT_TRUE(decode_packet(frames[1]).has_value());
  EXPECT_EQ(dec.pending_bytes(), 0u);
}

TEST(FrameCodec, ZeroLengthPrefixBreaksStream) {
  const std::uint8_t zeros[4] = {0, 0, 0, 0};
  FrameDecoder dec;
  EXPECT_TRUE(dec.feed(zeros, sizeof zeros));
  EXPECT_EQ(dec.next(), std::nullopt);
  EXPECT_TRUE(dec.broken());
  // A broken stream refuses all further input — the connection must be
  // reset, not resumed.
  Bytes good;
  append_hello_frame(good, 0);
  EXPECT_FALSE(dec.feed(good.data(), good.size()));
  EXPECT_EQ(dec.next(), std::nullopt);
}

TEST(FrameCodec, OversizedLengthPrefixBreaksStream) {
  std::uint32_t len = kMaxFrameBytes + 1;
  std::uint8_t prefix[4];
  std::memcpy(prefix, &len, 4);  // little-endian hosts only (CI is x86/ARM)
  FrameDecoder dec;
  EXPECT_TRUE(dec.feed(prefix, 4));
  EXPECT_EQ(dec.next(), std::nullopt);
  EXPECT_TRUE(dec.broken());
  EXPECT_FALSE(dec.feed(prefix, 4));
}

TEST(FrameCodec, GarbagePayloadDropsFrameWithoutDesync) {
  // A well-delimited frame full of garbage parses as "no packet", and the
  // frame after it still decodes — rejecting a payload never desyncs.
  Bytes wire;
  Bytes garbage = {0xFF, 0xFF, 0x00, 0x41, 0x99};
  std::uint32_t len = static_cast<std::uint32_t>(garbage.size()) + 1;
  wire.insert(wire.end(), reinterpret_cast<std::uint8_t*>(&len),
              reinterpret_cast<std::uint8_t*>(&len) + 4);
  wire.push_back(static_cast<std::uint8_t>(FrameKind::kDirect));
  wire.insert(wire.end(), garbage.begin(), garbage.end());
  Packet good = make_direct(sample_message(13));
  append_packet_frame(wire, good);

  FrameDecoder dec;
  auto frames = decode_all(wire, dec);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(decode_packet(frames[0]), std::nullopt);
  auto out = decode_packet(frames[1]);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->app, good.app);
  EXPECT_FALSE(dec.broken());
}

TEST(FrameCodec, UnknownFrameKindIsSkipped) {
  Bytes wire;
  std::uint32_t len = 3;
  wire.insert(wire.end(), reinterpret_cast<std::uint8_t*>(&len),
              reinterpret_cast<std::uint8_t*>(&len) + 4);
  wire.push_back(0x7F);  // no such FrameKind
  wire.push_back(0x01);
  wire.push_back(0x02);
  Bytes hello;
  append_hello_frame(hello, 2);
  wire.insert(wire.end(), hello.begin(), hello.end());

  FrameDecoder dec;
  auto frames = decode_all(wire, dec);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, FrameKind::kHello);
  EXPECT_FALSE(dec.broken());
}

// Deterministic fuzz: random byte streams must never crash the decoder,
// and whatever it does must be one of the three sanctioned outcomes —
// wait for more bytes, deliver a delimited frame (whose payload may then
// be rejected), or latch broken.  Once broken, feed() must refuse input.
TEST(FrameCodec, RandomStreamFuzzNeverDesyncsOrCrashes) {
  Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    FrameDecoder dec;
    bool refused = false;
    for (int chunk = 0; chunk < 32 && !refused; ++chunk) {
      Bytes noise;
      std::size_t len = rng.next_below(64);
      for (std::size_t i = 0; i < len; ++i) {
        noise.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
      }
      bool ok = dec.feed(noise.data(), noise.size());
      if (!ok) {
        EXPECT_TRUE(dec.broken());
        refused = true;
        break;
      }
      while (auto f = dec.next()) {
        // Delivered frames are well-delimited by construction; parsing
        // them must fail safe, not crash.
        (void)decode_packet(*f);
        (void)decode_hello(*f, 4);
      }
    }
    if (dec.broken()) {
      std::uint8_t byte = 0x42;
      EXPECT_FALSE(dec.feed(&byte, 1));
    }
  }
}

// Interleaving honest frames into a hostile stream: every honest frame fed
// *before* the stream breaks is recovered intact.
TEST(FrameCodec, HonestFramesSurviveUntilStreamBreaks) {
  Rng rng(424242);
  for (int trial = 0; trial < 50; ++trial) {
    FrameDecoder dec;
    int fed = 0;
    int recovered = 0;
    for (int k = 0; k < 8; ++k) {
      Packet p = sample_rb_packet(static_cast<std::uint32_t>(k));
      Bytes wire;
      append_packet_frame(wire, p);
      if (!dec.feed(wire.data(), wire.size())) break;
      ++fed;
      while (auto f = dec.next()) {
        if (decode_packet(*f)) ++recovered;
      }
      // Occasionally inject garbage *between* frames: either a delimited
      // garbage frame (dropped alone) or a poisoned length prefix (breaks
      // the stream for good).
      if (rng.next_below(4) == 0) {
        Bytes junk;
        if (rng.next_bool()) {
          std::uint32_t len = 2;
          junk.insert(junk.end(), reinterpret_cast<std::uint8_t*>(&len),
                      reinterpret_cast<std::uint8_t*>(&len) + 4);
          junk.push_back(static_cast<std::uint8_t>(FrameKind::kRb));
          junk.push_back(0xEE);
        } else {
          junk.assign(4, 0x00);  // zero length prefix
        }
        if (!dec.feed(junk.data(), junk.size())) break;
        while (auto f = dec.next()) {
          if (decode_packet(*f)) ++recovered;
        }
      }
    }
    EXPECT_EQ(recovered, fed) << "trial " << trial;
  }
}

}  // namespace
}  // namespace svss::net
