// Protocol tests: asynchronous Byzantine agreement (Section 5, Theorem 1).
//
// Agreement: no two honest processes decide differently — ever, under any
// schedule or fault mix we can throw at it.  Validity: a unanimous honest
// input is the only possible decision.  Termination: all honest processes
// decide (almost surely; each run is a sample).
#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace svss {
namespace {

RunnerConfig cfg(int n, int t, std::uint64_t seed,
                 SchedulerKind sched = SchedulerKind::kRandom) {
  RunnerConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  c.scheduler = sched;
  return c;
}

// --- Validity ----------------------------------------------------------
TEST(Aba, UnanimousInputDecidesThatValue) {
  for (int v : {0, 1}) {
    Runner r(cfg(4, 1, 41 + static_cast<std::uint64_t>(v)));
    auto res = r.run_aba({v, v, v, v}, CoinMode::kSvss);
    ASSERT_TRUE(res.all_decided);
    EXPECT_TRUE(res.agreed);
    EXPECT_EQ(res.value, v);
  }
}

TEST(Aba, UnanimousHonestInputWithByzantineMinority) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[3] = ByzConfig{ByzKind::kBitFlip, 0, 0.2};
    Runner r(c);
    auto res = r.run_aba({1, 1, 1, 0}, CoinMode::kSvss);
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
    EXPECT_EQ(res.value, 1) << seed;  // honest inputs are unanimous
  }
}

// --- Agreement + termination, mixed inputs -----------------------------
TEST(Aba, MixedInputsAgree) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Runner r(cfg(4, 1, 100 + seed));
    auto res = r.run_aba({0, 1, 0, 1}, CoinMode::kSvss);
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
  }
}

TEST(Aba, MixedInputsUnderHostileSchedulers) {
  for (auto sched : {SchedulerKind::kFifo, SchedulerKind::kLifo,
                     SchedulerKind::kDelayLastHonest}) {
    Runner r(cfg(4, 1, 43, sched));
    auto res = r.run_aba({1, 0, 1, 0}, CoinMode::kSvss);
    ASSERT_TRUE(res.all_decided);
    EXPECT_TRUE(res.agreed);
  }
}

TEST(Aba, SilentFaultMixedInputs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto c = cfg(4, 1, 200 + seed);
    c.faults[2] = ByzConfig{ByzKind::kSilent};
    Runner r(c);
    auto res = r.run_aba({0, 1, 0, 1}, CoinMode::kSvss);
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
  }
}

TEST(Aba, ActiveByzantineFaultNeverBreaksAgreement) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (auto kind : {ByzKind::kEquivocate, ByzKind::kWrongRecon,
                      ByzKind::kBitFlip}) {
      auto c = cfg(4, 1, 300 + seed);
      c.faults[3] = ByzConfig{kind, 200, 0.15};
      Runner r(c);
      auto res = r.run_aba({0, 1, 1, 0}, CoinMode::kSvss);
      ASSERT_TRUE(res.all_decided)
          << "seed " << seed << " kind " << static_cast<int>(kind);
      EXPECT_TRUE(res.agreed)
          << "seed " << seed << " kind " << static_cast<int>(kind);
    }
  }
}

// n = 7, t = 2 with two mixed faults, full SVSS coin (heavier run).
TEST(Aba, SevenProcessesTwoFaults) {
  auto c = cfg(7, 2, 51);
  c.faults[5] = ByzConfig{ByzKind::kSilent};
  c.faults[6] = ByzConfig{ByzKind::kWrongRecon};
  Runner r(c);
  auto res = r.run_aba({0, 1, 0, 1, 0, 1, 0}, CoinMode::kSvss);
  ASSERT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
}

// --- Ideal-coin mode: the SCC abstraction at larger scales -------------
class AbaIdealSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(AbaIdealSweep, AgreementAcrossSizesAndSeeds) {
  auto [n, seed] = GetParam();
  int t = (n - 1) / 3;
  auto c = cfg(n, t, seed);
  // Last t processes byzantine (bit-flipping).
  for (int i = n - t; i < n; ++i) {
    c.faults[i] = ByzConfig{ByzKind::kBitFlip, 0, 0.2};
  }
  Runner r(c);
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i % 2);
  auto res = r.run_aba(inputs, CoinMode::kIdealCommon);
  ASSERT_TRUE(res.all_decided) << "n=" << n << " seed=" << seed;
  EXPECT_TRUE(res.agreed) << "n=" << n << " seed=" << seed;
  EXPECT_TRUE(res.value == 0 || res.value == 1);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, AbaIdealSweep,
    ::testing::Combine(::testing::Values(4, 7, 10, 13),
                       ::testing::Values(1u, 2u, 3u, 4u)));

// Decision rounds stay small when the coin is common: expected O(1) good
// rounds to converge.
TEST(Aba, IdealCoinDecidesInFewRounds) {
  std::uint32_t worst = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Runner r(cfg(7, 2, 700 + seed));
    auto res = r.run_aba({0, 1, 0, 1, 0, 1, 0}, CoinMode::kIdealCommon);
    ASSERT_TRUE(res.all_decided);
    worst = std::max(worst, res.max_round);
  }
  EXPECT_LE(worst, 12u);
}

// Honest processes decide within one round of each other (the CONF
// propagation argument).
TEST(Aba, DecisionRoundsWithinOne) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Runner r(cfg(4, 1, 800 + seed));
    auto res = r.run_aba({0, 1, 1, 0}, CoinMode::kSvss);
    ASSERT_TRUE(res.all_decided);
    std::uint32_t lo = ~0u;
    std::uint32_t hi = 0;
    for (const auto& [i, round] : res.decision_rounds) {
      lo = std::min(lo, round);
      hi = std::max(hi, round);
    }
    EXPECT_LE(hi - lo, 1u) << seed;
  }
}

}  // namespace
}  // namespace svss
