// Reconnect-under-partial-write regression test.
//
// A SocketTransport that loses its connection mid-frame must resend from
// the last *frame boundary*, not from the flushed byte offset: the new
// connection's receiver starts a fresh frame stream, so a resumed frame
// tail would be parsed as a length prefix and latch a stream error.
//
// The harness plays the remote peer with a raw listening socket whose
// receive buffer is tiny and which never drains the first connection, so
// an oversized frame is guaranteed to stall mid-frame in flush_out.  It
// then closes the connection (the transport drops and re-dials) and
// replays the *second* connection's byte stream through a FrameDecoder:
// post-fix the stream is HELLO + the complete oversized frame + a trailer
// frame; pre-fix it is HELLO + a frame tail whose 0xFF filler reads as an
// undelimitable length prefix (decoder.broken()).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "net/frame.hpp"
#include "net/socket_transport.hpp"

namespace svss::net {
namespace {

using Clock = std::chrono::steady_clock;

// Listener with a deliberately tiny receive buffer (inherited by accepted
// connections), so the dialer's kernel send buffer fills and write() hits
// EAGAIN mid-frame.
struct RawListener {
  int fd = -1;
  std::uint16_t port = 0;

  bool open(std::uint16_t want_port = 0) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    int rcv = 4096;
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv, sizeof(rcv));
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(want_port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      return false;
    }
    if (::listen(fd, 8) < 0) return false;
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      return false;
    }
    port = ntohs(bound.sin_port);
    // Nonblocking so the test can interleave accept with transport polls.
    fcntl(fd, F_SETFL, O_NONBLOCK);
    return true;
  }

  // Polls the transport until a connection arrives (or deadline).
  int accept_with(SocketTransport& t, int timeout_ms) {
    auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (Clock::now() < deadline) {
      int c = ::accept4(fd, nullptr, nullptr, SOCK_NONBLOCK);
      if (c >= 0) return c;
      t.poll(5);
    }
    return -1;
  }

  ~RawListener() {
    if (fd >= 0) ::close(fd);
  }
};

Packet test_packet(std::uint32_t counter, std::size_t blob_bytes) {
  Message m;
  m.sid = SessionId{SessionPath::kTest, 0, -1, -1, -1, counter};
  m.type = MsgType::kTestPayload;
  // 0xFF filler: if a resend ever resumes mid-frame, the receiver reads
  // four of these as a length prefix (0xFFFFFFFF > kMaxFrameBytes) and
  // must latch a stream error — making the pre-fix failure deterministic.
  m.blob.assign(blob_bytes, 0xFF);
  return make_direct(std::move(m));
}

TEST(SocketReconnect, ResendsFromFrameBoundaryAfterMidFrameDrop) {
  RawListener peer;
  ASSERT_TRUE(peer.open());

  ClusterConfig cfg;
  cfg.peers = {Endpoint{"127.0.0.1", 0},          // transport's own listener
               Endpoint{"127.0.0.1", peer.port}}; // the raw peer
  SocketTransport t(0, cfg);
  ASSERT_TRUE(t.open());

  // One frame far larger than any kernel send buffer plus a 4K receive
  // buffer (but under kMaxFrameBytes), so flush_out must stall inside it,
  // and a small trailer behind it that checks stream sync end-to-end.
  const std::size_t kBig = 8u << 20;
  Packet big = test_packet(1, kBig);
  Packet trailer = test_packet(2, 32);
  t.send(1, big);
  t.send(1, trailer);

  // First connection: let the transport write until its send buffer jams
  // mid-frame, then confirm bytes actually flowed and cut the connection.
  int c1 = peer.accept_with(t, 5000);
  ASSERT_GE(c1, 0);
  for (int i = 0; i < 50; ++i) t.poll(2);
  std::uint8_t probe[1024];
  ssize_t got = ::read(c1, probe, sizeof(probe));
  ASSERT_GT(got, 0) << "transport wrote nothing on the first connection";
  ::close(c1);

  // Second connection (transport re-dials after ~100ms backoff): replay
  // its entire stream through a FrameDecoder and demand a clean resend.
  int c2 = peer.accept_with(t, 5000);
  ASSERT_GE(c2, 0);

  FrameDecoder dec;
  std::vector<Frame> frames;
  const std::size_t kWant = 3;  // HELLO + big + trailer
  auto deadline = Clock::now() + std::chrono::seconds(30);
  std::vector<std::uint8_t> chunk(1u << 16);
  while (frames.size() < kWant && !dec.broken() && Clock::now() < deadline) {
    t.poll(2);
    for (;;) {
      ssize_t r = ::read(c2, chunk.data(), chunk.size());
      if (r <= 0) break;
      ASSERT_TRUE(dec.feed(chunk.data(), static_cast<std::size_t>(r)) ||
                  dec.broken());
      while (auto f = dec.next()) frames.push_back(std::move(*f));
      if (dec.broken()) break;
    }
  }
  ::close(c2);

  // Pre-fix, the resumed frame tail desyncs the stream right after HELLO.
  EXPECT_FALSE(dec.broken())
      << "receiver latched a stream error: resend resumed mid-frame";
  ASSERT_EQ(frames.size(), kWant);

  auto hello = decode_hello(frames[0], cfg.n());
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(*hello, 0);

  auto p1 = decode_packet(frames[1]);
  ASSERT_TRUE(p1.has_value());
  EXPECT_FALSE(p1->is_rb);
  EXPECT_EQ(p1->app, big.app) << "oversized frame did not survive resend";

  auto p2 = decode_packet(frames[2]);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->app, trailer.app);
}

}  // namespace

// Reserves a loopback port nobody listens on: connects to it are refused,
// so a transport dialing it keeps its outbound queue forever.  Outside the
// anonymous namespace so the daemon-shutdown test below can reuse it.
std::uint16_t free_port() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return 0;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  ::close(fd);
  return ntohs(bound.sin_port);
}

namespace {

// While a peer is down, the outbound queue must stay bounded: whole oldest
// frames are shed at the configured cap (never a partial frame, never the
// newest), the shed bytes are metered, and once the peer comes back the
// surviving stream still decodes cleanly end-to-end.  Pre-cap, pending
// bytes grew without bound and the <= cap assertion fails.
TEST(SocketReconnect, CapsOutboundQueueWhilePeerDown) {
  std::uint16_t dead_port = free_port();
  ASSERT_NE(dead_port, 0);

  ClusterConfig cfg;
  cfg.peers = {Endpoint{"127.0.0.1", 0}, Endpoint{"127.0.0.1", dead_port}};
  SocketTransport t(0, cfg);
  ASSERT_TRUE(t.open());
  const std::size_t kCap = 8192;
  t.set_out_buffer_cap(kCap);

  // ~300-byte frames, far more than the cap's worth; poll between bursts
  // so dials actually fail (refused) and the queue is what the cap sees.
  const std::uint32_t kCount = 500;
  std::size_t queued_bytes = 0;
  for (std::uint32_t i = 1; i <= kCount; ++i) {
    Packet p = test_packet(i, 256);
    // Frame layout: [u32 len][u8 kind][payload] with len = 1 + payload.
    queued_bytes += 4 + 1 + p.app.serialized_size();
    t.send(1, std::move(p));
    if (i % 50 == 0) t.poll(1);
  }

  EXPECT_LE(t.pending_out_bytes(1), kCap);
  const Metrics& m = t.metrics();
  EXPECT_GT(m.out_dropped_frames, 0u);
  EXPECT_GT(m.out_dropped_bytes, 0u);
  // Shedding cuts whole frames: every queued byte is either still pending
  // or accounted dropped — nothing vanished mid-frame.
  EXPECT_EQ(t.pending_out_bytes(1) + m.out_dropped_bytes, queued_bytes);

  // Bring the peer up on the same port; the transport's capped backoff
  // redials within ~2s and flushes the survivors.
  RawListener peer;
  ASSERT_TRUE(peer.open(dead_port));
  int c = peer.accept_with(t, 10'000);
  ASSERT_GE(c, 0);

  FrameDecoder dec;
  std::vector<Frame> frames;
  auto deadline = Clock::now() + std::chrono::seconds(30);
  std::vector<std::uint8_t> chunk(1u << 16);
  bool saw_last = false;
  while (!saw_last && !dec.broken() && Clock::now() < deadline) {
    t.poll(2);
    for (;;) {
      ssize_t r = ::read(c, chunk.data(), chunk.size());
      if (r <= 0) break;
      ASSERT_TRUE(dec.feed(chunk.data(), static_cast<std::size_t>(r)) ||
                  dec.broken());
      while (auto f = dec.next()) frames.push_back(std::move(*f));
      if (dec.broken()) break;
    }
    if (!frames.empty()) {
      auto p = decode_packet(frames.back());
      saw_last = p.has_value() && !p->is_rb && p->app.sid.counter == kCount;
    }
  }
  ::close(c);

  EXPECT_FALSE(dec.broken()) << "shedding corrupted the frame stream";
  ASSERT_TRUE(saw_last) << "newest frame was shed";
  // HELLO + a strict subset of the queued frames survived, oldest-first
  // shed: the retained app frames are a contiguous newest suffix.
  ASSERT_GT(frames.size(), 1u);
  EXPECT_LT(frames.size(), static_cast<std::size_t>(kCount) + 1);
  auto hello = decode_hello(frames[0], cfg.n());
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(*hello, 0);
  std::uint32_t prev = 0;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    auto p = decode_packet(frames[i]);
    ASSERT_TRUE(p.has_value());
    if (prev != 0) EXPECT_EQ(p->app.sid.counter, prev + 1);
    prev = p->app.sid.counter;
  }
  EXPECT_EQ(prev, kCount);
}

// An endpoint that cannot resolve is a configuration error, not a
// transient: the dialer must jump straight to the capped backoff tier
// instead of spinning the 100ms ladder (and log once, not per retry).
TEST(SocketReconnect, ResolveFailureUsesCappedBackoff) {
  ClusterConfig cfg;
  cfg.peers = {Endpoint{"127.0.0.1", 0}, Endpoint{"not-an-address", 9}};
  SocketTransport t(0, cfg);
  ASSERT_TRUE(t.open());

  t.send(1, test_packet(1, 32));
  for (int i = 0; i < 5; ++i) t.poll(1);

  EXPECT_EQ(t.peer_backoff_ms(1), 2000);
  EXPECT_GT(t.pending_out_bytes(1), 0u) << "frames must survive for a later "
                                           "set_peer/rebind_peer fix";
}

}  // namespace
}  // namespace svss::net

// ----------------------------------------------------------------------
// Daemon shutdown with an instance in flight (core/service_builder.hpp)
// ----------------------------------------------------------------------

#include <sys/stat.h>

#include <csignal>
#include <cstdio>
#include <string>

#include "core/service_builder.hpp"

namespace svss {
namespace {

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

// SIGTERM between submit() and the decision: the daemon's run loop must
// return promptly (stop_requested), the process-level contract is exit 0
// with a metrics line (exercised end-to-end by scripts/socket_smoke.sh),
// and recovery must leave no half-written checkpoint behind — the atomic
// tmp+rename discipline means a *.tmp file never outlives a crash window.
TEST(DaemonShutdown, SigtermWithInstanceInFlightLeavesNoTornCheckpoint) {
  // Peers are reserved-but-dead ports, so the instance can never decide —
  // the worst case for a signalled shutdown.
  net::ClusterConfig cluster;
  cluster.peers.push_back(net::Endpoint{"127.0.0.1", 0});
  for (int i = 0; i < 3; ++i) {
    std::uint16_t port = net::free_port();
    ASSERT_NE(port, 0);
    cluster.peers.push_back(net::Endpoint{"127.0.0.1", port});
  }

  std::string ckpt = ::testing::TempDir() + "svss_sigterm_ckpt";
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".tmp").c_str());
  std::remove((ckpt + ".journal").c_str());

  DaemonService svc =
      ServiceBuilder().seed(7).build_daemon(0, std::move(cluster));
  svc.enable_recovery(ckpt);
  EXPECT_FALSE(svc.recover());
  ASSERT_TRUE(svc.start());
  svc.submit(0, 1, CoinMode::kIdealCommon, 7 ^ 0xC01F);

  std::raise(SIGTERM);
  bool decided = svc.run_until(
      [&] {
        const AbaSession* a = svc.node().aba(0);
        return a != nullptr && a->decided();
      },
      5000);
  EXPECT_FALSE(decided);
  EXPECT_TRUE(DaemonService::stop_requested());
  svc.shutdown();

  EXPECT_FALSE(file_exists(ckpt + ".tmp"))
      << "half-written checkpoint left behind";
  EXPECT_FALSE(file_exists(ckpt)) << "no decision was made, so no checkpoint";
  net::clear_stop_request();
}

}  // namespace
}  // namespace svss
