// Reconnect-under-partial-write regression test.
//
// A SocketTransport that loses its connection mid-frame must resend from
// the last *frame boundary*, not from the flushed byte offset: the new
// connection's receiver starts a fresh frame stream, so a resumed frame
// tail would be parsed as a length prefix and latch a stream error.
//
// The harness plays the remote peer with a raw listening socket whose
// receive buffer is tiny and which never drains the first connection, so
// an oversized frame is guaranteed to stall mid-frame in flush_out.  It
// then closes the connection (the transport drops and re-dials) and
// replays the *second* connection's byte stream through a FrameDecoder:
// post-fix the stream is HELLO + the complete oversized frame + a trailer
// frame; pre-fix it is HELLO + a frame tail whose 0xFF filler reads as an
// undelimitable length prefix (decoder.broken()).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "net/frame.hpp"
#include "net/socket_transport.hpp"

namespace svss::net {
namespace {

using Clock = std::chrono::steady_clock;

// Listener with a deliberately tiny receive buffer (inherited by accepted
// connections), so the dialer's kernel send buffer fills and write() hits
// EAGAIN mid-frame.
struct RawListener {
  int fd = -1;
  std::uint16_t port = 0;

  bool open() {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    int rcv = 4096;
    setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcv, sizeof(rcv));
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      return false;
    }
    if (::listen(fd, 8) < 0) return false;
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      return false;
    }
    port = ntohs(bound.sin_port);
    // Nonblocking so the test can interleave accept with transport polls.
    fcntl(fd, F_SETFL, O_NONBLOCK);
    return true;
  }

  // Polls the transport until a connection arrives (or deadline).
  int accept_with(SocketTransport& t, int timeout_ms) {
    auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (Clock::now() < deadline) {
      int c = ::accept4(fd, nullptr, nullptr, SOCK_NONBLOCK);
      if (c >= 0) return c;
      t.poll(5);
    }
    return -1;
  }

  ~RawListener() {
    if (fd >= 0) ::close(fd);
  }
};

Packet test_packet(std::uint32_t counter, std::size_t blob_bytes) {
  Message m;
  m.sid = SessionId{SessionPath::kTest, 0, -1, -1, -1, counter};
  m.type = MsgType::kTestPayload;
  // 0xFF filler: if a resend ever resumes mid-frame, the receiver reads
  // four of these as a length prefix (0xFFFFFFFF > kMaxFrameBytes) and
  // must latch a stream error — making the pre-fix failure deterministic.
  m.blob.assign(blob_bytes, 0xFF);
  return make_direct(std::move(m));
}

TEST(SocketReconnect, ResendsFromFrameBoundaryAfterMidFrameDrop) {
  RawListener peer;
  ASSERT_TRUE(peer.open());

  ClusterConfig cfg;
  cfg.peers = {Endpoint{"127.0.0.1", 0},          // transport's own listener
               Endpoint{"127.0.0.1", peer.port}}; // the raw peer
  SocketTransport t(0, cfg);
  ASSERT_TRUE(t.open());

  // One frame far larger than any kernel send buffer plus a 4K receive
  // buffer (but under kMaxFrameBytes), so flush_out must stall inside it,
  // and a small trailer behind it that checks stream sync end-to-end.
  const std::size_t kBig = 8u << 20;
  Packet big = test_packet(1, kBig);
  Packet trailer = test_packet(2, 32);
  t.send(1, big);
  t.send(1, trailer);

  // First connection: let the transport write until its send buffer jams
  // mid-frame, then confirm bytes actually flowed and cut the connection.
  int c1 = peer.accept_with(t, 5000);
  ASSERT_GE(c1, 0);
  for (int i = 0; i < 50; ++i) t.poll(2);
  std::uint8_t probe[1024];
  ssize_t got = ::read(c1, probe, sizeof(probe));
  ASSERT_GT(got, 0) << "transport wrote nothing on the first connection";
  ::close(c1);

  // Second connection (transport re-dials after ~100ms backoff): replay
  // its entire stream through a FrameDecoder and demand a clean resend.
  int c2 = peer.accept_with(t, 5000);
  ASSERT_GE(c2, 0);

  FrameDecoder dec;
  std::vector<Frame> frames;
  const std::size_t kWant = 3;  // HELLO + big + trailer
  auto deadline = Clock::now() + std::chrono::seconds(30);
  std::vector<std::uint8_t> chunk(1u << 16);
  while (frames.size() < kWant && !dec.broken() && Clock::now() < deadline) {
    t.poll(2);
    for (;;) {
      ssize_t r = ::read(c2, chunk.data(), chunk.size());
      if (r <= 0) break;
      ASSERT_TRUE(dec.feed(chunk.data(), static_cast<std::size_t>(r)) ||
                  dec.broken());
      while (auto f = dec.next()) frames.push_back(std::move(*f));
      if (dec.broken()) break;
    }
  }
  ::close(c2);

  // Pre-fix, the resumed frame tail desyncs the stream right after HELLO.
  EXPECT_FALSE(dec.broken())
      << "receiver latched a stream error: resend resumed mid-frame";
  ASSERT_EQ(frames.size(), kWant);

  auto hello = decode_hello(frames[0], cfg.n());
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(*hello, 0);

  auto p1 = decode_packet(frames[1]);
  ASSERT_TRUE(p1.has_value());
  EXPECT_FALSE(p1->is_rb);
  EXPECT_EQ(p1->app, big.app) << "oversized frame did not survive resend";

  auto p2 = decode_packet(frames[2]);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->app, trailer.app);
}

}  // namespace
}  // namespace svss::net
