// Unit tests: deterministic splittable RNG.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace svss {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentOfParentUse) {
  // Splitting then drawing from the parent must not change the child.
  Rng parent1(7);
  Rng child1 = parent1.split(5);
  Rng parent2(7);
  Rng child2 = parent2.split(5);
  (void)parent2.next_u64();  // extra parent draw after the split
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
}

TEST(Rng, SiblingSplitsDiffer) {
  Rng parent(9);
  // Note split advances the parent; recreate for each salt.
  Rng a = Rng(9).split(1);
  Rng b = Rng(9).split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
  (void)parent;
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextFieldInRange) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.next_field().value(), Fp::kModulus);
  }
}

TEST(Rng, NextBoolRoughlyBalanced) {
  Rng rng(19);
  int ones = 0;
  for (int i = 0; i < 10000; ++i) ones += rng.next_bool() ? 1 : 0;
  EXPECT_GT(ones, 4500);
  EXPECT_LT(ones, 5500);
}

TEST(Rng, NextUnitInHalfOpenInterval) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

// Chi-squared-ish sanity check on byte uniformity of the generator.
TEST(Rng, ByteHistogramIsFlat) {
  Rng rng(29);
  int counts[256] = {0};
  constexpr int kDraws = 1 << 16;
  for (int i = 0; i < kDraws; ++i) counts[rng.next_u64() & 0xFF]++;
  double expected = kDraws / 256.0;
  for (int b = 0; b < 256; ++b) {
    EXPECT_GT(counts[b], expected * 0.7) << "byte " << b;
    EXPECT_LT(counts[b], expected * 1.3) << "byte " << b;
  }
}

}  // namespace
}  // namespace svss
