// Resilience boundary: the paper's protocols assume optimal resilience
// n >= 3t+1 (Theorem 1 — t < n/3 is necessary for asynchronous BA).  The
// Runner accepts exactly the safe configs and rejects n = 3t unless the
// caller explicitly opts into sub-resilience experiments.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/runner.hpp"

namespace svss {
namespace {

RunnerConfig cfg(int n, int t, std::uint64_t seed = 9) {
  RunnerConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  return c;
}

// --- n = 3t+1 accepted: every driver works at the boundary ---------------

TEST(Resilience, OptimalSvssRuns) {
  Runner r(cfg(4, 1));
  auto res = r.run_svss(Fp(77));
  EXPECT_TRUE(res.all_honest_shared);
  EXPECT_TRUE(res.all_honest_output);
}

TEST(Resilience, OptimalCoinRuns) {
  Runner r(cfg(4, 1));
  auto res = r.run_coin();
  EXPECT_TRUE(res.all_output);
}

TEST(Resilience, OptimalAbaRuns) {
  Runner r(cfg(4, 1));
  auto res = r.run_aba({1, 1, 1, 1}, CoinMode::kSvss);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.value, 1);
}

TEST(Resilience, LargerOptimalConfigsConstruct) {
  for (int t : {2, 3, 4}) {
    EXPECT_NO_THROW(Runner r(cfg(3 * t + 1, t)));
  }
}

// --- n = 3t rejected for SVSS, coin, and ABA drivers ---------------------

TEST(Resilience, SubResilienceSvssRejected) {
  EXPECT_THROW(
      {
        Runner r(cfg(3, 1));
        (void)r.run_svss(Fp(1));
      },
      std::invalid_argument);
}

TEST(Resilience, SubResilienceCoinRejected) {
  EXPECT_THROW(
      {
        Runner r(cfg(6, 2));
        (void)r.run_coin();
      },
      std::invalid_argument);
}

TEST(Resilience, SubResilienceAbaRejected) {
  EXPECT_THROW(
      {
        Runner r(cfg(9, 3));
        (void)r.run_aba({0, 1, 0, 1, 0, 1, 0, 1, 0});
      },
      std::invalid_argument);
}

TEST(Resilience, DegenerateConfigsRejected) {
  EXPECT_THROW(Runner r(cfg(0, 0)), std::invalid_argument);
  EXPECT_THROW(Runner r(cfg(-4, 1)), std::invalid_argument);
  EXPECT_THROW(Runner r(cfg(4, -1)), std::invalid_argument);
}

// --- explicit opt-in: sub-resilience is available for experiments --------

TEST(Resilience, OptInAllowsSubResilienceButStaysSafe) {
  auto c = cfg(6, 2);
  c.allow_sub_resilience = true;
  // t silent processes at n = 3t: honest quorums of size n-t need every
  // honest message, so runs typically stall (bench_resilience measures
  // p_terminated ~ 0).  Either way, silence alone must never produce
  // disagreement among honest deciders.
  c.faults[4] = ByzConfig{ByzKind::kSilent};
  c.faults[5] = ByzConfig{ByzKind::kSilent};
  c.max_deliveries = 500'000;
  c.warn_on_cap = false;  // stalling is the expected outcome here
  Runner r(c);
  auto res = r.run_aba({0, 1, 0, 1, 0, 1}, CoinMode::kIdealCommon);
  if (res.all_decided) {
    EXPECT_TRUE(res.agreed);
  }
}

}  // namespace
}  // namespace svss
