// Almost-sure-termination sweep (the paper's Theorem 1, quantified over a
// strategy space): ABA must reach unanimous, valid honest decisions — and
// must *terminate* — for every adversary strategy in the catalogue, under
// every scheduler, across seeds.  A capped run (delivery budget exhausted)
// is a potential non-termination witness and fails the suite; so does any
// agreement or validity violation.
#include <gtest/gtest.h>

#include "sweep_common.hpp"

namespace svss {
namespace {

using adversary::StrategyKind;
using sweep::SweepSpec;

std::vector<StrategyKind> all_strategies() {
  return {std::begin(adversary::kAllStrategies),
          std::end(adversary::kAllStrategies)};
}

std::vector<SchedulerKind> all_schedulers() {
  return {std::begin(sweep::kAllSchedulers), std::end(sweep::kAllSchedulers)};
}

void expect_clean(const sweep::SweepReport& report) {
  EXPECT_EQ(report.safety_violations, 0)
      << "agreement/validity broken:\n" << report.to_json();
  EXPECT_EQ(report.capped_runs, 0)
      << "non-termination witness (capped run):\n" << report.to_json();
  EXPECT_EQ(report.undecided_runs, 0)
      << "quiescent but undecided:\n" << report.to_json();
}

// n = 4: the full SVSS-coin stack, t = 1 strategy-driven fault, all four
// strategies x all four schedulers x five seeds.  The seed list spans the
// input patterns (seed mod 4): mixed inputs stress the coin path,
// unanimous inputs make the validity counter falsifiable.
TEST(TerminationSweep, FullStackSmall) {
  SweepSpec spec;
  spec.ns = {4};
  spec.strategies = all_strategies();
  spec.schedulers = all_schedulers();
  spec.seeds = {11, 22, 33, 44, 55};
  auto report = sweep::run_aba_termination_sweep(spec);
  ASSERT_EQ(report.total(), 4 * 4 * 5);
  expect_clean(report);
  // Coverage: every strategy must observably attack somewhere in the grid
  // (per-run non-vacuity is adversary_test's job; fast schedules can
  // legitimately decide before a late-phase attack surface appears).
  for (auto strategy : spec.strategies) {
    EXPECT_GT(report.attacked_count(strategy), 0)
        << adversary::strategy_name(strategy) << " never attacked:\n"
        << report.to_json();
  }
  sweep::maybe_write_report(report, "full-stack-n4");
}

// n = 7 with the *full* SVSS-coin stack — the tier-1 case the batched
// transport pays for (pre-batching this size lived in the stress lane
// only).  One FIFO cell per strategy: t = 2 strategy-driven faults over
// ~3.4M deliveries each; the random-schedule grid at this size stays in
// the stress lane (stress_test.cpp runs it at n = 7 and n = 10).
TEST(TerminationSweep, FullStackMediumN7) {
  SweepSpec spec;
  spec.ns = {7};
  spec.full_stack_max_n = 7;  // the real SCC, not the ideal-coin stand-in
  spec.strategies = all_strategies();
  spec.schedulers = {SchedulerKind::kFifo};
  spec.seeds = {60};
  spec.max_deliveries = 100'000'000;
  auto report = sweep::run_aba_termination_sweep(spec);
  ASSERT_EQ(report.total(), 4);
  expect_clean(report);
  sweep::maybe_write_report(report, "full-stack-n7-fifo");
}

// n = 7: t = 2 strategy-driven faults, ideal-coin abstraction (bench_aba's
// E6 convention: the SCC is exercised at small n, the agreement skeleton
// at scale).  VSS-targeting strategies degrade to honest behaviour here —
// the sweep still checks the skeleton against split-brain voting and the
// cabal's coordinated crash — so vacuous cells are expected and allowed.
TEST(TerminationSweep, IdealCoinMedium) {
  SweepSpec spec;
  spec.ns = {7};
  spec.strategies = all_strategies();
  spec.schedulers = all_schedulers();
  spec.seeds = {101, 202, 303, 404, 505};
  auto report = sweep::run_aba_termination_sweep(spec);
  ASSERT_EQ(report.total(), 4 * 4 * 5);
  expect_clean(report);
  sweep::maybe_write_report(report, "ideal-coin-n7");
}

// Mixed fleet: the lower half of the processes keep per-session MW
// framing while the upper half — including the adversary slot (top id) —
// coalesce their child traffic into group envelopes.  Inbound envelopes
// are understood unconditionally, so the halves must interoperate: every
// cell terminates with clean verdicts even when the equivocating dealer
// plays its split-brain game *in the batched role* (its two honest-code
// forks emit kMwBatch* envelopes carrying forked polynomials).
TEST(TerminationSweep, MixedMwFleetWithBatchedAdversary) {
  SweepSpec spec;
  spec.ns = {4};
  spec.full_stack_max_n = 4;  // full SVSS-coin stack: MW children exist
  spec.strategies = {StrategyKind::kEquivocatingDealer};
  spec.schedulers = all_schedulers();
  spec.seeds = {71, 72};
  spec.configure = [](RunnerConfig& cfg) {
    // batched_mw_children defaults to true; un-batch the lower half so
    // the run mixes both framings (the adversary, at slot n-1, stays in
    // the batched half).
    for (int i = 0; i < cfg.n / 2; ++i) cfg.mw_batch_override[i] = false;
  };
  auto report = sweep::run_aba_termination_sweep(spec);
  ASSERT_EQ(report.total(), 4 * 2);
  expect_clean(report);
  EXPECT_GT(report.attacked_count(StrategyKind::kEquivocatingDealer), 0)
      << report.to_json();
  sweep::maybe_write_report(report, "mixed-mw-fleet-n4");
}

// The max_deliveries guard must be a first-class outcome: a capped run
// reports RunStatus::kDeliveryCap *and* surfaces the cap in Metrics, so
// sweeps can count capped runs instead of silently truncating.
TEST(TerminationSweep, CappedRunIsSurfacedInMetrics) {
  RunnerConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.seed = 7;
  cfg.max_deliveries = 500;  // far below what an SVSS-coin round needs
  cfg.warn_on_cap = false;   // the flag, not the stderr line, is under test
  Runner r(cfg);
  auto res = r.run_aba({0, 1, 0, 1}, CoinMode::kSvss);
  ASSERT_EQ(res.status, RunStatus::kDeliveryCap);
  EXPECT_TRUE(res.metrics.capped);
  EXPECT_EQ(res.metrics.deliveries_at_cap, 500u);
  EXPECT_NE(res.metrics.summary().find("CAPPED"), std::string::npos);
}

}  // namespace
}  // namespace svss
