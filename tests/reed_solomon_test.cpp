// Unit tests: Berlekamp-Welch decoding and online error correction.
#include "common/reed_solomon.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace svss {
namespace {

std::vector<std::pair<Fp, Fp>> sample(const Polynomial& p, int count) {
  std::vector<std::pair<Fp, Fp>> pts;
  for (int x = 1; x <= count; ++x) pts.emplace_back(Fp(x), p.eval(Fp(x)));
  return pts;
}

TEST(ReedSolomon, ZeroErrorsMatchesInterpolation) {
  Rng rng(1);
  Polynomial p = Polynomial::random_with_constant(Fp(77), 3, rng);
  auto pts = sample(p, 8);
  auto q = rs_decode(pts, 3, 0);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
}

TEST(ReedSolomon, CorrectsSingleError) {
  Rng rng(2);
  Polynomial p = Polynomial::random_with_constant(Fp(123), 2, rng);
  auto pts = sample(p, 5);  // m = 5 >= 3 + 2*1
  pts[1].second += Fp(9);
  auto q = rs_decode(pts, 2, 1);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
}

TEST(ReedSolomon, CorrectsMaxErrors) {
  Rng rng(3);
  int deg = 3;
  int e = 3;
  Polynomial p = Polynomial::random_with_constant(Fp(55), deg, rng);
  auto pts = sample(p, deg + 1 + 2 * e);
  // Corrupt e points at scattered positions.
  pts[0].second += Fp(1);
  pts[4].second += Fp(2);
  pts[8].second += Fp(3);
  auto q = rs_decode(pts, deg, e);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
}

TEST(ReedSolomon, TooManyErrorsRejected) {
  Rng rng(4);
  Polynomial p = Polynomial::random_with_constant(Fp(1), 2, rng);
  auto pts = sample(p, 5);
  pts[0].second += Fp(1);
  pts[1].second += Fp(2);  // 2 errors but budget allows 1
  EXPECT_FALSE(rs_decode(pts, 2, 1).has_value());
}

TEST(ReedSolomon, InsufficientPointsRejected) {
  Rng rng(5);
  Polynomial p = Polynomial::random_with_constant(Fp(1), 3, rng);
  auto pts = sample(p, 5);  // need 4 + 2*1 = 6 for e=1
  EXPECT_FALSE(rs_decode(pts, 3, 1).has_value());
}

TEST(ReedSolomon, ErrorValueEqualToTruthIsHarmless) {
  // "Corrupting" a point to its true value is no error at all.
  Rng rng(6);
  Polynomial p = Polynomial::random_with_constant(Fp(9), 2, rng);
  auto pts = sample(p, 5);
  auto q = rs_decode(pts, 2, 1);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
}

class RsErrorSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(RsErrorSweep, RandomErrorsAtRandomPositions) {
  auto [deg, e, seed] = GetParam();
  Rng rng(seed);
  Polynomial p = Polynomial::random_with_constant(rng.next_field(), deg, rng);
  int m = deg + 1 + 2 * e + 2;  // slack beyond the minimum
  auto pts = sample(p, m);
  // Pick e distinct positions to corrupt.
  std::vector<int> idx(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) idx[static_cast<std::size_t>(i)] = i;
  for (int k = 0; k < e; ++k) {
    auto j = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(m - k)) + k);
    std::swap(idx[static_cast<std::size_t>(k)], idx[j]);
    pts[static_cast<std::size_t>(idx[static_cast<std::size_t>(k)])].second +=
        Fp(static_cast<std::int64_t>(1 + rng.next_below(1000)));
  }
  auto q = rs_decode(pts, deg, e);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, p);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RsErrorSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 7),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(10u, 20u)));

// --- Online error correction -------------------------------------------

TEST(OnlineDecoder, DecodesOnceThresholdHonestPointsArrive) {
  Rng rng(7);
  int t = 2;  // n = 7, threshold 2t+1 = 5
  Polynomial p = Polynomial::random_with_constant(Fp(31337), t, rng);
  OnlineDecoder dec(t, 2 * t + 1);
  // 5 honest points, no errors: decode succeeds at the 5th.
  for (int x = 1; x <= 5; ++x) {
    auto r = dec.add_point(Fp(x), p.eval(Fp(x)));
    if (x < 5) {
      EXPECT_FALSE(r.has_value()) << x;
    } else {
      ASSERT_TRUE(r.has_value());
      EXPECT_EQ(*r, p);
    }
  }
}

TEST(OnlineDecoder, ToleratesEarlyLies) {
  Rng rng(8);
  int t = 2;
  Polynomial p = Polynomial::random_with_constant(Fp(606), t, rng);
  OnlineDecoder dec(t, 2 * t + 1);
  // Two liars come first; decoding must wait for enough honest points and
  // still produce the true polynomial.
  EXPECT_FALSE(dec.add_point(Fp(6), p.eval(Fp(6)) + Fp(5)).has_value());
  EXPECT_FALSE(dec.add_point(Fp(7), p.eval(Fp(7)) + Fp(5)).has_value());
  std::optional<Polynomial> r;
  for (int x = 1; x <= 5; ++x) r = dec.add_point(Fp(x), p.eval(Fp(x)));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, p);
}

TEST(OnlineDecoder, NeverDecodesWrongPolynomial) {
  // Adversarial prefix: t liars on a *consistent* wrong polynomial arrive
  // first.  The decoder must not fall for it at any prefix.
  Rng rng(9);
  int t = 2;
  Polynomial truth = Polynomial::random_with_constant(Fp(1), t, rng);
  Polynomial fake = Polynomial::random_with_constant(Fp(2), t, rng);
  OnlineDecoder dec(t, 2 * t + 1);
  std::optional<Polynomial> r;
  r = dec.add_point(Fp(6), fake.eval(Fp(6)));
  EXPECT_FALSE(r.has_value());
  r = dec.add_point(Fp(7), fake.eval(Fp(7)));
  EXPECT_FALSE(r.has_value());
  for (int x = 1; x <= 5; ++x) {
    r = dec.add_point(Fp(x), truth.eval(Fp(x)));
    if (r) {
      EXPECT_EQ(*r, truth) << "decoded at honest point " << x;
    }
  }
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, truth);
}

TEST(OnlineDecoder, DuplicateShareholdersIgnored) {
  Rng rng(10);
  int t = 1;
  Polynomial p = Polynomial::random_with_constant(Fp(42), t, rng);
  OnlineDecoder dec(t, 2 * t + 1);
  (void)dec.add_point(Fp(1), p.eval(Fp(1)));
  (void)dec.add_point(Fp(1), p.eval(Fp(1)) + Fp(3));  // duplicate x
  EXPECT_EQ(dec.point_count(), 1u);
  (void)dec.add_point(Fp(2), p.eval(Fp(2)));
  auto r = dec.add_point(Fp(3), p.eval(Fp(3)));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, p);
}

TEST(OnlineDecoder, ResultIsSticky) {
  Rng rng(11);
  int t = 1;
  Polynomial p = Polynomial::random_with_constant(Fp(5), t, rng);
  OnlineDecoder dec(t, 2 * t + 1);
  for (int x = 1; x <= 3; ++x) (void)dec.add_point(Fp(x), p.eval(Fp(x)));
  ASSERT_TRUE(dec.result().has_value());
  // Garbage afterwards cannot change the result.
  auto r = dec.add_point(Fp(9), Fp(12345));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, p);
}

}  // namespace
}  // namespace svss
