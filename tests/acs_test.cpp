// Protocol tests: Agreement on a Common Subset over n parallel ABA
// instances.
//
// Properties: all honest processes output the same subset with identical
// proposals; the subset has >= n - t members; members that some honest
// process vouched for dominate; silent processes can be excluded but never
// split the output.
#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace svss {
namespace {

RunnerConfig cfg(int n, int t, std::uint64_t seed) {
  RunnerConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  c.scheduler = SchedulerKind::kRandom;
  return c;
}

std::vector<Bytes> numbered_proposals(int n) {
  std::vector<Bytes> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Bytes{static_cast<std::uint8_t>(0xA0 + i)});
  }
  return out;
}

TEST(Acs, AllHonestAgreeOnFullSubset) {
  Runner r(cfg(4, 1, 71));
  auto res = r.run_acs(numbered_proposals(4));
  ASSERT_TRUE(res.all_output);
  EXPECT_TRUE(res.agreed);
  const auto& subset = res.outputs.begin()->second;
  EXPECT_GE(static_cast<int>(subset.size()), 3);
  for (const auto& [j, proposal] : subset) {
    ASSERT_EQ(proposal.size(), 1u);
    EXPECT_EQ(proposal[0], 0xA0 + j);
  }
}

TEST(Acs, AgreesAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Runner r(cfg(4, 1, 700 + seed));
    auto res = r.run_acs(numbered_proposals(4));
    ASSERT_TRUE(res.all_output) << seed;
    EXPECT_TRUE(res.agreed) << seed;
    EXPECT_GE(static_cast<int>(res.outputs.begin()->second.size()), 3)
        << seed;
  }
}

TEST(Acs, SilentProcessMayBeExcludedNeverSplits) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto c = cfg(4, 1, 800 + seed);
    c.faults[3] = ByzConfig{ByzKind::kSilent};
    Runner r(c);
    auto res = r.run_acs(numbered_proposals(4));
    ASSERT_TRUE(res.all_output) << seed;
    EXPECT_TRUE(res.agreed) << seed;
    const auto& subset = res.outputs.begin()->second;
    EXPECT_GE(static_cast<int>(subset.size()), 3) << seed;
    // The silent process can never be in the subset: nobody vouched.
    for (const auto& [j, proposal] : subset) EXPECT_NE(j, 3) << seed;
  }
}

TEST(Acs, ByzantineProcessCannotSplitSubset) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto c = cfg(4, 1, 900 + seed);
    c.faults[2] = ByzConfig{ByzKind::kBitFlip, 0, 0.2};
    Runner r(c);
    auto res = r.run_acs(numbered_proposals(4));
    ASSERT_TRUE(res.all_output) << seed;
    EXPECT_TRUE(res.agreed) << seed;
  }
}

TEST(Acs, SevenProcessesTwoSilent) {
  auto c = cfg(7, 2, 72);
  c.faults[5] = ByzConfig{ByzKind::kSilent};
  c.faults[6] = ByzConfig{ByzKind::kSilent};
  Runner r(c);
  auto res = r.run_acs(numbered_proposals(7));
  ASSERT_TRUE(res.all_output);
  EXPECT_TRUE(res.agreed);
  EXPECT_GE(static_cast<int>(res.outputs.begin()->second.size()), 5);
}

TEST(Acs, WorksWithSvssCoin) {
  // Full-stack composition: n ABA instances, each with SVSS coin rounds.
  Runner r(cfg(4, 1, 73));
  auto res = r.run_acs(numbered_proposals(4), CoinMode::kSvss);
  ASSERT_TRUE(res.all_output);
  EXPECT_TRUE(res.agreed);
}

}  // namespace
}  // namespace svss
