// Unit tests: the DMM protocol (Section 3.3) — expectation bookkeeping,
// explicit detection (rules 2-3), discard (rule 4), and the ->_i delay
// order (rule 5).
#include "dmm/dmm.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace svss {
namespace {

class Noop : public IProcess {
 public:
  void start(Context&) override {}
  void on_packet(Context&, int, const Packet&) override {}
};

SessionId mw_sid(std::uint32_t c, int dealer, int moderator) {
  SessionId sid;
  sid.path = SessionPath::kMwTop;
  sid.owner = static_cast<std::int16_t>(dealer);
  sid.moderator = static_cast<std::int16_t>(moderator);
  sid.counter = c;
  return sid;
}

Message mw_msg(const SessionId& sid, MsgType type) {
  Message m;
  m.sid = sid;
  m.type = type;
  return m;
}

struct DmmFixture : public ::testing::Test {
  DmmFixture()
      : engine(4, 1, 1, std::make_unique<FifoScheduler>()),
        ctx(engine, 0),
        dmm(Dmm::Hooks{
            [this](Context&, int suspect, const SessionId& where) {
              shunned.emplace_back(suspect, where);
            },
            [this](Context&, int from, const Message& m, bool via_rb) {
              released.emplace_back(from, m.sid);
              (void)via_rb;
            }}) {
    for (int i = 0; i < 4; ++i) engine.set_process(i, std::make_unique<Noop>());
  }

  Engine engine;
  Context ctx;
  Dmm dmm;
  std::vector<std::pair<int, SessionId>> shunned;
  std::vector<std::pair<int, SessionId>> released;
};

TEST_F(DmmFixture, FreshSenderPassesFilter) {
  EXPECT_TRUE(dmm.filter(ctx, 2, mw_msg(mw_sid(1, 0, 1), MsgType::kMwAck),
                         true));
  EXPECT_EQ(dmm.buffered_messages(), 0u);
}

TEST_F(DmmFixture, AckExpectationResolvedByMatchingBroadcast) {
  SessionId s = mw_sid(1, 0, 1);
  dmm.add_ack_entry(ctx, /*sender=*/2, /*poly=*/3, s, Fp(55));
  EXPECT_EQ(dmm.pending_expectations(2), 1u);
  EXPECT_TRUE(dmm.on_recon_value(ctx, 2, s, 3, Fp(55)));
  EXPECT_EQ(dmm.pending_expectations(2), 0u);
  EXPECT_TRUE(dmm.detected().empty());
}

TEST_F(DmmFixture, AckExpectationViolationDetectsSender) {
  SessionId s = mw_sid(1, 0, 1);
  dmm.add_ack_entry(ctx, 2, 3, s, Fp(55));
  EXPECT_FALSE(dmm.on_recon_value(ctx, 2, s, 3, Fp(56)));
  EXPECT_TRUE(dmm.discards(2));
  ASSERT_EQ(shunned.size(), 1u);
  EXPECT_EQ(shunned[0].first, 2);
  EXPECT_EQ(shunned[0].second, s);
}

TEST_F(DmmFixture, DealExpectationOnlyMatchesOwnPolyIndex) {
  SessionId s = mw_sid(1, 1, 2);
  dmm.add_deal_entry(ctx, 3, s, Fp(7));
  // Broadcast for someone else's polynomial: not our expectation.
  EXPECT_TRUE(dmm.on_recon_value(ctx, 3, s, /*poly=*/2, Fp(999)));
  EXPECT_EQ(dmm.pending_expectations(3), 1u);
  // Our polynomial (self == 0), wrong value: detection.
  EXPECT_FALSE(dmm.on_recon_value(ctx, 3, s, /*poly=*/0, Fp(8)));
  EXPECT_TRUE(dmm.discards(3));
}

TEST_F(DmmFixture, DealExpectationResolvedByMatch) {
  SessionId s = mw_sid(1, 1, 2);
  dmm.add_deal_entry(ctx, 3, s, Fp(7));
  EXPECT_TRUE(dmm.on_recon_value(ctx, 3, s, 0, Fp(7)));
  EXPECT_EQ(dmm.pending_expectations(3), 0u);
}

// Definition 1: discarding starts with sessions ordered after the anchor
// (detection) session.  Concurrent sessions still flow; sessions begun
// after the anchor completed are dropped.
TEST_F(DmmFixture, DiscardAppliesToSessionsAfterTheAnchor) {
  SessionId s = mw_sid(1, 0, 1);
  SessionId concurrent = mw_sid(2, 0, 1);
  SessionId later = mw_sid(3, 0, 1);
  dmm.note_begin(s);
  dmm.note_begin(concurrent);
  dmm.add_ack_entry(ctx, 2, 3, s, Fp(1));
  (void)dmm.on_recon_value(ctx, 2, s, 3, Fp(2));  // detection
  EXPECT_TRUE(dmm.discards(2));
  // Anchor not completed yet: nothing is "after" it.
  EXPECT_FALSE(dmm.discard_applies(2, concurrent));
  dmm.note_complete(s);
  dmm.note_begin(later);
  EXPECT_FALSE(dmm.discard_applies(2, concurrent));
  EXPECT_TRUE(dmm.discard_applies(2, later));
  EXPECT_TRUE(dmm.filter(ctx, 2, mw_msg(concurrent, MsgType::kMwAck), true));
  EXPECT_FALSE(dmm.filter(ctx, 2, mw_msg(later, MsgType::kMwAck), true));
  EXPECT_EQ(dmm.buffered_messages(), 0u);  // discarded, not buffered
}

// Rule 5: messages from a sender with an unresolved expectation in a
// *preceding* session are delayed; sessions begun before the expectation's
// session completed are unaffected.
TEST_F(DmmFixture, DelayAppliesOnlyToLaterSessions) {
  SessionId s1 = mw_sid(1, 0, 1);
  SessionId s2 = mw_sid(2, 0, 1);  // begun before s1 completes
  SessionId s3 = mw_sid(3, 0, 1);  // begun after s1 completes
  dmm.note_begin(s1);
  dmm.note_begin(s2);
  dmm.add_ack_entry(ctx, 2, 3, s1, Fp(5));
  dmm.note_complete(s1);
  dmm.note_begin(s3);

  EXPECT_FALSE(dmm.is_blocked(2, s2));
  EXPECT_TRUE(dmm.is_blocked(2, s3));
  EXPECT_FALSE(dmm.is_blocked(1, s3));  // other senders unaffected

  EXPECT_TRUE(dmm.filter(ctx, 2, mw_msg(s2, MsgType::kMwAck), true));
  EXPECT_FALSE(dmm.filter(ctx, 2, mw_msg(s3, MsgType::kMwAck), true));
  EXPECT_EQ(dmm.buffered_messages(), 1u);
}

TEST_F(DmmFixture, UnbeganSessionsCountAsLater) {
  SessionId s1 = mw_sid(1, 0, 1);
  SessionId s_future = mw_sid(9, 0, 1);  // never begun locally
  dmm.note_begin(s1);
  dmm.add_ack_entry(ctx, 2, 3, s1, Fp(5));
  dmm.note_complete(s1);
  EXPECT_TRUE(dmm.is_blocked(2, s_future));
}

TEST_F(DmmFixture, IncompleteSessionNeverPrecedes) {
  SessionId s1 = mw_sid(1, 0, 1);
  SessionId s2 = mw_sid(2, 0, 1);
  dmm.note_begin(s1);
  dmm.add_ack_entry(ctx, 2, 3, s1, Fp(5));
  // s1 never completes; s2 begins later but is not blocked.
  dmm.note_begin(s2);
  EXPECT_FALSE(dmm.is_blocked(2, s2));
}

TEST_F(DmmFixture, ResolutionReleasesBufferedMessages) {
  SessionId s1 = mw_sid(1, 0, 1);
  SessionId s3 = mw_sid(3, 0, 1);
  dmm.note_begin(s1);
  dmm.add_ack_entry(ctx, 2, 3, s1, Fp(5));
  dmm.note_complete(s1);
  dmm.note_begin(s3);
  EXPECT_FALSE(dmm.filter(ctx, 2, mw_msg(s3, MsgType::kMwAck), true));
  EXPECT_EQ(dmm.buffered_messages(), 1u);

  EXPECT_TRUE(dmm.on_recon_value(ctx, 2, s1, 3, Fp(5)));
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].first, 2);
  EXPECT_EQ(released[0].second, s3);
  EXPECT_EQ(dmm.buffered_messages(), 0u);
}

TEST_F(DmmFixture, DetectionDropsBufferedMessages) {
  SessionId s1 = mw_sid(1, 0, 1);
  SessionId s3 = mw_sid(3, 0, 1);
  dmm.note_begin(s1);
  dmm.add_ack_entry(ctx, 2, 3, s1, Fp(5));
  dmm.note_complete(s1);
  dmm.note_begin(s3);
  (void)dmm.filter(ctx, 2, mw_msg(s3, MsgType::kMwAck), true);
  (void)dmm.on_recon_value(ctx, 2, s1, 3, Fp(6));  // wrong value
  EXPECT_EQ(dmm.buffered_messages(), 0u);
  EXPECT_TRUE(released.empty());
}

// S' step 8: clearing DEAL expectations unblocks.
TEST_F(DmmFixture, ClearDealEntriesReleases) {
  SessionId s1 = mw_sid(1, 1, 2);
  SessionId s3 = mw_sid(3, 1, 2);
  dmm.note_begin(s1);
  dmm.add_deal_entry(ctx, 2, s1, Fp(5));
  dmm.note_complete(s1);
  dmm.note_begin(s3);
  EXPECT_FALSE(dmm.filter(ctx, 2, mw_msg(s3, MsgType::kMwAck), true));
  dmm.clear_deal_entries(ctx, s1);
  EXPECT_EQ(dmm.pending_expectations(2), 0u);
  ASSERT_EQ(released.size(), 1u);
}

TEST_F(DmmFixture, DuplicateEntriesCountedOnce) {
  SessionId s = mw_sid(1, 0, 1);
  dmm.add_ack_entry(ctx, 2, 3, s, Fp(5));
  dmm.add_ack_entry(ctx, 2, 3, s, Fp(5));
  EXPECT_EQ(dmm.pending_expectations(2), 1u);
}

TEST_F(DmmFixture, ShunEventRecordedInLog) {
  SessionId s = mw_sid(1, 0, 1);
  dmm.add_ack_entry(ctx, 2, 3, s, Fp(5));
  (void)dmm.on_recon_value(ctx, 2, s, 3, Fp(6));
  auto pairs = engine.log().shun_pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(0, 2));
}

// The key quantitative fact behind the paper's O(n^2) bound: each (i, j)
// pair can produce at most one explicit detection — D_i is a set.
TEST_F(DmmFixture, RepeatedViolationsDetectOnlyOnce) {
  for (std::uint32_t c = 1; c <= 5; ++c) {
    SessionId s = mw_sid(c, 0, 1);
    dmm.add_ack_entry(ctx, 2, 3, s, Fp(5));
    (void)dmm.on_recon_value(ctx, 2, s, 3, Fp(6));
  }
  EXPECT_EQ(shunned.size(), 1u);
  EXPECT_EQ(engine.log().shun_pairs().size(), 1u);
}

}  // namespace
}  // namespace svss
