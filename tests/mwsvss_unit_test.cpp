// Step-level unit tests for the MW-SVSS state machine (paper S' steps 1-9
// and R' steps 1-4), driven through a mock host without a network.
//
// These complement mwsvss_test.cpp (whole-protocol properties through the
// simulator) by pinning the exact per-step conditions: what each message
// must contain, which arrivals trigger which transitions, and how
// malformed input is rejected.
#include <gtest/gtest.h>

#include "mwsvss/mwsvss.hpp"
#include "sim/scheduler.hpp"

namespace svss {
namespace {

class Noop : public IProcess {
 public:
  void start(Context&) override {}
  void on_packet(Context&, int, const Packet&) override {}
};

// Captures everything a session tries to do.
class MockHost : public MwHost {
 public:
  void rb_broadcast(Context&, const Message& m) override {
    broadcasts.push_back(m);
  }
  void send_direct(Context&, int to, Message m) override {
    directs.emplace_back(to, std::move(m));
  }
  Dmm& dmm() override { return dmm_; }
  void mw_share_completed(Context&, const SessionId&) override {
    share_completed = true;
  }
  void mw_recon_output(Context&, const SessionId&,
                       std::optional<Fp> value) override {
    output = value;
    output_seen = true;
  }

  [[nodiscard]] std::vector<Message> broadcasts_of(MsgType type) const {
    std::vector<Message> out;
    for (const auto& m : broadcasts) {
      if (m.type == type) out.push_back(m);
    }
    return out;
  }
  [[nodiscard]] std::vector<std::pair<int, Message>> directs_of(
      MsgType type) const {
    std::vector<std::pair<int, Message>> out;
    for (const auto& [to, m] : directs) {
      if (m.type == type) out.emplace_back(to, m);
    }
    return out;
  }

  std::vector<Message> broadcasts;
  std::vector<std::pair<int, Message>> directs;
  bool share_completed = false;
  bool output_seen = false;
  std::optional<Fp> output;

 private:
  Dmm dmm_{Dmm::Hooks{nullptr, [](Context&, int, const Message&, bool) {}}};
};

// Fixture: n = 4, t = 1, dealer 0, moderator 1; the session under test
// runs at `self`.
struct MwUnit : public ::testing::Test {
  static constexpr int kN = 4;
  static constexpr int kT = 1;

  MwUnit()
      : engine(kN, kT, 7, std::make_unique<FifoScheduler>()) {
    for (int i = 0; i < kN; ++i) engine.set_process(i, std::make_unique<Noop>());
  }

  SessionId sid() const {
    SessionId s;
    s.path = SessionPath::kMwTop;
    s.owner = 0;
    s.moderator = 1;
    s.counter = 1;
    return s;
  }

  Message msg(MsgType type, FieldVec vals = {}, std::vector<int> ints = {},
              int a = -1) const {
    Message m;
    m.sid = sid();
    m.type = type;
    m.vals = std::move(vals);
    m.ints = std::move(ints);
    m.a = static_cast<std::int16_t>(a);
    return m;
  }

  Engine engine;
  MockHost host;
};

// --- S' step 1: the dealer's message layout ----------------------------
TEST_F(MwUnit, DealerDistributesConsistentShares) {
  Context ctx(engine, 0);
  MwSvssSession dealer(host, sid(), /*self=*/0, kN, kT);
  dealer.deal(ctx, Fp(12345));

  auto shares = host.directs_of(MsgType::kMwDealerShares);
  auto polys = host.directs_of(MsgType::kMwDealerPoly);
  auto wholes = host.directs_of(MsgType::kMwDealerWhole);
  ASSERT_EQ(shares.size(), static_cast<std::size_t>(kN));
  ASSERT_EQ(polys.size(), static_cast<std::size_t>(kN));
  ASSERT_EQ(wholes.size(), 1u);
  EXPECT_EQ(wholes[0].first, 1);  // to the moderator

  // Reconstruct f from the moderator's message and check every invariant:
  // f_l(0) = f(point(l)); shares[j][l] = f_l(point(j)).
  std::vector<std::pair<Fp, Fp>> fpts;
  for (int x = 1; x <= kT + 1; ++x) {
    fpts.emplace_back(Fp(x),
                      wholes[0].second.vals[static_cast<std::size_t>(x - 1)]);
  }
  Polynomial f = Polynomial::interpolate(fpts);
  EXPECT_EQ(f.eval(Fp(0)), Fp(12345));

  for (int l = 0; l < kN; ++l) {
    std::vector<std::pair<Fp, Fp>> lpts;
    for (int x = 1; x <= kT + 1; ++x) {
      lpts.emplace_back(
          Fp(x),
          polys[static_cast<std::size_t>(l)].second.vals[static_cast<std::size_t>(x - 1)]);
    }
    Polynomial fl = Polynomial::interpolate(lpts);
    EXPECT_EQ(fl.eval(Fp(0)), f.eval(point(l))) << l;
    for (int j = 0; j < kN; ++j) {
      EXPECT_EQ(shares[static_cast<std::size_t>(j)]
                    .second.vals[static_cast<std::size_t>(l)],
                fl.eval(point(j)))
          << j << "," << l;
    }
  }
}

TEST_F(MwUnit, OnlyTheDealerCanDeal) {
  Context ctx(engine, 2);
  MwSvssSession session(host, sid(), /*self=*/2, kN, kT);
  session.deal(ctx, Fp(1));
  EXPECT_TRUE(host.directs.empty());
  EXPECT_TRUE(host.broadcasts.empty());
}

// --- S' step 2: echo requires both dealer messages ----------------------
TEST_F(MwUnit, EchoOnlyAfterSharesAndPolynomial) {
  Context ctx(engine, 2);
  MwSvssSession session(host, sid(), /*self=*/2, kN, kT);
  session.on_direct(ctx, 0, msg(MsgType::kMwDealerShares,
                                {Fp(1), Fp(2), Fp(3), Fp(4)}));
  EXPECT_TRUE(host.directs_of(MsgType::kMwEchoVal).empty());
  EXPECT_TRUE(host.broadcasts_of(MsgType::kMwAck).empty());

  session.on_direct(ctx, 0, msg(MsgType::kMwDealerPoly, {Fp(10), Fp(20)}));
  auto echoes = host.directs_of(MsgType::kMwEchoVal);
  ASSERT_EQ(echoes.size(), static_cast<std::size_t>(kN));
  // Echo to l carries the value the dealer claimed for f_l(self).
  for (int l = 0; l < kN; ++l) {
    EXPECT_EQ(echoes[static_cast<std::size_t>(l)].first, l);
    EXPECT_EQ(echoes[static_cast<std::size_t>(l)].second.vals[0], Fp(l + 1));
  }
  EXPECT_EQ(host.broadcasts_of(MsgType::kMwAck).size(), 1u);
}

TEST_F(MwUnit, MalformedDealerMessagesIgnored) {
  Context ctx(engine, 2);
  MwSvssSession session(host, sid(), /*self=*/2, kN, kT);
  // Wrong vector sizes.
  session.on_direct(ctx, 0, msg(MsgType::kMwDealerShares, {Fp(1)}));
  session.on_direct(ctx, 0, msg(MsgType::kMwDealerPoly, {Fp(1), Fp(2), Fp(3)}));
  // Wrong sender.
  session.on_direct(ctx, 3, msg(MsgType::kMwDealerShares,
                                {Fp(1), Fp(2), Fp(3), Fp(4)}));
  EXPECT_TRUE(host.directs.empty());
  EXPECT_TRUE(host.broadcasts.empty());
}

// --- S' steps 3-4: confirmations, DEAL entries, the L broadcast ---------
struct MwMonitorFixture : public MwUnit {
  // Drives `session` (self = 2) to the L-broadcast: my_poly is y(x) = c + x
  // style polynomial derived from the dealer's messages below.
  void feed_dealer_and_confirmers(Context& ctx, MwSvssSession& session) {
    // my_poly f_2 with f_2(x) interpolating (1,11),(2,22): degree 1.
    session.on_direct(ctx, 0, msg(MsgType::kMwDealerPoly, {Fp(11), Fp(22)}));
    std::vector<std::pair<Fp, Fp>> pts{{Fp(1), Fp(11)}, {Fp(2), Fp(22)}};
    my_poly = Polynomial::interpolate(pts);
    session.on_direct(ctx, 0,
                      msg(MsgType::kMwDealerShares,
                          {Fp(5), Fp(6), my_poly.eval(point(2)), Fp(8)}));
    // Confirmers 0, 1, 3 echo correct values of f_2 at their points and
    // publicly ack.
    for (int l : {0, 1, 3}) {
      session.on_direct(ctx, l,
                        msg(MsgType::kMwEchoVal, {my_poly.eval(point(l))}));
      session.on_broadcast(ctx, l, msg(MsgType::kMwAck));
    }
  }
  Polynomial my_poly;
};

TEST_F(MwMonitorFixture, LBroadcastAfterEnoughConfirmations) {
  Context ctx(engine, 2);
  MwSvssSession session(host, sid(), /*self=*/2, kN, kT);
  feed_dealer_and_confirmers(ctx, session);
  auto lsets = host.broadcasts_of(MsgType::kMwLset);
  ASSERT_EQ(lsets.size(), 1u);
  // 0, 1, 3 plus self (echo to self happens via the network normally; here
  // self never echoed, so L = {0,1,3} of size n-t).
  EXPECT_EQ(lsets[0].ints, (std::vector<int>{0, 1, 3}));
  // The monitored point goes to the moderator.
  auto mv = host.directs_of(MsgType::kMwMonitorVal);
  ASSERT_EQ(mv.size(), 1u);
  EXPECT_EQ(mv[0].first, 1);
  EXPECT_EQ(mv[0].second.vals[0], my_poly.eval(Fp(0)));
  // DEAL expectations were registered for every confirmer.
  EXPECT_EQ(host.dmm().pending_expectations(0), 1u);
  EXPECT_EQ(host.dmm().pending_expectations(3), 1u);
}

TEST_F(MwMonitorFixture, WrongEchoValueNeverConfirms) {
  Context ctx(engine, 2);
  MwSvssSession session(host, sid(), /*self=*/2, kN, kT);
  session.on_direct(ctx, 0, msg(MsgType::kMwDealerPoly, {Fp(11), Fp(22)}));
  std::vector<std::pair<Fp, Fp>> pts{{Fp(1), Fp(11)}, {Fp(2), Fp(22)}};
  Polynomial my_poly = Polynomial::interpolate(pts);
  session.on_direct(ctx, 0,
                    msg(MsgType::kMwDealerShares,
                        {Fp(5), Fp(6), my_poly.eval(point(2)), Fp(8)}));
  for (int l : {0, 1, 3}) {
    // Echo values off by one: step 3's equality check fails.
    session.on_direct(
        ctx, l, msg(MsgType::kMwEchoVal, {my_poly.eval(point(l)) + Fp(1)}));
    session.on_broadcast(ctx, l, msg(MsgType::kMwAck));
  }
  EXPECT_TRUE(host.broadcasts_of(MsgType::kMwLset).empty());
  EXPECT_EQ(host.dmm().pending_expectations(0), 0u);
}

TEST_F(MwMonitorFixture, EchoWithoutAckDoesNotConfirm) {
  Context ctx(engine, 2);
  MwSvssSession session(host, sid(), /*self=*/2, kN, kT);
  session.on_direct(ctx, 0, msg(MsgType::kMwDealerPoly, {Fp(11), Fp(22)}));
  std::vector<std::pair<Fp, Fp>> pts{{Fp(1), Fp(11)}, {Fp(2), Fp(22)}};
  Polynomial my_poly = Polynomial::interpolate(pts);
  session.on_direct(ctx, 0,
                    msg(MsgType::kMwDealerShares,
                        {Fp(5), Fp(6), my_poly.eval(point(2)), Fp(8)}));
  for (int l : {0, 1, 3}) {
    session.on_direct(ctx, l,
                      msg(MsgType::kMwEchoVal, {my_poly.eval(point(l))}));
  }
  EXPECT_TRUE(host.broadcasts_of(MsgType::kMwLset).empty());
}

// --- validation of set broadcasts ---------------------------------------
TEST_F(MwUnit, UndersizedOrInvalidSetsRejected) {
  Context ctx(engine, 2);
  MwSvssSession session(host, sid(), /*self=*/2, kN, kT);
  // L set too small.
  session.on_broadcast(ctx, 3, msg(MsgType::kMwLset, {}, {0, 1}));
  // M set from a non-moderator.
  session.on_broadcast(ctx, 3, msg(MsgType::kMwMset, {}, {0, 1, 2}));
  // M set with duplicate ids.
  session.on_broadcast(ctx, 1, msg(MsgType::kMwMset, {}, {0, 0, 2}));
  // M set with out-of-range ids.
  session.on_broadcast(ctx, 1, msg(MsgType::kMwMset, {}, {0, 2, 9}));
  // OK from a non-dealer.
  session.on_broadcast(ctx, 1, msg(MsgType::kMwOk));
  EXPECT_FALSE(session.share_complete());
  EXPECT_TRUE(host.broadcasts.empty());
}

// --- S' step 8: dropping DEAL expectations when outside M-hat ------------
TEST_F(MwMonitorFixture, OutsideMhatClearsDealExpectations) {
  Context ctx(engine, 2);
  MwSvssSession session(host, sid(), /*self=*/2, kN, kT);
  feed_dealer_and_confirmers(ctx, session);
  ASSERT_EQ(host.dmm().pending_expectations(0), 1u);
  // Moderator publishes M-hat without self (2).
  session.on_broadcast(ctx, 1, msg(MsgType::kMwMset, {}, {0, 1, 3}));
  EXPECT_EQ(host.dmm().pending_expectations(0), 0u);
  EXPECT_EQ(host.dmm().pending_expectations(3), 0u);
}

// --- moderator steps 5-6 -------------------------------------------------
TEST_F(MwUnit, ModeratorRejectsDealerWithWrongSecret) {
  Context ctx(engine, 1);
  MwSvssSession session(host, sid(), /*self=*/1, kN, kT);
  session.set_moderator_input(ctx, Fp(999));
  // Dealer's f has f(0) = 123 != 999: interpolates (1,124),(2,125).
  session.on_direct(ctx, 0, msg(MsgType::kMwDealerWhole, {Fp(124), Fp(125)}));
  // Even with plausible monitor values and L sets, M must never form.
  for (int j : {0, 2, 3}) {
    session.on_direct(ctx, j, msg(MsgType::kMwMonitorVal, {Fp(j + 124)}));
    session.on_broadcast(ctx, j, msg(MsgType::kMwLset, {}, {0, 2, 3}));
  }
  for (int l : {0, 2, 3}) session.on_broadcast(ctx, l, msg(MsgType::kMwAck));
  EXPECT_TRUE(host.broadcasts_of(MsgType::kMwMset).empty());
}

TEST_F(MwUnit, ModeratorAcceptsConsistentMonitors) {
  Context ctx(engine, 1);
  MwSvssSession session(host, sid(), /*self=*/1, kN, kT);
  // f interpolating (1,11),(2,22) => f(0) = 0; moderator input matches.
  std::vector<std::pair<Fp, Fp>> pts{{Fp(1), Fp(11)}, {Fp(2), Fp(22)}};
  Polynomial f = Polynomial::interpolate(pts);
  session.set_moderator_input(ctx, f.eval(Fp(0)));
  session.on_direct(ctx, 0, msg(MsgType::kMwDealerWhole, {Fp(11), Fp(22)}));
  for (int j : {0, 2, 3}) {
    session.on_direct(ctx, j,
                      msg(MsgType::kMwMonitorVal, {f.eval(point(j))}));
    session.on_broadcast(ctx, j, msg(MsgType::kMwLset, {}, {0, 2, 3}));
  }
  for (int l : {0, 2, 3}) session.on_broadcast(ctx, l, msg(MsgType::kMwAck));
  auto msets = host.broadcasts_of(MsgType::kMwMset);
  ASSERT_EQ(msets.size(), 1u);
  EXPECT_EQ(msets[0].ints, (std::vector<int>{0, 2, 3}));
}

TEST_F(MwUnit, ModeratorRejectsMonitorValueMismatch) {
  Context ctx(engine, 1);
  MwSvssSession session(host, sid(), /*self=*/1, kN, kT);
  std::vector<std::pair<Fp, Fp>> pts{{Fp(1), Fp(11)}, {Fp(2), Fp(22)}};
  Polynomial f = Polynomial::interpolate(pts);
  session.set_moderator_input(ctx, f.eval(Fp(0)));
  session.on_direct(ctx, 0, msg(MsgType::kMwDealerWhole, {Fp(11), Fp(22)}));
  for (int j : {0, 2, 3}) {
    // Monitor 2 lies about its point.
    Fp v = f.eval(point(j)) + (j == 2 ? Fp(1) : Fp(0));
    session.on_direct(ctx, j, msg(MsgType::kMwMonitorVal, {v}));
    session.on_broadcast(ctx, j, msg(MsgType::kMwLset, {}, {0, 2, 3}));
  }
  for (int l : {0, 2, 3}) session.on_broadcast(ctx, l, msg(MsgType::kMwAck));
  // Only 2 acceptable monitors < n - t: no M broadcast.
  EXPECT_TRUE(host.broadcasts_of(MsgType::kMwMset).empty());
}

// --- step 9 completion requires the full transcript ----------------------
TEST_F(MwUnit, CompletionNeedsOkMsetLsetsAndAcks) {
  Context ctx(engine, 3);
  MwSvssSession session(host, sid(), /*self=*/3, kN, kT);
  session.on_broadcast(ctx, 1, msg(MsgType::kMwMset, {}, {0, 1, 2}));
  EXPECT_FALSE(session.share_complete());
  session.on_broadcast(ctx, 0, msg(MsgType::kMwOk));
  EXPECT_FALSE(session.share_complete());
  for (int l : {0, 1, 2}) {
    session.on_broadcast(ctx, l, msg(MsgType::kMwLset, {}, {0, 1, 2}));
  }
  EXPECT_FALSE(session.share_complete());  // acks still missing
  for (int k : {0, 1}) session.on_broadcast(ctx, k, msg(MsgType::kMwAck));
  EXPECT_FALSE(session.share_complete());
  session.on_broadcast(ctx, 2, msg(MsgType::kMwAck));
  EXPECT_TRUE(session.share_complete());
  EXPECT_TRUE(host.share_completed);
}

// --- R': output computation ----------------------------------------------
TEST_F(MwUnit, ReconstructOutputsSecretFromConsistentValues) {
  // Observer 3 completed the share phase with M-hat = {0,1,2}; all recon
  // values are consistent with a line f, so the output is f(0).
  Context ctx(engine, 3);
  MwSvssSession session(host, sid(), /*self=*/3, kN, kT);
  // Underlying f with f(0) = 500: f(x) = 500 + x.
  Polynomial f(FieldVec{Fp(500), Fp(1)});
  // Monitored polys f_l with f_l(0) = f(point(l)): f_l(x) = f(l+1) + x.
  auto fl = [&](int l) {
    return Polynomial(FieldVec{f.eval(point(l)), Fp(1)});
  };
  session.on_broadcast(ctx, 1, msg(MsgType::kMwMset, {}, {0, 1, 2}));
  session.on_broadcast(ctx, 0, msg(MsgType::kMwOk));
  for (int l : {0, 1, 2}) {
    session.on_broadcast(ctx, l, msg(MsgType::kMwLset, {}, {0, 1, 2}));
  }
  for (int k : {0, 1, 2}) session.on_broadcast(ctx, k, msg(MsgType::kMwAck));
  ASSERT_TRUE(session.share_complete());

  session.start_reconstruct(ctx);
  for (int l : {0, 1, 2}) {
    for (int k : {0, 1}) {  // t + 1 = 2 points suffice
      session.on_broadcast(
          ctx, k, msg(MsgType::kMwReconVal, {fl(l).eval(point(k))}, {}, l));
    }
  }
  ASSERT_TRUE(session.has_output());
  ASSERT_TRUE(session.output().has_value());
  EXPECT_EQ(*session.output(), Fp(500));
  EXPECT_TRUE(host.output_seen);
}

TEST_F(MwUnit, ReconstructOutputsBottomOnInconsistentMonitors) {
  Context ctx(engine, 3);
  MwSvssSession session(host, sid(), /*self=*/3, kN, kT);
  session.on_broadcast(ctx, 1, msg(MsgType::kMwMset, {}, {0, 1, 2}));
  session.on_broadcast(ctx, 0, msg(MsgType::kMwOk));
  for (int l : {0, 1, 2}) {
    session.on_broadcast(ctx, l, msg(MsgType::kMwLset, {}, {0, 1, 2}));
  }
  for (int k : {0, 1, 2}) session.on_broadcast(ctx, k, msg(MsgType::kMwAck));
  session.start_reconstruct(ctx);
  // Monitored points 7, 7, 9999 at x = 1,2,3 do not lie on a line... they
  // always do for 3 points of degree 1?  No: degree bound t = 1 means the
  // three points (1,c0),(2,c1),(3,c2) must be collinear; pick them not so.
  FieldVec consts{Fp(7), Fp(8), Fp(9999)};
  for (int l : {0, 1, 2}) {
    Polynomial fl(FieldVec{consts[static_cast<std::size_t>(l)], Fp(1)});
    for (int k : {0, 1}) {
      session.on_broadcast(
          ctx, k, msg(MsgType::kMwReconVal, {fl.eval(point(k))}, {}, l));
    }
  }
  ASSERT_TRUE(session.has_output());
  EXPECT_FALSE(session.output().has_value());  // bottom
}

TEST_F(MwUnit, ReconValuesFromOutsideLhatIgnored) {
  Context ctx(engine, 3);
  MwSvssSession session(host, sid(), /*self=*/3, kN, kT);
  session.on_broadcast(ctx, 1, msg(MsgType::kMwMset, {}, {0, 1, 2}));
  session.on_broadcast(ctx, 0, msg(MsgType::kMwOk));
  for (int l : {0, 1, 2}) {
    session.on_broadcast(ctx, l, msg(MsgType::kMwLset, {}, {0, 1, 2}));
  }
  for (int k : {0, 1, 2}) session.on_broadcast(ctx, k, msg(MsgType::kMwAck));
  session.start_reconstruct(ctx);
  // Process 3 is not in any L-hat: its values must not count.
  for (int l : {0, 1, 2}) {
    session.on_broadcast(ctx, 3,
                         msg(MsgType::kMwReconVal, {Fp(1)}, {}, l));
  }
  EXPECT_FALSE(session.has_output());
}

TEST_F(MwUnit, CompactKeepsOutputs) {
  Context ctx(engine, 3);
  MwSvssSession session(host, sid(), /*self=*/3, kN, kT);
  session.on_broadcast(ctx, 1, msg(MsgType::kMwMset, {}, {0, 1, 2}));
  session.on_broadcast(ctx, 0, msg(MsgType::kMwOk));
  for (int l : {0, 1, 2}) {
    session.on_broadcast(ctx, l, msg(MsgType::kMwLset, {}, {0, 1, 2}));
  }
  for (int k : {0, 1, 2}) session.on_broadcast(ctx, k, msg(MsgType::kMwAck));
  session.start_reconstruct(ctx);
  Polynomial f(FieldVec{Fp(500), Fp(1)});
  auto fl = [&](int l) {
    return Polynomial(FieldVec{f.eval(point(l)), Fp(1)});
  };
  for (int l : {0, 1, 2}) {
    for (int k : {0, 1}) {
      session.on_broadcast(
          ctx, k, msg(MsgType::kMwReconVal, {fl(l).eval(point(k))}, {}, l));
    }
  }
  ASSERT_TRUE(session.has_output());
  session.compact();
  EXPECT_TRUE(session.share_complete());
  ASSERT_TRUE(session.output().has_value());
  EXPECT_EQ(*session.output(), Fp(500));
}

}  // namespace
}  // namespace svss
