// Protocol tests: ASMPC secure sum (the paper's Section 6 extension).
//
// Correctness: every honest process outputs the same value, equal to the
// sum of the inputs of the agreed core; the core has >= n - t members and
// always contains all honest parties whose sharing completed.  Privacy is
// structural (only summed points are ever broadcast) and is checked at the
// algebra level in bivariate_test; here we validate the end-to-end
// functionality under faults.
#include <gtest/gtest.h>

#include <numeric>

#include "core/runner.hpp"

namespace svss {
namespace {

RunnerConfig cfg(int n, int t, std::uint64_t seed) {
  RunnerConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  return c;
}

std::uint64_t expected_sum(const std::vector<Fp>& inputs,
                           const std::set<int>& core) {
  Fp sum(0);
  for (int d : core) sum += inputs[static_cast<std::size_t>(d)];
  return sum.value();
}

TEST(SecureSum, AllHonestSumsEveryInput) {
  std::vector<Fp> inputs{Fp(10), Fp(20), Fp(31), Fp(44)};
  Runner r(cfg(4, 1, 81));
  auto res = r.run_secure_sum(inputs);
  ASSERT_TRUE(res.all_output);
  EXPECT_TRUE(res.agreed);
  const auto& core = res.cores.begin()->second;
  EXPECT_GE(static_cast<int>(core.size()), 3);
  EXPECT_EQ(res.outputs.begin()->second, expected_sum(inputs, core));
}

TEST(SecureSum, AgreementAcrossSeeds) {
  std::vector<Fp> inputs{Fp(7), Fp(100), Fp(3000), Fp(99999)};
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Runner r(cfg(4, 1, 8000 + seed));
    auto res = r.run_secure_sum(inputs);
    ASSERT_TRUE(res.all_output) << seed;
    ASSERT_TRUE(res.agreed) << seed;
    // Every honest process reports the same core and the matching sum.
    for (const auto& [i, core] : res.cores) {
      EXPECT_EQ(core, res.cores.begin()->second) << seed;
    }
    EXPECT_EQ(res.outputs.begin()->second,
              expected_sum(inputs, res.cores.begin()->second))
        << seed;
  }
}

TEST(SecureSum, SilentPartyExcludedFromSum) {
  std::vector<Fp> inputs{Fp(1), Fp(2), Fp(4), Fp(8)};
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto c = cfg(4, 1, 8100 + seed);
    c.faults[3] = ByzConfig{ByzKind::kSilent};
    Runner r(c);
    auto res = r.run_secure_sum(inputs);
    ASSERT_TRUE(res.all_output) << seed;
    ASSERT_TRUE(res.agreed) << seed;
    const auto& core = res.cores.begin()->second;
    EXPECT_EQ(core.count(3), 0u) << seed;  // never shared -> never included
    EXPECT_EQ(res.outputs.begin()->second, expected_sum(inputs, core))
        << seed;
  }
}

// A party that lies in the *reveal* phase (wrong summed point) is
// corrected by online error correction: the output is still the true sum.
TEST(SecureSum, RevealPhaseLiesCorrectedByOec) {
  std::vector<Fp> inputs{Fp(5), Fp(6), Fp(7), Fp(8)};
  int corrected_runs = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto c = cfg(4, 1, 8200 + seed);
    // kBitFlip corrupts field values in outbound messages, including the
    // kSumPoint broadcast, with high probability.
    c.faults[3] = ByzConfig{ByzKind::kBitFlip, 0, 0.9};
    Runner r(c);
    auto res = r.run_secure_sum(inputs);
    if (!res.all_output) continue;  // input sharing itself may stall
    ASSERT_TRUE(res.agreed) << seed;
    const auto& core = res.cores.begin()->second;
    EXPECT_EQ(res.outputs.begin()->second, expected_sum(inputs, core))
        << seed;
    ++corrected_runs;
  }
  EXPECT_GT(corrected_runs, 0);
}

TEST(SecureSum, SevenParties) {
  std::vector<Fp> inputs;
  for (int i = 0; i < 7; ++i) inputs.push_back(Fp(1 << i));
  auto c = cfg(7, 2, 83);
  c.faults[6] = ByzConfig{ByzKind::kSilent};
  Runner r(c);
  auto res = r.run_secure_sum(inputs);
  ASSERT_TRUE(res.all_output);
  ASSERT_TRUE(res.agreed);
  EXPECT_EQ(res.outputs.begin()->second,
            expected_sum(inputs, res.cores.begin()->second));
}

TEST(SecureSum, SumWrapsInField) {
  // Inputs summing beyond the modulus reduce correctly.
  std::int64_t big = static_cast<std::int64_t>(Fp::kModulus) - 3;
  std::vector<Fp> inputs{Fp(big), Fp(big), Fp(big), Fp(big)};
  Runner r(cfg(4, 1, 84));
  auto res = r.run_secure_sum(inputs);
  ASSERT_TRUE(res.all_output);
  const auto& core = res.cores.begin()->second;
  EXPECT_EQ(res.outputs.begin()->second, expected_sum(inputs, core));
}

}  // namespace
}  // namespace svss
