// Per-strategy tests for the protocol-level adversary subsystem
// (src/adversary/): each strategy runs in isolation inside a full Runner
// experiment, honest processes must still reach their goal, and the
// strategy's deviation must be *observably emitted* (no vacuous passes —
// a test that never exercises the attack proves nothing).
#include "adversary/adversary.hpp"

#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace svss {
namespace {

using adversary::AdversaryConfig;
using adversary::StrategyKind;

std::vector<int> mixed_inputs(int n) {
  std::vector<int> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(i % 2);
  return inputs;
}

RunnerConfig base_config(int n, std::uint64_t seed) {
  RunnerConfig cfg;
  cfg.n = n;
  cfg.t = (n - 1) / 3;
  cfg.seed = seed;
  cfg.max_deliveries = 20'000'000;
  return cfg;
}

void expect_honest_decision(Runner& r, const Runner::AbaResult& res) {
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  bool justified = false;
  for (int i : r.honest_ids()) {
    if (i % 2 == res.value) justified = true;  // mixed_inputs pattern
  }
  EXPECT_TRUE(justified) << "decision " << res.value
                         << " not justified by any honest input";
  EXPECT_FALSE(res.metrics.capped);
}

// ------------------------------------------------------------------
// EquivocatingDealer
// ------------------------------------------------------------------
TEST(EquivocatingDealer, HonestProcessesDecideDespiteSplitBrain) {
  auto cfg = base_config(4, 91);
  adversary::install_adversary(
      cfg, 3, AdversaryConfig{StrategyKind::kEquivocatingDealer, 0});
  Runner r(cfg);
  auto res = r.run_aba(mixed_inputs(4), CoinMode::kSvss);
  expect_honest_decision(r, res);

  const StrategyStats& st = r.adversary(3)->stats();
  EXPECT_GT(st.inbound, 0u);
  // Both forks actually spoke: fork 1's traffic (the equivocation) was
  // emitted, and the partition filter really suppressed cross-half sends.
  EXPECT_GT(st.forked, 0u);
  EXPECT_GT(st.emitted, st.forked);
  EXPECT_GT(st.withheld, 0u);
}

TEST(EquivocatingDealer, SlotIsNotAnHonestNode) {
  auto cfg = base_config(4, 92);
  adversary::install_adversary(
      cfg, 3, AdversaryConfig{StrategyKind::kEquivocatingDealer, 0});
  Runner r(cfg);
  EXPECT_FALSE(r.is_honest(3));
  EXPECT_NE(r.adversary(3), nullptr);
  EXPECT_EQ(r.adversary(0), nullptr);
  EXPECT_STREQ(r.adversary(3)->strategy_name(), "equivocating-dealer");
  EXPECT_THROW(r.node(3), std::logic_error);
}

// As the *top-level SVSS dealer* the split-brain process deals two
// distinct bivariate polynomials, one per half.  With a faulty dealer the
// share phase need not complete — what must survive is safety: honest
// processes never reconstruct conflicting values in a completed session.
// Here we only pin down that the dealer's forked dealings actually go out
// and the run stays bounded (termination of the harness, not the session).
TEST(EquivocatingDealer, ForkedDealingsAreEmitted) {
  auto cfg = base_config(4, 93);
  cfg.max_deliveries = 300'000;
  cfg.warn_on_cap = false;  // a stalled faulty-dealer session is expected
  adversary::install_adversary(
      cfg, 0, AdversaryConfig{StrategyKind::kEquivocatingDealer, 0});
  Runner r(cfg);
  auto res = r.run_svss(Fp(1234), /*dealer=*/0, /*reconstruct=*/false);
  const StrategyStats& st = r.adversary(0)->stats();
  EXPECT_GT(st.forked, 0u);
  EXPECT_GT(st.withheld, 0u);
  // Honest processes must never be *wrong*, though they may be stuck.
  for (int i : r.honest_ids()) {
    const SvssSession* s = r.node(i).find_svss(svss_top_id(1, 0));
    if (s != nullptr && s->has_output()) {
      ADD_FAILURE() << "reconstruct output without reconstruct phase";
    }
  }
  (void)res;
}

// ------------------------------------------------------------------
// AdaptiveShunAware
// ------------------------------------------------------------------
// Whether a given seed's run ever reaches the reconstruct phase (where
// this strategy's attack surface lives) depends on the schedule — a round-1
// decision never reconstructs anything.  Honest decisions must hold for
// *every* seed; the full attack chain (corrupt -> accused -> hide) must
// fire for *some* seed in a small window, or the test is vacuous.
TEST(AdaptiveShunAware, CorruptsReconUntilAccusedThenHides) {
  bool chain_observed = false;
  for (std::uint64_t seed = 77; seed < 87 && !chain_observed; ++seed) {
    auto cfg = base_config(4, seed);
    adversary::install_adversary(
        cfg, 3, AdversaryConfig{StrategyKind::kAdaptiveShunAware, 0});
    Runner r(cfg);
    auto res = r.run_aba(mixed_inputs(4), CoinMode::kSvss);
    expect_honest_decision(r, res);

    const StrategyStats& st = r.adversary(3)->stats();
    bool accused = false;
    for (const auto& [who, whom] : res.shun_pairs) {
      if (whom == 3) accused = true;
      (void)who;
    }
    // Corrupted recon broadcasts went out, an honest process accused the
    // slot, and the strategy saw it and switched to honest behaviour.
    chain_observed = st.mutated > 0 && accused && st.adapted;
  }
  EXPECT_TRUE(chain_observed)
      << "attack chain (mutate -> accusation -> adapt) never fired";
}

// ------------------------------------------------------------------
// WithholdingModerator
// ------------------------------------------------------------------
TEST(WithholdingModerator, CoinRoundSurvivesWithheldMsets) {
  auto cfg = base_config(4, 55);
  adversary::install_adversary(
      cfg, 3, AdversaryConfig{StrategyKind::kWithholdingModerator, 0});
  Runner r(cfg);
  auto res = r.run_coin(1);
  EXPECT_TRUE(res.all_output);
  EXPECT_TRUE(res.agreed);
  EXPECT_FALSE(res.metrics.capped);

  const StrategyStats& st = r.adversary(3)->stats();
  EXPECT_GT(st.withheld, 0u) << "no M-set was ever withheld (vacuous run)";
  EXPECT_GT(st.emitted, 0u) << "slot was silent, not merely withholding";
}

TEST(WithholdingModerator, AgreementSurvivesWithheldMsets) {
  auto cfg = base_config(4, 56);
  adversary::install_adversary(
      cfg, 3, AdversaryConfig{StrategyKind::kWithholdingModerator, 0});
  Runner r(cfg);
  auto res = r.run_aba(mixed_inputs(4), CoinMode::kSvss);
  expect_honest_decision(r, res);
  EXPECT_GT(r.adversary(3)->stats().withheld, 0u);
}

// ------------------------------------------------------------------
// ColludingCabal
// ------------------------------------------------------------------
TEST(ColludingCabal, SharedViewCoordinatesTwoMembers) {
  auto cfg = base_config(7, 40);
  adversary::install_cabal(cfg, {5, 6});
  Runner r(cfg);
  auto res = r.run_aba(mixed_inputs(7), CoinMode::kIdealCommon);
  expect_honest_decision(r, res);
  // Both members act; the shared view exists (members exempt each other,
  // so the lie is consistent inside the cabal).
  EXPECT_GT(r.adversary(5)->stats().inbound, 0u);
  EXPECT_GT(r.adversary(6)->stats().inbound, 0u);
}

TEST(ColludingCabal, PerturbsLowerHalfInFullStackRun) {
  auto cfg = base_config(4, 41);
  adversary::install_cabal(cfg, {3});
  Runner r(cfg);
  auto res = r.run_aba(mixed_inputs(4), CoinMode::kSvss);
  expect_honest_decision(r, res);
  EXPECT_GT(r.adversary(3)->stats().mutated, 0u)
      << "cabal never presented a false view (vacuous run)";
}

TEST(ColludingCabal, CoordinatedSilenceIsSimultaneous) {
  auto cfg = base_config(7, 42);
  adversary::install_cabal(cfg, {5, 6},
                           AdversaryConfig{StrategyKind::kColludingCabal,
                                           /*silence_after=*/100});
  Runner r(cfg);
  auto res = r.run_aba(mixed_inputs(7), CoinMode::kIdealCommon);
  expect_honest_decision(r, res);
  // Both members hit the shared clock and fell silent.
  EXPECT_GT(r.adversary(5)->stats().withheld, 0u);
  EXPECT_GT(r.adversary(6)->stats().withheld, 0u);
}

// ------------------------------------------------------------------
// EquivocatingAcsProposer — the catalogue's ACS-targeted strategy
// ------------------------------------------------------------------
// Split-brain at the common-subset layer: the two forks propose different
// bytes, one per half of the system.  Honest processes must still agree on
// one subset; if the proposer's slot made it into the subset, every honest
// process must hold the *same* proposal bytes for it (RB delivered exactly
// one of the two stories, or none — never both).
TEST(EquivocatingAcsProposer, HonestSubsetAgreesDespiteForkedProposals) {
  auto cfg = base_config(4, 210);
  adversary::install_adversary(
      cfg, 3, AdversaryConfig{StrategyKind::kEquivocatingAcsProposer, 0});
  Runner r(cfg);
  std::vector<Bytes> proposals;
  for (int i = 0; i < 4; ++i) {
    proposals.push_back(Bytes{static_cast<std::uint8_t>(0x10 + i)});
  }
  auto res = r.run_acs(proposals);
  EXPECT_TRUE(res.all_output);
  EXPECT_TRUE(res.agreed) << "honest subsets diverged";
  EXPECT_FALSE(res.metrics.capped);
  ASSERT_FALSE(res.outputs.empty());
  // The subset must contain every honest proposal unchanged; slot 3's
  // entry, if present, is one consistent choice everywhere (agreement on
  // the full output map is already asserted above).
  const auto& subset = res.outputs.begin()->second;
  EXPECT_GE(static_cast<int>(subset.size()), 3);
  for (const auto& [member, blob] : subset) {
    if (member < 3) EXPECT_EQ(blob, proposals[static_cast<std::size_t>(member)]);
  }

  // Non-vacuity: both forks spoke, the partition suppressed cross-half
  // traffic, and the forked proposal broadcast was actually rewritten.
  const StrategyStats& st = r.adversary(3)->stats();
  EXPECT_GT(st.forked, 0u);
  EXPECT_GT(st.withheld, 0u);
  EXPECT_GT(st.mutated, 0u) << "fork 1 never emitted a diverging proposal";
}

// The strategy name is reachable through the factory (catalogue hygiene).
TEST(EquivocatingAcsProposer, FactoryAndNameWired) {
  auto cfg = base_config(4, 211);
  adversary::install_adversary(
      cfg, 3, AdversaryConfig{StrategyKind::kEquivocatingAcsProposer, 0});
  Runner r(cfg);
  ASSERT_NE(r.adversary(3), nullptr);
  EXPECT_STREQ(r.adversary(3)->strategy_name(), "equivocating-acs-proposer");
}

// ------------------------------------------------------------------
// Composition with ByzConfig wire interceptors
// ------------------------------------------------------------------
TEST(AdversaryComposition, WireInterceptorStacksOnStrategy) {
  // A fast schedule can decide before the slot ever moderates an M-set;
  // honest decisions must hold for every seed, the withholding must fire
  // for some seed in the window.
  bool withheld_somewhere = false;
  for (std::uint64_t seed = 60; seed < 70 && !withheld_somewhere; ++seed) {
    auto cfg = base_config(4, seed);
    adversary::install_adversary(
        cfg, 3, AdversaryConfig{StrategyKind::kWithholdingModerator, 0});
    // The same slot additionally flips bits on the wire: the strategy's
    // outbound gate runs first, the ByzConfig interceptor mutates whatever
    // it lets through.
    ByzConfig wire{ByzKind::kBitFlip};
    wire.flip_prob = 0.02;
    cfg.faults[3] = wire;
    Runner r(cfg);
    EXPECT_FALSE(r.is_honest(3));
    auto res = r.run_aba(mixed_inputs(4), CoinMode::kSvss);
    expect_honest_decision(r, res);
    withheld_somewhere = r.adversary(3)->stats().withheld > 0;
  }
  EXPECT_TRUE(withheld_somewhere) << "no M-set was ever withheld (vacuous)";
}

}  // namespace
}  // namespace svss
