// Unit tests: message/session-id model — serialization round trips,
// parent-session derivation, hashing, and hostile-input parsing.
#include "sim/message.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.hpp"
#include "sim/metrics.hpp"

namespace svss {
namespace {

SessionId sample_sid() {
  SessionId sid;
  sid.path = SessionPath::kMwInSvssCoin;
  sid.variant = 1;
  sid.owner = 3;
  sid.moderator = 5;
  sid.svss_dealer = 2;
  sid.counter = 777;
  return sid;
}

TEST(Message, SerializeDeserializeRoundTrip) {
  Message m;
  m.sid = sample_sid();
  m.type = MsgType::kMwReconVal;
  m.a = 4;
  m.b = -1;
  m.vals = {Fp(10), Fp(20)};
  m.ints = {1, 2, 3};
  m.blob = {9, 8, 7};
  auto rt = Message::deserialize(m.serialize());
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(*rt, m);
}

TEST(Message, EmptyFieldsRoundTrip) {
  Message m;
  m.sid.path = SessionPath::kAba;
  m.type = MsgType::kAbaVote;
  auto rt = Message::deserialize(m.serialize());
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(*rt, m);
}

TEST(Message, TrailingGarbageRejected) {
  Message m;
  m.type = MsgType::kMwAck;
  Bytes buf = m.serialize();
  buf.push_back(0);
  EXPECT_FALSE(Message::deserialize(buf).has_value());
}

TEST(Message, TruncationRejected) {
  Message m;
  m.type = MsgType::kMwLset;
  m.ints = {1, 2, 3, 4};
  Bytes buf = m.serialize();
  for (std::size_t cut = 1; cut < buf.size(); cut += 3) {
    Bytes shorter(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(Message::deserialize(shorter).has_value()) << cut;
  }
}

TEST(Message, InvalidPathByteRejected) {
  Message m;
  Bytes buf = m.serialize();
  buf[0] = 0xFF;
  EXPECT_FALSE(Message::deserialize(buf).has_value());
}

TEST(Message, RandomBytesDoNotCrash) {
  Rng rng(3);
  for (int len = 0; len < 64; ++len) {
    Bytes buf;
    for (int i = 0; i < len; ++i) {
      buf.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    }
    (void)Message::deserialize(buf);  // must not crash; result irrelevant
  }
}

TEST(SessionId, ParentOfNestedMwIsItsSvss) {
  SessionId child = sample_sid();
  auto parent = parent_session(child);
  ASSERT_TRUE(parent.has_value());
  EXPECT_EQ(parent->path, SessionPath::kSvssCoin);
  EXPECT_EQ(parent->owner, child.svss_dealer);
  EXPECT_EQ(parent->counter, child.counter);
}

TEST(SessionId, ParentOfCoinSvssIsItsCoinRound) {
  SessionId svss;
  svss.path = SessionPath::kSvssCoin;
  svss.owner = 1;
  svss.counter = 5 * kMaxN + 3;  // round 5, attachee 3
  auto parent = parent_session(svss);
  ASSERT_TRUE(parent.has_value());
  EXPECT_EQ(parent->path, SessionPath::kCoin);
  EXPECT_EQ(parent->counter, 5u);
}

TEST(SessionId, TopLevelSessionsHaveNoParent) {
  SessionId mw;
  mw.path = SessionPath::kMwTop;
  EXPECT_FALSE(parent_session(mw).has_value());
  SessionId svss;
  svss.path = SessionPath::kSvssTop;
  EXPECT_FALSE(parent_session(svss).has_value());
}

TEST(SessionId, HashDistinguishesFields) {
  std::unordered_set<std::size_t> hashes;
  SessionIdHash h;
  SessionId base = sample_sid();
  hashes.insert(h(base));
  for (int i = 0; i < 50; ++i) {
    SessionId s = base;
    s.counter = static_cast<std::uint32_t>(i);
    hashes.insert(h(s));
  }
  EXPECT_GT(hashes.size(), 45u);  // near-perfect distribution on this set
}

TEST(BcastId, OrderingAndEquality) {
  BcastId a{1, sample_sid(), MsgType::kMwAck, -1};
  BcastId b = a;
  EXPECT_EQ(a, b);
  b.a = 3;
  EXPECT_NE(a, b);
  BcastIdHash h;
  EXPECT_NE(h(a), h(b));
}

TEST(Packet, WireSizeCountsPayload) {
  Message m;
  m.vals.assign(100, Fp(1));
  Packet small = make_direct(Message{});
  Packet large = make_direct(m);
  EXPECT_GT(large.wire_size(), small.wire_size() + 390);
}

// The engine meters bytes through serialized_size() without serializing;
// it must stay byte-exact against the real encoder for every payload
// shape.
TEST(Message, SerializedSizeMatchesSerialize) {
  Message shapes[4];
  shapes[0].sid = sample_sid();
  shapes[1].vals.assign(7, Fp(42));
  shapes[2].ints = {1, 2, 3};
  shapes[3].vals.assign(2, Fp(5));
  shapes[3].ints = {9};
  shapes[3].blob = Bytes{0xAA, 0xBB, 0xCC};
  for (const Message& m : shapes) {
    EXPECT_EQ(m.serialized_size(), m.serialize().size());
  }
}

TEST(Message, TypeNamesCoverProtocolTypes) {
  EXPECT_STREQ(msg_type_name(MsgType::kSvssBatchShares),
               "svss-batch-shares");
  EXPECT_STREQ(msg_type_name(MsgType::kSvssBatchGset), "svss-batch-gset");
  EXPECT_STREQ(msg_type_name(MsgType::kAbaVote), "aba-vote");
}

TEST(SessionId, StrIsHumanReadable) {
  EXPECT_NE(sample_sid().str().find("mw/svss/coin"), std::string::npos);
}

// Traffic-group attribution: every per-session MsgType and its batch
// envelope land in the same group, distinguished only by the batched flag
// — that pairing is what makes "N packets, M of them batched" a direct
// readout of a coalescing win.
TEST(Metrics, TypeGroupPairsEnvelopesWithTheirSessionTypes) {
  struct Case {
    MsgType session_type;
    MsgType batch_type;
    const char* group;
  };
  const Case cases[] = {
      {MsgType::kMwAck, MsgType::kMwBatchAck, "mw-rb"},
      {MsgType::kMwLset, MsgType::kMwBatchLset, "mw-rb"},
      {MsgType::kMwMset, MsgType::kMwBatchMset, "mw-rb"},
      {MsgType::kMwOk, MsgType::kMwBatchOk, "mw-rb"},
      {MsgType::kMwReconVal, MsgType::kMwBatchReconVal, "mw-rb"},
      {MsgType::kMwEchoVal, MsgType::kMwBatchDirect, "mw-direct"},
      {MsgType::kSvssDealerShares, MsgType::kSvssBatchShares, "svss-deal"},
      {MsgType::kSvssGset, MsgType::kSvssBatchGset, "svss-gset"},
  };
  for (const Case& c : cases) {
    bool batched = true;
    EXPECT_STREQ(Metrics::type_group(c.session_type, &batched), c.group)
        << msg_type_name(c.session_type);
    EXPECT_FALSE(batched) << msg_type_name(c.session_type);
    EXPECT_STREQ(Metrics::type_group(c.batch_type, &batched), c.group)
        << msg_type_name(c.batch_type);
    EXPECT_TRUE(batched) << msg_type_name(c.batch_type);
  }
  bool batched = true;
  EXPECT_STREQ(Metrics::type_group(MsgType::kAbaVote, &batched), "aba");
  EXPECT_FALSE(batched);
  EXPECT_STREQ(Metrics::type_group(MsgType::kCoinGset, &batched), "coin");
  EXPECT_FALSE(batched);
}

TEST(Metrics, GroupSummaryAttributesPacketsPerGroupWithBatchedSplit) {
  Metrics m;
  EXPECT_EQ(m.group_summary(), "");  // no packets, no line

  m.note_type(MsgType::kMwAck, 10);
  m.note_type(MsgType::kMwOk, 10);
  m.note_type(MsgType::kMwBatchAck, 30);       // mw-rb: 3 total, 1 batched
  m.note_type(MsgType::kMwEchoVal, 12);        // mw-direct: 2, 1 batched
  m.note_type(MsgType::kMwBatchDirect, 40);
  m.note_type(MsgType::kAbaVote, 8);           // aba: 1, none batched
  EXPECT_EQ(m.group_summary(),
            " [packets by group: mw-rb=3 (1 batched)"
            " mw-direct=2 (1 batched) aba=1]");
  // The attribution rides on the human-readable digest.
  EXPECT_NE(m.summary().find("mw-rb=3 (1 batched)"), std::string::npos);
}

}  // namespace
}  // namespace svss
