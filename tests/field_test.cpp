// Unit tests: GF(2^31 - 1) arithmetic laws and edge cases.
#include "common/field.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace svss {
namespace {

TEST(Field, ZeroAndOneIdentities) {
  Fp a(12345);
  EXPECT_EQ(a + Fp(0), a);
  EXPECT_EQ(a * Fp(1), a);
  EXPECT_EQ(a * Fp(0), Fp(0));
  EXPECT_EQ(a - a, Fp(0));
}

TEST(Field, SignedReduction) {
  EXPECT_EQ(Fp(-1), Fp(static_cast<std::int64_t>(Fp::kModulus) - 1));
  EXPECT_EQ(Fp(static_cast<std::int64_t>(Fp::kModulus)), Fp(0));
  EXPECT_EQ(Fp(2 * static_cast<std::int64_t>(Fp::kModulus) + 5), Fp(5));
}

TEST(Field, AdditionWrapsAtModulus) {
  Fp max(static_cast<std::int64_t>(Fp::kModulus) - 1);
  EXPECT_EQ(max + Fp(1), Fp(0));
  EXPECT_EQ(max + Fp(2), Fp(1));
}

TEST(Field, NegationIsAdditiveInverse) {
  for (std::int64_t v : {0LL, 1LL, 77LL, 1LL << 30}) {
    Fp a(v);
    EXPECT_EQ(a + (-a), Fp(0)) << v;
  }
}

TEST(Field, MersenneReductionMatchesNaive) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t a = rng.next_below(Fp::kModulus);
    std::uint64_t b = rng.next_below(Fp::kModulus);
    Fp prod = Fp(static_cast<std::int64_t>(a)) * Fp(static_cast<std::int64_t>(b));
    // Naive 128-bit reference.
    unsigned __int128 wide = static_cast<unsigned __int128>(a) * b;
    EXPECT_EQ(prod.value(), static_cast<std::uint64_t>(wide % Fp::kModulus));
  }
}

TEST(Field, InverseIsMultiplicativeInverse) {
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    Fp a = rng.next_field();
    if (a == Fp(0)) continue;
    EXPECT_EQ(a * a.inverse(), Fp(1));
  }
}

TEST(Field, InverseOfZeroIsZeroByConvention) {
  EXPECT_EQ(Fp(0).inverse(), Fp(0));
}

TEST(Field, PowMatchesRepeatedMultiplication) {
  Fp base(3);
  Fp acc(1);
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(base.pow(e), acc);
    acc *= base;
  }
}

TEST(Field, FermatLittleTheorem) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    Fp a = rng.next_field();
    if (a == Fp(0)) continue;
    EXPECT_EQ(a.pow(Fp::kModulus - 1), Fp(1));
  }
}

TEST(Field, AssociativityAndDistributivityRandomized) {
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    Fp a = rng.next_field();
    Fp b = rng.next_field();
    Fp c = rng.next_field();
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
  }
}

TEST(Field, SubtractionInvertsAddition) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    Fp a = rng.next_field();
    Fp b = rng.next_field();
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

}  // namespace
}  // namespace svss
