// Differential equivalence harness for wire-framing variants.
//
// The batched transports (src/coin/batched_transport, the PR-4 coin-dealing
// batcher, and src/mwsvss/group_transport, the MW child-traffic coalescer)
// are *framing* changes: sessions run unmodified per-session code in the
// same order, so RNG consumption — and therefore every dealt polynomial
// and secret — is identical per seed across framings.  What a framing may
// legitimately change is the packet schedule (fewer, fatter packets), and
// with it which G-sets freeze first and hence a coin's output bit; what it
// must never change is any dealt or reconstructed value, termination, or
// the shunning discipline.
//
// This harness runs any two RunnerConfig variants over the full
// seeds x adversary-strategies x SchedulerKinds grid and asserts, per cell:
//  1. both variants terminate (quiescent; honest cells produce all outputs
//     with zero shun accusations);
//  2. every coin-owned SVSS session of an *honest* dealer that completes
//     reconstruction in both runs reconstructs the *same* value at every
//     process — the wire framing never alters content;
//  3. shun accusations stay sound in both variants (honest processes only
//     ever accuse faulty slots; *which* faulty sessions break may differ
//     per schedule, so accusation sets are compared for soundness, not
//     equality);
//  4. each variant replays deterministically (same config => byte-identical
//     event log — the engine's replay guarantee extends to the framing).
// ABA cells additionally require matching clean verdicts (decided, agreed,
// valid) in both variants.
//
// tests/batch_equivalence_test.cpp instantiates the harness for the three
// variant pairs ROADMAP's batching work introduced: MW coalescing alone,
// coin-dealing batching alone, and the combined mode.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "adversary/adversary.hpp"
#include "core/runner.hpp"
#include "sweep_common.hpp"

namespace svss::equivalence {

// A named framing variant: a mutation applied on top of the cell's base
// config (toggling batched_coin_dealing / batched_mw_children / overrides).
struct Variant {
  const char* name;
  std::function<void(RunnerConfig&)> apply;
};

struct VariantPair {
  Variant a;
  Variant b;
};

// Grid dimensions.  Defaults match the original batch_equivalence_test:
// n = 4 (full SVSS-coin stack), every SchedulerKind, honest cells plus one
// cell per PR-3 strategy.
struct Grid {
  int n = 4;
  int t = 1;
  std::vector<std::uint64_t> honest_seeds{7101, 7102};
  std::uint64_t strategy_seed_base = 7200;
  std::vector<std::uint64_t> aba_seeds{7301, 7302};
  std::uint64_t replay_seed = 7400;
  std::uint64_t max_deliveries = 20'000'000;
};

struct Cell {
  std::optional<adversary::StrategyKind> strategy;  // nullopt = all honest
  SchedulerKind scheduler;
  std::uint64_t seed;
};

inline std::vector<Cell> grid_cells(const Grid& grid) {
  std::vector<Cell> cells;
  for (SchedulerKind sched : sweep::kAllSchedulers) {
    for (std::uint64_t seed : grid.honest_seeds) {
      cells.push_back(Cell{std::nullopt, sched, seed});
    }
    int k = 0;
    for (adversary::StrategyKind strategy : adversary::kAllStrategies) {
      cells.push_back(Cell{strategy, sched,
                           grid.strategy_seed_base +
                               static_cast<std::uint64_t>(k++)});
    }
  }
  return cells;
}

inline RunnerConfig cell_config(const Grid& grid, const Cell& cell,
                                const Variant& variant) {
  RunnerConfig cfg;
  cfg.n = grid.n;
  cfg.t = grid.t;
  cfg.seed = cell.seed;
  cfg.scheduler = cell.scheduler;
  cfg.max_deliveries = grid.max_deliveries;
  cfg.warn_on_cap = false;  // adversarial dealers may stall cleanly
  variant.apply(cfg);
  if (cell.strategy) {
    adversary::install_adversaries(cfg, *cell.strategy, cfg.t);
  }
  return cfg;
}

// Honest dealers in the cell (adversaries occupy the top t slots).
inline bool honest_dealer(const Grid& grid, const Cell& cell, int dealer) {
  return !cell.strategy || dealer < grid.n - grid.t;
}

inline void expect_sound_shuns(const Runner& r, const Cell& cell,
                               const char* variant_name) {
  for (const auto& [who, whom] : r.honest_shun_pairs()) {
    EXPECT_FALSE(r.is_honest(whom))
        << variant_name << ": honest " << who << " shunned honest " << whom
        << " (seed " << cell.seed << ")";
  }
}

// (process, session) -> reconstructed value of a coin-owned SVSS session.
using ReconMap =
    std::map<std::pair<int, SessionId>, std::optional<std::int64_t>>;

inline ReconMap coin_recon_outputs(const EventLog& log) {
  ReconMap out;
  for (const Event& e : log.events()) {
    if (e.kind != EventKind::kSvssReconOutput) continue;
    if (e.sid.path != SessionPath::kSvssCoin) continue;
    out.emplace(std::make_pair(e.who, e.sid),
                e.has_value ? std::optional<std::int64_t>(e.value)
                            : std::nullopt);
  }
  return out;
}

// One coin round per cell in both variants: termination, value
// equivalence for honest dealers, shun soundness.
inline void run_coin_equivalence(const VariantPair& pair,
                                 const Grid& grid = {}) {
  for (const Cell& cell : grid_cells(grid)) {
    const Variant* variants[2] = {&pair.a, &pair.b};
    ReconMap recon[2];
    bool quiescent[2] = {false, false};
    bool all_output[2] = {false, false};
    for (int v = 0; v < 2; ++v) {
      Runner r(cell_config(grid, cell, *variants[v]));
      auto res = r.run_coin();
      quiescent[v] = res.status == RunStatus::kQuiescent;
      all_output[v] = res.all_output;
      for (const auto& [i, bit] : res.bits) {
        EXPECT_TRUE(bit == 0 || bit == 1);
        (void)i;
      }
      expect_sound_shuns(r, cell, variants[v]->name);
      if (!cell.strategy) {
        EXPECT_TRUE(res.all_output)
            << "seed " << cell.seed << " variant " << variants[v]->name;
        EXPECT_TRUE(res.shun_pairs.empty())
            << "seed " << cell.seed << " variant " << variants[v]->name;
      }
      recon[v] = coin_recon_outputs(r.engine().log());
    }
    EXPECT_TRUE(quiescent[0] && quiescent[1]) << "seed " << cell.seed;
    if (!cell.strategy) {
      EXPECT_EQ(all_output[0], all_output[1]) << "seed " << cell.seed;
    }

    // Content equivalence: a session of an honest dealer reconstructed to
    // a value in both variants reconstructed to the *same* value — the
    // framing never changes what was dealt.
    int compared = 0;
    for (const auto& [key, value] : recon[0]) {
      if (!honest_dealer(grid, cell, key.second.owner)) continue;
      auto it = recon[1].find(key);
      if (it == recon[1].end()) continue;
      if (!value || !it->second) continue;  // bottom implies shunning
      EXPECT_EQ(*value, *it->second)
          << "process " << key.first << " session " << key.second.str()
          << " seed " << cell.seed << " (" << pair.a.name << " vs "
          << pair.b.name << ")";
      ++compared;
    }
    if (!cell.strategy) {
      // Honest cells reconstruct every session in both variants: the
      // content check must not be vacuous.
      EXPECT_GT(compared, 0) << "seed " << cell.seed;
    }
  }
}

// Full agreement through the SVSS coin: both variants must reach clean
// verdicts (decided, agreed, valid bit) under every scheduler.
inline void run_aba_equivalence(const VariantPair& pair,
                                const Grid& grid = {}) {
  const Variant* variants[2] = {&pair.a, &pair.b};
  for (SchedulerKind sched : sweep::kAllSchedulers) {
    for (std::uint64_t seed : grid.aba_seeds) {
      for (int v = 0; v < 2; ++v) {
        RunnerConfig cfg;
        cfg.n = grid.n;
        cfg.t = grid.t;
        cfg.seed = seed;
        cfg.scheduler = sched;
        variants[v]->apply(cfg);
        Runner r(cfg);
        std::vector<int> inputs;
        for (int i = 0; i < grid.n; ++i) inputs.push_back(i % 2);
        auto res = r.run_aba(inputs, CoinMode::kSvss);
        EXPECT_TRUE(res.all_decided)
            << "seed " << seed << " variant " << variants[v]->name;
        EXPECT_TRUE(res.agreed)
            << "seed " << seed << " variant " << variants[v]->name;
        EXPECT_TRUE(res.value == 0 || res.value == 1);
        EXPECT_EQ(res.status, RunStatus::kQuiescent);
      }
    }
  }
}

// Epoch-script equivalence: the same reconfiguration script (core/epoch.hpp)
// must fully decide and agree on both backends.  Callers keep each
// instance's inputs unanimous, so validity pins every decision to the
// input and the two backends' values are comparable despite the socket
// backend's nondeterministic schedule.
inline void run_epoch_equivalence(const RunnerConfig& base,
                                  const std::vector<EpochPlan>& script,
                                  CoinMode mode = CoinMode::kIdealCommon) {
  EpochsResult results[2];
  const char* names[2] = {"sim", "socket-loopback"};
  for (int v = 0; v < 2; ++v) {
    RunnerConfig cfg = base;
    cfg.transport.kind =
        v == 0 ? TransportKind::kSim : TransportKind::kSocketLoopback;
    Runner r(cfg);
    results[v] = r.run_epochs(script, mode);
    EXPECT_TRUE(results[v].all_decided) << names[v];
    EXPECT_TRUE(results[v].agreed) << names[v];
    ASSERT_EQ(results[v].epochs.size(), script.size()) << names[v];
  }
  for (std::size_t e = 0; e < script.size(); ++e) {
    EXPECT_EQ(results[0].epochs[e].values, results[1].epochs[e].values)
        << "epoch " << e << ": backends decided different values";
  }
}

// Determinism: each framing is a pure function of the config — two runs of
// the same seed produce identical event logs under every scheduler.
inline void run_replay_determinism(const Variant& variant,
                                   const Grid& grid = {}) {
  auto fingerprint = [](const EventLog& log) {
    std::vector<std::tuple<int, int, int, SessionId, std::int64_t, bool>> fp;
    for (const Event& e : log.events()) {
      fp.emplace_back(static_cast<int>(e.kind), e.who, e.other, e.sid,
                      e.value, e.has_value);
    }
    return fp;
  };
  for (SchedulerKind sched : sweep::kAllSchedulers) {
    std::optional<decltype(fingerprint(EventLog{}))> first;
    for (int rep = 0; rep < 2; ++rep) {
      RunnerConfig cfg;
      cfg.n = grid.n;
      cfg.t = grid.t;
      cfg.seed = grid.replay_seed;
      cfg.scheduler = sched;
      variant.apply(cfg);
      Runner r(cfg);
      auto res = r.run_coin();
      ASSERT_TRUE(res.all_output);
      auto fp = fingerprint(r.engine().log());
      if (!first) {
        first = std::move(fp);
      } else {
        EXPECT_EQ(*first, fp)
            << variant.name << " under " << sweep::scheduler_name(sched);
      }
    }
  }
}

}  // namespace svss::equivalence
