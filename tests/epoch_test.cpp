// Membership reconfiguration end-to-end (core/epoch.hpp): epoch scripts
// with join/leave/replace and crash-at-boundary members, on both backends.
//
// Inputs are unanimous per instance, so validity pins every decision to
// the input — which is what makes values comparable between the
// deterministic sim schedule and the socket backend's kernel schedule.
#include <gtest/gtest.h>

#include <vector>

#include "core/runner.hpp"
#include "equivalence_common.hpp"
#include "sweep_common.hpp"

namespace svss {
namespace {

RunnerConfig universe_config(int n, int t, std::uint64_t seed) {
  RunnerConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.seed = seed;
  return cfg;
}

EpochPlan plan(std::uint32_t epoch, std::vector<int> members, int t,
               std::map<std::uint32_t, int> unanimous,
               std::set<int> crash = {}) {
  EpochPlan p;
  p.config.epoch = epoch;
  p.config.members = std::move(members);
  p.config.t = t;
  for (const auto& [inst, input] : unanimous) {
    p.instances.emplace(
        inst, std::vector<int>(static_cast<std::size_t>(p.config.n()),
                               input));
  }
  p.crash_at_boundary = std::move(crash);
  return p;
}

// Replace one slot at the boundary: epoch 0 runs {0,1,2,3}, slot 3 leaves
// and slot 4 joins for epoch 1.  Both epochs decide their instances.
std::vector<EpochPlan> replace_script() {
  return {plan(0, {0, 1, 2, 3}, 1, {{1, 1}, {2, 0}}),
          plan(1, {0, 1, 2, 4}, 1, {{3, 0}, {4, 1}})};
}

TEST(EpochSim, MembershipReplaceDecidesEveryEpoch) {
  Runner r(universe_config(5, 1, 4201));
  EpochsResult res = r.run_epochs(replace_script());
  ASSERT_EQ(res.epochs.size(), 2u);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_TRUE(res.epochs[0].boundary_decided);
  // Validity: unanimous input is the only admissible decision.
  EXPECT_EQ(res.epochs[0].values.at(1), 1);
  EXPECT_EQ(res.epochs[0].values.at(2), 0);
  EXPECT_EQ(res.epochs[1].values.at(3), 0);
  EXPECT_EQ(res.epochs[1].values.at(4), 1);
  // The joiner decided epoch 1's instances; the leaver is absent there.
  EXPECT_TRUE(res.epochs[1].decisions.at(3).count(4));
  EXPECT_FALSE(res.epochs[1].decisions.at(3).count(3));
}

TEST(EpochSim, ReplaceIsDeterministicPerSeed) {
  auto run_once = [] {
    Runner r(universe_config(5, 1, 4202));
    return r.run_epochs(replace_script());
  };
  EpochsResult a = run_once();
  EpochsResult b = run_once();
  ASSERT_TRUE(a.all_decided && b.all_decided);
  EXPECT_EQ(a.metrics.packets_sent, b.metrics.packets_sent);
  EXPECT_EQ(a.metrics.bytes_sent, b.metrics.bytes_sent);
  for (std::size_t e = 0; e < a.epochs.size(); ++e) {
    EXPECT_EQ(a.epochs[e].decisions, b.epochs[e].decisions);
  }
}

// Full-stack epoch crossing: the SVSS-coin agreement (no ideal coin) also
// survives a reconfiguration, with fresh per-epoch seed derivation.
TEST(EpochSim, SvssCoinStackCrossesBoundary) {
  Runner r(universe_config(4, 1, 4203));
  std::vector<EpochPlan> script = {plan(0, {0, 1, 2, 3}, 1, {{1, 1}}),
                                   plan(1, {0, 1, 2, 3}, 1, {{2, 0}})};
  EpochsResult res = r.run_epochs(script, CoinMode::kSvss);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.epochs[0].values.at(1), 1);
  EXPECT_EQ(res.epochs[1].values.at(2), 0);
}

TEST(EpochSim, RejectsMalformedScripts) {
  Runner r(universe_config(5, 1, 4204));
  // Below n >= 3t+1.
  EXPECT_THROW(r.run_epochs({plan(0, {0, 1, 2}, 1, {{1, 1}})}),
               std::invalid_argument);
  // Member outside the universe.
  EXPECT_THROW(r.run_epochs({plan(0, {0, 1, 2, 7}, 1, {{1, 1}})}),
               std::invalid_argument);
  // Instance id colliding with the reserved boundary instance.
  EXPECT_THROW(
      r.run_epochs({plan(0, {0, 1, 2, 3}, 1, {{kEpochBoundaryInstance, 1}})}),
      std::invalid_argument);
  // Crashing a non-member.
  EXPECT_THROW(
      r.run_epochs({plan(0, {0, 1, 2, 3}, 1, {{1, 1}}, {4})}),
      std::invalid_argument);
}

// The reconfiguration adversary: a member crashes exactly at the epoch
// boundary, and the next epoch's survivors (n-t of n) must still decide.
// Swept over seeds x schedulers on the deterministic backend.
TEST(EpochSweep, CrashAtBoundarySurvivorsDecide) {
  for (SchedulerKind sched : sweep::kAllSchedulers) {
    for (std::uint64_t seed : {4301u, 4302u, 4303u}) {
      RunnerConfig cfg = universe_config(5, 1, seed);
      cfg.scheduler = sched;
      Runner r(cfg);
      std::vector<EpochPlan> script = {
          plan(0, {0, 1, 2, 3}, 1, {{1, 1}}, /*crash=*/{3}),
          plan(1, {0, 1, 2, 3}, 1, {{2, 1}})};
      EpochsResult res = r.run_epochs(script);
      EXPECT_TRUE(res.all_decided)
          << sweep::scheduler_name(sched) << " seed " << seed;
      EXPECT_TRUE(res.agreed)
          << sweep::scheduler_name(sched) << " seed " << seed;
      EXPECT_EQ(res.epochs[1].values.at(2), 1);
      // The crashed slot decided nothing in epoch 1.
      EXPECT_FALSE(res.epochs[1].decisions.at(2).count(3));
      EXPECT_EQ(res.epochs[1].decisions.at(2).size(), 3u);
    }
  }
}

// Acceptance: membership replace completes with the sim and socket
// backends agreeing per the equivalence harness.
TEST(EpochEquivalence, ReplaceAgreesAcrossBackends) {
  equivalence::run_epoch_equivalence(universe_config(5, 1, 4401),
                                     replace_script());
}

// Crash-at-boundary also runs on the socket backend: the crashed member's
// transport shuts down and the survivors decide the next epoch.
TEST(EpochLoopback, CrashAtBoundarySurvivorsDecide) {
  RunnerConfig cfg = universe_config(4, 1, 4402);
  cfg.transport.kind = TransportKind::kSocketLoopback;
  Runner r(cfg);
  std::vector<EpochPlan> script = {
      plan(0, {0, 1, 2, 3}, 1, {{1, 1}}, /*crash=*/{3}),
      plan(1, {0, 1, 2, 3}, 1, {{2, 0}})};
  EpochsResult res = r.run_epochs(script);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.epochs[0].values.at(1), 1);
  EXPECT_EQ(res.epochs[1].values.at(2), 0);
  EXPECT_EQ(res.epochs[1].decisions.at(2).size(), 3u);
}

}  // namespace
}  // namespace svss
