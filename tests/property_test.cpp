// Property-based sweeps: the paper's invariants checked across a grid of
// (n, t), seeds, schedulers, and fault mixes.
//
// Invariants (each TEST_P instantiation is one point of the sweep):
//  P1  Lemma 1(a): only faulty processes are ever detected by honest ones.
//  P2  SVSS binding-or-shun: honest outputs never split without shunning.
//  P3  ABA agreement: honest decisions never differ, under every mix.
//  P4  ABA validity: with unanimous honest inputs, the decision is it.
//  P5  Determinism: identical configs produce identical traces.
#include <gtest/gtest.h>

#include <set>

#include "core/runner.hpp"

namespace svss {
namespace {

struct SweepParam {
  int n;
  int t;
  std::uint64_t seed;
  SchedulerKind sched;
  ByzKind fault;
};

std::string param_name(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto& p = info.param;
  std::string s = "n" + std::to_string(p.n) + "t" + std::to_string(p.t) +
                  "s" + std::to_string(p.seed) + "sched" +
                  std::to_string(static_cast<int>(p.sched)) + "f" +
                  std::to_string(static_cast<int>(p.fault));
  return s;
}

RunnerConfig make_config(const SweepParam& p) {
  RunnerConfig c;
  c.n = p.n;
  c.t = p.t;
  c.seed = p.seed;
  c.scheduler = p.sched;
  // Last t processes carry the sweep's fault kind.
  for (int i = p.n - p.t; i < p.n; ++i) {
    c.faults[i] = ByzConfig{p.fault, 100, 0.15};
  }
  return c;
}

std::set<int> faulty_of(const RunnerConfig& c) {
  std::set<int> out;
  for (const auto& [id, b] : c.faults) out.insert(id);
  return out;
}

class SvssSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SvssSweep, BindingAndDetectionSoundness) {
  auto c = make_config(GetParam());
  auto faulty = faulty_of(c);
  Runner r(c);
  auto res = r.run_svss(Fp(31415), /*dealer=*/0);

  // P1: detection soundness.
  for (const auto& [i, j] : res.shun_pairs) {
    EXPECT_EQ(faulty.count(i), 0u);
    EXPECT_EQ(faulty.count(j), 1u);
  }
  // P2: binding-or-shun (dealer 0 is honest here, so the outputs must all
  // be the secret unless somebody shunned).
  if (res.all_honest_output && res.shun_pairs.empty()) {
    for (const auto& [i, out] : res.outputs) {
      ASSERT_TRUE(out.has_value()) << i;
      EXPECT_EQ(*out, Fp(31415)) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SvssSweep,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> out;
      for (auto [n, t] : std::vector<std::pair<int, int>>{{4, 1}, {7, 2}}) {
        for (std::uint64_t seed : {11ull, 22ull}) {
          for (auto sched :
               {SchedulerKind::kRandom, SchedulerKind::kDelayLastHonest}) {
            for (auto fault : {ByzKind::kSilent, ByzKind::kEquivocate,
                               ByzKind::kWrongRecon, ByzKind::kBitFlip}) {
              out.push_back(SweepParam{n, t, seed, sched, fault});
            }
          }
        }
      }
      return out;
    }()),
    param_name);

class AbaSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AbaSweep, AgreementNeverBreaks) {
  auto c = make_config(GetParam());
  Runner r(c);
  std::vector<int> inputs;
  for (int i = 0; i < c.n; ++i) inputs.push_back((i / 2) % 2);
  auto res = r.run_aba(inputs, CoinMode::kSvss);
  // P3: agreement whenever decisions exist (termination is the almost-sure
  // part; every run here is expected to decide, and the delivery cap would
  // flag a livelock as !all_decided).
  ASSERT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  // P1 again, at full-stack scale.
  auto faulty = faulty_of(c);
  for (const auto& [i, j] : res.shun_pairs) {
    EXPECT_EQ(faulty.count(i), 0u);
    EXPECT_EQ(faulty.count(j), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbaSweep,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> out;
      for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
        for (auto sched : {SchedulerKind::kRandom, SchedulerKind::kLifo}) {
          for (auto fault : {ByzKind::kSilent, ByzKind::kWrongRecon,
                             ByzKind::kBitFlip}) {
            out.push_back(SweepParam{4, 1, seed, sched, fault});
          }
        }
      }
      return out;
    }()),
    param_name);

class AbaValiditySweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AbaValiditySweep, UnanimousHonestInputWins) {
  auto c = make_config(GetParam());
  Runner r(c);
  std::vector<int> inputs(static_cast<std::size_t>(c.n), 1);
  // Faulty processes feed 0 into their (tampered) sessions; honest inputs
  // are unanimously 1, so 1 must be the decision (P4).
  for (int i = c.n - c.t; i < c.n; ++i) inputs[static_cast<std::size_t>(i)] = 0;
  auto res = r.run_aba(inputs, CoinMode::kSvss);
  ASSERT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.value, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AbaValiditySweep,
    ::testing::ValuesIn([] {
      std::vector<SweepParam> out;
      for (std::uint64_t seed : {31ull, 32ull}) {
        for (auto fault : {ByzKind::kSilent, ByzKind::kEquivocate,
                           ByzKind::kBitFlip}) {
          out.push_back(
              SweepParam{4, 1, seed, SchedulerKind::kRandom, fault});
        }
      }
      return out;
    }()),
    param_name);

// P5: determinism — a run is a pure function of its config.
TEST(Determinism, IdenticalConfigsIdenticalOutcomes) {
  auto run = [] {
    RunnerConfig c;
    c.n = 4;
    c.t = 1;
    c.seed = 12321;
    c.scheduler = SchedulerKind::kRandom;
    c.faults[3] = ByzConfig{ByzKind::kBitFlip, 0, 0.2};
    Runner r(c);
    auto res = r.run_aba({0, 1, 1, 0}, CoinMode::kSvss);
    return std::make_tuple(res.value, res.max_round,
                           res.metrics.packets_sent, res.shun_pairs);
  };
  EXPECT_EQ(run(), run());
}

TEST(Determinism, DifferentSeedsDifferentTraces) {
  auto run = [](std::uint64_t seed) {
    RunnerConfig c;
    c.n = 4;
    c.t = 1;
    c.seed = seed;
    Runner r(c);
    auto res = r.run_aba({0, 1, 1, 0}, CoinMode::kSvss);
    return res.metrics.packets_sent;
  };
  // Packet counts virtually never collide across seeds for this workload.
  EXPECT_NE(run(1), run(2));
}

// The cumulative-shun bound behind the paper's O(n^2) expected rounds: the
// number of distinct (i, j) shun pairs can never exceed t * (n - t) over
// any number of sessions, because only faulty processes are shunned and a
// pair shuns at most once.
TEST(ShunBudget, NeverExceedsTTimesNMinusT) {
  RunnerConfig c;
  c.n = 4;
  c.t = 1;
  c.seed = 5;
  c.faults[3] = ByzConfig{ByzKind::kWrongRecon};
  Runner r(c);
  (void)r.run_aba({0, 1, 0, 1}, CoinMode::kSvss);
  auto pairs = r.honest_shun_pairs();
  EXPECT_LE(pairs.size(), static_cast<std::size_t>(c.t * (c.n - c.t)));
}

}  // namespace
}  // namespace svss
