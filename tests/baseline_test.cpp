// Protocol tests: the two baseline agreement protocols the paper's
// introduction compares against.
//
//  * Ben-Or 1983 (n > 5t, local coins): almost-surely terminating but
//    exponential expected rounds as n grows.
//  * Bracha-structured agreement with private (local) coins at n > 3t:
//    our AbaSession in CoinMode::kLocal — same safety machinery as the
//    paper's protocol, only the coin differs.
#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace svss {
namespace {

RunnerConfig cfg(int n, int t, std::uint64_t seed) {
  RunnerConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  c.scheduler = SchedulerKind::kRandom;
  return c;
}

// --- Ben-Or ------------------------------------------------------------
TEST(BenOr, UnanimousInputDecidesRoundOne) {
  Runner r(cfg(6, 1, 61));
  auto res = r.run_benor({1, 1, 1, 1, 1, 1});
  ASSERT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.value, 1);
  EXPECT_EQ(res.max_round, 1u);
}

TEST(BenOr, MixedInputsAgree) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Runner r(cfg(6, 1, 100 + seed));
    auto res = r.run_benor({0, 1, 0, 1, 0, 1});
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
  }
}

TEST(BenOr, ToleratesSilentFaultAtNGreaterThan5T) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto c = cfg(6, 1, 200 + seed);
    c.faults[5] = ByzConfig{ByzKind::kSilent};
    Runner r(c);
    auto res = r.run_benor({0, 1, 0, 1, 0, 1});
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
  }
}

TEST(BenOr, ToleratesBitFlippingFault) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto c = cfg(6, 1, 300 + seed);
    c.faults[5] = ByzConfig{ByzKind::kBitFlip, 0, 0.2};
    Runner r(c);
    auto res = r.run_benor({1, 0, 1, 0, 1, 0});
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
  }
}

// --- Bracha-style local-coin agreement (n > 3t) ------------------------
TEST(LocalCoinAba, UnanimousInputDecides) {
  Runner r(cfg(4, 1, 62));
  auto res = r.run_aba({0, 0, 0, 0}, CoinMode::kLocal);
  ASSERT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.value, 0);
}

TEST(LocalCoinAba, MixedInputsAgreeDespiteLocalCoins) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Runner r(cfg(4, 1, 400 + seed));
    auto res = r.run_aba({0, 1, 0, 1}, CoinMode::kLocal);
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
  }
}

TEST(LocalCoinAba, ByzantineFaultStillSafe) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto c = cfg(4, 1, 500 + seed);
    c.faults[3] = ByzConfig{ByzKind::kBitFlip, 0, 0.2};
    Runner r(c);
    auto res = r.run_aba({0, 1, 1, 0}, CoinMode::kLocal);
    ASSERT_TRUE(res.all_decided) << seed;
    EXPECT_TRUE(res.agreed) << seed;
  }
}

// The headline contrast: local coins need many more rounds than a common
// coin at the same system size, because progress requires independent
// coins to align.  (The full exponential-vs-polynomial curve is measured
// in bench_baselines; here we assert the direction on a medium size.)
TEST(LocalCoinAba, NeedsMoreRoundsThanCommonCoin) {
  std::uint64_t local_total = 0;
  std::uint64_t common_total = 0;
  constexpr int kRuns = 8;
  for (std::uint64_t seed = 1; seed <= kRuns; ++seed) {
    Runner rl(cfg(10, 3, 600 + seed));
    std::vector<int> inputs;
    for (int i = 0; i < 10; ++i) inputs.push_back(i % 2);
    auto res_local = rl.run_aba(inputs, CoinMode::kLocal);
    ASSERT_TRUE(res_local.all_decided) << seed;
    local_total += res_local.max_round;

    Runner rc(cfg(10, 3, 600 + seed));
    auto res_common = rc.run_aba(inputs, CoinMode::kIdealCommon);
    ASSERT_TRUE(res_common.all_decided) << seed;
    common_total += res_common.max_round;
  }
  EXPECT_GT(local_total, common_total);
}

}  // namespace
}  // namespace svss
