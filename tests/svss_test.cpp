// Protocol tests: SVSS properties (Section 2.1 / Lemma 3).
//
// SVSS strengthens MW-SVSS: full binding (a single value r, no per-process
// bottom escape) and full validity — each with the shunning escape clause.
// These tests drive one SVSS session per run under fault/schedule mixes
// and assert the properties.
#include <gtest/gtest.h>

#include <set>

#include "core/runner.hpp"
#include "svss/svss.hpp"

namespace svss {
namespace {

RunnerConfig cfg(int n, int t, std::uint64_t seed,
                 SchedulerKind sched = SchedulerKind::kRandom) {
  RunnerConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  c.scheduler = sched;
  return c;
}

std::set<int> faulty_set(const RunnerConfig& c) {
  std::set<int> out;
  for (const auto& [id, b] : c.faults) {
    if (b.kind != ByzKind::kHonest) out.insert(id);
  }
  return out;
}

void assert_shuns_are_sound(const std::vector<std::pair<int, int>>& pairs,
                            const std::set<int>& faulty) {
  for (const auto& [i, j] : pairs) {
    EXPECT_EQ(faulty.count(i), 0u) << "faulty observer " << i;
    EXPECT_EQ(faulty.count(j), 1u) << "honest process shunned: " << j;
  }
}

// Binding: all honest outputs identical (including bottom) — or shunning.
void assert_binding_or_shun(const std::map<int, std::optional<Fp>>& outputs,
                            const std::vector<std::pair<int, int>>& shuns) {
  std::set<std::optional<std::uint64_t>> distinct;
  for (const auto& [i, out] : outputs) {
    distinct.insert(out ? std::optional<std::uint64_t>(out->value())
                        : std::nullopt);
  }
  if (distinct.size() > 1) {
    EXPECT_FALSE(shuns.empty()) << "outputs split without shunning";
  }
}

// --- Validity of termination + validity, all honest -------------------
TEST(Svss, AllHonestEveryScheduler) {
  for (auto sched : {SchedulerKind::kFifo, SchedulerKind::kRandom,
                     SchedulerKind::kLifo, SchedulerKind::kDelayLastHonest}) {
    Runner r(cfg(4, 1, 21, sched));
    auto res = r.run_svss(Fp(123123));
    EXPECT_TRUE(res.all_honest_shared);
    EXPECT_TRUE(res.all_honest_output);
    for (const auto& [i, out] : res.outputs) {
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, Fp(123123));
    }
    EXPECT_TRUE(res.shun_pairs.empty());
  }
}

TEST(Svss, AllHonestLargerSystem) {
  Runner r(cfg(7, 2, 22));
  auto res = r.run_svss(Fp(271828));
  EXPECT_TRUE(res.all_honest_output);
  for (const auto& [i, out] : res.outputs) {
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, Fp(271828));
  }
}

// Validity with t silent processes: still terminates with the secret.
TEST(Svss, MaxSilentFaultsStillValid) {
  auto c = cfg(7, 2, 23);
  c.faults[5] = ByzConfig{ByzKind::kSilent};
  c.faults[6] = ByzConfig{ByzKind::kSilent};
  Runner r(c);
  auto res = r.run_svss(Fp(999));
  EXPECT_TRUE(res.all_honest_output);
  for (const auto& [i, out] : res.outputs) {
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, Fp(999));
  }
}

// Validity-or-shun with a reconstruct-corrupting participant.
TEST(Svss, WrongReconParticipantValidityOrShun) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[2] = ByzConfig{ByzKind::kWrongRecon};
    Runner r(c);
    auto res = r.run_svss(Fp(1717));
    ASSERT_TRUE(res.all_honest_shared) << seed;
    ASSERT_TRUE(res.all_honest_output) << seed;
    bool all_correct = true;
    for (const auto& [i, out] : res.outputs) {
      if (!out || *out != Fp(1717)) all_correct = false;
    }
    EXPECT_TRUE(all_correct || !res.shun_pairs.empty()) << seed;
    assert_shuns_are_sound(res.shun_pairs, faulty_set(c));
  }
}

// Binding-or-shun with a Byzantine dealer.
TEST(Svss, EquivocatingDealerBindingOrShun) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[0] = ByzConfig{ByzKind::kEquivocate};
    Runner r(c);
    auto res = r.run_svss(Fp(31337), /*dealer=*/0);
    assert_binding_or_shun(res.outputs, res.shun_pairs);
    assert_shuns_are_sound(res.shun_pairs, faulty_set(c));
  }
}

TEST(Svss, BitFlippingDealerBindingOrShun) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[0] = ByzConfig{ByzKind::kBitFlip, 0, 0.2};
    Runner r(c);
    auto res = r.run_svss(Fp(5555), /*dealer=*/0);
    assert_binding_or_shun(res.outputs, res.shun_pairs);
    assert_shuns_are_sound(res.shun_pairs, faulty_set(c));
  }
}

// Silent dealer: no honest process completes S; clean stall.
TEST(Svss, SilentDealerStallsCleanly) {
  auto c = cfg(4, 1, 24);
  c.faults[0] = ByzConfig{ByzKind::kSilent};
  Runner r(c);
  auto res = r.run_svss(Fp(1), /*dealer=*/0);
  EXPECT_FALSE(res.all_honest_shared);
  EXPECT_EQ(res.status, RunStatus::kQuiescent);
  EXPECT_TRUE(res.shun_pairs.empty());
}

// Termination: share completion is all-or-none across honest processes.
class SvssTerminationSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SvssTerminationSweep, ShareCompletionAllOrNone) {
  auto [fault_kind, seed] = GetParam();
  auto c = cfg(4, 1, seed);
  c.faults[1] = ByzConfig{static_cast<ByzKind>(fault_kind)};
  Runner r(c);
  SessionId sid = svss_top_id(1, 0);
  (void)r.run_svss(Fp(11), /*dealer=*/0);
  int completed = 0;
  int honest = 0;
  for (int i : r.honest_ids()) {
    ++honest;
    const SvssSession* s = r.node(i).find_svss(sid);
    if (s != nullptr && s->share_complete()) ++completed;
  }
  EXPECT_TRUE(completed == 0 || completed == honest)
      << completed << "/" << honest;
}

INSTANTIATE_TEST_SUITE_P(
    FaultsAndSeeds, SvssTerminationSweep,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(ByzKind::kSilent),
                          static_cast<int>(ByzKind::kEquivocate),
                          static_cast<int>(ByzKind::kWrongRecon),
                          static_cast<int>(ByzKind::kCrashMidway)),
        ::testing::Values(1u, 2u, 3u)));

// Once an honest process detects j, its DMM discards j everywhere —
// shunning is permanent (Definition 1's "from this point onwards").
TEST(Svss, ShunningPersistsAcrossSessions) {
  bool checked = false;
  for (std::uint64_t seed = 1; seed <= 8 && !checked; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[2] = ByzConfig{ByzKind::kWrongRecon};
    Runner r(c);
    auto res = r.run_svss(Fp(1717));
    for (const auto& [i, j] : res.shun_pairs) {
      EXPECT_TRUE(r.node(i).dmm().discards(j));
      checked = true;
    }
  }
  EXPECT_TRUE(checked) << "no seed triggered a detection";
}

// Message complexity across n (coarse polynomial guard): one SVSS session
// is O(n^2) MW-SVSS invocations of O(n^3) packets => O(n^5); assert under
// a slack multiple of n^5, and that cost grows with n.
TEST(Svss, MessageComplexityPolynomial) {
  std::uint64_t last = 0;
  for (int n : {4, 7}) {
    int t = (n - 1) / 3;
    Runner r(cfg(n, t, 600 + static_cast<std::uint64_t>(n)));
    auto res = r.run_svss(Fp(1));
    ASSERT_TRUE(res.all_honest_output) << n;
    EXPECT_GT(res.metrics.packets_sent, last);
    last = res.metrics.packets_sent;
    std::uint64_t n5 = 1;
    for (int k = 0; k < 5; ++k) n5 *= static_cast<std::uint64_t>(n);
    EXPECT_LT(res.metrics.packets_sent, 40 * n5) << n;
  }
}

}  // namespace
}  // namespace svss
