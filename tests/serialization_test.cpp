// Unit tests: byte writer/reader round trips and malformed-input safety.
#include "common/serialization.hpp"

#include <gtest/gtest.h>

namespace svss {
namespace {

TEST(Serialization, ScalarRoundTrip) {
  Writer w;
  w.u8(7);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.field(Fp(999));
  Bytes buf = std::move(w).take();

  Reader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.field(), Fp(999));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, VectorRoundTrip) {
  Writer w;
  w.field_vec({Fp(1), Fp(2), Fp(3)});
  w.int_vec({-1, 0, 7});
  w.bytes({0xAA, 0xBB});
  Bytes buf = std::move(w).take();

  Reader r(buf);
  EXPECT_EQ(r.field_vec(), (FieldVec{Fp(1), Fp(2), Fp(3)}));
  EXPECT_EQ(r.int_vec(), (std::vector<int>{-1, 0, 7}));
  EXPECT_EQ(r.bytes(), (Bytes{0xAA, 0xBB}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, EmptyVectors) {
  Writer w;
  w.field_vec({});
  w.int_vec({});
  w.bytes({});
  Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_EQ(r.field_vec(), FieldVec{});
  EXPECT_EQ(r.int_vec(), std::vector<int>{});
  EXPECT_EQ(r.bytes(), Bytes{});
}

TEST(Serialization, TruncatedInputReturnsNullopt) {
  Writer w;
  w.u64(12345);
  Bytes buf = std::move(w).take();
  buf.pop_back();
  Reader r(buf);
  EXPECT_FALSE(r.u64().has_value());
}

TEST(Serialization, TruncatedVectorReturnsNullopt) {
  Writer w;
  w.field_vec({Fp(1), Fp(2), Fp(3)});
  Bytes buf = std::move(w).take();
  buf.resize(buf.size() - 2);
  Reader r(buf);
  EXPECT_FALSE(r.field_vec().has_value());
}

TEST(Serialization, LengthBombRejected) {
  // A length prefix claiming 2^31 elements must not allocate or crash.
  Writer w;
  w.u32(0x7FFFFFFF);
  Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_FALSE(r.field_vec().has_value());
  Reader r2(buf);
  EXPECT_FALSE(r2.int_vec().has_value());
  Reader r3(buf);
  EXPECT_FALSE(r3.bytes().has_value());
}

TEST(Serialization, NonCanonicalFieldValueRejected) {
  Writer w;
  w.u32(0xFFFFFFFF);  // >= modulus
  Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_FALSE(r.field().has_value());
}

TEST(Serialization, EmptyBufferFailsEverything) {
  Bytes empty;
  Reader r(empty);
  EXPECT_FALSE(r.u8().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.field().has_value());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, SequentialReadsConsumeExactly) {
  Writer w;
  for (int i = 0; i < 10; ++i) w.u32(static_cast<std::uint32_t>(i));
  Bytes buf = std::move(w).take();
  Reader r(buf);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(i));
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.u8().has_value());
}

}  // namespace
}  // namespace svss
