// Unit tests: byte writer/reader round trips and malformed-input safety,
// plus the MW group-envelope codec (pack at window close, unpack on
// receive) against round trips and adversarially malformed payloads.
#include "common/serialization.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "mwsvss/group_transport.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace svss {
namespace {

TEST(Serialization, ScalarRoundTrip) {
  Writer w;
  w.u8(7);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.field(Fp(999));
  Bytes buf = std::move(w).take();

  Reader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.field(), Fp(999));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, VectorRoundTrip) {
  Writer w;
  w.field_vec({Fp(1), Fp(2), Fp(3)});
  w.int_vec({-1, 0, 7});
  w.bytes({0xAA, 0xBB});
  Bytes buf = std::move(w).take();

  Reader r(buf);
  EXPECT_EQ(r.field_vec(), (FieldVec{Fp(1), Fp(2), Fp(3)}));
  EXPECT_EQ(r.int_vec(), (std::vector<int>{-1, 0, 7}));
  EXPECT_EQ(r.bytes(), (Bytes{0xAA, 0xBB}));
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, EmptyVectors) {
  Writer w;
  w.field_vec({});
  w.int_vec({});
  w.bytes({});
  Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_EQ(r.field_vec(), FieldVec{});
  EXPECT_EQ(r.int_vec(), std::vector<int>{});
  EXPECT_EQ(r.bytes(), Bytes{});
}

TEST(Serialization, TruncatedInputReturnsNullopt) {
  Writer w;
  w.u64(12345);
  Bytes buf = std::move(w).take();
  buf.pop_back();
  Reader r(buf);
  EXPECT_FALSE(r.u64().has_value());
}

TEST(Serialization, TruncatedVectorReturnsNullopt) {
  Writer w;
  w.field_vec({Fp(1), Fp(2), Fp(3)});
  Bytes buf = std::move(w).take();
  buf.resize(buf.size() - 2);
  Reader r(buf);
  EXPECT_FALSE(r.field_vec().has_value());
}

TEST(Serialization, LengthBombRejected) {
  // A length prefix claiming 2^31 elements must not allocate or crash.
  Writer w;
  w.u32(0x7FFFFFFF);
  Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_FALSE(r.field_vec().has_value());
  Reader r2(buf);
  EXPECT_FALSE(r2.int_vec().has_value());
  Reader r3(buf);
  EXPECT_FALSE(r3.bytes().has_value());
}

TEST(Serialization, NonCanonicalFieldValueRejected) {
  Writer w;
  w.u32(0xFFFFFFFF);  // >= modulus
  Bytes buf = std::move(w).take();
  Reader r(buf);
  EXPECT_FALSE(r.field().has_value());
}

TEST(Serialization, EmptyBufferFailsEverything) {
  Bytes empty;
  Reader r(empty);
  EXPECT_FALSE(r.u8().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.field().has_value());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, SequentialReadsConsumeExactly) {
  Writer w;
  for (int i = 0; i < 10; ++i) w.u32(static_cast<std::uint32_t>(i));
  Bytes buf = std::move(w).take();
  Reader r(buf);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(i));
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(r.u8().has_value());
}

// ---------------------------------------------------------------------
// MW group-envelope codec (mwsvss/group_transport): pack at window close
// must round-trip through unpack, and a malformed envelope — whatever a
// Byzantine sender frames — must be dropped whole: no crash, no partial
// delivery, no double delivery.
// ---------------------------------------------------------------------

// A coin-nested MW child session id: round 5, attachee j.
SessionId mw_child(int j, std::uint8_t variant = 0) {
  SessionId sid;
  sid.path = SessionPath::kMwInSvssCoin;
  sid.variant = variant;
  sid.owner = 1;
  sid.moderator = 2;
  sid.svss_dealer = 3;
  sid.counter = 5 * kMaxN + static_cast<std::uint32_t>(j);
  return sid;
}

// Runs the receiver path on one envelope and collects the per-session
// sub-messages it hands to the routing sink.
std::vector<Message> unpack_all(const Message& env, bool via_rb,
                                int n = 4) {
  Engine e(n, 1, 1, std::make_unique<FifoScheduler>());
  Context ctx(e, 0);
  std::vector<Message> out;
  MwGroupTransport::unpack(ctx, n, 1, /*sender=*/2, env, via_rb,
                           [&](Context&, int, const Message& sub, bool) {
                             out.push_back(sub);
                           });
  return out;
}

Message envelope(MsgType type, std::vector<int> ints = {},
                 FieldVec vals = {}) {
  Message m;
  m.sid = MwGroupTransport::group_sid(mw_child(0));
  m.type = type;
  m.ints = std::move(ints);
  m.vals = std::move(vals);
  return m;
}

TEST(MwGroupCodec, GroupAndChildSidsAreInverse) {
  for (int j : {0, 1, 3}) {
    for (std::uint8_t variant : {std::uint8_t{0}, std::uint8_t{1}}) {
      SessionId child = mw_child(j, variant);
      SessionId group = MwGroupTransport::group_sid(child);
      EXPECT_EQ(group.variant, 2 + variant);
      EXPECT_EQ(group.counter % kMaxN, 0u);
      EXPECT_EQ(MwGroupTransport::child_sid(group, j), child);
    }
  }
}

TEST(MwGroupCodec, RoundTripReproducesPerSessionMessages) {
  MwGroupTransport tx(1, 4, 1);
  tx.open_window();

  for (int j = 0; j < 4; ++j) {
    Message ack;
    ack.sid = mw_child(j);
    ack.type = MsgType::kMwAck;
    ASSERT_TRUE(tx.capture_broadcast(ack));
  }
  Message lset;
  lset.sid = mw_child(2);
  lset.type = MsgType::kMwLset;
  lset.ints = {0, 1, 3};
  ASSERT_TRUE(tx.capture_broadcast(lset));
  Message recon;
  recon.sid = mw_child(1);
  recon.type = MsgType::kMwReconVal;
  recon.a = 3;
  recon.vals = {Fp(77)};
  ASSERT_TRUE(tx.capture_broadcast(recon));
  Message echo;
  echo.sid = mw_child(0);
  echo.type = MsgType::kMwEchoVal;
  echo.vals = {Fp(5)};
  ASSERT_TRUE(tx.capture_direct(2, echo));
  Message shares;
  shares.sid = mw_child(3);
  shares.type = MsgType::kMwDealerShares;
  shares.vals = {Fp(8), Fp(9), Fp(10), Fp(11)};
  ASSERT_TRUE(tx.capture_direct(2, shares));

  std::vector<Message> rb_envs;
  std::vector<std::pair<int, Message>> direct_envs;
  Engine e(4, 1, 1, std::make_unique<FifoScheduler>());
  Context ctx(e, 1);
  tx.close_window(
      ctx, MwGroupTransport::EmitFns{
               [&](Context&, const Message& m) { rb_envs.push_back(m); },
               [&](Context&, int to, Message m) {
                 direct_envs.emplace_back(to, std::move(m));
               }});

  // One direct envelope (both sub-messages went to recipient 2) and one
  // RB envelope per captured type: ack, L-set, recon.
  ASSERT_EQ(direct_envs.size(), 1u);
  EXPECT_EQ(direct_envs[0].first, 2);
  ASSERT_EQ(rb_envs.size(), 3u);
  EXPECT_EQ(rb_envs[0].type, MsgType::kMwBatchAck);
  EXPECT_EQ(rb_envs[1].type, MsgType::kMwBatchLset);
  EXPECT_EQ(rb_envs[2].type, MsgType::kMwBatchReconVal);

  auto acks = unpack_all(rb_envs[0], /*via_rb=*/true);
  ASSERT_EQ(acks.size(), 4u);
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(acks[static_cast<std::size_t>(j)].sid, mw_child(j));
    EXPECT_EQ(acks[static_cast<std::size_t>(j)].type, MsgType::kMwAck);
  }

  auto lsets = unpack_all(rb_envs[1], /*via_rb=*/true);
  ASSERT_EQ(lsets.size(), 1u);
  EXPECT_EQ(lsets[0].sid, mw_child(2));
  EXPECT_EQ(lsets[0].ints, (std::vector<int>{0, 1, 3}));

  auto recons = unpack_all(rb_envs[2], /*via_rb=*/true);
  ASSERT_EQ(recons.size(), 1u);
  EXPECT_EQ(recons[0].sid, mw_child(1));
  EXPECT_EQ(recons[0].a, 3);
  EXPECT_EQ(recons[0].vals, FieldVec{Fp(77)});

  auto directs = unpack_all(direct_envs[0].second, /*via_rb=*/false);
  ASSERT_EQ(directs.size(), 2u);
  EXPECT_EQ(directs[0].sid, mw_child(0));
  EXPECT_EQ(directs[0].type, MsgType::kMwEchoVal);
  EXPECT_EQ(directs[0].vals, FieldVec{Fp(5)});
  EXPECT_EQ(directs[1].sid, mw_child(3));
  EXPECT_EQ(directs[1].type, MsgType::kMwDealerShares);
  EXPECT_EQ(directs[1].vals, (FieldVec{Fp(8), Fp(9), Fp(10), Fp(11)}));
}

TEST(MwGroupCodec, WrongTransportClassIsRejected) {
  // RB envelope arriving as a direct send, and vice versa.
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchAck, {0}),
                         /*via_rb=*/false)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchDirect,
                                  {static_cast<int>(MsgType::kMwEchoVal),
                                   0, 0}),
                         /*via_rb=*/true)
                  .empty());
}

TEST(MwGroupCodec, MalformedEnvelopeSidIsRejected) {
  // A child-variant sid, a counter off the attachee-0 slot, and a stray
  // blob are all outside the envelope shape.
  Message env = envelope(MsgType::kMwBatchAck, {0});
  env.sid.variant = 1;
  EXPECT_TRUE(unpack_all(env, true).empty());

  env = envelope(MsgType::kMwBatchAck, {0});
  env.sid.counter += 1;
  EXPECT_TRUE(unpack_all(env, true).empty());

  env = envelope(MsgType::kMwBatchAck, {0});
  env.blob = {0xFF};
  EXPECT_TRUE(unpack_all(env, true).empty());
}

TEST(MwGroupCodec, AttacheeListEnvelopesRejectBadEntries) {
  // Out-of-range attachees (n = 4), duplicates, and a payload the type
  // never carries; a valid prefix must not leak through.
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchAck, {0, 4}), true)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchOk, {-1}), true)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchAck, {2, 1, 2}), true)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchOk, {0}, {Fp(1)}), true)
                  .empty());
}

TEST(MwGroupCodec, SetRunEnvelopesRejectTruncation) {
  // (j, len, members...) runs: short header, length past the end,
  // negative length, duplicate session.
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchLset, {0}), true)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchLset, {0, 5, 1, 2}),
                         true)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchMset, {0, -1}), true)
                  .empty());
  EXPECT_TRUE(
      unpack_all(envelope(MsgType::kMwBatchMset, {1, 1, 0, 1, 1, 2}), true)
          .empty());
}

TEST(MwGroupCodec, ReconEnvelopesRejectMalformedPairs) {
  // Odd int run, value-count mismatch, out-of-range monitored poly,
  // duplicate (attachee, poly) pair.
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchReconVal, {0, 1, 2},
                                  {Fp(1)}),
                         true)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchReconVal, {0, 1},
                                  {Fp(1), Fp(2)}),
                         true)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchReconVal, {0, 4},
                                  {Fp(1)}),
                         true)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchReconVal,
                                  {0, 1, 0, 1}, {Fp(1), Fp(2)}),
                         true)
                  .empty());
}

TEST(MwGroupCodec, DirectEnvelopesRejectMalformedTriples) {
  const int echo = static_cast<int>(MsgType::kMwEchoVal);
  // Triple run not a multiple of three, a sub-type outside the direct
  // class, a length past the value vector, trailing unclaimed values,
  // and a duplicated (type, attachee) sub-message.
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchDirect, {echo, 0}),
                         false)
                  .empty());
  EXPECT_TRUE(
      unpack_all(envelope(MsgType::kMwBatchDirect,
                          {static_cast<int>(MsgType::kMwAck), 0, 0}),
                 false)
          .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchDirect, {echo, 0, 2},
                                  {Fp(1)}),
                         false)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchDirect, {echo, 0, 1},
                                  {Fp(1), Fp(2)}),
                         false)
                  .empty());
  EXPECT_TRUE(unpack_all(envelope(MsgType::kMwBatchDirect,
                                  {echo, 1, 1, echo, 1, 1},
                                  {Fp(1), Fp(2)}),
                         false)
                  .empty());
}

}  // namespace
}  // namespace svss
