// Unit tests: the discrete-event engine — delivery, determinism, causal
// depth, eventual delivery under hostile schedulers, interceptors.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "sim/scheduler.hpp"

namespace svss {
namespace {

// Minimal process: records deliveries; optionally replies to the sender a
// fixed number of times.
class Echo : public IProcess {
 public:
  explicit Echo(int replies = 0) : replies_(replies) {}
  void start(Context&) override {}
  void on_packet(Context& ctx, int from, const Packet& p) override {
    received.emplace_back(from, p.app.a);
    if (replies_ > 0) {
      --replies_;
      Message m;
      m.a = static_cast<std::int16_t>(p.app.a + 1);
      ctx.send(from, make_direct(m));
    }
  }
  std::vector<std::pair<int, int>> received;

 private:
  int replies_;
};

// Sends one numbered message to everyone at start.
class Spammer : public IProcess {
 public:
  void start(Context& ctx) override {
    Message m;
    m.a = static_cast<std::int16_t>(ctx.self());
    ctx.send_all(make_direct(m));
  }
  void on_packet(Context&, int, const Packet&) override {}
};

TEST(Engine, DeliversAllPackets) {
  Engine e(3, 0, 1, std::make_unique<FifoScheduler>());
  for (int i = 0; i < 3; ++i) e.set_process(i, std::make_unique<Spammer>());
  EXPECT_EQ(e.run(), RunStatus::kQuiescent);
  EXPECT_EQ(e.metrics().packets_sent, 9u);
  EXPECT_EQ(e.metrics().packets_delivered, 9u);
}

TEST(Engine, SelfSendGoesThroughScheduler) {
  Engine e(1, 0, 1, std::make_unique<FifoScheduler>());
  auto echo = std::make_unique<Echo>();
  Echo* raw = echo.get();
  e.set_process(0, std::move(echo));
  Context ctx(e, 0);
  Message m;
  m.a = 9;
  ctx.send(0, make_direct(m));
  e.run();
  ASSERT_EQ(raw->received.size(), 1u);
  EXPECT_EQ(raw->received[0], std::make_pair(0, 9));
}

TEST(Engine, DeliveryCapStopsRunawayRuns) {
  // Two processes replying to each other forever.
  Engine e(2, 0, 1, std::make_unique<FifoScheduler>());
  e.set_process(0, std::make_unique<Echo>(1 << 20));
  e.set_process(1, std::make_unique<Echo>(1 << 20));
  Context ctx(e, 0);
  Message m;
  ctx.send(1, make_direct(m));
  EXPECT_EQ(e.run(1000), RunStatus::kDeliveryCap);
  EXPECT_LE(e.metrics().packets_delivered, 1001u);
}

TEST(Engine, RunUntilStopsEarly) {
  Engine e(3, 0, 1, std::make_unique<FifoScheduler>());
  std::vector<Echo*> echoes;
  for (int i = 0; i < 3; ++i) {
    auto p = std::make_unique<Echo>();
    echoes.push_back(p.get());
    e.set_process(i, std::move(p));
  }
  Context ctx(e, 0);
  for (int k = 0; k < 10; ++k) {
    Message m;
    m.a = static_cast<std::int16_t>(k);
    ctx.send(1, make_direct(m));
  }
  e.run_until([&] { return echoes[1]->received.size() >= 3; });
  EXPECT_GE(echoes[1]->received.size(), 3u);
  EXPECT_LT(echoes[1]->received.size(), 10u);
}

TEST(Engine, DeterministicAcrossIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    Engine e(4, 1, seed, std::make_unique<RandomScheduler>(seed));
    std::vector<Echo*> echoes;
    for (int i = 0; i < 4; ++i) {
      auto p = std::make_unique<Echo>(3);
      echoes.push_back(p.get());
      e.set_process(i, std::move(p));
    }
    Context ctx(e, 0);
    for (int to = 0; to < 4; ++to) {
      Message m;
      m.a = static_cast<std::int16_t>(to);
      ctx.send(to, make_direct(m));
    }
    e.run();
    std::vector<std::pair<int, int>> trace;
    for (auto* p : echoes) {
      trace.insert(trace.end(), p->received.begin(), p->received.end());
    }
    return trace;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));  // different schedule, different trace
}

TEST(Engine, LifoSchedulerStillDeliversEverything) {
  Engine e(2, 0, 1, std::make_unique<LifoScheduler>());
  auto echo = std::make_unique<Echo>();
  Echo* raw = echo.get();
  e.set_process(0, std::make_unique<Spammer>());
  e.set_process(1, std::move(echo));
  e.run();
  // Spammer's packet to 1 plus its packet to 0 both delivered.
  EXPECT_EQ(raw->received.size(), 1u);
  EXPECT_EQ(e.metrics().packets_delivered, e.metrics().packets_sent);
}

TEST(Engine, AgeCapForcesStarvedPacket) {
  // A targeted-delay scheduler that starves process 1's inbox; with a tiny
  // age cap the packet still arrives promptly.
  auto slow = [](const PendingInfo& p) { return p.to == 1; };
  Engine e(2, 0, 1,
           std::make_unique<TargetedDelayScheduler>(1, slow, 1ULL << 40));
  e.set_max_lag(10);
  auto echo = std::make_unique<Echo>();
  Echo* raw = echo.get();
  e.set_process(0, std::make_unique<Echo>(200));
  e.set_process(1, std::move(echo));
  Context ctx(e, 1);
  // Seed chatter 1 -> 0 (fast direction) so the run does not quiesce
  // before the age cap can trigger, plus one starved packet 0 -> 1.
  Message m;
  ctx.send(0, make_direct(m));
  Context ctx0(e, 0);
  ctx0.send(1, make_direct(m));
  e.run_until([&] { return !raw->received.empty(); }, 500);
  EXPECT_FALSE(raw->received.empty());
}

TEST(Engine, CausalDepthTracksChains) {
  // 0 -> 1 -> 0 -> 1 ... each reply deepens the causal chain.
  Engine e(2, 0, 1, std::make_unique<FifoScheduler>());
  e.set_process(0, std::make_unique<Echo>(5));
  e.set_process(1, std::make_unique<Echo>(5));
  Context ctx(e, 0);
  Message m;
  ctx.send(1, make_direct(m));
  e.run();
  EXPECT_GE(e.metrics().max_depth, 10u);
}

TEST(Engine, InterceptorDropsAndMutates) {
  Engine e(2, 0, 1, std::make_unique<FifoScheduler>());
  auto echo = std::make_unique<Echo>();
  Echo* raw = echo.get();
  e.set_process(0, std::make_unique<Spammer>());
  e.set_process(1, std::move(echo));
  e.set_interceptor(0, [](int, int to, Packet& p) {
    if (to == 0) return false;  // drop self-send
    p.app.a = 99;
    return true;
  });
  e.run();
  ASSERT_EQ(raw->received.size(), 1u);
  EXPECT_EQ(raw->received[0].second, 99);
  EXPECT_EQ(e.metrics().packets_sent, 1u);  // dropped packet never metered
}

TEST(Engine, MetricsCountBytes) {
  Engine e(2, 0, 1, std::make_unique<FifoScheduler>());
  e.set_process(0, std::make_unique<Spammer>());
  e.set_process(1, std::make_unique<Echo>());
  e.run();
  EXPECT_GT(e.metrics().bytes_sent, 0u);
}

TEST(EventLog, ShunPairsDeduplicates) {
  EventLog log;
  SessionId sid;
  log.record(Event{EventKind::kShun, 1, 2, sid, 0, false});
  log.record(Event{EventKind::kShun, 1, 2, sid, 0, false});
  log.record(Event{EventKind::kShun, 2, 1, sid, 0, false});
  EXPECT_EQ(log.shun_pairs().size(), 2u);
}

}  // namespace
}  // namespace svss
