// Protocol tests: MW-SVSS properties (Section 2.2 / Lemma 2).
//
// Each test drives one MW-SVSS session through the full simulator with a
// given fault/schedule mix and asserts the corresponding property:
//   1' Moderated validity of termination
//   Termination (all-or-none completion, R' completes once started by all)
//   Validity (honest dealer: everyone outputs s — or somebody shuns)
//   3' Weak & moderated binding (outputs in {r, bottom} — or shunning)
//   Lemma 1(a): only faulty processes are ever detected.
#include <gtest/gtest.h>

#include <set>

#include "core/runner.hpp"
#include "mwsvss/mwsvss.hpp"

namespace svss {
namespace {

RunnerConfig cfg(int n, int t, std::uint64_t seed,
                 SchedulerKind sched = SchedulerKind::kRandom) {
  RunnerConfig c;
  c.n = n;
  c.t = t;
  c.seed = seed;
  c.scheduler = sched;
  return c;
}

std::set<int> faulty_set(const RunnerConfig& c) {
  std::set<int> out;
  for (const auto& [id, b] : c.faults) {
    if (b.kind != ByzKind::kHonest) out.insert(id);
  }
  return out;
}

// Lemma 1(a): every shun pair (i, j) has honest i and faulty j.
void assert_shuns_are_sound(const std::vector<std::pair<int, int>>& pairs,
                            const std::set<int>& faulty) {
  for (const auto& [i, j] : pairs) {
    EXPECT_EQ(faulty.count(i), 0u) << "honest-only shunners: " << i;
    EXPECT_EQ(faulty.count(j), 1u) << "only faulty get shunned: " << j;
  }
}

// Weak binding: outputs of honest processes are all in {r, bottom} for a
// single r — or a (new) shun pair exists.
void assert_weak_binding_or_shun(
    const std::map<int, std::optional<Fp>>& outputs,
    const std::vector<std::pair<int, int>>& shun_pairs) {
  std::set<std::uint64_t> distinct;
  for (const auto& [i, out] : outputs) {
    if (out) distinct.insert(out->value());
  }
  if (distinct.size() > 1) {
    EXPECT_FALSE(shun_pairs.empty())
        << "two different non-bottom outputs without shunning";
  }
}

// --- Property 1': moderated validity of termination -------------------
TEST(MwSvss, HonestDealerAndModeratorTerminate) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Runner r(cfg(4, 1, seed));
    auto res = r.run_mwsvss(Fp(777), Fp(777));
    EXPECT_TRUE(res.all_honest_shared) << seed;
    EXPECT_TRUE(res.all_honest_output) << seed;
  }
}

TEST(MwSvss, TerminatesAtLargerScales) {
  for (auto [n, t] : std::vector<std::pair<int, int>>{{7, 2}, {10, 3}}) {
    Runner r(cfg(n, t, 77));
    auto res = r.run_mwsvss(Fp(31415), Fp(31415));
    EXPECT_TRUE(res.all_honest_shared) << n;
    EXPECT_TRUE(res.all_honest_output) << n;
    for (const auto& [i, out] : res.outputs) {
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, Fp(31415));
    }
  }
}

TEST(MwSvss, TerminatesUnderHostileSchedules) {
  for (auto sched : {SchedulerKind::kFifo, SchedulerKind::kLifo,
                     SchedulerKind::kDelayLastHonest}) {
    Runner r(cfg(4, 1, 5, sched));
    auto res = r.run_mwsvss(Fp(2020), Fp(2020));
    EXPECT_TRUE(res.all_honest_output);
    for (const auto& [i, out] : res.outputs) {
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, Fp(2020));
    }
  }
}

// Disagreeing moderator input: an honest moderator whose s' != s never
// endorses the dealer's sharing, so the share phase cannot complete — but
// nothing bad happens either (no shunning of honest processes, no output).
TEST(MwSvss, ModeratorInputMismatchBlocksCompletion) {
  Runner r(cfg(4, 1, 6));
  auto res = r.run_mwsvss(Fp(1), Fp(2));
  EXPECT_FALSE(res.all_honest_shared);
  EXPECT_TRUE(res.shun_pairs.empty());
}

// --- Termination: silent dealer stalls cleanly ------------------------
TEST(MwSvss, SilentDealerNobodyCompletes) {
  auto c = cfg(4, 1, 7);
  c.faults[0] = ByzConfig{ByzKind::kSilent};
  Runner r(c);
  auto res = r.run_mwsvss(Fp(5), Fp(5), /*dealer=*/0, /*moderator=*/1);
  EXPECT_FALSE(res.all_honest_shared);
  EXPECT_EQ(res.status, RunStatus::kQuiescent);
}

// A silent *participant* (neither dealer nor moderator) must not block:
// n - t = 3 confirmations suffice.
TEST(MwSvss, SilentParticipantTolerated) {
  auto c = cfg(4, 1, 8);
  c.faults[3] = ByzConfig{ByzKind::kSilent};
  Runner r(c);
  auto res = r.run_mwsvss(Fp(888), Fp(888));
  EXPECT_TRUE(res.all_honest_shared);
  EXPECT_TRUE(res.all_honest_output);
  for (const auto& [i, out] : res.outputs) {
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, Fp(888));
  }
}

// --- Validity (or shun) with a corrupting confirmer --------------------
TEST(MwSvss, WrongReconValuesTriggerValidityOrShun) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[2] = ByzConfig{ByzKind::kWrongRecon};
    Runner r(c);
    auto res = r.run_mwsvss(Fp(4321), Fp(4321));
    ASSERT_TRUE(res.all_honest_shared) << seed;
    ASSERT_TRUE(res.all_honest_output) << seed;
    bool all_correct = true;
    for (const auto& [i, out] : res.outputs) {
      if (!out || *out != Fp(4321)) all_correct = false;
    }
    EXPECT_TRUE(all_correct || !res.shun_pairs.empty())
        << "seed " << seed << ": wrong output but nobody shunned";
    assert_shuns_are_sound(res.shun_pairs, faulty_set(c));
  }
}

// The dealer knows every f_l, so a confirmer that lies in reconstruction
// is *always* explicitly detected by the honest dealer (rule 2).
TEST(MwSvss, HonestDealerDetectsLyingConfirmer) {
  int detections = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[2] = ByzConfig{ByzKind::kWrongRecon};
    Runner r(c);
    auto res = r.run_mwsvss(Fp(1), Fp(1));
    if (!res.all_honest_output) continue;
    for (const auto& [i, j] : res.shun_pairs) {
      if (i == 0 && j == 2) ++detections;
    }
  }
  EXPECT_GT(detections, 0) << "dealer never caught the lying confirmer";
}

// --- Weak & moderated binding with a faulty dealer ---------------------
TEST(MwSvss, EquivocatingDealerBindingOrShun) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[0] = ByzConfig{ByzKind::kEquivocate};
    Runner r(c);
    // Moderator input matches what the dealer sends to the lower half.
    auto res = r.run_mwsvss(Fp(99), Fp(99), /*dealer=*/0, /*moderator=*/1);
    assert_weak_binding_or_shun(res.outputs, res.shun_pairs);
    assert_shuns_are_sound(res.shun_pairs, faulty_set(c));
  }
}

TEST(MwSvss, BitFlippingDealerNeverSplitsWithoutShun) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[0] = ByzConfig{ByzKind::kBitFlip, 0, 0.3};
    Runner r(c);
    auto res = r.run_mwsvss(Fp(1234), Fp(1234));
    assert_weak_binding_or_shun(res.outputs, res.shun_pairs);
    assert_shuns_are_sound(res.shun_pairs, faulty_set(c));
  }
}

// Moderated binding: if the moderator is honest and the share completes,
// the committed value is the moderator's s' — every non-bottom output
// equals s'.
TEST(MwSvss, ModeratedBindingPinsValueToModeratorInput) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[0] = ByzConfig{ByzKind::kBitFlip, 0, 0.15};
    Runner r(c);
    auto res = r.run_mwsvss(Fp(4242), Fp(4242), /*dealer=*/0,
                            /*moderator=*/1);
    if (!res.all_honest_shared || !res.shun_pairs.empty()) continue;
    for (const auto& [i, out] : res.outputs) {
      if (out) {
        EXPECT_EQ(*out, Fp(4242)) << "seed " << seed;
      }
    }
  }
}

// Lying moderator: honest processes may fail to complete, but never
// disagree without shunning, and only faulty processes get shunned.
TEST(MwSvss, LyingModeratorSafe) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto c = cfg(4, 1, seed);
    c.faults[1] = ByzConfig{ByzKind::kLyingModerator};
    Runner r(c);
    auto res = r.run_mwsvss(Fp(606), Fp(606), /*dealer=*/0, /*moderator=*/1);
    assert_weak_binding_or_shun(res.outputs, res.shun_pairs);
    assert_shuns_are_sound(res.shun_pairs, faulty_set(c));
  }
}

// All-or-none share completion (Termination, first clause), across fault
// mixes and seeds.
class MwSvssTerminationSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(MwSvssTerminationSweep, ShareCompletionIsAllOrNone) {
  auto [fault_kind, seed] = GetParam();
  auto c = cfg(4, 1, seed);
  c.faults[2] = ByzConfig{static_cast<ByzKind>(fault_kind)};
  Runner r(c);
  SessionId sid = mw_top_id(1, 0, 1);
  (void)r.run_mwsvss(Fp(11), Fp(11), 0, 1, /*reconstruct=*/true);
  int completed = 0;
  int honest = 0;
  for (int i : r.honest_ids()) {
    ++honest;
    const MwSvssSession* s = r.node(i).find_mw(sid);
    if (s != nullptr && s->share_complete()) ++completed;
  }
  EXPECT_TRUE(completed == 0 || completed == honest)
      << completed << "/" << honest;
}

INSTANTIATE_TEST_SUITE_P(
    FaultsAndSeeds, MwSvssTerminationSweep,
    ::testing::Combine(
        ::testing::Values(static_cast<int>(ByzKind::kSilent),
                          static_cast<int>(ByzKind::kEquivocate),
                          static_cast<int>(ByzKind::kWrongRecon),
                          static_cast<int>(ByzKind::kBitFlip)),
        ::testing::Values(1u, 2u, 3u, 4u, 5u)));

// Message complexity of one session stays polynomial (coarse guard).
TEST(MwSvss, MessageComplexityPolynomial) {
  for (int n : {4, 7, 10, 13}) {
    int t = (n - 1) / 3;
    Runner r(cfg(n, t, 500 + static_cast<std::uint64_t>(n)));
    auto res = r.run_mwsvss(Fp(1), Fp(1));
    ASSERT_TRUE(res.all_honest_output) << n;
    // Upper bound: c * n^4 covers the n^2 RB broadcasts of n^2 transport
    // packets each with plenty of slack.
    EXPECT_LT(res.metrics.packets_sent,
              20ull * static_cast<std::uint64_t>(n) * n * n * n)
        << n;
  }
}

}  // namespace
}  // namespace svss
