// Unit and property coverage for the schedule-search subsystem
// (src/search/): the coverage bitmap, the genome interpreter, mutation
// determinism, the corpus JSON round trip, and a small end-to-end search
// run (fast ideal-coin cells) checking baselines, determinism, and the
// ScheduleView-aware gene classes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "search/corpus.hpp"

namespace svss::search {
namespace {

// ---------------------------------------------------------------------
// CoverageMap
// ---------------------------------------------------------------------

TEST(CoverageMap, MarkReportsNoveltyOnce) {
  CoverageMap map;
  EXPECT_EQ(map.popcount(), 0u);
  EXPECT_TRUE(map.mark(42));
  EXPECT_FALSE(map.mark(42));
  EXPECT_TRUE(map.mark(43));
  EXPECT_EQ(map.popcount(), 2u);
  // Keys collide only modulo the bitmap size.
  EXPECT_FALSE(map.mark(42 + CoverageMap::kBits));
}

TEST(CoverageMap, MergeAndNoveltyCountFreshBitsOnly) {
  CoverageMap a;
  CoverageMap b;
  a.mark(1);
  a.mark(2);
  b.mark(2);
  b.mark(3);
  b.mark(4);
  EXPECT_EQ(a.novel_bits(b), 2u);  // 3 and 4
  EXPECT_EQ(a.merge(b), 2u);
  EXPECT_EQ(a.popcount(), 4u);
  EXPECT_EQ(a.novel_bits(b), 0u);
  EXPECT_EQ(a.merge(b), 0u);
}

// ---------------------------------------------------------------------
// Genome interpreter
// ---------------------------------------------------------------------

PendingInfo info(std::uint64_t seq, int from, int to, bool is_rb = false) {
  return PendingInfo{seq, from, to, is_rb};
}

TEST(GenomeScheduler, DelayGeneDisplacesOnlyMatchedTraffic) {
  ScheduleGenome g;
  g.jitter = 0;  // exact arithmetic
  Gene gene;
  gene.to = 2;
  gene.delay = 1000;
  g.genes.push_back(gene);
  GenomeScheduler sched(g);
  EXPECT_EQ(sched.priority(info(5, 0, 2)), 1005u);
  EXPECT_EQ(sched.priority(info(5, 0, 1)), 5u);
}

TEST(GenomeScheduler, FrontGenePinsToFrontBand) {
  ScheduleGenome g;
  g.jitter = 0;
  Gene gene;
  gene.from = 3;
  gene.front = true;
  g.genes.push_back(gene);
  GenomeScheduler sched(g);
  EXPECT_EQ(sched.priority(info(900, 3, 0)), 0u);
  EXPECT_EQ(sched.priority(info(900, 2, 0)), 900u);
}

TEST(GenomeScheduler, RbFilterAndStackedGenesCompose) {
  ScheduleGenome g;
  g.jitter = 0;
  Gene rb_only;
  rb_only.is_rb = 1;
  rb_only.delay = 100;
  Gene to_one;
  to_one.to = 1;
  to_one.delay = 7;
  g.genes = {rb_only, to_one};
  GenomeScheduler sched(g);
  EXPECT_EQ(sched.priority(info(10, 0, 1, /*is_rb=*/true)), 117u);
  EXPECT_EQ(sched.priority(info(10, 0, 1, /*is_rb=*/false)), 17u);
  EXPECT_EQ(sched.priority(info(10, 0, 2, /*is_rb=*/true)), 110u);
}

TEST(GenomeScheduler, ClassGenesAreInertWithoutView) {
  // kDeceived/kClear need an attached ScheduleView; unattached they must
  // not match (a genome replayed outside a Runner degrades gracefully
  // instead of misclassifying).
  ScheduleGenome g;
  g.jitter = 0;
  Gene gene;
  gene.to_class = SlotClass::kDeceived;
  gene.delay = 1000;
  g.genes.push_back(gene);
  GenomeScheduler sched(g);
  EXPECT_EQ(sched.priority(info(5, 0, 2)), 5u);
}

TEST(GenomeScheduler, WindowedGeneNeedsViewForItsClock) {
  ScheduleGenome g;
  g.jitter = 0;
  Gene gene;
  gene.to = 2;
  gene.after = 50;
  gene.delay = 1000;
  g.genes.push_back(gene);
  GenomeScheduler sched(g);
  // No view: a window with after > 0 can never be active.
  EXPECT_EQ(sched.priority(info(5, 0, 2)), 5u);
}

TEST(GenomeScheduler, SameGenomeSamePrioritySequence) {
  Rng rng(99);
  ScheduleGenome g = random_genome(rng, 4);
  GenomeScheduler a(g);
  GenomeScheduler b(g);
  for (std::uint64_t seq = 0; seq < 256; ++seq) {
    PendingInfo p = info(seq, static_cast<int>(seq % 4),
                         static_cast<int>((seq + 1) % 4), seq % 3 == 0);
    EXPECT_EQ(a.priority(p), b.priority(p)) << "seq " << seq;
  }
}

// ---------------------------------------------------------------------
// Mutation determinism
// ---------------------------------------------------------------------

TEST(GenomeMutation, PureFunctionOfRngStream) {
  Rng seed_rng(7);
  ScheduleGenome parent = random_genome(seed_rng, 4);
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(mutate_genome(parent, a, 4), mutate_genome(parent, b, 4));
  }
  Rng c(7);
  EXPECT_EQ(random_genome(c, 4), parent);
}

TEST(GenomeMutation, StaysWithinGeneBudget) {
  Rng rng(5);
  ScheduleGenome g = random_genome(rng, 4);
  for (int i = 0; i < 200; ++i) {
    g = mutate_genome(g, rng, 4);
    EXPECT_LE(g.genes.size(), kMaxGenes);
  }
}

// ---------------------------------------------------------------------
// JSON round trips
// ---------------------------------------------------------------------

TEST(CorpusJson, GenomeRoundTrips) {
  Rng rng(2026);
  for (int i = 0; i < 20; ++i) {
    ScheduleGenome g = random_genome(rng, 7);
    std::string error;
    auto parsed = parse_genome(g.to_json(), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(*parsed, g);
  }
}

TEST(CorpusJson, EntryRoundTrips) {
  CorpusEntry e;
  e.name = "cabal-n4-test";
  e.n = 4;
  e.strategy = adversary::StrategyKind::kColludingCabal;
  e.mode = CoinMode::kSvss;
  e.seeds = {11, 22, 33};
  e.max_deliveries = 12'345'678;
  Rng rng(1);
  e.genome = random_genome(rng, 4);
  e.worst_rounds = 9;
  e.total_rounds = 21;
  e.baseline_kind = "lifo";
  e.baseline_worst_rounds = 5;
  e.baseline_total_rounds = 12;
  e.trace_hash = 0xDEADBEEFCAFE1234ULL;

  std::string error;
  auto parsed = parse_corpus_entry(e.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->name, e.name);
  EXPECT_EQ(parsed->n, e.n);
  EXPECT_EQ(parsed->strategy, e.strategy);
  EXPECT_EQ(parsed->mode, e.mode);
  EXPECT_EQ(parsed->seeds, e.seeds);
  EXPECT_EQ(parsed->max_deliveries, e.max_deliveries);
  EXPECT_EQ(parsed->genome, e.genome);
  EXPECT_EQ(parsed->worst_rounds, e.worst_rounds);
  EXPECT_EQ(parsed->total_rounds, e.total_rounds);
  EXPECT_EQ(parsed->baseline_kind, e.baseline_kind);
  EXPECT_EQ(parsed->baseline_worst_rounds, e.baseline_worst_rounds);
  EXPECT_EQ(parsed->baseline_total_rounds, e.baseline_total_rounds);
  EXPECT_EQ(parsed->trace_hash, e.trace_hash);
}

TEST(CorpusJson, MalformedDocumentsAreRejectedWithDiagnostics) {
  const char* bad[] = {
      "",                                  // empty
      "{",                                 // truncated
      "[1, 2]",                            // wrong top-level shape
      "{\"n\": 4}",                        // missing fields
      "{\"seed\": 1.5, \"jitter\": 0, \"genes\": []}",  // float
      "{\"seed\": 1, \"jitter\": 0, \"genes\": [{\"bogus\": 1}]}",
  };
  for (const char* doc : bad) {
    std::string error;
    EXPECT_FALSE(parse_corpus_entry(doc, &error).has_value()) << doc;
    EXPECT_FALSE(parse_genome(doc, &error).has_value()) << doc;
    EXPECT_FALSE(error.empty()) << doc;
  }
}

// ---------------------------------------------------------------------
// End-to-end search (fast ideal-coin cells)
// ---------------------------------------------------------------------

SearchSpec small_spec() {
  SearchSpec spec;
  spec.n = 4;
  spec.strategy = adversary::StrategyKind::kColludingCabal;
  spec.mode = CoinMode::kIdealCommon;
  spec.seeds = {11};
  spec.max_deliveries = 5'000'000;
  spec.iterations = 6;
  spec.population = 3;
  spec.search_seed = 4242;
  return spec;
}

TEST(ScheduleSearch, EvaluatesCellsAndRecordsCoverage) {
  ScheduleSearch s(small_spec());
  Rng rng(1);
  ScheduleGenome g = random_genome(rng, 4);
  EvalOutcome first = s.evaluate(g);
  EXPECT_TRUE(first.decided);
  EXPECT_FALSE(first.capped);
  EXPECT_TRUE(first.safe);
  EXPECT_GT(first.worst_rounds, 0u);
  EXPECT_GT(first.new_bits, 0u);  // first run against an empty map
  // Re-evaluating the identical genome adds nothing to coverage and
  // reproduces the trace exactly.
  EvalOutcome second = s.evaluate(g);
  EXPECT_EQ(second.new_bits, 0u);
  EXPECT_EQ(second.trace_hash, first.trace_hash);
  EXPECT_EQ(second.worst_rounds, first.worst_rounds);
}

TEST(ScheduleSearch, RunBaselinesFixedKindsAndIsDeterministic) {
  SearchResult a = ScheduleSearch(small_spec()).run();
  SearchResult b = ScheduleSearch(small_spec()).run();
  EXPECT_EQ(a.evaluations, 6);
  EXPECT_GT(a.baseline_worst_rounds, 0u);
  EXPECT_GT(a.coverage_bits, 0u);
  EXPECT_FALSE(a.safety_violation);
  EXPECT_TRUE(a.have_best);
  // The whole search trajectory is a pure function of the spec.
  EXPECT_EQ(a.best.genome, b.best.genome);
  EXPECT_EQ(a.best.trace_hash, b.best.trace_hash);
  EXPECT_EQ(a.best.worst_rounds, b.best.worst_rounds);
  EXPECT_EQ(a.baseline_kind, b.baseline_kind);
  EXPECT_EQ(a.baseline_worst_rounds, b.baseline_worst_rounds);
  EXPECT_EQ(a.coverage_bits, b.coverage_bits);
}

TEST(ScheduleSearch, ViewAwareGenesRunThroughRealCells) {
  // A genome that only speaks in ScheduleView classes (delay everything
  // sent to currently-deceived processes; front-pin adversary traffic in
  // an early window) must interpret cleanly inside a full Runner cell.
  ScheduleGenome g;
  g.seed = 31337;
  g.jitter = 256;
  Gene starve_deceived;
  starve_deceived.to_class = SlotClass::kDeceived;
  starve_deceived.delay = 1 << 16;
  Gene hasten_adversary;
  hasten_adversary.from_class = SlotClass::kAdversary;
  hasten_adversary.until = 2'000;
  hasten_adversary.front = true;
  g.genes = {starve_deceived, hasten_adversary};

  CellResult cell = run_search_cell(
      4, adversary::StrategyKind::kColludingCabal, CoinMode::kIdealCommon,
      11, 5'000'000, make_genome_factory(g), nullptr);
  EXPECT_TRUE(cell.all_decided);
  EXPECT_FALSE(cell.capped);
  EXPECT_TRUE(cell.agreed);
  EXPECT_TRUE(cell.valid);
  EXPECT_GT(cell.rounds, 0u);
}

TEST(ScheduleSearch, ReplayMatchesSearchScores) {
  // make_corpus_entry + replay_corpus_entry reproduce exactly what the
  // search measured — the contract the corpus gate depends on.
  SearchSpec spec = small_spec();
  SearchResult result = ScheduleSearch(spec).run();
  ASSERT_TRUE(result.have_best);
  CorpusEntry entry = make_corpus_entry(spec, result, "roundtrip");
  auto rep = replay_corpus_entry(entry);
  EXPECT_EQ(rep.worst_rounds, entry.worst_rounds);
  EXPECT_EQ(rep.total_rounds, entry.total_rounds);
  EXPECT_EQ(rep.trace_hash, entry.trace_hash);
  EXPECT_TRUE(rep.decided);
  EXPECT_FALSE(rep.capped);
  EXPECT_TRUE(rep.safe);
}

}  // namespace
}  // namespace svss::search
