// Batched vs unbatched coin-round SVSS dealing (src/coin/batched_transport).
//
// The batched transport is a *framing* change: the n coin-owned SVSS
// sessions per (round, dealer) share one direct envelope per recipient and
// one G-set RBC instance, but the sessions run the unmodified dealing code
// in the same order, so RNG consumption — and therefore every dealt
// polynomial and secret — is identical per seed across the two modes.
// What batching may legitimately change is the packet schedule (fewer,
// fatter packets), and with it which G-sets freeze first and hence the
// coin's output bit; what it must never change is any dealt or
// reconstructed value, termination, or the shunning discipline.
//
// Property, per (scheduler x adversary strategy x seed) cell:
//  1. both modes terminate (quiescent; honest cells produce all outputs);
//  2. every coin-owned SVSS session of an *honest* dealer that completes
//     reconstruction in both runs reconstructs the *same* value at every
//     process — the batched wire never alters content;
//  3. shunning stays sound in both modes (honest processes only ever shun
//     faulty slots; none in honest cells);
//  4. batched runs replay deterministically (same config => byte-identical
//     event log).
// ABA cells additionally require matching clean verdicts (decided, agreed,
// valid) in both modes.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <tuple>
#include <vector>

#include "adversary/adversary.hpp"
#include "core/runner.hpp"
#include "sweep_common.hpp"

namespace svss {
namespace {

using adversary::AdversaryConfig;
using adversary::StrategyKind;

// (process, session) -> reconstructed value of a coin-owned SVSS session.
using ReconMap =
    std::map<std::pair<int, SessionId>, std::optional<std::int64_t>>;

ReconMap coin_recon_outputs(const EventLog& log) {
  ReconMap out;
  for (const Event& e : log.events()) {
    if (e.kind != EventKind::kSvssReconOutput) continue;
    if (e.sid.path != SessionPath::kSvssCoin) continue;
    out.emplace(std::make_pair(e.who, e.sid),
                e.has_value ? std::optional<std::int64_t>(e.value)
                            : std::nullopt);
  }
  return out;
}

struct Cell {
  std::optional<StrategyKind> strategy;  // nullopt = all honest
  SchedulerKind scheduler;
  std::uint64_t seed;
};

RunnerConfig cell_config(const Cell& cell, bool batched) {
  RunnerConfig cfg;
  cfg.n = 4;
  cfg.t = 1;
  cfg.seed = cell.seed;
  cfg.scheduler = cell.scheduler;
  cfg.batched_coin_dealing = batched;
  cfg.max_deliveries = 20'000'000;
  cfg.warn_on_cap = false;  // adversarial dealers may stall cleanly
  if (cell.strategy) {
    adversary::install_adversaries(cfg, *cell.strategy, cfg.t);
  }
  return cfg;
}

// Honest dealers in the cell (adversaries occupy the top t slots).
bool honest_dealer(const Cell& cell, int dealer) {
  return !cell.strategy || dealer < 3;
}

void expect_sound_shuns(const Runner& r, const Cell& cell,
                        const char* mode) {
  for (const auto& [who, whom] : r.honest_shun_pairs()) {
    EXPECT_FALSE(r.is_honest(whom))
        << mode << ": honest " << who << " shunned honest " << whom
        << " (seed " << cell.seed << ")";
  }
}

// Every scheduler x every PR-3 strategy (plus honest cells), one coin
// round each in both modes.
TEST(BatchEquivalence, CoinRoundValuesAndVerdictsMatch) {
  std::vector<Cell> cells;
  for (SchedulerKind sched : sweep::kAllSchedulers) {
    for (std::uint64_t seed : {7101ull, 7102ull}) {
      cells.push_back(Cell{std::nullopt, sched, seed});
    }
    int k = 0;
    for (StrategyKind strategy : adversary::kAllStrategies) {
      cells.push_back(
          Cell{strategy, sched, 7200 + static_cast<std::uint64_t>(k++)});
    }
  }

  for (const Cell& cell : cells) {
    ReconMap recon[2];
    bool quiescent[2] = {false, false};
    bool all_output[2] = {false, false};
    for (int batched = 0; batched <= 1; ++batched) {
      Runner r(cell_config(cell, batched != 0));
      auto res = r.run_coin();
      quiescent[batched] = res.status == RunStatus::kQuiescent;
      all_output[batched] = res.all_output;
      for (const auto& [i, bit] : res.bits) {
        EXPECT_TRUE(bit == 0 || bit == 1);
        (void)i;
      }
      expect_sound_shuns(r, cell, batched ? "batched" : "unbatched");
      if (!cell.strategy) {
        EXPECT_TRUE(res.all_output)
            << "seed " << cell.seed << " batched=" << batched;
        EXPECT_TRUE(res.shun_pairs.empty())
            << "seed " << cell.seed << " batched=" << batched;
      }
      recon[batched] = coin_recon_outputs(r.engine().log());
    }
    EXPECT_TRUE(quiescent[0] && quiescent[1]) << "seed " << cell.seed;
    if (!cell.strategy) {
      EXPECT_EQ(all_output[0], all_output[1]) << "seed " << cell.seed;
    }

    // Content equivalence: a session of an honest dealer reconstructed to
    // a value in both modes reconstructed to the *same* value — the
    // batched framing never changes what was dealt.
    int compared = 0;
    for (const auto& [key, value] : recon[0]) {
      if (!honest_dealer(cell, key.second.owner)) continue;
      auto it = recon[1].find(key);
      if (it == recon[1].end()) continue;
      if (!value || !it->second) continue;  // bottom implies shunning
      EXPECT_EQ(*value, *it->second)
          << "process " << key.first << " session " << key.second.str()
          << " seed " << cell.seed;
      ++compared;
    }
    if (!cell.strategy) {
      // Honest cells reconstruct every session in both modes: the content
      // check must not be vacuous.
      EXPECT_GT(compared, 0) << "seed " << cell.seed;
    }
  }
}

// Full agreement through the SVSS coin: both modes must reach clean verdicts
// (decided, agreed, valid) for the same seed under every scheduler.
TEST(BatchEquivalence, AbaVerdictsMatchAcrossModes) {
  for (SchedulerKind sched : sweep::kAllSchedulers) {
    for (std::uint64_t seed : {7301ull, 7302ull}) {
      for (int batched = 0; batched <= 1; ++batched) {
        RunnerConfig cfg;
        cfg.n = 4;
        cfg.t = 1;
        cfg.seed = seed;
        cfg.scheduler = sched;
        cfg.batched_coin_dealing = batched != 0;
        Runner r(cfg);
        auto res = r.run_aba({0, 1, 0, 1}, CoinMode::kSvss);
        EXPECT_TRUE(res.all_decided)
            << "seed " << seed << " batched=" << batched;
        EXPECT_TRUE(res.agreed) << "seed " << seed << " batched=" << batched;
        EXPECT_TRUE(res.value == 0 || res.value == 1);
        EXPECT_EQ(res.status, RunStatus::kQuiescent);
      }
    }
  }
}

// Determinism: the batched path is a pure function of the config — two
// runs of the same seed produce byte-identical event logs (the engine's
// replay guarantee extends to the new transport).
TEST(BatchEquivalence, BatchedRunsReplayDeterministically) {
  auto fingerprint = [](const EventLog& log) {
    std::vector<std::tuple<int, int, int, SessionId, std::int64_t, bool>> fp;
    for (const Event& e : log.events()) {
      fp.emplace_back(static_cast<int>(e.kind), e.who, e.other, e.sid,
                      e.value, e.has_value);
    }
    return fp;
  };
  for (SchedulerKind sched : sweep::kAllSchedulers) {
    std::optional<decltype(fingerprint(EventLog{}))> first;
    for (int rep = 0; rep < 2; ++rep) {
      RunnerConfig cfg;
      cfg.n = 4;
      cfg.t = 1;
      cfg.seed = 7400;
      cfg.scheduler = sched;
      Runner r(cfg);
      auto res = r.run_coin();
      ASSERT_TRUE(res.all_output);
      auto fp = fingerprint(r.engine().log());
      if (!first) {
        first = std::move(fp);
      } else {
        EXPECT_EQ(*first, fp) << sweep::scheduler_name(sched);
      }
    }
  }
}

}  // namespace
}  // namespace svss
