// Differential equivalence across wire framings (tests/equivalence_common).
//
// Two batched transports change the protocol's framing without touching
// its content: the coin-dealing batcher (src/coin/batched_transport, PR 4)
// and the MW child-traffic coalescer (src/mwsvss/group_transport).  The
// harness in equivalence_common.hpp states what "without touching content"
// means — identical reconstructed values for honest dealers, matching
// clean verdicts, sound shunning, deterministic replay — over the full
// seeds x adversary-strategies x SchedulerKinds grid.  This file
// instantiates it for the three variant pairs: MW coalescing alone,
// coin-dealing batching alone, and the combined (default) mode, each
// against the fully per-session framing.
#include <gtest/gtest.h>

#include "equivalence_common.hpp"

namespace svss {
namespace {

using equivalence::Variant;
using equivalence::VariantPair;

Variant unbatched() {
  return Variant{"unbatched", [](RunnerConfig& cfg) {
                   cfg.batched_coin_dealing = false;
                   cfg.batched_mw_children = false;
                 }};
}

Variant mw_only() {
  return Variant{"mw-batched", [](RunnerConfig& cfg) {
                   cfg.batched_coin_dealing = false;
                   cfg.batched_mw_children = true;
                 }};
}

Variant coin_only() {
  return Variant{"coin-batched", [](RunnerConfig& cfg) {
                   cfg.batched_coin_dealing = true;
                   cfg.batched_mw_children = false;
                 }};
}

Variant combined() {
  return Variant{"combined", [](RunnerConfig& cfg) {
                   cfg.batched_coin_dealing = true;
                   cfg.batched_mw_children = true;
                 }};
}

// --- MW group coalescing alone -------------------------------------
TEST(BatchEquivalence, MwCoalescingCoinValuesAndVerdictsMatch) {
  equivalence::run_coin_equivalence(VariantPair{unbatched(), mw_only()});
}

TEST(BatchEquivalence, MwCoalescingAbaVerdictsMatch) {
  equivalence::run_aba_equivalence(VariantPair{unbatched(), mw_only()});
}

// --- coin-dealing batching alone (the PR-4 property, re-based) ------
TEST(BatchEquivalence, CoinDealingCoinValuesAndVerdictsMatch) {
  equivalence::run_coin_equivalence(VariantPair{unbatched(), coin_only()});
}

TEST(BatchEquivalence, CoinDealingAbaVerdictsMatch) {
  equivalence::run_aba_equivalence(VariantPair{unbatched(), coin_only()});
}

// --- combined mode (the production default) -------------------------
TEST(BatchEquivalence, CombinedCoinValuesAndVerdictsMatch) {
  equivalence::run_coin_equivalence(VariantPair{unbatched(), combined()});
}

TEST(BatchEquivalence, CombinedAbaVerdictsMatch) {
  equivalence::run_aba_equivalence(VariantPair{unbatched(), combined()});
}

// --- replay determinism of every framing ----------------------------
// The engine's byte-identical-replay guarantee must extend to each
// transport: a framing is a pure function of the config.
TEST(BatchEquivalence, EveryFramingReplaysDeterministically) {
  for (const Variant& v :
       {unbatched(), mw_only(), coin_only(), combined()}) {
    equivalence::run_replay_determinism(v);
  }
}

}  // namespace
}  // namespace svss
