// Multi-instance agreement: k concurrent instances multiplexed over one
// node/transport stack (SessionId::instance + cross-instance vote
// batching, src/aba/vote_batch.hpp).
//
// Three properties pinned here:
//
//  1. Per-instance correctness under concurrency — k instances driven
//     through Runner::submit/run_submitted each satisfy agreement and
//     validity independently.  Inputs are unanimous per instance
//     (instance i gets input i % 2 everywhere), so validity forces the
//     decision of instance i to equal i % 2 exactly — any cross-instance
//     vote bleed (a batching or routing bug) flips some instance to the
//     wrong value and fails loudly.
//  2. Framing equivalence — the batched and per-session vote framings
//     reach the same per-instance decisions, and the batched run actually
//     coalesces: it moves fewer agreement packets while the per-session
//     run moves none of the envelope types.
//  3. Backend equivalence — the socket-loopback backend reaches the same
//     per-instance decisions as the simulator for the same submission
//     set, riding the batched envelopes over real TCP untranslated.
#include <gtest/gtest.h>

#include "core/runner.hpp"

namespace svss {
namespace {

constexpr int kN = 4;
constexpr std::uint32_t kInstances = 4;

RunnerConfig base_config(std::uint64_t seed) {
  RunnerConfig cfg;
  cfg.n = kN;
  cfg.t = 1;
  cfg.seed = seed;
  return cfg;
}

// Submit kInstances instances with unanimous per-instance inputs:
// instance i's input is i % 2 at every process.
void submit_unanimous(Runner& r) {
  for (std::uint32_t i = 0; i < kInstances; ++i) {
    r.submit(i, std::vector<int>(kN, static_cast<int>(i) % 2));
  }
}

void expect_valid_decisions(const Runner::MultiAbaResult& res,
                            const char* label) {
  EXPECT_TRUE(res.all_decided) << label;
  EXPECT_TRUE(res.agreed) << label;
  EXPECT_EQ(res.status, RunStatus::kQuiescent) << label;
  ASSERT_EQ(res.values.size(), kInstances) << label;
  for (std::uint32_t i = 0; i < kInstances; ++i) {
    auto it = res.values.find(i);
    ASSERT_NE(it, res.values.end()) << label << " instance " << i;
    // Unanimous inputs: validity pins the decision to the common input.
    EXPECT_EQ(it->second, static_cast<int>(i) % 2)
        << label << " instance " << i;
  }
}

TEST(MultiInstance, ConcurrentInstancesDecideTheirOwnInputs) {
  for (std::uint64_t seed : {7301ull, 7302ull, 7303ull}) {
    Runner r(base_config(seed));
    submit_unanimous(r);
    expect_valid_decisions(r.run_submitted(CoinMode::kIdealCommon), "sim");
  }
}

// Mixed inputs within each instance: agreement must still hold per
// instance (the decided value is schedule-dependent, but all honest
// processes of one instance must match).
TEST(MultiInstance, MixedInputsStayAgreedPerInstance) {
  RunnerConfig cfg = base_config(7311);
  Runner r(cfg);
  for (std::uint32_t i = 0; i < kInstances; ++i) {
    std::vector<int> inputs;
    for (int p = 0; p < kN; ++p) {
      inputs.push_back((p + static_cast<int>(i)) % 2);
    }
    r.submit(i, std::move(inputs));
  }
  auto res = r.run_submitted(CoinMode::kIdealCommon);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  EXPECT_EQ(res.values.size(), kInstances);
}

// The full-stack SVSS coin also multiplexes: every instance runs its own
// shunning-common-coin rounds namespaced by SessionId::instance.
TEST(MultiInstance, SvssCoinInstancesStayIndependent) {
  RunnerConfig cfg = base_config(7321);
  Runner r(cfg);
  for (std::uint32_t i = 0; i < 2; ++i) {
    r.submit(i, std::vector<int>(kN, static_cast<int>(i) % 2));
  }
  auto res = r.run_submitted(CoinMode::kSvss);
  EXPECT_TRUE(res.all_decided);
  EXPECT_TRUE(res.agreed);
  ASSERT_EQ(res.values.size(), 2u);
  EXPECT_EQ(res.values.at(0), 0);
  EXPECT_EQ(res.values.at(1), 1);
}

TEST(MultiInstance, VoteFramingsReachTheSameDecisions) {
  auto run = [](Framing votes) {
    RunnerConfig cfg = base_config(7331);
    cfg.transport.aba_votes = votes;
    Runner r(cfg);
    submit_unanimous(r);
    return r.run_submitted(CoinMode::kIdealCommon);
  };
  auto batched = run(Framing::kBatched);
  auto per_session = run(Framing::kPerSession);
  expect_valid_decisions(batched, "batched");
  expect_valid_decisions(per_session, "per-session");
  EXPECT_EQ(batched.values, per_session.values);

  // The batched run must actually coalesce: envelope packets exist, the
  // per-session run has none, and the batched run moves fewer agreement
  // packets overall.
  auto aba_packets = [](const Metrics& m) {
    return m.packets_by_type[static_cast<std::size_t>(MsgType::kAbaVote)] +
           m.packets_by_type[static_cast<std::size_t>(
               MsgType::kAbaBatchVote)] +
           m.packets_by_type[static_cast<std::size_t>(
               MsgType::kAbaBatchConf)];
  };
  auto envelopes = [](const Metrics& m) {
    return m.packets_by_type[static_cast<std::size_t>(
               MsgType::kAbaBatchVote)] +
           m.packets_by_type[static_cast<std::size_t>(
               MsgType::kAbaBatchConf)];
  };
  EXPECT_GT(envelopes(batched.metrics), 0u);
  EXPECT_EQ(envelopes(per_session.metrics), 0u);
  EXPECT_LT(aba_packets(batched.metrics), aba_packets(per_session.metrics));
}

TEST(MultiInstance, SocketLoopbackMatchesSim) {
  auto run = [](TransportKind kind) {
    RunnerConfig cfg = base_config(7341);
    cfg.transport.kind = kind;
    Runner r(cfg);
    submit_unanimous(r);
    return r.run_submitted(CoinMode::kIdealCommon);
  };
  auto sim = run(TransportKind::kSim);
  auto loopback = run(TransportKind::kSocketLoopback);
  expect_valid_decisions(sim, "sim");
  expect_valid_decisions(loopback, "socket-loopback");
  EXPECT_EQ(sim.values, loopback.values);
  EXPECT_EQ(sim.decisions, loopback.decisions);
}

TEST(MultiInstance, SubmitValidatesItsArguments) {
  Runner r(base_config(7351));
  EXPECT_THROW(r.submit(0, std::vector<int>(kN - 1, 0)),
               std::invalid_argument);
  r.submit(0, std::vector<int>(kN, 1));
  EXPECT_THROW(r.submit(0, std::vector<int>(kN, 0)), std::invalid_argument);
  Runner empty(base_config(7352));
  EXPECT_THROW(empty.run_submitted(), std::invalid_argument);
}

}  // namespace
}  // namespace svss
