#!/usr/bin/env bash
# Recovery smoke test: crash + checkpoint-restart of one daemon mid-run.
#
# Launches a fleet of n=4 example_agreement_cluster daemons running K=3
# concurrent agreement instances with durable decisions (--checkpoint).
# As soon as replica 3 has persisted its first decision (journal
# non-empty), it is SIGKILLed — the remaining instances are typically
# still in flight, so the kill lands mid-agreement.  The survivors
# (n - t = 3) must still decide every instance; replica 3 is then
# restarted from its checkpoint + journal, must recover, run the
# catch-up handshake against the lingering survivors, and print the same
# decisions.  Finally every replica gets SIGTERM and must exit 0.
#
# Usage: scripts/recovery_smoke.sh [path-to-example_agreement_cluster]
# Env:   RECOVERY_SMOKE_BASE_PORT (default 45300), RECOVERY_SMOKE_SEED (11),
#        RECOVERY_SMOKE_TIMEOUT seconds (120).
set -euo pipefail

BIN="${1:-build/examples/example_agreement_cluster}"
BASE_PORT="${RECOVERY_SMOKE_BASE_PORT:-45300}"
SEED="${RECOVERY_SMOKE_SEED:-11}"
TIMEOUT="${RECOVERY_SMOKE_TIMEOUT:-120}"
N=4
K=3
VICTIM=3

if [[ ! -x "$BIN" ]]; then
  echo "recovery_smoke: binary not found or not executable: $BIN" >&2
  exit 2
fi

PEERS=""
for ((i = 0; i < N; i++)); do
  PEERS+="${PEERS:+,}127.0.0.1:$((BASE_PORT + i))"
done

WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

dump_logs() {
  for f in "$WORKDIR"/replica-*.log; do
    echo "--- $f ---"; cat "$f"
  done
}

# Launches one replica in the background; the PID lands in LAUNCH_PID
# (a command substitution would fork, making the daemon un-wait-able).
# Extra flags (e.g. --rejoin) are passed through.
launch() {
  local id="$1" log="$2"
  shift 2
  "$BIN" --id "$id" --peers "$PEERS" --seed "$SEED" --instances "$K" \
    --checkpoint "$WORKDIR/ckpt-$id" --linger-ms 60000 "$@" \
    >"$log" 2>&1 &
  LAUNCH_PID=$!
}

echo "recovery_smoke: fleet of $N on ports $BASE_PORT-$((BASE_PORT + N - 1))," \
     "$K instances, seed $SEED, victim $VICTIM"
for ((i = 0; i < N; i++)); do
  launch "$i" "$WORKDIR/replica-$i.log"
  PIDS+=("$LAUNCH_PID")
done
VICTIM_PID="${PIDS[$VICTIM]}"

# Kill the victim as soon as it has persisted at least one decision
# (journal non-empty or a checkpoint written) — the remaining instances
# are usually still undecided, so this is a genuine mid-agreement crash.
deadline=$((SECONDS + TIMEOUT / 2))
while [[ ! -s "$WORKDIR/ckpt-$VICTIM.journal" && \
         ! -s "$WORKDIR/ckpt-$VICTIM" ]]; do
  if ((SECONDS >= deadline)); then
    echo "recovery_smoke: FAIL — victim never persisted a decision" >&2
    dump_logs
    exit 1
  fi
  if ! kill -0 "$VICTIM_PID" 2>/dev/null; then
    echo "recovery_smoke: FAIL — victim exited before the kill" >&2
    dump_logs
    exit 1
  fi
  sleep 0.05
done
kill -9 "$VICTIM_PID" 2>/dev/null || true
wait "$VICTIM_PID" 2>/dev/null || true
echo "recovery_smoke: victim killed (SIGKILL) with journal on disk"

# The survivors (n - t of n) must decide every instance without the victim.
deadline=$((SECONDS + TIMEOUT))
for ((i = 0; i < N; i++)); do
  [[ "$i" == "$VICTIM" ]] && continue
  while (($(grep -c 'decided instance=' "$WORKDIR/replica-$i.log" \
            2>/dev/null || true) < K)); do
    if ((SECONDS >= deadline)); then
      echo "recovery_smoke: FAIL — survivor $i undecided after ${TIMEOUT}s" >&2
      dump_logs
      exit 1
    fi
    sleep 0.2
  done
done
echo "recovery_smoke: survivors decided all $K instances"

# Restart the victim from its checkpoint.  It must take the recovery
# path, catch up against the lingering survivors, and print the same
# per-instance decisions.
launch "$VICTIM" "$WORKDIR/replica-$VICTIM-restart.log"
RESTART_PID="$LAUNCH_PID"
PIDS[$VICTIM]="$RESTART_PID"
while (($(grep -c 'decided instance=' \
          "$WORKDIR/replica-$VICTIM-restart.log" 2>/dev/null || true) < K)); do
  if ((SECONDS >= deadline)); then
    echo "recovery_smoke: FAIL — restarted victim did not catch up" >&2
    dump_logs
    exit 1
  fi
  if ! kill -0 "$RESTART_PID" 2>/dev/null; then
    echo "recovery_smoke: FAIL — restarted victim exited early" >&2
    dump_logs
    exit 1
  fi
  sleep 0.2
done
if ! grep -q 'rejoining with' "$WORKDIR/replica-$VICTIM-restart.log"; then
  echo "recovery_smoke: FAIL — restart did not take the recovery path" >&2
  dump_logs
  exit 1
fi
echo "recovery_smoke: restarted victim recovered and caught up" \
     "($(grep -o 'caught up in.*' "$WORKDIR/replica-$VICTIM-restart.log" \
         || echo 'no catch-up line'))"

# Phase 2: the worst-case restart — the crash destroyed the local state
# too (or landed before the first journal write).  Kill the recovered
# victim again, wipe its checkpoint + journal, and restart with --rejoin:
# it must adopt every decision over the wire from t+1 matching peers.
kill -9 "$RESTART_PID" 2>/dev/null || true
wait "$RESTART_PID" 2>/dev/null || true
rm -f "$WORKDIR/ckpt-$VICTIM" "$WORKDIR/ckpt-$VICTIM.journal"
launch "$VICTIM" "$WORKDIR/replica-$VICTIM-restart2.log" --rejoin
RESTART_PID="$LAUNCH_PID"
PIDS[$VICTIM]="$RESTART_PID"
while (($(grep -c 'decided instance=' \
          "$WORKDIR/replica-$VICTIM-restart2.log" 2>/dev/null || true) < K)); do
  if ((SECONDS >= deadline)); then
    echo "recovery_smoke: FAIL — stateless rejoin did not catch up" >&2
    dump_logs
    exit 1
  fi
  if ! kill -0 "$RESTART_PID" 2>/dev/null; then
    echo "recovery_smoke: FAIL — stateless rejoin exited early" >&2
    dump_logs
    exit 1
  fi
  sleep 0.2
done
CATCHUP_LINE="$(grep -o 'caught up in.*' \
                "$WORKDIR/replica-$VICTIM-restart2.log" || true)"
if ! grep -q 'frames=[1-9]' <<<"$CATCHUP_LINE"; then
  echo "recovery_smoke: FAIL — stateless rejoin adopted nothing over the" \
       "wire ($CATCHUP_LINE)" >&2
  dump_logs
  exit 1
fi
echo "recovery_smoke: stateless rejoin adopted decisions over the wire" \
     "($CATCHUP_LINE)"

# Tell everyone to wind down; each must exit 0 (clean signal handling).
for pid in "${PIDS[@]}"; do
  kill "$pid" 2>/dev/null || true
done
for idx in "${!PIDS[@]}"; do
  if ! wait "${PIDS[$idx]}"; then
    echo "recovery_smoke: FAIL — replica $idx exited non-zero on SIGTERM" >&2
    dump_logs
    exit 1
  fi
done
PIDS=()

# Cross-replica agreement, per instance, including the restarted victim.
LOGS=()
for ((i = 0; i < N; i++)); do
  if [[ "$i" == "$VICTIM" ]]; then
    LOGS+=("$WORKDIR/replica-$i-restart2.log")
  else
    LOGS+=("$WORKDIR/replica-$i.log")
  fi
done
for ((k = 1; k <= K; k++)); do
  first=""
  for log in "${LOGS[@]}"; do
    line="$(grep -o "decided instance=$k value=[01]" "$log" | head -n1 || true)"
    if [[ -z "$line" ]]; then
      echo "recovery_smoke: FAIL — $log has no decision for instance $k" >&2
      dump_logs
      exit 1
    fi
    v="${line#*value=}"
    if [[ -z "$first" ]]; then
      first="$v"
    elif [[ "$v" != "$first" ]]; then
      echo "recovery_smoke: FAIL — instance $k disagreement" >&2
      dump_logs
      exit 1
    fi
  done
  echo "instance $k: all $N replicas decided value=$first"
done

echo "recovery_smoke: PASS — crash + checkpoint-restart converged on" \
     "$K instances"
