#!/usr/bin/env python3
"""Sweep-report schema and sanity gate.

Validates the artifact the test harness appends to SVSS_SWEEP_REPORT
(tests/sweep_common.hpp: one pretty-printed document per sweep,
{"sweep": <label>, "report": {counters..., "cells": [...]}},
concatenated as each sweep finishes).

In the spirit of bench/check_regression.py, this gate exists so a
malformed or silently-empty artifact fails CI instead of uploading as a
green run: it hard-fails on unreadable/empty files, missing counters,
empty cell lists, counter/cell mismatches, and non-finite rates (a
total of zero would make every rate NaN).

Usage:
  check_sweep_report.py REPORT.json [--require-label LABEL ...]
                        [--max-capped-rate R]
"""

import argparse
import json
import math
import sys

REPORT_COUNTERS = ("total", "capped_runs", "safety_violations",
                   "undecided_runs", "vacuous_runs")
CELL_KEYS = ("n", "strategy", "scheduler", "seed", "inputs", "coin",
             "capped", "decided", "agreed", "valid", "attacked", "rounds",
             "deliveries")


def fail(msg):
    sys.exit(f"check_sweep_report: {msg}")


def check_report(label, report, errors):
    where = f"sweep '{label}'"
    for key in REPORT_COUNTERS:
        value = report.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"{where}: counter '{key}' missing or non-integer")
            return
        if value < 0:
            errors.append(f"{where}: counter '{key}' is negative ({value})")
    cells = report.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append(f"{where}: empty or missing cell list")
        return
    if report["total"] != len(cells):
        errors.append(f"{where}: total={report['total']} but "
                      f"{len(cells)} cells")

    counted = {"capped_runs": 0, "safety_violations": 0, "undecided_runs": 0,
               "vacuous_runs": 0}
    for i, cell in enumerate(cells):
        missing = [k for k in CELL_KEYS if k not in cell]
        if missing:
            errors.append(f"{where}: cell {i} missing keys {missing}")
            continue
        for k in ("rounds", "deliveries", "n", "seed"):
            v = cell[k]
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                errors.append(f"{where}: cell {i} field '{k}' not a "
                              f"non-negative integer ({v!r})")
        for k in ("capped", "decided", "agreed", "valid", "attacked"):
            if not isinstance(cell[k], bool):
                errors.append(f"{where}: cell {i} field '{k}' not a bool")
        if cell.get("capped"):
            counted["capped_runs"] += 1
        if cell.get("decided") and not (cell.get("agreed")
                                        and cell.get("valid")):
            counted["safety_violations"] += 1
        if not cell.get("capped") and not cell.get("decided"):
            counted["undecided_runs"] += 1
        if not cell.get("attacked"):
            counted["vacuous_runs"] += 1

    for key, want in counted.items():
        if report[key] != want:
            errors.append(f"{where}: counter '{key}'={report[key]} but "
                          f"cells recount to {want}")

    # Rates must be finite and printable: a zero denominator (empty grid)
    # was caught above, but guard the arithmetic anyway so the gate, not
    # the artifact consumer, is what trips on a degenerate report.
    capped_rate = report["capped_runs"] / report["total"]
    if math.isnan(capped_rate) or math.isinf(capped_rate):
        errors.append(f"{where}: capped-run rate is not finite")
        return None
    print(f"ok  {label:32} cells={report['total']:4} "
          f"capped_rate={capped_rate:.3f} "
          f"safety={report['safety_violations']} "
          f"undecided={report['undecided_runs']} "
          f"vacuous={report['vacuous_runs']}")
    return capped_rate


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("report")
    parser.add_argument("--require-label", action="append", default=[],
                        help="fail unless a sweep with this label is present")
    parser.add_argument("--max-capped-rate", type=float, default=1.0,
                        help="fail any sweep whose capped-run rate exceeds "
                             "this (default 1.0 = structural checks only)")
    args = parser.parse_args()

    try:
        with open(args.report) as f:
            text = f.read()
    except OSError as e:
        fail(f"cannot read {args.report}: {e}")
    if not text.strip():
        fail(f"{args.report} is empty (no sweep ever wrote a report — "
             "wrong SVSS_SWEEP_REPORT path, or the sweeps were skipped)")

    # The file is a concatenation of pretty-printed documents, one per
    # sweep (appended, not a JSON array) — decode them back to back.
    decoder = json.JSONDecoder()
    docs = []
    pos = 0
    while pos < len(text):
        while pos < len(text) and text[pos].isspace():
            pos += 1
        if pos >= len(text):
            break
        try:
            doc, pos = decoder.raw_decode(text, pos)
        except json.JSONDecodeError as e:
            fail(f"invalid JSON at offset {pos} "
                 f"(document {len(docs) + 1}): {e}")
        docs.append(doc)

    errors = []
    seen = []
    for i, doc in enumerate(docs, 1):
        label = doc.get("sweep") if isinstance(doc, dict) else None
        report = doc.get("report") if isinstance(doc, dict) else None
        if not isinstance(label, str) or not isinstance(report, dict):
            errors.append(f"document {i}: expected "
                          '{"sweep": <label>, "report": {...}}')
            continue
        seen.append(label)
        rate = check_report(label, report, errors)
        if rate is not None and rate > args.max_capped_rate:
            errors.append(f"sweep '{label}': capped-run rate {rate:.3f} "
                          f"exceeds --max-capped-rate "
                          f"{args.max_capped_rate:.3f}")

    for want in args.require_label:
        if want not in seen:
            errors.append(f"required sweep label '{want}' not present "
                          f"(saw: {seen})")

    if errors:
        print("\nSWEEP REPORT FAILURES:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print(f"\nsweep-report gate: {len(seen)} sweep(s) structurally sound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
