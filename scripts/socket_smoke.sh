#!/usr/bin/env bash
# Socket smoke test: a real multi-process agreement fleet on localhost.
#
# Launches n=4 example_agreement_cluster daemons as separate OS processes,
# each binding one TCP endpoint of the fleet, and asserts that every
# replica prints a decision and that all decisions agree.  This is the
# end-to-end check that the socket transport (src/net/) carries the full
# protocol stack — sharing, G-sets, coin reconstruction, ABA votes — over
# actual connections, not just the in-process loopback the unit tests use.
#
# Usage: scripts/socket_smoke.sh [path-to-example_agreement_cluster]
# Env:   SOCKET_SMOKE_BASE_PORT (default 45200), SOCKET_SMOKE_SEED (3),
#        SOCKET_SMOKE_TIMEOUT seconds (90).
set -euo pipefail

BIN="${1:-build/examples/example_agreement_cluster}"
BASE_PORT="${SOCKET_SMOKE_BASE_PORT:-45200}"
SEED="${SOCKET_SMOKE_SEED:-3}"
TIMEOUT="${SOCKET_SMOKE_TIMEOUT:-90}"
N=4

if [[ ! -x "$BIN" ]]; then
  echo "socket_smoke: binary not found or not executable: $BIN" >&2
  exit 2
fi

PEERS=""
for ((i = 0; i < N; i++)); do
  PEERS+="${PEERS:+,}127.0.0.1:$((BASE_PORT + i))"
done

WORKDIR="$(mktemp -d)"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

echo "socket_smoke: fleet of $N on ports $BASE_PORT-$((BASE_PORT + N - 1))," \
     "seed $SEED"
for ((i = 0; i < N; i++)); do
  "$BIN" --id "$i" --peers "$PEERS" --seed "$SEED" \
    >"$WORKDIR/replica-$i.log" 2>&1 &
  PIDS+=($!)
done

# Wait for every replica to exit, with a wall-clock budget.  A replica that
# times out internally (60 s) exits non-zero, which we catch below either
# way; the outer budget guards against a hung process.
deadline=$((SECONDS + TIMEOUT))
for idx in "${!PIDS[@]}"; do
  pid="${PIDS[$idx]}"
  while kill -0 "$pid" 2>/dev/null; do
    if ((SECONDS >= deadline)); then
      echo "socket_smoke: FAIL — replica $idx still running after" \
           "${TIMEOUT}s" >&2
      for ((i = 0; i < N; i++)); do
        echo "--- replica $i ---"; cat "$WORKDIR/replica-$i.log"
      done
      exit 1
    fi
    sleep 0.2
  done
  if ! wait "$pid"; then
    echo "socket_smoke: FAIL — replica $idx exited non-zero" >&2
    for ((i = 0; i < N; i++)); do
      echo "--- replica $i ---"; cat "$WORKDIR/replica-$i.log"
    done
    exit 1
  fi
done
PIDS=()

# Every replica decided, and on the same value.
VALUES=""
for ((i = 0; i < N; i++)); do
  line="$(grep -o 'decided value=[01] round=[0-9]*' \
          "$WORKDIR/replica-$i.log" || true)"
  if [[ -z "$line" ]]; then
    echo "socket_smoke: FAIL — replica $i printed no decision" >&2
    cat "$WORKDIR/replica-$i.log"
    exit 1
  fi
  v="${line#decided value=}"
  v="${v%% *}"
  VALUES+="${VALUES:+ }$v"
  echo "replica $i: $line"
done

first="${VALUES%% *}"
for v in $VALUES; do
  if [[ "$v" != "$first" ]]; then
    echo "socket_smoke: FAIL — replicas disagreed: $VALUES" >&2
    exit 1
  fi
done

echo "socket_smoke: PASS — all $N replicas decided value=$first"
