#include "svss/svss.hpp"

#include <algorithm>
#include <array>

namespace svss {

SessionId mw_child_id(const SessionId& parent, int dealer, int moderator,
                      int variant) {
  SessionId child;
  child.path = parent.path == SessionPath::kSvssCoin
                   ? SessionPath::kMwInSvssCoin
                   : SessionPath::kMwInSvssTop;
  child.variant = static_cast<std::uint8_t>(variant);
  child.owner = static_cast<std::int16_t>(dealer);
  child.moderator = static_cast<std::int16_t>(moderator);
  child.svss_dealer = parent.owner;
  child.counter = parent.counter;
  child.instance = parent.instance;
  return child;
}

SvssSession::SvssSession(SvssHost& host, SessionId sid, int self, int n,
                         int t)
    : host_(host), sid_(sid), self_(self), n_(n), t_(t),
      g_building_(static_cast<std::size_t>(n)) {
  host_.dmm().note_begin(sid_);
  // G_j contains j itself; pairs (j, l) contribute the other members.
  for (int j = 0; j < n; ++j) g_building_[static_cast<std::size_t>(j)].insert(j);
}

std::array<SessionId, 4> SvssSession::pair_children(int a, int b) const {
  return {mw_child_id(sid_, a, b, 0), mw_child_id(sid_, a, b, 1),
          mw_child_id(sid_, b, a, 0), mw_child_id(sid_, b, a, 1)};
}

// ---------------------------------------------------------------------
// S step 1
// ---------------------------------------------------------------------
void SvssSession::deal(Context& ctx, Fp secret) {
  if (dealt_ || self_ != dealer()) return;
  dealt_ = true;
  f_ = BivariatePolynomial::random_with_secret(secret, t_, ctx.rng());
  FieldVec scratch;
  for (int j = 0; j < n_; ++j) {
    // g_j(1..t+1) then h_j(1..t+1): enough to reconstruct both slices.
    // Evaluated in one pass over the coefficient grid (no per-recipient
    // polynomial allocations — the coin deals n of these per process per
    // round).
    Message m;
    m.sid = sid_;
    m.type = MsgType::kSvssDealerShares;
    f_.append_share_points(j + 1, t_ + 1, m.vals, scratch);
    host_.send_direct(ctx, j, std::move(m));
  }
}

void SvssSession::on_direct(Context& ctx, int from, const Message& m) {
  if (m.type != MsgType::kSvssDealerShares) return;
  if (from != dealer() || g_ ||
      static_cast<int>(m.vals.size()) != 2 * (t_ + 1)) {
    return;
  }
  std::vector<std::pair<Fp, Fp>> gp;
  std::vector<std::pair<Fp, Fp>> hp;
  for (int x = 1; x <= t_ + 1; ++x) {
    gp.emplace_back(Fp(x), m.vals[static_cast<std::size_t>(x - 1)]);
    hp.emplace_back(Fp(x), m.vals[static_cast<std::size_t>(t_ + x)]);
  }
  g_ = Polynomial::interpolate(gp);
  h_ = Polynomial::interpolate(hp);
  start_children(ctx);
}

// ---------------------------------------------------------------------
// S step 2: per counterpart l, run four MW-SVSS invocations committing the
// grid entries f(l, self) and f(self, l), alternating dealer/moderator.
// ---------------------------------------------------------------------
void SvssSession::start_children(Context& ctx) {
  if (children_started_ || !g_ || !h_) return;
  children_started_ = true;
  for (int l = 0; l < n_; ++l) {
    if (l == self_) continue;
    // (a) self deals f(l, self) = h_self(point(l)), l moderates (variant 0:
    //     f(moderator, dealer) from the child's perspective).
    host_.mw_child(ctx, mw_child_id(sid_, self_, l, 0))
        .deal(ctx, h_->eval(point(l)));
    // (b) self deals f(self, l) = g_self(point(l)), l moderates.
    host_.mw_child(ctx, mw_child_id(sid_, self_, l, 1))
        .deal(ctx, g_->eval(point(l)));
    // (c) l deals f(self, l); self moderates with its own g value.
    host_.mw_child(ctx, mw_child_id(sid_, l, self_, 0))
        .set_moderator_input(ctx, g_->eval(point(l)));
    // (d) l deals f(l, self); self moderates with its own h value.
    host_.mw_child(ctx, mw_child_id(sid_, l, self_, 1))
        .set_moderator_input(ctx, h_->eval(point(l)));
  }
}

// ---------------------------------------------------------------------
// S steps 3-5 (dealer bookkeeping) and step 6 (completion)
// ---------------------------------------------------------------------
void SvssSession::on_child_share_complete(Context& ctx,
                                          const SessionId& child) {
  completed_children_.insert(child);
  if (self_ == dealer()) dealer_track_pairs(ctx, child);
  try_complete_share(ctx);
}

void SvssSession::dealer_track_pairs(Context& ctx, const SessionId& child) {
  int a = std::min<int>(child.owner, child.moderator);
  int b = std::max<int>(child.owner, child.moderator);
  int done = ++pair_done_[{a, b}];
  if (done == 4) {
    g_building_[static_cast<std::size_t>(a)].insert(b);
    g_building_[static_cast<std::size_t>(b)].insert(a);
    try_broadcast_gset(ctx);
  }
}

void SvssSession::try_broadcast_gset(Context& ctx) {
  if (gset_sent_) return;
  std::vector<int> g;
  for (int j = 0; j < n_; ++j) {
    if (static_cast<int>(g_building_[static_cast<std::size_t>(j)].size()) >=
        n_ - t_) {
      g.push_back(j);
    }
  }
  if (static_cast<int>(g.size()) < n_ - t_) return;
  gset_sent_ = true;
  Message m;
  m.sid = sid_;
  m.type = MsgType::kSvssGset;
  m.ints = g;
  Writer w;
  for (int j : g) {
    w.i32(j);
    const auto& gj = g_building_[static_cast<std::size_t>(j)];
    w.int_vec(std::vector<int>(gj.begin(), gj.end()));
  }
  m.blob = std::move(w).take();
  host_.rb_broadcast(ctx, m);
}

void SvssSession::on_broadcast(Context& ctx, int origin, const Message& m) {
  if (m.type != MsgType::kSvssGset) return;
  if (origin != dealer() || gset_) return;
  // Validate: G has >= n-t distinct valid members, each with a G_j of
  // >= n-t distinct valid members containing j itself.
  if (static_cast<int>(m.ints.size()) < n_ - t_) return;
  std::set<int> seen;
  for (int j : m.ints) {
    if (j < 0 || j >= n_ || !seen.insert(j).second) return;
  }
  Reader r(m.blob);
  std::map<int, std::vector<int>> sub;
  for (std::size_t i = 0; i < m.ints.size(); ++i) {
    auto j = r.i32();
    auto gj = r.int_vec(static_cast<std::size_t>(n_));
    if (!j || !gj || *j != m.ints[i]) return;
    if (static_cast<int>(gj->size()) < n_ - t_) return;
    std::set<int> sub_seen;
    bool has_self = false;
    for (int l : *gj) {
      if (l < 0 || l >= n_ || !sub_seen.insert(l).second) return;
      if (l == *j) has_self = true;
    }
    if (!has_self) return;
    sub.emplace(*j, std::move(*gj));
  }
  if (!r.exhausted()) return;
  gset_ = m.ints;
  gsub_ = std::move(sub);
  try_complete_share(ctx);
  try_finish_recon(ctx);
}

void SvssSession::try_complete_share(Context& ctx) {
  if (share_done_ || !gset_) return;
  for (int j : *gset_) {
    for (int l : gsub_.at(j)) {
      if (l == j) continue;
      for (const SessionId& child : pair_children(j, l)) {
        if (completed_children_.count(child) == 0) return;
      }
    }
  }
  share_done_ = true;
  ctx.log().record(
      Event{EventKind::kSvssShareComplete, self_, -1, sid_, 0, false});
  host_.svss_share_completed(ctx, sid_);
}

// ---------------------------------------------------------------------
// R step 1: reconstruct every pair's four entries.
// ---------------------------------------------------------------------
void SvssSession::start_reconstruct(Context& ctx) {
  if (recon_started_) return;
  recon_started_ = true;
  if (!gset_) return;  // caller invariant: S completed, so G-hat is known
  for (int k : *gset_) {
    for (int l : gsub_.at(k)) {
      if (l == k) continue;
      for (const SessionId& child : pair_children(k, l)) {
        if (recon_children_.insert(child).second) {
          host_.mw_child(ctx, child).start_reconstruct(ctx);
        }
      }
    }
  }
  try_finish_recon(ctx);
}

void SvssSession::on_child_output(Context& ctx, const SessionId& child,
                                  std::optional<Fp> value) {
  child_out_.emplace(child, value);
  try_finish_recon(ctx);
}

// ---------------------------------------------------------------------
// R steps 2-3: build the ignore set I, interpolate g_k/h_k per surviving
// process, cross-check, and reassemble the bivariate polynomial.
// ---------------------------------------------------------------------
void SvssSession::try_finish_recon(Context& ctx) {
  if (output_ready_ || !recon_started_ || !share_done_ || !gset_) return;
  // All four outputs for every needed pair must be in.
  for (int k : *gset_) {
    for (int l : gsub_.at(k)) {
      if (l == k) continue;
      for (const SessionId& child : pair_children(k, l)) {
        if (child_out_.count(child) == 0) return;
      }
    }
  }

  // r_kkl: entry f(k, l) dealt by k == child (dealer k, moderator l, v1).
  // r_klk: entry f(l, k) dealt by k == child (dealer k, moderator l, v0).
  auto r_kkl = [&](int k, int l) {
    return child_out_.at(mw_child_id(sid_, k, l, 1));
  };
  auto r_klk = [&](int k, int l) {
    return child_out_.at(mw_child_id(sid_, k, l, 0));
  };

  // Step 2: the ignore set.
  std::set<int> ignored;
  std::map<int, Polynomial> gk;
  std::map<int, Polynomial> hk;
  for (int k : *gset_) {
    bool bad = false;
    std::vector<std::pair<Fp, Fp>> gpts;
    std::vector<std::pair<Fp, Fp>> hpts;
    for (int l : gsub_.at(k)) {
      if (l == k) continue;
      auto v1 = r_kkl(k, l);
      auto v0 = r_klk(k, l);
      if (!v1 || !v0) {
        bad = true;
        break;
      }
      gpts.emplace_back(point(l), *v1);
      hpts.emplace_back(point(l), *v0);
    }
    if (!bad) {
      auto gpoly = Polynomial::interpolate_checked(gpts, t_);
      auto hpoly = Polynomial::interpolate_checked(hpts, t_);
      if (gpoly && hpoly) {
        gk.emplace(k, std::move(*gpoly));
        hk.emplace(k, std::move(*hpoly));
      } else {
        bad = true;
      }
    }
    if (bad) ignored.insert(k);
  }

  // Step 3: cross-consistency and bivariate reassembly.
  std::vector<int> survivors;
  for (int k : *gset_) {
    if (ignored.count(k) == 0) survivors.push_back(k);
  }
  std::optional<Fp> result;
  bool consistent = static_cast<int>(survivors.size()) >= t_ + 1;
  if (consistent) {
    for (int k : survivors) {
      for (int l : survivors) {
        if (hk.at(k).eval(point(l)) != gk.at(l).eval(point(k))) {
          consistent = false;
          break;
        }
      }
      if (!consistent) break;
    }
  }
  if (consistent) {
    std::vector<Fp> xs;
    std::vector<std::vector<std::pair<Fp, Fp>>> rows;
    for (int k : survivors) {
      xs.push_back(point(k));
      std::vector<std::pair<Fp, Fp>> row;
      for (int l : survivors) {
        row.emplace_back(point(l), gk.at(k).eval(point(l)));
      }
      rows.push_back(std::move(row));
    }
    auto fbar = BivariatePolynomial::interpolate_checked(xs, rows, t_);
    if (fbar) result = fbar->secret();
  }

  output_ready_ = true;
  output_ = result;
  ctx.log().record(Event{EventKind::kSvssReconOutput, self_, -1, sid_,
                         output_ ? static_cast<std::int64_t>(output_->value())
                                 : 0,
                         output_.has_value()});
  host_.dmm().note_complete(sid_);
  host_.svss_recon_output(ctx, sid_, output_);
}

}  // namespace svss
