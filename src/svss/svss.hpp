// SVSS — Shunning Verifiable Secret Sharing (paper Section 4).
//
// The dealer hides its secret as f(0,0) of a random degree-(t,t) bivariate
// polynomial and gives process j the slices g_j(y) = f(point(j), y) and
// h_j(x) = f(x, point(j)).  Every (ordered) pair of processes then commits
// the two grid entries f(point(j), point(l)), f(point(l), point(j)) through
// four MW-SVSS invocations in which they alternate dealer and moderator
// roles, so each entry is vouched for by both of its owners.  Reconstruction
// reassembles the bivariate polynomial from the per-pair reconstructions,
// ignoring processes whose dealings were inconsistent (the I_j set).
//
// Properties (binding / validity with a shunning escape clause) are
// inherited from MW-SVSS: if any reconstruction deviates, some nonfaulty
// process has started shunning some faulty process in this very session.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bivariate.hpp"
#include "common/field.hpp"
#include "mwsvss/mwsvss.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

// Child-session id for the MW-SVSS invocation with the given dealer,
// moderator and variant nested in SVSS session `parent`.
// variant 0 shares f(point(moderator), point(dealer));
// variant 1 shares f(point(dealer), point(moderator)).
SessionId mw_child_id(const SessionId& parent, int dealer, int moderator,
                      int variant);

class SvssHost {
 public:
  virtual ~SvssHost() = default;
  virtual void rb_broadcast(Context& ctx, const Message& m) = 0;
  virtual void send_direct(Context& ctx, int to, Message m) = 0;
  virtual Dmm& dmm() = 0;
  // Get-or-create the local state machine of a nested MW-SVSS session.
  virtual MwSvssSession& mw_child(Context& ctx, const SessionId& child) = 0;
  virtual void svss_share_completed(Context& ctx, const SessionId& sid) = 0;
  virtual void svss_recon_output(Context& ctx, const SessionId& sid,
                                 std::optional<Fp> value) = 0;
};

class SvssSession {
 public:
  SvssSession(SvssHost& host, SessionId sid, int self, int n, int t);

  // Dealer only (S step 1): draw the bivariate polynomial and distribute
  // slices.
  void deal(Context& ctx, Fp secret);
  // Begins R.  The caller guarantees S completed locally.
  void start_reconstruct(Context& ctx);

  // Pre-filtered message entry points.
  void on_direct(Context& ctx, int from, const Message& m);
  void on_broadcast(Context& ctx, int origin, const Message& m);

  // Child MW-SVSS event notifications, routed by the host.
  void on_child_share_complete(Context& ctx, const SessionId& child);
  void on_child_output(Context& ctx, const SessionId& child,
                       std::optional<Fp> value);

  [[nodiscard]] const SessionId& sid() const { return sid_; }
  [[nodiscard]] bool share_complete() const { return share_done_; }
  [[nodiscard]] bool recon_started() const { return recon_started_; }
  [[nodiscard]] bool has_output() const { return output_ready_; }
  [[nodiscard]] std::optional<Fp> output() const { return output_; }
  // This process's row slice g_self(y) = f(point(self), y), once received
  // from the dealer.  Used by the ASMPC layer for linear share arithmetic.
  [[nodiscard]] const std::optional<Polynomial>& g_slice() const {
    return g_;
  }
  [[nodiscard]] const std::optional<Polynomial>& h_slice() const {
    return h_;
  }

 private:
  [[nodiscard]] int dealer() const { return sid_.owner; }
  void start_children(Context& ctx);
  void dealer_track_pairs(Context& ctx, const SessionId& child);
  void try_broadcast_gset(Context& ctx);
  void try_complete_share(Context& ctx);
  void try_finish_recon(Context& ctx);
  // The four MW-SVSS sessions committing the pair {a, b}'s grid entries.
  [[nodiscard]] std::array<SessionId, 4> pair_children(int a, int b) const;

  SvssHost& host_;
  SessionId sid_;
  int self_;
  int n_;
  int t_;

  // --- dealer state ---
  BivariatePolynomial f_;
  bool dealt_ = false;
  bool gset_sent_ = false;
  // pair_done_[{a,b}] counts completed child shares (dealer view).
  std::map<std::pair<int, int>, int> pair_done_;
  std::vector<std::set<int>> g_building_;  // G_j, j included in its own set

  // --- participant state ---
  std::optional<Polynomial> g_;  // g_self
  std::optional<Polynomial> h_;  // h_self
  bool children_started_ = false;
  std::set<SessionId> completed_children_;
  std::optional<std::vector<int>> gset_;          // G-hat
  std::map<int, std::vector<int>> gsub_;          // j -> G-hat_j
  bool share_done_ = false;

  // --- reconstruct state ---
  bool recon_started_ = false;
  std::map<SessionId, std::optional<Fp>> child_out_;
  std::set<SessionId> recon_children_;  // children whose R' we started
  bool output_ready_ = false;
  std::optional<Fp> output_;
};

}  // namespace svss
