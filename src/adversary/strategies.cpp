#include "adversary/strategy.hpp"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/byzantine.hpp"
#include "core/node.hpp"

namespace svss::adversary {

const char* strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kEquivocatingDealer: return "equivocating-dealer";
    case StrategyKind::kAdaptiveShunAware: return "adaptive-shun-aware";
    case StrategyKind::kWithholdingModerator: return "withholding-moderator";
    case StrategyKind::kColludingCabal: return "colluding-cabal";
    case StrategyKind::kEquivocatingAcsProposer:
      return "equivocating-acs-proposer";
  }
  return "unknown";
}

namespace {

// --------------------------------------------------------------------
// Split-brain plumbing shared by the equivocating strategies.
//
// Two complete honest Nodes run side by side in one slot.  Every inbound
// packet is fed to both; each fork's own traffic (direct messages and RB
// steps of broadcasts it originates) reaches only its half of the process
// ids, and fork 0 alone relays other processes' broadcasts so relay duty
// is not duplicated.  Both forks receive the driver's start action, so
// role payloads (deal this secret, propose these bytes) execute twice
// against the slot's RNG stream — already a genuine divergence wherever
// the role draws randomness.  Derived strategies add their own fork-1
// deviation through fork_deviation().
// --------------------------------------------------------------------
class SplitBrainStrategy : public IStrategy {
 public:
  explicit SplitBrainStrategy(const AdversaryEnv& env) : IStrategy(env) {
    for (auto& b : branch_) {
      b = std::make_unique<Node>(env.self, env.n, env.t, env.batched_coin,
                                     env.batched_mw);
    }
  }

  void start(Context& ctx) override {
    for (int b = 0; b < 2; ++b) {
      active_ = b;
      if (start_action_) branch_[b]->set_start_action(start_action_);
      branch_[b]->start(ctx);
    }
    active_ = 0;
  }

  void on_packet(Context& ctx, int from, const Packet& p) override {
    ++stats_.inbound;
    for (int b = 0; b < 2; ++b) {
      active_ = b;
      branch_[b]->on_packet(ctx, from, p);
    }
    active_ = 0;
  }

  bool on_outbound(int to, Packet& p) override {
    // Own traffic is partitioned by fork; relay duty for other origins is
    // fork 0's alone (the forks would otherwise double every echo/ready).
    bool own = !p.is_rb || p.bid.origin == env_.self;
    bool allow = own ? partition(to) == active_ : active_ == 0;
    if (!allow) {
      ++stats_.withheld;
      return false;
    }
    if (active_ == 1) fork_deviation(p);
    ++stats_.emitted;
    if (active_ == 1) ++stats_.forked;
    return true;
  }

  // Both halves see a fork, but the deviating branch (fork 1, the one
  // derived strategies rewrite) courts the upper half: those are the
  // processes a co-designed scheduler should starve to keep the two
  // stories from reconciling.
  [[nodiscard]] bool is_deceiving(int id) const override {
    return id != env_.self && id >= env_.n / 2;
  }

 protected:
  // Extra rewrite applied to fork 1's allowed packets (beyond the fork's
  // independently drawn randomness).  Default: none.
  virtual void fork_deviation(Packet& p) { (void)p; }

 private:
  [[nodiscard]] int partition(int to) const {
    return to < env_.n / 2 ? 0 : 1;
  }

  std::unique_ptr<Node> branch_[2];
  int active_ = 0;  // fork currently executing (single-threaded engine)
};

// --------------------------------------------------------------------
// EquivocatingDealer — a split-brain dealer.
//
// When the slot is asked to deal, both forks execute the full dealer
// state machine — drawing *distinct* bivariate polynomials from the
// slot's RNG stream — so the two halves of the system are courted with
// genuinely different dealings, not just perturbed values.  (Bracha RB
// provably survives this at n >= 3t+1: the equivocated broadcasts
// deliver one value or none, never two — which is exactly the liveness
// pressure the shunning machinery must absorb.)
// --------------------------------------------------------------------
class EquivocatingDealer final : public SplitBrainStrategy {
 public:
  using SplitBrainStrategy::SplitBrainStrategy;

  [[nodiscard]] const char* strategy_name() const override {
    return adversary::strategy_name(StrategyKind::kEquivocatingDealer);
  }
};

// --------------------------------------------------------------------
// EquivocatingAcsProposer — a split-brain common-subset proposer.
//
// The deviation targets the ACS driver: fork 1's own kAcsProposal
// broadcast is rewritten to carry a different proposal, so the lower half
// of the system is courted with one common-subset candidate and the upper
// half with another.  Each fork then runs the full ACS/ABA stack
// consistently with its own story (vouching, per-instance votes), which
// is exactly the pressure RB + per-instance agreement must absorb: the
// subset either excludes the proposer or contains one consistent proposal
// everywhere.
// --------------------------------------------------------------------
class EquivocatingAcsProposer final : public SplitBrainStrategy {
 public:
  using SplitBrainStrategy::SplitBrainStrategy;

  [[nodiscard]] const char* strategy_name() const override {
    return adversary::strategy_name(StrategyKind::kEquivocatingAcsProposer);
  }

 protected:
  void fork_deviation(Packet& p) override {
    if (p.is_rb && p.phase == RbPhase::kSend && p.bid.origin == env_.self &&
        p.bid.slot == MsgType::kAcsProposal) {
      mutate_outbound_message(
          p, env_.self,
          [](Message& m) { m.blob.push_back(0x5A); },
          /*mutate_relays=*/false);
      ++stats_.mutated;
    }
  }
};

// --------------------------------------------------------------------
// AdaptiveShunAware — deviates until it infers an accusation, then hides.
//
// Runs one honest Node but corrupts its MW-SVSS reconstruct broadcasts
// (the deviation DMM rules 2-3 detect) for as long as it believes no
// honest process has accused it.  The belief is *message-observable*:
// the strategy never touches the global event log, so it stays legal on
// transports without omniscience (sockets).  What it watches instead is
// L/M-set membership in delivered RB traffic.  A process that detects
// this slot discards its messages in every later session (DMM rule 4),
// so from that point the detector's published confirmer sets L and
// accepted-monitor sets M stop naming this slot — permanently.  A single
// exclusion is innocent (sets publish at the n-t threshold, so the
// slowest process of the moment is routinely left out); a *streak* of
// them from the same origin with no intervening inclusion is the
// signature of a forever-delayed channel.  Once the streak crosses the
// threshold the strategy turns honest, probing whether shunning is
// sticky: DMM must keep the detection anchored even though the process
// never misbehaves again.
// --------------------------------------------------------------------
class AdaptiveShunAware final : public IStrategy {
 public:
  explicit AdaptiveShunAware(const AdversaryEnv& env)
      : IStrategy(env),
        excluded_streak_(static_cast<std::size_t>(env.n), 0),
        node_(std::make_unique<Node>(env.self, env.n, env.t, env.batched_coin,
                                     env.batched_mw)) {}

  [[nodiscard]] const char* strategy_name() const override {
    return adversary::strategy_name(StrategyKind::kAdaptiveShunAware);
  }

  void start(Context& ctx) override {
    if (start_action_) node_->set_start_action(start_action_);
    node_->start(ctx);
  }

  void on_packet(Context& ctx, int from, const Packet& p) override {
    ++stats_.inbound;
    observe_sets(p);
    node_->on_packet(ctx, from, p);
  }

  // Every peer sees the corrupted recon broadcasts until the strategy
  // infers an accusation and turns honest.
  [[nodiscard]] bool is_deceiving(int id) const override {
    return !stats_.adapted && id != env_.self;
  }

  bool on_outbound(int /*to*/, Packet& p) override {
    if (!stats_.adapted) {
      bool touched = false;
      mutate_outbound_message(
          p, env_.self,
          [&](Message& m) {
            // The deviation DMM rules 2-3 catch, on either framing: a
            // group envelope carries its recon values in vals, so
            // corrupting the first entry corrupts one per-session value.
            if ((m.type == MsgType::kMwReconVal ||
                 m.type == MsgType::kMwBatchReconVal) &&
                !m.vals.empty()) {
              m.vals[0] += Fp(1);
              touched = true;
            }
          },
          /*mutate_relays=*/false);
      if (touched) ++stats_.mutated;
    }
    ++stats_.emitted;
    return true;
  }

 private:
  // An origin must leave this slot out of this many consecutive observed
  // publications (post-deviation) before the exclusions read as shunning
  // rather than as losing the n-t publication race.  At n = 4 a set
  // usually names 3 of 4 candidates, so an innocent exclusion happens
  // routinely but an innocent *streak* decays geometrically — while a
  // detector excludes us in every set it ever publishes again.
  static constexpr int kExclusionStreak = 3;

  void observe_sets(const Packet& p) {
    // Accusations can only follow deviations: until the first corrupted
    // recon broadcast has gone out there is nothing to be accused of, so
    // set membership before that point is pure publication-race noise.
    if (stats_.adapted || stats_.mutated == 0 || !p.is_rb) return;
    MsgType slot = p.bid.slot;
    bool per_session = slot == MsgType::kMwLset || slot == MsgType::kMwMset;
    bool batched =
        slot == MsgType::kMwBatchLset || slot == MsgType::kMwBatchMset;
    if ((!per_session && !batched) || p.bid.origin == env_.self) return;
    // RB hands us every phase of the instance (send, echoes, readys), all
    // carrying the same payload — score each envelope exactly once.
    if (!seen_.insert(p.bid).second) return;
    auto msg = Message::deserialize(p.rb_payload());
    if (!msg) return;
    const std::vector<int>& ints = msg->ints;
    bool included = false;
    if (per_session) {
      // ints is the member list itself.
      included = std::find(ints.begin(), ints.end(), env_.self) != ints.end();
    } else {
      // Batched framing: ints is (j, len, members...) runs, one published
      // per-session set each (mwsvss/group_transport.cpp).  The runs of
      // one envelope are flushed together and share one schedule, so they
      // are one observation, not len(runs) independent ones: count the
      // envelope as including us iff *any* of its sets does.
      std::size_t i = 0;
      while (i + 2 <= ints.size()) {
        int len = ints[i + 1];
        if (len < 0 || i + 2 + static_cast<std::size_t>(len) > ints.size()) {
          return;  // malformed envelope; not our bug to diagnose
        }
        auto first = ints.begin() + static_cast<std::ptrdiff_t>(i + 2);
        if (std::find(first, first + len, env_.self) != first + len) {
          included = true;
        }
        i += 2 + static_cast<std::size_t>(len);
      }
    }
    int& streak = excluded_streak_[static_cast<std::size_t>(p.bid.origin)];
    if (included) {
      streak = 0;
      return;
    }
    if (++streak >= kExclusionStreak) stats_.adapted = true;
  }

  // Consecutive self-free publications per origin since the first
  // deviation (cleared when the first corrupted broadcast goes out).
  std::vector<int> excluded_streak_;
  std::unordered_set<BcastId, BcastIdHash> seen_;
  std::unique_ptr<Node> node_;
};

// --------------------------------------------------------------------
// WithholdingModerator — honest except that its moderator M-set broadcasts
// never leave the process.  Every MW-SVSS session this slot moderates
// stalls in S' step 6 forever; dealers and the coin must route around the
// missing pairs (G-set / support-set selection) for termination to hold.
// --------------------------------------------------------------------
class WithholdingModerator final : public IStrategy {
 public:
  explicit WithholdingModerator(const AdversaryEnv& env)
      : IStrategy(env),
        node_(std::make_unique<Node>(env.self, env.n, env.t, env.batched_coin,
                                     env.batched_mw)) {}

  [[nodiscard]] const char* strategy_name() const override {
    return adversary::strategy_name(StrategyKind::kWithholdingModerator);
  }

  void start(Context& ctx) override {
    if (start_action_) node_->set_start_action(start_action_);
    node_->start(ctx);
  }

  void on_packet(Context& ctx, int from, const Packet& p) override {
    ++stats_.inbound;
    node_->on_packet(ctx, from, p);
  }

  // The withheld M-sets are denied to everyone alike.
  [[nodiscard]] bool is_deceiving(int id) const override {
    return id != env_.self;
  }

  bool on_outbound(int /*to*/, Packet& p) override {
    // Both framings: the per-session broadcast and the group envelope
    // (kMwBatchMset coalesces only M-sets, so dropping it whole is the
    // same per-session deviation).
    auto is_mset = [](MsgType type) {
      return type == MsgType::kMwMset || type == MsgType::kMwBatchMset;
    };
    bool withhold =
        p.is_rb ? p.bid.origin == env_.self && is_mset(p.bid.slot)
                : is_mset(p.app.type);
    if (withhold) {
      ++stats_.withheld;
      return false;
    }
    ++stats_.emitted;
    return true;
  }

 private:
  std::unique_ptr<Node> node_;
};

// --------------------------------------------------------------------
// ColludingCabal — t coordinated faults sharing a view.
//
// All members consult one CabalView: a common false-value delta presented
// to the lower half of the system (members show each other true values, so
// the lie is mutually consistent and survives cross-checks between
// colluders), a shared accusation watch (the first shun accusation against
// *any* member flips the whole cabal to honest behaviour at once), and an
// optional shared delivery clock for a coordinated simultaneous crash.
// --------------------------------------------------------------------
struct CabalView {
  std::vector<int> members;
  Fp delta{1};
  std::uint64_t observed = 0;      // deliveries witnessed by any member
  std::uint64_t silence_after = 0; // 0 = never crash
  bool silenced = false;
  bool evading = false;            // some member was accused
  std::size_t log_cursor = 0;      // shared event-log watermark
};

class ColludingCabal final : public IStrategy {
 public:
  ColludingCabal(const AdversaryEnv& env, std::shared_ptr<CabalView> view)
      : IStrategy(env),
        view_(std::move(view)),
        node_(std::make_unique<Node>(env.self, env.n, env.t, env.batched_coin,
                                     env.batched_mw)) {}

  [[nodiscard]] const char* strategy_name() const override {
    return adversary::strategy_name(StrategyKind::kColludingCabal);
  }

  void start(Context& ctx) override {
    if (start_action_) node_->set_start_action(start_action_);
    node_->start(ctx);
  }

  void on_packet(Context& ctx, int from, const Packet& p) override {
    ++stats_.inbound;
    ++view_->observed;
    if (view_->silence_after != 0 &&
        view_->observed >= view_->silence_after) {
      view_->silenced = true;  // every member falls silent this instant
    }
    observe_accusations(ctx);
    node_->on_packet(ctx, from, p);
  }

  // The false-value delta goes to lower-half non-members, and only while
  // the cabal is neither evading nor silenced — exactly the processes a
  // co-designed scheduler should starve so the lie keeps propagating.
  [[nodiscard]] bool is_deceiving(int id) const override {
    return !view_->evading && !view_->silenced && id < env_.n / 2 &&
           !is_member(id);
  }

  bool on_outbound(int to, Packet& p) override {
    if (view_->silenced) {
      ++stats_.withheld;
      return false;
    }
    stats_.adapted = view_->evading;
    if (!view_->evading && !is_member(to) && to < env_.n / 2) {
      bool touched = false;
      Fp delta = view_->delta;
      mutate_outbound_message(
          p, env_.self,
          [&](Message& m) {
            for (Fp& v : m.vals) v += delta;
            touched = !m.vals.empty();
          },
          /*mutate_relays=*/false);
      if (touched) ++stats_.mutated;
    }
    ++stats_.emitted;
    return true;
  }

 private:
  [[nodiscard]] bool is_member(int id) const {
    for (int m : view_->members) {
      if (m == id) return true;
    }
    return false;
  }

  void observe_accusations(Context& ctx) {
    const auto& events = ctx.log().events();
    for (; view_->log_cursor < events.size(); ++view_->log_cursor) {
      const Event& e = events[view_->log_cursor];
      if (e.kind != EventKind::kShun || is_member(e.who)) continue;
      if (is_member(e.other)) view_->evading = true;
    }
  }

  std::shared_ptr<CabalView> view_;
  std::unique_ptr<Node> node_;
};

}  // namespace

AdversarySlotFactory make_strategy(const AdversaryConfig& cfg) {
  switch (cfg.kind) {
    case StrategyKind::kEquivocatingDealer:
      return [](const AdversaryEnv& env) {
        return std::make_unique<EquivocatingDealer>(env);
      };
    case StrategyKind::kEquivocatingAcsProposer:
      return [](const AdversaryEnv& env) {
        return std::make_unique<EquivocatingAcsProposer>(env);
      };
    case StrategyKind::kAdaptiveShunAware:
      return [](const AdversaryEnv& env) {
        return std::make_unique<AdaptiveShunAware>(env);
      };
    case StrategyKind::kWithholdingModerator:
      return [](const AdversaryEnv& env) {
        return std::make_unique<WithholdingModerator>(env);
      };
    case StrategyKind::kColludingCabal: {
      // A standalone colluding slot is a cabal of one; the view is created
      // lazily so the factory can be copied into several configs safely.
      std::uint64_t silence = cfg.silence_after;
      return [silence](const AdversaryEnv& env) {
        auto view = std::make_shared<CabalView>();
        view->members = {env.self};
        view->silence_after = silence;
        return std::make_unique<ColludingCabal>(env, std::move(view));
      };
    }
  }
  throw std::invalid_argument("make_strategy: unknown StrategyKind");
}

std::vector<AdversarySlotFactory> make_cabal(const std::vector<int>& members,
                                             const AdversaryConfig& cfg) {
  auto view = std::make_shared<CabalView>();
  view->members = members;
  view->silence_after = cfg.silence_after;
  std::vector<AdversarySlotFactory> out;
  out.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i) {
    out.push_back([view](const AdversaryEnv& env) {
      return std::make_unique<ColludingCabal>(env, view);
    });
  }
  return out;
}

}  // namespace svss::adversary
