// Protocol-level adversary strategies (scenario axis of ROADMAP).
//
// The Byzantine library in core/byzantine.hpp models "honest code,
// corrupted wire": the faulty process still runs the honest Node and an
// interceptor rewrites its packets.  That covers value corruption but not
// adversarial *protocol logic* — a dealer that genuinely runs two dealing
// state machines on distinct bivariate polynomials, a process that watches
// for shun accusations and changes its behaviour, or t colluders acting on
// a shared view.  The paper's almost-sure-termination claim quantifies
// over exactly such full-information strategies, so the termination sweep
// (tests/sweep_common.hpp) needs them as first-class, pluggable processes.
//
// An IStrategy occupies a whole process slot (core/adversary_slot.hpp).
// Strategies typically *host* one or more honest Nodes internally — full
// protocol replicas whose traffic the strategy forks, partitions, rewrites
// or withholds at the process boundary — so they speak every layer of the
// stack without reimplementing it, while still being free to deviate
// arbitrarily.  ByzConfig wire interceptors compose on top (the Runner
// chains them after the strategy's outbound gate).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/adversary_slot.hpp"

namespace svss::adversary {

enum class StrategyKind {
  // Split-brain dealer: two full honest-code forks, each dealing its own
  // (distinct) bivariate polynomial; fork 0 talks to the lower half of the
  // process ids, fork 1 to the upper half.
  kEquivocatingDealer,
  // Corrupts its reconstruct broadcasts (the attack DMM rules 2-3 catch)
  // until it infers from delivered traffic — a sustained streak of L/M-set
  // publications excluding it — that some process shuns it, then switches
  // to fully honest behaviour to evade further detection.  The inference
  // is message-observable only, so the strategy is legal on transports
  // without a global event log.
  kAdaptiveShunAware,
  // Runs the honest protocol but never publishes its moderator M-set
  // broadcasts, stalling every MW-SVSS session it moderates.
  kWithholdingModerator,
  // t coordinated faults sharing a view: a common false-value delta shown
  // to the lower half, true values among members, a shared accusation
  // watch (first member accused -> all evade), and an optional shared
  // silence clock (coordinated simultaneous crash).
  kColludingCabal,
  // Split-brain ACS proposer: two honest-code forks, partitioned per half
  // like kEquivocatingDealer, with fork 1's kAcsProposal broadcast carrying
  // a *different* proposal — each half of the system is courted with a
  // consistent but conflicting common-subset candidate, and each fork's
  // subsequent per-instance ABA votes back its own story.
  kEquivocatingAcsProposer,
};

// The ABA/coin sweep catalogue (tests/sweep_common.hpp quantifies over
// these).  kEquivocatingAcsProposer is deliberately absent: its deviation
// only exists on the ACS path, so ABA cells would be vacuous and fail the
// sweep's per-strategy coverage check — ACS-driven tests exercise it
// (tests/adversary_test.cpp).
inline constexpr StrategyKind kAllStrategies[] = {
    StrategyKind::kEquivocatingDealer,
    StrategyKind::kAdaptiveShunAware,
    StrategyKind::kWithholdingModerator,
    StrategyKind::kColludingCabal,
};

[[nodiscard]] const char* strategy_name(StrategyKind kind);

struct AdversaryConfig {
  StrategyKind kind = StrategyKind::kEquivocatingDealer;
  // kColludingCabal: all members crash in the same observed instant once
  // the cabal has jointly witnessed this many deliveries (0 = never).
  std::uint64_t silence_after = 0;
};

// Common strategy plumbing: env/stats storage and start-action capture.
class IStrategy : public AdversarySlot {
 public:
  explicit IStrategy(const AdversaryEnv& env) : env_(env) {}

  void set_start_action(std::function<void(Context&, Node&)> action) override {
    start_action_ = std::move(action);
  }
  [[nodiscard]] const StrategyStats& stats() const override { return stats_; }

 protected:
  AdversaryEnv env_;
  StrategyStats stats_;
  std::function<void(Context&, Node&)> start_action_;
};

// Factory for a standalone strategy slot (kColludingCabal becomes a cabal
// of one; use install_cabal for a real one).
[[nodiscard]] AdversarySlotFactory make_strategy(const AdversaryConfig& cfg);

// Factories for a cabal whose members share one view.  members lists the
// slots the factories will occupy, in order.
[[nodiscard]] std::vector<AdversarySlotFactory> make_cabal(
    const std::vector<int>& members, const AdversaryConfig& cfg);

}  // namespace svss::adversary
