// RunnerConfig wiring for adversary strategies.
//
// Usage (see tests/adversary_test.cpp and tests/sweep_common.hpp):
//
//   RunnerConfig cfg;                      // n = 4, t = 1
//   adversary::install_adversaries(cfg, StrategyKind::kColludingCabal, 1);
//   Runner r(cfg);
//   auto res = r.run_aba({0, 1, 0, 1});
//   r.adversary(3)->stats();               // non-vacuity checks
//
// Adding a new strategy: add the enum value + name in strategy.hpp, derive
// from IStrategy in strategies.cpp (host inner Nodes for honest-code
// plumbing, override on_packet/on_outbound for the deviation, and count
// every deviation in StrategyStats so tests can assert it actually fired),
// extend make_strategy, then add the kind to kAllStrategies so the
// termination sweep picks it up automatically.
#pragma once

#include <vector>

#include "adversary/strategy.hpp"
#include "core/runner.hpp"

namespace svss::adversary {

// Occupies `slot` with a standalone strategy.
void install_adversary(RunnerConfig& cfg, int slot,
                       const AdversaryConfig& acfg);

// Occupies every listed slot with one cabal sharing a single view.
void install_cabal(RunnerConfig& cfg, const std::vector<int>& members,
                   const AdversaryConfig& acfg = {
                       StrategyKind::kColludingCabal, 0});

// Occupies the top `count` slots (n-count .. n-1) with `kind`; colluding
// cabals share one view, other kinds get independent instances.  `base`
// supplies strategy parameters (its kind field is overridden).
void install_adversaries(RunnerConfig& cfg, StrategyKind kind, int count,
                         AdversaryConfig base = {});

}  // namespace svss::adversary
