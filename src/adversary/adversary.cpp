#include "adversary/adversary.hpp"

#include <stdexcept>

namespace svss::adversary {

void install_adversary(RunnerConfig& cfg, int slot,
                       const AdversaryConfig& acfg) {
  if (slot < 0 || slot >= cfg.n) {
    throw std::invalid_argument("install_adversary: slot out of range");
  }
  cfg.adversaries[slot] = make_strategy(acfg);
}

void install_cabal(RunnerConfig& cfg, const std::vector<int>& members,
                   const AdversaryConfig& acfg) {
  auto factories = make_cabal(members, acfg);
  for (std::size_t i = 0; i < members.size(); ++i) {
    int slot = members[i];
    if (slot < 0 || slot >= cfg.n) {
      throw std::invalid_argument("install_cabal: slot out of range");
    }
    cfg.adversaries[slot] = std::move(factories[i]);
  }
}

void install_adversaries(RunnerConfig& cfg, StrategyKind kind, int count,
                         AdversaryConfig base) {
  if (count <= 0) return;
  if (count > cfg.n) {
    throw std::invalid_argument("install_adversaries: count > n");
  }
  base.kind = kind;
  std::vector<int> slots;
  for (int i = cfg.n - count; i < cfg.n; ++i) slots.push_back(i);
  if (kind == StrategyKind::kColludingCabal) {
    install_cabal(cfg, slots, base);
    return;
  }
  for (int slot : slots) {
    install_adversary(cfg, slot, base);
  }
}

}  // namespace svss::adversary
