#include "coin/coin.hpp"

#include <algorithm>

namespace svss {

SessionId coin_svss_id(std::uint32_t round, int dealer, int attachee,
                       std::uint32_t instance) {
  SessionId sid;
  sid.path = SessionPath::kSvssCoin;
  sid.owner = static_cast<std::int16_t>(dealer);
  sid.counter = round * kMaxN + static_cast<std::uint32_t>(attachee);
  sid.instance = instance;
  return sid;
}

namespace {

SessionId coin_sid(std::uint32_t round, std::uint32_t instance) {
  return SessionId{SessionPath::kCoin, 0, -1, -1, -1, round, instance};
}

}  // namespace

CoinSession::CoinSession(CoinHost& host, std::uint32_t round, int self, int n,
                         int t, std::uint32_t instance)
    : host_(host), round_(round), self_(self), n_(n), t_(t),
      instance_(instance), share_done_(static_cast<std::size_t>(n)) {}

void CoinSession::start(Context& ctx) {
  if (started_) return;
  started_ = true;
  // The window lets a batching host coalesce the n sessions' dealer-share
  // messages into one envelope per recipient.  The sessions themselves run
  // the unmodified dealing code — same RNG consumption, same values — so
  // batched and unbatched runs deal identical polynomials per seed.
  host_.svss_batch_window(ctx, instance_, round_, /*open=*/true);
  for (int j = 0; j < n_; ++j) {
    // Secret attached to j: uniform in {0, .., n-1}.  Sums of attached
    // secrets stay far below the field modulus, so the mod-n coin value of
    // an honest party is uniform as long as one contributing dealer is
    // honest.
    Fp secret(static_cast<std::int64_t>(
        ctx.rng().next_below(static_cast<std::uint64_t>(n_))));
    host_.svss_child(ctx, coin_svss_id(round_, self_, j, instance_)).deal(ctx, secret);
  }
  host_.svss_batch_window(ctx, instance_, round_, /*open=*/false);
}

bool CoinSession::dealer_done(int d) const {
  return static_cast<int>(share_done_[static_cast<std::size_t>(d)].size()) ==
         n_;
}

void CoinSession::on_child_share_complete(Context& ctx,
                                          const SessionId& sid) {
  int dealer = sid.owner;
  int attachee = static_cast<int>(sid.counter % kMaxN);
  share_done_[static_cast<std::size_t>(dealer)].insert(attachee);
  progress(ctx);
}

void CoinSession::on_broadcast(Context& ctx, int origin, const Message& m) {
  switch (m.type) {
    case MsgType::kCoinGset: {
      if (gsets_.count(origin) != 0) return;
      if (static_cast<int>(m.ints.size()) < n_ - t_) return;
      std::set<int> seen;
      for (int d : m.ints) {
        if (d < 0 || d >= n_ || !seen.insert(d).second) return;
      }
      gsets_.emplace(origin, m.ints);
      break;
    }
    case MsgType::kCoinStartRecon:
      recon_enabled_ = true;
      break;
    default:
      return;
  }
  progress(ctx);
}

void CoinSession::progress(Context& ctx) {
  // Publish G_self once n-t dealers finished all n of their shares.
  if (g_.empty()) {
    std::vector<int> done;
    for (int d = 0; d < n_; ++d) {
      if (dealer_done(d)) done.push_back(d);
    }
    if (static_cast<int>(done.size()) >= n_ - t_) {
      done.resize(static_cast<std::size_t>(n_ - t_));
      g_ = done;
      Message m;
      m.sid = coin_sid(round_, instance_);
      m.type = MsgType::kCoinGset;
      m.ints = g_;
      host_.rb_broadcast(ctx, m);
    }
  }
  recheck_support(ctx);
  if (recon_enabled_) start_reconstructions(ctx);
  try_output(ctx);
}

void CoinSession::recheck_support(Context& ctx) {
  for (const auto& [j, gj] : gsets_) {
    if (support_.count(j) != 0) continue;
    bool all_done = true;
    for (int d : gj) {
      if (!dealer_done(d)) {
        all_done = false;
        break;
      }
    }
    if (all_done) support_.insert(j);
  }
  if (frozen_support_.empty() &&
      static_cast<int>(support_.size()) >= n_ - t_) {
    frozen_support_.assign(support_.begin(), support_.end());
    frozen_support_.resize(static_cast<std::size_t>(n_ - t_));
    if (!recon_announced_) {
      recon_announced_ = true;
      recon_enabled_ = true;
      Message m;
      m.sid = coin_sid(round_, instance_);
      m.type = MsgType::kCoinStartRecon;
      host_.rb_broadcast(ctx, m);
    }
  }
}

// Reconstruct every attached secret of every process whose G set we know;
// any of them may be in some nonfaulty process's frozen support.
void CoinSession::start_reconstructions(Context& ctx) {
  for (const auto& [j, gj] : gsets_) {
    for (int d : gj) {
      SessionId sid = coin_svss_id(round_, d, j, instance_);
      if (recon_started_.count(sid) != 0) continue;
      // R may only start after S completed locally.
      if (share_done_[static_cast<std::size_t>(d)].count(j) == 0) continue;
      recon_started_.insert(sid);
      host_.svss_child(ctx, sid).start_reconstruct(ctx);
    }
  }
}

void CoinSession::on_child_output(Context& ctx, const SessionId& sid,
                                  std::optional<Fp> value) {
  values_.emplace(sid, value);
  try_output(ctx);
}

void CoinSession::try_output(Context& ctx) {
  if (output_ || frozen_support_.empty()) return;
  bool zero_seen = false;
  for (int j : frozen_support_) {
    auto gj = gsets_.find(j);
    if (gj == gsets_.end()) return;  // cannot happen: support implies G_j
    std::uint64_t sum = 0;
    for (int d : gj->second) {
      auto it = values_.find(coin_svss_id(round_, d, j, instance_));
      if (it == values_.end()) return;  // still reconstructing
      // Bottom implies a broken (shunning) session; count it as 0.
      std::uint64_t v = it->second ? it->second->value() : 0;
      sum += v % static_cast<std::uint64_t>(n_);
    }
    if (sum % static_cast<std::uint64_t>(n_) == 0) zero_seen = true;
  }
  output_ = zero_seen ? 0 : 1;
  ctx.log().record(Event{EventKind::kCoinOutput, self_, -1,
                         coin_sid(round_, instance_), *output_, true});
  host_.coin_output(ctx, instance_, round_, *output_);
}

}  // namespace svss
