#include "coin/batched_transport.hpp"

#include "coin/coin.hpp"

namespace svss {

BatchedSvssTransport::BatchedSvssTransport(int self, int n, int t)
    : self_(self), n_(n), t_(t) {}

SessionId BatchedSvssTransport::batch_sid(std::uint32_t round, int dealer,
                                          std::uint32_t instance) {
  SessionId sid;
  sid.path = SessionPath::kSvssCoin;
  sid.variant = 1;  // envelope, not an individual session
  sid.owner = static_cast<std::int16_t>(dealer);
  sid.counter = round * kMaxN;
  sid.instance = instance;
  return sid;
}

namespace {

std::uint64_t round_key(std::uint32_t instance, std::uint32_t round) {
  return (static_cast<std::uint64_t>(instance) << 32) | round;
}

}  // namespace

bool BatchedSvssTransport::is_batch_type(MsgType type) {
  return type == MsgType::kSvssBatchShares || type == MsgType::kSvssBatchGset;
}

// ---------------------------------------------------------------------
// Dealer side
// ---------------------------------------------------------------------
void BatchedSvssTransport::open_window(std::uint32_t instance,
                                       std::uint32_t round) {
  window_open_ = true;
  window_instance_ = instance;
  window_round_ = round;
  pending_vals_.assign(static_cast<std::size_t>(n_), FieldVec{});
  pending_count_.assign(static_cast<std::size_t>(n_), 0);
}

bool BatchedSvssTransport::capture_dealer_shares(int to, const Message& m) {
  if (!window_open_ || m.type != MsgType::kSvssDealerShares ||
      m.sid.path != SessionPath::kSvssCoin || m.sid.owner != self_ ||
      m.sid.instance != window_instance_ ||
      m.sid.counter / kMaxN != window_round_ || to < 0 || to >= n_) {
    return false;
  }
  auto slot = static_cast<std::size_t>(to);
  FieldVec& vals = pending_vals_[slot];
  if (vals.empty()) {
    vals.reserve(static_cast<std::size_t>(n_) * m.vals.size());
  }
  vals.insert(vals.end(), m.vals.begin(), m.vals.end());
  pending_count_[slot]++;
  return true;
}

void BatchedSvssTransport::close_window(Context& ctx) {
  if (!window_open_) return;
  window_open_ = false;
  for (int to = 0; to < n_; ++to) {
    auto slot = static_cast<std::size_t>(to);
    // Dealing is all-or-nothing per round: anything else means a caller
    // misused the window, and a partial batch would fail the receiver's
    // size check anyway.
    if (pending_count_[slot] != n_) continue;
    Message m;
    m.sid = batch_sid(window_round_, self_, window_instance_);
    m.type = MsgType::kSvssBatchShares;
    m.vals = std::move(pending_vals_[slot]);
    ctx.send(to, make_direct(std::move(m)));
  }
  pending_vals_.clear();
  pending_count_.clear();
}

std::optional<Message> BatchedSvssTransport::capture_gset(const Message& m) {
  std::uint32_t round = m.sid.counter / kMaxN;
  int attachee = static_cast<int>(m.sid.counter % kMaxN);
  if (attachee >= n_) return std::nullopt;
  GsetParts& parts = gset_rounds_[round_key(m.sid.instance, round)];
  if (parts.parts.empty()) {
    parts.parts.resize(static_cast<std::size_t>(n_));
  }
  auto& slot = parts.parts[static_cast<std::size_t>(attachee)];
  if (slot) return std::nullopt;  // sessions broadcast their set once
  slot = std::make_pair(m.ints, m.blob);
  if (++parts.have < n_) return std::nullopt;

  Message batch;
  batch.sid = batch_sid(round, self_, m.sid.instance);
  batch.type = MsgType::kSvssBatchGset;
  Writer w;
  for (const auto& part : parts.parts) {
    w.int_vec(part->first);
    w.bytes(part->second);
  }
  batch.blob = std::move(w).take();
  gset_rounds_.erase(round_key(m.sid.instance, round));
  return batch;
}

// ---------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------
void BatchedSvssTransport::unpack(Context& ctx, int n, int t, int sender,
                                  const Message& m, bool via_rb,
                                  const SubMessageSink& sink) {
  if (m.sid.path != SessionPath::kSvssCoin || m.sid.variant != 1 ||
      m.sid.counter % kMaxN != 0) {
    return;
  }
  std::uint32_t round = m.sid.counter / kMaxN;
  std::uint32_t instance = m.sid.instance;
  int dealer = m.sid.owner;

  if (m.type == MsgType::kSvssBatchShares) {
    // Share envelopes travel on the private dealer -> recipient channel.
    if (via_rb || !m.ints.empty() || !m.blob.empty()) return;
    auto per = 2 * (static_cast<std::size_t>(t) + 1);
    if (m.vals.size() != static_cast<std::size_t>(n) * per) return;
    for (int j = 0; j < n; ++j) {
      Message sub;
      sub.sid = coin_svss_id(round, dealer, j, instance);
      sub.type = MsgType::kSvssDealerShares;
      auto begin = m.vals.begin() + static_cast<std::ptrdiff_t>(j * per);
      sub.vals.assign(begin, begin + static_cast<std::ptrdiff_t>(per));
      sink(ctx, sender, sub, /*via_rb=*/false);
    }
    return;
  }

  if (m.type == MsgType::kSvssBatchGset) {
    // G-set envelopes arrive through RBC, exactly once, all-or-none.
    if (!via_rb || !m.vals.empty() || !m.ints.empty()) return;
    // Parse the whole envelope before dispatching: a malformed batch is
    // dropped in its entirety, mirroring RBC's treatment of garbage.
    Reader r(m.blob);
    std::vector<Message> subs;
    subs.reserve(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      auto ints = r.int_vec(static_cast<std::size_t>(n));
      auto blob = r.bytes();
      if (!ints || !blob) return;
      Message sub;
      sub.sid = coin_svss_id(round, dealer, j, instance);
      sub.type = MsgType::kSvssGset;
      sub.ints = std::move(*ints);
      sub.blob = std::move(*blob);
      subs.push_back(std::move(sub));
    }
    if (!r.exhausted()) return;
    for (const Message& sub : subs) {
      sink(ctx, sender, sub, /*via_rb=*/true);
    }
  }
}

}  // namespace svss
