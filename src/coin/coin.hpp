// SCC — Shunning Common Coin (paper Section 5, Definition 2), following the
// Canetti-Rabin common-coin construction (Canetti's thesis, Fig. 5-9) with
// AVSS replaced by SVSS.
//
// Structure of one coin round:
//  1. Every process deals n secrets via SVSS, one "attached" to each
//     process, each uniform in {0, .., n-1}.
//  2. When all n share protocols of dealer d complete locally, d counts as
//     a finished dealer.  After n-t finished dealers, a process publishes
//     that set as G_i (RB).
//  3. Process j enters i's support set S_i once G_j arrived and every
//     dealer in G_j is finished at i.  At |S_i| >= n-t, S_i freezes and i
//     enters reconstruction, announcing this with an RB broadcast so that
//     every process reconstructs every secret any process may need (the
//     announcement is our explicit stand-in for the thesis's implicit
//     "all parties eventually reconstruct"; see DESIGN.md).
//  4. The value of party j is the sum mod n of the secrets attached to j
//     by the dealers in G_j.  i outputs 0 if any member of its frozen
//     support has value 0, else 1.
//
// Correctness (Definition 2): for each sigma in {0,1}, with probability
// >= 1/4 all nonfaulty processes output sigma — unless some nonfaulty
// process starts shunning some faulty process in this round's SVSS
// sessions (a bottom reconstruction counts as 0; bottoms imply shunning).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "sim/engine.hpp"
#include "sim/message.hpp"
#include "svss/svss.hpp"

namespace svss {

// Session id of the SVSS invocation in which `dealer` shares the secret
// attached to process `attachee` during coin round `round` of agreement
// instance `instance` (0 for single-instance runs).
SessionId coin_svss_id(std::uint32_t round, int dealer, int attachee,
                       std::uint32_t instance = 0);

class CoinHost {
 public:
  virtual ~CoinHost() = default;
  virtual void rb_broadcast(Context& ctx, const Message& m) = 0;
  // Get-or-create the local state machine of a coin-owned SVSS session.
  virtual SvssSession& svss_child(Context& ctx, const SessionId& sid) = 0;
  virtual void coin_output(Context& ctx, std::uint32_t instance,
                           std::uint32_t round, int bit) = 0;
  // Batched-dealing capture window (src/coin/batched_transport.hpp):
  // CoinSession::start brackets its dealing loop so a batching host can
  // coalesce the n sessions' share messages.  Hosts without a batched
  // transport ignore it.
  virtual void svss_batch_window(Context& ctx, std::uint32_t instance,
                                 std::uint32_t round, bool open) {
    (void)ctx;
    (void)instance;
    (void)round;
    (void)open;
  }
};

class CoinSession {
 public:
  CoinSession(CoinHost& host, std::uint32_t round, int self, int n, int t,
              std::uint32_t instance = 0);

  // Deals this process's n secrets.  Idempotent; every honest process
  // calls it when it enters the round.
  void start(Context& ctx);

  // Pre-filtered coin-layer broadcasts (kCoinGset / kCoinStartRecon).
  void on_broadcast(Context& ctx, int origin, const Message& m);
  // SVSS child notifications, routed by the host.
  void on_child_share_complete(Context& ctx, const SessionId& sid);
  void on_child_output(Context& ctx, const SessionId& sid,
                       std::optional<Fp> value);

  [[nodiscard]] std::uint32_t round() const { return round_; }
  [[nodiscard]] std::uint32_t instance() const { return instance_; }
  [[nodiscard]] bool has_output() const { return output_.has_value(); }
  [[nodiscard]] int output() const { return *output_; }

 private:
  void progress(Context& ctx);
  void recheck_support(Context& ctx);
  void start_reconstructions(Context& ctx);
  void try_output(Context& ctx);
  [[nodiscard]] bool dealer_done(int d) const;

  CoinHost& host_;
  std::uint32_t round_;
  int self_;
  int n_;
  int t_;
  std::uint32_t instance_;

  bool started_ = false;
  // share_done_[d] = set of attachees whose SVSS from dealer d completed.
  std::vector<std::set<int>> share_done_;
  std::vector<int> g_;                     // frozen G_self (empty = not yet)
  std::map<int, std::vector<int>> gsets_;  // j -> G_j
  std::set<int> support_;                  // growing support set
  std::vector<int> frozen_support_;        // S_self at freeze time
  bool recon_announced_ = false;
  bool recon_enabled_ = false;  // saw any kCoinStartRecon (incl. own)
  std::set<SessionId> recon_started_;
  std::map<SessionId, std::optional<Fp>> values_;
  std::optional<int> output_;
};

}  // namespace svss
