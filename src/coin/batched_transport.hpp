// Batched coin-round SVSS transport.
//
// Every coin round attaches n SVSS sessions to each process: dealer d
// shares one secret per attachee j under session id (round, d, j).  Dealt
// individually, that is n direct share messages per recipient and n G-set
// RB instances per dealer per round — and that dealing cost dominates the
// wall-clock of every full-stack agreement run.  This transport multiplexes
// the n sibling sessions of one (round, dealer) pair over shared wire
// envelopes while keeping the per-session SvssSession interface intact:
//
//  * kSvssBatchShares (direct): the dealer's n per-session
//    kSvssDealerShares messages to one recipient, concatenated in attachee
//    order.  CoinSession::start opens a capture window around its dealing
//    loop; the sessions still run their unmodified deal() code, and the
//    window collects what they hand to send_direct.  One message per
//    recipient replaces n.
//  * kSvssBatchGset (RB): the n per-session kSvssGset broadcasts of one
//    dealer, concatenated once the last sibling produced its set.  One RBC
//    instance — one shared set of echo/ready rounds — replaces n.  This is
//    liveness-neutral: the coin counts dealer d only when all n of d's
//    sessions completed, so no consumer can act before the slowest sibling
//    anyway, and an honest dealer always eventually has all n sets.
//
// Receivers unpack an envelope into its per-session messages and feed them
// through the normal per-session routing (DMM filter included), so every
// correctness property keeps quantifying over individual SvssSessions, and
// batched and unbatched processes interoperate in one run.  Wire values are
// bit-identical to the unbatched path: the capture window changes framing,
// never content or RNG consumption order (tests/batch_equivalence_test).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

class BatchedSvssTransport {
 public:
  // Sink receiving the per-session messages of an unpacked envelope.
  using SubMessageSink =
      std::function<void(Context&, int sender, const Message&, bool via_rb)>;

  BatchedSvssTransport(int self, int n, int t);

  // Session id carried by both envelope types of (instance, round, dealer):
  // the attachee-0 slot with variant 1 marking "batch envelope".
  static SessionId batch_sid(std::uint32_t round, int dealer,
                             std::uint32_t instance = 0);
  // True for message types this transport owns.
  static bool is_batch_type(MsgType type);

  // --- dealer side -------------------------------------------------
  // Capture window around CoinSession::start's dealing loop.
  void open_window(std::uint32_t instance, std::uint32_t round);
  [[nodiscard]] bool window_open() const { return window_open_; }
  // Collects one per-session dealer-shares message while the window is
  // open; returns false (caller sends normally) outside the window or for
  // foreign sessions.
  bool capture_dealer_shares(int to, const Message& m);
  // Emits one kSvssBatchShares direct message per recipient and closes the
  // window.
  void close_window(Context& ctx);

  // Collects one sibling session's kSvssGset payload; once all n are in,
  // returns the combined kSvssBatchGset broadcast for the caller to RB.
  std::optional<Message> capture_gset(const Message& m);

  // --- receiver side -----------------------------------------------
  // Splits a batch envelope into its per-session messages (attachee order)
  // and hands each to `sink`.  Malformed envelopes are dropped whole; the
  // sub-messages re-enter the exact validation the unbatched path applies.
  static void unpack(Context& ctx, int n, int t, int sender, const Message& m,
                     bool via_rb, const SubMessageSink& sink);

 private:
  int self_;
  int n_;
  int t_;

  bool window_open_ = false;
  std::uint32_t window_instance_ = 0;
  std::uint32_t window_round_ = 0;
  std::vector<FieldVec> pending_vals_;  // [recipient] concatenated shares
  std::vector<int> pending_count_;      // [recipient] sessions captured

  struct GsetParts {
    int have = 0;
    // [attachee] -> (G, per-member G_j blob) as broadcast by the session.
    std::vector<std::optional<std::pair<std::vector<int>, Bytes>>> parts;
  };
  // Keyed by (instance << 32) | round: concurrent instances accumulate
  // their G-set envelopes independently.
  std::map<std::uint64_t, GsetParts> gset_rounds_;
};

}  // namespace svss
