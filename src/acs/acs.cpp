#include "acs/acs.hpp"

namespace svss {

namespace {

SessionId acs_sid() {
  // Shares the kAba path with variant 2 (0 = agreement, 1 = Ben-Or).
  return SessionId{SessionPath::kAba, 2, -1, -1, -1, 0};
}

}  // namespace

AcsSession::AcsSession(AcsHost& host, int self, int n, int t,
                       AcsOptions options)
    : host_(host), self_(self), n_(n), t_(t), options_(options) {}

void AcsSession::start(Context& ctx, Bytes value) {
  if (started_) return;
  started_ = true;
  Message m;
  m.sid = acs_sid();
  m.type = MsgType::kAcsProposal;
  m.blob = std::move(value);
  host_.rb_broadcast(ctx, m);
}

void AcsSession::mark_ready(Context& ctx, int j) {
  if (j < 0 || j >= n_) return;
  if (input_given_.insert(j).second) {
    host_.acs_start_aba(ctx, static_cast<std::uint32_t>(j), 1);
  }
}

void AcsSession::on_broadcast(Context& ctx, int origin, const Message& m) {
  if (m.type != MsgType::kAcsProposal) return;
  if (!proposals_.emplace(origin, m.blob).second) return;
  if (options_.vouch_on_proposal) mark_ready(ctx, origin);
  try_output(ctx);
}

void AcsSession::on_aba_decided(Context& ctx, std::uint32_t instance,
                                int value) {
  if (instance >= static_cast<std::uint32_t>(n_)) return;
  if (!decisions_.emplace(static_cast<int>(instance), value).second) return;
  if (value == 1) ++ones_;
  try_flush_zero_inputs(ctx);
  try_output(ctx);
}

void AcsSession::try_flush_zero_inputs(Context& ctx) {
  if (zeros_flushed_ || ones_ < n_ - t_) return;
  zeros_flushed_ = true;
  for (int j = 0; j < n_; ++j) {
    if (input_given_.insert(j).second) {
      host_.acs_start_aba(ctx, static_cast<std::uint32_t>(j), 0);
    }
  }
}

void AcsSession::try_output(Context& ctx) {
  if (output_ || static_cast<int>(decisions_.size()) < n_) return;
  std::vector<std::pair<int, Bytes>> subset;
  for (const auto& [j, v] : decisions_) {
    if (v != 1) continue;
    auto it = proposals_.find(j);
    if (it == proposals_.end()) {
      if (options_.require_proposals) return;  // RB still in flight
      subset.emplace_back(j, Bytes{});
      continue;
    }
    subset.emplace_back(j, it->second);
  }
  output_ = subset;
  host_.acs_completed(ctx, *output_);
}

}  // namespace svss
