// ACS — Agreement on a Common Subset (Ben-Or/Kelmer/Rabin style), built on
// n parallel instances of the paper's binary agreement.
//
// Each process proposes an opaque value; all honest processes agree on a
// common subset of at least n - t processes whose proposals everyone
// adopts.  This is the canonical consumer of asynchronous binary ABA (the
// core of asynchronous secure computation and of modern atomic-broadcast
// systems) and is the composition the paper's ASMPC remark (Section 6)
// presupposes.
//
// Protocol, per process:
//  1. RB-broadcast own proposal.
//  2. Vouch for j (input 1 to ABA_j) when j becomes "ready" — by default
//     when j's proposal arrives; embedders may instead vouch on their own
//     condition via mark_ready (e.g. "j's input sharing completed" in the
//     ASMPC layer).
//  3. Once n - t instances decided 1, input 0 to every instance not yet
//     provided with an input.
//  4. When all n instances decided, the subset is {j : ABA_j == 1}.  With
//     require_proposals, additionally wait for the subset's proposals (a
//     1-decision implies an honest process vouched, which in the default
//     mode implies it received the proposal, so RB delivers it
//     everywhere).
//
// Agreement on the subset follows from ABA agreement; matching proposals
// from RB correctness; |subset| >= n - t because the n - t instances some
// honest process saw decide 1 decide 1 everywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "aba/aba.hpp"
#include "common/serialization.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

class AcsHost {
 public:
  virtual ~AcsHost() = default;
  virtual void rb_broadcast(Context& ctx, const Message& m) = 0;
  // Starts (or provides input to) agreement instance `instance`.  The ACS
  // owns instances [0, n).
  virtual void acs_start_aba(Context& ctx, std::uint32_t instance,
                             int input) = 0;
  // Invoked exactly once when the subset is agreed and complete.
  virtual void acs_completed(
      Context& ctx, const std::vector<std::pair<int, Bytes>>& subset) = 0;
};

struct AcsOptions {
  // Vouch for j automatically when j's proposal is RB-delivered.
  bool vouch_on_proposal = true;
  // Gate the output on having the subset members' proposals (pairs of
  // members whose proposal never arrives carry empty bytes otherwise).
  bool require_proposals = true;
};

class AcsSession {
 public:
  AcsSession(AcsHost& host, int self, int n, int t, AcsOptions options = {});

  // Proposes `value` and joins the protocol.
  void start(Context& ctx, Bytes value);
  // Externally vouches for j's inclusion (input 1 to ABA_j).
  void mark_ready(Context& ctx, int j);
  // RB-delivered kAcsProposal messages.
  void on_broadcast(Context& ctx, int origin, const Message& m);
  // Decision of agreement instance `instance`, routed by the host.
  void on_aba_decided(Context& ctx, std::uint32_t instance, int value);

  [[nodiscard]] bool has_output() const { return output_.has_value(); }
  // The agreed subset as (process, proposal) pairs, ascending by process.
  [[nodiscard]] const std::vector<std::pair<int, Bytes>>& output() const {
    return *output_;
  }

 private:
  void try_flush_zero_inputs(Context& ctx);
  void try_output(Context& ctx);

  AcsHost& host_;
  int self_;
  int n_;
  int t_;
  AcsOptions options_;
  bool started_ = false;
  std::map<int, Bytes> proposals_;
  std::set<int> input_given_;
  std::map<int, int> decisions_;
  int ones_ = 0;
  bool zeros_flushed_ = false;
  std::optional<std::vector<std::pair<int, Bytes>>> output_;
};

}  // namespace svss
