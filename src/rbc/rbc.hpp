// Reliable Broadcast (paper Appendix A).
//
// Two layered primitives, implemented exactly as in the appendix:
//  * Weak Reliable Broadcast (WRB) — Dolev's crusader agreement.  Type-1
//    message from the dealer, type-2 echoes; accepting requires n-t
//    matching echoes, so no two nonfaulty processes accept different
//    values.
//  * Reliable Broadcast (RB) — Bracha's echo broadcast on top of WRB.
//    Type-3 "ready" messages with the t+1 amplification rule add the
//    all-or-none termination property.
//
// One Rbc component per process multiplexes arbitrarily many concurrent
// broadcast instances, keyed by BcastId.  The broadcast value is an opaque
// byte string (a serialized application Message); on acceptance it is
// parsed and checked against the instance id, so a Byzantine origin cannot
// smuggle a message for a different slot or session through its own
// broadcast.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <unordered_map>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

class Rbc {
 public:
  // Called exactly once per accepted broadcast with the parsed message.
  using DeliverFn = std::function<void(Context&, int origin, const Message&)>;

  explicit Rbc(DeliverFn deliver) : deliver_(std::move(deliver)) {}

  // Reliably broadcasts `m` as this process's broadcast for the slot
  // (m.sid, m.type, m.a).  Every process (including the sender) delivers it
  // at most once, and all nonfaulty processes that deliver agree.
  void broadcast(Context& ctx, const Message& m);

  // Feeds one RB transport packet into the state machine.  May trigger
  // echo/ready sends and, on acceptance, the deliver callback.
  void on_transport(Context& ctx, int from, const Packet& p);

  // Number of instances this process has participated in (for tests).
  [[nodiscard]] std::size_t instance_count() const { return instances_.size(); }

 private:
  struct Instance {
    bool sent_echo = false;
    bool sent_ready = false;
    bool accepted = false;
    Bytes ready_value;  // the value this process is backing, if sent_ready
    // value -> distinct senders seen (std::map: Bytes has operator<)
    std::map<Bytes, std::set<int>> echoes;
    std::map<Bytes, std::set<int>> readies;
  };

  void maybe_accept(Context& ctx, const BcastId& bid, Instance& inst,
                    const Bytes& value, std::size_t ready_count);

  DeliverFn deliver_;
  std::unordered_map<BcastId, Instance, BcastIdHash> instances_;
};

}  // namespace svss
