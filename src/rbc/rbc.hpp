// Reliable Broadcast (paper Appendix A).
//
// Two layered primitives, implemented exactly as in the appendix:
//  * Weak Reliable Broadcast (WRB) — Dolev's crusader agreement.  Type-1
//    message from the dealer, type-2 echoes; accepting requires n-t
//    matching echoes, so no two nonfaulty processes accept different
//    values.
//  * Reliable Broadcast (RB) — Bracha's echo broadcast on top of WRB.
//    Type-3 "ready" messages with the t+1 amplification rule add the
//    all-or-none termination property.
//
// One Rbc component per process multiplexes arbitrarily many concurrent
// broadcast instances, keyed by BcastId.  The broadcast value is an opaque
// byte string (a serialized application Message); on acceptance it is
// parsed and checked against the instance id, so a Byzantine origin cannot
// smuggle a message for a different slot or session through its own
// broadcast.
//
// Storage is sized for the coin's traffic profile: a full-stack agreement
// run drives millions of transport packets through this state machine, so
// instances live in a flat open-addressing table (one hash probe per
// packet, no node allocations) and per-value sender sets are fixed-width
// bitsets (process ids are bounded by kMaxN).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

class Rbc {
 public:
  // Called exactly once per accepted broadcast with the parsed message.
  using DeliverFn = std::function<void(Context&, int origin, const Message&)>;

  explicit Rbc(DeliverFn deliver) : deliver_(std::move(deliver)) {}

  // Reliably broadcasts `m` as this process's broadcast for the slot
  // (m.sid, m.type, m.a).  Every process (including the sender) delivers it
  // at most once, and all nonfaulty processes that deliver agree.
  void broadcast(Context& ctx, const Message& m);

  // Feeds one RB transport packet into the state machine.  May trigger
  // echo/ready sends and, on acceptance, the deliver callback.
  void on_transport(Context& ctx, int from, const Packet& p);

  // Number of instances this process has participated in (for tests).
  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }

 private:
  // Distinct senders of one value, as a fixed-width bitset (no per-sender
  // allocation).  Width is derived from kMaxN — the same bound
  // Runner::validate enforces — so widening the id space automatically
  // widens the set.
  struct SenderSet {
    static constexpr std::size_t kWords = (kMaxN + 63) / 64;
    std::uint64_t words[kWords] = {};

    // Inserts sender `i`; false if already present (or out of range).
    bool insert(int i) {
      if (i < 0 || i >= static_cast<int>(kMaxN)) return false;
      std::uint64_t& w = words[i >> 6];
      std::uint64_t bit = 1ULL << (i & 63);
      if ((w & bit) != 0) return false;
      w |= bit;
      return true;
    }
    [[nodiscard]] int count() const {
      int total = 0;
      for (std::uint64_t w : words) total += __builtin_popcountll(w);
      return total;
    }
  };

  // Echo/ready tallies for one distinct broadcast value.  Almost every
  // instance sees exactly one value, so values live in a small vector
  // scanned linearly.
  struct ValueVotes {
    Bytes value;
    SenderSet echoes;
    SenderSet readies;
  };

  struct Instance {
    bool sent_echo = false;
    bool sent_ready = false;
    bool accepted = false;
    std::vector<ValueVotes> votes;

    ValueVotes& votes_for(const Bytes& value) {
      for (ValueVotes& v : votes) {
        if (v.value == value) return v;
      }
      votes.push_back(ValueVotes{value, {}, {}});
      return votes.back();
    }
  };

  void maybe_accept(Context& ctx, const BcastId& bid, Instance& inst,
                    const Bytes& value, int ready_count);

  DeliverFn deliver_;
  FlatMap<BcastId, Instance, BcastIdHash> instances_;
};

}  // namespace svss
