#include "rbc/rbc.hpp"

namespace svss {

void Rbc::broadcast(Context& ctx, const Message& m) {
  BcastId bid;
  bid.origin = static_cast<std::int16_t>(ctx.self());
  bid.sid = m.sid;
  bid.slot = m.type;
  bid.a = m.a;
  ctx.send_all(make_rb(bid, RbPhase::kSend, m.serialize()));
}

void Rbc::on_transport(Context& ctx, int from, const Packet& p) {
  if (!p.is_rb) return;
  const BcastId& bid = p.bid;
  Instance& inst = instances_[bid];
  if (inst.accepted) return;
  const int n = ctx.n();
  const int t = ctx.t();

  switch (p.phase) {
    case RbPhase::kSend: {
      // WRB step 2: echo the dealer's type-1 message, once, only if it
      // really came from the claimed origin.
      if (from != bid.origin || inst.sent_echo) return;
      inst.sent_echo = true;
      ctx.send_all(make_rb(bid, RbPhase::kEcho, p.value));
      return;
    }
    case RbPhase::kEcho: {
      auto& senders = inst.echoes[p.value];
      if (!senders.insert(from).second) return;
      // WRB step 3: n-t matching echoes -> WRB-accept; RB step 2: send
      // ready for the WRB-accepted value.
      if (static_cast<int>(senders.size()) >= n - t && !inst.sent_ready) {
        inst.sent_ready = true;
        inst.ready_value = p.value;
        ctx.send_all(make_rb(bid, RbPhase::kReady, p.value));
      }
      return;
    }
    case RbPhase::kReady: {
      auto& senders = inst.readies[p.value];
      if (!senders.insert(from).second) return;
      // RB step 3: t+1 readies amplify.
      if (static_cast<int>(senders.size()) >= t + 1 && !inst.sent_ready) {
        inst.sent_ready = true;
        inst.ready_value = p.value;
        ctx.send_all(make_rb(bid, RbPhase::kReady, p.value));
      }
      // RB step 4: n-t readies accept.
      maybe_accept(ctx, bid, inst, p.value, senders.size());
      return;
    }
  }
}

void Rbc::maybe_accept(Context& ctx, const BcastId& bid, Instance& inst,
                       const Bytes& value, std::size_t ready_count) {
  if (inst.accepted || static_cast<int>(ready_count) < ctx.n() - ctx.t()) {
    return;
  }
  inst.accepted = true;
  // Free the per-value maps; the instance record stays as an accept marker.
  inst.echoes.clear();
  inst.readies.clear();

  auto msg = Message::deserialize(value);
  // A Byzantine origin can get garbage accepted, or a message whose header
  // does not match the slot it was broadcast under.  All nonfaulty
  // processes parse the same bytes, so they all drop it consistently.
  if (!msg || !(msg->sid == bid.sid) || msg->type != bid.slot ||
      msg->a != bid.a) {
    return;
  }
  deliver_(ctx, bid.origin, *msg);
}

}  // namespace svss
