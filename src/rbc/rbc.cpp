#include "rbc/rbc.hpp"

namespace svss {

void Rbc::broadcast(Context& ctx, const Message& m) {
  BcastId bid;
  bid.origin = static_cast<std::int16_t>(ctx.self());
  bid.sid = m.sid;
  bid.slot = m.type;
  bid.a = m.a;
  ctx.send_all(make_rb(bid, RbPhase::kSend, m.serialize()));
}

void Rbc::on_transport(Context& ctx, int from, const Packet& p) {
  if (!p.is_rb) return;
  const BcastId& bid = p.bid;
  // No instance is created while this handler runs (broadcast() never
  // touches the table), so the reference stays valid across the sends.
  Instance& inst = instances_[bid];
  if (inst.accepted) return;
  const int n = ctx.n();
  const int t = ctx.t();

  switch (p.phase) {
    case RbPhase::kSend: {
      // WRB step 2: echo the dealer's type-1 message, once, only if it
      // really came from the claimed origin.  Relaying reuses the shared
      // payload: no copy per echo.
      if (from != bid.origin || inst.sent_echo) return;
      inst.sent_echo = true;
      ctx.send_all(make_rb(bid, RbPhase::kEcho, p.value));
      return;
    }
    case RbPhase::kEcho: {
      ValueVotes& votes = inst.votes_for(p.rb_payload());
      if (!votes.echoes.insert(from)) return;
      // WRB step 3: n-t matching echoes -> WRB-accept; RB step 2: send
      // ready for the WRB-accepted value.
      if (votes.echoes.count() >= n - t && !inst.sent_ready) {
        inst.sent_ready = true;
        ctx.send_all(make_rb(bid, RbPhase::kReady, p.value));
      }
      return;
    }
    case RbPhase::kReady: {
      ValueVotes& votes = inst.votes_for(p.rb_payload());
      if (!votes.readies.insert(from)) return;
      int readies = votes.readies.count();
      // RB step 3: t+1 readies amplify.
      if (readies >= t + 1 && !inst.sent_ready) {
        inst.sent_ready = true;
        ctx.send_all(make_rb(bid, RbPhase::kReady, p.value));
      }
      // RB step 4: n-t readies accept.
      maybe_accept(ctx, bid, inst, p.rb_payload(), readies);
      return;
    }
  }
}

void Rbc::maybe_accept(Context& ctx, const BcastId& bid, Instance& inst,
                       const Bytes& value, int ready_count) {
  if (inst.accepted || ready_count < ctx.n() - ctx.t()) {
    return;
  }
  inst.accepted = true;
  // Free the per-value tallies; the instance record stays as an accept
  // marker.
  auto msg = Message::deserialize(value);
  inst.votes.clear();
  inst.votes.shrink_to_fit();

  // A Byzantine origin can get garbage accepted, or a message whose header
  // does not match the slot it was broadcast under.  All nonfaulty
  // processes parse the same bytes, so they all drop it consistently.
  if (!msg || !(msg->sid == bid.sid) || msg->type != bid.slot ||
      msg->a != bid.a) {
    return;
  }
  deliver_(ctx, bid.origin, *msg);
}

}  // namespace svss
