// Discrete-event simulation engine: processes, private channels, and an
// adversarial scheduler.
//
// The engine is the substrate substituting for the paper's asynchronous
// network.  It owns n processes, a pool of in-flight packets, and delivers
// one packet per step in scheduler-priority order, with an age cap that
// guarantees eventual delivery.  Determinism: a run is a pure function of
// (processes, scheduler, seed), so every failure is replayable.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "net/transport.hpp"
#include "sim/message.hpp"
#include "sim/metrics.hpp"
#include "sim/scheduler.hpp"

namespace svss {

// ----------------------------------------------------------------------
// Event log: structured trace of protocol-level events, consumed by tests
// and benchmarks to check the paper's properties (binding-or-shun,
// validity, coin probability bounds, agreement, ...).
// ----------------------------------------------------------------------

enum class EventKind : std::uint8_t {
  kShun,             // who starts shunning other (D_i addition or forever-delay)
  kMwShareComplete,  // who completed MW-SVSS share S' of sid
  kMwReconOutput,    // who output value (or bottom) in MW-SVSS R' of sid
  kSvssShareComplete,
  kSvssReconOutput,
  kCoinOutput,       // who output bit `value` in coin round sid.counter
  kAbaDecide,        // who decided `value`; other = round
  kCustom,
};

struct Event {
  EventKind kind;
  int who = -1;
  int other = -1;
  SessionId sid;
  std::int64_t value = 0;
  bool has_value = false;  // false encodes bottom for recon outputs
};

class EventLog {
 public:
  void record(Event e) { events_.push_back(std::move(e)); }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  // All (i, j) pairs such that i started shunning j at some point.
  [[nodiscard]] std::vector<std::pair<int, int>> shun_pairs() const;
  // Reconstruct outputs of `kind` for session `sid`, indexed by process.
  [[nodiscard]] std::vector<std::pair<int, std::optional<std::int64_t>>>
  recon_outputs(EventKind kind, const SessionId& sid) const;

 private:
  std::vector<Event> events_;
};

// ----------------------------------------------------------------------
// Process interface and per-process context
// ----------------------------------------------------------------------

class Engine;

// A single-endpoint world: everything one process needs when it is NOT
// hosted inside an Engine — its own RNG stream, its own event log, and an
// ITransport endpoint to reach its peers.  This is what a socket-backed
// daemon (core/daemon.hpp) builds one of per OS process/thread; the seeding
// convention (the self-th of Engine's sequential root splits) matches the
// simulator's exactly, so a daemon fleet started from one seed deals the
// same values the simulator would.
struct ProcessWorld {
  int self = 0;
  int n = 0;
  int t = 0;
  Rng rng{0};
  EventLog log;
  ITransport* transport = nullptr;
};

// Handle through which a process interacts with the world.  Passed to every
// callback; never stored by processes.  Backed either by an Engine (the
// simulator: sends go through the adversarial scheduler) or by a
// ProcessWorld (a real transport: sends go straight to the seam).  The
// engine branch is the original code path, untouched — replay stays
// byte-identical.
class Context {
 public:
  Context(Engine& engine, int self) : engine_(&engine), self_(self) {}
  explicit Context(ProcessWorld& world)
      : world_(&world), self_(world.self) {}

  [[nodiscard]] int self() const { return self_; }
  [[nodiscard]] int n() const;
  [[nodiscard]] int t() const;
  Rng& rng();
  EventLog& log();

  // Sends `p` over the private channel self -> to.  Sending to self is
  // allowed and goes through the scheduler like any other packet.
  void send(int to, Packet p);
  // Convenience: send a packet to every process (including self).
  void send_all(Packet p);

 private:
  Engine* engine_ = nullptr;
  ProcessWorld* world_ = nullptr;
  int self_;
};

class IProcess {
 public:
  virtual ~IProcess() = default;
  virtual void start(Context& ctx) = 0;
  virtual void on_packet(Context& ctx, int from, const Packet& p) = 0;
};

// ----------------------------------------------------------------------
// Engine
// ----------------------------------------------------------------------

enum class RunStatus {
  kQuiescent,   // no packets left: every protocol ran to completion
  kDeliveryCap, // hit max_deliveries (used as a non-termination guard)
};

class Engine {
 public:
  Engine(int n, int t, std::uint64_t seed, std::unique_ptr<Scheduler> sched);
  ~Engine();

  // Must be called for every id in [0, n) before run() — unless the slot is
  // driven through its transport() endpoint's delivery sink instead.
  void set_process(int id, std::unique_ptr<IProcess> p);

  // The seam: this engine viewed as process `id`'s ITransport endpoint.
  // send/broadcast enqueue through the scheduler exactly like Context; a
  // registered delivery sink receives the slot's packets in place of an
  // IProcess.  This is how the simulator serves as the reference backend
  // for code written against the transport interface.
  ITransport& transport(int id);

  // Outbound interceptor for a (faulty) process: inspects/mutates every
  // packet the process sends, per recipient; returning false drops it.
  // This models Byzantine behaviour as "honest code, corrupted wire":
  // equivocation, wrong shares, selective silence, etc., without forking
  // the protocol implementation.
  using Interceptor = std::function<bool(int from, int to, Packet&)>;
  void set_interceptor(int id, Interceptor f);

  // Calls start() on every process, then delivers packets until quiescence
  // or the delivery cap.
  RunStatus run(std::uint64_t max_deliveries = 50'000'000);

  // Delivers packets until `done()` returns true (early stop for
  // experiments that only need e.g. all honest decisions), quiescence, or
  // the cap.
  RunStatus run_until(const std::function<bool()>& done,
                      std::uint64_t max_deliveries = 50'000'000);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int t() const { return t_; }
  [[nodiscard]] const Metrics& metrics() const { return metrics_; }
  [[nodiscard]] EventLog& log() { return log_; }
  [[nodiscard]] const EventLog& log() const { return log_; }
  Rng& rng_for(int id) { return rngs_[static_cast<std::size_t>(id)]; }
  IProcess& process(int id) { return *procs_[static_cast<std::size_t>(id)]; }

  // Age cap: a packet skipped for more than this many deliveries is forced
  // through, guaranteeing eventual delivery under any scheduler.
  void set_max_lag(std::uint64_t lag) { max_lag_ = lag; }
  [[nodiscard]] std::uint64_t max_lag() const { return max_lag_; }

  // The run's scheduler (for attaching a ScheduleView or inspecting it).
  Scheduler& scheduler() { return *sched_; }

  // Read-only tap on the delivery stream: called for every delivered packet
  // just before it is dispatched to its receiver.  This is the coverage
  // signal for schedule search (src/search/) — observing deliveries cannot
  // influence them, so replay stays byte-identical with or without an
  // observer installed.
  using DeliveryObserver =
      std::function<void(const PendingInfo&, const Packet&)>;
  void set_delivery_observer(DeliveryObserver obs) {
    observer_ = std::move(obs);
  }

 private:
  friend class Context;
  class SimPort;
  void enqueue(int from, int to, Packet p);
  void deliver_one();
  [[nodiscard]] bool idle() const { return in_flight_ == 0; }

  // One in-flight packet, stored in a reusable arena slot.  `heap_pos`
  // makes the priority queue *indexed*: a slot knows its position in
  // heap_, so the age-cap path can remove it in O(log k) instead of
  // leaving tombstones behind for lazy deletion.
  struct Pending {
    Packet pkt;
    std::uint64_t seq = 0;
    std::uint64_t priority = 0;
    std::uint64_t enqueue_step = 0;
    std::uint64_t depth = 0;
    std::uint32_t heap_pos = kNoHeapPos;
    std::int32_t from = -1;
    std::int32_t to = -1;
    bool live = false;
  };
  static constexpr std::uint32_t kNoHeapPos = 0xFFFFFFFFu;

  // Indexed min-heap over arena slots, ordered by (priority, seq).  The
  // keys are replicated into the heap entries so sifting stays inside the
  // heap array instead of chasing arena slots.
  struct HeapEntry {
    std::uint64_t priority;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool heap_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.seq < b.seq;
  }
  void heap_place(std::uint32_t pos, const HeapEntry& e);
  void heap_push(std::uint32_t slot);
  void heap_sift_up(std::uint32_t pos);
  void heap_sift_down(std::uint32_t pos);
  void heap_remove(std::uint32_t slot);

  int n_;
  int t_;
  std::unique_ptr<Scheduler> sched_;
  std::vector<std::unique_ptr<IProcess>> procs_;
  std::vector<std::unique_ptr<SimPort>> ports_;  // lazily created per id
  std::vector<Interceptor> interceptors_;
  std::vector<Rng> rngs_;
  // Arena of in-flight packets: slots are reused through free_slots_, so a
  // long run allocates a bounded number of Pending records regardless of
  // how many packets flow through.  heap_ orders live slots by scheduler
  // priority; fifo_ records (slot, seq) in send order for the age cap
  // (stale entries — slot delivered or reused — are skipped by seq check).
  std::vector<Pending> arena_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;
  std::deque<std::pair<std::uint32_t, std::uint64_t>> fifo_;
  std::size_t in_flight_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t max_lag_ = 1 << 20;
  std::uint64_t current_depth_ = 0;  // causal depth during a delivery
  std::vector<std::uint64_t> proc_depth_;
  DeliveryObserver observer_;
  Metrics metrics_;
  EventLog log_;
  bool started_ = false;
};

}  // namespace svss
