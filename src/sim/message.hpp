// Wire-level message model shared by every protocol layer.
//
// Sessions.  The paper tags every VSS invocation with a session identifier
// (c, i) — a counter plus the dealer — and nests MW-SVSS invocations inside
// SVSS invocations, SVSS invocations inside common-coin rounds, and coin
// rounds inside the agreement protocol.  SessionId makes that whole chain
// self-describing so a receiver can route any message to the right protocol
// instance (creating it on first contact) and so DMM can order sessions.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/field.hpp"
#include "common/serialization.hpp"

namespace svss {

// Where a session sits in the protocol stack.  The parent session of a
// nested invocation is recoverable from the id alone (see parent_session).
enum class SessionPath : std::uint8_t {
  kMwTop = 0,        // standalone MW-SVSS invocation
  kMwInSvssTop = 1,  // MW-SVSS nested in a standalone SVSS invocation
  kMwInSvssCoin = 2, // MW-SVSS nested in an SVSS nested in a coin round
  kSvssTop = 3,      // standalone SVSS invocation
  kSvssCoin = 4,     // SVSS invocation that carries one coin-round secret
  kCoin = 5,         // one shunning-common-coin round
  kAba = 6,          // the agreement protocol instance
  kTest = 7,         // scratch sessions for unit tests
};

// Number of attachees encodable in an SVSS-in-coin counter (round*kMaxN+j).
inline constexpr std::uint32_t kMaxN = 128;

struct SessionId {
  SessionPath path = SessionPath::kTest;
  // For MW-SVSS-in-SVSS: 0 if the shared entry is f(moderator, dealer),
  // 1 if it is f(dealer, moderator).  (Paper, S step 2, cases a-d.)
  std::uint8_t variant = 0;
  std::int16_t owner = -1;       // dealer of *this* layer's invocation
  std::int16_t moderator = -1;   // MW-SVSS moderator, else -1
  std::int16_t svss_dealer = -1; // enclosing SVSS dealer for nested MW-SVSS
  std::uint32_t counter = 0;     // top-level counter; for kSvssCoin this is
                                 // round * kMaxN + attachee
  // Which concurrent agreement instance this session serves.  Every layer
  // of one instance's cascade — ABA votes, coin rounds, their SVSS and
  // MW-SVSS children — carries the same instance id, so one node/transport
  // stack multiplexes any number of instances and a receiver routes purely
  // on the sid.  0 for single-instance protocols and all non-ABA stacks.
  std::uint32_t instance = 0;
  // Which membership epoch this session belongs to (core/epoch.hpp).  The
  // epoch layer stamps outbound envelopes with the current epoch and drops
  // inbound traffic from other epochs at the transport seam, so protocol
  // code always runs with epoch 0 and never branches on this field.  Last
  // so existing aggregate initializers stay valid.
  std::uint32_t epoch = 0;

  friend auto operator<=>(const SessionId&, const SessionId&) = default;
  friend bool operator==(const SessionId&, const SessionId&) = default;

  [[nodiscard]] std::string str() const;
};

// The enclosing session, or nullopt for top-level sessions.
std::optional<SessionId> parent_session(const SessionId& sid);

// Message types across all layers.  One flat enum keeps serialization and
// logging trivial; each protocol only consumes its own values.
enum class MsgType : std::uint8_t {
  // --- MW-SVSS (Section 3.2) ---
  kMwDealerShares = 1,  // dealer -> j: f_1(j) .. f_n(j)           (direct)
  kMwDealerPoly = 2,    // dealer -> l: f_l(1) .. f_l(t+1)         (direct)
  kMwDealerWhole = 3,   // dealer -> moderator: f(1) .. f(t+1)     (direct)
  kMwEchoVal = 4,       // j -> l: the value f_l(j) j received     (direct)
  kMwMonitorVal = 5,    // monitor j -> moderator: f_j(0)          (direct)
  kMwAck = 6,           // j: "I received my shares"               (RB)
  kMwLset = 7,          // monitor j: the confirmer set L_j        (RB)
  kMwMset = 8,          // moderator: the accepted monitor set M   (RB)
  kMwOk = 9,            // dealer: OK                              (RB)
  kMwReconVal = 10,     // j: (l, f_l(j)) in reconstruct           (RB)
  // --- group-coalesced MW transport (src/mwsvss/group_transport) ---
  // One envelope coalesces the same-type messages a sender emits, within
  // one delivery cascade, for the n sibling MW children (attachees) of one
  // (round, dealer, owner, moderator, variant) coin group.  Direct
  // envelopes carry mixed per-session sub-types; each RB type keeps its own
  // envelope so one kMwBatch* RBC instance per (group, sender, type, flush)
  // replaces up to n per-session instances.
  kMwBatchDirect = 11,    // (type, j, len) triples in ints; vals concat
  kMwBatchAck = 12,       // ints = attachee list                  (RB)
  kMwBatchLset = 13,      // ints = (j, len, members...) runs      (RB)
  kMwBatchMset = 14,      // ints = (j, len, members...) runs      (RB)
  kMwBatchOk = 15,        // ints = attachee list                  (RB)
  kMwBatchReconVal = 16,  // ints = (j, l) pairs; vals = values    (RB)
  // --- SVSS (Section 4) ---
  kSvssDealerShares = 20,  // dealer -> j: g_j, h_j points         (direct)
  kSvssGset = 21,          // dealer: G and {G_j}                  (RB)
  // --- batched coin-round SVSS transport (src/coin/batched_transport) ---
  kSvssBatchShares = 22,   // dealer -> j: all n sessions' g/h pts (direct)
  kSvssBatchGset = 23,     // dealer: all n sessions' G-set blobs  (RB)
  // --- Common coin (Section 5) ---
  kCoinGset = 30,       // i: set of n-t dealers whose shares done (RB)
  kCoinStartRecon = 31, // i: entering reconstruction, support set (RB)
  // --- Byzantine agreement ---
  kAbaVote = 40,        // (round, phase, value)                   (RB)
  // --- cross-instance vote transport (src/aba/vote_batch) ---
  // One envelope coalesces every ABA vote a sender emits within one
  // delivery cascade, across all concurrent instances and rounds: at scale
  // nearly 100% of ideal-coin agreement bytes are aba-vote, so this is the
  // packet lever once coin/MW traffic is already batched.
  kAbaBatchVote = 41,   // (instance, round, subtype, value) runs (direct)
  kAbaBatchConf = 42,   // (instance, round, setcode) triples      (RB)
  // --- extensions ---
  kAcsProposal = 50,     // ACS: opaque proposal                (RB)
  kSumPoint = 51,        // ASMPC secure sum: summed share point (RB)
  // --- epoch/recovery control plane (core/epoch.hpp, core/recovery.hpp) ---
  // These bypass the epoch fence: a rejoining daemon must be able to ask
  // for state regardless of which epoch it crashed in.  `ints` of the
  // request carries the (epoch, instance) pairs already known; the state
  // reply's `blob` is encode_catchup_state().
  kEpochCatchupReq = 52,   // rejoiner -> all: what did I miss?   (direct)
  kEpochCatchupState = 53, // peer -> rejoiner: decisions + epoch (direct)
  // --- tests/examples ---
  kTestPayload = 60,
};

// One application-level message.  `a`/`b` are small integer arguments whose
// meaning depends on `type` (e.g. the poly index l in kMwReconVal).
struct Message {
  SessionId sid;
  MsgType type = MsgType::kTestPayload;
  std::int16_t a = -1;
  std::int16_t b = -1;
  FieldVec vals;
  std::vector<int> ints;
  Bytes blob;

  [[nodiscard]] Bytes serialize() const;
  static std::optional<Message> deserialize(const Bytes& raw);

  // Exact size of serialize()'s output, computed without allocating.  The
  // engine meters every enqueued packet, so this must stay in sync with
  // serialize() (serialization_test pins the equality).
  [[nodiscard]] std::size_t serialized_size() const;

  friend bool operator==(const Message&, const Message&) = default;
};

// Human-readable MsgType name (metrics attribution, logs).
[[nodiscard]] const char* msg_type_name(MsgType type);

// Identity of one reliable-broadcast instance: who originated it and which
// logical slot of which session it fills.  Every process must derive the
// same id for the same logical broadcast.
struct BcastId {
  std::int16_t origin = -1;
  SessionId sid;
  MsgType slot = MsgType::kTestPayload;
  std::int16_t a = -1;  // disambiguates per-index slots (kMwReconVal)

  friend auto operator<=>(const BcastId&, const BcastId&) = default;
  friend bool operator==(const BcastId&, const BcastId&) = default;
};

// Phases of the RB transport (Appendix A): 1 = WRB initial send,
// 2 = WRB echo, 3 = Bracha ready.
enum class RbPhase : std::uint8_t { kSend = 1, kEcho = 2, kReady = 3 };

// What actually travels on a channel: either a direct (private) application
// message or one step of a reliable-broadcast instance.
struct Packet {
  bool is_rb = false;
  Message app;     // valid when !is_rb
  BcastId bid;     // valid when is_rb
  RbPhase phase = RbPhase::kSend;
  // RB value payload (a serialized Message).  Shared among the n
  // per-recipient copies of one send_all burst — an RB step used to copy
  // its payload n+1 times, which dominated allocation traffic.  Mutating
  // interceptors replace the pointer on their recipient's copy
  // (copy-on-write), so recipients still get independent views.
  std::shared_ptr<const Bytes> value;

  // The RB payload bytes (empty if unset).
  [[nodiscard]] const Bytes& rb_payload() const;
  [[nodiscard]] std::size_t wire_size() const;
};

Packet make_direct(Message m);
Packet make_rb(BcastId bid, RbPhase phase, Bytes value);
// Relay form: re-broadcasts an already-shared payload without copying it.
Packet make_rb(BcastId bid, RbPhase phase, std::shared_ptr<const Bytes> value);

struct SessionIdHash {
  std::size_t operator()(const SessionId& s) const;
};
struct BcastIdHash {
  std::size_t operator()(const BcastId& b) const;
};

}  // namespace svss
