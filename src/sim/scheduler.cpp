#include "sim/scheduler.hpp"

namespace svss {

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          std::uint64_t seed, int n, int t) {
  switch (kind) {
    case SchedulerKind::kFifo:
      return std::make_unique<FifoScheduler>();
    case SchedulerKind::kRandom:
      return std::make_unique<RandomScheduler>(seed);
    case SchedulerKind::kLifo:
      return std::make_unique<LifoScheduler>();
    case SchedulerKind::kDelayLastHonest: {
      int threshold = n - t;
      return std::make_unique<TargetedDelayScheduler>(
          seed, [threshold](const PendingInfo& p) {
            return p.from >= threshold || p.to >= threshold;
          });
    }
  }
  return std::make_unique<FifoScheduler>();
}

}  // namespace svss
