// Adversarial message schedulers.
//
// In the paper's model the adversary controls all message delays subject to
// eventual delivery.  Each scheduler assigns a delivery priority to a packet
// when it is sent (smaller delivers earlier); the engine delivers in
// priority order via a heap, so scheduling costs O(log inflight) even in
// runs with millions of packets.  Eventual delivery is enforced
// structurally by the engine's age cap: a packet passed over for more than
// `max_lag` deliveries is forced through regardless of priority.  That
// makes every scheduler a valid asynchronous adversary and keeps runs
// finite whenever the protocol is terminating.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"

namespace svss {

// What a scheduler may inspect about a packet.  Payload bytes are
// deliberately absent: channels are private.  Adversaries that need
// content awareness corrupt processes instead of the network.
struct PendingInfo {
  std::uint64_t seq;  // global send order
  int from;
  int to;
  bool is_rb;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  // Delivery priority for a freshly sent packet; smaller is earlier.
  // Ties are broken by send order.
  virtual std::uint64_t priority(const PendingInfo& p) = 0;
};

// Send order == delivery order: the benign, synchronous-looking schedule.
class FifoScheduler : public Scheduler {
 public:
  std::uint64_t priority(const PendingInfo& p) override { return p.seq; }
};

// Uniformly random delivery order (a random linear extension of the send
// sequence): the fair asynchronous schedule.
class RandomScheduler : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::uint64_t priority(const PendingInfo&) override {
    return rng_.next_u64() >> 1;
  }

 private:
  Rng rng_;
};

// Newest-first: maximal reordering relative to send order.
class LifoScheduler : public Scheduler {
 public:
  std::uint64_t priority(const PendingInfo& p) override {
    return ~p.seq;  // age cap still guarantees eventual delivery
  }
};

// Targeted delay: packets matching `slow` are pushed `penalty` sends into
// the future (and may be re-penalized only via the engine's age cap).
// Models attacks like "starve the moderator" or "delay the last t honest
// processes" while the rest of the network stays fast.
class TargetedDelayScheduler : public Scheduler {
 public:
  using SlowPredicate = std::function<bool(const PendingInfo&)>;
  TargetedDelayScheduler(std::uint64_t seed, SlowPredicate slow,
                         std::uint64_t penalty = 1 << 18)
      : rng_(seed), slow_(std::move(slow)), penalty_(penalty) {}
  std::uint64_t priority(const PendingInfo& p) override {
    std::uint64_t jitter = rng_.next_below(1 << 10);
    return p.seq + jitter + (slow_(p) ? penalty_ : 0);
  }

 private:
  Rng rng_;
  SlowPredicate slow_;
  std::uint64_t penalty_;
};

enum class SchedulerKind { kFifo, kRandom, kLifo, kDelayLastHonest };

// Factory used by the runner config.  n/t parameterize built-in predicates
// (kDelayLastHonest slows all traffic touching processes >= n - t).
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          std::uint64_t seed, int n, int t);

}  // namespace svss
