// Adversarial message schedulers.
//
// In the paper's model the adversary controls all message delays subject to
// eventual delivery.  Each scheduler assigns a delivery priority to a packet
// when it is sent (smaller delivers earlier); the engine delivers in
// priority order via a heap, so scheduling costs O(log inflight) even in
// runs with millions of packets.  Eventual delivery is enforced
// structurally by the engine's age cap: a packet passed over for more than
// `max_lag` deliveries is forced through regardless of priority.  That
// makes every scheduler a valid asynchronous adversary and keeps runs
// finite whenever the protocol is terminating.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/rng.hpp"

namespace svss {

// What a scheduler may inspect about a packet.  Payload bytes are
// deliberately absent: channels are private.  Adversaries that need
// content awareness corrupt processes instead of the network.
struct PendingInfo {
  std::uint64_t seq;  // global send order
  int from;
  int to;
  bool is_rb;
};

// Observable run state a scheduler may consult beyond the per-packet
// PendingInfo — the widened seam that makes a scheduler a *full-information*
// adversary co-designed with the strategy catalogue (src/adversary/).  The
// Runner attaches an implementation before the first send; everything it
// serves is deterministic in the run's config, so schedule decisions that
// consult it stay byte-replayable.
class ScheduleView {
 public:
  virtual ~ScheduleView() = default;
  // Global delivery clock: packets delivered so far (Metrics counter).
  // Lets a schedule program phase its behaviour over the run.
  [[nodiscard]] virtual std::uint64_t deliveries() const = 0;
  // True if slot `id` hosts an adversary strategy (not an honest Node).
  [[nodiscard]] virtual bool is_adversary(int id) const = 0;
  // True if some strategy is *currently* deceiving process `id` (showing it
  // corrupted values, a split-brain fork, or withholding its traffic).  The
  // canonical co-designed attack: starve exactly the processes the cabal is
  // lying to, so the lie stays load-bearing as long as possible.
  [[nodiscard]] virtual bool is_deceived(int id) const = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  // Delivery priority for a freshly sent packet; smaller is earlier.
  // Ties are broken by send order.
  virtual std::uint64_t priority(const PendingInfo& p) = 0;
  // Attaches the observable-state handle (may be nullptr; the view must
  // outlive the scheduler's last priority() call).  Stateless schedulers
  // simply never read view().
  void attach(const ScheduleView* view) { view_ = view; }

 protected:
  [[nodiscard]] const ScheduleView* view() const { return view_; }

 private:
  const ScheduleView* view_ = nullptr;
};

// Send order == delivery order: the benign, synchronous-looking schedule.
class FifoScheduler : public Scheduler {
 public:
  std::uint64_t priority(const PendingInfo& p) override { return p.seq; }
};

// Uniformly random delivery order (a random linear extension of the send
// sequence): the fair asynchronous schedule.
class RandomScheduler : public Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  std::uint64_t priority(const PendingInfo&) override {
    return rng_.next_u64() >> 1;
  }

 private:
  Rng rng_;
};

// Newest-first: maximal reordering relative to send order.
class LifoScheduler : public Scheduler {
 public:
  std::uint64_t priority(const PendingInfo& p) override {
    return ~p.seq;  // age cap still guarantees eventual delivery
  }
};

// Targeted delay: packets matching `slow` are pushed `penalty` sends into
// the future.  Models attacks like "starve the moderator" or "delay the
// last t honest processes" while the rest of the network stays fast.
//
// Invariant (pinned by scheduler_order_test): the priority of a packet is
// assigned exactly once, at send time, so `penalty` is a one-shot
// displacement — the scheduler has no way to re-penalize a packet it has
// already delayed.  A slow packet with send sequence s therefore competes
// normally once the global send counter passes s + penalty + jitter (any
// later packet's priority exceeds its own), and independently the engine's
// age cap forces it through once it has been skipped for more than max_lag
// deliveries.  Either way it is delivered within penalty + max_lag
// deliveries of entering the front of the age queue, whichever bound bites
// first.  An adversary wanting *unbounded* targeted starvation cannot get
// it from this seam; that is exactly the eventual-delivery guarantee the
// paper's network model requires.
class TargetedDelayScheduler : public Scheduler {
 public:
  using SlowPredicate = std::function<bool(const PendingInfo&)>;
  TargetedDelayScheduler(std::uint64_t seed, SlowPredicate slow,
                         std::uint64_t penalty = 1 << 18)
      : rng_(seed), slow_(std::move(slow)), penalty_(penalty) {}
  std::uint64_t priority(const PendingInfo& p) override {
    std::uint64_t jitter = rng_.next_below(1 << 10);
    return p.seq + jitter + (slow_(p) ? penalty_ : 0);
  }

 private:
  Rng rng_;
  SlowPredicate slow_;
  std::uint64_t penalty_;
};

enum class SchedulerKind { kFifo, kRandom, kLifo, kDelayLastHonest };

// Factory used by the runner config.  n/t parameterize built-in predicates
// (kDelayLastHonest slows all traffic touching processes >= n - t).
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind,
                                          std::uint64_t seed, int n, int t);

}  // namespace svss
