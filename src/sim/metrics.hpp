// Run metrics: message counts, byte counts, and causal depth.
//
// The paper's efficiency claim is that expected computation time, memory,
// message size, and message count are all polynomial in n.  The simulator
// has no wall clock, so "time" is measured as causal depth (asynchronous
// rounds): the depth of a delivery is one more than the depth of the latest
// delivery its sender had processed when it sent the packet.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sim/message.hpp"

namespace svss {

struct Metrics {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t rb_transport_packets = 0;
  std::uint64_t direct_packets = 0;
  std::uint64_t max_depth = 0;  // causal depth == async rounds
  // Non-termination guard: set when a run stops because it exhausted its
  // `max_deliveries` budget rather than reaching quiescence or its goal.
  // Almost-sure-termination sweeps report the rate of capped runs, so the
  // cutoff must be a first-class outcome, not a silent truncation.
  bool capped = false;
  std::uint64_t deliveries_at_cap = 0;
  // Outbound frames shed by the socket transport's per-peer buffer cap
  // while a peer was unreachable (net/socket_transport.hpp).  Always whole
  // frames, oldest first; zero on the sim backend.
  std::uint64_t out_dropped_frames = 0;
  std::uint64_t out_dropped_bytes = 0;

  // Per-message-type attribution of serialization cost: every packet the
  // engine meters is binned by the application MsgType it carries (RB
  // transport packets count under the slot they broadcast).  `bytes_sent`
  // is exactly what Message::serialize produces, so these counters say
  // where serialize time goes at scale (ROADMAP: n = 64 sweeps are
  // serialization-bound).  Indexed by the MsgType enum value.
  static constexpr std::size_t kTypeSlots = 64;
  std::array<std::uint64_t, kTypeSlots> packets_by_type{};
  std::array<std::uint64_t, kTypeSlots> bytes_by_type{};

  void note_type(MsgType type, std::size_t bytes) {
    auto slot = static_cast<std::size_t>(type);
    if (slot < kTypeSlots) {
      packets_by_type[slot]++;
      bytes_by_type[slot] += bytes;
    }
  }

  void merge(const Metrics& o) {
    packets_sent += o.packets_sent;
    bytes_sent += o.bytes_sent;
    packets_delivered += o.packets_delivered;
    rb_transport_packets += o.rb_transport_packets;
    direct_packets += o.direct_packets;
    if (o.max_depth > max_depth) max_depth = o.max_depth;
    capped = capped || o.capped;
    if (o.deliveries_at_cap > deliveries_at_cap) {
      deliveries_at_cap = o.deliveries_at_cap;
    }
    out_dropped_frames += o.out_dropped_frames;
    out_dropped_bytes += o.out_dropped_bytes;
    for (std::size_t i = 0; i < kTypeSlots; ++i) {
      packets_by_type[i] += o.packets_by_type[i];
      bytes_by_type[i] += o.bytes_by_type[i];
    }
  }

  // One-line human-readable digest for runner/example summary output.
  [[nodiscard]] std::string summary() const;

  // Traffic-group attribution: every MsgType belongs to one protocol
  // traffic group (mw-rb, mw-direct, svss-deal, svss-gset, coin, aba, ext,
  // other) and is either per-session framing or a batch envelope.  The
  // (group, batched?) packet split is what makes a batching win directly
  // readable from a run summary — e.g. the stress lane's >=5x full-stack
  // packet-reduction claim.
  static const char* type_group(MsgType type, bool* batched);
  // " [packets by group: mw-rb=N (M batched) ...]"; empty when no packets.
  [[nodiscard]] std::string group_summary() const;
};

}  // namespace svss
