// Run metrics: message counts, byte counts, and causal depth.
//
// The paper's efficiency claim is that expected computation time, memory,
// message size, and message count are all polynomial in n.  The simulator
// has no wall clock, so "time" is measured as causal depth (asynchronous
// rounds): the depth of a delivery is one more than the depth of the latest
// delivery its sender had processed when it sent the packet.
#pragma once

#include <cstdint>

namespace svss {

struct Metrics {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t rb_transport_packets = 0;
  std::uint64_t direct_packets = 0;
  std::uint64_t max_depth = 0;  // causal depth == async rounds

  void merge(const Metrics& o) {
    packets_sent += o.packets_sent;
    bytes_sent += o.bytes_sent;
    packets_delivered += o.packets_delivered;
    rb_transport_packets += o.rb_transport_packets;
    direct_packets += o.direct_packets;
    if (o.max_depth > max_depth) max_depth = o.max_depth;
  }
};

}  // namespace svss
