#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace svss {

std::vector<std::pair<int, int>> EventLog::shun_pairs() const {
  std::vector<std::pair<int, int>> out;
  for (const Event& e : events_) {
    if (e.kind != EventKind::kShun) continue;
    std::pair<int, int> p{e.who, e.other};
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

std::vector<std::pair<int, std::optional<std::int64_t>>>
EventLog::recon_outputs(EventKind kind, const SessionId& sid) const {
  std::vector<std::pair<int, std::optional<std::int64_t>>> out;
  for (const Event& e : events_) {
    if (e.kind != kind || !(e.sid == sid)) continue;
    out.emplace_back(e.who, e.has_value
                                ? std::optional<std::int64_t>(e.value)
                                : std::nullopt);
  }
  return out;
}

int Context::n() const { return engine_->n(); }
int Context::t() const { return engine_->t(); }
Rng& Context::rng() { return engine_->rng_for(self_); }
EventLog& Context::log() { return engine_->log(); }

void Context::send(int to, Packet p) { engine_->enqueue(self_, to, std::move(p)); }

void Context::send_all(Packet p) {
  for (int to = 0; to < engine_->n(); ++to) {
    engine_->enqueue(self_, to, p);
  }
}

Engine::Engine(int n, int t, std::uint64_t seed,
               std::unique_ptr<Scheduler> sched)
    : n_(n), t_(t), sched_(std::move(sched)),
      procs_(static_cast<std::size_t>(n)),
      interceptors_(static_cast<std::size_t>(n)),
      proc_depth_(static_cast<std::size_t>(n), 0) {
  if (n <= 0) throw std::invalid_argument("Engine: n must be positive");
  Rng root(seed);
  rngs_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rngs_.push_back(root.split(static_cast<std::uint64_t>(i)));
  }
}

void Engine::set_process(int id, std::unique_ptr<IProcess> p) {
  procs_.at(static_cast<std::size_t>(id)) = std::move(p);
}

void Engine::set_interceptor(int id, Interceptor f) {
  interceptors_.at(static_cast<std::size_t>(id)) = std::move(f);
}

void Engine::enqueue(int from, int to, Packet p) {
  assert(to >= 0 && to < n_);
  if (from >= 0 && interceptors_[static_cast<std::size_t>(from)]) {
    if (!interceptors_[static_cast<std::size_t>(from)](from, to, p)) return;
  }
  std::uint64_t seq = next_seq_++;
  Pending pending;
  pending.enqueue_step = delivered_;
  pending.from = from;
  pending.to = to;
  pending.depth = current_depth_ + 1;
  pending.pkt = std::move(p);

  PendingInfo info{seq, from, to, pending.pkt.is_rb};
  std::uint64_t priority = sched_->priority(info);

  metrics_.packets_sent++;
  metrics_.bytes_sent += pending.pkt.wire_size();
  if (pending.pkt.is_rb) {
    metrics_.rb_transport_packets++;
  } else {
    metrics_.direct_packets++;
  }

  live_.emplace(seq, std::move(pending));
  heap_.push_back(HeapEntry{priority, seq});
  std::push_heap(heap_.begin(), heap_.end(), HeapOrder{});
  fifo_.push_back(seq);
}

void Engine::deliver_one() {
  while (!fifo_.empty() && live_.find(fifo_.front()) == live_.end()) {
    fifo_.pop_front();
  }
  std::uint64_t seq;
  // Age cap: force the oldest in-flight packet through if starved.
  if (!fifo_.empty() &&
      delivered_ - live_.at(fifo_.front()).enqueue_step > max_lag_) {
    seq = fifo_.front();
    fifo_.pop_front();
  } else {
    while (!heap_.empty() && live_.find(heap_.front().seq) == live_.end()) {
      std::pop_heap(heap_.begin(), heap_.end(), HeapOrder{});
      heap_.pop_back();
    }
    if (heap_.empty()) return;
    seq = heap_.front().seq;
    std::pop_heap(heap_.begin(), heap_.end(), HeapOrder{});
    heap_.pop_back();
  }

  auto node = live_.extract(seq);
  Pending& chosen = node.mapped();
  delivered_++;
  metrics_.packets_delivered++;

  // Causal depth: the receiver's depth becomes at least the packet's depth;
  // packets it sends while handling this delivery are one deeper.
  auto& rd = proc_depth_[static_cast<std::size_t>(chosen.to)];
  rd = std::max(rd, chosen.depth);
  current_depth_ = rd;
  metrics_.max_depth = std::max(metrics_.max_depth, rd);

  Context ctx(*this, chosen.to);
  procs_[static_cast<std::size_t>(chosen.to)]->on_packet(ctx, chosen.from,
                                                         chosen.pkt);
}

RunStatus Engine::run(std::uint64_t max_deliveries) {
  return run_until([] { return false; }, max_deliveries);
}

RunStatus Engine::run_until(const std::function<bool()>& done,
                            std::uint64_t max_deliveries) {
  if (!started_) {
    started_ = true;
    for (int i = 0; i < n_; ++i) {
      if (!procs_[static_cast<std::size_t>(i)]) {
        throw std::logic_error("Engine: process not set");
      }
      current_depth_ = 0;
      Context ctx(*this, i);
      procs_[static_cast<std::size_t>(i)]->start(ctx);
    }
  }
  std::uint64_t budget = max_deliveries;
  while (!idle() && !done()) {
    if (budget-- == 0) {
      metrics_.capped = true;
      metrics_.deliveries_at_cap = delivered_;
      return RunStatus::kDeliveryCap;
    }
    deliver_one();
  }
  return RunStatus::kQuiescent;
}

}  // namespace svss
