#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace svss {

std::vector<std::pair<int, int>> EventLog::shun_pairs() const {
  std::vector<std::pair<int, int>> out;
  for (const Event& e : events_) {
    if (e.kind != EventKind::kShun) continue;
    std::pair<int, int> p{e.who, e.other};
    if (std::find(out.begin(), out.end(), p) == out.end()) out.push_back(p);
  }
  return out;
}

std::vector<std::pair<int, std::optional<std::int64_t>>>
EventLog::recon_outputs(EventKind kind, const SessionId& sid) const {
  std::vector<std::pair<int, std::optional<std::int64_t>>> out;
  for (const Event& e : events_) {
    if (e.kind != kind || !(e.sid == sid)) continue;
    out.emplace_back(e.who, e.has_value
                                ? std::optional<std::int64_t>(e.value)
                                : std::nullopt);
  }
  return out;
}

int Context::n() const { return engine_ ? engine_->n() : world_->n; }
int Context::t() const { return engine_ ? engine_->t() : world_->t; }
Rng& Context::rng() { return engine_ ? engine_->rng_for(self_) : world_->rng; }
EventLog& Context::log() { return engine_ ? engine_->log() : world_->log; }

void Context::send(int to, Packet p) {
  if (engine_) {
    engine_->enqueue(self_, to, std::move(p));
    return;
  }
  world_->transport->send(to, std::move(p));
}

void Context::send_all(Packet p) {
  if (engine_) {
    for (int to = 0; to < engine_->n(); ++to) {
      engine_->enqueue(self_, to, p);
    }
    return;
  }
  world_->transport->broadcast(p);
}

// ----------------------------------------------------------------------
// SimPort: the engine as one slot's ITransport endpoint.  Sends feed the
// scheduler exactly like Context::send; a registered delivery sink takes
// the place of the slot's IProcess in deliver_one.
// ----------------------------------------------------------------------
class Engine::SimPort final : public ITransport {
 public:
  SimPort(Engine& eng, int id) : eng_(&eng), id_(id) {}

  void send(int to, Packet p) override {
    if (hook_ && !hook_(to, p)) return;
    eng_->enqueue(id_, to, std::move(p));
  }
  void broadcast(const Packet& p) override {
    for (int to = 0; to < eng_->n(); ++to) {
      Packet copy = p;
      if (hook_ && !hook_(to, copy)) continue;
      eng_->enqueue(id_, to, std::move(copy));
    }
  }
  void set_delivery(Delivery sink) override { sink_ = std::move(sink); }
  void set_send_hook(SendHook hook) override { hook_ = std::move(hook); }
  [[nodiscard]] int self() const override { return id_; }
  [[nodiscard]] int n() const override { return eng_->n(); }

  [[nodiscard]] bool has_sink() const { return static_cast<bool>(sink_); }
  void deliver(int from, Packet p) { sink_(from, std::move(p)); }

 private:
  Engine* eng_;
  int id_;
  Delivery sink_;
  SendHook hook_;
};

ITransport& Engine::transport(int id) {
  auto idx = static_cast<std::size_t>(id);
  if (ports_.size() < static_cast<std::size_t>(n_)) {
    ports_.resize(static_cast<std::size_t>(n_));
  }
  if (!ports_.at(idx)) ports_[idx] = std::make_unique<SimPort>(*this, id);
  return *ports_[idx];
}

Engine::~Engine() = default;

Engine::Engine(int n, int t, std::uint64_t seed,
               std::unique_ptr<Scheduler> sched)
    : n_(n), t_(t), sched_(std::move(sched)),
      procs_(static_cast<std::size_t>(n)),
      interceptors_(static_cast<std::size_t>(n)),
      proc_depth_(static_cast<std::size_t>(n), 0) {
  if (n <= 0) throw std::invalid_argument("Engine: n must be positive");
  Rng root(seed);
  rngs_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rngs_.push_back(root.split(static_cast<std::uint64_t>(i)));
  }
}

void Engine::set_process(int id, std::unique_ptr<IProcess> p) {
  procs_.at(static_cast<std::size_t>(id)) = std::move(p);
}

void Engine::set_interceptor(int id, Interceptor f) {
  interceptors_.at(static_cast<std::size_t>(id)) = std::move(f);
}

// ----------------------------------------------------------------------
// Indexed min-heap over arena slots, ordered by (priority, seq).  4-ary
// layout: random scheduler priorities force a full-depth sift on nearly
// every pop, so halving the number of levels (at four comparisons per
// level, adjacent in memory) beats the binary layout by a wide margin on
// the delivery-heavy protocol runs.
// ----------------------------------------------------------------------
void Engine::heap_place(std::uint32_t pos, const HeapEntry& e) {
  heap_[pos] = e;
  arena_[e.slot].heap_pos = pos;
}

void Engine::heap_sift_up(std::uint32_t pos) {
  HeapEntry e = heap_[pos];
  while (pos > 0) {
    std::uint32_t parent = (pos - 1) / 4;
    if (!heap_less(e, heap_[parent])) break;
    heap_place(pos, heap_[parent]);
    pos = parent;
  }
  heap_place(pos, e);
}

void Engine::heap_sift_down(std::uint32_t pos) {
  HeapEntry e = heap_[pos];
  const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    std::uint32_t first = 4 * pos + 1;
    if (first >= size) break;
    std::uint32_t last = std::min(first + 4, size);
    std::uint32_t best = first;
    for (std::uint32_t c = first + 1; c < last; ++c) {
      if (heap_less(heap_[c], heap_[best])) best = c;
    }
    if (!heap_less(heap_[best], e)) break;
    heap_place(pos, heap_[best]);
    pos = best;
  }
  heap_place(pos, e);
}

void Engine::heap_push(std::uint32_t slot) {
  const Pending& p = arena_[slot];
  heap_.push_back(HeapEntry{p.priority, p.seq, slot});
  arena_[slot].heap_pos = static_cast<std::uint32_t>(heap_.size()) - 1;
  heap_sift_up(arena_[slot].heap_pos);
}

void Engine::heap_remove(std::uint32_t slot) {
  std::uint32_t pos = arena_[slot].heap_pos;
  arena_[slot].heap_pos = kNoHeapPos;
  std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
  if (pos != last) {
    HeapEntry moved = heap_[last];
    heap_.pop_back();
    heap_place(pos, moved);
    heap_sift_down(pos);
    // If the relocated element did not move down it may still violate the
    // heap property upward; if it did move down, the element now at pos is
    // a former descendant of pos and sift-up is a no-op.
    heap_sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

void Engine::enqueue(int from, int to, Packet p) {
  assert(to >= 0 && to < n_);
  if (from >= 0 && interceptors_[static_cast<std::size_t>(from)]) {
    if (!interceptors_[static_cast<std::size_t>(from)](from, to, p)) return;
  }
  std::uint64_t seq = next_seq_++;

  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(arena_.size());
    arena_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Pending& pending = arena_[slot];
  pending.seq = seq;
  pending.enqueue_step = delivered_;
  pending.from = from;
  pending.to = to;
  pending.depth = current_depth_ + 1;
  pending.pkt = std::move(p);
  pending.live = true;

  PendingInfo info{seq, from, to, pending.pkt.is_rb};
  pending.priority = sched_->priority(info);

  metrics_.packets_sent++;
  std::size_t bytes = pending.pkt.wire_size();
  metrics_.bytes_sent += bytes;
  metrics_.note_type(
      pending.pkt.is_rb ? pending.pkt.bid.slot : pending.pkt.app.type, bytes);
  if (pending.pkt.is_rb) {
    metrics_.rb_transport_packets++;
  } else {
    metrics_.direct_packets++;
  }

  ++in_flight_;
  heap_push(slot);
  fifo_.emplace_back(slot, seq);
}

void Engine::deliver_one() {
  // Drop fifo entries whose packet was already delivered (their slot was
  // freed, and possibly reused under a different seq).
  while (!fifo_.empty()) {
    const auto& [slot, seq] = fifo_.front();
    if (arena_[slot].live && arena_[slot].seq == seq) break;
    fifo_.pop_front();
  }
  std::uint32_t slot;
  // Age cap: force the oldest in-flight packet through if starved.
  if (!fifo_.empty() &&
      delivered_ - arena_[fifo_.front().first].enqueue_step > max_lag_) {
    slot = fifo_.front().first;
    fifo_.pop_front();
    heap_remove(slot);
  } else {
    if (heap_.empty()) return;
    slot = heap_[0].slot;
    heap_remove(slot);
  }

  Pending& chosen = arena_[slot];
  chosen.live = false;
  --in_flight_;
  delivered_++;
  metrics_.packets_delivered++;

  // Causal depth: the receiver's depth becomes at least the packet's depth;
  // packets it sends while handling this delivery are one deeper.
  auto& rd = proc_depth_[static_cast<std::size_t>(chosen.to)];
  rd = std::max(rd, chosen.depth);
  current_depth_ = rd;
  metrics_.max_depth = std::max(metrics_.max_depth, rd);

  // Move the packet out so the slot can be reused by sends performed while
  // handling this delivery (on_packet may enqueue recursively).
  Packet pkt = std::move(chosen.pkt);
  chosen.pkt = Packet{};
  int to = chosen.to;
  int from = chosen.from;
  std::uint64_t seq = chosen.seq;
  free_slots_.push_back(slot);

  if (observer_) observer_(PendingInfo{seq, from, to, pkt.is_rb}, pkt);

  auto ti = static_cast<std::size_t>(to);
  if (ti < ports_.size() && ports_[ti] && ports_[ti]->has_sink()) {
    ports_[ti]->deliver(from, std::move(pkt));
    return;
  }
  Context ctx(*this, to);
  procs_[ti]->on_packet(ctx, from, pkt);
}

RunStatus Engine::run(std::uint64_t max_deliveries) {
  return run_until([] { return false; }, max_deliveries);
}

RunStatus Engine::run_until(const std::function<bool()>& done,
                            std::uint64_t max_deliveries) {
  if (!started_) {
    started_ = true;
    for (int i = 0; i < n_; ++i) {
      auto idx = static_cast<std::size_t>(i);
      if (!procs_[idx]) {
        // A transport-driven slot has no start hook: whoever registered
        // the sink injects the slot's initial sends itself.
        if (idx < ports_.size() && ports_[idx] && ports_[idx]->has_sink()) {
          continue;
        }
        throw std::logic_error("Engine: process not set");
      }
      current_depth_ = 0;
      Context ctx(*this, i);
      procs_[idx]->start(ctx);
    }
  }
  std::uint64_t budget = max_deliveries;
  while (!idle() && !done()) {
    if (budget-- == 0) {
      metrics_.capped = true;
      metrics_.deliveries_at_cap = delivered_;
      return RunStatus::kDeliveryCap;
    }
    deliver_one();
  }
  return RunStatus::kQuiescent;
}

}  // namespace svss
