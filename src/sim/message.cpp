#include "sim/message.hpp"

#include <sstream>

namespace svss {

std::string SessionId::str() const {
  std::ostringstream os;
  static constexpr const char* kPathNames[] = {
      "mw", "mw/svss", "mw/svss/coin", "svss", "svss/coin", "coin", "aba",
      "test"};
  os << kPathNames[static_cast<int>(path)] << "(c=" << counter
     << ",d=" << owner;
  if (instance != 0) os << ",i=" << instance;
  if (epoch != 0) os << ",e=" << epoch;
  if (moderator >= 0) os << ",m=" << moderator;
  if (svss_dealer >= 0) os << ",sd=" << svss_dealer << ",v=" << int(variant);
  os << ")";
  return os.str();
}

std::optional<SessionId> parent_session(const SessionId& sid) {
  // Nesting never crosses instances: a child session's parent carries the
  // same instance id.
  switch (sid.path) {
    case SessionPath::kMwInSvssTop:
      return SessionId{SessionPath::kSvssTop, 0, sid.svss_dealer, -1, -1,
                       sid.counter, sid.instance, sid.epoch};
    case SessionPath::kMwInSvssCoin:
      return SessionId{SessionPath::kSvssCoin, 0, sid.svss_dealer, -1, -1,
                       sid.counter, sid.instance, sid.epoch};
    case SessionPath::kSvssCoin:
      return SessionId{SessionPath::kCoin, 0, -1, -1, -1,
                       sid.counter / kMaxN, sid.instance, sid.epoch};
    default:
      return std::nullopt;
  }
}

namespace {

void write_sid(Writer& w, const SessionId& s) {
  w.u8(static_cast<std::uint8_t>(s.path));
  w.u8(s.variant);
  w.i32(s.owner);
  w.i32(s.moderator);
  w.i32(s.svss_dealer);
  w.u32(s.counter);
  w.u32(s.instance);
  w.u32(s.epoch);
}

std::optional<SessionId> read_sid(Reader& r) {
  auto path = r.u8();
  auto variant = r.u8();
  auto owner = r.i32();
  auto moderator = r.i32();
  auto svss_dealer = r.i32();
  auto counter = r.u32();
  auto instance = r.u32();
  auto epoch = r.u32();
  if (!path || !variant || !owner || !moderator || !svss_dealer || !counter ||
      !instance || !epoch) {
    return std::nullopt;
  }
  if (*path > static_cast<std::uint8_t>(SessionPath::kTest)) return std::nullopt;
  SessionId s;
  s.path = static_cast<SessionPath>(*path);
  s.variant = *variant;
  s.owner = static_cast<std::int16_t>(*owner);
  s.moderator = static_cast<std::int16_t>(*moderator);
  s.svss_dealer = static_cast<std::int16_t>(*svss_dealer);
  s.counter = *counter;
  s.instance = *instance;
  s.epoch = *epoch;
  return s;
}

}  // namespace

Bytes Message::serialize() const {
  Writer w;
  write_sid(w, sid);
  w.u8(static_cast<std::uint8_t>(type));
  w.i32(a);
  w.i32(b);
  w.field_vec(vals);
  w.int_vec(ints);
  w.bytes(blob);
  return std::move(w).take();
}

std::optional<Message> Message::deserialize(const Bytes& raw) {
  Reader r(raw);
  auto sid = read_sid(r);
  auto type = r.u8();
  auto a = r.i32();
  auto b = r.i32();
  auto vals = r.field_vec();
  auto ints = r.int_vec();
  auto blob = r.bytes();
  if (!sid || !type || !a || !b || !vals || !ints || !blob || !r.exhausted()) {
    return std::nullopt;
  }
  Message m;
  m.sid = *sid;
  m.type = static_cast<MsgType>(*type);
  m.a = static_cast<std::int16_t>(*a);
  m.b = static_cast<std::int16_t>(*b);
  m.vals = std::move(*vals);
  m.ints = std::move(*ints);
  m.blob = std::move(*blob);
  return m;
}

std::size_t Message::serialized_size() const {
  // sid (26) + type (1) + a (4) + b (4) + three length-prefixed payloads.
  return 26 + 1 + 4 + 4 + (4 + 4 * vals.size()) + (4 + 4 * ints.size()) +
         (4 + blob.size());
}

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kMwDealerShares: return "mw-dealer-shares";
    case MsgType::kMwDealerPoly: return "mw-dealer-poly";
    case MsgType::kMwDealerWhole: return "mw-dealer-whole";
    case MsgType::kMwEchoVal: return "mw-echo-val";
    case MsgType::kMwMonitorVal: return "mw-monitor-val";
    case MsgType::kMwAck: return "mw-ack";
    case MsgType::kMwLset: return "mw-lset";
    case MsgType::kMwMset: return "mw-mset";
    case MsgType::kMwOk: return "mw-ok";
    case MsgType::kMwReconVal: return "mw-recon-val";
    case MsgType::kMwBatchDirect: return "mw-batch-direct";
    case MsgType::kMwBatchAck: return "mw-batch-ack";
    case MsgType::kMwBatchLset: return "mw-batch-lset";
    case MsgType::kMwBatchMset: return "mw-batch-mset";
    case MsgType::kMwBatchOk: return "mw-batch-ok";
    case MsgType::kMwBatchReconVal: return "mw-batch-recon-val";
    case MsgType::kSvssDealerShares: return "svss-dealer-shares";
    case MsgType::kSvssGset: return "svss-gset";
    case MsgType::kSvssBatchShares: return "svss-batch-shares";
    case MsgType::kSvssBatchGset: return "svss-batch-gset";
    case MsgType::kCoinGset: return "coin-gset";
    case MsgType::kCoinStartRecon: return "coin-start-recon";
    case MsgType::kAbaVote: return "aba-vote";
    case MsgType::kAbaBatchVote: return "aba-batch-vote";
    case MsgType::kAbaBatchConf: return "aba-batch-conf";
    case MsgType::kAcsProposal: return "acs-proposal";
    case MsgType::kSumPoint: return "sum-point";
    case MsgType::kEpochCatchupReq: return "epoch-catchup-req";
    case MsgType::kEpochCatchupState: return "epoch-catchup-state";
    case MsgType::kTestPayload: return "test-payload";
  }
  return "unknown";
}

const Bytes& Packet::rb_payload() const {
  static const Bytes kEmpty;
  return value ? *value : kEmpty;
}

std::size_t Packet::wire_size() const {
  // Envelope overhead (routing headers) + payload bytes.  The direct-path
  // payload size is computed arithmetically: serializing just to count
  // bytes used to dominate the per-enqueue cost.
  constexpr std::size_t kEnvelope = 8;
  if (is_rb) {
    return kEnvelope + 16 /* bid */ + 1 /* phase */ + rb_payload().size();
  }
  return kEnvelope + app.serialized_size();
}

Packet make_direct(Message m) {
  Packet p;
  p.is_rb = false;
  p.app = std::move(m);
  return p;
}

Packet make_rb(BcastId bid, RbPhase phase, Bytes value) {
  return make_rb(bid, phase,
                 std::make_shared<const Bytes>(std::move(value)));
}

Packet make_rb(BcastId bid, RbPhase phase,
               std::shared_ptr<const Bytes> value) {
  Packet p;
  p.is_rb = true;
  p.bid = bid;
  p.phase = phase;
  p.value = std::move(value);
  return p;
}

namespace {
inline std::size_t mix(std::size_t h, std::size_t v) {
  return h * 0x100000001B3ULL ^ v;
}
}  // namespace

std::size_t SessionIdHash::operator()(const SessionId& s) const {
  std::size_t h = 0xcbf29ce484222325ULL;
  h = mix(h, static_cast<std::size_t>(s.path));
  h = mix(h, s.variant);
  h = mix(h, static_cast<std::size_t>(s.owner + 1));
  h = mix(h, static_cast<std::size_t>(s.moderator + 1));
  h = mix(h, static_cast<std::size_t>(s.svss_dealer + 1));
  h = mix(h, s.counter);
  h = mix(h, s.instance);
  h = mix(h, s.epoch);
  return h;
}

std::size_t BcastIdHash::operator()(const BcastId& b) const {
  std::size_t h = SessionIdHash{}(b.sid);
  h = mix(h, static_cast<std::size_t>(b.origin + 1));
  h = mix(h, static_cast<std::size_t>(b.slot));
  h = mix(h, static_cast<std::size_t>(b.a + 1));
  return h;
}

}  // namespace svss
