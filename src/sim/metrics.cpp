#include "sim/metrics.hpp"

namespace svss {

std::string Metrics::summary() const {
  std::string s = "delivered " + std::to_string(packets_delivered) + "/" +
                  std::to_string(packets_sent) + " packets (" +
                  std::to_string(bytes_sent) + " bytes, depth " +
                  std::to_string(max_depth) + ")";
  if (capped) {
    s += " [CAPPED at " + std::to_string(deliveries_at_cap) + " deliveries]";
  }
  return s;
}

}  // namespace svss
