#include "sim/metrics.hpp"

#include <algorithm>
#include <vector>

namespace svss {

std::string Metrics::summary() const {
  std::string s = "delivered " + std::to_string(packets_delivered) + "/" +
                  std::to_string(packets_sent) + " packets (" +
                  std::to_string(bytes_sent) + " bytes, depth " +
                  std::to_string(max_depth) + ")";
  if (capped) {
    s += " [CAPPED at " + std::to_string(deliveries_at_cap) + " deliveries]";
  }
  // Where the serialization bytes go: the top message types by volume.
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < kTypeSlots; ++i) {
    if (bytes_by_type[i] > 0) slots.push_back(i);
  }
  std::sort(slots.begin(), slots.end(), [this](std::size_t a, std::size_t b) {
    return bytes_by_type[a] > bytes_by_type[b];
  });
  if (!slots.empty()) {
    s += " [bytes by type:";
    std::size_t shown = 0;
    for (std::size_t i : slots) {
      if (shown++ == 5) break;
      s += std::string(" ") + msg_type_name(static_cast<MsgType>(i)) + "=" +
           std::to_string(bytes_by_type[i]) + "/" +
           std::to_string(packets_by_type[i]) + "pkt";
    }
    s += "]";
  }
  return s;
}

}  // namespace svss
