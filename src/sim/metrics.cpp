#include "sim/metrics.hpp"

namespace svss {}
