#include "sim/metrics.hpp"

#include <algorithm>
#include <string_view>
#include <vector>

namespace svss {

const char* Metrics::type_group(MsgType type, bool* batched) {
  *batched = false;
  switch (type) {
    case MsgType::kMwBatchDirect:
      *batched = true;
      [[fallthrough]];
    case MsgType::kMwDealerShares:
    case MsgType::kMwDealerPoly:
    case MsgType::kMwDealerWhole:
    case MsgType::kMwEchoVal:
    case MsgType::kMwMonitorVal:
      return "mw-direct";
    case MsgType::kMwBatchAck:
    case MsgType::kMwBatchLset:
    case MsgType::kMwBatchMset:
    case MsgType::kMwBatchOk:
    case MsgType::kMwBatchReconVal:
      *batched = true;
      [[fallthrough]];
    case MsgType::kMwAck:
    case MsgType::kMwLset:
    case MsgType::kMwMset:
    case MsgType::kMwOk:
    case MsgType::kMwReconVal:
      return "mw-rb";
    case MsgType::kSvssBatchShares:
      *batched = true;
      [[fallthrough]];
    case MsgType::kSvssDealerShares:
      return "svss-deal";
    case MsgType::kSvssBatchGset:
      *batched = true;
      [[fallthrough]];
    case MsgType::kSvssGset:
      return "svss-gset";
    case MsgType::kCoinGset:
    case MsgType::kCoinStartRecon:
      return "coin";
    case MsgType::kAbaBatchVote:
    case MsgType::kAbaBatchConf:
      *batched = true;
      [[fallthrough]];
    case MsgType::kAbaVote:
      return "aba";
    case MsgType::kAcsProposal:
    case MsgType::kSumPoint:
      return "ext";
    case MsgType::kEpochCatchupReq:
    case MsgType::kEpochCatchupState:
      return "catchup";
    case MsgType::kTestPayload:
      return "other";
  }
  return "other";
}

std::string Metrics::group_summary() const {
  // Fixed presentation order so the line is stable across runs.
  static constexpr const char* kGroups[] = {"mw-rb",     "mw-direct",
                                            "svss-deal", "svss-gset",
                                            "coin",      "aba",
                                            "ext",       "other"};
  std::string s;
  for (const char* group : kGroups) {
    std::uint64_t total = 0;
    std::uint64_t batched = 0;
    for (std::size_t i = 0; i < kTypeSlots; ++i) {
      if (packets_by_type[i] == 0) continue;
      bool is_batched = false;
      if (std::string_view(type_group(static_cast<MsgType>(i),
                                      &is_batched)) != group) {
        continue;
      }
      total += packets_by_type[i];
      if (is_batched) batched += packets_by_type[i];
    }
    if (total == 0) continue;
    s += s.empty() ? " [packets by group:" : "";
    s += std::string(" ") + group + "=" + std::to_string(total);
    if (batched > 0) s += " (" + std::to_string(batched) + " batched)";
  }
  if (!s.empty()) s += "]";
  return s;
}

std::string Metrics::summary() const {
  std::string s = "delivered " + std::to_string(packets_delivered) + "/" +
                  std::to_string(packets_sent) + " packets (" +
                  std::to_string(bytes_sent) + " bytes, depth " +
                  std::to_string(max_depth) + ")";
  if (capped) {
    s += " [CAPPED at " + std::to_string(deliveries_at_cap) + " deliveries]";
  }
  if (out_dropped_frames > 0) {
    s += " [shed " + std::to_string(out_dropped_frames) + " outbound frames/" +
         std::to_string(out_dropped_bytes) + " bytes at the peer buffer cap]";
  }
  // Where the serialization bytes go: the top message types by volume.
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < kTypeSlots; ++i) {
    if (bytes_by_type[i] > 0) slots.push_back(i);
  }
  std::sort(slots.begin(), slots.end(), [this](std::size_t a, std::size_t b) {
    return bytes_by_type[a] > bytes_by_type[b];
  });
  if (!slots.empty()) {
    s += " [bytes by type:";
    std::size_t shown = 0;
    for (std::size_t i : slots) {
      if (shown++ == 5) break;
      s += std::string(" ") + msg_type_name(static_cast<MsgType>(i)) + "=" +
           std::to_string(bytes_by_type[i]) + "/" +
           std::to_string(packets_by_type[i]) + "pkt";
    }
    s += "]";
  }
  s += group_summary();
  return s;
}

}  // namespace svss
