// ASMPC secure sum — the "family of functionalities" extension sketched in
// the paper's conclusion (Section 6): asynchronous secure multiparty
// computation with optimal resilience and almost-sure termination, here
// instantiated for the summation functionality (private inputs, public
// sum), the canonical linear ASMPC building block (voting tallies,
// aggregate statistics, sealed-bid totals).
//
// Protocol:
//  1. Input sharing.  Every party deals its private input through a full
//     SVSS session — inputs stay hidden (SVSS Hiding) and are bound
//     (SVSS Binding-or-shun).
//  2. Input selection.  The parties run ACS over "my share of dealer d
//     completed" to agree on a common core Q of >= n - t input providers
//     (asynchrony makes waiting for all n impossible).
//  3. Output reconstruction.  Party j's slices of the included bivariate
//     polynomials sum to a slice of f_sum = sum_{d in Q} f_d; its
//     monitored point g_sum_j(0) = f_sum(point(j), 0) is one Reed-Solomon
//     share of the degree-t polynomial F(x) = f_sum(x, 0) with
//     F(0) = sum of inputs.  Every party RB-broadcasts its point and runs
//     online error correction: a polynomial agreeing with >= 2t+1
//     broadcast points agrees with >= t+1 honest ones and is F itself, so
//     Byzantine points are corrected, not just detected.
//
// Privacy: only the n summed points are ever opened; individual f_d
// slices are never broadcast, so any t-subset's view remains independent
// of the individual inputs (they see t points of each degree-t slice).
//
// Caveat (documented in DESIGN.md): a *Byzantine dealer* in Q may have
// withheld slices from up to t honest parties, which then cannot compute
// their summed point and abstain; with fewer than 2t+1 broadcast points
// the reveal can stall (output stays unset) — but it never produces a
// wrong sum and never leaks inputs.  Full robustness needs the share
// recovery machinery of later AVSS constructions, outside this paper's
// scope.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "acs/acs.hpp"
#include "common/reed_solomon.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"
#include "svss/svss.hpp"

namespace svss {

// Counter namespace of input-sharing sessions, disjoint from user-driven
// SVSS counters.
inline constexpr std::uint32_t kSumCounterBase = 0x0A500000;

// The SVSS session in which party `dealer` shares its summand.
SessionId sum_input_sid(int dealer);

class SecureSumHost {
 public:
  virtual ~SecureSumHost() = default;
  virtual void rb_broadcast(Context& ctx, const Message& m) = 0;
  // Get-or-create the local state of an input-sharing SVSS session.
  virtual SvssSession& sum_svss(Context& ctx, const SessionId& sid) = 0;
  // Joins the input-selection ACS with this process's readiness vector.
  virtual void sum_start_acs(Context& ctx, Bytes proposal) = 0;
  // Vouches for dealer d's inclusion in the common core.
  virtual void sum_vouch(Context& ctx, int dealer) = 0;
};

class SecureSumSession {
 public:
  SecureSumSession(SecureSumHost& host, int self, int n, int t);

  // Contributes `input` and joins the protocol.
  void start(Context& ctx, Fp input);

  // Host notifications.
  void on_input_share_complete(Context& ctx, const SessionId& sid);
  void on_acs_output(Context& ctx,
                     const std::vector<std::pair<int, Bytes>>& subset);
  void on_broadcast(Context& ctx, int origin, const Message& m);

  [[nodiscard]] bool has_output() const { return output_.has_value(); }
  [[nodiscard]] Fp output() const { return *output_; }
  // The agreed set of included input providers (valid once ACS finished).
  [[nodiscard]] const std::optional<std::set<int>>& core() const {
    return core_;
  }

 private:
  void maybe_join_acs(Context& ctx);
  void maybe_broadcast_point(Context& ctx);

  SecureSumHost& host_;
  int self_;
  int n_;
  int t_;
  bool started_ = false;
  std::set<int> inputs_ready_;  // dealers whose share completed locally
  bool acs_joined_ = false;
  std::optional<std::set<int>> core_;
  bool point_sent_ = false;
  OnlineDecoder decoder_;
  std::optional<Fp> output_;
};

}  // namespace svss
