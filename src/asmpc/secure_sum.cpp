#include "asmpc/secure_sum.hpp"

namespace svss {

SessionId sum_input_sid(int dealer) {
  SessionId sid;
  sid.path = SessionPath::kSvssTop;
  sid.owner = static_cast<std::int16_t>(dealer);
  sid.counter = kSumCounterBase + static_cast<std::uint32_t>(dealer);
  return sid;
}

namespace {

SessionId sum_recon_sid() {
  // Shares the kAba path with variant 3 (0 = agreement, 1 = Ben-Or,
  // 2 = ACS proposals).
  return SessionId{SessionPath::kAba, 3, -1, -1, -1, 0};
}

}  // namespace

SecureSumSession::SecureSumSession(SecureSumHost& host, int self, int n,
                                   int t)
    : host_(host), self_(self), n_(n), t_(t), decoder_(t, 2 * t + 1) {}

void SecureSumSession::start(Context& ctx, Fp input) {
  if (started_) return;
  started_ = true;
  host_.sum_svss(ctx, sum_input_sid(self_)).deal(ctx, input);
  // Join input selection immediately; vouching happens as shares land.
  host_.sum_start_acs(ctx, Bytes{});
}

void SecureSumSession::on_input_share_complete(Context& ctx,
                                               const SessionId& sid) {
  int dealer = sid.owner;
  if (!inputs_ready_.insert(dealer).second) return;
  host_.sum_vouch(ctx, dealer);
  maybe_broadcast_point(ctx);
}

void SecureSumSession::on_acs_output(
    Context& ctx, const std::vector<std::pair<int, Bytes>>& subset) {
  if (core_) return;
  std::set<int> core;
  for (const auto& [j, bytes] : subset) core.insert(j);
  core_ = std::move(core);
  maybe_broadcast_point(ctx);
}

void SecureSumSession::maybe_broadcast_point(Context& ctx) {
  if (point_sent_ || !core_) return;
  // Need the completed share *and* this process's own slices for every
  // included dealer; a Byzantine dealer may have withheld slices (see the
  // header caveat), in which case this process abstains.
  Fp sum_point(0);
  for (int d : *core_) {
    if (inputs_ready_.count(d) == 0) return;  // completes eventually
    const SvssSession& s = host_.sum_svss(ctx, sum_input_sid(d));
    auto g = s.g_slice();
    if (!g) return;  // withheld slices: abstain (possibly forever)
    sum_point += g->eval(Fp(0));
  }
  point_sent_ = true;
  Message m;
  m.sid = sum_recon_sid();
  m.type = MsgType::kSumPoint;
  m.vals.push_back(sum_point);
  host_.rb_broadcast(ctx, m);
}

void SecureSumSession::on_broadcast(Context& ctx, int origin,
                                    const Message& m) {
  (void)ctx;
  if (m.type != MsgType::kSumPoint || m.vals.size() != 1 || output_) return;
  // Online error correction over the broadcast points: decode F with
  // F(point(j)) = g_sum_j(0); the sum is F(0).
  if (auto f = decoder_.add_point(point(origin), m.vals[0])) {
    output_ = f->eval(Fp(0));
  }
}

}  // namespace svss
