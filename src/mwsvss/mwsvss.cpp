#include "mwsvss/mwsvss.hpp"

#include <algorithm>

namespace svss {

MwSvssSession::MwSvssSession(MwHost& host, SessionId sid, int self, int n,
                             int t)
    : host_(host), sid_(sid), self_(self), n_(n), t_(t) {
  host_.dmm().note_begin(sid_);
}

Message MwSvssSession::base_msg(MsgType type) const {
  Message m;
  m.sid = sid_;
  m.type = type;
  return m;
}

bool MwSvssSession::valid_pid_set(const std::vector<int>& ids) const {
  if (static_cast<int>(ids.size()) < n_ - t_) return false;
  std::set<int> seen;
  for (int id : ids) {
    if (!valid_pid(id) || !seen.insert(id).second) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// S' step 1: the dealer draws f with f(0) = s and f_l with
// f_l(0) = f(point(l)), then distributes.
// ---------------------------------------------------------------------
void MwSvssSession::deal(Context& ctx, Fp secret) {
  if (dealt_ || self_ != dealer()) return;
  dealt_ = true;
  dealer_f_ = Polynomial::random_with_constant(secret, t_, ctx.rng());
  dealer_polys_.reserve(static_cast<std::size_t>(n_));
  for (int l = 0; l < n_; ++l) {
    dealer_polys_.push_back(Polynomial::random_with_constant(
        dealer_f_.eval(point(l)), t_, ctx.rng()));
  }
  for (int j = 0; j < n_; ++j) {
    // f_1(j) .. f_n(j): one value of every monitored polynomial.
    Message shares = base_msg(MsgType::kMwDealerShares);
    shares.vals.reserve(static_cast<std::size_t>(n_));
    for (int l = 0; l < n_; ++l) {
      shares.vals.push_back(dealer_polys_[static_cast<std::size_t>(l)].eval(
          point(j)));
    }
    host_.send_direct(ctx, j, std::move(shares));
    // f_j(1) .. f_j(t+1): enough for j to reconstruct its own polynomial.
    Message poly = base_msg(MsgType::kMwDealerPoly);
    poly.vals = dealer_polys_[static_cast<std::size_t>(j)].evaluate_range(
        t_ + 1);
    host_.send_direct(ctx, j, std::move(poly));
  }
  Message whole = base_msg(MsgType::kMwDealerWhole);
  whole.vals = dealer_f_.evaluate_range(t_ + 1);
  host_.send_direct(ctx, moderator(), std::move(whole));
}

void MwSvssSession::set_moderator_input(Context& ctx, Fp s_prime) {
  if (self_ != moderator() || mod_input_) return;
  mod_input_ = s_prime;
  progress(ctx);
}

void MwSvssSession::on_direct(Context& ctx, int from, const Message& m) {
  switch (m.type) {
    case MsgType::kMwDealerShares:
      if (from != dealer() || row_vals_ ||
          static_cast<int>(m.vals.size()) != n_) {
        return;
      }
      row_vals_ = m.vals;
      break;
    case MsgType::kMwDealerPoly: {
      if (from != dealer() || my_poly_ ||
          static_cast<int>(m.vals.size()) != t_ + 1) {
        return;
      }
      std::vector<std::pair<Fp, Fp>> pts;
      for (int x = 1; x <= t_ + 1; ++x) {
        pts.emplace_back(Fp(x), m.vals[static_cast<std::size_t>(x - 1)]);
      }
      my_poly_ = Polynomial::interpolate(pts);
      break;
    }
    case MsgType::kMwDealerWhole: {
      if (from != dealer() || self_ != moderator() || whole_poly_ ||
          static_cast<int>(m.vals.size()) != t_ + 1) {
        return;
      }
      std::vector<std::pair<Fp, Fp>> pts;
      for (int x = 1; x <= t_ + 1; ++x) {
        pts.emplace_back(Fp(x), m.vals[static_cast<std::size_t>(x - 1)]);
      }
      whole_poly_ = Polynomial::interpolate(pts);
      break;
    }
    case MsgType::kMwEchoVal:
      // from sends f-hat^from_self: its received value of f_self(from).
      if (m.vals.size() != 1 || echo_from_.count(from) != 0) return;
      echo_from_.emplace(from, m.vals[0]);
      break;
    case MsgType::kMwMonitorVal:
      // Monitor `from` hands the moderator its f-hat_from(0).
      if (self_ != moderator() || m.vals.size() != 1 ||
          monitor_vals_.count(from) != 0) {
        return;
      }
      monitor_vals_.emplace(from, m.vals[0]);
      break;
    default:
      return;
  }
  progress(ctx);
}

void MwSvssSession::on_broadcast(Context& ctx, int origin, const Message& m) {
  switch (m.type) {
    case MsgType::kMwAck:
      acked_.insert(origin);
      break;
    case MsgType::kMwLset:
      if (lsets_.count(origin) != 0 || !valid_pid_set(m.ints)) return;
      lsets_.emplace(origin, m.ints);
      break;
    case MsgType::kMwMset:
      if (origin != moderator() || mset_ || !valid_pid_set(m.ints)) return;
      mset_ = m.ints;
      // S' step 8: a process outside M-hat drops its DEAL expectations for
      // this session — its polynomial no longer matters.
      if (std::find(mset_->begin(), mset_->end(), self_) == mset_->end()) {
        host_.dmm().clear_deal_entries(ctx, sid_);
      }
      break;
    case MsgType::kMwOk:
      if (origin != dealer()) return;
      ok_seen_ = true;
      break;
    case MsgType::kMwReconVal: {
      // DMM rules 2-3 ran before this handler (see core::Node routing).
      if (m.vals.size() != 1 || !valid_pid(m.a) || !valid_pid(origin)) {
        return;
      }
      if (recon_seen_.empty()) {
        recon_seen_.assign(
            static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
            false);
      }
      std::size_t bit = static_cast<std::size_t>(origin) *
                            static_cast<std::size_t>(n_) +
                        static_cast<std::size_t>(m.a);
      if (recon_seen_[bit]) return;
      recon_seen_[bit] = true;
      recon_vals_.push_back(ReconVal{origin, m.a, m.vals[0]});
      break;
    }
    default:
      return;
  }
  progress(ctx);
}

void MwSvssSession::progress(Context& ctx) {
  if (compacted_) return;
  try_echo_and_ack(ctx);
  try_add_deal_entries(ctx);
  try_broadcast_lset(ctx);
  if (self_ == moderator()) moderator_progress(ctx);
  if (self_ == dealer()) dealer_progress(ctx);
  try_complete_share(ctx);
  if (recon_started_) recon_progress(ctx);
}

// S' step 2: once both dealer messages are in, echo each value to its
// monitor and publicly acknowledge.
void MwSvssSession::try_echo_and_ack(Context& ctx) {
  if (echoed_ || !row_vals_ || !my_poly_) return;
  echoed_ = true;
  for (int l = 0; l < n_; ++l) {
    Message echo = base_msg(MsgType::kMwEchoVal);
    echo.vals.push_back((*row_vals_)[static_cast<std::size_t>(l)]);
    host_.send_direct(ctx, l, std::move(echo));
  }
  host_.rb_broadcast(ctx, base_msg(MsgType::kMwAck));
}

// S' step 3: confirmer l checks out for f_self — register the expectation
// that l will publicly confirm f_self(l) during reconstruction.  Entries
// are only added while L_self is still open: a confirmer outside the
// frozen L-hat set never broadcasts for us, so its expectation could never
// be resolved and would wrongly delay an honest process forever (this is
// the one place we deviate from the paper's letter; see DESIGN.md).
void MwSvssSession::try_add_deal_entries(Context& ctx) {
  if (!my_poly_ || lset_sent_) return;
  // S' step 8 extension: once M-hat is known and we are not a monitor in
  // it, f_self is irrelevant — registering further expectations would
  // create obligations nobody ever fulfills.
  if (mset_ && std::find(mset_->begin(), mset_->end(), self_) ==
                   mset_->end()) {
    return;
  }
  for (const auto& [l, val] : echo_from_) {
    if (deal_added_.count(l) != 0 || acked_.count(l) == 0) continue;
    if (val == my_poly_->eval(point(l))) {
      deal_added_.insert(l);
      host_.dmm().add_deal_entry(ctx, l, sid_, val);
    }
  }
}

// S' step 4: enough confirmers — publish L_self and give the moderator the
// monitored point f_self(0).
void MwSvssSession::try_broadcast_lset(Context& ctx) {
  if (lset_sent_ || !my_poly_ ||
      static_cast<int>(deal_added_.size()) < n_ - t_) {
    return;
  }
  lset_sent_ = true;
  Message lset = base_msg(MsgType::kMwLset);
  lset.ints.assign(deal_added_.begin(), deal_added_.end());
  host_.rb_broadcast(ctx, lset);
  Message mv = base_msg(MsgType::kMwMonitorVal);
  mv.vals.push_back(my_poly_->constant());
  host_.send_direct(ctx, moderator(), std::move(mv));
}

// S' steps 5-6: the moderator accepts monitors whose point agrees with the
// dealer's f and whose confirmers all acked, provided f(0) equals its own
// input s'; with n-t accepted monitors it publishes M.
void MwSvssSession::moderator_progress(Context& ctx) {
  if (mset_sent_ || !whole_poly_ || !mod_input_) return;
  if (whole_poly_->constant() != *mod_input_) return;  // dealer != moderator
  for (const auto& [j, v] : monitor_vals_) {
    if (m_building_.count(j) != 0) continue;
    if (v != whole_poly_->eval(point(j))) continue;
    auto ls = lsets_.find(j);
    if (ls == lsets_.end()) continue;
    bool all_acked = true;
    for (int l : ls->second) {
      if (acked_.count(l) == 0) {
        all_acked = false;
        break;
      }
    }
    if (all_acked) m_building_.insert(j);
  }
  if (static_cast<int>(m_building_.size()) >= n_ - t_) {
    mset_sent_ = true;
    Message mset = base_msg(MsgType::kMwMset);
    mset.ints.assign(m_building_.begin(), m_building_.end());
    host_.rb_broadcast(ctx, mset);
  }
}

// S' step 7: the dealer cross-checks the moderator's M against the L sets
// and acks it saw itself, registers ACK expectations for every (monitor,
// confirmer) pair, and publishes OK.
void MwSvssSession::dealer_progress(Context& ctx) {
  if (ok_sent_ || !dealt_ || !mset_) return;
  for (int j : *mset_) {
    auto ls = lsets_.find(j);
    if (ls == lsets_.end()) return;
    for (int l : ls->second) {
      if (acked_.count(l) == 0) return;
    }
  }
  ok_sent_ = true;
  for (int j : *mset_) {
    for (int l : lsets_.at(j)) {
      host_.dmm().add_ack_entry(
          ctx, l, j, sid_,
          dealer_polys_[static_cast<std::size_t>(j)].eval(point(l)));
    }
  }
  host_.rb_broadcast(ctx, base_msg(MsgType::kMwOk));
}

// S' step 9: OK + M-hat + all L-hat sets + all their acks == done.
void MwSvssSession::try_complete_share(Context& ctx) {
  if (share_done_ || !ok_seen_ || !mset_) return;
  for (int l : *mset_) {
    auto ls = lsets_.find(l);
    if (ls == lsets_.end()) return;
    for (int k : ls->second) {
      if (acked_.count(k) == 0) return;
    }
  }
  share_done_ = true;
  ctx.log().record(
      Event{EventKind::kMwShareComplete, self_, -1, sid_, 0, false});
  host_.mw_share_completed(ctx, sid_);
}

// R' step 1: publish every value this process confirmed as some monitor's
// confirmer.
void MwSvssSession::start_reconstruct(Context& ctx) {
  if (recon_started_) return;
  recon_started_ = true;
  progress(ctx);
}

void MwSvssSession::recon_progress(Context& ctx) {
  // Everything below relies on the S' completion invariant: M-hat and the
  // L-hat set of every monitor in it are present.
  if (output_ready_ || !share_done_ || !mset_) return;
  if (!recon_broadcast_done_ && row_vals_) {
    recon_broadcast_done_ = true;
    for (int l : *mset_) {
      const auto& ls = lsets_.find(l);
      if (ls == lsets_.end()) continue;
      if (std::find(ls->second.begin(), ls->second.end(), self_) ==
          ls->second.end()) {
        continue;
      }
      Message rv = base_msg(MsgType::kMwReconVal);
      rv.a = static_cast<std::int16_t>(l);
      rv.vals.push_back((*row_vals_)[static_cast<std::size_t>(l)]);
      host_.rb_broadcast(ctx, rv);
    }
  }

  // R' steps 2-3: fold broadcast values into K_{self,l} in arrival order;
  // the first t+1 points of each monitor interpolate f-bar_l.
  for (; recon_cursor_ < recon_vals_.size(); ++recon_cursor_) {
    const ReconVal& rv = recon_vals_[recon_cursor_];
    if (std::find(mset_->begin(), mset_->end(), rv.l) == mset_->end()) {
      continue;
    }
    auto ls = lsets_.find(rv.l);
    if (ls == lsets_.end()) continue;
    if (std::find(ls->second.begin(), ls->second.end(), rv.from) ==
        ls->second.end()) {
      continue;
    }
    auto& k = kvals_[rv.l];
    if (static_cast<int>(k.size()) >= t_ + 1) continue;
    k.emplace_back(point(rv.from), rv.x);
    if (static_cast<int>(k.size()) == t_ + 1 && fbar_.count(rv.l) == 0) {
      fbar_.emplace(rv.l, Polynomial::interpolate(k));
    }
  }

  // R' step 4: with every monitor's polynomial in hand, interpolate f-bar
  // through the monitored points, or output bottom.
  for (int l : *mset_) {
    if (fbar_.count(l) == 0) return;
  }
  std::vector<std::pair<Fp, Fp>> pts;
  pts.reserve(mset_->size());
  for (int l : *mset_) {
    pts.emplace_back(point(l), fbar_.at(l).constant());
  }
  auto f = Polynomial::interpolate_checked(pts, t_);
  output_ready_ = true;
  output_ = f ? std::optional<Fp>(f->constant()) : std::nullopt;
  ctx.log().record(Event{EventKind::kMwReconOutput, self_, -1, sid_,
                         output_ ? static_cast<std::int64_t>(output_->value())
                                 : 0,
                         output_.has_value()});
  host_.dmm().note_complete(sid_);
  host_.mw_recon_output(ctx, sid_, output_);
}

void MwSvssSession::compact() {
  if (!share_done_ || !output_ready_ || compacted_) return;
  compacted_ = true;
  dealer_polys_.clear();
  dealer_polys_.shrink_to_fit();
  row_vals_.reset();
  echo_from_.clear();
  acked_.clear();
  deal_added_.clear();
  lsets_.clear();
  monitor_vals_.clear();
  m_building_.clear();
  recon_vals_.clear();
  recon_vals_.shrink_to_fit();
  recon_seen_.clear();
  recon_seen_.shrink_to_fit();
  kvals_.clear();
  fbar_.clear();
}

}  // namespace svss
