#include "mwsvss/group_transport.hpp"

#include <algorithm>
#include <bitset>

namespace svss {

namespace {

// Wire layout notes (see README "Group-coalesced MW transport"):
//  kMwBatchDirect    ints = (type, j, len) triples; vals = concatenation.
//  kMwBatchAck/Ok    ints = attachee list.
//  kMwBatchLset/Mset ints = (j, len, members...) runs.
//  kMwBatchReconVal  ints = (j, l) pairs; vals = one value per pair.
// All envelopes: sid = group sid (variant 2|3), blob empty, b unused;
// RB envelopes use `a` as the per-(group, type) flush sequence.

bool valid_attachee(const SessionId& sid, int n) {
  return static_cast<int>(sid.counter % kMaxN) < n;
}

}  // namespace

MwGroupTransport::MwGroupTransport(int self, int n, int t)
    : self_(self), n_(n), t_(t) {}

bool MwGroupTransport::is_batch_type(MsgType type) {
  switch (type) {
    case MsgType::kMwBatchDirect:
    case MsgType::kMwBatchAck:
    case MsgType::kMwBatchLset:
    case MsgType::kMwBatchMset:
    case MsgType::kMwBatchOk:
    case MsgType::kMwBatchReconVal:
      return true;
    default:
      return false;
  }
}

bool MwGroupTransport::is_batchable_broadcast(MsgType type) {
  switch (type) {
    case MsgType::kMwAck:
    case MsgType::kMwLset:
    case MsgType::kMwMset:
    case MsgType::kMwOk:
    case MsgType::kMwReconVal:
      return true;
    default:
      return false;
  }
}

bool MwGroupTransport::is_batchable_direct(MsgType type) {
  switch (type) {
    case MsgType::kMwDealerShares:
    case MsgType::kMwDealerPoly:
    case MsgType::kMwDealerWhole:
    case MsgType::kMwEchoVal:
    case MsgType::kMwMonitorVal:
      return true;
    default:
      return false;
  }
}

SessionId MwGroupTransport::group_sid(const SessionId& child) {
  SessionId g = child;
  g.variant = static_cast<std::uint8_t>(2 + child.variant);
  g.counter = (child.counter / kMaxN) * kMaxN;
  return g;
}

SessionId MwGroupTransport::child_sid(const SessionId& group, int j) {
  SessionId c = group;
  c.variant = static_cast<std::uint8_t>(group.variant - 2);
  c.counter = group.counter + static_cast<std::uint32_t>(j);
  return c;
}

int MwGroupTransport::rb_slot(MsgType type) {
  switch (type) {
    case MsgType::kMwAck: return kAck;
    case MsgType::kMwLset: return kLset;
    case MsgType::kMwMset: return kMset;
    case MsgType::kMwOk: return kOk;
    case MsgType::kMwReconVal: return kRecon;
    default: return -1;
  }
}

// ---------------------------------------------------------------------
// Sender side
// ---------------------------------------------------------------------
void MwGroupTransport::open_window() {
  window_open_ = true;
}

MwGroupTransport::PendingGroup& MwGroupTransport::group_for(
    const SessionId& child) {
  SessionId gsid = group_sid(child);
  auto [it, inserted] = pending_index_.emplace(gsid, pending_.size());
  if (inserted) {
    pending_.emplace_back();
    pending_.back().gsid = gsid;
  }
  return pending_[it->second];
}

bool MwGroupTransport::capture_broadcast(const Message& m) {
  if (!window_open_ || m.sid.path != SessionPath::kMwInSvssCoin ||
      m.sid.variant > 1 || !is_batchable_broadcast(m.type) ||
      !valid_attachee(m.sid, n_)) {
    return false;
  }
  PendingGroup& g = group_for(m.sid);
  int j = static_cast<int>(m.sid.counter % kMaxN);
  switch (m.type) {
    case MsgType::kMwAck:
      g.acks.push_back(j);
      break;
    case MsgType::kMwOk:
      g.oks.push_back(j);
      break;
    case MsgType::kMwLset:
      g.lsets.emplace_back(j, m.ints);
      break;
    case MsgType::kMwMset:
      g.msets.emplace_back(j, m.ints);
      break;
    case MsgType::kMwReconVal:
      if (m.vals.size() != 1) return false;  // not the shape we re-frame
      g.recons.push_back(PendingGroup::Recon{j, m.a, m.vals[0]});
      break;
    default:
      return false;
  }
  return true;
}

bool MwGroupTransport::capture_direct(int to, const Message& m) {
  if (!window_open_ || m.sid.path != SessionPath::kMwInSvssCoin ||
      m.sid.variant > 1 || !is_batchable_direct(m.type) ||
      !valid_attachee(m.sid, n_) || to < 0 || to >= n_) {
    return false;
  }
  PendingGroup& g = group_for(m.sid);
  if (g.direct_ints.empty()) {
    g.direct_ints.resize(static_cast<std::size_t>(n_));
    g.direct_vals.resize(static_cast<std::size_t>(n_));
  }
  auto slot = static_cast<std::size_t>(to);
  g.direct_ints[slot].push_back(static_cast<int>(m.type));
  g.direct_ints[slot].push_back(static_cast<int>(m.sid.counter % kMaxN));
  g.direct_ints[slot].push_back(static_cast<int>(m.vals.size()));
  g.direct_vals[slot].insert(g.direct_vals[slot].end(), m.vals.begin(),
                             m.vals.end());
  return true;
}

bool MwGroupTransport::close_window_if_empty() {
  if (!window_open_ || !pending_.empty()) return false;
  window_open_ = false;
  return true;
}

void MwGroupTransport::close_window(Context& ctx, const EmitFns& emit) {
  if (!window_open_) return;
  window_open_ = false;
  for (PendingGroup& g : pending_) {
    // Direct envelopes first (recipients ascending), then the RB types in
    // fixed order — a deterministic emission schedule is part of the
    // engine's replay guarantee.
    for (int to = 0; to < static_cast<int>(g.direct_ints.size()); ++to) {
      auto slot = static_cast<std::size_t>(to);
      if (g.direct_ints[slot].empty()) continue;
      Message m;
      m.sid = g.gsid;
      m.type = MsgType::kMwBatchDirect;
      m.ints = std::move(g.direct_ints[slot]);
      m.vals = std::move(g.direct_vals[slot]);
      emit.send(ctx, to, std::move(m));
    }
    auto& seq = flush_seq_[g.gsid];
    auto flush_rb = [&](MsgType type, RbSlot slot, Message&& m) {
      m.sid = g.gsid;
      m.type = type;
      m.a = seq[slot]++;
      emit.broadcast(ctx, m);
    };
    // Attachee-list envelopes (ack, OK): ints is the attachee list.
    auto flush_list = [&](MsgType type, RbSlot slot,
                          std::vector<int>&& attachees) {
      if (attachees.empty()) return;
      Message m;
      m.ints = std::move(attachees);
      flush_rb(type, slot, std::move(m));
    };
    // Run envelopes (L-set, M-set): ints is (j, len, members...) runs —
    // the one encoding unpack's shared parser understands for both types.
    auto flush_runs =
        [&](MsgType type, RbSlot slot,
            std::vector<std::pair<int, std::vector<int>>>& runs) {
          if (runs.empty()) return;
          Message m;
          for (auto& [j, members] : runs) {
            m.ints.push_back(j);
            m.ints.push_back(static_cast<int>(members.size()));
            m.ints.insert(m.ints.end(), members.begin(), members.end());
          }
          flush_rb(type, slot, std::move(m));
        };
    flush_list(MsgType::kMwBatchAck, kAck, std::move(g.acks));
    flush_runs(MsgType::kMwBatchLset, kLset, g.lsets);
    flush_runs(MsgType::kMwBatchMset, kMset, g.msets);
    flush_list(MsgType::kMwBatchOk, kOk, std::move(g.oks));
    if (!g.recons.empty()) {
      Message m;
      m.vals.reserve(g.recons.size());
      for (const PendingGroup::Recon& r : g.recons) {
        m.ints.push_back(r.j);
        m.ints.push_back(r.l);
        m.vals.push_back(r.x);
      }
      flush_rb(MsgType::kMwBatchReconVal, kRecon, std::move(m));
    }
  }
  pending_.clear();
  pending_index_.clear();
}

// ---------------------------------------------------------------------
// Fault-injection views
// ---------------------------------------------------------------------
void MwGroupTransport::for_each_direct_entry(
    const Message& m,
    const std::function<void(MsgType, int, std::size_t, int)>& fn) {
  if (m.type != MsgType::kMwBatchDirect) return;
  std::size_t cursor = 0;
  for (std::size_t i = 0; i + 2 < m.ints.size(); i += 3) {
    int len = m.ints[i + 2];
    fn(static_cast<MsgType>(m.ints[i]), m.ints[i + 1], cursor, len);
    if (len > 0) cursor += static_cast<std::size_t>(len);
  }
}

int* MwGroupTransport::first_run_member(Message& m) {
  if ((m.type != MsgType::kMwBatchLset && m.type != MsgType::kMwBatchMset) ||
      m.ints.size() < 3 || m.ints[1] < 1) {
    return nullptr;
  }
  return &m.ints[2];
}

// ---------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------
void MwGroupTransport::unpack(Context& ctx, int n, int t, int sender,
                              const Message& m, bool via_rb,
                              const SubMessageSink& sink) {
  (void)t;
  // Envelope sid shape: a coin-nested group (variant 2|3) anchored at the
  // attachee-0 counter slot.  Role pids were vetted by the caller's
  // sane_sid; the sub-sessions re-enter full per-session validation.
  if (m.sid.path != SessionPath::kMwInSvssCoin || m.sid.variant < 2 ||
      m.sid.variant > 3 || m.sid.counter % kMaxN != 0 || !m.blob.empty()) {
    return;
  }
  const bool is_direct = m.type == MsgType::kMwBatchDirect;
  if (is_direct == via_rb) return;  // wrong transport class for the type

  // Parse the whole envelope before dispatching: a malformed batch is
  // dropped in its entirety, mirroring RBC's treatment of garbage.
  std::vector<Message> subs;
  // One delivery per (sub-type, attachee) within an envelope; duplicate
  // entries are the Byzantine shape that could double-drive a session.
  // (A bitset, not bool arrays: unpack runs per delivered envelope, so
  // its dedup state must be cheap to zero.)
  std::bitset<6 * kMaxN> seen;
  auto claim = [&](MsgType type, int j) {
    std::size_t row;
    switch (type) {
      case MsgType::kMwDealerShares: row = 0; break;
      case MsgType::kMwDealerPoly: row = 1; break;
      case MsgType::kMwDealerWhole: row = 2; break;
      case MsgType::kMwEchoVal: row = 3; break;
      case MsgType::kMwMonitorVal: row = 4; break;
      default: row = 5; break;  // the RB envelopes carry one type each
    }
    std::size_t bit = row * kMaxN + static_cast<std::size_t>(j);
    if (seen[bit]) return false;
    seen[bit] = true;
    return true;
  };
  auto sub_base = [&](int j, MsgType type) {
    Message sub;
    sub.sid = child_sid(m.sid, j);
    sub.type = type;
    return sub;
  };
  auto valid_j = [&](int j) { return j >= 0 && j < n; };

  switch (m.type) {
    case MsgType::kMwBatchDirect: {
      if (m.ints.size() % 3 != 0) return;
      std::size_t cursor = 0;
      for (std::size_t i = 0; i < m.ints.size(); i += 3) {
        auto type = static_cast<MsgType>(m.ints[i]);
        int j = m.ints[i + 1];
        int len = m.ints[i + 2];
        if (!is_batchable_direct(type) || !valid_j(j) || len < 0 ||
            cursor + static_cast<std::size_t>(len) > m.vals.size() ||
            !claim(type, j)) {
          return;
        }
        Message sub = sub_base(j, type);
        sub.vals.assign(
            m.vals.begin() + static_cast<std::ptrdiff_t>(cursor),
            m.vals.begin() + static_cast<std::ptrdiff_t>(cursor) + len);
        cursor += static_cast<std::size_t>(len);
        subs.push_back(std::move(sub));
      }
      if (cursor != m.vals.size()) return;
      break;
    }
    case MsgType::kMwBatchAck:
    case MsgType::kMwBatchOk: {
      if (!m.vals.empty()) return;
      MsgType sub_type = m.type == MsgType::kMwBatchAck ? MsgType::kMwAck
                                                        : MsgType::kMwOk;
      for (int j : m.ints) {
        if (!valid_j(j) || !claim(sub_type, j)) return;
        subs.push_back(sub_base(j, sub_type));
      }
      break;
    }
    case MsgType::kMwBatchLset:
    case MsgType::kMwBatchMset: {
      if (!m.vals.empty()) return;
      MsgType sub_type = m.type == MsgType::kMwBatchLset ? MsgType::kMwLset
                                                         : MsgType::kMwMset;
      std::size_t i = 0;
      while (i < m.ints.size()) {
        if (i + 2 > m.ints.size()) return;
        int j = m.ints[i];
        int len = m.ints[i + 1];
        if (!valid_j(j) || len < 0 ||
            i + 2 + static_cast<std::size_t>(len) > m.ints.size() ||
            !claim(sub_type, j)) {
          return;
        }
        Message sub = sub_base(j, sub_type);
        sub.ints.assign(
            m.ints.begin() + static_cast<std::ptrdiff_t>(i + 2),
            m.ints.begin() + static_cast<std::ptrdiff_t>(i + 2) + len);
        subs.push_back(std::move(sub));
        i += 2 + static_cast<std::size_t>(len);
      }
      break;
    }
    case MsgType::kMwBatchReconVal: {
      if (m.ints.size() % 2 != 0 || m.vals.size() * 2 != m.ints.size()) {
        return;
      }
      // Duplicate (j, l) pairs within one envelope are rejected here; a
      // duplicate across two flushes of a Byzantine sender is caught by
      // the session's per-(origin, l) guard, which restores the uniqueness
      // the per-session RBC instance id used to enforce structurally.
      std::bitset<kMaxN * kMaxN> recon_seen;
      for (std::size_t i = 0; i < m.vals.size(); ++i) {
        int j = m.ints[2 * i];
        int l = m.ints[2 * i + 1];
        if (!valid_j(j) || l < 0 || l >= n) return;
        std::size_t bit = static_cast<std::size_t>(j) * kMaxN +
                          static_cast<std::size_t>(l);
        if (recon_seen[bit]) return;
        recon_seen[bit] = true;
        Message sub = sub_base(j, MsgType::kMwReconVal);
        sub.a = static_cast<std::int16_t>(l);
        sub.vals.push_back(m.vals[i]);
        subs.push_back(std::move(sub));
      }
      break;
    }
    default:
      return;
  }

  for (const Message& sub : subs) {
    sink(ctx, sender, sub, via_rb);
  }
}

}  // namespace svss
