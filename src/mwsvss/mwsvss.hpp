// MW-SVSS — Moderated Weak Shunning Verifiable Secret Sharing (paper
// Section 3.2).
//
// One invocation has a dealer (input s) and a moderator (input s'), plus
// n - 2..n other participants.  The share protocol S' commits the dealer to
// a value the nonfaulty moderator endorses; the reconstruct protocol R'
// outputs that value or bottom — unless the adversary breaks the session,
// in which case some nonfaulty process starts shunning some faulty process
// (via the DMM expectations this protocol registers).
//
// Identifier conventions: processes are 0-based; the field point of
// process i is x = i + 1, so the secret lives at x = 0 and is never a
// share point.  "f_l" below is the polynomial monitored by process l, with
// f_l(0) = f(point(l)).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/field.hpp"
#include "common/polynomial.hpp"
#include "dmm/dmm.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

// Field point of a 0-based process id.
inline Fp point(int id) { return Fp(id + 1); }

// Services a MW-SVSS session needs from its owning process.  Implemented
// by core::Node (and by test fixtures).
class MwHost {
 public:
  virtual ~MwHost() = default;
  virtual void rb_broadcast(Context& ctx, const Message& m) = 0;
  virtual void send_direct(Context& ctx, int to, Message m) = 0;
  virtual Dmm& dmm() = 0;
  // Completion callbacks, each invoked at most once per session.
  virtual void mw_share_completed(Context& ctx, const SessionId& sid) = 0;
  virtual void mw_recon_output(Context& ctx, const SessionId& sid,
                               std::optional<Fp> value) = 0;
};

// Protocol state machine for one MW-SVSS session at one process.  All
// inputs arrive through dealer initiation (deal), moderator input, the
// reconstruct trigger, and pre-filtered messages; every handler re-runs the
// step conditions of S' (steps 3-9) that could have become true.
class MwSvssSession {
 public:
  MwSvssSession(MwHost& host, SessionId sid, int self, int n, int t);

  // Dealer only (S' step 1): draw f, f_1..f_n and distribute shares.
  void deal(Context& ctx, Fp secret);
  // Moderator only: provides s'.  May arrive after messages have; pending
  // moderator logic re-runs.
  void set_moderator_input(Context& ctx, Fp s_prime);
  // Begins R' (R' step 1).  The caller guarantees S' completed locally.
  void start_reconstruct(Context& ctx);

  // Pre-filtered (DMM-approved) message entry points.
  void on_direct(Context& ctx, int from, const Message& m);
  void on_broadcast(Context& ctx, int origin, const Message& m);

  [[nodiscard]] const SessionId& sid() const { return sid_; }
  [[nodiscard]] bool share_complete() const { return share_done_; }
  [[nodiscard]] bool recon_started() const { return recon_started_; }
  [[nodiscard]] bool has_output() const { return output_ready_; }
  // Valid once has_output(); nullopt encodes bottom.
  [[nodiscard]] std::optional<Fp> output() const { return output_; }

  // Drops bulky per-session state once both phases are finished (keeps the
  // outputs).  Long agreement runs create hundreds of thousands of
  // sessions; without this the simulator's memory grows unboundedly.
  void compact();

  // Debug/tests: phase flags snapshot.
  struct StateSnapshot {
    bool dealt;
    bool have_shares;
    bool have_poly;
    bool echoed;
    bool lset_sent;
    bool have_mset;
    bool ok_seen;
    bool share_done;
    bool recon_started;
    bool recon_broadcast_done;
    bool output_ready;
    bool compacted;
  };
  [[nodiscard]] StateSnapshot state() const {
    return StateSnapshot{dealt_,        row_vals_.has_value(),
                         my_poly_.has_value(), echoed_,
                         lset_sent_,    mset_.has_value(),
                         ok_seen_,      share_done_,
                         recon_started_, recon_broadcast_done_,
                         output_ready_, compacted_};
  }

 private:
  [[nodiscard]] int dealer() const { return sid_.owner; }
  [[nodiscard]] int moderator() const { return sid_.moderator; }
  [[nodiscard]] bool valid_pid(int p) const { return p >= 0 && p < n_; }
  // Checks that `ids` is a plausible participant set of size >= n - t.
  [[nodiscard]] bool valid_pid_set(const std::vector<int>& ids) const;

  void progress(Context& ctx);
  void try_echo_and_ack(Context& ctx);       // step 2
  void try_add_deal_entries(Context& ctx);   // step 3
  void try_broadcast_lset(Context& ctx);     // step 4
  void moderator_progress(Context& ctx);     // steps 5-6
  void dealer_progress(Context& ctx);        // step 7
  void try_complete_share(Context& ctx);     // step 9
  void recon_progress(Context& ctx);         // R' steps 2-4
  Message base_msg(MsgType type) const;

  MwHost& host_;
  SessionId sid_;
  int self_;
  int n_;
  int t_;

  // --- dealer state ---
  std::vector<Polynomial> dealer_polys_;  // f_1..f_n (dealer only)
  Polynomial dealer_f_;
  bool dealt_ = false;
  bool ok_sent_ = false;

  // --- share-phase participant state ---
  std::optional<FieldVec> row_vals_;        // f-hat^self_1..n from dealer
  std::optional<Polynomial> my_poly_;       // f-hat_self
  bool echoed_ = false;                     // step 2 done
  std::map<int, Fp> echo_from_;             // l -> f-hat^l_self
  std::set<int> acked_;                     // ack broadcasts seen
  std::set<int> deal_added_;                // confirmers with DEAL entries
  bool lset_sent_ = false;
  std::map<int, std::vector<int>> lsets_;   // monitor l -> L-hat_l
  std::optional<std::vector<int>> mset_;    // M-hat from the moderator
  bool ok_seen_ = false;
  bool share_done_ = false;

  // --- moderator state ---
  std::optional<Polynomial> whole_poly_;    // f-hat from the dealer
  std::optional<Fp> mod_input_;             // s'
  std::map<int, Fp> monitor_vals_;          // j -> f-hat^j(0)
  std::set<int> m_building_;
  bool mset_sent_ = false;

  // --- reconstruct state ---
  bool recon_started_ = false;
  bool recon_broadcast_done_ = false;
  struct ReconVal {
    int from;
    int l;
    Fp x;
  };
  std::vector<ReconVal> recon_vals_;        // arrival order
  // One recon value per (origin, monitored poly).  With per-session RBC
  // framing the instance id (origin, sid, type, l) enforces this
  // structurally; with the group-coalesced transport a Byzantine origin
  // could replay a pair across two envelope flushes, so the session pins
  // the uniqueness itself (duplicate points would poison interpolation).
  // An (origin, l) bitmap sized n*n lazily — recon broadcasts are the
  // dominant MW traffic class, so this sits on the delivery hot path and
  // must not allocate per insert.
  std::vector<bool> recon_seen_;
  std::size_t recon_cursor_ = 0;
  std::map<int, std::vector<std::pair<Fp, Fp>>> kvals_;  // l -> K_{self,l}
  std::map<int, Polynomial> fbar_;          // l -> interpolated f-bar_l
  bool output_ready_ = false;
  std::optional<Fp> output_;
  bool compacted_ = false;
};

}  // namespace svss
