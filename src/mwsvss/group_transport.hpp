// Group-coalesced MW-SVSS transport.
//
// Every coin round nests n sibling MW-SVSS children — one per attachee j —
// under each (round, svss_dealer, child_dealer, moderator, variant) group:
// the siblings share every role assignment and differ only in the attachee
// slot of their session counter.  Dealt individually, their share/recon
// traffic is one RBC instance (Theta(n^2) transport packets) per ack,
// L-set, M-set, OK, and recon-value broadcast per session, plus one wire
// message per direct send — ~97% of all full-stack packets at n >= 7.
//
// This transport coalesces that traffic the way the PR-4 coin batcher
// coalesces dealing (src/coin/batched_transport.hpp): a capture window
// brackets one delivery cascade, collects the per-session messages the
// sessions hand to their host, and flushes them at window close as
//
//  * kMwBatchDirect (direct): all captured kMwDealerShares / kMwDealerPoly
//    / kMwDealerWhole / kMwEchoVal / kMwMonitorVal messages of one
//    (group, recipient) pair, concatenated.  One envelope replaces up to
//    2n+2 per-session messages (a dealer's full sibling fan-out).
//  * kMwBatchAck/Lset/Mset/Ok/ReconVal (RB): the captured same-type
//    broadcasts of one group, in one RBC instance per (group, sender,
//    type, flush).  Because the sibling sessions advance in lockstep once
//    their inputs arrive group-batched, a cascade typically carries all n
//    siblings' broadcasts, so one shared set of echo/ready rounds replaces
//    n.  Flushing happens in the same delivery that produced the messages
//    — nothing is ever withheld across deliveries — so liveness and the
//    DMM shunning discipline (which may *expect* a recon broadcast from an
//    honest process) are untouched by construction: this is framing, never
//    scheduling policy.
//
// Receivers unpack an envelope into its per-session messages and feed each
// through the normal per-session routing (DMM filter and recon-expectation
// rules included), so every correctness property keeps quantifying over
// individual MwSvssSessions and batched/unbatched processes interoperate
// in one run.  Envelope sids reuse the child id space with variant 2 | 3
// (encoding the group's variant 0 | 1) and the attachee-0 counter slot;
// field values ride in Message::vals so value-corrupting Byzantine
// interceptors act on batched traffic exactly as on per-session framing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

class MwGroupTransport {
 public:
  // Sink receiving the per-session messages of an unpacked envelope.
  using SubMessageSink =
      std::function<void(Context&, int sender, const Message&, bool via_rb)>;
  // Emission hooks used at window close: `broadcast` RBs a batch envelope,
  // `send` delivers a direct envelope to one recipient.
  struct EmitFns {
    std::function<void(Context&, const Message&)> broadcast;
    std::function<void(Context&, int to, Message)> send;
  };

  MwGroupTransport(int self, int n, int t);

  // True for envelope types this transport owns.
  static bool is_batch_type(MsgType type);
  // True for per-session types the transport captures (RB / direct class).
  static bool is_batchable_broadcast(MsgType type);
  static bool is_batchable_direct(MsgType type);
  // The envelope sid of the group a coin-nested child session belongs to:
  // same roles, variant 2 + v, counter rounded down to the attachee-0 slot.
  static SessionId group_sid(const SessionId& child);
  // The child sid of attachee `j` under an envelope sid.
  static SessionId child_sid(const SessionId& group, int j);

  // --- sender side -------------------------------------------------
  // The window brackets one delivery cascade (core::Node opens it around
  // on_packet/start and closes it before returning to the engine).
  void open_window();
  [[nodiscard]] bool window_open() const { return window_open_; }
  // Collects one per-session message while the window is open; returns
  // false (caller sends normally) for foreign sessions or non-batchable
  // types.  Only kMwInSvssCoin children with a valid attachee are grouped.
  bool capture_broadcast(const Message& m);
  bool capture_direct(int to, const Message& m);
  // Closes a window that captured nothing, skipping the emit plumbing —
  // the common case for cascades of non-MW traffic.  Returns false (and
  // leaves the window open) when there are captures to flush.
  bool close_window_if_empty();
  // Emits the captured envelopes (groups in capture order, recipients
  // ascending, RB types in fixed order) and closes the window.
  void close_window(Context& ctx, const EmitFns& emit);

  // --- fault-injection views ---------------------------------------
  // Wire-layout accessors for Byzantine interceptors, so layout knowledge
  // never leaves this file: a layout change that broke these would break
  // pack/unpack alongside, keeping adversary tests non-vacuous.
  // Calls fn(sub_type, attachee, val_offset, val_count) for every
  // well-formed (type, j, len) triple of a kMwBatchDirect envelope.
  static void for_each_direct_entry(
      const Message& m,
      const std::function<void(MsgType, int, std::size_t, int)>& fn);
  // The first member of the first (j, len, members...) run of a
  // kMwBatchLset/kMwBatchMset envelope, or nullptr.
  static int* first_run_member(Message& m);

  // --- receiver side -----------------------------------------------
  // Splits an envelope into its per-session messages and hands each to
  // `sink`.  A malformed envelope — bad sid shape, wrong transport class,
  // truncated or inconsistent runs, duplicate sub-sessions, out-of-range
  // attachee or pid — is dropped whole, mirroring RBC's treatment of
  // garbage; the sub-messages then re-enter the exact validation the
  // unbatched path applies.
  static void unpack(Context& ctx, int n, int t, int sender, const Message& m,
                     bool via_rb, const SubMessageSink& sink);

 private:
  // Index into PendingGroup's per-RB-type arrays and flush counters.
  enum RbSlot { kAck = 0, kLset, kMset, kOk, kRecon, kRbSlots };
  static int rb_slot(MsgType type);

  struct PendingGroup {
    SessionId gsid;  // envelope sid (variant 2 | 3)
    std::vector<int> acks;  // attachees, capture order
    std::vector<int> oks;
    std::vector<std::pair<int, std::vector<int>>> lsets;  // (j, members)
    std::vector<std::pair<int, std::vector<int>>> msets;
    struct Recon {
      int j;
      int l;
      Fp x;
    };
    std::vector<Recon> recons;
    // Direct sub-messages per recipient: (type, j, len) triples + values.
    std::vector<std::vector<int>> direct_ints;
    std::vector<FieldVec> direct_vals;
  };

  PendingGroup& group_for(const SessionId& child);

  int self_;
  int n_;
  int t_;

  bool window_open_ = false;
  std::vector<PendingGroup> pending_;  // capture order (determinism)
  std::unordered_map<SessionId, std::size_t, SessionIdHash> pending_index_;
  // Per (group, RB type) flush sequence, persisted across windows: each
  // flush is its own RBC instance (BcastId.a), so a straggler flush never
  // collides with — or equivocates against — an earlier one.  Entries are
  // deliberately never evicted: in the async model there is no local
  // horizon after which a group provably stops flushing, and a pruned
  // group restarting at sequence 0 would reuse an instance id — an honest
  // node equivocating against itself.  Growth is one small array per
  // group *this node sent RB traffic in*, the same order as the Rbc
  // layer's own per-instance state.
  std::unordered_map<SessionId, std::array<std::int16_t, kRbSlots>,
                     SessionIdHash>
      flush_seq_;
};

}  // namespace svss
