// Reed-Solomon decoding over GF(p): Berlekamp-Welch unique decoding and
// the online error correction (OEC) rule used by asynchronous protocols.
//
// A degree-t sharing evaluated at distinct points is a Reed-Solomon
// codeword; Byzantine shareholders contribute *errors*, crashed ones
// *erasures*.  Berlekamp-Welch recovers the polynomial from m points with
// up to e wrong as long as m >= t + 1 + 2e.  The OEC rule turns this into
// an asynchronous primitive: with points arriving one at a time and at
// most t of all n = 3t+1 shareholders faulty, attempt decoding with
// c = m - (2t+1) allowed errors each time a point arrives; any polynomial
// agreeing with >= 2t+1 of the received points agrees with >= t+1 honest
// points and is therefore the true one.
//
// Used by the ASMPC extension (src/asmpc) for robust output
// reconstruction; exposed as a standalone substrate with its own tests.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/field.hpp"
#include "common/polynomial.hpp"

namespace svss {

// Berlekamp-Welch: finds the unique polynomial of degree <= deg agreeing
// with all but at most `max_errors` of `points` (distinct x required).
// Returns nullopt if no such polynomial exists or the parameters violate
// m >= deg + 1 + 2 * max_errors.
std::optional<Polynomial> rs_decode(
    const std::vector<std::pair<Fp, Fp>>& points, int deg, int max_errors);

// Incremental online-error-correction decoder for one codeword.
class OnlineDecoder {
 public:
  // deg: polynomial degree bound (t); threshold: required agreement count
  // (2t+1 in the standard OEC setting).
  OnlineDecoder(int deg, int threshold) : deg_(deg), threshold_(threshold) {}

  // Adds a point (duplicate x ignored) and re-attempts decoding.  Returns
  // the decoded polynomial once it exists; stays set afterwards.
  std::optional<Polynomial> add_point(Fp x, Fp y);

  [[nodiscard]] const std::optional<Polynomial>& result() const {
    return result_;
  }
  [[nodiscard]] std::size_t point_count() const { return points_.size(); }

 private:
  int deg_;
  int threshold_;
  std::vector<std::pair<Fp, Fp>> points_;
  std::optional<Polynomial> result_;
};

}  // namespace svss
