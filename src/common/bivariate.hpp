// Bivariate polynomials of degree (t, t) over GF(p).
//
// The SVSS dealer hides its secret as f(0,0) of a random bivariate degree-t
// polynomial and hands process j the two univariate slices g_j(y) = f(j, y)
// and h_j(x) = f(x, j).  The cross-consistency h_k(l) == g_l(k) is what the
// reconstruct phase checks pairwise.
#pragma once

#include <optional>
#include <vector>

#include "common/field.hpp"
#include "common/polynomial.hpp"
#include "common/rng.hpp"

namespace svss {

class BivariatePolynomial {
 public:
  // Zero polynomial of degree bound 0.
  BivariatePolynomial() : deg_(0), a_(1, FieldVec(1)) {}

  // Uniformly random with f(0,0) == secret and degree <= deg in each
  // variable (paper, S step 1: a00 = s, remaining coefficients random).
  static BivariatePolynomial random_with_secret(Fp secret, int deg, Rng& rng);

  [[nodiscard]] Fp eval(Fp x, Fp y) const;
  [[nodiscard]] Fp secret() const { return a_[0][0]; }
  [[nodiscard]] int degree_bound() const { return deg_; }

  // g_j(y) = f(j, y): the "row" polynomial given to process j.
  [[nodiscard]] Polynomial row(int j) const;
  // h_j(x) = f(x, j): the "column" polynomial given to process j.
  [[nodiscard]] Polynomial column(int j) const;

  // Appends g_j(1..count) followed by h_j(1..count) to `out` — the share
  // vector the SVSS dealer hands process j-1 — in one pass over the
  // coefficient grid per slice, reusing `scratch` as Horner state instead
  // of materializing Polynomial objects.  Equals row(j).evaluate_range and
  // column(j).evaluate_range value-for-value; the coin's batched dealing
  // path evaluates all n sessions' share vectors through this without a
  // single polynomial allocation.
  void append_share_points(int j, int count, FieldVec& out,
                           FieldVec& scratch) const;

  // Reconstructs the unique degree-(deg,deg) bivariate polynomial through a
  // grid of samples f(x_k, y_l), or nullopt if the samples are inconsistent
  // with any such polynomial.  `rows[k]` holds {(y_l, f(x_k, y_l))}.
  static std::optional<BivariatePolynomial> interpolate_checked(
      const std::vector<Fp>& xs,
      const std::vector<std::vector<std::pair<Fp, Fp>>>& rows, int deg);

  friend bool operator==(const BivariatePolynomial&,
                         const BivariatePolynomial&) = default;

 private:
  int deg_;
  // a_[i][j] is the coefficient of x^i y^j.
  std::vector<FieldVec> a_;
};

}  // namespace svss
