// Byte-accurate message serialization.
//
// Every protocol message is flattened to bytes before entering the network
// simulator.  This serves two purposes: (1) the byte count is what the
// metrics layer meters when checking the paper's "message size polynomial
// in n" claim, and (2) it enforces that processes exchange data only
// through explicit, private point-to-point payloads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/field.hpp"

namespace svss {

using Bytes = std::vector<std::uint8_t>;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void field(Fp x) { u32(static_cast<std::uint32_t>(x.value())); }
  void field_vec(const FieldVec& xs) {
    u32(static_cast<std::uint32_t>(xs.size()));
    for (Fp x : xs) field(x);
  }
  void int_vec(const std::vector<int>& xs) {
    u32(static_cast<std::uint32_t>(xs.size()));
    for (int x : xs) i32(x);
  }
  void bytes(const Bytes& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] const Bytes& data() const { return buf_; }

 private:
  Bytes buf_;
};

// Reader with explicit failure: every accessor returns nullopt on truncated
// or malformed input, so Byzantine-crafted payloads can never crash a
// nonfaulty process — they parse to nullopt and are dropped.
class Reader {
 public:
  explicit Reader(const Bytes& buf) : buf_(buf) {}

  std::optional<std::uint8_t> u8() {
    if (pos_ + 1 > buf_.size()) return std::nullopt;
    return buf_[pos_++];
  }
  std::optional<std::uint32_t> u32() {
    if (pos_ + 4 > buf_.size()) return std::nullopt;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
    return v;
  }
  std::optional<std::uint64_t> u64() {
    if (pos_ + 8 > buf_.size()) return std::nullopt;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
    return v;
  }
  std::optional<std::int32_t> i32() {
    auto v = u32();
    if (!v) return std::nullopt;
    return static_cast<std::int32_t>(*v);
  }
  std::optional<Fp> field() {
    auto v = u32();
    if (!v || *v >= Fp::kModulus) return std::nullopt;
    return Fp(static_cast<std::int64_t>(*v));
  }
  std::optional<FieldVec> field_vec(std::size_t max_len = 1 << 20);
  std::optional<std::vector<int>> int_vec(std::size_t max_len = 1 << 20);
  std::optional<Bytes> bytes(std::size_t max_len = 1 << 24);

  [[nodiscard]] bool exhausted() const { return pos_ == buf_.size(); }

 private:
  const Bytes& buf_;
  std::size_t pos_ = 0;
};

}  // namespace svss
