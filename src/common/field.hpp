// Finite-field arithmetic over GF(p) with p = 2^31 - 1 (a Mersenne prime).
//
// All secret-sharing in the SVSS/MW-SVSS protocols happens over a finite
// field F with |F| > n.  The paper leaves the field unspecified; we fix the
// Mersenne prime 2^31 - 1, which is far larger than any realistic n, keeps
// every element in a machine word, and makes reduction branch-cheap.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace svss {

// An element of GF(2^31 - 1).  Value-semantic, always in canonical range
// [0, p).  Arithmetic never overflows: products are computed in 64 bits.
class Fp {
 public:
  static constexpr std::uint64_t kModulus = (1ULL << 31) - 1;

  constexpr Fp() = default;
  // Reduces an arbitrary signed value into the field.
  constexpr explicit Fp(std::int64_t v) : v_(reduce_signed(v)) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }

  friend constexpr Fp operator+(Fp a, Fp b) { return from_raw(add(a.v_, b.v_)); }
  friend constexpr Fp operator-(Fp a, Fp b) {
    return from_raw(add(a.v_, kModulus - b.v_));
  }
  friend constexpr Fp operator*(Fp a, Fp b) {
    return from_raw(mul(a.v_, b.v_));
  }
  friend constexpr Fp operator-(Fp a) { return from_raw(a.v_ == 0 ? 0 : kModulus - a.v_); }

  Fp& operator+=(Fp o) { return *this = *this + o; }
  Fp& operator-=(Fp o) { return *this = *this - o; }
  Fp& operator*=(Fp o) { return *this = *this * o; }

  // Multiplicative inverse via Fermat's little theorem.  Precondition:
  // *this != 0 (checked; returns 0 for 0 so callers can assert).
  [[nodiscard]] Fp inverse() const;
  [[nodiscard]] Fp pow(std::uint64_t e) const;

  friend constexpr bool operator==(Fp a, Fp b) = default;
  friend constexpr auto operator<=>(Fp a, Fp b) = default;

  friend std::ostream& operator<<(std::ostream& os, Fp x);

 private:
  static constexpr Fp from_raw(std::uint64_t v) {
    Fp x;
    x.v_ = v;
    return x;
  }
  static constexpr std::uint64_t add(std::uint64_t a, std::uint64_t b) {
    std::uint64_t s = a + b;
    return s >= kModulus ? s - kModulus : s;
  }
  static constexpr std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
    std::uint64_t p = a * b;  // both < 2^31, so p < 2^62: no overflow
    // Mersenne reduction: p = hi * 2^31 + lo  =>  p mod (2^31-1) = hi + lo.
    std::uint64_t r = (p >> 31) + (p & kModulus);
    if (r >= kModulus) r -= kModulus;
    return r;
  }
  static constexpr std::uint64_t reduce_signed(std::int64_t v) {
    std::int64_t m = static_cast<std::int64_t>(kModulus);
    std::int64_t r = v % m;
    if (r < 0) r += m;
    return static_cast<std::uint64_t>(r);
  }

  std::uint64_t v_ = 0;
};

using FieldVec = std::vector<Fp>;

}  // namespace svss
