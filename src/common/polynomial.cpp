#include "common/polynomial.hpp"

#include <cassert>
#include <stdexcept>

namespace svss {

Polynomial::Polynomial(FieldVec coeffs) : coeffs_(std::move(coeffs)) {
  if (coeffs_.empty()) coeffs_.resize(1);
}

Polynomial Polynomial::random_with_constant(Fp constant, int deg, Rng& rng) {
  FieldVec c(static_cast<std::size_t>(deg) + 1);
  c[0] = constant;
  for (int i = 1; i <= deg; ++i) c[static_cast<std::size_t>(i)] = rng.next_field();
  return Polynomial(std::move(c));
}

Fp Polynomial::eval(Fp x) const {
  Fp acc(0);
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    acc = acc * x + *it;
  }
  return acc;
}

FieldVec Polynomial::evaluate_range(int count) const {
  FieldVec out;
  out.reserve(static_cast<std::size_t>(count));
  for (int x = 1; x <= count; ++x) out.push_back(eval(Fp(x)));
  return out;
}

Polynomial Polynomial::interpolate(
    const std::vector<std::pair<Fp, Fp>>& points) {
  if (points.empty()) throw std::invalid_argument("interpolate: no points");
  const std::size_t k = points.size();
  // Build coefficients by accumulating Lagrange basis polynomials.
  FieldVec result(k, Fp(0));
  FieldVec basis;  // scratch: coefficients of prod (x - x_j) terms
  for (std::size_t i = 0; i < k; ++i) {
    basis.assign(1, Fp(1));
    Fp denom(1);
    for (std::size_t j = 0; j < k; ++j) {
      if (j == i) continue;
      // basis *= (x - x_j)
      basis.push_back(Fp(0));
      for (std::size_t d = basis.size() - 1; d > 0; --d) {
        basis[d] = basis[d - 1] - points[j].first * basis[d];
      }
      basis[0] = -points[j].first * basis[0];
      denom *= points[i].first - points[j].first;
    }
    if (denom == Fp(0)) throw std::invalid_argument("interpolate: duplicate x");
    Fp scale = points[i].second * denom.inverse();
    for (std::size_t d = 0; d < basis.size(); ++d) {
      result[d] += basis[d] * scale;
    }
  }
  return Polynomial(std::move(result));
}

std::optional<Polynomial> Polynomial::interpolate_checked(
    const std::vector<std::pair<Fp, Fp>>& points, int deg) {
  if (static_cast<int>(points.size()) < deg + 1) return std::nullopt;
  std::vector<std::pair<Fp, Fp>> head(points.begin(),
                                      points.begin() + deg + 1);
  Polynomial p = interpolate(head);
  for (const auto& [x, y] : points) {
    if (p.eval(x) != y) return std::nullopt;
  }
  return p;
}

}  // namespace svss
