#include "common/rng.hpp"

// Header-only; this TU exists so the target has a stable archive member and
// to catch ODR/compile problems early.
namespace svss {}
