// Insert-only open-addressing hash map.
//
// The simulator's hot lookups — protocol sessions by SessionId, RB
// instances by BcastId — are get-or-create with no erasure, hit millions
// of times per run.  std::unordered_map pays a node allocation per entry
// and a pointer chase per probe; this flat table keeps entries in one
// vector and probes linearly after a murmur-style finalizer (the index is
// a power of two, so raw hashes with weak low bits would cluster).
//
// Contract: no erase; references returned by find()/operator[] are
// invalidated by the next insertion (hold the value behind a unique_ptr or
// re-look it up), while heap-allocated pointees stay stable.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace svss {

template <typename K, typename V, typename Hash>
class FlatMap {
 public:
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  V* find(const K& key) {
    if (entries_.empty()) return nullptr;
    std::size_t mask = table_.size() - 1;
    std::size_t h = slot_hash(key) & mask;
    while (table_[h] != 0) {
      auto& entry = entries_[table_[h] - 1];
      if (entry.first == key) return &entry.second;
      h = (h + 1) & mask;
    }
    return nullptr;
  }
  const V* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  // Get-or-default-construct.
  V& operator[](const K& key) {
    // Grow before probing so the returned reference survives until the
    // *next* insertion.
    if ((entries_.size() + 1) * 4 > table_.size() * 3) grow();
    std::size_t mask = table_.size() - 1;
    std::size_t h = slot_hash(key) & mask;
    while (table_[h] != 0) {
      auto& entry = entries_[table_[h] - 1];
      if (entry.first == key) return entry.second;
      h = (h + 1) & mask;
    }
    entries_.emplace_back(key, V{});
    table_[h] = static_cast<std::uint32_t>(entries_.size());
    return entries_.back().second;
  }

  // Entries in insertion order (deterministic).
  [[nodiscard]] const std::vector<std::pair<K, V>>& entries() const {
    return entries_;
  }

 private:
  static std::size_t slot_hash(const K& key) {
    std::size_t h = Hash{}(key);
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    h *= 0xc4ceb9fe1a85ec53ULL;
    h ^= h >> 33;
    return h;
  }

  void grow() {
    std::size_t cap = table_.empty() ? 64 : table_.size() * 2;
    table_.assign(cap, 0);
    std::size_t mask = cap - 1;
    for (std::uint32_t e = 0; e < entries_.size(); ++e) {
      std::size_t h = slot_hash(entries_[e].first) & mask;
      while (table_[h] != 0) h = (h + 1) & mask;
      table_[h] = e + 1;
    }
  }

  // Index into entries_ + 1; 0 marks an empty slot.
  std::vector<std::uint32_t> table_;
  std::vector<std::pair<K, V>> entries_;
};

}  // namespace svss
