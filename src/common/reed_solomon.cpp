#include "common/reed_solomon.hpp"

#include <algorithm>

namespace svss {

namespace {

// Solves A x = b over GF(p) by Gaussian elimination; A is row-major with
// `cols` unknowns, one row per equation.  Returns any solution (free
// variables set to 0), or nullopt if inconsistent.
std::optional<FieldVec> solve_linear(std::vector<FieldVec> rows,
                                     FieldVec rhs, std::size_t cols) {
  const std::size_t m = rows.size();
  std::vector<std::size_t> pivot_col_of_row;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < m; ++col) {
    std::size_t pivot = rank;
    while (pivot < m && rows[pivot][col] == Fp(0)) ++pivot;
    if (pivot == m) continue;
    std::swap(rows[pivot], rows[rank]);
    std::swap(rhs[pivot], rhs[rank]);
    Fp inv = rows[rank][col].inverse();
    for (std::size_t c = col; c < cols; ++c) rows[rank][c] *= inv;
    rhs[rank] *= inv;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == rank || rows[r][col] == Fp(0)) continue;
      Fp factor = rows[r][col];
      for (std::size_t c = col; c < cols; ++c) {
        rows[r][c] -= factor * rows[rank][c];
      }
      rhs[r] -= factor * rhs[rank];
    }
    pivot_col_of_row.push_back(col);
    ++rank;
  }
  // Inconsistency: a zero row with nonzero rhs.
  for (std::size_t r = rank; r < m; ++r) {
    if (rhs[r] != Fp(0)) return std::nullopt;
  }
  FieldVec x(cols, Fp(0));
  for (std::size_t r = 0; r < rank; ++r) {
    x[pivot_col_of_row[r]] = rhs[r];
  }
  return x;
}

// Divides a by b (polynomial long division).  Returns {quotient,
// remainder-is-zero}.
std::pair<Polynomial, bool> divide_exact(const Polynomial& a,
                                         const Polynomial& b) {
  FieldVec r = a.coefficients();
  const FieldVec& d = b.coefficients();
  int db = static_cast<int>(d.size()) - 1;
  while (db > 0 && d[static_cast<std::size_t>(db)] == Fp(0)) --db;
  Fp lead = d[static_cast<std::size_t>(db)];
  if (lead == Fp(0)) return {Polynomial(), false};
  Fp lead_inv = lead.inverse();
  int dr = static_cast<int>(r.size()) - 1;
  FieldVec q(r.size(), Fp(0));
  while (dr >= db) {
    while (dr >= 0 && r[static_cast<std::size_t>(dr)] == Fp(0)) --dr;
    if (dr < db) break;
    Fp factor = r[static_cast<std::size_t>(dr)] * lead_inv;
    q[static_cast<std::size_t>(dr - db)] = factor;
    for (int i = 0; i <= db; ++i) {
      r[static_cast<std::size_t>(dr - db + i)] -=
          factor * d[static_cast<std::size_t>(i)];
    }
  }
  for (Fp c : r) {
    if (c != Fp(0)) return {Polynomial(), false};
  }
  return {Polynomial(std::move(q)), true};
}

}  // namespace

std::optional<Polynomial> rs_decode(
    const std::vector<std::pair<Fp, Fp>>& points, int deg, int max_errors) {
  const int m = static_cast<int>(points.size());
  if (max_errors < 0 || m < deg + 1 + 2 * max_errors) return std::nullopt;
  if (max_errors == 0) {
    return Polynomial::interpolate_checked(points, deg);
  }
  // Berlekamp-Welch: find monic E of degree e and Q of degree <= deg + e
  // with Q(x_i) = y_i * E(x_i) for all i.  Unknowns: e coefficients of E
  // (E = x^e + e_{e-1} x^{e-1} + ... + e_0) and deg+e+1 coefficients of Q.
  const int e = max_errors;
  const std::size_t qn = static_cast<std::size_t>(deg + e + 1);
  const std::size_t cols = static_cast<std::size_t>(e) + qn;
  std::vector<FieldVec> rows;
  FieldVec rhs;
  rows.reserve(static_cast<std::size_t>(m));
  for (const auto& [x, y] : points) {
    FieldVec row(cols, Fp(0));
    // y * (e_0 + e_1 x + ... + e_{e-1} x^{e-1}) - Q(x) = -y * x^e
    Fp xp(1);
    for (int k = 0; k < e; ++k) {
      row[static_cast<std::size_t>(k)] = y * xp;
      xp *= x;
    }
    rhs.push_back(-(y * xp));  // xp == x^e here
    Fp xq(1);
    for (std::size_t k = 0; k < qn; ++k) {
      row[static_cast<std::size_t>(e) + k] = -xq;
      xq *= x;
    }
    rows.push_back(std::move(row));
  }
  auto sol = solve_linear(std::move(rows), std::move(rhs), cols);
  if (!sol) return std::nullopt;
  FieldVec ecoef(sol->begin(), sol->begin() + e);
  ecoef.push_back(Fp(1));  // monic
  FieldVec qcoef(sol->begin() + e, sol->end());
  auto [p, exact] = divide_exact(Polynomial(std::move(qcoef)),
                                 Polynomial(std::move(ecoef)));
  if (!exact || p.degree_bound() > deg + e) return std::nullopt;
  // Truncate to degree bound and verify the error budget.
  FieldVec pc = p.coefficients();
  for (std::size_t k = static_cast<std::size_t>(deg) + 1; k < pc.size();
       ++k) {
    if (pc[k] != Fp(0)) return std::nullopt;
  }
  pc.resize(static_cast<std::size_t>(deg) + 1);
  Polynomial result(std::move(pc));
  int disagreements = 0;
  for (const auto& [x, y] : points) {
    if (result.eval(x) != y) ++disagreements;
  }
  if (disagreements > max_errors) return std::nullopt;
  return result;
}

std::optional<Polynomial> OnlineDecoder::add_point(Fp x, Fp y) {
  if (result_) return result_;
  for (const auto& [px, py] : points_) {
    if (px == x) return std::nullopt;  // duplicate shareholder
  }
  points_.emplace_back(x, y);
  const int m = static_cast<int>(points_.size());
  const int c = m - threshold_;  // allowed errors at this point count
  if (c < 0) return std::nullopt;
  auto candidate = rs_decode(points_, deg_, c);
  if (!candidate) return std::nullopt;
  // OEC soundness check: the candidate must agree with >= threshold
  // points (which implies agreement with >= threshold - t honest ones).
  int agree = 0;
  for (const auto& [px, py] : points_) {
    if (candidate->eval(px) == py) ++agree;
  }
  if (agree < threshold_) return std::nullopt;
  result_ = std::move(candidate);
  return result_;
}

}  // namespace svss
