#include "common/bivariate.hpp"

namespace svss {

BivariatePolynomial BivariatePolynomial::random_with_secret(Fp secret, int deg,
                                                            Rng& rng) {
  BivariatePolynomial f;
  f.deg_ = deg;
  f.a_.assign(static_cast<std::size_t>(deg) + 1,
              FieldVec(static_cast<std::size_t>(deg) + 1));
  for (int i = 0; i <= deg; ++i) {
    for (int j = 0; j <= deg; ++j) {
      f.a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          rng.next_field();
    }
  }
  f.a_[0][0] = secret;
  return f;
}

Fp BivariatePolynomial::eval(Fp x, Fp y) const {
  // Horner in x of Horner-in-y row evaluations.
  Fp acc(0);
  for (int i = deg_; i >= 0; --i) {
    Fp row_val(0);
    const FieldVec& row = a_[static_cast<std::size_t>(i)];
    for (int j = deg_; j >= 0; --j) {
      row_val = row_val * y + row[static_cast<std::size_t>(j)];
    }
    acc = acc * x + row_val;
  }
  return acc;
}

Polynomial BivariatePolynomial::row(int j) const {
  // f(j, y): coefficient of y^k is sum_i a[i][k] j^i.
  Fp x(j);
  FieldVec c(static_cast<std::size_t>(deg_) + 1, Fp(0));
  Fp xp(1);
  for (int i = 0; i <= deg_; ++i) {
    for (int k = 0; k <= deg_; ++k) {
      c[static_cast<std::size_t>(k)] +=
          a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] * xp;
    }
    xp *= x;
  }
  return Polynomial(std::move(c));
}

Polynomial BivariatePolynomial::column(int j) const {
  // f(x, j): coefficient of x^i is sum_k a[i][k] j^k.
  Fp y(j);
  FieldVec c(static_cast<std::size_t>(deg_) + 1, Fp(0));
  for (int i = 0; i <= deg_; ++i) {
    Fp yp(1);
    for (int k = 0; k <= deg_; ++k) {
      c[static_cast<std::size_t>(i)] +=
          a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] * yp;
      yp *= y;
    }
  }
  return Polynomial(std::move(c));
}

void BivariatePolynomial::append_share_points(int j, int count, FieldVec& out,
                                              FieldVec& scratch) const {
  const auto deg = static_cast<std::size_t>(deg_);
  const Fp p(j);
  out.reserve(out.size() + 2 * static_cast<std::size_t>(count));

  // g_j coefficients (of y^k): Horner in x down the coefficient rows.
  scratch.assign(a_[deg].begin(), a_[deg].end());
  for (std::size_t i = deg; i-- > 0;) {
    const FieldVec& row = a_[i];
    for (std::size_t k = 0; k <= deg; ++k) {
      scratch[k] = scratch[k] * p + row[k];
    }
  }
  for (int y = 1; y <= count; ++y) {
    Fp acc = scratch[deg];
    for (std::size_t k = deg; k-- > 0;) acc = acc * Fp(y) + scratch[k];
    out.push_back(acc);
  }

  // h_j coefficients (of x^i): Horner in y along each coefficient row.
  for (std::size_t i = 0; i <= deg; ++i) {
    const FieldVec& row = a_[i];
    Fp acc = row[deg];
    for (std::size_t k = deg; k-- > 0;) acc = acc * p + row[k];
    scratch[i] = acc;
  }
  for (int x = 1; x <= count; ++x) {
    Fp acc = scratch[deg];
    for (std::size_t i = deg; i-- > 0;) acc = acc * Fp(x) + scratch[i];
    out.push_back(acc);
  }
}

std::optional<BivariatePolynomial> BivariatePolynomial::interpolate_checked(
    const std::vector<Fp>& xs,
    const std::vector<std::vector<std::pair<Fp, Fp>>>& rows, int deg) {
  if (static_cast<int>(xs.size()) < deg + 1 || xs.size() != rows.size()) {
    return std::nullopt;
  }
  // Interpolate each sample row as a univariate polynomial in y, checking
  // consistency; then interpolate coefficient-wise in x.
  std::vector<Polynomial> row_polys;
  row_polys.reserve(xs.size());
  for (const auto& row : rows) {
    auto p = Polynomial::interpolate_checked(row, deg);
    if (!p) return std::nullopt;
    row_polys.push_back(std::move(*p));
  }
  BivariatePolynomial f;
  f.deg_ = deg;
  f.a_.assign(static_cast<std::size_t>(deg) + 1,
              FieldVec(static_cast<std::size_t>(deg) + 1));
  for (int k = 0; k <= deg; ++k) {
    std::vector<std::pair<Fp, Fp>> pts;
    pts.reserve(xs.size());
    for (std::size_t r = 0; r < xs.size(); ++r) {
      pts.emplace_back(xs[r],
                       row_polys[r].coefficients()[static_cast<std::size_t>(k)]);
    }
    auto px = Polynomial::interpolate_checked(pts, deg);
    if (!px) return std::nullopt;
    for (int i = 0; i <= deg; ++i) {
      f.a_[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
          px->coefficients()[static_cast<std::size_t>(i)];
    }
  }
  return f;
}

}  // namespace svss
