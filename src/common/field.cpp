#include "common/field.hpp"

#include <ostream>

namespace svss {

Fp Fp::pow(std::uint64_t e) const {
  Fp base = *this;
  Fp acc(1);
  while (e != 0) {
    if (e & 1) acc *= base;
    base *= base;
    e >>= 1;
  }
  return acc;
}

Fp Fp::inverse() const {
  if (v_ == 0) return Fp(0);
  return pow(kModulus - 2);
}

std::ostream& operator<<(std::ostream& os, Fp x) { return os << x.value(); }

}  // namespace svss
