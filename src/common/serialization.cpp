#include "common/serialization.hpp"

namespace svss {

std::optional<FieldVec> Reader::field_vec(std::size_t max_len) {
  auto len = u32();
  if (!len || *len > max_len) return std::nullopt;
  FieldVec out;
  out.reserve(*len);
  for (std::uint32_t i = 0; i < *len; ++i) {
    auto x = field();
    if (!x) return std::nullopt;
    out.push_back(*x);
  }
  return out;
}

std::optional<std::vector<int>> Reader::int_vec(std::size_t max_len) {
  auto len = u32();
  if (!len || *len > max_len) return std::nullopt;
  std::vector<int> out;
  out.reserve(*len);
  for (std::uint32_t i = 0; i < *len; ++i) {
    auto x = i32();
    if (!x) return std::nullopt;
    out.push_back(*x);
  }
  return out;
}

std::optional<Bytes> Reader::bytes(std::size_t max_len) {
  auto len = u32();
  if (!len || *len > max_len) return std::nullopt;
  if (pos_ + *len > buf_.size()) return std::nullopt;
  Bytes out(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

}  // namespace svss
