// Deterministic, splittable random number generation.
//
// Every run of the simulator is reproducible from a single 64-bit seed.
// Each process (and each protocol instance inside a process) derives its own
// independent stream by splitting, so message scheduling never perturbs the
// values a process draws.
#pragma once

#include <cstdint>

#include "common/field.hpp"

namespace svss {

// SplitMix64-based generator: tiny state, good avalanche, cheap to split.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ 0x9E3779B97F4A7C15ULL) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).  bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    std::uint64_t limit = ~0ULL - (~0ULL % bound);
    std::uint64_t x;
    do {
      x = next_u64();
    } while (x >= limit);
    return x % bound;
  }

  bool next_bool() { return (next_u64() & 1) != 0; }

  // Uniform field element.
  Fp next_field() {
    return Fp(static_cast<std::int64_t>(next_below(Fp::kModulus)));
  }

  double next_unit() {  // uniform in [0,1)
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Derives an independent stream; `salt` distinguishes sibling splits.
  [[nodiscard]] Rng split(std::uint64_t salt) {
    std::uint64_t s = next_u64();
    return Rng(s ^ (salt * 0xD1B54A32D192ED03ULL + 0x8CB92BA72F3D8DD7ULL));
  }

 private:
  std::uint64_t state_;
};

}  // namespace svss
