// Univariate polynomials over GF(p): sampling, evaluation, interpolation.
//
// Degree-t polynomials are the workhorse of the paper's secret sharing: a
// secret s is hidden as f(0) of a random degree-t polynomial, and any t+1
// evaluation points determine f while any t points reveal nothing.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "common/field.hpp"
#include "common/rng.hpp"

namespace svss {

// Value-semantic polynomial, stored as coefficients c0 + c1 x + ... .
// Invariant: coeffs_ is non-empty; degree() == coeffs_.size() - 1 as a
// *bound* (leading coefficients may be zero — degree-t sharing cares about
// the bound, not the exact degree).
class Polynomial {
 public:
  Polynomial() : coeffs_(1) {}
  explicit Polynomial(FieldVec coeffs);

  // A uniformly random polynomial of degree <= deg with p(0) == constant.
  static Polynomial random_with_constant(Fp constant, int deg, Rng& rng);

  // Lagrange interpolation through distinct-x points.  Number of points
  // determines the degree bound (k points -> degree <= k-1).
  static Polynomial interpolate(const std::vector<std::pair<Fp, Fp>>& points);

  // Interpolates through `points` and checks that *all* of them (if more
  // than deg+1 are given) lie on one polynomial of degree <= deg.  Returns
  // nullopt if they are inconsistent.  This is the reconstruct-phase check
  // in MW-SVSS/SVSS ("if f-bar exists ... otherwise output bottom").
  static std::optional<Polynomial> interpolate_checked(
      const std::vector<std::pair<Fp, Fp>>& points, int deg);

  [[nodiscard]] Fp eval(Fp x) const;
  [[nodiscard]] Fp constant() const { return coeffs_.front(); }
  [[nodiscard]] int degree_bound() const {
    return static_cast<int>(coeffs_.size()) - 1;
  }
  [[nodiscard]] const FieldVec& coefficients() const { return coeffs_; }

  // Evaluations at x = 1..count, the canonical share vector for processes
  // with one-based identifiers.
  [[nodiscard]] FieldVec evaluate_range(int count) const;

  friend bool operator==(const Polynomial&, const Polynomial&) = default;

 private:
  FieldVec coeffs_;
};

}  // namespace svss
