#include "net/endpoint.hpp"

namespace svss::net {

std::optional<ClusterConfig> parse_cluster(const std::string& spec) {
  ClusterConfig cfg;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    std::string entry = spec.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= entry.size()) {
      return std::nullopt;
    }
    Endpoint ep;
    ep.host = entry.substr(0, colon);
    int port = 0;
    for (std::size_t i = colon + 1; i < entry.size(); ++i) {
      char c = entry[i];
      if (c < '0' || c > '9') return std::nullopt;
      port = port * 10 + (c - '0');
      if (port > 65535) return std::nullopt;
    }
    ep.port = static_cast<std::uint16_t>(port);
    cfg.peers.push_back(std::move(ep));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (cfg.peers.empty()) return std::nullopt;
  return cfg;
}

}  // namespace svss::net
