// TCP socket backend for the ITransport seam.
//
// One SocketTransport is one process's endpoint in a cluster described by a
// ClusterConfig.  Connection topology: every endpoint binds a listener and
// *dials* every peer; the dialing side's connection carries its outbound
// traffic (after a HELLO frame identifying the dialer), and accepted
// connections are read-only inbound.  Using one direction per ordered pair
// sidesteps simultaneous-open dedup entirely.
//
// The loop is epoll-based and strictly single-threaded: one thread owns
// one transport and drives poll()/run_until(); send() may only be called
// from that thread (typically from inside the delivery sink — exactly how
// Node reacts to packets).  Outbound frames buffer per peer and survive
// reconnects: a dial that fails retries with exponential backoff
// (100ms doubling to 2s), and everything not yet written flushes once the
// connection lands.  Self-sends go through a local queue drained by the
// poll loop, so a delivery cascade cannot recurse.
//
// Metering matches the sim engine byte-for-byte where it can: every sent
// packet is counted at Packet::wire_size() with per-type attribution
// (frame overhead is excluded on purpose — the equivalence tests compare
// these counters against a sim run of the same protocol).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/endpoint.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "sim/metrics.hpp"

namespace svss::net {

class SocketTransport final : public ITransport {
 public:
  SocketTransport(int self, ClusterConfig cfg);
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // --- ITransport ---
  void send(int to, Packet p) override;
  void broadcast(const Packet& p) override;
  void set_delivery(Delivery sink) override { sink_ = std::move(sink); }
  void set_send_hook(SendHook hook) override { hook_ = std::move(hook); }
  [[nodiscard]] int self() const override { return self_; }
  [[nodiscard]] int n() const override { return cfg_.n(); }

  // --- lifecycle ---
  // Binds the listener (port 0 = kernel-assigned) and creates the epoll
  // instance.  Returns false on any socket-level failure.
  bool open();
  [[nodiscard]] std::uint16_t bound_port() const { return bound_port_; }
  // Replaces a peer's endpoint before dialing starts (loopback clusters
  // learn kernel-assigned ports only after every listener is open).
  void set_peer(int id, Endpoint ep);

  // One event-loop iteration: flushes writable peers, waits at most
  // `wait_ms` for readiness, processes events, drains local deliveries.
  void poll(int wait_ms);
  // Drives poll() until done() or `timeout_ms` elapsed; true iff done().
  bool run_until(const std::function<bool()>& done, int timeout_ms);

  [[nodiscard]] const Metrics& metrics() const { return metrics_; }

 private:
  using Clock = std::chrono::steady_clock;

  // Outbound leg toward one peer.
  struct OutPeer {
    int fd = -1;
    bool connecting = false;    // nonblocking connect() in flight
    Bytes buf;                  // frames queued (survives reconnects)
    std::size_t pos = 0;        // flushed prefix of buf
    int backoff_ms = 100;
    Clock::time_point next_attempt{};  // earliest (re)dial time
  };
  // Accepted inbound connection; peer is learned from its HELLO frame.
  struct InConn {
    int fd = -1;
    int peer = -1;
    FrameDecoder decoder;
  };

  void queue_frame(int to, const Packet& p);
  void meter_send(const Packet& p);
  void start_connect(int peer);
  void update_out_events(int peer, bool want_write);
  void finish_connect(int peer);
  void drop_out(int peer);
  void flush_out(int peer);
  void handle_accept();
  void handle_inbound(std::size_t idx);
  void close_inbound(std::size_t idx);
  void drain_local();
  void deliver(int from, Packet p);
  [[nodiscard]] int epoll_timeout(int wait_ms) const;

  int self_;
  ClusterConfig cfg_;
  Delivery sink_;
  SendHook hook_;
  Metrics metrics_;

  int epfd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::vector<OutPeer> out_;              // index = peer id (self unused)
  std::vector<InConn> in_;                // accepted connections
  std::deque<Packet> local_;              // self-sends awaiting delivery
};

}  // namespace svss::net
