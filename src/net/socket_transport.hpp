// TCP socket backend for the ITransport seam.
//
// One SocketTransport is one process's endpoint in a cluster described by a
// ClusterConfig.  Connection topology: every endpoint binds a listener and
// *dials* every peer; the dialing side's connection carries its outbound
// traffic (after a HELLO frame identifying the dialer), and accepted
// connections are read-only inbound.  Using one direction per ordered pair
// sidesteps simultaneous-open dedup entirely.
//
// The loop is epoll-based and strictly single-threaded: one thread owns
// one transport and drives poll()/run_until(); send() may only be called
// from that thread (typically from inside the delivery sink — exactly how
// Node reacts to packets).  Outbound frames buffer per peer and survive
// reconnects: a dial that fails retries with exponential backoff
// (100ms doubling to 2s), and everything not yet written flushes once the
// connection lands.  Self-sends go through a local queue drained by the
// poll loop, so a delivery cascade cannot recurse.
//
// Metering matches the sim engine byte-for-byte where it can: every sent
// packet is counted at Packet::wire_size() with per-type attribution
// (frame overhead is excluded on purpose — the equivalence tests compare
// these counters against a sim run of the same protocol).
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "net/endpoint.hpp"
#include "net/frame.hpp"
#include "net/transport.hpp"
#include "sim/metrics.hpp"

namespace svss::net {

// Process-wide SIGTERM/SIGINT plumbing for socket daemons.  The handler
// only sets a sig_atomic_t flag (async-signal-safe); run_until() polls it
// and returns early, so the daemon's main loop regains control and can
// shut down cleanly — close the listener, flush metrics, exit 0 — instead
// of dying mid-write when a supervisor (or the smoke script's cleanup
// trap) kills the fleet.  Handlers install without SA_RESTART so a
// blocked epoll_wait wakes with EINTR immediately.
void install_stop_handlers();
[[nodiscard]] bool stop_requested();
// Resets the sticky stop flag (tests that raise() a signal and then keep
// running; a real daemon never needs this).
void clear_stop_request();

class SocketTransport final : public ITransport {
 public:
  SocketTransport(int self, ClusterConfig cfg);
  ~SocketTransport() override;
  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  // --- ITransport ---
  void send(int to, Packet p) override;
  void broadcast(const Packet& p) override;
  void set_delivery(Delivery sink) override { sink_ = std::move(sink); }
  void set_send_hook(SendHook hook) override { hook_ = std::move(hook); }
  [[nodiscard]] int self() const override { return self_; }
  [[nodiscard]] int n() const override { return cfg_.n(); }

  // --- lifecycle ---
  // Binds the listener (port 0 = kernel-assigned) and creates the epoll
  // instance.  Returns false on any socket-level failure.
  bool open();
  [[nodiscard]] std::uint16_t bound_port() const { return bound_port_; }
  // Replaces a peer's endpoint before dialing starts (loopback clusters
  // learn kernel-assigned ports only after every listener is open).
  void set_peer(int id, Endpoint ep);
  // Live endpoint replacement (epoch reconfiguration: a slot's process was
  // swapped for one at a new address).  Drops the current connection,
  // resets the backoff, and redials the new endpoint on the next poll;
  // queued frames survive and flush to the replacement.
  void rebind_peer(int id, Endpoint ep);
  // Per-peer cap on unflushed outbound bytes.  While a peer is down its
  // queue would otherwise grow without bound; past the cap the *oldest*
  // complete unflushed frames are shed (never a frame the kernel already
  // holds part of) and counted in metrics().out_dropped_*.  A single frame
  // larger than the cap is kept — the cap bounds queue growth, it does not
  // reject traffic outright.
  void set_out_buffer_cap(std::size_t bytes) { out_buf_cap_ = bytes; }
  // Unflushed outbound bytes queued toward `id` (tests pin the cap).
  [[nodiscard]] std::size_t pending_out_bytes(int id) const;
  // Current reconnect backoff tier for `id` (tests pin the resolve-failure
  // fast path to the capped tier).
  [[nodiscard]] int peer_backoff_ms(int id) const;

  // One event-loop iteration: flushes writable peers, waits at most
  // `wait_ms` for readiness, processes events, drains local deliveries.
  void poll(int wait_ms);
  // Drives poll() until done(), `timeout_ms` elapsed, or stop_requested();
  // true iff done().
  bool run_until(const std::function<bool()>& done, int timeout_ms);
  // Clean teardown: best-effort flush of pending outbound frames, then
  // closes the listener and every connection.  After shutdown() the
  // transport is inert — poll()/run_until() return without redialing, so
  // the port is free the moment this returns, not at destructor time.
  void shutdown();

  [[nodiscard]] const Metrics& metrics() const { return metrics_; }

 private:
  using Clock = std::chrono::steady_clock;

  // Outbound leg toward one peer.
  struct OutPeer {
    int fd = -1;
    bool connecting = false;    // nonblocking connect() in flight
    Bytes buf;                  // frames queued (survives reconnects)
    std::size_t pos = 0;        // flushed prefix of buf
    // Offset of the first frame not yet *completely* flushed.  `pos` may
    // sit mid-frame after a partial write; resuming a new connection from
    // there would replay a frame tail the receiver parses as a fresh
    // length prefix (desync -> stream-error latch).  Reconnects therefore
    // rewind pos to this boundary and resend the whole frame.
    std::size_t frame_base = 0;
    int backoff_ms = 100;
    Clock::time_point next_attempt{};  // earliest (re)dial time
    // A bad endpoint is logged once, not once per retry (set_peer resets).
    bool resolve_logged = false;
  };
  // Accepted inbound connection; peer is learned from its HELLO frame.
  struct InConn {
    int fd = -1;
    int peer = -1;
    FrameDecoder decoder;
  };

  void queue_frame(int to, const Packet& p);
  void meter_send(const Packet& p);
  void start_connect(int peer);
  void update_out_events(int peer, bool want_write);
  void finish_connect(int peer);
  void drop_out(int peer);
  static void advance_frame_base(OutPeer& o);
  void trim_out(int peer);
  void flush_out(int peer);
  void handle_accept();
  void handle_inbound(std::size_t idx);
  void close_inbound(std::size_t idx);
  void drain_local();
  void deliver(int from, Packet p);
  [[nodiscard]] int epoll_timeout(int wait_ms) const;

  int self_;
  ClusterConfig cfg_;
  Delivery sink_;
  SendHook hook_;
  Metrics metrics_;

  std::size_t out_buf_cap_ = std::size_t{16} << 20;  // per peer
  int epfd_ = -1;
  int listen_fd_ = -1;
  bool closed_ = false;                   // shutdown() latched
  std::uint16_t bound_port_ = 0;
  std::vector<OutPeer> out_;              // index = peer id (self unused)
  std::vector<InConn> in_;                // accepted connections
  std::deque<Packet> local_;              // self-sends awaiting delivery
};

}  // namespace svss::net
