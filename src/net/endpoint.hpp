// Cluster wiring for the socket backend: which process id listens where.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace svss::net {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

// Maps process ids [0, n) to TCP endpoints.  Every daemon in a cluster
// must be started with the same config (same order, same addresses); its
// own id selects the endpoint it binds.
struct ClusterConfig {
  std::vector<Endpoint> peers;  // index = process id

  [[nodiscard]] int n() const { return static_cast<int>(peers.size()); }
};

// Parses "host:port,host:port,..." (the daemons' --peers flag).  Returns
// nullopt on any malformed entry.
std::optional<ClusterConfig> parse_cluster(const std::string& spec);

}  // namespace svss::net
