#include "net/frame.hpp"

#include <cstring>

namespace svss::net {

namespace {

// SessionId / BcastId codecs for the RB frame payload.  The sim backend
// never serializes these (a Packet is a C++ struct in the arena); on the
// wire they need explicit bytes.  Encoded with the same Writer/Reader
// vocabulary as Message so the treat-garbage-as-absent rule carries over.
void write_sid(Writer& w, const SessionId& sid) {
  w.u8(static_cast<std::uint8_t>(sid.path));
  w.u8(sid.variant);
  w.i32(sid.owner);
  w.i32(sid.moderator);
  w.i32(sid.svss_dealer);
  w.u32(sid.counter);
  w.u32(sid.instance);
  w.u32(sid.epoch);
}

std::optional<SessionId> read_sid(Reader& r) {
  auto path = r.u8();
  auto variant = r.u8();
  auto owner = r.i32();
  auto moderator = r.i32();
  auto svss_dealer = r.i32();
  auto counter = r.u32();
  auto instance = r.u32();
  auto epoch = r.u32();
  if (!path || !variant || !owner || !moderator || !svss_dealer || !counter ||
      !instance || !epoch) {
    return std::nullopt;
  }
  if (*path > static_cast<std::uint8_t>(SessionPath::kTest)) return std::nullopt;
  SessionId sid;
  sid.path = static_cast<SessionPath>(*path);
  sid.variant = *variant;
  sid.owner = static_cast<std::int16_t>(*owner);
  sid.moderator = static_cast<std::int16_t>(*moderator);
  sid.svss_dealer = static_cast<std::int16_t>(*svss_dealer);
  sid.counter = *counter;
  sid.instance = *instance;
  sid.epoch = *epoch;
  return sid;
}

void append_frame(Bytes& out, FrameKind kind, const Bytes& payload) {
  std::uint32_t len = static_cast<std::uint32_t>(payload.size()) + 1;
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  }
  out.push_back(static_cast<std::uint8_t>(kind));
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

void append_packet_frame(Bytes& out, const Packet& p) {
  if (!p.is_rb) {
    append_frame(out, FrameKind::kDirect, p.app.serialize());
    return;
  }
  Writer w;
  w.i32(p.bid.origin);
  write_sid(w, p.bid.sid);
  w.u8(static_cast<std::uint8_t>(p.bid.slot));
  w.i32(p.bid.a);
  w.u8(static_cast<std::uint8_t>(p.phase));
  w.bytes(p.rb_payload());
  append_frame(out, FrameKind::kRb, std::move(w).take());
}

void append_hello_frame(Bytes& out, int self) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(self));
  append_frame(out, FrameKind::kHello, std::move(w).take());
}

std::optional<Packet> decode_packet(const Frame& f) {
  if (f.kind == FrameKind::kDirect) {
    auto msg = Message::deserialize(f.payload);
    if (!msg) return std::nullopt;
    return make_direct(std::move(*msg));
  }
  if (f.kind != FrameKind::kRb) return std::nullopt;
  Reader r(f.payload);
  auto origin = r.i32();
  auto sid = read_sid(r);
  auto slot = r.u8();
  auto a = r.i32();
  auto phase = r.u8();
  auto value = r.bytes();
  if (!origin || !sid || !slot || !a || !phase || !value || !r.exhausted()) {
    return std::nullopt;
  }
  if (*phase < static_cast<std::uint8_t>(RbPhase::kSend) ||
      *phase > static_cast<std::uint8_t>(RbPhase::kReady)) {
    return std::nullopt;
  }
  BcastId bid;
  bid.origin = static_cast<std::int16_t>(*origin);
  bid.sid = *sid;
  bid.slot = static_cast<MsgType>(*slot);
  bid.a = static_cast<std::int16_t>(*a);
  return make_rb(bid, static_cast<RbPhase>(*phase), std::move(*value));
}

std::optional<int> decode_hello(const Frame& f, int n) {
  if (f.kind != FrameKind::kHello) return std::nullopt;
  Reader r(f.payload);
  auto id = r.u32();
  if (!id || !r.exhausted()) return std::nullopt;
  if (*id >= static_cast<std::uint32_t>(n)) return std::nullopt;
  return static_cast<int>(*id);
}

bool FrameDecoder::feed(const std::uint8_t* data, std::size_t len) {
  if (broken_) return false;
  buf_.insert(buf_.end(), data, data + len);
  return true;
}

std::optional<Frame> FrameDecoder::next() {
  if (broken_) return std::nullopt;
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection doesn't grow its buffer without bound.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  if (buf_.size() - pos_ < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buf_[pos_ + static_cast<std::size_t>(i)])
           << (8 * i);
  }
  if (len == 0 || len > kMaxFrameBytes) {
    // An undelimitable prefix: nothing downstream can be trusted.
    broken_ = true;
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4 + static_cast<std::size_t>(len)) {
    return std::nullopt;  // truncated: wait for more bytes
  }
  Frame f;
  std::uint8_t kind = buf_[pos_ + 4];
  if (kind > static_cast<std::uint8_t>(FrameKind::kRb)) {
    // Unknown kind is a payload-level problem: the length still delimits
    // it, so skip this frame and keep the stream alive.
    pos_ += 4 + static_cast<std::size_t>(len);
    return next();
  }
  f.kind = static_cast<FrameKind>(kind);
  f.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + 5),
                   buf_.begin() + static_cast<std::ptrdiff_t>(
                                      pos_ + 4 + static_cast<std::size_t>(len)));
  pos_ += 4 + static_cast<std::size_t>(len);
  return f;
}

}  // namespace svss::net
