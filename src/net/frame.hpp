// Wire framing for the socket backend.
//
// A TCP connection carries a sequence of length-prefixed frames:
//
//   [u32 length | little-endian] [u8 kind] [payload ...]
//
// `length` counts the kind byte plus the payload.  Three frame kinds:
//
//   kHello  — first frame on every dialed connection; payload = u32
//             sender id.  Identifies which peer writes on an accepted
//             connection (each ordered pair of processes uses the dialing
//             side's connection for its traffic).
//   kDirect — payload = Message::serialize() of a direct application
//             message: exactly the bytes the simulator meters.
//   kRb     — payload = BcastId + RbPhase + the RB value bytes: one step
//             of a reliable-broadcast instance.  Batched envelopes
//             (kSvssBatch*, kMwBatch*) need no translation — they are
//             ordinary Messages and ride inside kDirect/kRb unchanged.
//
// Error discipline, mirroring the Reader's treat-garbage-as-absent rule:
//  * a frame whose *payload* fails to parse is dropped alone — the length
//    prefix still delimits it, so the stream stays in sync;
//  * a *length* that is zero or exceeds kMaxFrameBytes can never be
//    trusted to delimit anything (the stream may be mid-desync), so the
//    decoder latches a stream error and the connection must be reset —
//    never resumed — exactly how a Byzantine peer is prevented from
//    desyncing an honest reader.
#pragma once

#include <cstdint>
#include <optional>

#include "common/serialization.hpp"
#include "sim/message.hpp"

namespace svss::net {

enum class FrameKind : std::uint8_t { kHello = 0, kDirect = 1, kRb = 2 };

// Ceiling on one frame's (kind + payload) size.  Generous relative to any
// protocol message at kMaxN, tiny relative to what a hostile length prefix
// could claim (and allocate).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 24;

// --- encoding ---------------------------------------------------------

// Appends one framed packet / hello to `out`.
void append_packet_frame(Bytes& out, const Packet& p);
void append_hello_frame(Bytes& out, int self);

// --- decoding ---------------------------------------------------------

// One successfully delimited frame (payload may still be garbage).
struct Frame {
  FrameKind kind = FrameKind::kDirect;
  Bytes payload;
};

// Parses a frame payload back into a Packet; nullopt for malformed bytes
// (including a kHello kind, which never carries a Packet).
std::optional<Packet> decode_packet(const Frame& f);
// Parses a kHello payload; nullopt if malformed or not in [0, n).
std::optional<int> decode_hello(const Frame& f, int n);

// Incremental stream decoder: feed() bytes as they arrive, next() pops
// delimited frames.  Once `broken()` — an undelimitable length prefix —
// the decoder refuses all further input; the owner resets the connection.
class FrameDecoder {
 public:
  // Appends raw stream bytes.  Returns false (and consumes nothing) once
  // the stream is broken.
  bool feed(const std::uint8_t* data, std::size_t len);
  // Pops the next complete frame, if one is fully buffered.
  std::optional<Frame> next();

  [[nodiscard]] bool broken() const { return broken_; }
  // Bytes buffered but not yet delimited (tests).
  [[nodiscard]] std::size_t pending_bytes() const { return buf_.size() - pos_; }

 private:
  Bytes buf_;
  std::size_t pos_ = 0;  // consumed prefix of buf_
  bool broken_ = false;
};

}  // namespace svss::net
