// The transport seam: one narrow interface between the protocol stack and
// whatever moves packets between processes.
//
// Every layer above this header (core::Node, the coin/MW batching
// transports, the adversary strategies) speaks to the network through a
// Context, and a Context speaks to exactly one ITransport endpoint.  Two
// backends implement the seam:
//
//   * sim::Engine — the deterministic discrete-event simulator.  One
//     engine hosts all n endpoints (Engine::transport(id)); delivery runs
//     through the adversarial scheduler, and a run stays a pure function
//     of (processes, scheduler, seed).  This is the proof-carrying
//     reference backend: replay is byte-identical, and the equivalence
//     harness (tests/equivalence_common.hpp) pins any new backend or
//     framing against it.
//   * net::SocketTransport — real TCP sockets with epoll readiness loops,
//     length-prefixed frames reusing the existing Packet serialization,
//     and per-peer reconnect with backoff.  One endpoint per OS process;
//     examples/agreement_cluster and examples/coin_service run as
//     multi-process daemons on top of it.
//
// This header sits *below* both backends: it depends only on the wire
// message model (sim/message.hpp), carries no out-of-line code, and is the
// only thing a new backend must implement.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/message.hpp"

namespace svss {

// One process's sending/receiving endpoint.
class ITransport {
 public:
  // Inbound delivery sink: invoked once per received packet, on the
  // thread/loop that drives the backend.  Exactly one sink per endpoint.
  using Delivery = std::function<void(int from, Packet p)>;
  // Outbound fault-injection hook (the seam's interceptor attachment
  // point): runs on every packet this endpoint sends, before framing.
  // May mutate the packet per recipient; returning false drops it.
  using SendHook = std::function<bool(int to, Packet& p)>;

  virtual ~ITransport() = default;

  // Submits a packet to process `to` over the private channel self -> to.
  // Sending to self is allowed and is delivered like any other packet.
  virtual void send(int to, Packet p) = 0;
  // Convenience: one copy to every process, self included — the same
  // semantics Context::send_all always had.
  virtual void broadcast(const Packet& p) = 0;

  virtual void set_delivery(Delivery sink) = 0;
  virtual void set_send_hook(SendHook hook) = 0;

  [[nodiscard]] virtual int self() const = 0;
  [[nodiscard]] virtual int n() const = 0;
};

// ----------------------------------------------------------------------
// Transport configuration (RunnerConfig::transport, ServiceBuilder)
// ----------------------------------------------------------------------

// Which backend a Runner-driven experiment runs on.  Multi-process daemons
// do not appear here: they are built directly (core/service_builder.hpp)
// because a Runner owns all n slots of a run, while a daemon owns one.
enum class TransportKind : std::uint8_t {
  kSim,             // deterministic simulator (default; replayable)
  kSocketLoopback,  // n in-process endpoints over real TCP on 127.0.0.1,
                    // one thread per endpoint (non-deterministic schedule)
};

// Named wire framings for the two batching layers.  kBatched is the
// measured default (PR 4/5); kPerSession is the unbatched reference
// framing the equivalence harness compares against.
enum class Framing : std::uint8_t {
  kPerSession,  // one message / RBC instance per protocol session
  kBatched,     // shared envelopes (coin dealing batch, MW group coalesce)
};

// The transport surface of a run, collapsed into one struct.  Framings are
// outbound-only knobs: envelopes are always understood inbound, so mixed
// fleets interoperate, and batched envelopes ride every backend
// untranslated — the socket framer serializes whatever Packet it is given.
struct TransportOptions {
  TransportKind kind = TransportKind::kSim;
  Framing coin_dealing = Framing::kBatched;
  Framing mw_children = Framing::kBatched;
  // Cross-instance agreement-vote coalescing (src/aba/vote_batch.hpp).
  Framing aba_votes = Framing::kBatched;
  // Per-slot override of mw_children (mixed-fleet experiments).
  std::map<int, Framing> mw_children_override;

  [[nodiscard]] bool batched_coin() const {
    return coin_dealing == Framing::kBatched;
  }
  [[nodiscard]] bool batched_votes() const {
    return aba_votes == Framing::kBatched;
  }
  [[nodiscard]] bool batched_mw(int slot) const {
    auto it = mw_children_override.find(slot);
    if (it != mw_children_override.end()) {
      return it->second == Framing::kBatched;
    }
    return mw_children == Framing::kBatched;
  }
};

}  // namespace svss
