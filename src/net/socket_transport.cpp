#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

namespace svss::net {

namespace {

volatile std::sig_atomic_t g_stop_flag = 0;

void on_stop_signal(int) { g_stop_flag = 1; }

}  // namespace

void install_stop_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: a blocked epoll_wait must wake
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

bool stop_requested() { return g_stop_flag != 0; }

void clear_stop_request() { g_stop_flag = 0; }

namespace {

// Reconnect backoff ceiling (the 100ms-doubling ladder tops out here).
constexpr int kMaxBackoffMs = 2000;

// epoll_event.data.u64 tag: role in the high bits, index in the low.
constexpr std::uint64_t kTagListen = 1ull << 62;
constexpr std::uint64_t kTagOut = 2ull << 62;
constexpr std::uint64_t kTagIn = 3ull << 62;
constexpr std::uint64_t kTagMask = 3ull << 62;

bool resolve(const Endpoint& ep, sockaddr_in& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const char* host = ep.host == "localhost" ? "127.0.0.1" : ep.host.c_str();
  return inet_pton(AF_INET, host, &addr.sin_addr) == 1;
}

void set_nodelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

SocketTransport::SocketTransport(int self, ClusterConfig cfg)
    : self_(self), cfg_(std::move(cfg)),
      out_(static_cast<std::size_t>(cfg_.n())) {}

SocketTransport::~SocketTransport() {
  for (auto& o : out_) {
    if (o.fd >= 0) ::close(o.fd);
  }
  for (auto& c : in_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epfd_ >= 0) ::close(epfd_);
}

bool SocketTransport::open() {
  epfd_ = epoll_create1(0);
  if (epfd_ < 0) return false;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  if (!resolve(cfg_.peers[static_cast<std::size_t>(self_)], addr)) return false;
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    return false;
  }
  if (::listen(listen_fd_, 128) < 0) return false;
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return false;
  }
  bound_port_ = ntohs(bound.sin_port);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kTagListen;
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) return false;
  // Dial everyone on the first poll.
  for (int p = 0; p < cfg_.n(); ++p) {
    out_[static_cast<std::size_t>(p)].next_attempt = Clock::now();
  }
  return true;
}

void SocketTransport::set_peer(int id, Endpoint ep) {
  cfg_.peers.at(static_cast<std::size_t>(id)) = std::move(ep);
  out_[static_cast<std::size_t>(id)].resolve_logged = false;
}

void SocketTransport::rebind_peer(int id, Endpoint ep) {
  set_peer(id, std::move(ep));
  OutPeer& o = out_[static_cast<std::size_t>(id)];
  if (o.fd >= 0) {
    epoll_ctl(epfd_, EPOLL_CTL_DEL, o.fd, nullptr);
    ::close(o.fd);
    o.fd = -1;
  }
  o.connecting = false;
  o.pos = o.frame_base;  // same discipline as drop_out
  o.backoff_ms = 100;    // fresh endpoint, fresh backoff ladder
  o.next_attempt = Clock::now();
}

std::size_t SocketTransport::pending_out_bytes(int id) const {
  const OutPeer& o = out_[static_cast<std::size_t>(id)];
  return o.buf.size() - o.frame_base;
}

int SocketTransport::peer_backoff_ms(int id) const {
  return out_[static_cast<std::size_t>(id)].backoff_ms;
}

// ----------------------------------------------------------------------
// Sending
// ----------------------------------------------------------------------

void SocketTransport::meter_send(const Packet& p) {
  metrics_.packets_sent++;
  std::size_t bytes = p.wire_size();
  metrics_.bytes_sent += bytes;
  metrics_.note_type(p.is_rb ? p.bid.slot : p.app.type, bytes);
  if (p.is_rb) {
    metrics_.rb_transport_packets++;
  } else {
    metrics_.direct_packets++;
  }
}

void SocketTransport::queue_frame(int to, const Packet& p) {
  meter_send(p);
  if (to == self_) {
    local_.push_back(p);
    return;
  }
  append_packet_frame(out_[static_cast<std::size_t>(to)].buf, p);
  trim_out(to);
}

void SocketTransport::send(int to, Packet p) {
  if (hook_ && !hook_(to, p)) return;
  queue_frame(to, p);
}

void SocketTransport::broadcast(const Packet& p) {
  for (int to = 0; to < cfg_.n(); ++to) {
    // Per-recipient hook on a per-recipient copy: equivocation through the
    // seam mutates one leg without touching the others, exactly like the
    // sim engine's interceptor.
    Packet copy = p;
    if (hook_ && !hook_(to, copy)) continue;
    queue_frame(to, copy);
  }
}

// ----------------------------------------------------------------------
// Outbound connections
// ----------------------------------------------------------------------

void SocketTransport::start_connect(int peer) {
  OutPeer& o = out_[static_cast<std::size_t>(peer)];
  sockaddr_in addr;
  if (!resolve(cfg_.peers[static_cast<std::size_t>(peer)], addr)) {
    // A bad endpoint will not fix itself at dial cadence: a refused dial
    // climbs the backoff ladder, but an unresolvable one used to restart
    // it at 100 ms and log nothing, which is a silent retry storm.  Jump
    // straight to the capped tier and say so once.
    if (!o.resolve_logged) {
      o.resolve_logged = true;
      std::fprintf(stderr,
                   "svss-net[%d]: cannot resolve peer %d endpoint %s:%u; "
                   "retrying at capped backoff\n",
                   self_, peer,
                   cfg_.peers[static_cast<std::size_t>(peer)].host.c_str(),
                   cfg_.peers[static_cast<std::size_t>(peer)].port);
    }
    o.backoff_ms = kMaxBackoffMs;
    drop_out(peer);
    return;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    drop_out(peer);
    return;
  }
  set_nodelay(fd);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    ::close(fd);
    drop_out(peer);
    return;
  }
  o.fd = fd;
  o.connecting = rc < 0;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.u64 = kTagOut | static_cast<std::uint64_t>(peer);
  epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  if (!o.connecting) finish_connect(peer);
}

// Level-triggered EPOLLOUT on an idle connected socket would wake every
// epoll_wait immediately, so write-interest is armed only while the
// connect is in flight or a flush hit EAGAIN.
void SocketTransport::update_out_events(int peer, bool want_write) {
  OutPeer& o = out_[static_cast<std::size_t>(peer)];
  if (o.fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = kTagOut | static_cast<std::uint64_t>(peer);
  epoll_ctl(epfd_, EPOLL_CTL_MOD, o.fd, &ev);
}

void SocketTransport::finish_connect(int peer) {
  OutPeer& o = out_[static_cast<std::size_t>(peer)];
  o.connecting = false;
  o.backoff_ms = 100;
  update_out_events(peer, false);
  // On a fresh connection nothing is flushed past the last frame boundary
  // (drop_out rewinds pos there), so the HELLO slots in right at it and
  // precedes every frame this connection will carry.
  assert(o.pos == o.frame_base);
  Bytes hello;
  append_hello_frame(hello, self_);
  o.buf.insert(o.buf.begin() + static_cast<std::ptrdiff_t>(o.frame_base),
               hello.begin(), hello.end());
  flush_out(peer);
}

void SocketTransport::drop_out(int peer) {
  OutPeer& o = out_[static_cast<std::size_t>(peer)];
  if (o.fd >= 0) {
    epoll_ctl(epfd_, EPOLL_CTL_DEL, o.fd, nullptr);
    ::close(o.fd);
    o.fd = -1;
  }
  o.connecting = false;
  // A partial write leaves pos mid-frame.  The next connection's receiver
  // starts a fresh frame stream, so resend must restart at a frame
  // boundary — resuming mid-frame would feed it a frame *tail* as a
  // length prefix and latch a stream error.
  o.pos = o.frame_base;
  o.next_attempt = Clock::now() + std::chrono::milliseconds(o.backoff_ms);
  o.backoff_ms = std::min(o.backoff_ms * 2, kMaxBackoffMs);
}

// Advances frame_base past every completely flushed frame.  Frames are
// self-delimiting ([u32 len][len bytes]), so the boundary is recoverable
// from buf alone.
void SocketTransport::advance_frame_base(OutPeer& o) {
  while (o.frame_base + 4 <= o.pos) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(o.buf[o.frame_base +
                                              static_cast<std::size_t>(i)])
             << (8 * i);
    }
    std::size_t frame = 4 + static_cast<std::size_t>(len);
    if (o.frame_base + frame > o.pos) break;
    o.frame_base += frame;
  }
}

// Enforces the per-peer cap on unflushed outbound bytes, shedding whole
// frames oldest-first.  Only frames entirely beyond `pos` are candidates:
// anything at or before `pos` is (partially) in the kernel already, and
// cutting mid-frame would desync the receiver's length-prefixed stream —
// the same discipline frame_base preserves across reconnects.  The HELLO
// a dead connection may have left at frame_base is skipped so the next
// successful dial still opens with it.
void SocketTransport::trim_out(int peer) {
  OutPeer& o = out_[static_cast<std::size_t>(peer)];
  if (o.buf.size() - o.frame_base <= out_buf_cap_) return;
  auto frame_len = [&o](std::size_t off) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(o.buf[off + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    return 4 + static_cast<std::size_t>(len);
  };
  // First frame boundary at or past the flushed prefix.
  std::size_t cut = o.frame_base;
  while (cut < o.pos) cut += frame_len(cut);
  if (cut + 5 <= o.buf.size() &&
      o.buf[cut + 4] == static_cast<std::uint8_t>(FrameKind::kHello)) {
    cut += frame_len(cut);
  }
  // Shed oldest droppable frames until under the cap, but never the newest
  // frame: a single frame bigger than the cap stays queued (soft bound).
  std::size_t cut_end = cut;
  std::uint64_t shed_frames = 0;
  while (o.buf.size() - o.frame_base - (cut_end - cut) > out_buf_cap_) {
    std::size_t next = cut_end + frame_len(cut_end);
    if (next >= o.buf.size()) break;
    cut_end = next;
    ++shed_frames;
  }
  if (cut_end == cut) return;
  metrics_.out_dropped_frames += shed_frames;
  metrics_.out_dropped_bytes += cut_end - cut;
  o.buf.erase(o.buf.begin() + static_cast<std::ptrdiff_t>(cut),
              o.buf.begin() + static_cast<std::ptrdiff_t>(cut_end));
}

void SocketTransport::flush_out(int peer) {
  OutPeer& o = out_[static_cast<std::size_t>(peer)];
  if (o.fd < 0 || o.connecting) return;
  while (o.pos < o.buf.size()) {
    ssize_t wrote = ::write(o.fd, o.buf.data() + o.pos, o.buf.size() - o.pos);
    if (wrote > 0) {
      o.pos += static_cast<std::size_t>(wrote);
      advance_frame_base(o);
      continue;
    }
    if (wrote < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      update_out_events(peer, true);
      return;
    }
    if (wrote < 0 && errno == EINTR) continue;
    // Connection died: unflushed frames stay in buf and go out on the
    // next successful dial.
    drop_out(peer);
    return;
  }
  if (o.pos == o.buf.size()) {
    update_out_events(peer, false);
    if (o.pos > (1u << 16)) {
      o.buf.clear();
      o.pos = 0;
      o.frame_base = 0;
    }
  }
}

// ----------------------------------------------------------------------
// Inbound connections
// ----------------------------------------------------------------------

void SocketTransport::handle_accept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN or transient error: accept again later
    set_nodelay(fd);
    std::size_t idx = in_.size();
    for (std::size_t i = 0; i < in_.size(); ++i) {
      if (in_[i].fd < 0) {
        idx = i;
        break;
      }
    }
    if (idx == in_.size()) in_.emplace_back();
    in_[idx] = InConn{};
    in_[idx].fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kTagIn | static_cast<std::uint64_t>(idx);
    epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void SocketTransport::close_inbound(std::size_t idx) {
  InConn& c = in_[idx];
  if (c.fd >= 0) {
    epoll_ctl(epfd_, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
  }
  c = InConn{};
  c.fd = -1;
}

void SocketTransport::handle_inbound(std::size_t idx) {
  InConn& c = in_[idx];
  std::uint8_t chunk[65536];
  for (;;) {
    ssize_t got = ::read(c.fd, chunk, sizeof(chunk));
    if (got < 0 && errno == EINTR) continue;
    if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (got <= 0) {
      close_inbound(idx);
      return;
    }
    c.decoder.feed(chunk, static_cast<std::size_t>(got));
    while (auto frame = c.decoder.next()) {
      if (c.peer < 0) {
        // First frame must identify the dialer; anything else is a
        // protocol violation and the connection is refused.
        auto id = decode_hello(*frame, cfg_.n());
        if (!id || *id == self_) {
          close_inbound(idx);
          return;
        }
        c.peer = *id;
        continue;
      }
      if (auto p = decode_packet(*frame)) {
        deliver(c.peer, std::move(*p));
      }
      // Well-framed garbage: dropped alone, stream continues.
    }
    if (c.decoder.broken()) {
      // Undelimitable stream: reset the connection (the peer re-dials).
      close_inbound(idx);
      return;
    }
  }
}

// ----------------------------------------------------------------------
// Delivery and the loop
// ----------------------------------------------------------------------

void SocketTransport::deliver(int from, Packet p) {
  metrics_.packets_delivered++;
  if (sink_) sink_(from, std::move(p));
}

void SocketTransport::drain_local() {
  // Deliveries may enqueue further self-sends; drain until quiescent.
  while (!local_.empty()) {
    Packet p = std::move(local_.front());
    local_.pop_front();
    deliver(self_, std::move(p));
  }
}

int SocketTransport::epoll_timeout(int wait_ms) const {
  auto now = Clock::now();
  int timeout = wait_ms;
  for (int p = 0; p < cfg_.n(); ++p) {
    if (p == self_) continue;
    const OutPeer& o = out_[static_cast<std::size_t>(p)];
    if (o.fd >= 0) continue;
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  o.next_attempt - now)
                  .count();
    timeout = std::min<long long>(timeout, std::max<long long>(ms, 0));
  }
  return timeout;
}

void SocketTransport::shutdown() {
  if (closed_) return;
  // Give each live connection one last chance to drain its queue — a
  // decided replica often holds the tail of its final RB echoes here.
  for (int p = 0; p < cfg_.n(); ++p) {
    OutPeer& o = out_[static_cast<std::size_t>(p)];
    if (o.fd >= 0 && !o.connecting && o.pos < o.buf.size()) flush_out(p);
  }
  closed_ = true;  // after the flush: flush_out may drop_out -> redial arm
  for (auto& o : out_) {
    if (o.fd >= 0) {
      ::close(o.fd);  // close() detaches the fd from epfd_ too
      o.fd = -1;
    }
  }
  for (auto& c : in_) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  local_.clear();
}

void SocketTransport::poll(int wait_ms) {
  if (closed_) return;
  drain_local();
  auto now = Clock::now();
  for (int p = 0; p < cfg_.n(); ++p) {
    if (p == self_) continue;
    OutPeer& o = out_[static_cast<std::size_t>(p)];
    if (o.fd < 0 && now >= o.next_attempt) start_connect(p);
    if (o.fd >= 0 && !o.connecting && o.pos < o.buf.size()) flush_out(p);
  }
  epoll_event evs[64];
  int k = epoll_wait(epfd_, evs, 64, epoll_timeout(wait_ms));
  for (int i = 0; i < k; ++i) {
    std::uint64_t tag = evs[i].data.u64 & kTagMask;
    auto idx = evs[i].data.u64 & ~kTagMask;
    if (tag == kTagListen) {
      handle_accept();
    } else if (tag == kTagOut) {
      int peer = static_cast<int>(idx);
      OutPeer& o = out_[static_cast<std::size_t>(peer)];
      if (o.fd < 0) continue;
      if (evs[i].events & (EPOLLERR | EPOLLHUP)) {
        drop_out(peer);
        continue;
      }
      if (o.connecting && (evs[i].events & EPOLLOUT)) {
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(o.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          drop_out(peer);
          continue;
        }
        finish_connect(peer);
      } else if (evs[i].events & EPOLLOUT) {
        flush_out(peer);
      }
      if (o.fd >= 0 && (evs[i].events & EPOLLIN)) {
        // Peers never send data on our dialed connections; readable here
        // means FIN or error.
        std::uint8_t sink[4096];
        ssize_t got = ::read(o.fd, sink, sizeof(sink));
        if (got == 0 || (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                         errno != EINTR)) {
          drop_out(peer);
        }
      }
    } else if (tag == kTagIn) {
      if (in_[idx].fd >= 0) handle_inbound(idx);
    }
  }
  drain_local();
}

bool SocketTransport::run_until(const std::function<bool()>& done,
                                int timeout_ms) {
  auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    drain_local();
    if (done()) return true;
    if (closed_ || stop_requested()) return false;
    auto now = Clock::now();
    if (now >= deadline) return done();
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - now)
                    .count();
    poll(static_cast<int>(std::min<long long>(left, 50)));
  }
}

}  // namespace svss::net
