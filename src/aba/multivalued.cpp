#include "aba/multivalued.hpp"

#include <map>

namespace svss {

MvbaSession::MvbaSession(MvbaHost& host, int self, int n, int t,
                         Fp default_value)
    : host_(host), self_(self), n_(n), t_(t), default_value_(default_value) {}

Bytes MvbaSession::encode_proposal(Fp value) {
  Writer w;
  w.field(value);
  return std::move(w).take();
}

std::optional<Fp> MvbaSession::decode_proposal(const Bytes& raw) {
  Reader r(raw);
  auto v = r.field();
  if (!v || !r.exhausted()) return std::nullopt;
  return v;
}

void MvbaSession::start(Context& ctx, Fp proposal) {
  if (started_) return;
  started_ = true;
  host_.mvba_start_acs(ctx, encode_proposal(proposal));
}

void MvbaSession::on_acs_output(
    Context& ctx, const std::vector<std::pair<int, Bytes>>& subset) {
  (void)ctx;
  if (decision_) return;
  // Plurality of the agreed values, ties broken by the smallest value.
  // The subset is identical at every honest process (ACS agreement), so
  // this deterministic rule preserves agreement.
  std::map<std::uint64_t, int> counts;
  for (const auto& [j, raw] : subset) {
    if (auto v = decode_proposal(raw)) counts[v->value()]++;
  }
  if (counts.empty()) {
    decision_ = default_value_;
    return;
  }
  std::uint64_t best_value = 0;
  int best_count = 0;
  for (const auto& [v, c] : counts) {
    if (c > best_count) {  // map order makes the first maximum smallest
      best_count = c;
      best_value = v;
    }
  }
  decision_ = Fp(static_cast<std::int64_t>(best_value));
}

}  // namespace svss
