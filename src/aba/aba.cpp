#include "aba/aba.hpp"

namespace svss {

namespace {

constexpr std::uint32_t kMaxRound = kCoinRoundsPerInstance - 1;

SessionId aba_sid(std::uint32_t instance) {
  return SessionId{SessionPath::kAba, 0, -1, -1, -1, 0, instance};
}

Message vote_msg(std::uint32_t instance, std::uint32_t round, int subtype,
                 int payload) {
  Message m;
  m.sid = aba_sid(instance);
  m.type = MsgType::kAbaVote;
  m.a = static_cast<std::int16_t>(round);
  m.b = static_cast<std::int16_t>(subtype);
  m.ints.push_back(payload);
  return m;
}

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

AbaSession::AbaSession(AbaHost& host, int self, int n, int t, CoinMode mode,
                       std::uint64_t common_seed, std::uint32_t instance)
    : host_(host), self_(self), n_(n), t_(t), mode_(mode),
      common_seed_(common_seed), instance_(instance) {}

AbaSession::Round& AbaSession::round_state(std::uint32_t r) {
  return rounds_[r];
}

// CONF sets over {0,1} travel as a 2-bit code.
int AbaSession::encode_set(const std::set<int>& s) {
  int code = 0;
  for (int v : s) code |= 1 << v;
  return code;
}

std::optional<std::set<int>> AbaSession::decode_set(int code) {
  if (code < 1 || code > 3) return std::nullopt;
  std::set<int> s;
  if (code & 1) s.insert(0);
  if (code & 2) s.insert(1);
  return s;
}

AbaSession::RoundSnapshot AbaSession::snapshot(std::uint32_t r) const {
  RoundSnapshot s;
  auto it = rounds_.find(r);
  if (it == rounds_.end()) return s;
  const Round& st = it->second;
  s.est_senders[0] = st.est_from[0].size();
  s.est_senders[1] = st.est_from[1].size();
  s.bin[0] = st.bin[0];
  s.bin[1] = st.bin[1];
  s.aux_sent = st.aux_sent;
  s.aux_senders = st.aux_from.size();
  s.v_frozen = st.v.has_value();
  s.conf_sent = st.conf_sent;
  s.conf_senders = st.conf_from.size();
  s.conf_frozen = st.conf_frozen;
  s.has_coin = st.coin.has_value();
  return s;
}

void AbaSession::start(Context& ctx, int input) {
  if (started_) return;
  started_ = true;
  est_ = input != 0 ? 1 : 0;
  enter_round(ctx, 1);
}

void AbaSession::enter_round(Context& ctx, std::uint32_t r) {
  round_ = r;
  Round& st = round_state(r);
  send_est(ctx, r, est_);
  if (!st.coin_started) {
    st.coin_started = true;
    request_coin(ctx, r);
  }
  progress(ctx);
}

void AbaSession::request_coin(Context& ctx, std::uint32_t r) {
  Round& st = round_state(r);
  switch (mode_) {
    case CoinMode::kSvss:
      host_.start_coin(ctx, instance_, r);
      break;
    case CoinMode::kLocal:
      st.coin = ctx.rng().next_bool() ? 1 : 0;
      break;
    case CoinMode::kIdealCommon:
      st.coin = static_cast<int>(
          mix64(common_seed_ ^ (instance_ * kCoinRoundsPerInstance + r)) & 1);
      break;
  }
}

void AbaSession::send_est(Context& ctx, std::uint32_t r, int v) {
  Round& st = round_state(r);
  if (st.est_sent[v]) return;
  st.est_sent[v] = true;
  for (int to = 0; to < n_; ++to) {
    host_.send_direct(ctx, to, vote_msg(instance_, r, 0, v));
  }
}

void AbaSession::on_direct(Context& ctx, int from, const Message& m) {
  if (m.type != MsgType::kAbaVote || m.ints.size() != 1) return;
  if (m.a < 1 || static_cast<std::uint32_t>(m.a) > kMaxRound) return;
  auto r = static_cast<std::uint32_t>(m.a);
  int v = m.ints[0];
  switch (m.b) {
    case 0:  // EST
      if (v != 0 && v != 1) return;
      round_state(r).est_from[v].insert(from);
      break;
    case 1:  // AUX
      if (v != 0 && v != 1) return;
      round_state(r).aux_from.emplace(from, v);
      break;
    case 3:  // DECIDE
      if (v != 0 && v != 1) return;
      decide_from_[v].insert(from);
      if (static_cast<int>(decide_from_[v].size()) >= t_ + 1) {
        decide(ctx, v);
      }
      break;
    default:
      return;
  }
  if (started_ && r == round_) progress(ctx);
}

void AbaSession::on_broadcast(Context& ctx, int origin, const Message& m) {
  if (m.type != MsgType::kAbaVote || m.b != 2 || m.ints.size() != 1) return;
  if (m.a < 1 || static_cast<std::uint32_t>(m.a) > kMaxRound) return;
  auto set = decode_set(m.ints[0]);
  if (!set) return;
  auto r = static_cast<std::uint32_t>(m.a);
  round_state(r).conf_from.emplace(origin, std::move(*set));
  if (started_ && r == round_) progress(ctx);
}

void AbaSession::on_coin(Context& ctx, std::uint32_t round, int bit) {
  if (mode_ != CoinMode::kSvss) return;
  if (round < 1 || round > kMaxRound) return;
  round_state(round).coin = bit != 0 ? 1 : 0;
  if (started_ && round == round_) progress(ctx);
}

void AbaSession::progress(Context& ctx) {
  // Rounds can advance several times per delivery (buffered future-round
  // messages may already satisfy the next round's thresholds).
  for (;;) {
    std::uint32_t r = round_;
    Round& st = round_state(r);
    if (st.advanced) return;

    // Stage 1 — BV-broadcast: relay at t+1, accept into bin at 2t+1.
    for (int v = 0; v < 2; ++v) {
      if (static_cast<int>(st.est_from[v].size()) >= t_ + 1) {
        send_est(ctx, r, v);
      }
      if (!st.bin[v] &&
          static_cast<int>(st.est_from[v].size()) >= 2 * t_ + 1) {
        st.bin[v] = true;
        if (!st.aux_sent) {
          st.aux_sent = true;
          for (int to = 0; to < n_; ++to) {
            host_.send_direct(ctx, to, vote_msg(instance_, r, 1, v));
          }
        }
      }
    }

    // Stage 2 — AUX: freeze V as the union of n-t justified AUX values.
    if (!st.v && st.aux_sent) {
      std::set<int> vals;
      int count = 0;
      for (const auto& [sender, v] : st.aux_from) {
        if (st.bin[v]) {
          ++count;
          vals.insert(v);
        }
      }
      if (count >= n_ - t_) st.v = std::move(vals);
    }

    // Stage 3 — CONF via RB.
    if (st.v && !st.conf_sent) {
      st.conf_sent = true;
      host_.rb_broadcast(ctx, vote_msg(instance_, r, 2, encode_set(*st.v)));
    }
    if (!st.v) return;
    if (!st.conf_frozen) {
      std::vector<const std::set<int>*> sample;
      for (const auto& [origin, set] : st.conf_from) {
        bool justified = true;
        for (int v : set) {
          if (!st.bin[v]) {
            justified = false;
            break;
          }
        }
        if (justified) sample.push_back(&set);
      }
      if (static_cast<int>(sample.size()) < n_ - t_) return;
      st.conf_frozen = true;
      for (const auto* s : sample) {
        if (s->size() == 1) st.singleton[*s->begin()]++;
      }
    }

    // Tier rule on the frozen sample.  Re-entered when the coin arrives
    // later than the CONF quota.
    bool have_est = false;
    for (int v = 0; v < 2; ++v) {
      if (st.singleton[v] >= 2 * t_ + 1) {
        decide(ctx, v);
        est_ = v;
        have_est = true;
      } else if (st.singleton[v] >= t_ + 1) {
        est_ = v;
        have_est = true;
      }
    }
    if (!have_est) {
      if (!st.coin) return;  // wait for the round's coin
      est_ = *st.coin;
    }
    st.advanced = true;
    enter_round(ctx, r + 1);
    return;  // enter_round already re-ran progress for the new round
  }
}

void AbaSession::decide(Context& ctx, int value) {
  if (decision_) return;
  decision_ = value;
  decision_round_ = round_;
  ctx.log().record(Event{EventKind::kAbaDecide, self_,
                         static_cast<int>(round_), aba_sid(instance_), value,
                         true});
  host_.aba_decided(ctx, value, round_, instance_);
  if (!decide_sent_) {
    decide_sent_ = true;
    for (int to = 0; to < n_; ++to) {
      host_.send_direct(ctx, to, vote_msg(instance_, round_, 3, value));
    }
  }
}

}  // namespace svss
