// Ben-Or's 1983 agreement protocol — the classic local-coin baseline.
//
// This is the comparison point the paper's introduction starts from:
// almost-surely terminating, but only resilient for n > 5t, and with an
// expected number of rounds exponential in n (the honest local coins have
// to line up).  The Bracha-84 baseline (optimal resilience, still
// exponential) is AbaSession with CoinMode::kLocal; see aba.hpp.
//
// Round structure (plain point-to-point sends, no broadcast primitive):
//   Phase R: send (R, r, est); collect n - t.  If more than (n + t)/2 carry
//            the same v, propose v, else propose "?".
//   Phase P: send (P, r, proposal); collect n - t.  If >= 2t+1 carry the
//            same v != ?, decide v; if >= t+1, est := v; else est := a
//            private random bit.
// Deciders announce DECIDE(v); t+1 matching announcements let others adopt.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

class BenOrSession {
 public:
  // `send` delivers a direct message (the only primitive Ben-Or needs).
  using SendFn = std::function<void(Context&, int to, Message)>;
  BenOrSession(SendFn send, int self, int n, int t);

  void start(Context& ctx, int input);
  void on_direct(Context& ctx, int from, const Message& m);

  [[nodiscard]] bool decided() const { return decision_.has_value(); }
  [[nodiscard]] int decision() const { return *decision_; }
  [[nodiscard]] std::uint32_t decision_round() const {
    return decision_round_;
  }
  [[nodiscard]] std::uint32_t current_round() const { return round_; }

 private:
  static constexpr int kQuestion = 2;  // the "?" proposal

  struct Round {
    std::map<int, int> r_from;  // sender -> first R value
    std::map<int, int> p_from;  // sender -> first P value
    bool r_sent = false;
    bool p_sent = false;
    bool advanced = false;
  };

  void progress(Context& ctx);
  void enter_round(Context& ctx, std::uint32_t r);
  void decide(Context& ctx, int value);

  SendFn send_;
  int self_;
  int n_;
  int t_;
  bool started_ = false;
  int est_ = 0;
  std::uint32_t round_ = 0;
  std::map<std::uint32_t, Round> rounds_;
  std::optional<int> decision_;
  std::uint32_t decision_round_ = 0;
  bool decide_sent_ = false;
  std::map<int, std::set<int>> decide_from_;
};

}  // namespace svss
