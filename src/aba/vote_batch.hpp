// Cross-instance ABA vote batching.
//
// Once agreement rides a multiplexed session space (SessionId::instance),
// a node running k concurrent instances emits k independent EST/AUX/DECIDE
// fan-outs — and k CONF reliable broadcasts — per delivery cascade.  At
// n = 64 under the ideal coin, essentially every wire byte is an
// `aba-vote`; per-instance framing pays the fixed per-packet cost k times
// for votes that leave the same node in the same cascade.
//
// This transport coalesces that traffic the way the PR-4 coin batcher
// coalesces dealing and the PR-5 group transport coalesces MW children: a
// capture window brackets one delivery cascade, collects the per-session
// votes the sessions hand to their host, and flushes them at window close
// as
//
//  * kAbaBatchVote (direct): all captured EST/AUX/DECIDE votes bound for
//    one recipient, concatenated as flat (instance, round, subtype, value)
//    runs.  One envelope replaces up to k * rounds per-session messages.
//  * kAbaBatchConf (RB): the captured CONF broadcasts of the cascade, as
//    flat (instance, round, setcode) runs in one RBC instance per flush.
//    The shared echo/ready rounds replace one RBC instance per (instance,
//    round) CONF.
//
// Flushing happens in the same delivery that produced the votes — nothing
// is ever withheld across deliveries — so this is framing, never
// scheduling policy.  A window that captured exactly one vote for a
// recipient (or one CONF) re-emits the original per-session message: the
// envelope framing only kicks in when there is something to share.
//
// Receivers unpack an envelope into its per-session kAbaVote messages and
// feed each through the normal per-instance routing, so every correctness
// property keeps quantifying over individual AbaSessions (which re-apply
// full vote validation) and batched/unbatched processes interoperate in
// one run.  Envelope sids live in the kAba variant-4 space with
// instance 0; CONF envelopes consume a per-node flush sequence in the
// counter slot so each flush is its own RBC instance.  Byzantine caveat
// (mirroring the PR-5 group transport): a faulty node can spread
// conflicting CONF sets for one (instance, round) across distinct flush
// envelopes, so batched CONF degrades from reliable-broadcast to
// plain-broadcast equivocation semantics — agreement safety never rests
// on CONF non-equivocation (the tier rule tolerates arbitrary CONF sets
// from t faulty processes), so this widens no attack surface.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

class AbaVoteBatcher {
 public:
  // Sink receiving the per-session messages of an unpacked envelope.
  using SubMessageSink =
      std::function<void(Context&, int sender, const Message&, bool via_rb)>;
  // Emission hooks used at window close: `broadcast` RBs a batch envelope,
  // `send` delivers a direct envelope to one recipient.
  struct EmitFns {
    std::function<void(Context&, const Message&)> broadcast;
    std::function<void(Context&, int to, Message)> send;
  };

  AbaVoteBatcher(int self, int n);

  // True for envelope types this transport owns.
  static bool is_batch_type(MsgType type);

  // --- sender side -------------------------------------------------
  // The window brackets one delivery cascade (core::Node opens it around
  // on_packet/start and closes it before returning to the engine).
  void open_window();
  [[nodiscard]] bool window_open() const { return window_open_; }
  // Collects one per-session vote while the window is open; returns false
  // (caller sends normally) for anything but a well-formed kAbaVote in the
  // variant-0 agreement space.
  bool capture_broadcast(const Message& m);
  bool capture_direct(int to, const Message& m);
  // Closes a window that captured nothing, skipping the emit plumbing —
  // the common case for cascades of non-agreement traffic.  Returns false
  // (and leaves the window open) when there are captures to flush.
  bool close_window_if_empty();
  // Emits the captured envelopes (recipients ascending, CONF last) and
  // closes the window.  Single-vote recipients get the original
  // per-session message instead of an envelope.
  void close_window(Context& ctx, const EmitFns& emit);

  // --- receiver side -----------------------------------------------
  // Splits an envelope into its per-session kAbaVote messages and hands
  // each to `sink`.  A malformed envelope — wrong transport class, bad sid
  // shape, ragged runs, out-of-range rounds or subtypes — is dropped
  // whole, mirroring RBC's treatment of garbage; the sub-messages then
  // re-enter the exact validation AbaSession applies to unbatched votes.
  static void unpack(Context& ctx, int sender, const Message& m, bool via_rb,
                     const SubMessageSink& sink);

 private:
  // One captured direct vote: the flat-run fields plus the original
  // message for the single-vote fallback.
  struct PendingVote {
    std::uint32_t instance;
    std::uint32_t round;
    int subtype;
    int value;
  };
  struct PendingConf {
    std::uint32_t instance;
    std::uint32_t round;
    int setcode;
  };

  int self_;
  int n_;

  bool window_open_ = false;
  std::vector<std::vector<PendingVote>> direct_;  // per recipient
  std::vector<PendingConf> confs_;                // capture order
  std::size_t captured_ = 0;
  // Per-flush RBC instance counter for CONF envelopes, persisted across
  // windows: each flush is its own RBC instance (sid.counter), so a
  // straggler flush never collides with an earlier one.  Monotone and
  // never reset — a reused counter would make an honest node equivocate
  // against itself.
  std::uint32_t flush_seq_ = 0;
};

}  // namespace svss
