#include "aba/local_coin_aba.hpp"

namespace svss {

namespace {

constexpr std::uint32_t kMaxRound = 1u << 20;

SessionId benor_sid() {
  return SessionId{SessionPath::kAba, 1, -1, -1, -1, 0};
}

// Subtypes: 10 = R-phase, 11 = P-phase, 13 = DECIDE.
Message benor_msg(std::uint32_t round, int subtype, int payload) {
  Message m;
  m.sid = benor_sid();
  m.type = MsgType::kAbaVote;
  m.a = static_cast<std::int16_t>(round % 32768);
  m.b = static_cast<std::int16_t>(subtype);
  m.ints.push_back(payload);
  m.ints.push_back(static_cast<int>(round));
  return m;
}

}  // namespace

BenOrSession::BenOrSession(SendFn send, int self, int n, int t)
    : send_(std::move(send)), self_(self), n_(n), t_(t) {}

void BenOrSession::start(Context& ctx, int input) {
  if (started_) return;
  started_ = true;
  est_ = input != 0 ? 1 : 0;
  enter_round(ctx, 1);
}

void BenOrSession::enter_round(Context& ctx, std::uint32_t r) {
  round_ = r;
  Round& st = rounds_[r];
  if (!st.r_sent) {
    st.r_sent = true;
    for (int to = 0; to < n_; ++to) {
      send_(ctx, to, benor_msg(r, 10, est_));
    }
  }
  progress(ctx);
}

void BenOrSession::on_direct(Context& ctx, int from, const Message& m) {
  if (m.type != MsgType::kAbaVote || m.ints.size() != 2) return;
  auto r = static_cast<std::uint32_t>(m.ints[1]);
  if (r < 1 || r > kMaxRound) return;
  int v = m.ints[0];
  switch (m.b) {
    case 10:
      if (v != 0 && v != 1) return;
      rounds_[r].r_from.emplace(from, v);
      break;
    case 11:
      if (v != 0 && v != 1 && v != kQuestion) return;
      rounds_[r].p_from.emplace(from, v);
      break;
    case 13:
      if (v != 0 && v != 1) return;
      decide_from_[v].insert(from);
      if (static_cast<int>(decide_from_[v].size()) >= t_ + 1) {
        decide(ctx, v);
      }
      return;
    default:
      return;
  }
  if (started_ && r == round_) progress(ctx);
}

void BenOrSession::progress(Context& ctx) {
  Round& st = rounds_[round_];
  if (st.advanced) return;

  if (!st.p_sent) {
    if (static_cast<int>(st.r_from.size()) < n_ - t_) return;
    int count[2] = {0, 0};
    for (const auto& [sender, v] : st.r_from) count[v]++;
    int proposal = kQuestion;
    for (int v = 0; v < 2; ++v) {
      if (2 * count[v] > n_ + t_) proposal = v;
    }
    st.p_sent = true;
    for (int to = 0; to < n_; ++to) {
      send_(ctx, to, benor_msg(round_, 11, proposal));
    }
  }

  if (static_cast<int>(st.p_from.size()) < n_ - t_) return;
  int count[2] = {0, 0};
  for (const auto& [sender, v] : st.p_from) {
    if (v == 0 || v == 1) count[v]++;
  }
  bool have_est = false;
  for (int v = 0; v < 2; ++v) {
    if (count[v] >= 2 * t_ + 1) {
      decide(ctx, v);
      est_ = v;
      have_est = true;
    } else if (count[v] >= t_ + 1) {
      est_ = v;
      have_est = true;
    }
  }
  if (!have_est) est_ = ctx.rng().next_bool() ? 1 : 0;
  st.advanced = true;
  enter_round(ctx, round_ + 1);
}

void BenOrSession::decide(Context& ctx, int value) {
  if (decision_) return;
  decision_ = value;
  decision_round_ = round_;
  ctx.log().record(Event{EventKind::kAbaDecide, self_,
                         static_cast<int>(round_), benor_sid(), value, true});
  if (!decide_sent_) {
    decide_sent_ = true;
    for (int to = 0; to < n_; ++to) {
      send_(ctx, to, benor_msg(round_, 13, value));
    }
  }
}

}  // namespace svss
