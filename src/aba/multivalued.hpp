// Multivalued Byzantine agreement on top of the common-subset protocol.
//
// The classic Turpin-Coan reduction is *synchronous*: its candidate
// thresholds rely on every process sampling the same n messages, and under
// asynchronous n-t sampling two honest processes can justify different
// candidates (we observed exactly that in early benchmarks).  The robust
// asynchronous construction goes through ACS instead:
//
//  1. Every process proposes its value into the common-subset protocol
//     (RB proposal + n parallel binary agreements from the paper).
//  2. All honest processes obtain the *same* subset of >= n - t
//     (process, value) pairs.
//  3. Decide by plurality of the subset's values, ties broken by the
//     smallest value; if the subset is somehow empty of valid values,
//     fall back to the caller's default.
//
// Agreement is inherited from ACS (identical subsets).  Validity: with
// unanimous honest proposals v, the subset contains >= n - 2t >= t + 1
// copies of v and at most t anything-else, and n > 3t makes v the strict
// plurality.
#pragma once

#include <cstdint>
#include <optional>

#include "common/field.hpp"
#include "common/serialization.hpp"
#include "sim/engine.hpp"

namespace svss {

class MvbaHost {
 public:
  virtual ~MvbaHost() = default;
  // Joins the node's common-subset protocol with this proposal payload.
  virtual void mvba_start_acs(Context& ctx, Bytes proposal) = 0;
};

class MvbaSession {
 public:
  MvbaSession(MvbaHost& host, int self, int n, int t, Fp default_value);

  void start(Context& ctx, Fp proposal);
  // The agreed subset, routed by the host when ACS completes.
  void on_acs_output(Context& ctx,
                     const std::vector<std::pair<int, Bytes>>& subset);

  [[nodiscard]] bool decided() const { return decision_.has_value(); }
  [[nodiscard]] Fp decision() const { return *decision_; }

  // Proposal payload encoding (shared with tests).
  static Bytes encode_proposal(Fp value);
  static std::optional<Fp> decode_proposal(const Bytes& raw);

 private:
  MvbaHost& host_;
  int self_;
  int n_;
  int t_;
  Fp default_value_;
  bool started_ = false;
  std::optional<Fp> decision_;
};

}  // namespace svss
