#include "aba/vote_batch.hpp"

#include "aba/aba.hpp"

namespace svss {

namespace {

constexpr std::uint32_t kMaxRound = kCoinRoundsPerInstance - 1;

// The canonical vote sid (aba.cpp's aba_sid): variant 0, no roles,
// counter 0, instance in the instance slot.
bool canonical_vote_sid(const SessionId& sid) {
  return sid.path == SessionPath::kAba && sid.variant == 0 &&
         sid.owner == -1 && sid.moderator == -1 && sid.svss_dealer == -1 &&
         sid.counter == 0;
}

bool round_ok(int round) {
  return round >= 1 && static_cast<std::uint32_t>(round) <= kMaxRound;
}

SessionId envelope_sid(std::uint32_t counter) {
  return SessionId{SessionPath::kAba, 4, -1, -1, -1, counter, 0};
}

Message sub_vote(std::uint32_t instance, std::uint32_t round, int subtype,
                 int value) {
  Message m;
  m.sid = SessionId{SessionPath::kAba, 0, -1, -1, -1, 0, instance};
  m.type = MsgType::kAbaVote;
  m.a = static_cast<std::int16_t>(round);
  m.b = static_cast<std::int16_t>(subtype);
  m.ints.push_back(value);
  return m;
}

}  // namespace

AbaVoteBatcher::AbaVoteBatcher(int self, int n) : self_(self), n_(n) {
  direct_.resize(static_cast<std::size_t>(n));
}

bool AbaVoteBatcher::is_batch_type(MsgType type) {
  return type == MsgType::kAbaBatchVote || type == MsgType::kAbaBatchConf;
}

void AbaVoteBatcher::open_window() {
  window_open_ = true;
  captured_ = 0;
}

bool AbaVoteBatcher::capture_broadcast(const Message& m) {
  if (!window_open_ || m.type != MsgType::kAbaVote) return false;
  if (!canonical_vote_sid(m.sid)) return false;
  if (m.b != 2 || m.ints.size() != 1 || !m.vals.empty() || !m.blob.empty()) {
    return false;
  }
  if (!round_ok(m.a)) return false;
  confs_.push_back(PendingConf{m.sid.instance,
                               static_cast<std::uint32_t>(m.a), m.ints[0]});
  ++captured_;
  return true;
}

bool AbaVoteBatcher::capture_direct(int to, const Message& m) {
  if (!window_open_ || m.type != MsgType::kAbaVote) return false;
  if (to < 0 || to >= n_) return false;
  if (!canonical_vote_sid(m.sid)) return false;
  if (m.ints.size() != 1 || !m.vals.empty() || !m.blob.empty()) return false;
  if (m.b != 0 && m.b != 1 && m.b != 3) return false;
  if (!round_ok(m.a)) return false;
  direct_[static_cast<std::size_t>(to)].push_back(
      PendingVote{m.sid.instance, static_cast<std::uint32_t>(m.a), m.b,
                  m.ints[0]});
  ++captured_;
  return true;
}

bool AbaVoteBatcher::close_window_if_empty() {
  if (captured_ != 0) return false;
  window_open_ = false;
  return true;
}

void AbaVoteBatcher::close_window(Context& ctx, const EmitFns& emit) {
  window_open_ = false;
  for (int to = 0; to < n_; ++to) {
    std::vector<PendingVote>& votes = direct_[static_cast<std::size_t>(to)];
    if (votes.empty()) continue;
    if (votes.size() == 1) {
      // A lone vote gains nothing from envelope framing; re-emit the
      // per-session message so single-instance runs keep their exact
      // unbatched wire image.
      const PendingVote& v = votes[0];
      emit.send(ctx, to, sub_vote(v.instance, v.round, v.subtype, v.value));
    } else {
      Message env;
      env.sid = envelope_sid(0);
      env.type = MsgType::kAbaBatchVote;
      env.ints.reserve(votes.size() * 4);
      for (const PendingVote& v : votes) {
        env.ints.push_back(static_cast<int>(v.instance));
        env.ints.push_back(static_cast<int>(v.round));
        env.ints.push_back(v.subtype);
        env.ints.push_back(v.value);
      }
      emit.send(ctx, to, std::move(env));
    }
    votes.clear();
  }
  if (!confs_.empty()) {
    if (confs_.size() == 1) {
      const PendingConf& c = confs_[0];
      emit.broadcast(ctx, sub_vote(c.instance, c.round, 2, c.setcode));
    } else {
      Message env;
      env.sid = envelope_sid(flush_seq_++);
      env.type = MsgType::kAbaBatchConf;
      env.ints.reserve(confs_.size() * 3);
      for (const PendingConf& c : confs_) {
        env.ints.push_back(static_cast<int>(c.instance));
        env.ints.push_back(static_cast<int>(c.round));
        env.ints.push_back(c.setcode);
      }
      emit.broadcast(ctx, env);
    }
    confs_.clear();
  }
  captured_ = 0;
}

void AbaVoteBatcher::unpack(Context& ctx, int sender, const Message& m,
                            bool via_rb, const SubMessageSink& sink) {
  if (m.sid.path != SessionPath::kAba || m.sid.variant != 4) return;
  if (m.sid.owner != -1 || m.sid.moderator != -1 || m.sid.svss_dealer != -1) {
    return;
  }
  if (m.sid.instance != 0) return;
  if (!m.vals.empty() || !m.blob.empty() || m.ints.empty()) return;

  if (m.type == MsgType::kAbaBatchVote) {
    if (via_rb || m.sid.counter != 0) return;
    if (m.ints.size() % 4 != 0) return;
    // Validate the whole envelope before delivering anything, mirroring
    // the MW group transport: garbage drops whole.
    for (std::size_t i = 0; i < m.ints.size(); i += 4) {
      if (m.ints[i] < 0 || !round_ok(m.ints[i + 1])) return;
      int subtype = m.ints[i + 2];
      if (subtype != 0 && subtype != 1 && subtype != 3) return;
    }
    for (std::size_t i = 0; i < m.ints.size(); i += 4) {
      sink(ctx, sender,
           sub_vote(static_cast<std::uint32_t>(m.ints[i]),
                    static_cast<std::uint32_t>(m.ints[i + 1]), m.ints[i + 2],
                    m.ints[i + 3]),
           /*via_rb=*/false);
    }
    return;
  }
  if (m.type == MsgType::kAbaBatchConf) {
    if (!via_rb) return;
    if (m.ints.size() % 3 != 0) return;
    for (std::size_t i = 0; i < m.ints.size(); i += 3) {
      if (m.ints[i] < 0 || !round_ok(m.ints[i + 1])) return;
    }
    for (std::size_t i = 0; i < m.ints.size(); i += 3) {
      sink(ctx, sender,
           sub_vote(static_cast<std::uint32_t>(m.ints[i]),
                    static_cast<std::uint32_t>(m.ints[i + 1]), 2,
                    m.ints[i + 2]),
           /*via_rb=*/true);
    }
    return;
  }
}

}  // namespace svss
