// Asynchronous Byzantine agreement from a shunning common coin (paper
// Section 5, Theorem 1).
//
// The paper composes SVSS into the Canetti-Rabin agreement skeleton: rounds
// of justified voting whose fallback estimate is a common-coin flip.  We
// implement the round structure with three exchanges per round:
//
//  1. EST, a BV-broadcast (t+1 relay / 2t+1 accept thresholds): the set
//     bin_values collects only values proposed by nonfaulty processes.
//  2. AUX, a plain broadcast of one bin value; a process waits for n-t
//     AUX values justified by its bin_values and takes their union V.
//  3. CONF, a *reliable* broadcast of V; a process waits for n-t justified
//     CONF sets, then:  >= 2t+1 sets == {v} -> decide v;
//                       >=  t+1 sets == {v} -> est := v;
//                       otherwise            est := coin(round).
//
// Safety never depends on the coin: two singleton CONF values cannot
// coexist (an honest CONF {v} needs > half of a justified AUX sample), and
// a decision's 2t+1 CONF {v} broadcasts force >= t+1 of them into every
// other process's sample, so nobody falls through to the coin in a
// deciding round.  The coin — which the SCC guarantees to be common with
// probability >= 1/4 except in the at most t(n-t) shunning rounds — only
// drives termination, giving the paper's expected O(n^2) rounds.
//
// Decisions are additionally aggregated: a process that decides announces
// DECIDE(v); t+1 matching announcements let others adopt the decision
// directly.  Processes keep participating after deciding (the simulation
// harness stops a run once every nonfaulty process has decided).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

// Where the round-r fallback coin comes from.
enum class CoinMode {
  kSvss,         // the paper's protocol: one SCC instance per round
  kLocal,        // Ben-Or/Bracha-style private coin (exponential baseline)
  kIdealCommon,  // perfect common coin from a shared seed (SCC abstraction,
                 // used to scale round-count experiments past the reach of
                 // the full O(n^7)-message stack)
};

class AbaHost {
 public:
  virtual ~AbaHost() = default;
  virtual void rb_broadcast(Context& ctx, const Message& m) = 0;
  virtual void send_direct(Context& ctx, int to, Message m) = 0;
  // Starts coin round `round` of agreement instance `instance` (kSvss
  // mode).  The result comes back through AbaSession::on_coin.
  virtual void start_coin(Context& ctx, std::uint32_t instance,
                          std::uint32_t round) = 0;
  virtual void aba_decided(Context& ctx, int value, std::uint32_t round,
                           std::uint32_t instance) = 0;
};

// Per-instance round-count ceiling, also used to namespace the ideal-coin
// seed mix (instance * kCoinRoundsPerInstance + round), so instance 0's
// bit stream is unchanged from single-instance runs.
inline constexpr std::uint32_t kCoinRoundsPerInstance = 4096;

class AbaSession {
 public:
  // `instance` distinguishes concurrent agreement instances on one node
  // (e.g. the n parallel instances of ACS); it is part of every message's
  // session id and of the coin-round namespace.
  AbaSession(AbaHost& host, int self, int n, int t, CoinMode mode,
             std::uint64_t common_seed, std::uint32_t instance = 0);

  // Enters round 1 with the given binary input.
  void start(Context& ctx, int input);
  // Pre-filtered message entry points.
  void on_direct(Context& ctx, int from, const Message& m);
  void on_broadcast(Context& ctx, int origin, const Message& m);
  // Coin outcome for this instance's round `round` (kSvss mode; ignored in
  // other modes).  The host dispatches by instance id.
  void on_coin(Context& ctx, std::uint32_t round, int bit);

  [[nodiscard]] std::uint32_t instance() const { return instance_; }

  [[nodiscard]] bool decided() const { return decision_.has_value(); }
  [[nodiscard]] int decision() const { return *decision_; }
  [[nodiscard]] std::uint32_t decision_round() const { return decision_round_; }
  [[nodiscard]] std::uint32_t current_round() const { return round_; }

  // Introspection snapshot of one round's voting state (tests/debugging).
  struct RoundSnapshot {
    std::size_t est_senders[2] = {0, 0};
    bool bin[2] = {false, false};
    bool aux_sent = false;
    std::size_t aux_senders = 0;
    bool v_frozen = false;
    bool conf_sent = false;
    std::size_t conf_senders = 0;
    bool conf_frozen = false;
    bool has_coin = false;
  };
  [[nodiscard]] RoundSnapshot snapshot(std::uint32_t r) const;

 private:
  struct Round {
    std::set<int> est_from[2];   // senders of EST(v)
    bool est_sent[2] = {false, false};
    bool bin[2] = {false, false};
    bool aux_sent = false;
    std::map<int, int> aux_from;    // sender -> first AUX value
    std::optional<std::set<int>> v; // frozen AUX union
    bool conf_sent = false;
    std::map<int, std::set<int>> conf_from;  // origin -> CONF set
    bool conf_frozen = false;
    int singleton[2] = {0, 0};  // frozen tally of CONF == {v}
    std::optional<int> coin;
    bool coin_started = false;
    bool advanced = false;
  };

  void progress(Context& ctx);
  void enter_round(Context& ctx, std::uint32_t r);
  void send_est(Context& ctx, std::uint32_t r, int v);
  void decide(Context& ctx, int value);
  void request_coin(Context& ctx, std::uint32_t r);
  Round& round_state(std::uint32_t r);
  [[nodiscard]] static std::optional<std::set<int>> decode_set(int code);
  [[nodiscard]] static int encode_set(const std::set<int>& s);

  AbaHost& host_;
  int self_;
  int n_;
  int t_;
  CoinMode mode_;
  std::uint64_t common_seed_;
  std::uint32_t instance_;

  bool started_ = false;
  int est_ = 0;
  std::uint32_t round_ = 0;  // current round, 1-based once started
  std::map<std::uint32_t, Round> rounds_;
  std::optional<int> decision_;
  std::uint32_t decision_round_ = 0;
  bool decide_sent_ = false;
  std::map<int, std::set<int>> decide_from_;  // value -> senders
};

}  // namespace svss
