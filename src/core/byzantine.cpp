#include "core/byzantine.hpp"

#include <memory>

#include "common/rng.hpp"
#include "mwsvss/group_transport.hpp"
#include "sim/message.hpp"

namespace svss {

namespace {

void perturb_vals(Message& m, Fp delta) {
  for (Fp& v : m.vals) v += delta;
}

// See mutate_outbound_message below; template form avoids std::function
// overhead on the interceptor hot path.
template <typename Fn>
void mutate_packet(Packet& p, int self, Fn&& mutate, bool mutate_relays) {
  if (!p.is_rb) {
    mutate(p.app);
    return;
  }
  bool own_send = p.phase == RbPhase::kSend && p.bid.origin == self;
  if (!own_send && !mutate_relays) return;
  auto msg = Message::deserialize(p.rb_payload());
  if (!msg) return;
  mutate(*msg);
  // Copy-on-write: replace this recipient's pointer; the other copies of
  // the send_all burst keep the unmutated shared payload.
  p.value = std::make_shared<const Bytes>(msg->serialize());
}

}  // namespace

void mutate_outbound_message(Packet& p, int self,
                             const std::function<void(Message&)>& mutate,
                             bool mutate_relays) {
  mutate_packet(p, self, mutate, mutate_relays);
}

Engine::Interceptor make_byzantine_interceptor(const ByzConfig& cfg, int n,
                                               int t, std::uint64_t seed) {
  (void)t;
  switch (cfg.kind) {
    case ByzKind::kHonest:
      return nullptr;

    case ByzKind::kSilent:
      return [](int, int, Packet&) { return false; };

    case ByzKind::kCrashMidway: {
      auto remaining = std::make_shared<std::uint64_t>(cfg.crash_after);
      return [remaining](int, int, Packet&) {
        if (*remaining == 0) return false;
        --*remaining;
        return true;
      };
    }

    case ByzKind::kEquivocate:
      // Different halves of the system see shares shifted by different
      // amounts — a split-view dealer/confirmer.  RB equivocation is also
      // exercised: the phase-1 value of its own broadcasts diverges.
      return [n](int from, int to, Packet& p) {
        if (to < n / 2) return true;
        mutate_packet(
            p, from, [](Message& m) { perturb_vals(m, Fp(1)); },
            /*mutate_relays=*/false);
        return true;
      };

    case ByzKind::kWrongRecon:
      return [](int from, int to, Packet& p) {
        (void)to;
        mutate_packet(
            p, from,
            [](Message& m) {
              // Group envelopes keep recon values in vals, so perturbing
              // them corrupts every coalesced per-session broadcast —
              // the same deviation as perturbing each one individually.
              if (m.type == MsgType::kMwReconVal ||
                  m.type == MsgType::kMwBatchReconVal) {
                perturb_vals(m, Fp(1));
              }
            },
            /*mutate_relays=*/false);
        return true;
      };

    case ByzKind::kLyingModerator:
      return [](int from, int to, Packet& p) {
        (void)to;
        mutate_packet(
            p, from,
            [](Message& m) {
              if (m.type == MsgType::kMwMonitorVal) perturb_vals(m, Fp(1));
              // Same lie on the coalesced framing: perturb exactly the
              // monitor values inside a direct envelope (the transport
              // owns the layout walk).
              MwGroupTransport::for_each_direct_entry(
                  m, [&m](MsgType sub, int, std::size_t val_offset, int) {
                    if (sub == MsgType::kMwMonitorVal &&
                        val_offset < m.vals.size()) {
                      m.vals[val_offset] += Fp(1);
                    }
                  });
              if (m.type == MsgType::kMwMset && !m.ints.empty()) {
                // Rotate the accepted-monitor set by one: a plausible but
                // wrong commitment.
                m.ints[0] = (m.ints[0] + 1) % 2;
              }
              if (m.type == MsgType::kMwBatchMset) {
                // The first member of the first coalesced run — the same
                // rotated commitment.
                if (int* member = MwGroupTransport::first_run_member(m)) {
                  *member = (*member + 1) % 2;
                }
              }
            },
            /*mutate_relays=*/false);
        return true;
      };

    case ByzKind::kBitFlip: {
      auto rng = std::make_shared<Rng>(seed);
      double prob = cfg.flip_prob;
      return [rng, prob](int from, int to, Packet& p) {
        (void)to;
        mutate_packet(
            p, from,
            [&](Message& m) {
              for (Fp& v : m.vals) {
                if (rng->next_unit() < prob) v += Fp(1 + static_cast<int>(
                                                       rng->next_below(7)));
              }
            },
            /*mutate_relays=*/true);
        return true;
      };
    }
  }
  return nullptr;
}

}  // namespace svss
