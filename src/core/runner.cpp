#include "core/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/daemon.hpp"

namespace svss {

SessionId mw_top_id(std::uint32_t c, int dealer, int moderator) {
  SessionId sid;
  sid.path = SessionPath::kMwTop;
  sid.owner = static_cast<std::int16_t>(dealer);
  sid.moderator = static_cast<std::int16_t>(moderator);
  sid.counter = c;
  return sid;
}

SessionId svss_top_id(std::uint32_t c, int dealer) {
  SessionId sid;
  sid.path = SessionPath::kSvssTop;
  sid.owner = static_cast<std::int16_t>(dealer);
  sid.counter = c;
  return sid;
}

namespace {

RunnerConfig validate(RunnerConfig cfg) {
  if (cfg.n <= 0) throw std::invalid_argument("Runner: n must be positive");
  if (cfg.n > static_cast<int>(kMaxN)) {
    // Session counters and the RB sender bitsets encode process ids in
    // [0, kMaxN); larger systems need a wider id space first.
    throw std::invalid_argument("Runner: n exceeds kMaxN");
  }
  if (cfg.t < 0) throw std::invalid_argument("Runner: t must be >= 0");
  if (!cfg.allow_sub_resilience && cfg.n < 3 * cfg.t + 1) {
    throw std::invalid_argument(
        "Runner: n < 3t+1 breaks the paper's resilience bound; set "
        "allow_sub_resilience to experiment beyond it");
  }
  // Merge the deprecated framing aliases into TransportOptions: a
  // non-default alias value wins (old configs keep their meaning), then
  // the aliases are re-derived so both views agree for the whole run.
  if (!cfg.batched_coin_dealing) {
    cfg.transport.coin_dealing = Framing::kPerSession;
  }
  if (!cfg.batched_mw_children) {
    cfg.transport.mw_children = Framing::kPerSession;
  }
  for (const auto& [slot, batched] : cfg.mw_batch_override) {
    cfg.transport.mw_children_override[slot] =
        batched ? Framing::kBatched : Framing::kPerSession;
  }
  cfg.batched_coin_dealing = cfg.transport.batched_coin();
  cfg.batched_mw_children = cfg.transport.mw_children == Framing::kBatched;
  cfg.mw_batch_override.clear();
  for (const auto& [slot, framing] : cfg.transport.mw_children_override) {
    cfg.mw_batch_override[slot] = framing == Framing::kBatched;
  }
  if (cfg.transport.kind == TransportKind::kSocketLoopback &&
      !cfg.adversaries.empty()) {
    throw std::invalid_argument(
        "Runner: adversary strategies need the deterministic sim backend; "
        "socket-loopback supports ByzConfig wire faults only");
  }
  return cfg;
}

// The Runner's half of the widened scheduler seam: delivery clock from the
// engine, slot classification from the adversary layer.  Everything served
// is deterministic in the run config, so schedulers consulting it replay.
class RunnerScheduleView final : public ScheduleView {
 public:
  RunnerScheduleView(const Engine* engine,
                     const std::vector<AdversarySlot*>* advs)
      : engine_(engine), advs_(advs) {}

  [[nodiscard]] std::uint64_t deliveries() const override {
    return engine_->metrics().packets_delivered;
  }
  [[nodiscard]] bool is_adversary(int id) const override {
    auto idx = static_cast<std::size_t>(id);
    return idx < advs_->size() && (*advs_)[idx] != nullptr;
  }
  [[nodiscard]] bool is_deceived(int id) const override {
    for (const AdversarySlot* slot : *advs_) {
      if (slot != nullptr && slot->is_deceiving(id)) return true;
    }
    return false;
  }

 private:
  const Engine* engine_;
  const std::vector<AdversarySlot*>* advs_;
};

std::unique_ptr<Scheduler> build_scheduler(const RunnerConfig& cfg) {
  std::uint64_t sched_seed = cfg.seed ^ 0x5C4EDULL;
  if (cfg.scheduler_factory) {
    auto sched = cfg.scheduler_factory(sched_seed, cfg.n, cfg.t);
    if (!sched) {
      throw std::invalid_argument("Runner: scheduler_factory returned null");
    }
    return sched;
  }
  return make_scheduler(cfg.scheduler, sched_seed, cfg.n, cfg.t);
}

}  // namespace

Runner::Runner(RunnerConfig cfg)
    : cfg_(validate(std::move(cfg))),
      engine_(cfg_.n, cfg_.t, cfg_.seed, build_scheduler(cfg_)) {
  nodes_.resize(static_cast<std::size_t>(cfg_.n));
  advs_.resize(static_cast<std::size_t>(cfg_.n));
  for (int i = 0; i < cfg_.n; ++i) {
    std::uint64_t slot_seed =
        cfg_.seed * 1315423911ULL + static_cast<std::uint64_t>(i);
    bool batched_mw = cfg_.transport.batched_mw(i);
    auto fit = cfg_.faults.find(i);
    Engine::Interceptor wire;
    if (fit != cfg_.faults.end() && fit->second.kind != ByzKind::kHonest) {
      wire = make_byzantine_interceptor(fit->second, cfg_.n, cfg_.t,
                                        slot_seed);
    }
    auto ait = cfg_.adversaries.find(i);
    if (ait != cfg_.adversaries.end()) {
      // Adversary slot: the strategy replaces the honest Node.  Its
      // outbound gate runs first; a ByzConfig wire interceptor for the
      // same slot composes on top of whatever the strategy emits.
      AdversaryEnv env{i, cfg_.n, cfg_.t, slot_seed,
                       cfg_.transport.batched_coin(), batched_mw};
      std::unique_ptr<AdversarySlot> slot = ait->second(env);
      if (!slot) throw std::invalid_argument("Runner: null adversary slot");
      advs_[static_cast<std::size_t>(i)] = slot.get();
      AdversarySlot* raw = slot.get();
      engine_.set_process(i, std::move(slot));
      engine_.set_interceptor(
          i, [raw, wire](int from, int to, Packet& p) {
            if (!raw->on_outbound(to, p)) return false;
            return !wire || wire(from, to, p);
          });
      continue;
    }
    auto node = std::make_unique<Node>(i, cfg_.n, cfg_.t,
                                       cfg_.transport.batched_coin(),
                                       batched_mw,
                                       cfg_.transport.batched_votes());
    nodes_[static_cast<std::size_t>(i)] = node.get();
    engine_.set_process(i, std::move(node));
    if (wire) engine_.set_interceptor(i, std::move(wire));
  }
  // Widened scheduler seam: hand the scheduler its observable-state view
  // now that every adversary slot exists.  Attached before any send, so
  // even start()-burst priorities may consult it.
  sched_view_ = std::make_unique<RunnerScheduleView>(&engine_, &advs_);
  engine_.scheduler().attach(sched_view_.get());
}

Node& Runner::node(int i) {
  Node* n = nodes_.at(static_cast<std::size_t>(i));
  if (n == nullptr) {
    throw std::logic_error("Runner: slot " + std::to_string(i) +
                           " hosts an adversary strategy, not a Node");
  }
  return *n;
}

AdversarySlot* Runner::adversary(int i) {
  return advs_.at(static_cast<std::size_t>(i));
}

void Runner::set_slot_start(int i, std::function<void(Context&, Node&)> a) {
  if (AdversarySlot* adv = advs_.at(static_cast<std::size_t>(i))) {
    adv->set_start_action(std::move(a));
  } else {
    node(i).set_start_action(std::move(a));
  }
}

bool Runner::is_honest(int i) const {
  if (cfg_.adversaries.count(i) != 0) return false;
  auto it = cfg_.faults.find(i);
  return it == cfg_.faults.end() || it->second.kind == ByzKind::kHonest;
}

std::vector<int> Runner::honest_ids() const {
  std::vector<int> out;
  for (int i = 0; i < cfg_.n; ++i) {
    if (is_honest(i)) out.push_back(i);
  }
  return out;
}

std::vector<std::pair<int, int>> Runner::honest_shun_pairs() const {
  std::vector<std::pair<int, int>> out;
  for (const auto& [i, j] : engine_.log().shun_pairs()) {
    if (is_honest(i)) out.emplace_back(i, j);
  }
  return out;
}

RunStatus Runner::run_until_honest(
    const std::function<bool(const Node&)>& pred) {
  // The done() predicate runs after *every* delivery, so it must be cheap.
  // All driver predicates are monotone (decided/has_output/share_complete
  // never go back to false), so nodes already satisfied are dropped from
  // the waiting list and the typical per-delivery cost is one predicate
  // call — not an honest_ids() allocation plus a full scan.
  std::vector<int> waiting = honest_ids();
  RunStatus status = engine_.run_until(
      [this, &pred, &waiting] {
        while (!waiting.empty() && pred(node(waiting.back()))) {
          waiting.pop_back();
        }
        return waiting.empty();
      },
      cfg_.max_deliveries);
  if (status == RunStatus::kDeliveryCap && cfg_.warn_on_cap) {
    // Never silent: a capped run is a potential non-termination witness.
    // The flag also lands in Metrics::capped for programmatic sweeps.
    std::fprintf(stderr,
                 "Runner: delivery cap hit (seed=%llu n=%d t=%d): %s\n",
                 static_cast<unsigned long long>(cfg_.seed), cfg_.n, cfg_.t,
                 engine_.metrics().summary().c_str());
  }
  return status;
}

// ---------------------------------------------------------------------
// MW-SVSS
// ---------------------------------------------------------------------
Runner::MwResult Runner::run_mwsvss(Fp secret, Fp moderator_input, int dealer,
                                    int moderator, bool reconstruct) {
  SessionId sid = mw_top_id(1, dealer, moderator);
  set_slot_start(dealer, [sid, secret](Context& c, Node& nd) {
    nd.mw(c, sid).deal(c, secret);
  });
  if (moderator != dealer) {
    set_slot_start(moderator,
        [sid, moderator_input](Context& c, Node& nd) {
          nd.mw(c, sid).set_moderator_input(c, moderator_input);
        });
  }

  MwResult res;
  res.status = run_until_honest([&](const Node& nd) {
    const MwSvssSession* s = nd.find_mw(sid);
    return s != nullptr && s->share_complete();
  });
  res.all_honest_shared = true;
  for (int i : honest_ids()) {
    const MwSvssSession* s = node(i).find_mw(sid);
    if (s == nullptr || !s->share_complete()) res.all_honest_shared = false;
  }

  if (reconstruct && res.all_honest_shared) {
    // Every process that completed the share phase enters R' — including
    // Byzantine ones, which run the honest code behind a corrupted wire.
    for (int i = 0; i < cfg_.n; ++i) {
      if (nodes_[static_cast<std::size_t>(i)] == nullptr) continue;
      const MwSvssSession* s = node(i).find_mw(sid);
      if (s == nullptr || !s->share_complete()) continue;
      Context c = ctx(i);
      node(i).mw(c, sid).start_reconstruct(c);
    }
    res.status = run_until_honest([&](const Node& nd) {
      const MwSvssSession* s = nd.find_mw(sid);
      return s != nullptr && s->has_output();
    });
    res.all_honest_output = true;
    for (int i : honest_ids()) {
      const MwSvssSession* s = node(i).find_mw(sid);
      if (s != nullptr && s->has_output()) {
        res.outputs.emplace(i, s->output());
      } else {
        res.all_honest_output = false;
      }
    }
  }
  res.shun_pairs = honest_shun_pairs();
  res.metrics = engine_.metrics();
  return res;
}

// ---------------------------------------------------------------------
// SVSS
// ---------------------------------------------------------------------
Runner::SvssResult Runner::run_svss(Fp secret, int dealer, bool reconstruct) {
  SessionId sid = svss_top_id(1, dealer);
  set_slot_start(dealer, [sid, secret](Context& c, Node& nd) {
    nd.svss(c, sid).deal(c, secret);
  });

  SvssResult res;
  res.status = run_until_honest([&](const Node& nd) {
    const SvssSession* s = nd.find_svss(sid);
    return s != nullptr && s->share_complete();
  });
  res.all_honest_shared = true;
  for (int i : honest_ids()) {
    const SvssSession* s = node(i).find_svss(sid);
    if (s == nullptr || !s->share_complete()) res.all_honest_shared = false;
  }

  if (reconstruct && res.all_honest_shared) {
    for (int i = 0; i < cfg_.n; ++i) {
      if (nodes_[static_cast<std::size_t>(i)] == nullptr) continue;
      const SvssSession* s = node(i).find_svss(sid);
      if (s == nullptr || !s->share_complete()) continue;
      Context c = ctx(i);
      node(i).svss(c, sid).start_reconstruct(c);
    }
    res.status = run_until_honest([&](const Node& nd) {
      const SvssSession* s = nd.find_svss(sid);
      return s != nullptr && s->has_output();
    });
    res.all_honest_output = true;
    for (int i : honest_ids()) {
      const SvssSession* s = node(i).find_svss(sid);
      if (s != nullptr && s->has_output()) {
        res.outputs.emplace(i, s->output());
      } else {
        res.all_honest_output = false;
      }
    }
  }
  res.shun_pairs = honest_shun_pairs();
  res.metrics = engine_.metrics();
  return res;
}

// ---------------------------------------------------------------------
// Common coin
// ---------------------------------------------------------------------
Runner::CoinResult Runner::run_coin(std::uint32_t round) {
  if (cfg_.transport.kind == TransportKind::kSocketLoopback) {
    return run_coin_loopback(round);
  }
  for (int i = 0; i < cfg_.n; ++i) {
    set_slot_start(i, [round](Context& c, Node& nd) {
      nd.coin(c, round).start(c);
    });
  }
  CoinResult res;
  res.status = run_until_honest([&](const Node& nd) {
    const CoinSession* cs = nd.find_coin(round);
    return cs != nullptr && cs->has_output();
  });
  res.all_output = true;
  for (int i : honest_ids()) {
    const CoinSession* cs = node(i).find_coin(round);
    if (cs != nullptr && cs->has_output()) {
      res.bits.emplace(i, cs->output());
    } else {
      res.all_output = false;
    }
  }
  res.agreed = res.all_output && !res.bits.empty();
  for (const auto& [i, b] : res.bits) {
    if (b != res.bits.begin()->second) res.agreed = false;
  }
  res.shun_pairs = honest_shun_pairs();
  res.metrics = engine_.metrics();
  return res;
}

// ---------------------------------------------------------------------
// Socket-loopback drivers: the same experiments over n real TCP
// endpoints (core/daemon.hpp) instead of the simulator.  Results carry
// the cluster's merged log/metrics; the merged events are also copied
// into engine_.log() so honest_shun_pairs() & co. keep working.
// ---------------------------------------------------------------------
namespace {

LoopbackOptions loopback_options(const RunnerConfig& cfg) {
  LoopbackOptions opts;
  opts.n = cfg.n;
  opts.t = cfg.t;
  opts.seed = cfg.seed;
  opts.transport = cfg.transport;
  opts.faults = cfg.faults;
  return opts;
}

}  // namespace

Runner::CoinResult Runner::run_coin_loopback(std::uint32_t round) {
  LoopbackCluster cluster(loopback_options(cfg_));
  for (int i = 0; i < cfg_.n; ++i) {
    cluster.node(i).set_start_action([round](Context& c, Node& nd) {
      nd.coin(c, round).start(c);
    });
  }
  bool finished = cluster.run(
      [round](const Node& nd) {
        const CoinSession* cs = nd.find_coin(round);
        return cs != nullptr && cs->has_output();
      },
      [this](int i) { return is_honest(i); });
  CoinResult res;
  res.status = finished ? RunStatus::kQuiescent : RunStatus::kDeliveryCap;
  res.all_output = finished;
  for (int i : honest_ids()) {
    const CoinSession* cs = cluster.node(i).find_coin(round);
    if (cs != nullptr && cs->has_output()) {
      res.bits.emplace(i, cs->output());
    } else {
      res.all_output = false;
    }
  }
  res.agreed = res.all_output && !res.bits.empty();
  for (const auto& [i, b] : res.bits) {
    if (b != res.bits.begin()->second) res.agreed = false;
  }
  EventLog merged = cluster.merged_log();
  for (const Event& e : merged.events()) {
    engine_.log().record(e);
  }
  res.shun_pairs = honest_shun_pairs();
  res.metrics = cluster.merged_metrics();
  return res;
}

Runner::AbaResult Runner::run_aba_loopback(const std::vector<int>& inputs,
                                           CoinMode mode) {
  std::uint64_t coin_seed = cfg_.seed ^ 0xC01Full;
  LoopbackCluster cluster(loopback_options(cfg_));
  for (int i = 0; i < cfg_.n; ++i) {
    int input = inputs[static_cast<std::size_t>(i)];
    cluster.node(i).set_start_action(
        [input, mode, coin_seed](Context& c, Node& nd) {
          nd.start_aba(c, input, mode, coin_seed);
        });
  }
  bool finished = cluster.run(
      [](const Node& nd) {
        return nd.aba() != nullptr && nd.aba()->decided();
      },
      [this](int i) { return is_honest(i); });
  AbaResult res;
  res.status = finished ? RunStatus::kQuiescent : RunStatus::kDeliveryCap;
  res.all_decided = finished;
  for (int i : honest_ids()) {
    const AbaSession* a = cluster.node(i).aba();
    if (a != nullptr && a->decided()) {
      res.decisions.emplace(i, a->decision());
      res.decision_rounds.emplace(i, a->decision_round());
      res.max_round = std::max(res.max_round, a->decision_round());
    } else {
      res.all_decided = false;
    }
  }
  res.agreed = res.all_decided && !res.decisions.empty();
  if (!res.decisions.empty()) res.value = res.decisions.begin()->second;
  for (const auto& [i, v] : res.decisions) {
    if (v != res.value) res.agreed = false;
  }
  EventLog merged = cluster.merged_log();
  for (const Event& e : merged.events()) {
    engine_.log().record(e);
  }
  res.shun_pairs = honest_shun_pairs();
  res.metrics = cluster.merged_metrics();
  return res;
}

// ---------------------------------------------------------------------
// Agreement
// ---------------------------------------------------------------------
Runner::AbaResult Runner::run_aba(const std::vector<int>& inputs,
                                  CoinMode mode) {
  if (static_cast<int>(inputs.size()) != cfg_.n) {
    throw std::invalid_argument("run_aba: need one input per process");
  }
  if (cfg_.transport.kind == TransportKind::kSocketLoopback) {
    return run_aba_loopback(inputs, mode);
  }
  std::uint64_t coin_seed = cfg_.seed ^ 0xC01Full;
  for (int i = 0; i < cfg_.n; ++i) {
    int input = inputs[static_cast<std::size_t>(i)];
    set_slot_start(i, [input, mode, coin_seed](Context& c, Node& nd) {
      nd.start_aba(c, input, mode, coin_seed);
    });
  }
  AbaResult res;
  res.status = run_until_honest([](const Node& nd) {
    return nd.aba() != nullptr && nd.aba()->decided();
  });
  res.all_decided = true;
  for (int i : honest_ids()) {
    const AbaSession* a = node(i).aba();
    if (a != nullptr && a->decided()) {
      res.decisions.emplace(i, a->decision());
      res.decision_rounds.emplace(i, a->decision_round());
      res.max_round = std::max(res.max_round, a->decision_round());
    } else {
      res.all_decided = false;
    }
  }
  res.agreed = res.all_decided && !res.decisions.empty();
  if (!res.decisions.empty()) res.value = res.decisions.begin()->second;
  for (const auto& [i, v] : res.decisions) {
    if (v != res.value) res.agreed = false;
  }
  res.shun_pairs = honest_shun_pairs();
  res.metrics = engine_.metrics();
  return res;
}

void Runner::submit(std::uint32_t instance, std::vector<int> inputs) {
  if (static_cast<int>(inputs.size()) != cfg_.n) {
    throw std::invalid_argument("submit: need one input per process");
  }
  if (!submitted_.emplace(instance, std::move(inputs)).second) {
    throw std::invalid_argument("submit: instance already queued");
  }
}

namespace {

// Shared result collection for both backends: `get` maps a process id to
// its (possibly remote) Node.
Runner::MultiAbaResult collect_submitted(
    const std::map<std::uint32_t, std::vector<int>>& submitted,
    const std::vector<int>& honest, const std::function<Node&(int)>& get) {
  Runner::MultiAbaResult res;
  res.all_decided = true;
  for (const auto& [instance, inputs] : submitted) {
    (void)inputs;
    std::map<int, int>& per = res.decisions[instance];
    for (int i : honest) {
      const AbaSession* a = get(i).aba(instance);
      if (a != nullptr && a->decided()) {
        per.emplace(i, a->decision());
      } else {
        res.all_decided = false;
      }
    }
    if (!per.empty()) {
      bool same = true;
      for (const auto& [i, v] : per) {
        if (v != per.begin()->second) same = false;
      }
      if (same && static_cast<int>(per.size()) ==
                      static_cast<int>(honest.size())) {
        res.values.emplace(instance, per.begin()->second);
      }
    }
  }
  res.agreed = res.all_decided && !submitted.empty() &&
               res.values.size() == submitted.size();
  return res;
}

}  // namespace

EpochsResult Runner::run_epochs(const std::vector<EpochPlan>& script,
                                CoinMode mode) {
  if (!cfg_.faults.empty() || !cfg_.adversaries.empty()) {
    throw std::invalid_argument(
        "run_epochs: faults/adversaries unsupported; crash members via "
        "EpochPlan::crash_at_boundary");
  }
  if (cfg_.transport.kind == TransportKind::kSocketLoopback) {
    return run_epochs_loopback(cfg_, script, mode);
  }
  return run_epochs_sim(engine_, cfg_, script, mode);
}

Runner::MultiAbaResult Runner::run_submitted(CoinMode mode) {
  if (submitted_.empty()) {
    throw std::invalid_argument("run_submitted: no instances submitted");
  }
  if (cfg_.transport.kind == TransportKind::kSocketLoopback) {
    return run_submitted_loopback(mode);
  }
  std::uint64_t coin_seed = cfg_.seed ^ 0xC01Full;
  for (int i = 0; i < cfg_.n; ++i) {
    // One start action kicks off every submitted instance on this node;
    // their initial EST fan-outs share the cascade's vote envelopes.
    std::vector<std::pair<std::uint32_t, int>> starts;
    for (const auto& [instance, inputs] : submitted_) {
      starts.emplace_back(instance, inputs[static_cast<std::size_t>(i)]);
    }
    set_slot_start(i, [starts, mode, coin_seed](Context& c, Node& nd) {
      for (const auto& [instance, input] : starts) {
        nd.start_aba(c, input, mode, coin_seed, instance);
      }
    });
  }
  MultiAbaResult res;
  const std::map<std::uint32_t, std::vector<int>>& submitted = submitted_;
  res.status = run_until_honest([&submitted](const Node& nd) {
    for (const auto& [instance, inputs] : submitted) {
      const AbaSession* a = nd.aba(instance);
      if (a == nullptr || !a->decided()) return false;
    }
    return true;
  });
  MultiAbaResult collected = collect_submitted(
      submitted_, honest_ids(), [this](int i) -> Node& { return node(i); });
  collected.status = res.status;
  collected.metrics = engine_.metrics();
  submitted_.clear();
  return collected;
}

Runner::MultiAbaResult Runner::run_submitted_loopback(CoinMode mode) {
  std::uint64_t coin_seed = cfg_.seed ^ 0xC01Full;
  LoopbackCluster cluster(loopback_options(cfg_));
  for (int i = 0; i < cfg_.n; ++i) {
    std::vector<std::pair<std::uint32_t, int>> starts;
    for (const auto& [instance, inputs] : submitted_) {
      starts.emplace_back(instance, inputs[static_cast<std::size_t>(i)]);
    }
    cluster.node(i).set_start_action(
        [starts, mode, coin_seed](Context& c, Node& nd) {
          for (const auto& [instance, input] : starts) {
            nd.start_aba(c, input, mode, coin_seed, instance);
          }
        });
  }
  const std::map<std::uint32_t, std::vector<int>>& submitted = submitted_;
  bool finished = cluster.run(
      [&submitted](const Node& nd) {
        for (const auto& [instance, inputs] : submitted) {
          const AbaSession* a = nd.aba(instance);
          if (a == nullptr || !a->decided()) return false;
        }
        return true;
      },
      [this](int i) { return is_honest(i); });
  MultiAbaResult res = collect_submitted(
      submitted_, honest_ids(),
      [&cluster](int i) -> Node& { return cluster.node(i); });
  res.status = finished ? RunStatus::kQuiescent : RunStatus::kDeliveryCap;
  EventLog merged = cluster.merged_log();
  for (const Event& e : merged.events()) {
    engine_.log().record(e);
  }
  res.metrics = cluster.merged_metrics();
  submitted_.clear();
  return res;
}

Runner::AbaResult Runner::run_benor(const std::vector<int>& inputs) {
  if (static_cast<int>(inputs.size()) != cfg_.n) {
    throw std::invalid_argument("run_benor: need one input per process");
  }
  for (int i = 0; i < cfg_.n; ++i) {
    int input = inputs[static_cast<std::size_t>(i)];
    set_slot_start(i, [input](Context& c, Node& nd) {
      nd.start_benor(c, input);
    });
  }
  AbaResult res;
  res.status = run_until_honest([](const Node& nd) {
    return nd.benor() != nullptr && nd.benor()->decided();
  });
  res.all_decided = true;
  for (int i : honest_ids()) {
    const BenOrSession* b = node(i).benor();
    if (b != nullptr && b->decided()) {
      res.decisions.emplace(i, b->decision());
      res.decision_rounds.emplace(i, b->decision_round());
      res.max_round = std::max(res.max_round, b->decision_round());
    } else {
      res.all_decided = false;
    }
  }
  res.agreed = res.all_decided && !res.decisions.empty();
  if (!res.decisions.empty()) res.value = res.decisions.begin()->second;
  for (const auto& [i, v] : res.decisions) {
    if (v != res.value) res.agreed = false;
  }
  res.shun_pairs = honest_shun_pairs();
  res.metrics = engine_.metrics();
  return res;
}

// ---------------------------------------------------------------------
// Common subset / secure sum extensions
// ---------------------------------------------------------------------
Runner::AcsResult Runner::run_acs(const std::vector<Bytes>& proposals,
                                  CoinMode mode) {
  if (static_cast<int>(proposals.size()) != cfg_.n) {
    throw std::invalid_argument("run_acs: need one proposal per process");
  }
  std::uint64_t coin_seed = cfg_.seed ^ 0xAC5ull;
  for (int i = 0; i < cfg_.n; ++i) {
    Bytes proposal = proposals[static_cast<std::size_t>(i)];
    set_slot_start(i,
        [proposal, mode, coin_seed](Context& c, Node& nd) {
          nd.start_acs(c, proposal, mode, coin_seed);
        });
  }
  AcsResult res;
  res.status = run_until_honest([](const Node& nd) {
    return nd.acs() != nullptr && nd.acs()->has_output();
  });
  res.all_output = true;
  for (int i : honest_ids()) {
    const AcsSession* a = node(i).acs();
    if (a != nullptr && a->has_output()) {
      res.outputs.emplace(i, a->output());
    } else {
      res.all_output = false;
    }
  }
  res.agreed = res.all_output && !res.outputs.empty();
  for (const auto& [i, out] : res.outputs) {
    if (!(out == res.outputs.begin()->second)) res.agreed = false;
  }
  res.metrics = engine_.metrics();
  return res;
}

Runner::MvbaResult Runner::run_mvba(const std::vector<Fp>& proposals,
                                    Fp default_value, CoinMode mode) {
  if (static_cast<int>(proposals.size()) != cfg_.n) {
    throw std::invalid_argument("run_mvba: need one proposal per process");
  }
  std::uint64_t coin_seed = cfg_.seed ^ 0x3BAull;
  for (int i = 0; i < cfg_.n; ++i) {
    Fp proposal = proposals[static_cast<std::size_t>(i)];
    set_slot_start(i,
        [proposal, default_value, mode, coin_seed](Context& c, Node& nd) {
          nd.start_mvba(c, proposal, default_value, mode, coin_seed);
        });
  }
  MvbaResult res;
  res.status = run_until_honest([](const Node& nd) {
    return nd.mvba() != nullptr && nd.mvba()->decided();
  });
  res.all_decided = true;
  for (int i : honest_ids()) {
    const MvbaSession* s = node(i).mvba();
    if (s != nullptr && s->decided()) {
      res.decisions.emplace(i, s->decision().value());
    } else {
      res.all_decided = false;
    }
  }
  res.agreed = res.all_decided && !res.decisions.empty();
  if (!res.decisions.empty()) res.value = res.decisions.begin()->second;
  for (const auto& [i, v] : res.decisions) {
    if (v != res.value) res.agreed = false;
  }
  res.metrics = engine_.metrics();
  return res;
}

Runner::SumResult Runner::run_secure_sum(const std::vector<Fp>& inputs,
                                         CoinMode mode) {
  if (static_cast<int>(inputs.size()) != cfg_.n) {
    throw std::invalid_argument("run_secure_sum: need one input per process");
  }
  std::uint64_t coin_seed = cfg_.seed ^ 0x50Cull;
  for (int i = 0; i < cfg_.n; ++i) {
    Fp input = inputs[static_cast<std::size_t>(i)];
    set_slot_start(i, [input, mode, coin_seed](Context& c, Node& nd) {
      nd.start_secure_sum(c, input, mode, coin_seed);
    });
  }
  SumResult res;
  res.status = run_until_honest([](const Node& nd) {
    return nd.secure_sum() != nullptr && nd.secure_sum()->has_output();
  });
  res.all_output = true;
  for (int i : honest_ids()) {
    const SecureSumSession* s = node(i).secure_sum();
    if (s != nullptr && s->has_output()) {
      res.outputs.emplace(i, s->output().value());
    } else {
      res.all_output = false;
    }
    if (s != nullptr && s->core()) res.cores.emplace(i, *s->core());
  }
  res.agreed = res.all_output && !res.outputs.empty();
  for (const auto& [i, out] : res.outputs) {
    if (out != res.outputs.begin()->second) res.agreed = false;
  }
  res.metrics = engine_.metrics();
  return res;
}

}  // namespace svss
