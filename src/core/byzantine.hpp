// Byzantine behaviour library.
//
// A faulty process runs the honest Node code with a wire interceptor that
// rewrites its outbound packets per recipient ("honest code, corrupted
// wire").  This covers the attack classes the paper's proofs quantify
// over — equivocating dealers, wrong reconstruction values, lying
// moderators, crashes — while keeping a single protocol implementation.
// Interceptors compose with adversarial schedulers (sim/scheduler.hpp),
// which control delivery order.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

enum class ByzKind {
  kHonest,          // no interference
  kSilent,          // crashed from the start: sends nothing
  kCrashMidway,     // sends the first `crash_after` packets, then nothing
  kEquivocate,      // sends perturbed field values to the upper half of
                    // the process ids (split-view dealer/confirmer)
  kWrongRecon,      // corrupts its MW-SVSS reconstruct broadcasts — the
                    // attack DMM rules 2-3 are built to catch
  kLyingModerator,  // corrupts its monitor values and M-set broadcasts
  kBitFlip,         // flips each outbound field value with probability
                    // `flip_prob` (protocol-grammar fuzzing)
};

struct ByzConfig {
  ByzKind kind = ByzKind::kHonest;
  std::uint64_t crash_after = 200;  // kCrashMidway
  double flip_prob = 0.05;          // kBitFlip
};

// Builds the outbound interceptor implementing `cfg` for a process in an
// (n, t) system.  `seed` makes randomized strategies reproducible.
Engine::Interceptor make_byzantine_interceptor(const ByzConfig& cfg, int n,
                                               int t, std::uint64_t seed);

// Applies `mutate` to the application message carried by `p` — directly for
// direct packets, through (de)serialization for the value of the process's
// own RB phase-1 sends.  Relayed RB traffic (echo/ready for other origins)
// is left alone unless `mutate_relays` is set.  Shared by the interceptor
// library above and the protocol-level strategies in src/adversary/.
void mutate_outbound_message(Packet& p, int self,
                             const std::function<void(Message&)>& mutate,
                             bool mutate_relays);

}  // namespace svss
