// core::Node — one honest process running the full protocol stack.
//
// A Node owns, per process: the reliable-broadcast engine, the DMM filter,
// and lazily created protocol sessions (MW-SVSS, SVSS, common-coin rounds,
// any number of agreement instances, and the ACS / secure-sum / MVBA
// extension sessions).  It routes every inbound packet:
//
//   network packet
//     -> RB transport state machine (if transport)       [rbc/]
//     -> application routing by session path
//          VSS layers pass the DMM filter: session-ordered discard
//          (rule 4), delay (rule 5); reconstruct broadcasts resolve
//          expectations (rules 2-3)                       [dmm/]
//     -> per-session state machine                       [mwsvss/ svss/ ...]
//
// and routes completion events upward (MW-SVSS -> SVSS -> coin -> ABA,
// ABA decisions -> ACS -> secure sum).
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "common/flat_map.hpp"

#include "aba/aba.hpp"
#include "aba/local_coin_aba.hpp"
#include "aba/vote_batch.hpp"
#include "aba/multivalued.hpp"
#include "acs/acs.hpp"
#include "asmpc/secure_sum.hpp"
#include "coin/batched_transport.hpp"
#include "coin/coin.hpp"
#include "dmm/dmm.hpp"
#include "mwsvss/group_transport.hpp"
#include "mwsvss/mwsvss.hpp"
#include "rbc/rbc.hpp"
#include "sim/engine.hpp"
#include "svss/svss.hpp"

namespace svss {

// Optional callbacks for harnesses (tests, benchmarks, examples) observing
// protocol-level events at this node.
struct NodeObservers {
  std::function<void(Context&, const SessionId&)> mw_share_complete;
  std::function<void(Context&, const SessionId&, std::optional<Fp>)>
      mw_output;
  std::function<void(Context&, const SessionId&)> svss_share_complete;
  std::function<void(Context&, const SessionId&, std::optional<Fp>)>
      svss_output;
  // Coin outputs of agreement instance 0 / standalone coin rounds.
  std::function<void(Context&, std::uint32_t, int)> coin_output;
  // Fires for every agreement instance: (value, round, instance).  The
  // daemon recovery layer journals decisions through this.
  std::function<void(Context&, int, std::uint32_t, std::uint32_t)>
      aba_decided;
};

class Node : public IProcess,
             public MwHost,
             public SvssHost,
             public CoinHost,
             public AbaHost,
             public AcsHost,
             public SecureSumHost,
             public MvbaHost {
 public:
  // `batched_coin` multiplexes the n coin-owned SVSS sessions per round
  // over the shared transport envelopes (src/coin/batched_transport.hpp);
  // `batched_mw` coalesces the coin-nested MW-SVSS child traffic under
  // group envelopes (src/mwsvss/group_transport.hpp); `batched_votes`
  // coalesces agreement votes across concurrent instances and rounds
  // (src/aba/vote_batch.hpp).  Inbound envelopes are always understood,
  // so batched and unbatched nodes interoperate; the flags only select
  // this node's *own* outbound framing.
  Node(int self, int n, int t, bool batched_coin = true,
       bool batched_mw = true, bool batched_votes = true);

  // Invoked once by the engine before any delivery; used by runners to
  // kick off deals / agreement inputs.
  void set_start_action(std::function<void(Context&, Node&)> action) {
    start_action_ = std::move(action);
  }

  // --- IProcess ---
  void start(Context& ctx) override;
  void on_packet(Context& ctx, int from, const Packet& p) override;

  // --- session access (get-or-create) ---
  MwSvssSession& mw(Context& ctx, const SessionId& sid);
  SvssSession& svss(Context& ctx, const SessionId& sid);
  // Instance-0 convenience (single-instance drivers) and the general form.
  CoinSession& coin(Context& ctx, std::uint32_t round);
  CoinSession& coin(Context& ctx, std::uint32_t instance,
                    std::uint32_t round);
  void start_aba(Context& ctx, int input, CoinMode mode,
                 std::uint64_t common_seed = 0, std::uint32_t instance = 0);
  void start_benor(Context& ctx, int input);
  // Joins the common-subset protocol with `proposal`.  The ACS layer owns
  // agreement instances [0, n); configure their coin with mode/seed.
  void start_acs(Context& ctx, Bytes proposal, CoinMode mode,
                 std::uint64_t common_seed = 0);
  // Joins the ASMPC secure-sum protocol with a private summand.
  void start_secure_sum(Context& ctx, Fp input, CoinMode mode,
                        std::uint64_t common_seed = 0);
  // Multivalued agreement (Turpin-Coan over the binary protocol).
  void start_mvba(Context& ctx, Fp proposal, Fp default_value, CoinMode mode,
                  std::uint64_t common_seed = 0);

  // --- lookups (may return nullptr) ---
  [[nodiscard]] const MwSvssSession* find_mw(const SessionId& sid) const;
  [[nodiscard]] const SvssSession* find_svss(const SessionId& sid) const;
  [[nodiscard]] const CoinSession* find_coin(std::uint32_t round) const;
  [[nodiscard]] const CoinSession* find_coin(std::uint32_t instance,
                                             std::uint32_t round) const;
  [[nodiscard]] AbaSession* aba(std::uint32_t instance = 0);
  [[nodiscard]] const AbaSession* aba(std::uint32_t instance = 0) const;
  [[nodiscard]] BenOrSession* benor() { return benor_.get(); }
  [[nodiscard]] const BenOrSession* benor() const { return benor_.get(); }
  [[nodiscard]] AcsSession* acs() { return acs_.get(); }
  [[nodiscard]] const AcsSession* acs() const { return acs_.get(); }
  [[nodiscard]] SecureSumSession* secure_sum() { return sum_.get(); }
  [[nodiscard]] const SecureSumSession* secure_sum() const {
    return sum_.get();
  }
  [[nodiscard]] MvbaSession* mvba() { return mvba_.get(); }
  [[nodiscard]] const MvbaSession* mvba() const { return mvba_.get(); }

  Dmm& dmm() override { return dmm_; }
  [[nodiscard]] const Dmm& dmm() const { return dmm_; }
  Rbc& rbc() { return rbc_; }
  [[nodiscard]] int self() const { return self_; }

  NodeObservers observers;

  // --- MwHost / SvssHost / CoinHost / AbaHost ---
  void rb_broadcast(Context& ctx, const Message& m) override;
  void send_direct(Context& ctx, int to, Message m) override;
  void mw_share_completed(Context& ctx, const SessionId& sid) override;
  void mw_recon_output(Context& ctx, const SessionId& sid,
                       std::optional<Fp> value) override;
  MwSvssSession& mw_child(Context& ctx, const SessionId& child) override;
  void svss_share_completed(Context& ctx, const SessionId& sid) override;
  void svss_recon_output(Context& ctx, const SessionId& sid,
                         std::optional<Fp> value) override;
  SvssSession& svss_child(Context& ctx, const SessionId& sid) override;
  void coin_output(Context& ctx, std::uint32_t instance, std::uint32_t round,
                   int bit) override;
  void svss_batch_window(Context& ctx, std::uint32_t instance,
                         std::uint32_t round, bool open) override;
  void start_coin(Context& ctx, std::uint32_t instance,
                  std::uint32_t round) override;
  void aba_decided(Context& ctx, int value, std::uint32_t round,
                   std::uint32_t instance) override;
  void acs_start_aba(Context& ctx, std::uint32_t instance, int input) override;
  void acs_completed(Context& ctx,
                     const std::vector<std::pair<int, Bytes>>& subset) override;
  SvssSession& sum_svss(Context& ctx, const SessionId& sid) override;
  void sum_start_acs(Context& ctx, Bytes proposal) override;
  void sum_vouch(Context& ctx, int dealer) override;
  void mvba_start_acs(Context& ctx, Bytes proposal) override;

 private:
  void route_app(Context& ctx, int sender, const Message& m, bool via_rb);
  // DMM-filtered per-session delivery for the SVSS layers (both the direct
  // path and the sub-messages of unpacked batch envelopes).
  void deliver_svss(Context& ctx, int sender, const Message& m, bool via_rb);
  // Same for the MW layer: DMM filter, recon-expectation rules 2-3, then
  // the per-session state machine.  Sub-messages of unpacked kMwBatch*
  // envelopes take exactly this path, so batching never skips a rule.
  void deliver_mw(Context& ctx, int sender, const Message& m, bool via_rb);
  // Bracket one delivery cascade with the MW group-capture window (plain
  // open/close calls, not a callable wrapper — this is the per-delivery
  // hot path).  open returns true iff this call opened the window, i.e.
  // the caller owns the matching close.
  bool open_mw_window();
  void close_mw_window(Context& ctx);
  // Same bracketing for the cross-instance agreement-vote batcher.
  bool open_vote_window();
  void close_vote_window(Context& ctx);
  AbaSession& aba_instance(std::uint32_t instance);
  [[nodiscard]] bool sane_sid(const SessionId& sid) const;

  int self_;
  int n_;
  int t_;
  Rbc rbc_;
  Dmm dmm_;
  // Present iff this node deals its coin rounds batched.
  std::unique_ptr<BatchedSvssTransport> batch_;
  // Present iff this node coalesces its coin-nested MW child traffic.
  std::unique_ptr<MwGroupTransport> mw_batch_;
  // Present iff this node coalesces agreement votes across instances.
  std::unique_ptr<AbaVoteBatcher> vote_batch_;
  // Flat tables (common/flat_map.hpp): session lookup is the per-delivery
  // routing cost, so these sit on the hot path.  Sessions are never erased.
  FlatMap<SessionId, std::unique_ptr<MwSvssSession>, SessionIdHash> mw_;
  FlatMap<SessionId, std::unique_ptr<SvssSession>, SessionIdHash> svss_;
  // Keyed by (instance << 32) | round.
  std::unordered_map<std::uint64_t, std::unique_ptr<CoinSession>> coins_;
  std::unordered_map<std::uint32_t, std::unique_ptr<AbaSession>> abas_;
  std::unique_ptr<BenOrSession> benor_;
  std::unique_ptr<AcsSession> acs_;
  std::unique_ptr<SecureSumSession> sum_;
  std::unique_ptr<MvbaSession> mvba_;
  // RB-delivered extension broadcasts arriving before the local session is
  // created (RB delivers exactly once, so they must not be dropped).
  std::vector<std::pair<int, Message>> pending_acs_;
  std::vector<std::pair<int, Message>> pending_sum_;
  // Coin configuration for lazily created agreement instances (messages of
  // an instance may arrive before this process starts it).
  CoinMode aba_mode_ = CoinMode::kIdealCommon;
  std::uint64_t aba_seed_ = 0;
  std::function<void(Context&, Node&)> start_action_;
};

}  // namespace svss
