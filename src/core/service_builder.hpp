// svss::ServiceBuilder — the one front door for applications.
//
// Every example used to copy-paste RunnerConfig setup; the builder replaces
// that with a fluent surface covering both deployment shapes:
//
//   * build_runner(): an in-process Runner (sim backend by default, or
//     socket-loopback via transport(TransportKind::kSocketLoopback)) that
//     owns all n slots — the reproducible-experiment shape.
//   * build_daemon(self, cluster): ONE slot of a real multi-process
//     deployment — a Node over a net::SocketTransport bound to this
//     process's endpoint, dialing the peers in the ClusterConfig.  Each OS
//     process of the fleet builds its own.
//
// Unset fields get the library defaults (t = floor((n-1)/3), batched
// framings, sim backend).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "core/daemon.hpp"
#include "core/runner.hpp"
#include "net/endpoint.hpp"

namespace svss {

// One OS process of a socket-backed fleet: the transport endpoint plus the
// NodeDaemon driving a full protocol Node over it.
class DaemonService {
 public:
  DaemonService(int self, int n, int t, std::uint64_t seed,
                net::ClusterConfig cluster, const TransportOptions& opts);

  Node& node() { return daemon_->node(); }
  // A Context for injecting local actions (deals, inputs) between polls.
  Context ctx() { return Context(daemon_->world()); }
  net::SocketTransport& transport() { return *transport_; }

  // Binds the listener, installs SIGTERM/SIGINT stop handlers, and runs
  // the node's start hook.  False on bind failure (port taken, bad
  // address).  The handlers make run_until()/linger() return early when a
  // supervisor signals the process, so daemon mains can shut down
  // cleanly instead of dying mid-write.
  bool start();
  // Drives the socket loop until pred(), the timeout, or stop_requested();
  // true iff pred().
  bool run_until(const std::function<bool()>& pred, int timeout_ms);
  // Keeps relaying for `linger_ms` after this slot is done, so peers that
  // still need our RB echoes/readies can finish too.  Cut short by
  // stop_requested().
  void linger(int linger_ms);
  // True once the process received SIGTERM/SIGINT (after start()).
  [[nodiscard]] static bool stop_requested();
  // Flushes what the connections will take, then closes the listener and
  // every socket.  Idempotent; the destructor closes too, but calling
  // this first frees the port before any final reporting the main does.
  void shutdown();

  // Starts agreement instance `instance` with this process's binary
  // input.  Instances submitted between polls multiplex over the one
  // transport; every fleet member must submit the same instance (with
  // its own input) and use the same mode/seed.  Drive with run_until
  // checking node().aba(instance)->decided().
  void submit(std::uint32_t instance, int input,
              CoinMode mode = CoinMode::kIdealCommon,
              std::uint64_t common_seed = 0);

 private:
  std::unique_ptr<net::SocketTransport> transport_;
  std::unique_ptr<NodeDaemon> daemon_;
};

class ServiceBuilder {
 public:
  ServiceBuilder& n(int value) {
    n_ = value;
    return *this;
  }
  ServiceBuilder& t(int value) {
    t_ = value;
    return *this;
  }
  ServiceBuilder& seed(std::uint64_t value) {
    seed_ = value;
    return *this;
  }
  ServiceBuilder& scheduler(SchedulerKind value) {
    scheduler_ = value;
    return *this;
  }
  ServiceBuilder& transport(TransportKind value) {
    options_.kind = value;
    return *this;
  }
  ServiceBuilder& coin_framing(Framing value) {
    options_.coin_dealing = value;
    return *this;
  }
  ServiceBuilder& mw_framing(Framing value) {
    options_.mw_children = value;
    return *this;
  }
  ServiceBuilder& vote_framing(Framing value) {
    options_.aba_votes = value;
    return *this;
  }
  ServiceBuilder& fault(int id, ByzConfig behaviour) {
    faults_[id] = behaviour;
    return *this;
  }
  ServiceBuilder& max_deliveries(std::uint64_t value) {
    max_deliveries_ = value;
    return *this;
  }

  [[nodiscard]] RunnerConfig runner_config() const;
  [[nodiscard]] Runner build_runner() const { return Runner(runner_config()); }
  // This process as slot `self` of the fleet described by `cluster` (which
  // also fixes n; t defaults to floor((n-1)/3)).  Faults installed via
  // fault() apply to this slot only if `self` matches.
  [[nodiscard]] DaemonService build_daemon(int self,
                                           net::ClusterConfig cluster) const;

 private:
  int n_ = 4;
  std::optional<int> t_;
  std::uint64_t seed_ = 1;
  SchedulerKind scheduler_ = SchedulerKind::kRandom;
  TransportOptions options_;
  std::map<int, ByzConfig> faults_;
  std::uint64_t max_deliveries_ = 50'000'000;
};

}  // namespace svss
