// svss::ServiceBuilder — the one front door for applications.
//
// Every example used to copy-paste RunnerConfig setup; the builder replaces
// that with a fluent surface covering both deployment shapes:
//
//   * build_runner(): an in-process Runner (sim backend by default, or
//     socket-loopback via transport(TransportKind::kSocketLoopback)) that
//     owns all n slots — the reproducible-experiment shape.
//   * build_daemon(self, cluster): ONE slot of a real multi-process
//     deployment — a Node over a net::SocketTransport bound to this
//     process's endpoint, dialing the peers in the ClusterConfig.  Each OS
//     process of the fleet builds its own.
//
// A daemon's stack is SocketTransport -> EpochTransport -> NodeDaemon:
// the epoch fence (core/epoch.hpp) sits between the wire and the protocol
// even in single-epoch deployments (epoch 0, identity membership), so
// reconfiguration and the catch-up control plane need no special wiring.
// enable_recovery() adds the checkpoint + journal persistence of
// core/recovery.hpp; recover() + catch_up() bring a restarted daemon back
// to the fleet's state.
//
// Unset fields get the library defaults (t = floor((n-1)/3), batched
// framings, sim backend).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/daemon.hpp"
#include "core/epoch.hpp"
#include "core/recovery.hpp"
#include "core/runner.hpp"
#include "net/endpoint.hpp"

namespace svss {

// One OS process of a socket-backed fleet: the transport endpoint plus the
// NodeDaemon driving a full protocol Node over it.
//
// Movable until start(); start() installs this-capturing hooks, so the
// object must sit at its final address from then on.
class DaemonService {
 public:
  DaemonService(int self, int n, int t, std::uint64_t seed,
                net::ClusterConfig cluster, const TransportOptions& opts);

  Node& node() { return daemon_->node(); }
  // A Context for injecting local actions (deals, inputs) between polls.
  Context ctx() { return Context(daemon_->world()); }
  net::SocketTransport& transport() { return *transport_; }
  EpochTransport& epoch_transport() { return *epoch_; }
  [[nodiscard]] std::uint32_t current_epoch() const {
    return epoch_->config().epoch;
  }

  // Binds the listener, installs SIGTERM/SIGINT stop handlers, wires the
  // decision observer + catch-up control plane, and runs the node's start
  // hook.  False on bind failure (port taken, bad address).  The handlers
  // make run_until()/linger() return early when a supervisor signals the
  // process, so daemon mains can shut down cleanly instead of dying
  // mid-write.
  bool start();
  // Drives the socket loop until pred(), the timeout, or stop_requested();
  // true iff pred().
  bool run_until(const std::function<bool()>& pred, int timeout_ms);
  // Keeps relaying for `linger_ms` after this slot is done, so peers that
  // still need our RB echoes/readies can finish too.  Cut short by
  // stop_requested().
  void linger(int linger_ms);
  // True once the process received SIGTERM/SIGINT (after start()).
  [[nodiscard]] static bool stop_requested();
  // Flushes what the connections will take, then closes the listener and
  // every socket.  Idempotent; the destructor closes too, but calling
  // this first frees the port before any final reporting the main does.
  void shutdown();

  // Starts agreement instance `instance` with this process's binary
  // input.  Instances submitted between polls multiplex over the one
  // transport; every fleet member must submit the same instance (with
  // its own input) and use the same mode/seed.  Drive with run_until
  // checking node().aba(instance)->decided().
  void submit(std::uint32_t instance, int input,
              CoinMode mode = CoinMode::kIdealCommon,
              std::uint64_t common_seed = 0);

  // --- reconfiguration -----------------------------------------------
  // Installs `next` at a boundary the caller has already agreed (drained
  // instances + a decided kEpochBoundaryInstance round).  Tears down the
  // old epoch's protocol stack and builds a fresh one at this slot's new
  // rank with the epoch's derived seed; a slot not in `next` becomes a
  // spectator (no stack) that still answers the control plane.  In-flight
  // next-epoch traffic buffered at the fence replays into the new stack.
  void advance_epoch(const EpochConfig& next);
  // Live endpoint replacement for a universe slot (a peer process was
  // swapped for one at a new address).
  void rebind_peer(int id, net::Endpoint ep) {
    transport_->rebind_peer(id, std::move(ep));
  }

  // --- crash recovery ------------------------------------------------
  // Persist decisions to `checkpoint_path` (+ ".journal"): every decision
  // is journaled immediately, and every `checkpoint_every` decisions the
  // full state checkpoints atomically and the journal truncates.  Call
  // before start(), on the object's final address.
  void enable_recovery(std::string checkpoint_path, int checkpoint_every = 4);
  // Loads checkpoint + journal into the decision table.  Call after
  // enable_recovery(), before start().  True iff any persisted state was
  // found.
  bool recover();
  // Rejoin handshake: broadcasts kEpochCatchupReq (ints = the (epoch,
  // instance) pairs already known), adopts any decision t+1 peers report
  // with a matching value, and re-enters a later epoch once t+1 peers
  // report a byte-identical config for it (agreeing on the epoch id alone
  // is not enough — a lone Byzantine reply must not pick the member set).
  // State replies are tallied only while this call is in flight; the
  // tallies are cleared before it returns.  Returns true iff every
  // instance in `instances` has a known decision afterwards.
  bool catch_up(const std::vector<std::uint32_t>& instances, int timeout_ms);
  // Forces a checkpoint now (clean-shutdown path, and the fallback when a
  // journal append fails).  No-op without enable_recovery(); true iff the
  // checkpoint file now covers the whole decision table.
  bool checkpoint_now();

  using DecisionKey = std::pair<std::uint32_t, std::uint32_t>;  // epoch, inst
  // The decision for `instance` in its latest epoch, if known (decided
  // locally, recovered from disk, or adopted via catch-up).
  [[nodiscard]] std::optional<int> decision(std::uint32_t instance) const;
  [[nodiscard]] const std::map<DecisionKey, DecisionRecord>& decisions()
      const {
    return decided_;
  }
  // Catch-up cost actually paid: state frames / payload bytes received.
  [[nodiscard]] std::uint64_t catchup_frames() const {
    return catchup_frames_;
  }
  [[nodiscard]] std::uint64_t catchup_bytes() const { return catchup_bytes_; }

 private:
  void install_hooks();
  void on_control(int global_from, const Message& m);
  void note_decision(int value, std::uint32_t round, std::uint32_t instance);
  void adopt_record(const DecisionRecord& rec);
  // Claims one tally-map slot for `global_from`; false once that peer hit
  // its per-handshake cap, so a flooder cannot grow the vote maps.
  bool take_tally_slot(int global_from);
  // Witness threshold for adopting a record of `rec_epoch`: the current
  // config's t, raised by the t of any reported config for an epoch this
  // daemon would cross to get there — t+1 matching reports must contain
  // an honest witness under every resilience spanned.
  [[nodiscard]] int witness_t(std::uint32_t rec_epoch) const;
  [[nodiscard]] std::string journal_path() const {
    return checkpoint_path_ + ".journal";
  }

  int self_;
  std::uint64_t seed_;
  TransportOptions opts_;
  std::unique_ptr<net::SocketTransport> transport_;
  std::unique_ptr<EpochTransport> epoch_;
  std::unique_ptr<NodeDaemon> daemon_;

  std::string checkpoint_path_;
  int checkpoint_every_ = 4;
  int since_checkpoint_ = 0;
  std::unique_ptr<DecisionJournal> journal_;
  std::map<DecisionKey, DecisionRecord> decided_;

  // Catch-up tallies: value reports per (epoch, instance, value) and
  // config reports per *byte-identical serialized config*, each needing
  // t+1 distinct reporters.  Live only while catch_up() is in flight
  // (unsolicited state frames are dropped on arrival) and per-peer
  // key-capped, so a Byzantine peer can neither overwrite an honest
  // quorum's config nor grow the maps without bound.
  bool catchup_active_ = false;
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::int32_t>,
           std::set<int>>
      value_votes_;
  std::map<Bytes, std::pair<std::set<int>, EpochConfig>> epoch_votes_;
  std::map<int, int> tallied_keys_;  // per-peer distinct keys this handshake
  std::uint64_t catchup_frames_ = 0;
  std::uint64_t catchup_bytes_ = 0;
};

class ServiceBuilder {
 public:
  ServiceBuilder& n(int value) {
    n_ = value;
    return *this;
  }
  ServiceBuilder& t(int value) {
    t_ = value;
    return *this;
  }
  ServiceBuilder& seed(std::uint64_t value) {
    seed_ = value;
    return *this;
  }
  ServiceBuilder& scheduler(SchedulerKind value) {
    scheduler_ = value;
    return *this;
  }
  ServiceBuilder& transport(TransportKind value) {
    options_.kind = value;
    return *this;
  }
  ServiceBuilder& coin_framing(Framing value) {
    options_.coin_dealing = value;
    return *this;
  }
  ServiceBuilder& mw_framing(Framing value) {
    options_.mw_children = value;
    return *this;
  }
  ServiceBuilder& vote_framing(Framing value) {
    options_.aba_votes = value;
    return *this;
  }
  ServiceBuilder& fault(int id, ByzConfig behaviour) {
    faults_[id] = behaviour;
    return *this;
  }
  ServiceBuilder& max_deliveries(std::uint64_t value) {
    max_deliveries_ = value;
    return *this;
  }

  [[nodiscard]] RunnerConfig runner_config() const;
  [[nodiscard]] Runner build_runner() const { return Runner(runner_config()); }
  // This process as slot `self` of the fleet described by `cluster` (which
  // also fixes n; t defaults to floor((n-1)/3)).  Faults installed via
  // fault() apply to this slot only if `self` matches.
  [[nodiscard]] DaemonService build_daemon(int self,
                                           net::ClusterConfig cluster) const;

 private:
  int n_ = 4;
  std::optional<int> t_;
  std::uint64_t seed_ = 1;
  SchedulerKind scheduler_ = SchedulerKind::kRandom;
  TransportOptions options_;
  std::map<int, ByzConfig> faults_;
  std::uint64_t max_deliveries_ = 50'000'000;
};

}  // namespace svss
