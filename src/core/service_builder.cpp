#include "core/service_builder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace svss {

namespace {

EpochConfig identity_epoch(int n, int t) {
  EpochConfig cfg;
  cfg.epoch = 0;
  cfg.t = t;
  cfg.members.resize(static_cast<std::size_t>(n));
  std::iota(cfg.members.begin(), cfg.members.end(), 0);
  return cfg;
}

// Per-peer ceiling on distinct tally keys during one catch-up handshake,
// and a ceiling on distinct epoch-config candidates overall.  Honest
// replies stay far below both; reports past the cap are dropped (a later
// catch_up round re-requests whatever is still missing).
constexpr int kMaxTalliedKeys = 1 << 16;
constexpr std::size_t kMaxEpochCandidates = 64;

}  // namespace

DaemonService::DaemonService(int self, int n, int t, std::uint64_t seed,
                             net::ClusterConfig cluster,
                             const TransportOptions& opts)
    : self_(self), seed_(seed), opts_(opts) {
  transport_ =
      std::make_unique<net::SocketTransport>(self, std::move(cluster));
  epoch_ = std::make_unique<EpochTransport>(*transport_,
                                            identity_epoch(n, t));
  // Epoch 0 is the identity membership, so rank == global id and the
  // derived seed stream matches what a pre-epoch fleet used to run.
  daemon_ = std::make_unique<NodeDaemon>(self, n, t,
                                         epoch_seed(seed, 0), *epoch_, opts);
}

bool DaemonService::start() {
  if (!transport_->open()) return false;
  net::install_stop_handlers();
  install_hooks();
  daemon_->start();
  epoch_->flush_buffered();
  return true;
}

void DaemonService::install_hooks() {
  daemon_->node().observers.aba_decided =
      [this](Context&, int value, std::uint32_t round,
             std::uint32_t instance) { note_decision(value, round, instance); };
  epoch_->set_control(
      [this](int from, const Message& m) { on_control(from, m); });
}

bool DaemonService::stop_requested() { return net::stop_requested(); }

void DaemonService::shutdown() { transport_->shutdown(); }

bool DaemonService::run_until(const std::function<bool()>& pred,
                              int timeout_ms) {
  return transport_->run_until(pred, timeout_ms);
}

void DaemonService::linger(int linger_ms) {
  transport_->run_until([] { return false; }, linger_ms);
}

void DaemonService::submit(std::uint32_t instance, int input, CoinMode mode,
                           std::uint64_t common_seed) {
  Context c = ctx();
  node().start_aba(c, input, mode, common_seed, instance);
}

// ----------------------------------------------------------------------
// Reconfiguration
// ----------------------------------------------------------------------

void DaemonService::advance_epoch(const EpochConfig& next) {
  epoch_->set_delivery(nullptr);
  daemon_.reset();
  epoch_->install(next);
  if (epoch_->is_member()) {
    daemon_ = std::make_unique<NodeDaemon>(
        epoch_->self(), next.n(), next.t, epoch_seed(seed_, next.epoch),
        *epoch_, opts_);
    install_hooks();
    daemon_->start();
    epoch_->flush_buffered();
  }
}

// ----------------------------------------------------------------------
// Crash recovery
// ----------------------------------------------------------------------

void DaemonService::enable_recovery(std::string checkpoint_path,
                                    int checkpoint_every) {
  checkpoint_path_ = std::move(checkpoint_path);
  checkpoint_every_ = checkpoint_every < 1 ? 1 : checkpoint_every;
  journal_ = std::make_unique<DecisionJournal>();
  if (!journal_->open(journal_path())) journal_.reset();
}

bool DaemonService::recover() {
  if (checkpoint_path_.empty()) return false;
  bool found = false;
  if (auto cp = load_checkpoint(checkpoint_path_)) {
    for (const DecisionRecord& r : cp->decisions) {
      decided_.emplace(DecisionKey{r.epoch, r.instance}, r);
    }
    found = true;
  }
  auto tail = DecisionJournal::replay(journal_path());
  for (const DecisionRecord& r : tail) {
    decided_.emplace(DecisionKey{r.epoch, r.instance}, r);
  }
  return found || !tail.empty();
}

void DaemonService::note_decision(int value, std::uint32_t round,
                                  std::uint32_t instance) {
  // Boundary rounds close an epoch; they are control flow, not output.
  if (instance == kEpochBoundaryInstance) return;
  DecisionRecord rec;
  rec.epoch = current_epoch();
  rec.instance = instance;
  rec.value = value;
  rec.round = round;
  adopt_record(rec);
}

void DaemonService::adopt_record(const DecisionRecord& rec) {
  DecisionKey key{rec.epoch, rec.instance};
  if (!decided_.emplace(key, rec).second) return;
  if (journal_) {
    if (!journal_->append(rec)) {
      // A failed append can leave a torn entry mid-journal; replay stops
      // at the tear, so every later append would be silently discarded on
      // recovery.  Fold the whole table into a checkpoint (which
      // truncates the journal); failing that, truncate the tear away, and
      // failing even that stop journaling — a missing journal only costs
      // wire catch-up, a torn one costs decisions.
      if (!checkpoint_now()) {
        if (!journal_->reset()) journal_.reset();
        since_checkpoint_ = checkpoint_every_;  // retry on the next decision
      }
      return;
    }
    if (++since_checkpoint_ >= checkpoint_every_) checkpoint_now();
  }
}

bool DaemonService::checkpoint_now() {
  if (checkpoint_path_.empty()) return false;
  CheckpointData data;
  data.epoch = current_epoch();
  data.config = epoch_->config();
  data.seed = seed_;
  data.decisions.reserve(decided_.size());
  for (const auto& [key, rec] : decided_) data.decisions.push_back(rec);
  if (!save_checkpoint(checkpoint_path_, data)) return false;
  if (journal_) journal_->reset();
  since_checkpoint_ = 0;
  return true;
}

// ----------------------------------------------------------------------
// Catch-up handshake
// ----------------------------------------------------------------------

void DaemonService::on_control(int global_from, const Message& m) {
  if (m.type == MsgType::kEpochCatchupReq) {
    // Answer with everything the requester did not declare known.
    std::set<DecisionKey> known;
    for (std::size_t i = 0; i + 1 < m.ints.size(); i += 2) {
      known.emplace(static_cast<std::uint32_t>(m.ints[i]),
                    static_cast<std::uint32_t>(m.ints[i + 1]));
    }
    std::vector<DecisionRecord> fresh;
    for (const auto& [key, rec] : decided_) {
      if (known.count(key) == 0) fresh.push_back(rec);
    }
    Message reply;
    reply.type = MsgType::kEpochCatchupState;
    reply.sid.owner = static_cast<std::int16_t>(self_);
    reply.blob =
        encode_catchup_state(current_epoch(), epoch_->config(), fresh);
    transport_->send(global_from, make_direct(std::move(reply)));
    return;
  }
  if (m.type != MsgType::kEpochCatchupState) return;
  // State replies only mean something while our own catch_up() is in
  // flight; tallying unsolicited ones would let any peer grow the vote
  // maps (and pre-stuff quorums) at will.
  if (!catchup_active_) return;
  auto st = decode_catchup_state(m.blob);
  if (!st) return;
  // The config must describe the epoch the sender claims to be current.
  if (st->config.epoch != st->current_epoch) return;
  ++catchup_frames_;
  catchup_bytes_ += m.blob.size();
  if (st->current_epoch > current_epoch()) {
    // Epoch candidates are keyed by the serialized config: t+1 reporters
    // must agree on a byte-identical config, so a lone Byzantine reply
    // can never smuggle a forged member set under an honest epoch id.
    Writer w;
    st->config.serialize(w);
    auto it = epoch_votes_.find(w.data());
    if (it == epoch_votes_.end()) {
      if (epoch_votes_.size() < kMaxEpochCandidates &&
          take_tally_slot(global_from)) {
        epoch_votes_.emplace(
            std::move(w).take(),
            std::pair{std::set<int>{global_from}, st->config});
      }
    } else if (it->second.first.count(global_from) == 0 &&
               take_tally_slot(global_from)) {
      it->second.first.insert(global_from);
    }
  }
  for (const DecisionRecord& rec : st->decisions) {
    if (decided_.count(DecisionKey{rec.epoch, rec.instance}) != 0) continue;
    std::tuple key{rec.epoch, rec.instance, rec.value};
    auto it = value_votes_.find(key);
    if (it == value_votes_.end()) {
      if (!take_tally_slot(global_from)) continue;
      it = value_votes_.emplace(key, std::set<int>{global_from}).first;
    } else if (it->second.count(global_from) == 0) {
      if (!take_tally_slot(global_from)) continue;
      it->second.insert(global_from);
    }
    // t+1 matching reports contain at least one honest witness — under
    // the resilience of every epoch between here and the record's.
    if (static_cast<int>(it->second.size()) >= witness_t(rec.epoch) + 1) {
      adopt_record(rec);
    }
  }
}

bool DaemonService::take_tally_slot(int global_from) {
  int& used = tallied_keys_[global_from];
  if (used >= kMaxTalliedKeys) return false;
  ++used;
  return true;
}

int DaemonService::witness_t(std::uint32_t rec_epoch) const {
  int t = epoch_->config().t;
  for (const auto& entry : epoch_votes_) {
    const EpochConfig& cfg = entry.second.second;
    if (cfg.epoch > current_epoch() && cfg.epoch <= rec_epoch) {
      t = std::max(t, cfg.t);
    }
  }
  return t;
}

bool DaemonService::catch_up(const std::vector<std::uint32_t>& instances,
                             int timeout_ms) {
  catchup_active_ = true;
  Message req;
  req.type = MsgType::kEpochCatchupReq;
  req.sid.owner = static_cast<std::int16_t>(self_);
  req.ints.reserve(decided_.size() * 2);
  for (const auto& [key, rec] : decided_) {
    req.ints.push_back(static_cast<int>(key.first));
    req.ints.push_back(static_cast<int>(key.second));
  }
  for (int g = 0; g < transport_->n(); ++g) {
    if (g == self_) continue;
    transport_->send(g, make_direct(req));
  }
  auto have_all = [&] {
    return std::all_of(instances.begin(), instances.end(),
                       [&](std::uint32_t inst) {
                         return decision(inst).has_value();
                       });
  };
  transport_->run_until(have_all, timeout_ms);
  // Re-enter the newest later epoch whose byte-identical config t+1
  // peers reported.  The threshold honours both the epoch we are in and
  // the one we would join, so the quorum holds an honest witness under
  // either resilience.
  std::optional<EpochConfig> next;
  for (const auto& entry : epoch_votes_) {
    const auto& voters = entry.second.first;
    const EpochConfig& cfg = entry.second.second;
    if (cfg.epoch <= current_epoch()) continue;
    if (static_cast<int>(voters.size()) <
        std::max(epoch_->config().t, cfg.t) + 1) {
      continue;
    }
    if (!next || cfg.epoch > next->epoch) next = cfg;
  }
  // The tallies are per-handshake state; keeping them would let later
  // frames build on a stale quorum.
  catchup_active_ = false;
  value_votes_.clear();
  epoch_votes_.clear();
  tallied_keys_.clear();
  if (next) advance_epoch(*next);
  return have_all();
}

std::optional<int> DaemonService::decision(std::uint32_t instance) const {
  std::optional<int> out;
  for (const auto& [key, rec] : decided_) {
    if (key.second == instance) out = rec.value;  // map order: epoch ascends
  }
  return out;
}

// ----------------------------------------------------------------------
// ServiceBuilder
// ----------------------------------------------------------------------

RunnerConfig ServiceBuilder::runner_config() const {
  RunnerConfig cfg;
  cfg.n = n_;
  cfg.t = t_.value_or((n_ - 1) / 3);
  cfg.seed = seed_;
  cfg.scheduler = scheduler_;
  cfg.transport = options_;
  cfg.faults = faults_;
  cfg.max_deliveries = max_deliveries_;
  return cfg;
}

DaemonService ServiceBuilder::build_daemon(int self,
                                           net::ClusterConfig cluster) const {
  int n = cluster.n();
  if (self < 0 || self >= n) {
    throw std::invalid_argument("ServiceBuilder: self outside the cluster");
  }
  int t = t_.value_or((n - 1) / 3);
  DaemonService service(self, n, t, seed_, std::move(cluster), options_);
  auto fit = faults_.find(self);
  if (fit != faults_.end() && fit->second.kind != ByzKind::kHonest) {
    std::uint64_t slot_seed =
        seed_ * 1315423911ULL + static_cast<std::uint64_t>(self);
    auto wire = make_byzantine_interceptor(fit->second, n, t, slot_seed);
    service.transport().set_send_hook(
        [wire, self](int to, Packet& p) { return wire(self, to, p); });
  }
  return service;
}

}  // namespace svss
