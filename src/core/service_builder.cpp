#include "core/service_builder.hpp"

#include <stdexcept>

namespace svss {

DaemonService::DaemonService(int self, int n, int t, std::uint64_t seed,
                             net::ClusterConfig cluster,
                             const TransportOptions& opts) {
  transport_ = std::make_unique<net::SocketTransport>(self, std::move(cluster));
  daemon_ = std::make_unique<NodeDaemon>(self, n, t, seed, *transport_, opts);
}

bool DaemonService::start() {
  if (!transport_->open()) return false;
  net::install_stop_handlers();
  daemon_->start();
  return true;
}

bool DaemonService::stop_requested() { return net::stop_requested(); }

void DaemonService::shutdown() { transport_->shutdown(); }

bool DaemonService::run_until(const std::function<bool()>& pred,
                              int timeout_ms) {
  return transport_->run_until(pred, timeout_ms);
}

void DaemonService::linger(int linger_ms) {
  transport_->run_until([] { return false; }, linger_ms);
}

void DaemonService::submit(std::uint32_t instance, int input, CoinMode mode,
                           std::uint64_t common_seed) {
  Context c = ctx();
  node().start_aba(c, input, mode, common_seed, instance);
}

RunnerConfig ServiceBuilder::runner_config() const {
  RunnerConfig cfg;
  cfg.n = n_;
  cfg.t = t_.value_or((n_ - 1) / 3);
  cfg.seed = seed_;
  cfg.scheduler = scheduler_;
  cfg.transport = options_;
  cfg.faults = faults_;
  cfg.max_deliveries = max_deliveries_;
  return cfg;
}

DaemonService ServiceBuilder::build_daemon(int self,
                                           net::ClusterConfig cluster) const {
  int n = cluster.n();
  if (self < 0 || self >= n) {
    throw std::invalid_argument("ServiceBuilder: self outside the cluster");
  }
  int t = t_.value_or((n - 1) / 3);
  DaemonService service(self, n, t, seed_, std::move(cluster), options_);
  auto fit = faults_.find(self);
  if (fit != faults_.end() && fit->second.kind != ByzKind::kHonest) {
    std::uint64_t slot_seed =
        seed_ * 1315423911ULL + static_cast<std::uint64_t>(self);
    auto wire = make_byzantine_interceptor(fit->second, n, t, slot_seed);
    service.transport().set_send_hook(
        [wire, self](int to, Packet& p) { return wire(self, to, p); });
  }
  return service;
}

}  // namespace svss
