// core::Runner — reproducible end-to-end experiment harness.
//
// A Runner assembles an Engine with n process slots — each hosting either
// an honest Node or an adversary strategy (src/adversary/) — installs
// Byzantine wire interceptors for the configured faulty processes, and
// exposes canned experiment drivers for every layer of the stack: one
// MW-SVSS session, one SVSS session, one common-coin round, and full
// agreement runs (the paper's protocol plus the Bracha-local-coin and
// Ben-Or baselines).  Every run is a pure function of the config, so any
// interesting outcome can be replayed from its seed.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/adversary_slot.hpp"
#include "core/byzantine.hpp"
#include "core/epoch.hpp"
#include "core/node.hpp"
#include "sim/engine.hpp"
#include "sim/scheduler.hpp"

namespace svss {

// Builds a run's scheduler from (scheduler seed, n, t).  The run stays a
// pure function of its config only if the factory is a pure function of
// these arguments — which every shipped factory (make_scheduler kinds,
// search/genome.hpp genome schedules) is.
using SchedulerFactory =
    std::function<std::unique_ptr<Scheduler>(std::uint64_t seed, int n, int t)>;

struct RunnerConfig {
  int n = 4;
  int t = 1;  // resilience parameter used by the protocol logic
  std::uint64_t seed = 1;
  SchedulerKind scheduler = SchedulerKind::kRandom;
  // When set, overrides `scheduler`: the run's delivery order comes from
  // this factory's scheduler instead of a fixed SchedulerKind.  This is how
  // search-found schedule genomes (src/search/) and other custom schedule
  // adversaries enter a run; the Runner attaches its ScheduleView to
  // whatever the factory builds, so the scheduler may consult observable
  // strategy/protocol state (sim/scheduler.hpp).
  SchedulerFactory scheduler_factory;
  std::map<int, ByzConfig> faults;  // id -> behaviour (absent == honest)
  // id -> adversary strategy occupying that slot instead of an honest
  // Node.  Populated via the svss::adversary install helpers.  A slot may
  // additionally appear in `faults`; its wire interceptor then composes on
  // top of the strategy's outbound gate.
  std::map<int, AdversarySlotFactory> adversaries;
  std::uint64_t max_deliveries = 50'000'000;
  // The paper's protocols are only safe at optimal resilience n >= 3t+1;
  // the Runner rejects weaker configs unless this is set.  Experiments
  // that deliberately cross the bound (e.g. bench_resilience's n = 3t
  // stall demonstration) opt in explicitly.
  bool allow_sub_resilience = false;
  // Print a one-line warning to stderr when a run stops at the delivery
  // cap (the outcome is also surfaced in Metrics::capped either way).
  bool warn_on_cap = true;
  // The run's transport surface: which backend (sim | socket-loopback) and
  // which wire framings (coin-dealing batch, MW group coalescing, per-slot
  // overrides).  See net/transport.hpp for the semantics of each knob.
  //
  // kSocketLoopback runs the same protocol code over n real TCP endpoints
  // on 127.0.0.1 (one thread each; see core/daemon.hpp) instead of the
  // simulator.  Supported drivers: run_coin and run_aba.  `scheduler` is
  // ignored (the kernel is the scheduler), `faults` apply through the send
  // hook, and `adversaries` are rejected — strategies need scheduler-side
  // determinism the socket backend cannot give.
  TransportOptions transport;
  // --- deprecated aliases -------------------------------------------
  // Pre-seam names for the framing knobs, kept so existing configs
  // compile.  A non-default value here overrides the corresponding
  // `transport` field at validation; after validation both views agree.
  // New code should set `transport` directly.
  bool batched_coin_dealing = true;
  bool batched_mw_children = true;
  std::map<int, bool> mw_batch_override;
};

// Canonical session ids for top-level invocations.
SessionId mw_top_id(std::uint32_t c, int dealer, int moderator);
SessionId svss_top_id(std::uint32_t c, int dealer);

class Runner {
 public:
  explicit Runner(RunnerConfig cfg);

  Engine& engine() { return engine_; }
  // The honest Node in slot i; throws if the slot hosts an adversary.
  Node& node(int i);
  // The adversary strategy in slot i, or nullptr for honest slots.
  [[nodiscard]] AdversarySlot* adversary(int i);
  Context ctx(int i) { return Context(engine_, i); }
  [[nodiscard]] bool is_honest(int i) const;
  [[nodiscard]] std::vector<int> honest_ids() const;
  [[nodiscard]] const RunnerConfig& config() const { return cfg_; }

  // ------------------------------------------------------------------
  // Layer experiment drivers
  // ------------------------------------------------------------------
  struct MwResult {
    bool all_honest_shared = false;
    bool all_honest_output = false;
    std::map<int, std::optional<Fp>> outputs;  // honest only
    std::vector<std::pair<int, int>> shun_pairs;
    Metrics metrics;
    RunStatus status = RunStatus::kQuiescent;
  };
  // Runs one MW-SVSS session: dealer deals `secret`, the moderator's input
  // is `moderator_input`; reconstruction starts once every honest process
  // finished the share phase (if requested and sharing succeeded).
  MwResult run_mwsvss(Fp secret, Fp moderator_input, int dealer = 0,
                      int moderator = 1, bool reconstruct = true);

  struct SvssResult {
    bool all_honest_shared = false;
    bool all_honest_output = false;
    std::map<int, std::optional<Fp>> outputs;
    std::vector<std::pair<int, int>> shun_pairs;
    Metrics metrics;
    RunStatus status = RunStatus::kQuiescent;
  };
  SvssResult run_svss(Fp secret, int dealer = 0, bool reconstruct = true);

  struct CoinResult {
    std::map<int, int> bits;  // honest only
    bool all_output = false;
    bool agreed = false;
    std::vector<std::pair<int, int>> shun_pairs;
    Metrics metrics;
    RunStatus status = RunStatus::kQuiescent;
  };
  CoinResult run_coin(std::uint32_t round = 1);

  struct AbaResult {
    std::map<int, int> decisions;  // honest only
    std::map<int, std::uint32_t> decision_rounds;
    bool all_decided = false;
    bool agreed = false;
    int value = -1;
    std::uint32_t max_round = 0;
    std::vector<std::pair<int, int>> shun_pairs;
    Metrics metrics;
    RunStatus status = RunStatus::kQuiescent;
  };
  // inputs.size() must be n; faulty inputs are fed to the (tampered) nodes
  // as well.
  AbaResult run_aba(const std::vector<int>& inputs,
                    CoinMode mode = CoinMode::kSvss);
  AbaResult run_benor(const std::vector<int>& inputs);

  // ------------------------------------------------------------------
  // Multi-instance agreement: many concurrent instances, one stack
  // ------------------------------------------------------------------
  // Queues agreement instance `instance` with one input per process
  // (inputs.size() must be n).  All queued instances start together in
  // run_submitted(), multiplexed over the same nodes and transport —
  // their votes share session space via SessionId::instance and, under
  // the default framing, the same kAbaBatchVote envelopes.  Do not mix
  // with run_acs in one Runner: the ACS layer owns instances [0, n).
  void submit(std::uint32_t instance, std::vector<int> inputs);

  struct MultiAbaResult {
    // instance -> honest id -> decision.
    std::map<std::uint32_t, std::map<int, int>> decisions;
    // instance -> the agreed value (populated iff that instance agreed).
    std::map<std::uint32_t, int> values;
    bool all_decided = false;  // every honest node decided every instance
    bool agreed = false;       // ... and per-instance decisions match
    Metrics metrics;
    RunStatus status = RunStatus::kQuiescent;
  };
  // Drives every submitted instance to decision concurrently (sim or
  // socket-loopback backend, like run_aba).  Consumes the queue.
  MultiAbaResult run_submitted(CoinMode mode = CoinMode::kIdealCommon);

  // ------------------------------------------------------------------
  // Membership reconfiguration (core/epoch.hpp)
  // ------------------------------------------------------------------
  // Runs a script of membership epochs over the config's universe of n
  // transport slots: per epoch, every live member runs the plan's
  // agreement instances, then all members agree the boundary (one
  // reserved instance) and the next config installs — join, leave, or
  // replace of slots, plus members that crash exactly at a boundary.
  // Works on both backends (cfg.transport.kind); faults/adversaries are
  // rejected — the reconfiguration adversary is EpochPlan's crash set.
  EpochsResult run_epochs(const std::vector<EpochPlan>& script,
                          CoinMode mode = CoinMode::kIdealCommon);

  struct AcsResult {
    std::map<int, std::vector<std::pair<int, Bytes>>> outputs;  // honest
    bool all_output = false;
    bool agreed = false;
    Metrics metrics;
    RunStatus status = RunStatus::kQuiescent;
  };
  // Agreement on a common subset; proposals.size() must be n.
  AcsResult run_acs(const std::vector<Bytes>& proposals,
                    CoinMode mode = CoinMode::kIdealCommon);

  struct MvbaResult {
    std::map<int, std::uint64_t> decisions;  // honest only
    bool all_decided = false;
    bool agreed = false;
    std::uint64_t value = 0;
    Metrics metrics;
    RunStatus status = RunStatus::kQuiescent;
  };
  // Multivalued agreement (Turpin-Coan); proposals.size() must be n.
  MvbaResult run_mvba(const std::vector<Fp>& proposals, Fp default_value,
                      CoinMode mode = CoinMode::kIdealCommon);

  struct SumResult {
    std::map<int, std::uint64_t> outputs;  // honest only
    std::map<int, std::set<int>> cores;    // agreed input providers
    bool all_output = false;
    bool agreed = false;
    Metrics metrics;
    RunStatus status = RunStatus::kQuiescent;
  };
  // ASMPC secure sum; inputs.size() must be n.
  SumResult run_secure_sum(const std::vector<Fp>& inputs,
                           CoinMode mode = CoinMode::kIdealCommon);

  // Shun events observed by honest processes (a Byzantine node running the
  // honest code can "detect" its own tampered traffic; those events are
  // noise and are filtered out of results).
  [[nodiscard]] std::vector<std::pair<int, int>> honest_shun_pairs() const;

 private:
  RunStatus run_until_honest(const std::function<bool(const Node&)>& pred);
  // Routes a driver's start action to whatever occupies slot i (honest
  // Node or adversary strategy).
  void set_slot_start(int i, std::function<void(Context&, Node&)> action);
  // Socket-loopback driver bodies (core/daemon.hpp clusters).
  CoinResult run_coin_loopback(std::uint32_t round);
  AbaResult run_aba_loopback(const std::vector<int>& inputs, CoinMode mode);
  MultiAbaResult run_submitted_loopback(CoinMode mode);

  std::map<std::uint32_t, std::vector<int>> submitted_;

  RunnerConfig cfg_;
  Engine engine_;
  std::vector<Node*> nodes_;         // borrowed; nullptr for adversary slots
  std::vector<AdversarySlot*> advs_; // borrowed; nullptr for honest slots
  // Observable run state served to the scheduler (sim/scheduler.hpp):
  // delivery clock from the engine, slot/deception classification from the
  // adversary slots.  Owned here because it borrows both.
  std::unique_ptr<ScheduleView> sched_view_;
};

}  // namespace svss
