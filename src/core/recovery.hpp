// Crash recovery for a single daemon: checkpoint + journal + catch-up.
//
// A daemon's durable state is tiny — the epoch it is in and the decisions
// it has emitted — because the agreement protocol itself is memoryless
// across instances: an undecided instance is re-learned from peers (the
// catch-up handshake), never replayed locally.  Persistence is two files:
//
//   * checkpoint: the full state, written atomically (tmp + fsync +
//     rename) at a configurable decision cadence.  A reader either sees
//     the old checkpoint or the new one, never a torn one.
//   * journal: an append-only log of decisions since the last checkpoint
//     ([u32 len][record] entries, fsync'd per append).  A crash can tear
//     the final entry; replay stops at the first short or malformed entry
//     and keeps everything before it — exactly the EventLog-as-journal
//     discipline, applied to the one event class that must survive.
//
// On restart, state = checkpoint ∪ journal.  What neither can hold —
// decisions made by the fleet while this daemon was dead — comes from the
// catch-up handshake (kEpochCatchupReq/State, core/epoch.hpp control
// plane): the rejoiner broadcasts what it knows, peers answer with their
// decision records and current epoch, and the rejoiner adopts a decision
// once t+1 peers report the same value for the same (epoch, instance) —
// one honest witness among any t+1 reporters.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/serialization.hpp"
#include "core/epoch.hpp"

namespace svss {

struct DecisionRecord {
  std::uint32_t epoch = 0;
  std::uint32_t instance = 0;
  std::int32_t value = 0;
  std::uint32_t round = 0;

  friend bool operator==(const DecisionRecord&,
                         const DecisionRecord&) = default;
};

struct CheckpointData {
  std::uint32_t epoch = 0;  // epoch the daemon was in when it checkpointed
  EpochConfig config;       // that epoch's membership
  std::uint64_t seed = 0;   // service seed (sanity-checked on recovery)
  std::vector<DecisionRecord> decisions;
};

// Atomic checkpoint write: serialize to `path`.tmp, fsync, rename over
// `path`.  Returns false (leaving any previous checkpoint intact) on any
// I/O failure.
bool save_checkpoint(const std::string& path, const CheckpointData& data);
// Returns nullopt if the file is absent, truncated, or malformed.
std::optional<CheckpointData> load_checkpoint(const std::string& path);

// Append-only decision journal between checkpoints.
class DecisionJournal {
 public:
  DecisionJournal() = default;
  ~DecisionJournal();
  DecisionJournal(const DecisionJournal&) = delete;
  DecisionJournal& operator=(const DecisionJournal&) = delete;

  // Opens `path` for appending (creating it if needed).
  bool open(const std::string& path);
  [[nodiscard]] bool is_open() const { return f_ != nullptr; }
  // Appends one record and flushes it to disk before returning.
  bool append(const DecisionRecord& r);
  // Truncates the journal (call right after a successful checkpoint — the
  // checkpoint now covers everything the journal held).
  bool reset();
  void close();

  // Replays a journal file: every complete, well-formed entry in order.  A
  // torn tail (crash mid-append) is expected and silently ignored.
  static std::vector<DecisionRecord> replay(const std::string& path);

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
};

// Catch-up handshake payloads.  The request's known decisions travel as
// Message::ints pairs [epoch, instance, epoch, instance, ...]; the reply
// blob is this codec: the responder's current epoch, its config, and its
// decision records.
Bytes encode_catchup_state(std::uint32_t current_epoch,
                           const EpochConfig& config,
                           const std::vector<DecisionRecord>& decisions);
struct CatchupState {
  std::uint32_t current_epoch = 0;
  EpochConfig config;
  std::vector<DecisionRecord> decisions;
};
std::optional<CatchupState> decode_catchup_state(const Bytes& blob);

}  // namespace svss
