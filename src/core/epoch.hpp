// Epoch layer: membership reconfiguration over an unchanged core protocol.
//
// The paper fixes the process set forever; a long-lived agreement service
// cannot.  Following the recovery/reconfiguration-as-layers shape (Ekström
// & Haridi, PAPERS.md), epochs live entirely at the transport seam:
//
//   * EpochConfig names one membership epoch — an id, the member slots
//     drawn from a fixed universe of transport endpoints, and the epoch's
//     own resilience parameter t.
//   * EpochTransport wraps any ITransport endpoint and presents the
//     current epoch's members as a dense rank space [0, n_e).  Outbound
//     envelopes are stamped with the epoch id (SessionId::epoch, carried
//     by both wire codecs); inbound traffic from older epochs or from
//     non-members is dropped at the seam, traffic from *future* epochs is
//     buffered and replayed once the boundary passes, and the stamp is
//     zeroed before delivery — so Node and every protocol session run
//     exactly the code the equivalence harness pins, always at epoch 0.
//   * A boundary is agreed, not assumed: the runner drains the epoch's
//     submitted instances, then runs one reserved agreement instance
//     (kEpochBoundaryInstance) in which every member votes 1; the next
//     config installs when it decides.
//
// Runner::run_epochs drives a whole script of epochs on either backend —
// the sim engine (deterministic) or a socket-loopback fleet of real TCP
// endpoints — including join/leave/replace of a slot and members that
// crash exactly at an epoch boundary (the reconfiguration adversary).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/serialization.hpp"
#include "net/transport.hpp"
#include "sim/metrics.hpp"

namespace svss {

class Engine;
struct RunnerConfig;
enum class CoinMode;  // aba/aba.hpp

// One membership epoch: which universe slots participate, and with what
// resilience.  Members are global transport slot ids, strictly ascending;
// a member's *rank* (index in `members`) is the process id the protocol
// stack sees.
struct EpochConfig {
  std::uint32_t epoch = 0;
  std::vector<int> members;
  int t = 0;

  [[nodiscard]] int n() const { return static_cast<int>(members.size()); }
  [[nodiscard]] bool contains(int global) const;
  // Rank of a global slot id, or -1 if it is not a member.
  [[nodiscard]] int rank_of(int global) const;
  [[nodiscard]] int global_of(int rank) const {
    return members[static_cast<std::size_t>(rank)];
  }

  void serialize(Writer& w) const;
  static std::optional<EpochConfig> deserialize(Reader& r);

  friend bool operator==(const EpochConfig&, const EpochConfig&) = default;
};

// Per-epoch protocol seed: every member derives the same stream roots for
// epoch e from the service seed, on both backends.
[[nodiscard]] std::uint64_t epoch_seed(std::uint64_t base,
                                       std::uint32_t epoch);

// The reserved agreement instance that closes an epoch (all members vote
// 1; its decision is the agreed boundary).  High enough that application
// instance ids never collide with it.
inline constexpr std::uint32_t kEpochBoundaryInstance = 0xE0000000u;

// ----------------------------------------------------------------------
// EpochTransport — the epoch fence at the transport seam
// ----------------------------------------------------------------------

class EpochTransport final : public ITransport {
 public:
  // Wraps `inner` (one universe endpoint; self()/send() in global slot
  // space) and presents the rank space of `cfg`.  If inner.self() is not
  // a member, this endpoint is a spectator: it buffers future-epoch
  // traffic and answers the control plane, but delivers nothing.
  EpochTransport(ITransport& inner, EpochConfig cfg);

  // --- ITransport (rank space of the current epoch) ---
  void send(int to, Packet p) override;
  void broadcast(const Packet& p) override;
  void set_delivery(Delivery sink) override { sink_ = std::move(sink); }
  void set_send_hook(SendHook hook) override { hook_ = std::move(hook); }
  [[nodiscard]] int self() const override { return rank_; }
  [[nodiscard]] int n() const override { return cfg_.n(); }

  // Control-plane sink: catch-up messages (kEpochCatchupReq/State) bypass
  // the fence entirely and arrive here with the *global* sender id.
  using Control = std::function<void(int global_from, const Message& m)>;
  void set_control(Control c) { control_ = std::move(c); }

  [[nodiscard]] const EpochConfig& config() const { return cfg_; }
  [[nodiscard]] bool is_member() const { return rank_ >= 0; }

  // Installs the next epoch at the agreed boundary and replays buffered
  // future-epoch packets that now match.  Call only from the thread that
  // drives the inner transport, with no Node attached or a freshly built
  // one (the old epoch's sink must be cleared first).
  void install(EpochConfig next);
  // Re-feeds the buffer through the fence.  Call after attaching a fresh
  // delivery sink: current-epoch packets that arrived while no Node was
  // attached (the construction window at a boundary) sit in the buffer
  // and deliver now.
  void flush_buffered();

  // Packets dropped at the fence (stale epoch / non-member sender).
  [[nodiscard]] std::uint64_t fenced_stale() const { return fenced_stale_; }
  [[nodiscard]] std::uint64_t fenced_foreign() const {
    return fenced_foreign_;
  }
  [[nodiscard]] std::size_t buffered_future() const {
    return future_.size();
  }

 private:
  void on_inner(int global_from, Packet p);
  static std::uint32_t packet_epoch(const Packet& p);
  static void stamp_epoch(Packet& p, std::uint32_t epoch);

  ITransport& inner_;
  EpochConfig cfg_;
  int rank_ = -1;
  Delivery sink_;
  SendHook hook_;
  Control control_;
  // Parked packets (global sender id): future-epoch traffic awaiting its
  // boundary, plus current-epoch traffic that arrived while no delivery
  // sink was attached (the Node rebuild window at a boundary).  A peer
  // that reaches epoch e+1 first keeps sending; nothing is lost at the
  // boundary.  Bounded: oldest dropped past the cap (they count as stale
  // once the boundary passes anyway, so loss here only costs what
  // asynchrony could cost too).
  std::deque<std::pair<int, Packet>> future_;
  std::size_t future_cap_ = 1 << 14;
  std::uint64_t fenced_stale_ = 0;
  std::uint64_t fenced_foreign_ = 0;
};

// ----------------------------------------------------------------------
// Epoch scripts (Runner::run_epochs)
// ----------------------------------------------------------------------

// One epoch of a reconfiguration script: its config, the agreement
// instances to run in it (inputs indexed by *rank*), and the members that
// crash exactly at its boundary (global ids) — the reconfiguration
// adversary.  A crashed slot stays silent in every later epoch; scripts
// must keep crashes within each later epoch's t.
struct EpochPlan {
  EpochConfig config;
  std::map<std::uint32_t, std::vector<int>> instances;
  std::set<int> crash_at_boundary;
};

struct EpochsResult {
  struct PerEpoch {
    // instance -> global member id -> decision (live members only).
    std::map<std::uint32_t, std::map<int, int>> decisions;
    // instance -> agreed value (set iff all live members agreed).
    std::map<std::uint32_t, int> values;
    bool boundary_decided = false;  // trivially true for the last epoch
  };
  std::vector<PerEpoch> epochs;
  bool all_decided = false;  // every live member decided every instance
  bool agreed = false;       // ... and per-instance decisions match
  Metrics metrics;
};

// Backend drivers (core/epoch.cpp); Runner::run_epochs dispatches on
// cfg.transport.kind.  Both construct, per epoch and member, a fresh
// NodeDaemon at its rank over an EpochTransport, so the two backends stay
// byte-equivalent per the equivalence harness.
EpochsResult run_epochs_sim(Engine& engine, const RunnerConfig& cfg,
                            const std::vector<EpochPlan>& script,
                            CoinMode mode);
EpochsResult run_epochs_loopback(const RunnerConfig& cfg,
                                 const std::vector<EpochPlan>& script,
                                 CoinMode mode);

}  // namespace svss
