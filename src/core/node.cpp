#include "core/node.hpp"

namespace svss {

Node::Node(int self, int n, int t, bool batched_coin, bool batched_mw,
           bool batched_votes)
    : self_(self), n_(n), t_(t),
      rbc_([this](Context& ctx, int origin, const Message& m) {
        // Accepted broadcasts re-enter routing with the origin as sender;
        // the VSS layers' DMM filter applies the session-ordered discard.
        route_app(ctx, origin, m, /*via_rb=*/true);
      }),
      dmm_(Dmm::Hooks{
          /*on_shun=*/nullptr,
          /*redeliver=*/
          [this](Context& ctx, int from, const Message& m, bool via_rb) {
            route_app(ctx, from, m, via_rb);
          },
      }) {
  if (batched_coin) {
    batch_ = std::make_unique<BatchedSvssTransport>(self, n, t);
  }
  if (batched_mw) {
    mw_batch_ = std::make_unique<MwGroupTransport>(self, n, t);
  }
  if (batched_votes) {
    vote_batch_ = std::make_unique<AbaVoteBatcher>(self, n);
  }
}

// The MW capture window brackets whole delivery cascades: everything a
// delivery (or the start action) makes the sessions emit is coalesced and
// flushed before control returns to the engine, so batching is pure
// framing — no message ever survives a cascade uncaptured or unsent.
bool Node::open_mw_window() {
  if (!mw_batch_ || mw_batch_->window_open()) return false;
  mw_batch_->open_window();
  return true;
}

void Node::close_mw_window(Context& ctx) {
  if (mw_batch_->close_window_if_empty()) return;
  mw_batch_->close_window(
      ctx, MwGroupTransport::EmitFns{
               [this](Context& c, const Message& m) { rbc_.broadcast(c, m); },
               [](Context& c, int to, Message m) {
                 c.send(to, make_direct(std::move(m)));
               },
           });
}

bool Node::open_vote_window() {
  if (!vote_batch_ || vote_batch_->window_open()) return false;
  vote_batch_->open_window();
  return true;
}

void Node::close_vote_window(Context& ctx) {
  if (vote_batch_->close_window_if_empty()) return;
  vote_batch_->close_window(
      ctx, AbaVoteBatcher::EmitFns{
               [this](Context& c, const Message& m) { rbc_.broadcast(c, m); },
               [](Context& c, int to, Message m) {
                 c.send(to, make_direct(std::move(m)));
               },
           });
}

void Node::start(Context& ctx) {
  const bool windowed = open_mw_window();
  const bool vote_windowed = open_vote_window();
  if (start_action_) start_action_(ctx, *this);
  if (vote_windowed) close_vote_window(ctx);
  if (windowed) close_mw_window(ctx);
}

void Node::on_packet(Context& ctx, int from, const Packet& p) {
  const bool windowed = open_mw_window();
  const bool vote_windowed = open_vote_window();
  if (p.is_rb) {
    rbc_.on_transport(ctx, from, p);
  } else {
    route_app(ctx, from, p.app, /*via_rb=*/false);
  }
  if (vote_windowed) close_vote_window(ctx);
  if (windowed) close_mw_window(ctx);
}

bool Node::sane_sid(const SessionId& sid) const {
  auto pid_ok = [this](int p) { return p >= 0 && p < n_; };
  switch (sid.path) {
    case SessionPath::kMwTop:
      return pid_ok(sid.owner) && pid_ok(sid.moderator) &&
             sid.owner != sid.moderator;
    case SessionPath::kMwInSvssTop:
      return pid_ok(sid.owner) && pid_ok(sid.moderator) &&
             pid_ok(sid.svss_dealer) && sid.owner != sid.moderator &&
             sid.variant <= 1;
    case SessionPath::kMwInSvssCoin:
      // Variants 2-3 are the group-envelope sid space (variant - 2 encodes
      // the children's variant); only kMwBatch* messages may use them.
      return pid_ok(sid.owner) && pid_ok(sid.moderator) &&
             pid_ok(sid.svss_dealer) && sid.owner != sid.moderator &&
             sid.variant <= 3;
    case SessionPath::kSvssTop:
    case SessionPath::kSvssCoin:
      return pid_ok(sid.owner);
    case SessionPath::kCoin:
    case SessionPath::kAba:
    case SessionPath::kTest:
      return true;
  }
  return false;
}

void Node::route_app(Context& ctx, int sender, const Message& m,
                     bool via_rb) {
  if (!sane_sid(m.sid)) return;
  switch (m.sid.path) {
    case SessionPath::kMwTop:
    case SessionPath::kMwInSvssTop:
    case SessionPath::kMwInSvssCoin: {
      if (MwGroupTransport::is_batch_type(m.type)) {
        // Group envelope: split into the per-session messages and run each
        // through the normal per-session path (DMM filter and recon rules
        // included).  Understood unconditionally, so batched and unbatched
        // peers interoperate.
        MwGroupTransport::unpack(
            ctx, n_, t_, sender, m, via_rb,
            [this](Context& c, int s, const Message& sub, bool rb) {
              deliver_mw(c, s, sub, rb);
            });
        return;
      }
      // Envelope sid space carrying a non-envelope type: no session lives
      // at variants 2-3.
      if (m.sid.variant > 1) return;
      deliver_mw(ctx, sender, m, via_rb);
      return;
    }
    case SessionPath::kSvssTop:
    case SessionPath::kSvssCoin: {
      if (BatchedSvssTransport::is_batch_type(m.type)) {
        // Shared-transport envelope: split into the per-session messages
        // and run each through the normal per-session path (DMM filter
        // included).  Understood unconditionally, so batched and
        // unbatched peers interoperate.
        BatchedSvssTransport::unpack(
            ctx, n_, t_, sender, m, via_rb,
            [this](Context& c, int s, const Message& sub, bool rb) {
              deliver_svss(c, s, sub, rb);
            });
        return;
      }
      deliver_svss(ctx, sender, m, via_rb);
      return;
    }
    case SessionPath::kCoin:
      if (via_rb && m.sid.counter <= kMaxN * kMaxN) {
        coin(ctx, m.sid.instance, m.sid.counter).on_broadcast(ctx, sender, m);
      }
      return;
    case SessionPath::kAba: {
      if (AbaVoteBatcher::is_batch_type(m.type)) {
        // Cross-instance vote envelope: split into the per-session votes
        // and run each through the normal per-instance path (AbaSession
        // re-applies the full vote validation).  Understood
        // unconditionally, so batched and unbatched peers interoperate.
        AbaVoteBatcher::unpack(
            ctx, sender, m, via_rb,
            [this](Context& c, int s, const Message& sub, bool rb) {
              AbaSession& session = aba_instance(sub.sid.instance);
              if (rb) {
                session.on_broadcast(c, s, sub);
              } else {
                session.on_direct(c, s, sub);
              }
            });
        return;
      }
      // Variant 4 is the vote-envelope sid space; no session lives there.
      if (m.sid.variant >= 4) return;
      // variant 0 = the SVSS-coin agreement protocol; variant 1 = the
      // Ben-Or baseline (separate message space).
      if (m.sid.variant == 1) {
        if (benor_ && !via_rb) benor_->on_direct(ctx, sender, m);
        return;
      }
      if (m.sid.variant == 2) {
        if (!via_rb) return;
        if (acs_) {
          acs_->on_broadcast(ctx, sender, m);
        } else {
          pending_acs_.emplace_back(sender, m);
        }
        return;
      }
      if (m.sid.variant == 3) {
        if (!via_rb) return;
        if (sum_) {
          sum_->on_broadcast(ctx, sender, m);
        } else {
          pending_sum_.emplace_back(sender, m);
        }
        return;
      }
      // Create the instance lazily with the node's configured coin: ACS
      // instances receive peer votes before this process provides input.
      AbaSession& session = aba_instance(m.sid.instance);
      if (via_rb) {
        session.on_broadcast(ctx, sender, m);
      } else {
        session.on_direct(ctx, sender, m);
      }
      return;
    }
    case SessionPath::kTest:
      return;
  }
}

void Node::deliver_mw(Context& ctx, int sender, const Message& m,
                      bool via_rb) {
  if (!dmm_.filter(ctx, sender, m, via_rb)) return;
  if (via_rb && m.type == MsgType::kMwReconVal && m.vals.size() == 1 &&
      m.a >= 0 && m.a < n_) {
    // DMM rules 2-3: resolve or violate reconstruction expectations
    // before the session acts on the value.
    if (!dmm_.on_recon_value(ctx, sender, m.sid, m.a, m.vals[0])) return;
  }
  MwSvssSession& s = mw(ctx, m.sid);
  if (via_rb) {
    s.on_broadcast(ctx, sender, m);
  } else {
    s.on_direct(ctx, sender, m);
  }
}

void Node::deliver_svss(Context& ctx, int sender, const Message& m,
                        bool via_rb) {
  if (!dmm_.filter(ctx, sender, m, via_rb)) return;
  SvssSession& s = svss(ctx, m.sid);
  if (via_rb) {
    s.on_broadcast(ctx, sender, m);
  } else {
    s.on_direct(ctx, sender, m);
  }
}

// ---------------------------------------------------------------------
// Session access
// ---------------------------------------------------------------------
MwSvssSession& Node::mw(Context& ctx, const SessionId& sid) {
  (void)ctx;
  std::unique_ptr<MwSvssSession>& slot = mw_[sid];
  if (!slot) {
    slot = std::make_unique<MwSvssSession>(*this, sid, self_, n_, t_);
  }
  return *slot;
}

SvssSession& Node::svss(Context& ctx, const SessionId& sid) {
  (void)ctx;
  std::unique_ptr<SvssSession>& slot = svss_[sid];
  if (!slot) {
    slot = std::make_unique<SvssSession>(*this, sid, self_, n_, t_);
  }
  return *slot;
}

namespace {
std::uint64_t coin_key(std::uint32_t instance, std::uint32_t round) {
  return (static_cast<std::uint64_t>(instance) << 32) | round;
}
}  // namespace

CoinSession& Node::coin(Context& ctx, std::uint32_t round) {
  return coin(ctx, 0, round);
}

CoinSession& Node::coin(Context& ctx, std::uint32_t instance,
                        std::uint32_t round) {
  (void)ctx;
  auto key = coin_key(instance, round);
  auto it = coins_.find(key);
  if (it == coins_.end()) {
    it = coins_
             .emplace(key, std::make_unique<CoinSession>(*this, round, self_,
                                                         n_, t_, instance))
             .first;
  }
  return *it->second;
}

void Node::start_aba(Context& ctx, int input, CoinMode mode,
                     std::uint64_t common_seed, std::uint32_t instance) {
  aba_mode_ = mode;
  aba_seed_ = common_seed;
  // Bracket with the capture windows so out-of-cascade submissions (a
  // daemon's submit() between polls) still get batched framing; inside a
  // delivery cascade the windows are already open and these are no-ops.
  const bool windowed = open_mw_window();
  const bool vote_windowed = open_vote_window();
  aba_instance(instance).start(ctx, input);
  if (vote_windowed) close_vote_window(ctx);
  if (windowed) close_mw_window(ctx);
}

AbaSession& Node::aba_instance(std::uint32_t instance) {
  auto it = abas_.find(instance);
  if (it == abas_.end()) {
    it = abas_.emplace(instance,
                       std::make_unique<AbaSession>(*this, self_, n_, t_,
                                                    aba_mode_, aba_seed_,
                                                    instance))
             .first;
  }
  return *it->second;
}

void Node::start_acs(Context& ctx, Bytes proposal, CoinMode mode,
                     std::uint64_t common_seed) {
  aba_mode_ = mode;
  aba_seed_ = common_seed;
  if (!acs_) {
    acs_ = std::make_unique<AcsSession>(*this, self_, n_, t_);
    for (auto& [sender, m] : pending_acs_) acs_->on_broadcast(ctx, sender, m);
    pending_acs_.clear();
  }
  acs_->start(ctx, std::move(proposal));
}

void Node::start_secure_sum(Context& ctx, Fp input, CoinMode mode,
                            std::uint64_t common_seed) {
  aba_mode_ = mode;
  aba_seed_ = common_seed;
  if (!sum_) {
    sum_ = std::make_unique<SecureSumSession>(*this, self_, n_, t_);
  }
  sum_->start(ctx, input);
  for (auto& [sender, m] : pending_sum_) sum_->on_broadcast(ctx, sender, m);
  pending_sum_.clear();
}

void Node::sum_start_acs(Context& ctx, Bytes proposal) {
  if (!acs_) {
    // The secure-sum ACS vouches on share completion, not on proposals,
    // and does not gate its output on proposal payloads.
    acs_ = std::make_unique<AcsSession>(
        *this, self_, n_, t_,
        AcsOptions{/*vouch_on_proposal=*/false, /*require_proposals=*/false});
    for (auto& [sender, m] : pending_acs_) acs_->on_broadcast(ctx, sender, m);
    pending_acs_.clear();
  }
  acs_->start(ctx, std::move(proposal));
}

void Node::sum_vouch(Context& ctx, int dealer) {
  if (acs_) acs_->mark_ready(ctx, dealer);
}

void Node::start_mvba(Context& ctx, Fp proposal, Fp default_value,
                      CoinMode mode, std::uint64_t common_seed) {
  aba_mode_ = mode;
  aba_seed_ = common_seed;
  if (!mvba_) {
    mvba_ = std::make_unique<MvbaSession>(*this, self_, n_, t_,
                                          default_value);
  }
  mvba_->start(ctx, proposal);
}

void Node::mvba_start_acs(Context& ctx, Bytes proposal) {
  if (!acs_) {
    acs_ = std::make_unique<AcsSession>(*this, self_, n_, t_);
    for (auto& [sender, m] : pending_acs_) acs_->on_broadcast(ctx, sender, m);
    pending_acs_.clear();
  }
  acs_->start(ctx, std::move(proposal));
}

SvssSession& Node::sum_svss(Context& ctx, const SessionId& sid) {
  return svss(ctx, sid);
}

void Node::acs_completed(Context& ctx,
                         const std::vector<std::pair<int, Bytes>>& subset) {
  if (sum_) sum_->on_acs_output(ctx, subset);
  if (mvba_) mvba_->on_acs_output(ctx, subset);
}

void Node::acs_start_aba(Context& ctx, std::uint32_t instance, int input) {
  aba_instance(instance).start(ctx, input);
}

AbaSession* Node::aba(std::uint32_t instance) {
  auto it = abas_.find(instance);
  return it == abas_.end() ? nullptr : it->second.get();
}

const AbaSession* Node::aba(std::uint32_t instance) const {
  auto it = abas_.find(instance);
  return it == abas_.end() ? nullptr : it->second.get();
}

void Node::start_benor(Context& ctx, int input) {
  if (!benor_) {
    benor_ = std::make_unique<BenOrSession>(
        [this](Context& c, int to, Message m) {
          send_direct(c, to, std::move(m));
        },
        self_, n_, t_);
  }
  benor_->start(ctx, input);
}

const MwSvssSession* Node::find_mw(const SessionId& sid) const {
  const std::unique_ptr<MwSvssSession>* slot = mw_.find(sid);
  return slot == nullptr ? nullptr : slot->get();
}

const SvssSession* Node::find_svss(const SessionId& sid) const {
  const std::unique_ptr<SvssSession>* slot = svss_.find(sid);
  return slot == nullptr ? nullptr : slot->get();
}

const CoinSession* Node::find_coin(std::uint32_t round) const {
  return find_coin(0, round);
}

const CoinSession* Node::find_coin(std::uint32_t instance,
                                   std::uint32_t round) const {
  auto it = coins_.find(coin_key(instance, round));
  return it == coins_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------------
// Host plumbing
// ---------------------------------------------------------------------
void Node::rb_broadcast(Context& ctx, const Message& m) {
  if (vote_batch_ && vote_batch_->window_open() &&
      vote_batch_->capture_broadcast(m)) {
    // Coalesced into the cascade's kAbaBatchConf envelope; flushed when
    // the vote window closes.
    return;
  }
  if (mw_batch_ && mw_batch_->window_open() &&
      mw_batch_->capture_broadcast(m)) {
    // Coalesced into the group's kMwBatch* envelope; flushed when the
    // current delivery cascade's window closes.
    return;
  }
  if (batch_ && m.type == MsgType::kSvssGset &&
      m.sid.path == SessionPath::kSvssCoin && m.sid.owner == self_) {
    // Batch the n sibling sessions' G-sets into one RBC instance: the
    // shared echo/ready rounds replace n per-session ones.  The combined
    // broadcast goes out when the last sibling produced its set.
    if (auto batched = batch_->capture_gset(m)) {
      rbc_.broadcast(ctx, *batched);
    }
    return;
  }
  rbc_.broadcast(ctx, m);
}

void Node::send_direct(Context& ctx, int to, Message m) {
  if (vote_batch_ && vote_batch_->window_open() &&
      vote_batch_->capture_direct(to, m)) {
    return;
  }
  if (mw_batch_ && mw_batch_->window_open() &&
      mw_batch_->capture_direct(to, m)) {
    return;
  }
  if (batch_ && batch_->capture_dealer_shares(to, m)) return;
  ctx.send(to, make_direct(std::move(m)));
}

void Node::svss_batch_window(Context& ctx, std::uint32_t instance,
                             std::uint32_t round, bool open) {
  if (!batch_) return;
  if (open) {
    batch_->open_window(instance, round);
  } else {
    batch_->close_window(ctx);
  }
}

MwSvssSession& Node::mw_child(Context& ctx, const SessionId& child) {
  return mw(ctx, child);
}

SvssSession& Node::svss_child(Context& ctx, const SessionId& sid) {
  return svss(ctx, sid);
}

void Node::mw_share_completed(Context& ctx, const SessionId& sid) {
  if (auto parent = parent_session(sid)) {
    svss(ctx, *parent).on_child_share_complete(ctx, sid);
  }
  if (observers.mw_share_complete) observers.mw_share_complete(ctx, sid);
}

void Node::mw_recon_output(Context& ctx, const SessionId& sid,
                           std::optional<Fp> value) {
  if (auto parent = parent_session(sid)) {
    svss(ctx, *parent).on_child_output(ctx, sid, value);
  }
  if (observers.mw_output) observers.mw_output(ctx, sid, value);
  if (auto* slot = mw_.find(sid); slot != nullptr && *slot) {
    (*slot)->compact();
  }
}

void Node::svss_share_completed(Context& ctx, const SessionId& sid) {
  if (sid.path == SessionPath::kSvssCoin) {
    coin(ctx, sid.instance, sid.counter / kMaxN)
        .on_child_share_complete(ctx, sid);
  }
  if (sum_ && sid.path == SessionPath::kSvssTop &&
      sid.counter >= kSumCounterBase) {
    sum_->on_input_share_complete(ctx, sid);
  }
  if (observers.svss_share_complete) observers.svss_share_complete(ctx, sid);
}

void Node::svss_recon_output(Context& ctx, const SessionId& sid,
                             std::optional<Fp> value) {
  if (sid.path == SessionPath::kSvssCoin) {
    coin(ctx, sid.instance, sid.counter / kMaxN).on_child_output(ctx, sid,
                                                                 value);
  }
  if (observers.svss_output) observers.svss_output(ctx, sid, value);
}

void Node::coin_output(Context& ctx, std::uint32_t instance,
                       std::uint32_t round, int bit) {
  auto it = abas_.find(instance);
  if (it != abas_.end()) it->second->on_coin(ctx, round, bit);
  if (instance == 0 && observers.coin_output) {
    observers.coin_output(ctx, round, bit);
  }
}

void Node::start_coin(Context& ctx, std::uint32_t instance,
                      std::uint32_t round) {
  coin(ctx, instance, round).start(ctx);
}

void Node::aba_decided(Context& ctx, int value, std::uint32_t round,
                       std::uint32_t instance) {
  if (acs_) acs_->on_aba_decided(ctx, instance, value);
  if (observers.aba_decided) {
    observers.aba_decided(ctx, value, round, instance);
  }
}

}  // namespace svss
