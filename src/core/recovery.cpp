#include "core/recovery.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace svss {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4B435653u;  // "SVCK"
constexpr std::uint32_t kCheckpointVersion = 1;
constexpr std::size_t kMaxRecords = 1 << 20;

void write_record(Writer& w, const DecisionRecord& r) {
  w.u32(r.epoch);
  w.u32(r.instance);
  w.i32(r.value);
  w.u32(r.round);
}

std::optional<DecisionRecord> read_record(Reader& r) {
  auto epoch = r.u32();
  auto instance = r.u32();
  auto value = r.i32();
  auto round = r.u32();
  if (!epoch || !instance || !value || !round) return std::nullopt;
  DecisionRecord rec;
  rec.epoch = *epoch;
  rec.instance = *instance;
  rec.value = *value;
  rec.round = *round;
  return rec;
}

bool write_all_and_sync(const std::string& path, const Bytes& payload) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  bool ok = payload.empty() ||
            std::fwrite(payload.data(), 1, payload.size(), f) ==
                payload.size();
  ok = ok && std::fflush(f) == 0;
  ok = ok && ::fsync(fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

std::optional<Bytes> read_whole_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  Bytes buf;
  std::uint8_t chunk[4096];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + got);
  }
  bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return buf;
}

}  // namespace

// ----------------------------------------------------------------------
// Checkpoint
// ----------------------------------------------------------------------

bool save_checkpoint(const std::string& path, const CheckpointData& data) {
  Writer w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u32(data.epoch);
  data.config.serialize(w);
  w.u64(data.seed);
  w.u32(static_cast<std::uint32_t>(data.decisions.size()));
  for (const DecisionRecord& r : data.decisions) write_record(w, r);

  const std::string tmp = path + ".tmp";
  if (!write_all_and_sync(tmp, w.data())) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<CheckpointData> load_checkpoint(const std::string& path) {
  auto buf = read_whole_file(path);
  if (!buf) return std::nullopt;
  Reader r(*buf);
  auto magic = r.u32();
  auto version = r.u32();
  if (!magic || *magic != kCheckpointMagic || !version ||
      *version != kCheckpointVersion) {
    return std::nullopt;
  }
  auto epoch = r.u32();
  auto config = EpochConfig::deserialize(r);
  auto seed = r.u64();
  auto count = r.u32();
  if (!epoch || !config || !seed || !count || *count > kMaxRecords) {
    return std::nullopt;
  }
  CheckpointData data;
  data.epoch = *epoch;
  data.config = std::move(*config);
  data.seed = *seed;
  data.decisions.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto rec = read_record(r);
    if (!rec) return std::nullopt;
    data.decisions.push_back(*rec);
  }
  if (!r.exhausted()) return std::nullopt;
  return data;
}

// ----------------------------------------------------------------------
// Journal
// ----------------------------------------------------------------------

DecisionJournal::~DecisionJournal() { close(); }

bool DecisionJournal::open(const std::string& path) {
  close();
  f_ = std::fopen(path.c_str(), "ab");
  if (f_ == nullptr) return false;
  path_ = path;
  return true;
}

bool DecisionJournal::append(const DecisionRecord& r) {
  if (f_ == nullptr) return false;
  Writer w;
  write_record(w, r);
  const Bytes& payload = w.data();
  std::uint8_t len[4];
  for (int i = 0; i < 4; ++i) {
    len[i] = static_cast<std::uint8_t>(payload.size() >> (8 * i));
  }
  bool ok = std::fwrite(len, 1, 4, f_) == 4 &&
            std::fwrite(payload.data(), 1, payload.size(), f_) ==
                payload.size();
  ok = ok && std::fflush(f_) == 0;
  ok = ok && ::fsync(fileno(f_)) == 0;
  return ok;
}

bool DecisionJournal::reset() {
  if (f_ == nullptr) return false;
  std::fclose(f_);
  f_ = std::fopen(path_.c_str(), "wb");  // truncate
  if (f_ == nullptr) return false;
  std::fclose(f_);
  f_ = std::fopen(path_.c_str(), "ab");
  return f_ != nullptr;
}

void DecisionJournal::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

std::vector<DecisionRecord> DecisionJournal::replay(const std::string& path) {
  std::vector<DecisionRecord> out;
  auto buf = read_whole_file(path);
  if (!buf) return out;
  std::size_t pos = 0;
  while (pos + 4 <= buf->size()) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>((*buf)[pos + static_cast<std::size_t>(
                                                        i)])
             << (8 * i);
    }
    if (len == 0 || len > 64 || pos + 4 + len > buf->size()) break;  // torn
    Bytes entry(buf->begin() + static_cast<std::ptrdiff_t>(pos + 4),
                buf->begin() + static_cast<std::ptrdiff_t>(pos + 4 + len));
    Reader r(entry);
    auto rec = read_record(r);
    if (!rec || !r.exhausted()) break;
    out.push_back(*rec);
    pos += 4 + len;
  }
  return out;
}

// ----------------------------------------------------------------------
// Catch-up codec
// ----------------------------------------------------------------------

Bytes encode_catchup_state(std::uint32_t current_epoch,
                           const EpochConfig& config,
                           const std::vector<DecisionRecord>& decisions) {
  Writer w;
  w.u32(current_epoch);
  config.serialize(w);
  w.u32(static_cast<std::uint32_t>(decisions.size()));
  for (const DecisionRecord& r : decisions) write_record(w, r);
  return std::move(w).take();
}

std::optional<CatchupState> decode_catchup_state(const Bytes& blob) {
  Reader r(blob);
  auto epoch = r.u32();
  auto config = EpochConfig::deserialize(r);
  auto count = r.u32();
  if (!epoch || !config || !count || *count > kMaxRecords) {
    return std::nullopt;
  }
  CatchupState st;
  st.current_epoch = *epoch;
  st.config = std::move(*config);
  st.decisions.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto rec = read_record(r);
    if (!rec) return std::nullopt;
    st.decisions.push_back(*rec);
  }
  if (!r.exhausted()) return std::nullopt;
  return st;
}

}  // namespace svss
