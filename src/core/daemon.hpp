// Transport-driven protocol endpoints.
//
// NodeDaemon is one slot of a cluster outside the simulator: a Node wired
// to an ITransport endpoint through a ProcessWorld-backed Context.  The
// multi-process examples (examples/agreement_cluster, examples/coin_service
// in --id mode) build one per OS process over a net::SocketTransport; the
// Runner's socket-loopback mode builds n of them in one process.
//
// LoopbackCluster hosts n NodeDaemons over real TCP on 127.0.0.1, one
// thread per endpoint.  Thread discipline is strict confinement: every
// daemon + transport pair is touched by exactly one worker thread between
// construction (main thread, before the workers start) and join (main
// thread, after) — the only cross-thread channels are the sockets and one
// atomic completion counter, which is what keeps the -fsanitize=thread CI
// lane clean.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/byzantine.hpp"
#include "core/node.hpp"
#include "net/socket_transport.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"

namespace svss {

class NodeDaemon {
 public:
  // Seeding matches Engine (Rng(seed).split(self)), so a daemon fleet
  // started from one seed deals the same values the simulator would.
  NodeDaemon(int self, int n, int t, std::uint64_t seed, ITransport& tr,
             const TransportOptions& opts);

  Node& node() { return node_; }
  ProcessWorld& world() { return world_; }

  // Runs the node's start hook (deal / input injection).  Call once, from
  // the thread that drives the transport.
  void start();

 private:
  ProcessWorld world_;
  Node node_;
};

// ----------------------------------------------------------------------
// LoopbackCluster
// ----------------------------------------------------------------------

struct LoopbackOptions {
  int n = 4;
  int t = 1;
  std::uint64_t seed = 1;
  TransportOptions transport;       // framings (kind is implied)
  std::map<int, ByzConfig> faults;  // wire faults via the send hook
  int timeout_ms = 30'000;
};

class LoopbackCluster {
 public:
  // Binds n kernel-assigned listeners and constructs every daemon; after
  // this, install start actions via node(i).set_start_action(...).
  explicit LoopbackCluster(LoopbackOptions opts);
  ~LoopbackCluster();

  Node& node(int i) { return daemons_[static_cast<std::size_t>(i)]->node(); }

  // Drives all n endpoints on their own threads until every slot for which
  // `honest` holds satisfies `pred` (or the timeout).  A satisfied slot
  // keeps polling until the whole cluster is done, so late RB relays still
  // flow.  Returns true iff all honest slots finished in time.
  bool run(const std::function<bool(const Node&)>& pred,
           const std::function<bool(int)>& honest);

  // Post-run views (valid after run() returns; logs are per-slot and get
  // concatenated slot-major — cross-slot order is not meaningful).
  [[nodiscard]] EventLog merged_log() const;
  [[nodiscard]] Metrics merged_metrics() const;

 private:
  LoopbackOptions opts_;
  std::vector<std::unique_ptr<net::SocketTransport>> transports_;
  std::vector<std::unique_ptr<NodeDaemon>> daemons_;
};

}  // namespace svss
