#include "core/epoch.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>

#include "core/daemon.hpp"
#include "core/runner.hpp"
#include "sim/engine.hpp"

namespace svss {

// ----------------------------------------------------------------------
// EpochConfig
// ----------------------------------------------------------------------

bool EpochConfig::contains(int global) const {
  return std::binary_search(members.begin(), members.end(), global);
}

int EpochConfig::rank_of(int global) const {
  auto it = std::lower_bound(members.begin(), members.end(), global);
  if (it == members.end() || *it != global) return -1;
  return static_cast<int>(it - members.begin());
}

void EpochConfig::serialize(Writer& w) const {
  w.u32(epoch);
  w.i32(t);
  std::vector<int> m = members;
  w.int_vec(m);
}

std::optional<EpochConfig> EpochConfig::deserialize(Reader& r) {
  auto epoch = r.u32();
  auto t = r.i32();
  auto members = r.int_vec(static_cast<std::size_t>(kMaxN));
  if (!epoch || !t || !members) return std::nullopt;
  EpochConfig cfg;
  cfg.epoch = *epoch;
  cfg.t = *t;
  cfg.members = std::move(*members);
  if (!std::is_sorted(cfg.members.begin(), cfg.members.end())) {
    return std::nullopt;
  }
  return cfg;
}

std::uint64_t epoch_seed(std::uint64_t base, std::uint32_t epoch) {
  // splitmix-style stir so epochs get independent-looking streams while
  // staying a pure function of (base, epoch) on every backend.
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (epoch + 1ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// ----------------------------------------------------------------------
// EpochTransport
// ----------------------------------------------------------------------

EpochTransport::EpochTransport(ITransport& inner, EpochConfig cfg)
    : inner_(inner), cfg_(std::move(cfg)) {
  rank_ = cfg_.rank_of(inner_.self());
  inner_.set_delivery(
      [this](int from, Packet p) { on_inner(from, std::move(p)); });
}

std::uint32_t EpochTransport::packet_epoch(const Packet& p) {
  return p.is_rb ? p.bid.sid.epoch : p.app.sid.epoch;
}

void EpochTransport::stamp_epoch(Packet& p, std::uint32_t epoch) {
  if (p.is_rb) {
    p.bid.sid.epoch = epoch;
  } else {
    p.app.sid.epoch = epoch;
  }
}

void EpochTransport::send(int to, Packet p) {
  if (hook_ && !hook_(to, p)) return;
  stamp_epoch(p, cfg_.epoch);
  inner_.send(cfg_.global_of(to), std::move(p));
}

void EpochTransport::broadcast(const Packet& p) {
  for (int to = 0; to < cfg_.n(); ++to) {
    Packet copy = p;
    if (hook_ && !hook_(to, copy)) continue;
    stamp_epoch(copy, cfg_.epoch);
    inner_.send(cfg_.global_of(to), std::move(copy));
  }
}

void EpochTransport::install(EpochConfig next) {
  cfg_ = std::move(next);
  rank_ = cfg_.rank_of(inner_.self());
  // Replay what peers already ahead of the boundary sent; still-future
  // packets re-buffer, now-current ones deliver, stale ones fence.
  flush_buffered();
}

void EpochTransport::flush_buffered() {
  std::deque<std::pair<int, Packet>> pending;
  pending.swap(future_);
  for (auto& [from, p] : pending) on_inner(from, std::move(p));
}

void EpochTransport::on_inner(int global_from, Packet p) {
  if (!p.is_rb && (p.app.type == MsgType::kEpochCatchupReq ||
                   p.app.type == MsgType::kEpochCatchupState)) {
    if (control_) control_(global_from, p.app);
    return;
  }
  std::uint32_t e = packet_epoch(p);
  if (e > cfg_.epoch) {
    if (future_.size() >= future_cap_) future_.pop_front();
    future_.emplace_back(global_from, std::move(p));
    return;
  }
  if (e < cfg_.epoch) {
    ++fenced_stale_;
    return;
  }
  int from_rank = cfg_.rank_of(global_from);
  if (from_rank < 0 || !is_member()) {
    ++fenced_foreign_;
    return;
  }
  if (!sink_) {
    // Boundary construction window: the next Node is not attached yet.
    // Park the packet unmodified; flush_buffered() re-fences it.
    if (future_.size() >= future_cap_) future_.pop_front();
    future_.emplace_back(global_from, std::move(p));
    return;
  }
  stamp_epoch(p, 0);
  sink_(from_rank, std::move(p));
}

// ----------------------------------------------------------------------
// Script validation + shared plumbing
// ----------------------------------------------------------------------

namespace {

void validate_script(const RunnerConfig& cfg,
                     const std::vector<EpochPlan>& script) {
  if (script.empty()) {
    throw std::invalid_argument("run_epochs: empty script");
  }
  std::set<int> dead;
  for (std::size_t e = 0; e < script.size(); ++e) {
    const EpochPlan& plan = script[e];
    if (plan.config.epoch != static_cast<std::uint32_t>(e)) {
      throw std::invalid_argument("run_epochs: epoch ids must be 0..E-1");
    }
    if (plan.config.members.empty() ||
        !std::is_sorted(plan.config.members.begin(),
                        plan.config.members.end())) {
      throw std::invalid_argument("run_epochs: members must be ascending");
    }
    if (plan.config.members.front() < 0 ||
        plan.config.members.back() >= cfg.n) {
      throw std::invalid_argument("run_epochs: member outside the universe");
    }
    if (!cfg.allow_sub_resilience &&
        plan.config.n() < 3 * plan.config.t + 1) {
      throw std::invalid_argument("run_epochs: epoch below n >= 3t+1");
    }
    int live = 0;
    for (int g : plan.config.members) {
      if (dead.count(g) == 0) ++live;
    }
    if (live < plan.config.n() - plan.config.t) {
      throw std::invalid_argument(
          "run_epochs: boundary crashes exceed the epoch's t");
    }
    for (const auto& [inst, inputs] : plan.instances) {
      if (inst >= kEpochBoundaryInstance) {
        throw std::invalid_argument(
            "run_epochs: instance id collides with the boundary instance");
      }
      if (static_cast<int>(inputs.size()) != plan.config.n()) {
        throw std::invalid_argument(
            "run_epochs: need one input per member rank");
      }
    }
    for (int g : plan.crash_at_boundary) {
      if (!plan.config.contains(g)) {
        throw std::invalid_argument(
            "run_epochs: crash_at_boundary names a non-member");
      }
    }
    dead.insert(plan.crash_at_boundary.begin(),
                plan.crash_at_boundary.end());
  }
}

// Global ids of members still alive entering each epoch.
std::vector<std::vector<int>> live_members(
    const std::vector<EpochPlan>& script) {
  std::vector<std::vector<int>> live(script.size());
  std::set<int> dead;
  for (std::size_t e = 0; e < script.size(); ++e) {
    for (int g : script[e].config.members) {
      if (dead.count(g) == 0) live[e].push_back(g);
    }
    dead.insert(script[e].crash_at_boundary.begin(),
                script[e].crash_at_boundary.end());
  }
  return live;
}

bool node_decided(const Node& nd, std::uint32_t instance) {
  const AbaSession* a = nd.aba(instance);
  return a != nullptr && a->decided();
}

void finish_epoch_result(EpochsResult::PerEpoch& pe,
                         const std::vector<int>& live) {
  for (auto& [inst, per] : pe.decisions) {
    if (per.size() != live.size() || per.empty()) continue;
    bool same = true;
    for (const auto& [g, v] : per) {
      if (v != per.begin()->second) same = false;
    }
    if (same) pe.values.emplace(inst, per.begin()->second);
  }
}

}  // namespace

// ----------------------------------------------------------------------
// Sim backend
// ----------------------------------------------------------------------

EpochsResult run_epochs_sim(Engine& engine, const RunnerConfig& cfg,
                            const std::vector<EpochPlan>& script,
                            CoinMode mode) {
  validate_script(cfg, script);
  const auto live = live_members(script);
  const int universe = cfg.n;

  std::vector<std::unique_ptr<EpochTransport>> ports;
  ports.reserve(static_cast<std::size_t>(universe));
  for (int g = 0; g < universe; ++g) {
    ports.push_back(std::make_unique<EpochTransport>(engine.transport(g),
                                                     script[0].config));
  }

  EpochsResult res;
  res.all_decided = true;
  std::set<int> dead;
  for (std::size_t e = 0; e < script.size(); ++e) {
    const EpochPlan& plan = script[e];
    for (int g = 0; g < universe; ++g) {
      if (dead.count(g) == 0) ports[static_cast<std::size_t>(g)]->install(
          plan.config);
    }
    std::map<int, std::unique_ptr<NodeDaemon>> daemons;  // by global id
    for (int g : live[e]) {
      int rank = plan.config.rank_of(g);
      daemons[g] = std::make_unique<NodeDaemon>(
          rank, plan.config.n(), plan.config.t,
          epoch_seed(cfg.seed, plan.config.epoch),
          *ports[static_cast<std::size_t>(g)], cfg.transport);
      ports[static_cast<std::size_t>(g)]->flush_buffered();
    }
    std::uint64_t coin_seed =
        epoch_seed(cfg.seed ^ 0xC01Full, plan.config.epoch);
    for (int g : live[e]) {
      int rank = plan.config.rank_of(g);
      Context c(daemons[g]->world());
      for (const auto& [inst, inputs] : plan.instances) {
        daemons[g]->node().start_aba(
            c, inputs[static_cast<std::size_t>(rank)], mode, coin_seed,
            inst);
      }
    }
    auto everyone_decided = [&](std::uint32_t inst) {
      for (int g : live[e]) {
        if (!node_decided(daemons[g]->node(), inst)) return false;
      }
      return true;
    };
    engine.run_until(
        [&] {
          for (const auto& [inst, inputs] : plan.instances) {
            if (!everyone_decided(inst)) return false;
          }
          return true;
        },
        cfg.max_deliveries);

    EpochsResult::PerEpoch pe;
    for (const auto& [inst, inputs] : plan.instances) {
      for (int g : live[e]) {
        const AbaSession* a = daemons[g]->node().aba(inst);
        if (a != nullptr && a->decided()) {
          pe.decisions[inst].emplace(g, a->decision());
        } else {
          res.all_decided = false;
        }
      }
    }
    finish_epoch_result(pe, live[e]);

    if (e + 1 < script.size()) {
      // The agreed boundary: drain done, now close the epoch.
      for (int g : live[e]) {
        Context c(daemons[g]->world());
        daemons[g]->node().start_aba(c, 1, mode, coin_seed,
                                     kEpochBoundaryInstance);
      }
      engine.run_until([&] { return everyone_decided(kEpochBoundaryInstance); },
                       cfg.max_deliveries);
      pe.boundary_decided = everyone_decided(kEpochBoundaryInstance);
      if (!pe.boundary_decided) res.all_decided = false;
    } else {
      pe.boundary_decided = true;
    }
    res.epochs.push_back(std::move(pe));

    // The daemons die with this scope; detach their delivery sinks first.
    for (int g : live[e]) {
      ports[static_cast<std::size_t>(g)]->set_delivery(nullptr);
      ports[static_cast<std::size_t>(g)]->set_control(nullptr);
    }
    dead.insert(plan.crash_at_boundary.begin(),
                plan.crash_at_boundary.end());
  }
  res.agreed = res.all_decided;
  for (std::size_t e = 0; e < script.size(); ++e) {
    if (res.epochs[e].values.size() != script[e].instances.size()) {
      res.agreed = false;
    }
  }
  res.metrics = engine.metrics();
  return res;
}

// ----------------------------------------------------------------------
// Socket-loopback backend (one thread per universe endpoint, same
// confinement discipline as LoopbackCluster)
// ----------------------------------------------------------------------

EpochsResult run_epochs_loopback(const RunnerConfig& cfg,
                                 const std::vector<EpochPlan>& script,
                                 CoinMode mode) {
  validate_script(cfg, script);
  const auto live = live_members(script);
  const int universe = cfg.n;
  const std::size_t epochs = script.size();
  constexpr int kTimeoutMs = 60'000;

  // Phase 1 (main thread): bind every listener, wire kernel-assigned
  // ports, wrap each endpoint in its EpochTransport — all frozen before
  // any worker starts.
  net::ClusterConfig wild;
  wild.peers.assign(static_cast<std::size_t>(universe), net::Endpoint{});
  std::vector<std::unique_ptr<net::SocketTransport>> transports;
  for (int g = 0; g < universe; ++g) {
    auto tr = std::make_unique<net::SocketTransport>(g, wild);
    if (!tr->open()) {
      throw std::runtime_error("run_epochs: failed to bind listener");
    }
    transports.push_back(std::move(tr));
  }
  for (int g = 0; g < universe; ++g) {
    for (int p = 0; p < universe; ++p) {
      transports[static_cast<std::size_t>(g)]->set_peer(
          p, net::Endpoint{"127.0.0.1",
                           transports[static_cast<std::size_t>(p)]
                               ->bound_port()});
    }
  }
  std::vector<std::unique_ptr<EpochTransport>> ports;
  for (int g = 0; g < universe; ++g) {
    ports.push_back(std::make_unique<EpochTransport>(
        *transports[static_cast<std::size_t>(g)], script[0].config));
  }

  // Cross-thread state: per-epoch completion barriers (so every member
  // lingers, relaying RB tails, until the whole epoch finished) and one
  // failure latch.  Result slots are per-thread-disjoint.
  std::unique_ptr<std::atomic<int>[]> done(new std::atomic<int>[epochs]);
  std::vector<int> expected(epochs);
  std::vector<char> is_live(static_cast<std::size_t>(universe) * epochs, 0);
  for (std::size_t e = 0; e < epochs; ++e) {
    done[e].store(0, std::memory_order_relaxed);
    expected[e] = static_cast<int>(live[e].size());
    for (int g : live[e]) {
      is_live[static_cast<std::size_t>(g) * epochs + e] = 1;
    }
  }
  std::vector<std::size_t> last_epoch(static_cast<std::size_t>(universe),
                                      epochs);
  for (int g = 0; g < universe; ++g) {
    for (std::size_t e = 0; e < epochs; ++e) {
      if (is_live[static_cast<std::size_t>(g) * epochs + e]) last_epoch[g] = e;
    }
  }
  std::atomic<bool> failed{false};
  // decisions[g][e][instance]; boundary[g*epochs + e].
  std::vector<std::vector<std::map<std::uint32_t, int>>> decisions(
      static_cast<std::size_t>(universe),
      std::vector<std::map<std::uint32_t, int>>(epochs));
  std::vector<char> boundary(static_cast<std::size_t>(universe) * epochs, 0);

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(universe));
  for (int g = 0; g < universe; ++g) {
    threads.emplace_back([&, g] {
      net::SocketTransport& tr = *transports[static_cast<std::size_t>(g)];
      EpochTransport& port = *ports[static_cast<std::size_t>(g)];
      if (last_epoch[static_cast<std::size_t>(g)] == epochs) return;
      for (std::size_t e = 0; e < epochs; ++e) {
        const EpochPlan& plan = script[e];
        port.set_delivery(nullptr);
        port.install(plan.config);
        if (!is_live[static_cast<std::size_t>(g) * epochs + e]) {
          // Joiner waiting for its epoch: jump ahead; the future-epoch
          // buffer at every peer absorbs the skew.
          if (e >= last_epoch[static_cast<std::size_t>(g)]) return;
          continue;
        }
        int rank = plan.config.rank_of(g);
        NodeDaemon daemon(rank, plan.config.n(), plan.config.t,
                          epoch_seed(cfg.seed, plan.config.epoch), port,
                          cfg.transport);
        port.flush_buffered();
        std::uint64_t coin_seed =
            epoch_seed(cfg.seed ^ 0xC01Full, plan.config.epoch);
        {
          Context c(daemon.world());
          for (const auto& [inst, inputs] : plan.instances) {
            daemon.node().start_aba(c,
                                    inputs[static_cast<std::size_t>(rank)],
                                    mode, coin_seed, inst);
          }
        }
        bool ok = tr.run_until(
            [&] {
              for (const auto& [inst, inputs] : plan.instances) {
                if (!node_decided(daemon.node(), inst)) return false;
              }
              return true;
            },
            kTimeoutMs);
        if (!ok) failed.store(true, std::memory_order_release);
        for (const auto& [inst, inputs] : plan.instances) {
          const AbaSession* a = daemon.node().aba(inst);
          if (a != nullptr && a->decided()) {
            decisions[static_cast<std::size_t>(g)][e].emplace(inst,
                                                              a->decision());
          }
        }
        if (e + 1 < epochs) {
          {
            Context c(daemon.world());
            daemon.node().start_aba(c, 1, mode, coin_seed,
                                    kEpochBoundaryInstance);
          }
          ok = tr.run_until(
              [&] {
                return node_decided(daemon.node(), kEpochBoundaryInstance);
              },
              kTimeoutMs);
          if (!ok) failed.store(true, std::memory_order_release);
          boundary[static_cast<std::size_t>(g) * epochs + e] =
              node_decided(daemon.node(), kEpochBoundaryInstance) ? 1 : 0;
        } else {
          boundary[static_cast<std::size_t>(g) * epochs + e] = 1;
        }
        // Linger until every live member finished this epoch, then let
        // the daemon (and its sink) go.
        done[e].fetch_add(1, std::memory_order_acq_rel);
        tr.run_until(
            [&] {
              return done[e].load(std::memory_order_acquire) >= expected[e];
            },
            kTimeoutMs);
        port.set_delivery(nullptr);
        if (plan.crash_at_boundary.count(g) != 0) {
          tr.shutdown();  // crash exactly at the agreed boundary
          return;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EpochsResult res;
  res.all_decided = !failed.load(std::memory_order_acquire);
  for (std::size_t e = 0; e < epochs; ++e) {
    EpochsResult::PerEpoch pe;
    pe.boundary_decided = true;
    for (int g : live[e]) {
      if (!boundary[static_cast<std::size_t>(g) * epochs + e]) {
        pe.boundary_decided = false;
      }
      for (const auto& [inst, v] : decisions[static_cast<std::size_t>(g)][e]) {
        pe.decisions[inst].emplace(g, v);
      }
    }
    for (const auto& [inst, inputs] : script[e].instances) {
      auto it = pe.decisions.find(inst);
      if (it == pe.decisions.end() ||
          it->second.size() != live[e].size()) {
        res.all_decided = false;
      }
    }
    if (!pe.boundary_decided) res.all_decided = false;
    finish_epoch_result(pe, live[e]);
    res.epochs.push_back(std::move(pe));
  }
  res.agreed = res.all_decided;
  for (std::size_t e = 0; e < epochs; ++e) {
    if (res.epochs[e].values.size() != script[e].instances.size()) {
      res.agreed = false;
    }
  }
  for (const auto& tr : transports) res.metrics.merge(tr->metrics());
  return res;
}

}  // namespace svss
