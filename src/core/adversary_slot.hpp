// Seam between core::Runner and the adversary layer (src/adversary/).
//
// A process slot in a run is either an honest Node or an *adversary slot*:
// an IProcess that runs its own (Byzantine) protocol logic instead of the
// honest code.  Core only knows this minimal interface; the concrete
// strategies — equivocating dealer forks, adaptive shun-aware behaviour,
// colluding cabals — live in src/adversary/ and are injected through
// RunnerConfig as factories, so core never depends on the adversary layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/engine.hpp"

namespace svss {

class Node;

// What a strategy knows about its placement when it is constructed.
struct AdversaryEnv {
  int self = -1;
  int n = 0;
  int t = 0;
  std::uint64_t seed = 0;  // per-slot reproducibility seed
  // Run-wide wire framing (coin dealing batches, MW group coalescing);
  // strategies hosting honest-code Nodes pass both through so un/batched
  // runs stay comparable end to end.
  bool batched_coin = true;
  bool batched_mw = true;
};

// Observable side effects of a strategy, for non-vacuity assertions: a test
// that claims "honest processes survive attack X" must also check that
// attack X actually happened.
struct StrategyStats {
  std::uint64_t inbound = 0;   // packets delivered to this slot
  std::uint64_t emitted = 0;   // outbound packets let through
  std::uint64_t forked = 0;    // outbound packets from a non-primary
                               // protocol fork (split-brain branches)
  std::uint64_t mutated = 0;   // outbound packets rewritten in flight
  std::uint64_t withheld = 0;  // outbound packets deliberately suppressed
  bool adapted = false;        // adaptive strategies: trigger observed and
                               // behaviour switched
};

// A process slot hosting adversarial protocol logic.  The Runner wires
// on_outbound() as the slot's engine interceptor (before any ByzConfig wire
// interceptor, which stays composable on top) and forwards the experiment
// drivers' start actions so the adversary receives the same role payload
// (deal this secret, enter agreement with this input) an honest Node would.
class AdversarySlot : public IProcess {
 public:
  // The driver-provided role payload; strategies typically replay it onto
  // internal honest-code forks.
  virtual void set_start_action(
      std::function<void(Context&, Node&)> action) = 0;
  // Outbound gate for every packet this slot sends (including packets
  // emitted by internal honest-code forks).  May mutate; false drops.
  virtual bool on_outbound(int to, Packet& p) = 0;
  [[nodiscard]] virtual const StrategyStats& stats() const = 0;
  [[nodiscard]] virtual const char* strategy_name() const = 0;
  // True while this strategy is actively deceiving process `id` — showing
  // it corrupted values, courting it with a split-brain fork, or denying it
  // traffic.  This is the strategy half of the widened scheduler seam
  // (sim/scheduler.hpp ScheduleView): a full-information schedule adversary
  // co-designs with the strategy by, e.g., starving exactly the deceived
  // processes.  The answer may change over a run (adaptive strategies stop
  // deceiving once they evade); it must be a pure function of the slot's
  // deterministic state so schedules that consult it stay replayable.
  [[nodiscard]] virtual bool is_deceiving(int id) const {
    (void)id;
    return false;
  }
};

using AdversarySlotFactory =
    std::function<std::unique_ptr<AdversarySlot>(const AdversaryEnv&)>;

}  // namespace svss
