#include "core/daemon.hpp"

#include <stdexcept>
#include <thread>

namespace svss {

NodeDaemon::NodeDaemon(int self, int n, int t, std::uint64_t seed,
                       ITransport& tr, const TransportOptions& opts)
    : node_(self, n, t, opts.batched_coin(), opts.batched_mw(self),
            opts.batched_votes()) {
  world_.self = self;
  world_.n = n;
  world_.t = t;
  // Engine seeds slot RNGs by *sequential* splits from one root (each
  // split advances the root), so slot i's stream depends on i draws
  // having happened first.  Replicate exactly, or daemon fleets deal
  // different values than the simulator for every slot but 0 — the
  // backend-equivalence harness pins this.
  Rng root(seed);
  for (int i = 0; i <= self; ++i) {
    world_.rng = root.split(static_cast<std::uint64_t>(i));
  }
  world_.transport = &tr;
  tr.set_delivery([this](int from, Packet p) {
    Context ctx(world_);
    node_.on_packet(ctx, from, p);
  });
}

void NodeDaemon::start() {
  Context ctx(world_);
  node_.start(ctx);
}

// ----------------------------------------------------------------------
// LoopbackCluster
// ----------------------------------------------------------------------

LoopbackCluster::LoopbackCluster(LoopbackOptions opts)
    : opts_(std::move(opts)) {
  // Phase 1 (main thread): bind every listener on a kernel-assigned port,
  // then tell every endpoint where its peers landed — before any worker
  // exists, so the config is frozen by the time threads read it.
  net::ClusterConfig wild;
  wild.peers.assign(static_cast<std::size_t>(opts_.n), net::Endpoint{});
  for (int i = 0; i < opts_.n; ++i) {
    auto tr = std::make_unique<net::SocketTransport>(i, wild);
    if (!tr->open()) {
      throw std::runtime_error("LoopbackCluster: failed to bind listener");
    }
    transports_.push_back(std::move(tr));
  }
  for (int i = 0; i < opts_.n; ++i) {
    for (int p = 0; p < opts_.n; ++p) {
      transports_[static_cast<std::size_t>(i)]->set_peer(
          p, net::Endpoint{"127.0.0.1",
                           transports_[static_cast<std::size_t>(p)]
                               ->bound_port()});
    }
  }
  for (int i = 0; i < opts_.n; ++i) {
    daemons_.push_back(std::make_unique<NodeDaemon>(
        i, opts_.n, opts_.t, opts_.seed, *transports_[static_cast<std::size_t>(i)],
        opts_.transport));
    auto fit = opts_.faults.find(i);
    if (fit != opts_.faults.end() && fit->second.kind != ByzKind::kHonest) {
      std::uint64_t slot_seed =
          opts_.seed * 1315423911ULL + static_cast<std::uint64_t>(i);
      auto wire = make_byzantine_interceptor(fit->second, opts_.n, opts_.t,
                                             slot_seed);
      transports_[static_cast<std::size_t>(i)]->set_send_hook(
          [wire, i](int to, Packet& p) { return wire(i, to, p); });
    }
  }
}

LoopbackCluster::~LoopbackCluster() = default;

bool LoopbackCluster::run(const std::function<bool(const Node&)>& pred,
                          const std::function<bool(int)>& honest) {
  int waited = 0;
  for (int i = 0; i < opts_.n; ++i) {
    if (honest(i)) ++waited;
  }
  std::atomic<int> done_count{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(opts_.n));
  for (int i = 0; i < opts_.n; ++i) {
    threads.emplace_back([this, i, &pred, &honest, &done_count, waited] {
      NodeDaemon& d = *daemons_[static_cast<std::size_t>(i)];
      net::SocketTransport& tr = *transports_[static_cast<std::size_t>(i)];
      d.start();
      bool counted = !honest(i);  // faulty slots are never waited on
      if (counted && waited == 0) return;
      tr.run_until(
          [&] {
            if (!counted && pred(d.node())) {
              counted = true;
              done_count.fetch_add(1, std::memory_order_acq_rel);
            }
            // Linger after finishing so this endpoint keeps relaying RB
            // traffic its peers still need.
            return done_count.load(std::memory_order_acquire) >= waited;
          },
          opts_.timeout_ms);
    });
  }
  for (auto& th : threads) th.join();
  return done_count.load(std::memory_order_acquire) >= waited;
}

EventLog LoopbackCluster::merged_log() const {
  EventLog out;
  for (const auto& d : daemons_) {
    for (const Event& e : d->world().log.events()) out.record(e);
  }
  return out;
}

Metrics LoopbackCluster::merged_metrics() const {
  Metrics out;
  for (const auto& tr : transports_) out.merge(tr->metrics());
  return out;
}

}  // namespace svss
