#include "dmm/dmm.hpp"

#include <algorithm>

namespace svss {

bool Dmm::filter(Context& ctx, int from, const Message& m, bool via_rb) {
  (void)ctx;
  if (discard_applies(from, m.sid)) return false;  // rule 4: discard
  if (is_blocked(from, m.sid)) {                   // rule 5: delay
    at_sender(delayed_, from).push_back(Delayed{from, via_rb, m});
    return false;
  }
  return true;
}

bool Dmm::discard_applies(int j, const SessionId& s) const {
  auto it = anchor_.find(j);
  return it != anchor_.end() && precedes(it->second, s);
}

bool Dmm::is_blocked(int from, const SessionId& sid) const {
  // Equivalent to: exists an open expectation about `from` in a session s
  // with s ->_i sid.  Only completed sessions can precede anything, and
  // s ->_i sid iff completion_order(s) <= birth(sid) (or sid has not begun
  // locally), so the existential collapses to a minimum comparison.
  if (static_cast<std::size_t>(from) >= blocking_orders_.size()) return false;
  const auto& orders = blocking_orders_[static_cast<std::size_t>(from)];
  if (orders.empty()) return false;
  auto born = birth_.find(sid);
  if (born == birth_.end()) return true;
  return *orders.begin() <= born->second;
}

bool Dmm::precedes(const SessionId& s, const SessionId& s2) const {
  if (s == s2) return false;
  auto done = completion_order_.find(s);
  if (done == completion_order_.end()) return false;
  auto born = birth_.find(s2);
  // If s2 has not begun locally, every already-completed session will have
  // completed before it begins.
  if (born == birth_.end()) return true;
  return done->second <= born->second;
}

void Dmm::note_begin(const SessionId& sid) {
  birth_.emplace(sid, completions_);
}

void Dmm::note_complete(const SessionId& sid) {
  auto [it, inserted] = completion_order_.emplace(sid, completions_ + 1);
  if (!inserted) return;
  ++completions_;
  seen_recon_.erase(sid);
  // Sessions completing with expectations still open become blocking.
  for (std::size_t sender = 0; sender < open_by_sender_.size(); ++sender) {
    auto& sessions = open_by_sender_[sender];
    auto sit = sessions.find(sid);
    if (sit != sessions.end() && sit->second > 0) {
      at_sender(blocking_orders_, static_cast<int>(sender))
          .insert(it->second);
    }
  }
}

void Dmm::note_expectation(int sender, const SessionId& sid) {
  at_sender(open_by_sender_, sender)[sid]++;
}

void Dmm::drop_expectation(Context& ctx, int sender, const SessionId& sid) {
  if (static_cast<std::size_t>(sender) >= open_by_sender_.size()) return;
  auto& sessions = open_by_sender_[static_cast<std::size_t>(sender)];
  auto sit = sessions.find(sid);
  if (sit == sessions.end()) return;
  if (--sit->second == 0) {
    sessions.erase(sit);
    // If the session had completed while this expectation was open, its
    // order is in the blocking index; retract it.
    if (auto done = completion_order_.find(sid);
        done != completion_order_.end()) {
      if (static_cast<std::size_t>(sender) < blocking_orders_.size()) {
        auto& orders = blocking_orders_[static_cast<std::size_t>(sender)];
        auto oit = orders.find(done->second);
        if (oit != orders.end()) orders.erase(oit);
      }
    }
  }
  flush_delayed(ctx, sender);
}

void Dmm::add_ack_entry(Context& ctx, int sender, int poly,
                        const SessionId& sid, Fp x) {
  if (auto sit = seen_recon_.find(sid); sit != seen_recon_.end()) {
    if (auto vit = sit->second.find({sender, poly});
        vit != sit->second.end()) {
      // The broadcast already happened: resolve or detect immediately.
      if (vit->second != x) add_to_d(ctx, sender, sid);
      return;
    }
  }
  if (ack_.emplace(AckKey{sender, poly, sid}, x).second) {
    note_expectation(sender, sid);
  }
}

void Dmm::add_deal_entry(Context& ctx, int sender, const SessionId& sid,
                         Fp x) {
  if (auto sit = seen_recon_.find(sid); sit != seen_recon_.end()) {
    if (auto vit = sit->second.find({sender, ctx.self()});
        vit != sit->second.end()) {
      if (vit->second != x) add_to_d(ctx, sender, sid);
      return;
    }
  }
  if (deal_.emplace(DealKey{sender, sid}, x).second) {
    deal_senders_by_session_[sid].insert(sender);
    note_expectation(sender, sid);
  }
}

void Dmm::clear_deal_entries(Context& ctx, const SessionId& sid) {
  auto node = deal_senders_by_session_.extract(sid);
  if (node.empty()) return;
  for (int s : node.mapped()) {
    deal_.erase(DealKey{s, sid});
    drop_expectation(ctx, s, sid);
  }
}

bool Dmm::on_recon_value(Context& ctx, int origin, const SessionId& sid,
                         int poly, Fp x) {
  // Record the broadcast so expectations registered later can still be
  // matched (RB delivers each broadcast exactly once).  Skip sessions that
  // already completed locally — no expectations are added past completion.
  if (completion_order_.find(sid) == completion_order_.end()) {
    seen_recon_[sid].emplace(std::make_pair(origin, poly), x);
  }
  // Rule 2: ACK expectations (this process dealt session `sid`).
  if (auto it = ack_.find(AckKey{origin, poly, sid}); it != ack_.end()) {
    if (it->second == x) {
      ack_.erase(it);
      drop_expectation(ctx, origin, sid);
    } else {
      add_to_d(ctx, origin, sid);
      return false;
    }
  }
  // Rule 3: DEAL expectations (this process monitors f_self in `sid`).
  if (poly == ctx.self()) {
    if (auto it = deal_.find(DealKey{origin, sid}); it != deal_.end()) {
      if (it->second == x) {
        deal_.erase(it);
        if (auto ds = deal_senders_by_session_.find(sid);
            ds != deal_senders_by_session_.end()) {
          ds->second.erase(origin);
          if (ds->second.empty()) deal_senders_by_session_.erase(ds);
        }
        drop_expectation(ctx, origin, sid);
      } else {
        add_to_d(ctx, origin, sid);
        return false;
      }
    }
  }
  return true;
}

void Dmm::add_to_d(Context& ctx, int j, const SessionId& where) {
  if (!d_.insert(j).second) return;
  anchor_.emplace(j, where);
  ctx.log().record(Event{EventKind::kShun, ctx.self(), j, where, 0, false});
  if (hooks_.on_shun) hooks_.on_shun(ctx, j, where);
  // Buffered messages of now-discardable sessions are dropped by the next
  // flush; messages of concurrent sessions may still be released.
  flush_delayed(ctx, j);
}

void Dmm::flush_delayed(Context& ctx, int sender) {
  if (static_cast<std::size_t>(sender) >= delayed_.size()) return;
  auto& buffered = delayed_[static_cast<std::size_t>(sender)];
  if (buffered.empty()) return;
  // Re-test each buffered message; releasable ones are re-injected through
  // the owner's routing (which may re-enter this Dmm).
  std::vector<Delayed> keep;
  std::vector<Delayed> release;
  for (auto& d : buffered) {
    if (discard_applies(sender, d.msg.sid)) continue;  // rule 4: drop
    if (is_blocked(sender, d.msg.sid)) {
      keep.push_back(std::move(d));
    } else {
      release.push_back(std::move(d));
    }
  }
  buffered = std::move(keep);
  for (auto& d : release) {
    hooks_.redeliver(ctx, d.from, d.msg, d.via_rb);
  }
}

std::size_t Dmm::pending_expectations(int sender) const {
  if (static_cast<std::size_t>(sender) >= open_by_sender_.size()) return 0;
  std::size_t total = 0;
  for (const auto& [sid, count] :
       open_by_sender_[static_cast<std::size_t>(sender)]) {
    total += static_cast<std::size_t>(count);
  }
  return total;
}

std::vector<Dmm::OpenEntry> Dmm::blocking_entries() const {
  std::vector<OpenEntry> out;
  for (const auto& [key, x] : ack_) {
    if (completion_order_.count(key.sid) != 0) {
      out.push_back(OpenEntry{key.sender, key.sid, true});
    }
  }
  for (const auto& [key, x] : deal_) {
    if (completion_order_.count(key.sid) != 0) {
      out.push_back(OpenEntry{key.sender, key.sid, false});
    }
  }
  return out;
}

std::size_t Dmm::buffered_messages() const {
  std::size_t total = 0;
  for (const auto& msgs : delayed_) total += msgs.size();
  return total;
}

}  // namespace svss
