// DMM — the Detection and Message Management protocol (paper Section 3.3).
//
// One DMM instance runs per process, indefinitely, concurrently with all
// VSS invocations.  It decides, for every inbound MW-SVSS/SVSS message,
// whether to act on it, delay it, or discard it:
//
//  * D_i        — processes known faulty; all their messages are discarded
//                 (rule 4).
//  * ACK_i      — tuples (j, l, c, x): as the *dealer* of session (c, i),
//                 process i expects j to eventually RB-broadcast
//                 "f_l(j) = x" during that session's reconstruct (added at
//                 S' step 7).
//  * DEAL_i     — tuples (j, c, l, x): as a *monitor* in session (c, l),
//                 i expects j to RB-broadcast "f_i(j) = x" (added at S'
//                 step 3, possibly dropped at step 8).
//  * ->_i order — session s precedes s' at i iff i completed s's
//                 reconstruct before it began s'.  A message from j in
//                 session s' is delayed while some expectation about j
//                 from a preceding session is unresolved (rule 5).
//
// When an expected broadcast arrives with the wrong value, j enters D_i
// (rules 2-3) — explicit detection.  When it never arrives, every later
// session's messages from j stay delayed forever — *shunning without
// knowing*, the property Definition 1 captures.  Either way j can break
// validity/binding against i at most once per (i, j) pair, which is what
// bounds the adversary to O(n^2) broken sessions overall.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/field.hpp"
#include "sim/engine.hpp"
#include "sim/message.hpp"

namespace svss {

class Dmm {
 public:
  struct Hooks {
    // Invoked when j is added to D_i (explicit detection).  `where` is the
    // session whose expectation j violated.
    std::function<void(Context&, int suspect, const SessionId& where)> on_shun;
    // Re-injects a previously delayed message into the owner's routing.
    std::function<void(Context&, int from, const Message&, bool via_rb)>
        redeliver;
  };

  explicit Dmm(Hooks hooks) : hooks_(std::move(hooks)) {}

  // ------------------------------------------------------------------
  // Ingress filtering (rules 4 and 5).  Returns true if the caller should
  // act on the message now; false if it was discarded or buffered.
  //
  // Discarding is *session-ordered*, per Definition 1: a detected process
  // j is discarded in sessions that come after (->_i) the session where
  // the detection happened.  Messages of concurrent or earlier sessions
  // still flow — otherwise a detection during one session's reconstruct
  // would strand every in-flight share phase that still needs j's
  // (so-far correct) messages, breaking the Termination properties.
  // For sessions after the anchor, the violated expectation additionally
  // stays unresolved forever, so rule 5 delays them even before the
  // anchor session completes locally.
  // ------------------------------------------------------------------
  bool filter(Context& ctx, int from, const Message& m, bool via_rb);

  // True iff j is in D_i (explicit detection happened).
  [[nodiscard]] bool discards(int j) const { return d_.count(j) != 0; }
  // True iff rule 4 drops a message from j in session s.
  [[nodiscard]] bool discard_applies(int j, const SessionId& s) const;

  // ------------------------------------------------------------------
  // Expectation arrays.  An expectation may be registered *after* the
  // matching reconstruct broadcast already arrived (step 7 runs on the
  // dealer's own schedule, and RB delivers each broadcast exactly once),
  // so additions are checked against the recorded broadcasts of the
  // session: an already-satisfied expectation is dropped on the spot, an
  // already-contradicted one detects the sender immediately.
  // ------------------------------------------------------------------
  void add_ack_entry(Context& ctx, int sender, int poly, const SessionId& sid,
                     Fp x);
  void add_deal_entry(Context& ctx, int sender, const SessionId& sid, Fp x);
  // S' step 8: this process is not in M-hat, so its DEAL expectations for
  // the session no longer matter.
  void clear_deal_entries(Context& ctx, const SessionId& sid);
  // Rules 2-3: an RB broadcast "f_poly(origin) = x" for session `sid`
  // arrived.  Resolves or violates matching expectations.  Returns false
  // iff the broadcast contradicted an expectation (origin entered D_i).
  bool on_recon_value(Context& ctx, int origin, const SessionId& sid,
                      int poly, Fp x);

  // ------------------------------------------------------------------
  // Session order ->_i
  // ------------------------------------------------------------------
  // First local action of the session (dealer initiating, or first acted-on
  // message).  Freezes the set of sessions that precede it.
  void note_begin(const SessionId& sid);
  // Local completion of the session's reconstruct.
  void note_complete(const SessionId& sid);

  // ------------------------------------------------------------------
  // Introspection (tests, benchmarks, examples)
  // ------------------------------------------------------------------
  [[nodiscard]] const std::set<int>& detected() const { return d_; }
  [[nodiscard]] std::size_t pending_expectations(int sender) const;
  [[nodiscard]] std::size_t buffered_messages() const;
  [[nodiscard]] bool is_blocked(int from, const SessionId& sid) const;
  // Open expectations whose session has completed locally — exactly the
  // ones that can delay later sessions (debugging/tests).
  struct OpenEntry {
    int sender;
    SessionId sid;
    bool is_ack;
  };
  [[nodiscard]] std::vector<OpenEntry> blocking_entries() const;

 private:
  struct AckKey {
    int sender;
    int poly;
    SessionId sid;
    friend auto operator<=>(const AckKey&, const AckKey&) = default;
  };
  struct AckKeyHash {
    std::size_t operator()(const AckKey& k) const {
      std::size_t h = SessionIdHash{}(k.sid);
      h = h * 0x100000001B3ULL ^ static_cast<std::size_t>(k.sender + 1);
      h = h * 0x100000001B3ULL ^ static_cast<std::size_t>(k.poly + 1);
      return h;
    }
  };
  struct DealKey {
    int sender;
    SessionId sid;
    friend auto operator<=>(const DealKey&, const DealKey&) = default;
    friend bool operator==(const DealKey&, const DealKey&) = default;
  };
  struct DealKeyHash {
    std::size_t operator()(const DealKey& k) const {
      return SessionIdHash{}(k.sid) * 0x100000001B3ULL ^
             static_cast<std::size_t>(k.sender + 1);
    }
  };
  struct Delayed {
    int from;
    bool via_rb;
    Message msg;
  };

  void add_to_d(Context& ctx, int j, const SessionId& where);
  // True iff session s precedes s' in ->_i given current begin/complete
  // bookkeeping.
  [[nodiscard]] bool precedes(const SessionId& s, const SessionId& s2) const;
  void note_expectation(int sender, const SessionId& sid);
  void drop_expectation(Context& ctx, int sender, const SessionId& sid);
  void flush_delayed(Context& ctx, int sender);

  // Per-sender state lives in vectors indexed by process id, and
  // session-keyed state in hash maps: DMM sits on the delivery hot path
  // (every VSS message passes filter(), every recon broadcast passes rules
  // 2-3), where ordered-map SessionId comparisons used to dominate.
  template <typename T>
  static T& at_sender(std::vector<T>& v, int sender) {
    if (v.size() <= static_cast<std::size_t>(sender)) {
      v.resize(static_cast<std::size_t>(sender) + 1);
    }
    return v[static_cast<std::size_t>(sender)];
  }

  Hooks hooks_;
  std::set<int> d_;
  std::map<int, SessionId> anchor_;  // first detection session per suspect
  // Senders with live DEAL entries per session (step-8 bulk removal).
  std::unordered_map<SessionId, std::set<int>, SessionIdHash>
      deal_senders_by_session_;
  std::unordered_map<AckKey, Fp, AckKeyHash> ack_;
  std::unordered_map<DealKey, Fp, DealKeyHash> deal_;
  // Per-sender count of unresolved expectations per session, to make the
  // blocking test cheap.  Indexed by sender id (grown on demand).
  std::vector<std::unordered_map<SessionId, int, SessionIdHash>>
      open_by_sender_;
  // Completion orders of *completed* sessions that still hold unresolved
  // expectations, per sender.  The rule-5 test reduces to comparing the
  // minimum against the target session's birth — O(log) instead of a scan
  // over every open session (which dominates runtime at coin scale).
  std::vector<std::multiset<std::uint64_t>> blocking_orders_;
  std::vector<std::vector<Delayed>> delayed_;
  // ->_i bookkeeping: completion_order is 1-based and increasing; birth is
  // the completion counter value when the session began locally.
  std::unordered_map<SessionId, std::uint64_t, SessionIdHash> completion_order_;
  std::unordered_map<SessionId, std::uint64_t, SessionIdHash> birth_;
  std::uint64_t completions_ = 0;
  // Reconstruct broadcasts already received, per live session:
  // (origin, poly) -> value.  Consulted when expectations are added late;
  // garbage-collected when the session completes locally (no expectations
  // are added past that point).
  std::unordered_map<SessionId, std::map<std::pair<int, int>, Fp>,
                     SessionIdHash>
      seen_recon_;
};

}  // namespace svss
