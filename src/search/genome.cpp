#include "search/genome.hpp"

#include <algorithm>

namespace svss::search {

// ---------------------------------------------------------------------
// GenomeScheduler
// ---------------------------------------------------------------------

bool GenomeScheduler::class_matches(SlotClass c, int id) const {
  if (c == SlotClass::kAny) return true;
  const ScheduleView* v = view();
  if (v == nullptr || id < 0) return false;
  switch (c) {
    case SlotClass::kAny: return true;
    case SlotClass::kAdversary: return v->is_adversary(id);
    case SlotClass::kDeceived: return v->is_deceived(id);
    case SlotClass::kClear:
      return !v->is_adversary(id) && !v->is_deceived(id);
  }
  return false;
}

bool GenomeScheduler::gene_active(const Gene& g) const {
  if (g.after == 0 && g.until == 0) return true;
  const ScheduleView* v = view();
  if (v == nullptr) return g.after == 0;
  std::uint64_t clock = v->deliveries();
  if (clock < g.after) return false;
  return g.until == 0 || clock < g.until;
}

bool GenomeScheduler::gene_matches(const Gene& g, const PendingInfo& p) const {
  if (g.from >= 0 && p.from != g.from) return false;
  if (g.to >= 0 && p.to != g.to) return false;
  if (g.is_rb >= 0 && p.is_rb != (g.is_rb != 0)) return false;
  if (!class_matches(g.from_class, p.from)) return false;
  if (!class_matches(g.to_class, p.to)) return false;
  return true;
}

std::uint64_t GenomeScheduler::priority(const PendingInfo& p) {
  // The jitter draw happens for every packet regardless of gene matches:
  // the rng stream's position is then a function of the send sequence
  // alone, which keeps priorities (and hence replay) independent of any
  // future genome edits to the gene list semantics.
  std::uint64_t pr = p.seq;
  if (genome_.jitter > 0) pr += rng_.next_below(genome_.jitter);
  bool front = false;
  for (const Gene& g : genome_.genes) {
    if (!gene_active(g) || !gene_matches(g, p)) continue;
    pr += g.delay;
    front = front || g.front;
  }
  return front ? 0 : pr;
}

SchedulerFactory make_genome_factory(ScheduleGenome genome) {
  return [genome](std::uint64_t /*seed*/, int /*n*/, int /*t*/) {
    return std::make_unique<GenomeScheduler>(genome);
  };
}

// ---------------------------------------------------------------------
// Mutation
// ---------------------------------------------------------------------

namespace {

// Delay magnitudes worth exploring: from "a nudge past the jitter band"
// up to "parked until the age cap forces it" (engine default max_lag is
// 1 << 20, so the top value pins a packet to the cap).
constexpr std::uint64_t kDelaySteps[] = {
    1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20,
};

Gene random_gene(Rng& rng, int n) {
  Gene g;
  // Endpoint match: mostly class-based (the interesting, n-independent
  // attacks), sometimes a concrete id.
  switch (rng.next_below(4)) {
    case 0: g.to_class = SlotClass::kDeceived; break;
    case 1: g.from_class = SlotClass::kClear; break;
    case 2: g.to = static_cast<std::int16_t>(rng.next_below(
                static_cast<std::uint64_t>(n)));
            break;
    case 3: g.from = static_cast<std::int16_t>(rng.next_below(
                static_cast<std::uint64_t>(n)));
            break;
  }
  if (rng.next_below(3) == 0) {
    g.is_rb = static_cast<std::int8_t>(rng.next_below(2));
  }
  if (rng.next_below(4) == 0) {
    g.after = rng.next_below(1 << 16);
    if (rng.next_below(2) == 0) g.after = 0;
    g.until = g.after + (1 << 14) + rng.next_below(1 << 18);
    if (rng.next_below(3) == 0) g.until = 0;
  }
  if (rng.next_below(8) == 0) {
    g.front = true;  // hastening a slice reorders as much as delaying one
  } else {
    g.delay = kDelaySteps[rng.next_below(std::size(kDelaySteps))];
  }
  return g;
}

}  // namespace

ScheduleGenome random_genome(Rng& rng, int n) {
  ScheduleGenome g;
  g.seed = rng.next_u64() | 1;
  switch (rng.next_below(4)) {
    case 0: g.jitter = 0; break;
    case 1: g.jitter = 1 << 8; break;
    case 2: g.jitter = 1 << 10; break;
    case 3: g.jitter = 1 << 14; break;
  }
  std::uint64_t count = 1 + rng.next_below(3);
  for (std::uint64_t i = 0; i < count; ++i) g.genes.push_back(random_gene(rng, n));
  return g;
}

ScheduleGenome mutate_genome(const ScheduleGenome& parent, Rng& rng, int n) {
  ScheduleGenome g = parent;
  // One to two edits per offspring keeps the fitness signal attributable.
  std::uint64_t edits = 1 + rng.next_below(2);
  for (std::uint64_t e = 0; e < edits; ++e) {
    std::uint64_t op = rng.next_below(6);
    if (g.genes.empty()) op = 0;
    switch (op) {
      case 0:  // add a gene
        if (g.genes.size() < kMaxGenes) g.genes.push_back(random_gene(rng, n));
        break;
      case 1:  // drop a gene
        g.genes.erase(g.genes.begin() +
                      static_cast<std::ptrdiff_t>(rng.next_below(g.genes.size())));
        break;
      case 2: {  // rescale a gene's delay
        Gene& gene = g.genes[rng.next_below(g.genes.size())];
        gene.delay = kDelaySteps[rng.next_below(std::size(kDelaySteps))];
        gene.front = false;
        break;
      }
      case 3: {  // retarget a gene
        Gene& gene = g.genes[rng.next_below(g.genes.size())];
        Gene fresh = random_gene(rng, n);
        gene.from = fresh.from;
        gene.to = fresh.to;
        gene.from_class = fresh.from_class;
        gene.to_class = fresh.to_class;
        gene.is_rb = fresh.is_rb;
        break;
      }
      case 4: {  // shift/clear a gene's window
        Gene& gene = g.genes[rng.next_below(g.genes.size())];
        if (rng.next_below(2) == 0) {
          gene.after = 0;
          gene.until = 0;
        } else {
          gene.after = rng.next_below(1 << 17);
          gene.until =
              rng.next_below(2) == 0 ? 0 : gene.after + 1 + rng.next_below(1 << 18);
        }
        break;
      }
      case 5:  // reseed/rescale the jitter stream
        if (rng.next_below(2) == 0) {
          g.seed = rng.next_u64() | 1;
        } else {
          const std::uint32_t steps[] = {0, 1 << 8, 1 << 10, 1 << 14};
          g.jitter = steps[rng.next_below(std::size(steps))];
        }
        break;
    }
  }
  return g;
}

// ---------------------------------------------------------------------
// JSON (writer half; the parser lives with the corpus machinery)
// ---------------------------------------------------------------------

std::string ScheduleGenome::to_json() const {
  std::string out = "{\"seed\": " + std::to_string(seed) +
                    ", \"jitter\": " + std::to_string(jitter) +
                    ", \"genes\": [";
  for (std::size_t i = 0; i < genes.size(); ++i) {
    const Gene& g = genes[i];
    out += std::string(i == 0 ? "" : ", ") + "{\"from\": " +
           std::to_string(g.from) + ", \"to\": " + std::to_string(g.to) +
           ", \"is_rb\": " + std::to_string(g.is_rb) +
           ", \"from_class\": " +
           std::to_string(static_cast<int>(g.from_class)) +
           ", \"to_class\": " + std::to_string(static_cast<int>(g.to_class)) +
           ", \"after\": " + std::to_string(g.after) +
           ", \"until\": " + std::to_string(g.until) +
           ", \"delay\": " + std::to_string(g.delay) +
           ", \"front\": " + (g.front ? "true" : "false") + "}";
  }
  out += "]}";
  return out;
}

}  // namespace svss::search
