// Schedule genomes: seeded priority-perturbation programs.
//
// A genome is a small, mutation-friendly program over the scheduler seam:
// a base jitter stream plus a list of genes, each matching a slice of the
// traffic (sender/receiver ids, transport class, the widened ScheduleView's
// adversary/deceived classification) inside a delivery-clock window and
// displacing matched packets by a priority delay (or pinning them to the
// front band).  GenomeScheduler interprets the program deterministically,
// so a genome + run config is a complete, replayable schedule — the unit
// the coverage-guided search (search.hpp) mutates and the worst-case
// corpus (corpus.hpp) commits.
//
// Eventual delivery is never the genome's problem: whatever delays it
// assigns, the engine's age cap forces starved packets through, so every
// genome is a valid asynchronous adversary (same argument as the fixed
// SchedulerKinds).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/runner.hpp"
#include "sim/scheduler.hpp"

namespace svss::search {

// Slot-classification predicate for a gene endpoint, resolved against the
// attached ScheduleView.  Without a view, only kAny matches.
enum class SlotClass : std::uint8_t {
  kAny = 0,
  kAdversary = 1,  // slot hosts a strategy
  kDeceived = 2,   // some strategy is currently lying to this slot
  kClear = 3,      // honest slot, not currently deceived
};

// One priority-perturbation rule.  All match conditions AND together;
// -1 / kAny are wildcards.
struct Gene {
  std::int16_t from = -1;              // exact sender id, or -1
  std::int16_t to = -1;                // exact receiver id, or -1
  std::int8_t is_rb = -1;              // 1 RB, 0 direct, -1 any
  SlotClass from_class = SlotClass::kAny;
  SlotClass to_class = SlotClass::kAny;
  // Activation window on the global delivery clock: active while
  // deliveries in [after, until), until == 0 meaning open-ended.  Windows
  // with after > 0 need an attached view (no view: never active).
  std::uint64_t after = 0;
  std::uint64_t until = 0;
  // Effect on matched packets: displace by `delay` sends, and/or pin to
  // the front band (priority 0; ties resolve by send order).
  std::uint64_t delay = 0;
  bool front = false;

  friend bool operator==(const Gene&, const Gene&) = default;
};

struct ScheduleGenome {
  std::uint64_t seed = 1;        // jitter stream seed
  std::uint32_t jitter = 1024;   // uniform per-packet jitter range (0 = off)
  std::vector<Gene> genes;

  friend bool operator==(const ScheduleGenome&,
                         const ScheduleGenome&) = default;

  // Canonical JSON form ({"seed":..,"jitter":..,"genes":[{..}]}) — the
  // corpus wire format.  parse_genome lives in corpus.hpp with the rest of
  // the JSON machinery.
  [[nodiscard]] std::string to_json() const;
};

// Mutation bounds: genomes stay small so schedules remain triageable.
inline constexpr std::size_t kMaxGenes = 8;

// A fresh random genome / a mutated copy.  Both are pure functions of the
// Rng stream, so search trajectories replay from their seed.  `n` bounds
// the id space genes may target.
[[nodiscard]] ScheduleGenome random_genome(Rng& rng, int n);
[[nodiscard]] ScheduleGenome mutate_genome(const ScheduleGenome& parent,
                                           Rng& rng, int n);

// Interprets a genome over the scheduler seam.  Base priority is the send
// sequence plus jitter; every active matching gene adds its delay; a
// matching front gene overrides to the front band.
class GenomeScheduler final : public Scheduler {
 public:
  explicit GenomeScheduler(ScheduleGenome genome)
      : genome_(std::move(genome)), rng_(genome_.seed) {}

  std::uint64_t priority(const PendingInfo& p) override;

  [[nodiscard]] const ScheduleGenome& genome() const { return genome_; }

 private:
  [[nodiscard]] bool gene_active(const Gene& g) const;
  [[nodiscard]] bool gene_matches(const Gene& g, const PendingInfo& p) const;
  [[nodiscard]] bool class_matches(SlotClass c, int id) const;

  ScheduleGenome genome_;
  Rng rng_;
};

// RunnerConfig::scheduler_factory adapter: every run built from the
// returned factory schedules under (a fresh interpreter of) `genome`.
// The genome's own seed fixes the jitter stream; the factory seed argument
// is deliberately ignored so a corpus entry pins the exact schedule.
[[nodiscard]] SchedulerFactory make_genome_factory(ScheduleGenome genome);

}  // namespace svss::search
