// Coverage signal for schedule search.
//
// The search needs to know when a schedule made the protocol do something
// *new* — reach a phase ordering, a delivery interleaving, a round count no
// previous schedule produced — without enumerating the (astronomical)
// schedule space.  The classic answer is a fixed-size feature bitmap
// (AFL-style): hash observable behaviour features into bits, and call a run
// novel when it sets bits no earlier run set.
//
// Features, all deterministic in the run config:
//  - per-receiver delivery bigrams: (receiver, previous wire type, wire
//    type) — the per-message-type delivery orderings the engine's observer
//    tap exposes;
//  - protocol-phase transitions: consecutive EventKind pairs in the event
//    log, plus per-kind firsts;
//  - rounds-to-decide buckets per decider.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"

namespace svss::search {

// Fixed-size bitmap keyed by feature hashes.
class CoverageMap {
 public:
  static constexpr std::size_t kBits = 1 << 14;

  CoverageMap() : words_(kBits / 64, 0) {}

  // Marks the bit for `key`; true if it was previously clear.
  bool mark(std::uint64_t key);

  [[nodiscard]] std::size_t popcount() const;

  // ORs `other` in; returns how many bits were newly set here.
  std::size_t merge(const CoverageMap& other);

  // Bits set in `other` but not here (novelty of a run vs the global map).
  [[nodiscard]] std::size_t novel_bits(const CoverageMap& other) const;

 private:
  std::vector<std::uint64_t> words_;
};

// Per-run recorder.  Install `observer()` on the engine before the run and
// call note_events() on the event log after it; `map()` is then the run's
// behaviour signature.
class RunCoverage {
 public:
  explicit RunCoverage(int n);

  // Engine::DeliveryObserver-compatible tap.
  void on_delivery(const PendingInfo& info, const Packet& pkt);
  [[nodiscard]] Engine::DeliveryObserver observer();

  // Folds protocol-phase transitions (EventKind bigrams + firsts, decide
  // round buckets) from a finished run's log into the map.
  void note_events(const EventLog& log);

  [[nodiscard]] const CoverageMap& map() const { return map_; }

 private:
  std::vector<std::uint16_t> prev_code_;  // per-receiver last wire type
  CoverageMap map_;
};

}  // namespace svss::search
