#include "search/search.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace svss::search {

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

void fnv_i64(std::uint64_t& h, std::int64_t v) {
  fnv_u64(h, static_cast<std::uint64_t>(v));
}

// Lexicographic fitness: worst seed first, then the whole seed set, then
// raw delivery work as a tie-break (a schedule that needs more traffic to
// reach the same rounds stresses more of the stack).
bool fitter(const EvalOutcome& a, const EvalOutcome& b) {
  if (a.worst_rounds != b.worst_rounds) return a.worst_rounds > b.worst_rounds;
  if (a.total_rounds != b.total_rounds) return a.total_rounds > b.total_rounds;
  return a.total_deliveries > b.total_deliveries;
}

}  // namespace

std::uint64_t fold_fingerprint(std::uint64_t chain, std::uint64_t cell_hash) {
  fnv_u64(chain, cell_hash);
  return chain;
}

std::uint64_t trace_fingerprint(const EventLog& log) {
  std::uint64_t h = kFnvOffset;
  for (const Event& e : log.events()) {
    fnv_u64(h, static_cast<std::uint64_t>(e.kind));
    fnv_i64(h, e.who);
    fnv_i64(h, e.other);
    fnv_u64(h, static_cast<std::uint64_t>(e.sid.path));
    fnv_u64(h, e.sid.variant);
    fnv_i64(h, e.sid.owner);
    fnv_i64(h, e.sid.moderator);
    fnv_i64(h, e.sid.svss_dealer);
    fnv_u64(h, e.sid.counter);
    fnv_u64(h, e.sid.instance);
    fnv_u64(h, e.sid.epoch);
    fnv_i64(h, e.value);
    fnv_u64(h, e.has_value ? 1 : 0);
  }
  return h;
}

CellResult run_search_cell(int n, adversary::StrategyKind strategy,
                           CoinMode mode, std::uint64_t seed,
                           std::uint64_t max_deliveries,
                           const SchedulerFactory& factory,
                           RunCoverage* coverage) {
  int t = (n - 1) / 3;
  if (t < 1) {
    throw std::invalid_argument("run_search_cell: need n >= 4 (t >= 1)");
  }
  RunnerConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.seed = seed;
  cfg.scheduler_factory = factory;
  cfg.max_deliveries = max_deliveries;
  // Capped runs are an expected (and sought-after) search outcome, scored
  // via CellResult::capped; a per-candidate stderr line would be noise.
  cfg.warn_on_cap = false;
  cfg.transport.aba_votes = Framing::kPerSession;
  adversary::AdversaryConfig base;
  if (strategy == adversary::StrategyKind::kColludingCabal &&
      mode == CoinMode::kIdealCommon) {
    base.silence_after = 300;  // same convention as the sweep harness
  }
  adversary::install_adversaries(cfg, strategy, t, base);

  Runner r(cfg);
  if (coverage != nullptr) {
    r.engine().set_delivery_observer(coverage->observer());
  }
  std::vector<int> inputs;
  inputs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) inputs.push_back(i % 2);
  auto res = r.run_aba(inputs, mode);

  CellResult out;
  out.rounds = res.max_round;
  out.deliveries = res.metrics.packets_delivered;
  out.capped = res.metrics.capped;
  out.all_decided = res.all_decided;
  out.agreed = res.agreed;
  out.valid = true;
  if (res.all_decided) {
    bool justified = false;
    for (int i : r.honest_ids()) {
      if (inputs[static_cast<std::size_t>(i)] == res.value) justified = true;
    }
    out.valid = justified;
  }
  if (coverage != nullptr) coverage->note_events(r.engine().log());
  out.trace_hash = trace_fingerprint(r.engine().log());
  return out;
}

ScheduleSearch::ScheduleSearch(SearchSpec spec)
    : spec_(std::move(spec)), rng_(spec_.search_seed) {}

EvalOutcome ScheduleSearch::evaluate_factory(const SchedulerFactory& factory,
                                             const ScheduleGenome* genome) {
  EvalOutcome out;
  if (genome != nullptr) out.genome = *genome;
  CoverageMap union_map;
  std::uint64_t chain = kFingerprintSeed;
  for (std::uint64_t seed : spec_.seeds) {
    RunCoverage cov(spec_.n);
    CellResult cell =
        run_search_cell(spec_.n, spec_.strategy, spec_.mode, seed,
                        spec_.max_deliveries, factory, &cov);
    out.worst_rounds = std::max(out.worst_rounds, cell.rounds);
    out.total_rounds += cell.rounds;
    out.total_deliveries += cell.deliveries;
    out.capped = out.capped || cell.capped;
    out.decided = out.decided && cell.all_decided;
    out.safe = out.safe && (!cell.all_decided || (cell.agreed && cell.valid));
    chain = fold_fingerprint(chain, cell.trace_hash);
    union_map.merge(cov.map());
  }
  out.trace_hash = chain;
  out.new_bits = map_.merge(union_map);
  return out;
}

EvalOutcome ScheduleSearch::evaluate(const ScheduleGenome& genome) {
  return evaluate_factory(make_genome_factory(genome), &genome);
}

SearchResult ScheduleSearch::run() {
  SearchResult result;

  // Baseline pass: the four fixed SchedulerKinds through the exact same
  // evaluation path.  Their coverage seeds the global map, so "novel"
  // later means "beyond anything the fixed catalogue does".
  constexpr SchedulerKind kKinds[] = {
      SchedulerKind::kFifo,
      SchedulerKind::kRandom,
      SchedulerKind::kLifo,
      SchedulerKind::kDelayLastHonest,
  };
  bool first = true;
  for (SchedulerKind kind : kKinds) {
    SchedulerFactory factory = [kind](std::uint64_t seed, int n, int t) {
      return make_scheduler(kind, seed, n, t);
    };
    EvalOutcome base = evaluate_factory(factory, nullptr);
    if (base.capped) result.cap_witness = true;
    if (!base.safe) result.safety_violation = true;
    std::uint32_t worst = base.decided && !base.capped ? base.worst_rounds : 0;
    std::uint64_t total = base.decided && !base.capped ? base.total_rounds : 0;
    if (first || worst > result.baseline_worst_rounds ||
        (worst == result.baseline_worst_rounds &&
         total > result.baseline_total_rounds)) {
      result.baseline_kind = kind;
      result.baseline_worst_rounds = worst;
      result.baseline_total_rounds = total;
      first = false;
    }
  }

  // Mutation loop.  Parents are kept on fitness; a genome that merely set
  // new coverage bits also earns a pool slot, which is what lets the
  // search walk through fitness-neutral intermediate schedules.
  std::vector<EvalOutcome> pool;
  for (int i = 0; i < spec_.iterations; ++i) {
    ScheduleGenome g;
    if (pool.empty() || i < 4 || rng_.next_below(8) == 0) {
      g = random_genome(rng_, spec_.n);
    } else {
      const EvalOutcome& parent = pool[rng_.next_below(pool.size())];
      g = mutate_genome(parent.genome, rng_, spec_.n);
    }
    EvalOutcome ev = evaluate(g);
    ++result.evaluations;
    if (ev.capped) result.cap_witness = true;
    if (!ev.safe) result.safety_violation = true;
    // Only terminating, safe runs compete on fitness: the corpus promises
    // replayed entries decide within budget, and a safety break is a bug
    // report, not a schedule.
    bool eligible = ev.decided && !ev.capped && ev.safe;
    if (!eligible) continue;
    if (!result.have_best || fitter(ev, result.best)) {
      result.best = ev;
      result.have_best = true;
      ++result.improvements;
    }
    if (ev.new_bits > 0 || pool.size() < spec_.population ||
        fitter(ev, pool.back())) {
      pool.push_back(std::move(ev));
      std::sort(pool.begin(), pool.end(),
                [](const EvalOutcome& a, const EvalOutcome& b) {
                  return fitter(a, b);
                });
      if (pool.size() > spec_.population) pool.resize(spec_.population);
    }
  }
  result.coverage_bits = map_.popcount();
  return result;
}

}  // namespace svss::search
