// Replayable worst-case schedule corpus.
//
// Every schedule the search deems worth keeping is committed as one JSON
// file under tests/corpus/: the complete run recipe (n, strategy, coin
// mode, seed set, delivery budget, genome) plus the measured outcome
// (worst/total rounds, the strongest fixed-SchedulerKind baseline it beat,
// and the chained event-trace fingerprint).  Because runs are pure
// functions of their config, the file IS the schedule — replaying it
// re-derives the identical event trace, which the tier-1 corpus gate
// (tests/corpus_replay_test.cpp) asserts on every build.
//
// Triage workflow: the CI stress lane runs a bounded search budget and
// uploads candidate entries as an artifact; a human (or a follow-up PR)
// inspects a candidate, re-runs it locally, and commits it under
// tests/corpus/ — from then on it is a regression gate, not a hint.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "search/search.hpp"

namespace svss::search {

struct CorpusEntry {
  std::string name;  // human label; load_corpus_dir defaults it to the stem
  int n = 4;
  adversary::StrategyKind strategy =
      adversary::StrategyKind::kColludingCabal;
  CoinMode mode = CoinMode::kSvss;
  std::vector<std::uint64_t> seeds;
  std::uint64_t max_deliveries = 20'000'000;
  ScheduleGenome genome;
  // Measured at commit time; replay must reproduce rounds and trace_hash
  // exactly and stay strictly above the baseline.
  std::uint32_t worst_rounds = 0;
  std::uint64_t total_rounds = 0;
  std::string baseline_kind;  // sweep scheduler_name of the strongest kind
  std::uint32_t baseline_worst_rounds = 0;
  std::uint64_t baseline_total_rounds = 0;
  std::uint64_t trace_hash = 0;

  [[nodiscard]] std::string to_json() const;
};

// Parses one corpus-entry JSON document.  On failure returns nullopt and,
// if `error` is non-null, a one-line diagnostic.
std::optional<CorpusEntry> parse_corpus_entry(const std::string& json,
                                              std::string* error);

// Standalone genome parser for the canonical ScheduleGenome JSON form
// (the writer half is ScheduleGenome::to_json).
std::optional<ScheduleGenome> parse_genome(const std::string& json,
                                           std::string* error);

// Loads every *.json under `dir`, sorted by filename so gate order is
// stable.  Throws std::runtime_error naming the offending file on any
// parse failure — a corrupt committed entry must fail the gate, not skip.
std::vector<CorpusEntry> load_corpus_dir(const std::string& dir);

// Re-runs an entry's recipe (fresh Runner per seed, genome scheduler) and
// reports the same aggregates the search scored, fingerprint-folded the
// same way — comparing against the stored fields is the whole gate.
struct ReplayOutcome {
  std::uint32_t worst_rounds = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t trace_hash = 0;
  bool capped = false;
  bool decided = true;
  bool safe = true;
};
ReplayOutcome replay_corpus_entry(const CorpusEntry& entry);

// Packages a successful search outcome as a corpus entry (requires
// result.have_best).
CorpusEntry make_corpus_entry(const SearchSpec& spec,
                              const SearchResult& result, std::string name);

}  // namespace svss::search
