// Coverage-guided adversarial schedule search.
//
// The termination sweep (tests/sweep_common.hpp) samples a fixed seeds x
// strategies x schedulers grid; the rare termination-delaying interleavings
// the paper's almost-sure-termination proof actually sweats are found there
// only by luck.  This subsystem *searches* for them: a mutation loop over
// schedule genomes (genome.hpp), scored by rounds-to-decide and guided by
// behaviour-coverage novelty (coverage.hpp), with every candidate run
// through exactly the replayable cell the corpus gate re-runs later.
//
// Fitness is lexicographic (worst rounds over the seed set, then total
// rounds, then deliveries); a genome also survives into the parent pool on
// coverage novelty alone, which is what lets the search cross fitness
// plateaus.  A run that breaks agreement/validity or exhausts the delivery
// budget is not a "better schedule" — it is a finding, surfaced loudly via
// SearchResult, because either would falsify the paper's claims.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/adversary.hpp"
#include "core/runner.hpp"
#include "search/coverage.hpp"
#include "search/genome.hpp"

namespace svss::search {

// One agreement cell under an arbitrary scheduler factory — the shared
// evaluation primitive.  Mirrors the sweep harness conventions: t = (n-1)/3
// strategy-driven faults in the top slots, mixed inputs (i mod 2, the
// schedule-sensitive pattern), per-session vote framing so strategies reach
// their attack surface, and the cabal's silence clock when the ideal coin
// leaves it no values to corrupt.
struct CellResult {
  std::uint32_t rounds = 0;       // max decision round among honest
  std::uint64_t deliveries = 0;
  bool capped = false;
  bool all_decided = false;
  bool agreed = false;
  bool valid = false;
  std::uint64_t trace_hash = 0;   // FNV-1a over the canonical event trace
};

CellResult run_search_cell(int n, adversary::StrategyKind strategy,
                           CoinMode mode, std::uint64_t seed,
                           std::uint64_t max_deliveries,
                           const SchedulerFactory& factory,
                           RunCoverage* coverage);

// Canonical event-trace fingerprint (every Event field, little-endian,
// FNV-1a 64).  Two runs of one config must agree on it — the corpus gate's
// byte-identity check compresses to this.
std::uint64_t trace_fingerprint(const EventLog& log);

// Multi-seed fingerprints chain per-cell hashes with an order-dependent
// FNV fold starting from kFingerprintSeed; replay must fold the same way
// to reproduce a stored hash.
inline constexpr std::uint64_t kFingerprintSeed = 0xCBF29CE484222325ULL;
std::uint64_t fold_fingerprint(std::uint64_t chain, std::uint64_t cell_hash);

struct SearchSpec {
  int n = 4;
  adversary::StrategyKind strategy =
      adversary::StrategyKind::kColludingCabal;
  CoinMode mode = CoinMode::kSvss;
  std::vector<std::uint64_t> seeds = {11, 22};
  std::uint64_t max_deliveries = 20'000'000;
  int iterations = 32;         // genome evaluations after the baselines
  std::size_t population = 6;  // elite parent pool size
  std::uint64_t search_seed = 1;
};

// A genome's aggregate score over the spec's seed set.
struct EvalOutcome {
  ScheduleGenome genome;
  std::uint32_t worst_rounds = 0;   // max over seeds
  std::uint64_t total_rounds = 0;   // sum over seeds
  std::uint64_t total_deliveries = 0;
  std::size_t new_bits = 0;         // coverage novelty vs the global map
  bool capped = false;              // some seed exhausted its budget
  bool decided = true;              // every seed fully decided
  bool safe = true;                 // agreement + validity held everywhere
  std::uint64_t trace_hash = 0;     // fingerprint chained across seeds
};

struct SearchResult {
  EvalOutcome best;  // best terminating, safe genome found
  bool have_best = false;
  // The strongest fixed SchedulerKind on the same seed set (the adversary
  // baseline the search must beat).
  SchedulerKind baseline_kind = SchedulerKind::kFifo;
  std::uint32_t baseline_worst_rounds = 0;
  std::uint64_t baseline_total_rounds = 0;
  std::size_t coverage_bits = 0;  // global map popcount at the end
  int evaluations = 0;            // genome evaluations performed
  int improvements = 0;           // evaluations that beat the then-best
  // Findings: either of these would falsify a paper property and must be
  // triaged, not celebrated as fitness.
  bool safety_violation = false;
  bool cap_witness = false;

  [[nodiscard]] bool beats_baseline() const {
    return have_best && (best.worst_rounds > baseline_worst_rounds ||
                         (best.worst_rounds == baseline_worst_rounds &&
                          best.total_rounds > baseline_total_rounds));
  }
};

class ScheduleSearch {
 public:
  explicit ScheduleSearch(SearchSpec spec);

  // Scores one genome over the seed set and folds its behaviour coverage
  // into the global map (new_bits reports the novelty it contributed).
  EvalOutcome evaluate(const ScheduleGenome& genome);

  // Baselines the four fixed SchedulerKinds, then runs the mutation loop
  // for spec.iterations evaluations.
  SearchResult run();

  [[nodiscard]] const CoverageMap& coverage() const { return map_; }
  [[nodiscard]] const SearchSpec& spec() const { return spec_; }

 private:
  EvalOutcome evaluate_factory(const SchedulerFactory& factory,
                               const ScheduleGenome* genome);

  SearchSpec spec_;
  CoverageMap map_;
  Rng rng_;
};

}  // namespace svss::search
