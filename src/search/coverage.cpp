#include "search/coverage.hpp"

#include <algorithm>
#include <bit>

namespace svss::search {

namespace {

// SplitMix64 finalizer: cheap avalanche so structured feature tuples
// spread across the bitmap.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t feature(std::uint64_t tag, std::uint64_t a, std::uint64_t b,
                      std::uint64_t c) {
  return mix(mix(mix(tag ^ (a << 1)) ^ b) ^ c);
}

// Compact wire-type code for a delivered packet: application MsgType for
// direct packets, the broadcast slot type + RB phase for transport steps.
std::uint16_t wire_code(const Packet& pkt) {
  if (!pkt.is_rb) return static_cast<std::uint16_t>(pkt.app.type);
  return static_cast<std::uint16_t>(
      0x100u | (static_cast<std::uint16_t>(pkt.bid.slot) << 2) |
      static_cast<std::uint16_t>(pkt.phase));
}

}  // namespace

bool CoverageMap::mark(std::uint64_t key) {
  std::uint64_t bit = key & (kBits - 1);
  std::uint64_t& word = words_[bit >> 6];
  std::uint64_t mask = 1ULL << (bit & 63);
  if ((word & mask) != 0) return false;
  word |= mask;
  return true;
}

std::size_t CoverageMap::popcount() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

std::size_t CoverageMap::merge(const CoverageMap& other) {
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t add = other.words_[i] & ~words_[i];
    fresh += static_cast<std::size_t>(std::popcount(add));
    words_[i] |= add;
  }
  return fresh;
}

std::size_t CoverageMap::novel_bits(const CoverageMap& other) const {
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    fresh += static_cast<std::size_t>(
        std::popcount(other.words_[i] & ~words_[i]));
  }
  return fresh;
}

RunCoverage::RunCoverage(int n)
    : prev_code_(static_cast<std::size_t>(std::max(n, 1)), 0) {}

void RunCoverage::on_delivery(const PendingInfo& info, const Packet& pkt) {
  std::uint16_t code = wire_code(pkt);
  auto to = static_cast<std::size_t>(info.to);
  if (to < prev_code_.size()) {
    map_.mark(feature(0xD1, static_cast<std::uint64_t>(info.to),
                      prev_code_[to], code));
    prev_code_[to] = code;
  }
  // Channel-type edge, receiver-independent: which kinds of traffic
  // immediately feed which processes' state machines.
  map_.mark(feature(0xD2, static_cast<std::uint64_t>(info.from), code, 0));
}

Engine::DeliveryObserver RunCoverage::observer() {
  return [this](const PendingInfo& info, const Packet& pkt) {
    on_delivery(info, pkt);
  };
}

void RunCoverage::note_events(const EventLog& log) {
  std::uint64_t prev = 0xFF;
  for (const Event& e : log.events()) {
    auto kind = static_cast<std::uint64_t>(e.kind);
    map_.mark(feature(0xE1, kind, 0, 0));          // phase reached at all
    map_.mark(feature(0xE2, prev, kind, 0));       // phase-transition bigram
    prev = kind;
    if (e.kind == EventKind::kAbaDecide) {
      // Rounds-to-decide, bucketed per decider: the fitness signal's
      // coverage shadow (decide-at-round-7 is a different behaviour than
      // decide-at-round-1 even if the round maximum ends up equal).
      std::uint64_t bucket = std::min<std::uint64_t>(
          static_cast<std::uint64_t>(e.other), 32);
      map_.mark(feature(0xE3, static_cast<std::uint64_t>(e.who), bucket, 0));
    }
  }
}

}  // namespace svss::search
