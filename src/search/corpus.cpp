#include "search/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace svss::search {

namespace {

// ---------------------------------------------------------------------
// Minimal JSON reader (recursive descent, integers only)
// ---------------------------------------------------------------------
// The corpus format is produced by our own writers: objects, arrays,
// strings without exotic escapes, booleans, and (possibly 64-bit unsigned)
// integers.  No floats, no nulls-with-meaning.  A hand-rolled reader keeps
// the container dependency-free; anything outside this subset is a parse
// error, which for a corpus gate is the correct hard failure.

struct Json {
  enum class Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = Kind::kNull;
  bool b = false;
  std::string num;  // raw token, converted on demand
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  [[nodiscard]] const Json* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    return std::strtoull(num.c_str(), nullptr, 10);
  }
  [[nodiscard]] std::int64_t as_i64() const {
    return std::strtoll(num.c_str(), nullptr, 10);
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  std::optional<Json> parse(std::string* error) {
    std::optional<Json> v = value();
    skip_ws();
    if (v && pos_ != text_.size()) fail("trailing data after document");
    if (!error_.empty()) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<std::string> string_token() {
    if (!eat('"')) {
      fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default:
            fail("unsupported string escape");
            return std::nullopt;
        }
      } else {
        out += c;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  std::optional<Json> value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    char c = text_[pos_];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      auto s = string_token();
      if (!s) return std::nullopt;
      Json v;
      v.kind = Json::Kind::kStr;
      v.str = std::move(*s);
      return v;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      Json v;
      v.kind = Json::Kind::kBool;
      v.b = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      Json v;
      v.kind = Json::Kind::kBool;
      v.b = false;
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json{};
    }
    if (c == '-' || (std::isdigit(static_cast<unsigned char>(c)) != 0)) {
      Json v;
      v.kind = Json::Kind::kNum;
      if (c == '-') {
        v.num += c;
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        v.num += text_[pos_++];
      }
      if (v.num.empty() || v.num == "-") {
        fail("malformed number");
        return std::nullopt;
      }
      if (pos_ < text_.size() &&
          (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
        fail("non-integer numbers are not part of the corpus format");
        return std::nullopt;
      }
      return v;
    }
    fail("unexpected character");
    return std::nullopt;
  }

  std::optional<Json> object() {
    eat('{');
    Json v;
    v.kind = Json::Kind::kObj;
    skip_ws();
    if (eat('}')) return v;
    while (true) {
      auto key = string_token();
      if (!key) return std::nullopt;
      if (!eat(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      auto val = value();
      if (!val) return std::nullopt;
      v.obj.emplace_back(std::move(*key), std::move(*val));
      if (eat(',')) continue;
      if (eat('}')) return v;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::optional<Json> array() {
    eat('[');
    Json v;
    v.kind = Json::Kind::kArr;
    skip_ws();
    if (eat(']')) return v;
    while (true) {
      auto val = value();
      if (!val) return std::nullopt;
      v.arr.push_back(std::move(*val));
      if (eat(',')) continue;
      if (eat(']')) return v;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

// ---------------------------------------------------------------------
// Field decoding
// ---------------------------------------------------------------------

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

std::optional<adversary::StrategyKind> strategy_from_name(
    const std::string& name) {
  constexpr adversary::StrategyKind kKinds[] = {
      adversary::StrategyKind::kEquivocatingDealer,
      adversary::StrategyKind::kAdaptiveShunAware,
      adversary::StrategyKind::kWithholdingModerator,
      adversary::StrategyKind::kColludingCabal,
      adversary::StrategyKind::kEquivocatingAcsProposer,
  };
  for (adversary::StrategyKind k : kKinds) {
    if (name == adversary::strategy_name(k)) return k;
  }
  return std::nullopt;
}

const char* kind_name(SchedulerKind kind) {
  // Mirrors sweep::scheduler_name (tests/sweep_common.hpp); duplicated
  // here because src/ must not include test headers.
  switch (kind) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kRandom: return "random";
    case SchedulerKind::kLifo: return "lifo";
    case SchedulerKind::kDelayLastHonest: return "delay-last-honest";
  }
  return "unknown";
}

bool decode_genome(const Json& j, ScheduleGenome& out, std::string* error) {
  if (j.kind != Json::Kind::kObj) {
    return set_error(error, "genome: expected object");
  }
  const Json* seed = j.find("seed");
  const Json* jitter = j.find("jitter");
  const Json* genes = j.find("genes");
  if (seed == nullptr || seed->kind != Json::Kind::kNum ||
      jitter == nullptr || jitter->kind != Json::Kind::kNum ||
      genes == nullptr || genes->kind != Json::Kind::kArr) {
    return set_error(error, "genome: need numeric seed/jitter and genes[]");
  }
  out.seed = seed->as_u64();
  out.jitter = static_cast<std::uint32_t>(jitter->as_u64());
  out.genes.clear();
  for (const Json& gj : genes->arr) {
    if (gj.kind != Json::Kind::kObj) {
      return set_error(error, "genome: gene must be an object");
    }
    Gene g;
    for (const auto& [key, val] : gj.obj) {
      if (key == "front") {
        if (val.kind != Json::Kind::kBool) {
          return set_error(error, "gene.front: expected bool");
        }
        g.front = val.b;
        continue;
      }
      if (val.kind != Json::Kind::kNum) {
        return set_error(error, "gene." + key + ": expected integer");
      }
      if (key == "from") {
        g.from = static_cast<std::int16_t>(val.as_i64());
      } else if (key == "to") {
        g.to = static_cast<std::int16_t>(val.as_i64());
      } else if (key == "is_rb") {
        g.is_rb = static_cast<std::int8_t>(val.as_i64());
      } else if (key == "from_class") {
        g.from_class = static_cast<SlotClass>(val.as_u64());
      } else if (key == "to_class") {
        g.to_class = static_cast<SlotClass>(val.as_u64());
      } else if (key == "after") {
        g.after = val.as_u64();
      } else if (key == "until") {
        g.until = val.as_u64();
      } else if (key == "delay") {
        g.delay = val.as_u64();
      } else {
        return set_error(error, "gene: unknown field '" + key + "'");
      }
    }
    out.genes.push_back(g);
  }
  if (out.genes.size() > kMaxGenes) {
    return set_error(error, "genome: more than kMaxGenes genes");
  }
  return true;
}

const Json* need(const Json& j, const char* key, Json::Kind kind,
                 std::string* error) {
  const Json* v = j.find(key);
  if (v == nullptr || v->kind != kind) {
    set_error(error, std::string("missing or mistyped field '") + key + "'");
    return nullptr;
  }
  return v;
}

}  // namespace

std::optional<ScheduleGenome> parse_genome(const std::string& json,
                                           std::string* error) {
  JsonReader reader(json);
  std::optional<Json> doc = reader.parse(error);
  if (!doc) return std::nullopt;
  ScheduleGenome g;
  if (!decode_genome(*doc, g, error)) return std::nullopt;
  return g;
}

std::optional<CorpusEntry> parse_corpus_entry(const std::string& json,
                                              std::string* error) {
  JsonReader reader(json);
  std::optional<Json> doc = reader.parse(error);
  if (!doc) return std::nullopt;
  if (doc->kind != Json::Kind::kObj) {
    set_error(error, "corpus entry: expected top-level object");
    return std::nullopt;
  }
  CorpusEntry e;
  const Json* name = doc->find("name");
  if (name != nullptr && name->kind == Json::Kind::kStr) e.name = name->str;

  const Json* n = need(*doc, "n", Json::Kind::kNum, error);
  const Json* strategy = need(*doc, "strategy", Json::Kind::kStr, error);
  const Json* coin = need(*doc, "coin", Json::Kind::kStr, error);
  const Json* seeds = need(*doc, "seeds", Json::Kind::kArr, error);
  const Json* budget = need(*doc, "max_deliveries", Json::Kind::kNum, error);
  const Json* genome = need(*doc, "genome", Json::Kind::kObj, error);
  const Json* worst = need(*doc, "worst_rounds", Json::Kind::kNum, error);
  const Json* total = need(*doc, "total_rounds", Json::Kind::kNum, error);
  const Json* bkind = need(*doc, "baseline_kind", Json::Kind::kStr, error);
  const Json* bworst =
      need(*doc, "baseline_worst_rounds", Json::Kind::kNum, error);
  const Json* btotal =
      need(*doc, "baseline_total_rounds", Json::Kind::kNum, error);
  const Json* hash = need(*doc, "trace_hash", Json::Kind::kNum, error);
  if (n == nullptr || strategy == nullptr || coin == nullptr ||
      seeds == nullptr || budget == nullptr || genome == nullptr ||
      worst == nullptr || total == nullptr || bkind == nullptr ||
      bworst == nullptr || btotal == nullptr || hash == nullptr) {
    return std::nullopt;
  }

  e.n = static_cast<int>(n->as_i64());
  auto kind = strategy_from_name(strategy->str);
  if (!kind) {
    set_error(error, "unknown strategy '" + strategy->str + "'");
    return std::nullopt;
  }
  e.strategy = *kind;
  if (coin->str == "svss") {
    e.mode = CoinMode::kSvss;
  } else if (coin->str == "ideal") {
    e.mode = CoinMode::kIdealCommon;
  } else {
    set_error(error, "unknown coin mode '" + coin->str + "'");
    return std::nullopt;
  }
  for (const Json& s : seeds->arr) {
    if (s.kind != Json::Kind::kNum) {
      set_error(error, "seeds: expected integers");
      return std::nullopt;
    }
    e.seeds.push_back(s.as_u64());
  }
  if (e.seeds.empty()) {
    set_error(error, "seeds: must be non-empty");
    return std::nullopt;
  }
  e.max_deliveries = budget->as_u64();
  if (!decode_genome(*genome, e.genome, error)) return std::nullopt;
  e.worst_rounds = static_cast<std::uint32_t>(worst->as_u64());
  e.total_rounds = total->as_u64();
  e.baseline_kind = bkind->str;
  e.baseline_worst_rounds = static_cast<std::uint32_t>(bworst->as_u64());
  e.baseline_total_rounds = btotal->as_u64();
  e.trace_hash = hash->as_u64();
  return e;
}

std::string CorpusEntry::to_json() const {
  std::string out = "{\n  \"name\": \"" + name + "\",\n  \"n\": " +
                    std::to_string(n) + ",\n  \"strategy\": \"" +
                    adversary::strategy_name(strategy) +
                    "\",\n  \"coin\": \"" +
                    (mode == CoinMode::kSvss ? "svss" : "ideal") +
                    "\",\n  \"seeds\": [";
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    out += (i == 0 ? "" : ", ") + std::to_string(seeds[i]);
  }
  out += "],\n  \"max_deliveries\": " + std::to_string(max_deliveries) +
         ",\n  \"genome\": " + genome.to_json() +
         ",\n  \"worst_rounds\": " + std::to_string(worst_rounds) +
         ",\n  \"total_rounds\": " + std::to_string(total_rounds) +
         ",\n  \"baseline_kind\": \"" + baseline_kind +
         "\",\n  \"baseline_worst_rounds\": " +
         std::to_string(baseline_worst_rounds) +
         ",\n  \"baseline_total_rounds\": " +
         std::to_string(baseline_total_rounds) +
         ",\n  \"trace_hash\": " + std::to_string(trace_hash) + "\n}\n";
  return out;
}

std::vector<CorpusEntry> load_corpus_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  if (fs::exists(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".json") {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  std::vector<CorpusEntry> out;
  for (const fs::path& p : paths) {
    std::ifstream in(p);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
      throw std::runtime_error("corpus: cannot read " + p.string());
    }
    std::string error;
    auto entry = parse_corpus_entry(buf.str(), &error);
    if (!entry) {
      throw std::runtime_error("corpus: " + p.string() + ": " + error);
    }
    if (entry->name.empty()) entry->name = p.stem().string();
    out.push_back(std::move(*entry));
  }
  return out;
}

ReplayOutcome replay_corpus_entry(const CorpusEntry& entry) {
  SchedulerFactory factory = make_genome_factory(entry.genome);
  ReplayOutcome out;
  std::uint64_t chain = kFingerprintSeed;
  for (std::uint64_t seed : entry.seeds) {
    CellResult cell =
        run_search_cell(entry.n, entry.strategy, entry.mode, seed,
                        entry.max_deliveries, factory, nullptr);
    out.worst_rounds = std::max(out.worst_rounds, cell.rounds);
    out.total_rounds += cell.rounds;
    out.capped = out.capped || cell.capped;
    out.decided = out.decided && cell.all_decided;
    out.safe = out.safe && (!cell.all_decided || (cell.agreed && cell.valid));
    chain = fold_fingerprint(chain, cell.trace_hash);
  }
  out.trace_hash = chain;
  return out;
}

CorpusEntry make_corpus_entry(const SearchSpec& spec,
                              const SearchResult& result, std::string name) {
  if (!result.have_best) {
    throw std::invalid_argument(
        "make_corpus_entry: search found no terminating safe genome");
  }
  CorpusEntry e;
  e.name = std::move(name);
  e.n = spec.n;
  e.strategy = spec.strategy;
  e.mode = spec.mode;
  e.seeds = spec.seeds;
  e.max_deliveries = spec.max_deliveries;
  e.genome = result.best.genome;
  e.worst_rounds = result.best.worst_rounds;
  e.total_rounds = result.best.total_rounds;
  e.baseline_kind = kind_name(result.baseline_kind);
  e.baseline_worst_rounds = result.baseline_worst_rounds;
  e.baseline_total_rounds = result.baseline_total_rounds;
  e.trace_hash = result.best.trace_hash;
  return e;
}

}  // namespace svss::search
